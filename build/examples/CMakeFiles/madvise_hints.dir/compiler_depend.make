# Empty compiler generated dependencies file for madvise_hints.
# This may be replaced when dependencies are built.
