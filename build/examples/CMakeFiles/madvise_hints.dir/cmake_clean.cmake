file(REMOVE_RECURSE
  "CMakeFiles/madvise_hints.dir/madvise_hints.cpp.o"
  "CMakeFiles/madvise_hints.dir/madvise_hints.cpp.o.d"
  "madvise_hints"
  "madvise_hints.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/madvise_hints.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
