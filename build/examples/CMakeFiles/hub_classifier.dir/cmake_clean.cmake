file(REMOVE_RECURSE
  "CMakeFiles/hub_classifier.dir/hub_classifier.cpp.o"
  "CMakeFiles/hub_classifier.dir/hub_classifier.cpp.o.d"
  "hub_classifier"
  "hub_classifier.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hub_classifier.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
