# Empty compiler generated dependencies file for hub_classifier.
# This may be replaced when dependencies are built.
