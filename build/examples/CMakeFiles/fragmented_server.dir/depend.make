# Empty dependencies file for fragmented_server.
# This may be replaced when dependencies are built.
