file(REMOVE_RECURSE
  "CMakeFiles/fragmented_server.dir/fragmented_server.cpp.o"
  "CMakeFiles/fragmented_server.dir/fragmented_server.cpp.o.d"
  "fragmented_server"
  "fragmented_server.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fragmented_server.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
