# Empty dependencies file for fig02_reuse.
# This may be replaced when dependencies are built.
