file(REMOVE_RECURSE
  "CMakeFiles/fig02_reuse.dir/bench/fig02_reuse.cpp.o"
  "CMakeFiles/fig02_reuse.dir/bench/fig02_reuse.cpp.o.d"
  "bench/fig02_reuse"
  "bench/fig02_reuse.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig02_reuse.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
