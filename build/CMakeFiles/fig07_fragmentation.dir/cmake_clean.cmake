file(REMOVE_RECURSE
  "CMakeFiles/fig07_fragmentation.dir/bench/fig07_fragmentation.cpp.o"
  "CMakeFiles/fig07_fragmentation.dir/bench/fig07_fragmentation.cpp.o.d"
  "bench/fig07_fragmentation"
  "bench/fig07_fragmentation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig07_fragmentation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
