# Empty compiler generated dependencies file for fig07_fragmentation.
# This may be replaced when dependencies are built.
