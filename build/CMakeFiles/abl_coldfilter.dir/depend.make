# Empty dependencies file for abl_coldfilter.
# This may be replaced when dependencies are built.
