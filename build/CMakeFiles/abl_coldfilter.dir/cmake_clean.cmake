file(REMOVE_RECURSE
  "CMakeFiles/abl_coldfilter.dir/bench/abl_coldfilter.cpp.o"
  "CMakeFiles/abl_coldfilter.dir/bench/abl_coldfilter.cpp.o.d"
  "bench/abl_coldfilter"
  "bench/abl_coldfilter.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_coldfilter.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
