file(REMOVE_RECURSE
  "CMakeFiles/abl_pwc.dir/bench/abl_pwc.cpp.o"
  "CMakeFiles/abl_pwc.dir/bench/abl_pwc.cpp.o.d"
  "bench/abl_pwc"
  "bench/abl_pwc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_pwc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
