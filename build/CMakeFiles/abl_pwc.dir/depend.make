# Empty dependencies file for abl_pwc.
# This may be replaced when dependencies are built.
