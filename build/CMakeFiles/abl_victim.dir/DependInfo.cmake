
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/abl_victim.cpp" "CMakeFiles/abl_victim.dir/bench/abl_victim.cpp.o" "gcc" "CMakeFiles/abl_victim.dir/bench/abl_victim.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/pcc_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/workloads/CMakeFiles/pcc_workloads.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/pcc_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/os/CMakeFiles/pcc_os.dir/DependInfo.cmake"
  "/root/repo/build/src/pcc/CMakeFiles/pcc_core.dir/DependInfo.cmake"
  "/root/repo/build/src/pt/CMakeFiles/pcc_pt.dir/DependInfo.cmake"
  "/root/repo/build/src/analysis/CMakeFiles/pcc_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/pcc_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/pcc_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
