file(REMOVE_RECURSE
  "CMakeFiles/abl_victim.dir/bench/abl_victim.cpp.o"
  "CMakeFiles/abl_victim.dir/bench/abl_victim.cpp.o.d"
  "bench/abl_victim"
  "bench/abl_victim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_victim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
