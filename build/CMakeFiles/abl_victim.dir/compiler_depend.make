# Empty compiler generated dependencies file for abl_victim.
# This may be replaced when dependencies are built.
