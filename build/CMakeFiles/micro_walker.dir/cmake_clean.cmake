file(REMOVE_RECURSE
  "CMakeFiles/micro_walker.dir/bench/micro_walker.cpp.o"
  "CMakeFiles/micro_walker.dir/bench/micro_walker.cpp.o.d"
  "bench/micro_walker"
  "bench/micro_walker.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_walker.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
