# Empty dependencies file for micro_walker.
# This may be replaced when dependencies are built.
