file(REMOVE_RECURSE
  "CMakeFiles/fig09_multiprocess.dir/bench/fig09_multiprocess.cpp.o"
  "CMakeFiles/fig09_multiprocess.dir/bench/fig09_multiprocess.cpp.o.d"
  "bench/fig09_multiprocess"
  "bench/fig09_multiprocess.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig09_multiprocess.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
