# Empty dependencies file for fig09_multiprocess.
# This may be replaced when dependencies are built.
