file(REMOVE_RECURSE
  "CMakeFiles/fig08_multithread.dir/bench/fig08_multithread.cpp.o"
  "CMakeFiles/fig08_multithread.dir/bench/fig08_multithread.cpp.o.d"
  "bench/fig08_multithread"
  "bench/fig08_multithread.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig08_multithread.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
