# Empty dependencies file for fig08_multithread.
# This may be replaced when dependencies are built.
