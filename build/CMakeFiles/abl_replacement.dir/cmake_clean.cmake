file(REMOVE_RECURSE
  "CMakeFiles/abl_replacement.dir/bench/abl_replacement.cpp.o"
  "CMakeFiles/abl_replacement.dir/bench/abl_replacement.cpp.o.d"
  "bench/abl_replacement"
  "bench/abl_replacement.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_replacement.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
