file(REMOVE_RECURSE
  "CMakeFiles/tab_overheads.dir/bench/tab_overheads.cpp.o"
  "CMakeFiles/tab_overheads.dir/bench/tab_overheads.cpp.o.d"
  "bench/tab_overheads"
  "bench/tab_overheads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tab_overheads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
