# Empty compiler generated dependencies file for tab_overheads.
# This may be replaced when dependencies are built.
