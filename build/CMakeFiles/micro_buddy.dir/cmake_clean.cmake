file(REMOVE_RECURSE
  "CMakeFiles/micro_buddy.dir/bench/micro_buddy.cpp.o"
  "CMakeFiles/micro_buddy.dir/bench/micro_buddy.cpp.o.d"
  "bench/micro_buddy"
  "bench/micro_buddy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_buddy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
