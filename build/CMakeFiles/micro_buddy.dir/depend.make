# Empty dependencies file for micro_buddy.
# This may be replaced when dependencies are built.
