# Empty dependencies file for fig06_pcc_size.
# This may be replaced when dependencies are built.
