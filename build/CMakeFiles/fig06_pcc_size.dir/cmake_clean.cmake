file(REMOVE_RECURSE
  "CMakeFiles/fig06_pcc_size.dir/bench/fig06_pcc_size.cpp.o"
  "CMakeFiles/fig06_pcc_size.dir/bench/fig06_pcc_size.cpp.o.d"
  "bench/fig06_pcc_size"
  "bench/fig06_pcc_size.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig06_pcc_size.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
