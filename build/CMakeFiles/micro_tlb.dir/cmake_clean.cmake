file(REMOVE_RECURSE
  "CMakeFiles/micro_tlb.dir/bench/micro_tlb.cpp.o"
  "CMakeFiles/micro_tlb.dir/bench/micro_tlb.cpp.o.d"
  "bench/micro_tlb"
  "bench/micro_tlb.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_tlb.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
