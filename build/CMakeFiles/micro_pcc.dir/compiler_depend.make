# Empty compiler generated dependencies file for micro_pcc.
# This may be replaced when dependencies are built.
