file(REMOVE_RECURSE
  "CMakeFiles/micro_pcc.dir/bench/micro_pcc.cpp.o"
  "CMakeFiles/micro_pcc.dir/bench/micro_pcc.cpp.o.d"
  "bench/micro_pcc"
  "bench/micro_pcc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_pcc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
