file(REMOVE_RECURSE
  "CMakeFiles/fig05_utility.dir/bench/fig05_utility.cpp.o"
  "CMakeFiles/fig05_utility.dir/bench/fig05_utility.cpp.o.d"
  "bench/fig05_utility"
  "bench/fig05_utility.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig05_utility.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
