# Empty compiler generated dependencies file for fig05_utility.
# This may be replaced when dependencies are built.
