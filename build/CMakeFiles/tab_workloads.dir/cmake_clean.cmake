file(REMOVE_RECURSE
  "CMakeFiles/tab_workloads.dir/bench/tab_workloads.cpp.o"
  "CMakeFiles/tab_workloads.dir/bench/tab_workloads.cpp.o.d"
  "bench/tab_workloads"
  "bench/tab_workloads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tab_workloads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
