# Empty dependencies file for tab_workloads.
# This may be replaced when dependencies are built.
