# Empty dependencies file for abl_gb_pcc.
# This may be replaced when dependencies are built.
