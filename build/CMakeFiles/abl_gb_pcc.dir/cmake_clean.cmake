file(REMOVE_RECURSE
  "CMakeFiles/abl_gb_pcc.dir/bench/abl_gb_pcc.cpp.o"
  "CMakeFiles/abl_gb_pcc.dir/bench/abl_gb_pcc.cpp.o.d"
  "bench/abl_gb_pcc"
  "bench/abl_gb_pcc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_gb_pcc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
