# Empty compiler generated dependencies file for pcc_sim.
# This may be replaced when dependencies are built.
