file(REMOVE_RECURSE
  "CMakeFiles/pcc_sim.dir/experiment.cpp.o"
  "CMakeFiles/pcc_sim.dir/experiment.cpp.o.d"
  "CMakeFiles/pcc_sim.dir/system.cpp.o"
  "CMakeFiles/pcc_sim.dir/system.cpp.o.d"
  "libpcc_sim.a"
  "libpcc_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pcc_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
