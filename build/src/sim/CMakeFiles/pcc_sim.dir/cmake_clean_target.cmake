file(REMOVE_RECURSE
  "libpcc_sim.a"
)
