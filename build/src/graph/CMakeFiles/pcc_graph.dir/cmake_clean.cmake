file(REMOVE_RECURSE
  "CMakeFiles/pcc_graph.dir/csr.cpp.o"
  "CMakeFiles/pcc_graph.dir/csr.cpp.o.d"
  "CMakeFiles/pcc_graph.dir/generators.cpp.o"
  "CMakeFiles/pcc_graph.dir/generators.cpp.o.d"
  "libpcc_graph.a"
  "libpcc_graph.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pcc_graph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
