# Empty dependencies file for pcc_graph.
# This may be replaced when dependencies are built.
