file(REMOVE_RECURSE
  "libpcc_graph.a"
)
