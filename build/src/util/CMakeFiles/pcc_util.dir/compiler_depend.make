# Empty compiler generated dependencies file for pcc_util.
# This may be replaced when dependencies are built.
