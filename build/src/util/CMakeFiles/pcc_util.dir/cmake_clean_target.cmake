file(REMOVE_RECURSE
  "libpcc_util.a"
)
