# Empty dependencies file for pcc_util.
# This may be replaced when dependencies are built.
