file(REMOVE_RECURSE
  "CMakeFiles/pcc_util.dir/log.cpp.o"
  "CMakeFiles/pcc_util.dir/log.cpp.o.d"
  "CMakeFiles/pcc_util.dir/options.cpp.o"
  "CMakeFiles/pcc_util.dir/options.cpp.o.d"
  "CMakeFiles/pcc_util.dir/stats.cpp.o"
  "CMakeFiles/pcc_util.dir/stats.cpp.o.d"
  "CMakeFiles/pcc_util.dir/table.cpp.o"
  "CMakeFiles/pcc_util.dir/table.cpp.o.d"
  "libpcc_util.a"
  "libpcc_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pcc_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
