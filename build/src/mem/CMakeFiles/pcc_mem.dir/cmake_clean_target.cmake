file(REMOVE_RECURSE
  "libpcc_mem.a"
)
