# Empty compiler generated dependencies file for pcc_mem.
# This may be replaced when dependencies are built.
