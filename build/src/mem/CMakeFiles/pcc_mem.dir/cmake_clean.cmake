file(REMOVE_RECURSE
  "CMakeFiles/pcc_mem.dir/buddy.cpp.o"
  "CMakeFiles/pcc_mem.dir/buddy.cpp.o.d"
  "CMakeFiles/pcc_mem.dir/phys_mem.cpp.o"
  "CMakeFiles/pcc_mem.dir/phys_mem.cpp.o.d"
  "libpcc_mem.a"
  "libpcc_mem.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pcc_mem.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
