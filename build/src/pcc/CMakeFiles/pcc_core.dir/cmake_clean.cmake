file(REMOVE_RECURSE
  "CMakeFiles/pcc_core.dir/pcc.cpp.o"
  "CMakeFiles/pcc_core.dir/pcc.cpp.o.d"
  "libpcc_core.a"
  "libpcc_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pcc_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
