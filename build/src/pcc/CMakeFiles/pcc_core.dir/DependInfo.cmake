
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/pcc/pcc.cpp" "src/pcc/CMakeFiles/pcc_core.dir/pcc.cpp.o" "gcc" "src/pcc/CMakeFiles/pcc_core.dir/pcc.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/pcc_util.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/pcc_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/pt/CMakeFiles/pcc_pt.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
