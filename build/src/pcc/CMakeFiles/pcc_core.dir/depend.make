# Empty dependencies file for pcc_core.
# This may be replaced when dependencies are built.
