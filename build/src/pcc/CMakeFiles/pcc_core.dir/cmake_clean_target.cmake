file(REMOVE_RECURSE
  "libpcc_core.a"
)
