file(REMOVE_RECURSE
  "CMakeFiles/pcc_analysis.dir/reuse.cpp.o"
  "CMakeFiles/pcc_analysis.dir/reuse.cpp.o.d"
  "libpcc_analysis.a"
  "libpcc_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pcc_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
