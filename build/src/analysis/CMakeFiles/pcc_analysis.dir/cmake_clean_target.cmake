file(REMOVE_RECURSE
  "libpcc_analysis.a"
)
