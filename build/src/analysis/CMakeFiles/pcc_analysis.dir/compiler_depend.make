# Empty compiler generated dependencies file for pcc_analysis.
# This may be replaced when dependencies are built.
