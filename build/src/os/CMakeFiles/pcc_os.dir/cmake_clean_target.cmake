file(REMOVE_RECURSE
  "libpcc_os.a"
)
