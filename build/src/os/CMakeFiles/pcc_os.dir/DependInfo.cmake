
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/os/os.cpp" "src/os/CMakeFiles/pcc_os.dir/os.cpp.o" "gcc" "src/os/CMakeFiles/pcc_os.dir/os.cpp.o.d"
  "/root/repo/src/os/policies.cpp" "src/os/CMakeFiles/pcc_os.dir/policies.cpp.o" "gcc" "src/os/CMakeFiles/pcc_os.dir/policies.cpp.o.d"
  "/root/repo/src/os/process.cpp" "src/os/CMakeFiles/pcc_os.dir/process.cpp.o" "gcc" "src/os/CMakeFiles/pcc_os.dir/process.cpp.o.d"
  "/root/repo/src/os/trace.cpp" "src/os/CMakeFiles/pcc_os.dir/trace.cpp.o" "gcc" "src/os/CMakeFiles/pcc_os.dir/trace.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/pcc_util.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/pcc_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/pt/CMakeFiles/pcc_pt.dir/DependInfo.cmake"
  "/root/repo/build/src/pcc/CMakeFiles/pcc_core.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
