file(REMOVE_RECURSE
  "CMakeFiles/pcc_os.dir/os.cpp.o"
  "CMakeFiles/pcc_os.dir/os.cpp.o.d"
  "CMakeFiles/pcc_os.dir/policies.cpp.o"
  "CMakeFiles/pcc_os.dir/policies.cpp.o.d"
  "CMakeFiles/pcc_os.dir/process.cpp.o"
  "CMakeFiles/pcc_os.dir/process.cpp.o.d"
  "CMakeFiles/pcc_os.dir/trace.cpp.o"
  "CMakeFiles/pcc_os.dir/trace.cpp.o.d"
  "libpcc_os.a"
  "libpcc_os.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pcc_os.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
