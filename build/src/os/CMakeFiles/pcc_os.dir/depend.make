# Empty dependencies file for pcc_os.
# This may be replaced when dependencies are built.
