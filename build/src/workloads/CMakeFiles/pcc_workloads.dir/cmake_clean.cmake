file(REMOVE_RECURSE
  "CMakeFiles/pcc_workloads.dir/graph_workloads.cpp.o"
  "CMakeFiles/pcc_workloads.dir/graph_workloads.cpp.o.d"
  "CMakeFiles/pcc_workloads.dir/registry.cpp.o"
  "CMakeFiles/pcc_workloads.dir/registry.cpp.o.d"
  "CMakeFiles/pcc_workloads.dir/suite_workloads.cpp.o"
  "CMakeFiles/pcc_workloads.dir/suite_workloads.cpp.o.d"
  "CMakeFiles/pcc_workloads.dir/synthetic.cpp.o"
  "CMakeFiles/pcc_workloads.dir/synthetic.cpp.o.d"
  "libpcc_workloads.a"
  "libpcc_workloads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pcc_workloads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
