# Empty dependencies file for pcc_workloads.
# This may be replaced when dependencies are built.
