
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/workloads/graph_workloads.cpp" "src/workloads/CMakeFiles/pcc_workloads.dir/graph_workloads.cpp.o" "gcc" "src/workloads/CMakeFiles/pcc_workloads.dir/graph_workloads.cpp.o.d"
  "/root/repo/src/workloads/registry.cpp" "src/workloads/CMakeFiles/pcc_workloads.dir/registry.cpp.o" "gcc" "src/workloads/CMakeFiles/pcc_workloads.dir/registry.cpp.o.d"
  "/root/repo/src/workloads/suite_workloads.cpp" "src/workloads/CMakeFiles/pcc_workloads.dir/suite_workloads.cpp.o" "gcc" "src/workloads/CMakeFiles/pcc_workloads.dir/suite_workloads.cpp.o.d"
  "/root/repo/src/workloads/synthetic.cpp" "src/workloads/CMakeFiles/pcc_workloads.dir/synthetic.cpp.o" "gcc" "src/workloads/CMakeFiles/pcc_workloads.dir/synthetic.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/pcc_util.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/pcc_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/os/CMakeFiles/pcc_os.dir/DependInfo.cmake"
  "/root/repo/build/src/pcc/CMakeFiles/pcc_core.dir/DependInfo.cmake"
  "/root/repo/build/src/pt/CMakeFiles/pcc_pt.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/pcc_mem.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
