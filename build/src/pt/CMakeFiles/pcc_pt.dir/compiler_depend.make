# Empty compiler generated dependencies file for pcc_pt.
# This may be replaced when dependencies are built.
