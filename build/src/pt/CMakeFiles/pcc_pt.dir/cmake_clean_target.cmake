file(REMOVE_RECURSE
  "libpcc_pt.a"
)
