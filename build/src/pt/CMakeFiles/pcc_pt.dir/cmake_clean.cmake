file(REMOVE_RECURSE
  "CMakeFiles/pcc_pt.dir/page_table.cpp.o"
  "CMakeFiles/pcc_pt.dir/page_table.cpp.o.d"
  "libpcc_pt.a"
  "libpcc_pt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pcc_pt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
