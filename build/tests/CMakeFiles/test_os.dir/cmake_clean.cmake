file(REMOVE_RECURSE
  "CMakeFiles/test_os.dir/os/test_os.cpp.o"
  "CMakeFiles/test_os.dir/os/test_os.cpp.o.d"
  "CMakeFiles/test_os.dir/os/test_os_1g.cpp.o"
  "CMakeFiles/test_os.dir/os/test_os_1g.cpp.o.d"
  "CMakeFiles/test_os.dir/os/test_policies.cpp.o"
  "CMakeFiles/test_os.dir/os/test_policies.cpp.o.d"
  "CMakeFiles/test_os.dir/os/test_process.cpp.o"
  "CMakeFiles/test_os.dir/os/test_process.cpp.o.d"
  "CMakeFiles/test_os.dir/os/test_trace.cpp.o"
  "CMakeFiles/test_os.dir/os/test_trace.cpp.o.d"
  "test_os"
  "test_os.pdb"
  "test_os[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_os.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
