file(REMOVE_RECURSE
  "CMakeFiles/test_pt.dir/pt/test_page_table.cpp.o"
  "CMakeFiles/test_pt.dir/pt/test_page_table.cpp.o.d"
  "CMakeFiles/test_pt.dir/pt/test_walker.cpp.o"
  "CMakeFiles/test_pt.dir/pt/test_walker.cpp.o.d"
  "test_pt"
  "test_pt.pdb"
  "test_pt[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_pt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
