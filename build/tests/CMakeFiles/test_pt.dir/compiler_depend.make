# Empty compiler generated dependencies file for test_pt.
# This may be replaced when dependencies are built.
