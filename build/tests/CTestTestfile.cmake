# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_util[1]_include.cmake")
include("/root/repo/build/tests/test_mem[1]_include.cmake")
include("/root/repo/build/tests/test_tlb[1]_include.cmake")
include("/root/repo/build/tests/test_pt[1]_include.cmake")
include("/root/repo/build/tests/test_pcc[1]_include.cmake")
include("/root/repo/build/tests/test_cache[1]_include.cmake")
include("/root/repo/build/tests/test_graph[1]_include.cmake")
include("/root/repo/build/tests/test_os[1]_include.cmake")
include("/root/repo/build/tests/test_workloads[1]_include.cmake")
include("/root/repo/build/tests/test_sim[1]_include.cmake")
include("/root/repo/build/tests/test_analysis[1]_include.cmake")
include("/root/repo/build/tests/test_integration[1]_include.cmake")
