#!/usr/bin/env python3
"""Compare fresh bench output against committed baselines.

Each baseline under bench/baselines/*.json records how it was produced
(harness binary + arguments) plus two kinds of expectations:

  "bench"  the harness's --format=json document: pure simulation
           output, deterministic by contract, compared for EXACT
           equality — any difference is a correctness regression;
  "perf"   the --perf accounting of the same run: host timings,
           compared only for *regressions* of per-access cost
           (keys ending in "_ns_per_access") beyond a relative
           tolerance (--tolerance, default 0.5 = +50%), since shared
           hosts are noisy. Faster is never a failure. Remaining perf
           keys (counts, totals) are informational.

Exit status: 0 when every baseline matches, 1 on any simulation
difference or per-access regression, 2 on usage/setup errors.

Usage:
  scripts/bench_compare.py                  # compare all baselines
  scripts/bench_compare.py --update         # regenerate baselines
  scripts/bench_compare.py --tolerance=1.0  # allow +100% timing drift
  scripts/bench_compare.py --build=build    # binaries directory root
"""

import argparse
import json
import pathlib
import subprocess
import sys
import tempfile

REPO = pathlib.Path(__file__).resolve().parent.parent
BASELINE_DIR = REPO / "bench" / "baselines"


def run_harness(build, baseline):
    """Run the baseline's harness; return (bench_doc, perf_doc)."""
    binary = pathlib.Path(build) / "bench" / baseline["harness"]
    if not binary.exists():
        sys.exit(f"bench_compare: missing harness binary {binary} "
                 f"(build the repo first)")
    with tempfile.TemporaryDirectory() as tmp:
        perf_path = pathlib.Path(tmp) / "perf.json"
        cmd = [str(binary), *baseline["args"], f"--perf={perf_path}"]
        proc = subprocess.run(cmd, capture_output=True, text=True)
        if proc.returncode != 0:
            sys.exit(f"bench_compare: {' '.join(cmd)} exited "
                     f"{proc.returncode}:\n{proc.stderr}")
        try:
            bench = json.loads(proc.stdout)
        except json.JSONDecodeError as err:
            sys.exit(f"bench_compare: {binary.name} emitted invalid "
                     f"JSON ({err}); was it run with --format=json?")
        perf = json.loads(perf_path.read_text())
    return bench, perf


def compare_one(path, baseline, build, tolerance):
    """Compare one baseline; return a list of failure strings."""
    bench, perf = run_harness(build, baseline)
    failures = []

    if bench != baseline["bench"]:
        failures.append(
            f"{path.name}: simulation output differs from baseline "
            f"(deterministic contract broken or figures changed; rerun "
            f"with --update if the change is intended)")

    for key, expected in baseline["perf"].items():
        if not key.endswith("_ns_per_access"):
            continue
        fresh = perf.get(key)
        if fresh is None:
            failures.append(f"{path.name}: perf key {key} missing "
                            f"from fresh --perf output")
            continue
        if expected > 0 and fresh > expected * (1.0 + tolerance):
            failures.append(
                f"{path.name}: {key} regressed {expected:.2f} -> "
                f"{fresh:.2f} ns (+{(fresh / expected - 1) * 100:.0f}%, "
                f"tolerance +{tolerance * 100:.0f}%)")
    return failures


def update_one(path, baseline, build):
    bench, perf = run_harness(build, baseline)
    baseline["bench"] = bench
    baseline["perf"] = perf
    path.write_text(json.dumps(baseline, indent=2) + "\n")
    print(f"bench_compare: updated {path.relative_to(REPO)}")


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--build", default=str(REPO / "build"),
                        help="CMake build directory with bench binaries")
    parser.add_argument("--tolerance", type=float, default=0.5,
                        help="allowed relative ns_per_access growth")
    parser.add_argument("--update", action="store_true",
                        help="regenerate baselines from fresh runs")
    parser.add_argument("baselines", nargs="*",
                        help="baseline files (default: all committed)")
    args = parser.parse_args()

    paths = ([pathlib.Path(p).resolve() for p in args.baselines]
             or sorted(BASELINE_DIR.glob("*.json")))
    if not paths:
        sys.exit(f"bench_compare: no baselines under {BASELINE_DIR}")

    failures = []
    for path in paths:
        baseline = json.loads(path.read_text())
        if args.update:
            update_one(path, baseline, args.build)
            continue
        found = compare_one(path, baseline, args.build, args.tolerance)
        if found:
            failures.extend(found)
        else:
            print(f"bench_compare: {path.name} OK")

    if failures:
        print("bench_compare: FAILURES", file=sys.stderr)
        for failure in failures:
            print(f"  {failure}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
