#!/usr/bin/env bash
# Wall-clock benchmark of the parallel experiment runner: times
# fig06_pcc_size serially (--jobs=1) and in parallel (--jobs=N),
# verifies the outputs are byte-identical, and writes BENCH_runner.json
# with the wall times, the speedup, and the serial per-access cost —
# mean AND p99 across the batch's simulations — from the runner's own
# --perf accounting.
#
# Usage:
#   scripts/bench_wall.sh                 # --scale=small, N = nproc
#   PCC_SCALE=ci scripts/bench_wall.sh    # quicker, CI-sized inputs
#   PCC_JOBS=8   scripts/bench_wall.sh    # explicit parallel width
#
# Interpreting the result: "speedup" is serial wall / parallel wall for
# the whole harness. On a host with 4+ cores the acceptance target is
# >= 3x. On smaller hosts the parallel run degenerates toward serial
# timeslicing, so the speedup is not a statement about the runner at
# all: the JSON records the host's own concurrency ("hardware_jobs"),
# and when it is below the requested --jobs the speedup field is
# dropped (null) and "speedup_skipped" says why, so downstream
# tooling never gates on a number the host could not produce.

set -euo pipefail

cd "$(dirname "$0")/.."

SCALE="${PCC_SCALE:-small}"
JOBS="${PCC_JOBS:-$(nproc)}"
OUT="${PCC_OUT:-BENCH_runner.json}"

echo "==> building (build/)"
cmake -B build -S . -DCMAKE_BUILD_TYPE=RelWithDebInfo >/dev/null
cmake --build build -j "$(nproc)" --target fig06_pcc_size >/dev/null

BIN=./build/bench/fig06_pcc_size
TMP=$(mktemp -d)
trap 'rm -rf "$TMP"' EXIT

echo "==> serial run (--jobs=1, scale=$SCALE)"
t0=$(date +%s.%N)
"$BIN" --scale="$SCALE" --csv --jobs=1 --perf="$TMP/serial.perf.json" \
    > "$TMP/serial.csv"
t1=$(date +%s.%N)

echo "==> parallel run (--jobs=$JOBS, scale=$SCALE)"
t2=$(date +%s.%N)
"$BIN" --scale="$SCALE" --csv --jobs="$JOBS" \
    --perf="$TMP/parallel.perf.json" > "$TMP/parallel.csv"
t3=$(date +%s.%N)

echo "==> verifying parallel output is byte-identical to serial"
diff -u "$TMP/serial.csv" "$TMP/parallel.csv"

python3 - "$TMP" "$OUT" "$SCALE" "$JOBS" "$t0" "$t1" "$t2" "$t3" <<'EOF'
import json
import os
import sys

tmp, out, scale, jobs, t0, t1, t2, t3 = sys.argv[1:9]
serial_wall = float(t1) - float(t0)
parallel_wall = float(t3) - float(t2)

with open(os.path.join(tmp, "serial.perf.json")) as f:
    serial_perf = json.load(f)
with open(os.path.join(tmp, "parallel.perf.json")) as f:
    parallel_perf = json.load(f)

# What the host actually offers vs what the harness was asked to use;
# a real speedup can only approach min(jobs, hardware_jobs). Prefer
# the runner's own probe (it is what sized the worker pool) and fall
# back to the host view for older perf files.
hardware_jobs = serial_perf.get("host", {}).get(
    "hardware_jobs", os.cpu_count() or 1)
speedup = (
    round(serial_wall / parallel_wall, 3) if parallel_wall > 0 else None
)
speedup_skipped = None
if hardware_jobs < int(jobs):
    # Timeslicing, not concurrency: publishing a "speedup" here would
    # gate on scheduler noise. Keep both walls, drop the ratio.
    speedup = None
    speedup_skipped = (
        f"host offers {hardware_jobs} hardware job(s) but --jobs={jobs}"
        " was requested; parallel wall reflects timeslicing, not the"
        " runner"
    )

report = {
    "benchmark": "fig06_pcc_size",
    "scale": scale,
    "hardware_jobs": hardware_jobs,
    "jobs": int(jobs),
    "serial_wall_s": round(serial_wall, 3),
    "parallel_wall_s": round(parallel_wall, 3),
    "speedup": speedup,
    "speedup_skipped": speedup_skipped,
    "output_identical": True,  # the diff above gates this script
    # Per-access busy cost (summed over workers) — a per-simulation
    # cost, not a latency; timeslicing inflates it when jobs exceeds
    # hardware_jobs.
    "serial_busy_ns_per_access": serial_perf["busy_ns_per_access"],
    "parallel_busy_ns_per_access": parallel_perf["busy_ns_per_access"],
    # Tail of the same distribution: p99 across the batch's individual
    # simulations. A mean that holds while the p99 regresses means one
    # configuration got slower while the rest hid it.
    "serial_p99_busy_ns_per_access": serial_perf.get(
        "p99_busy_ns_per_access"),
    "parallel_p99_busy_ns_per_access": parallel_perf.get(
        "p99_busy_ns_per_access"),
    # Per-access wall cost: the parallel number falls with real
    # concurrency (this is the runner's throughput win, not a per-sim
    # slowdown when it does not).
    "serial_wall_ns_per_access": serial_perf["wall_ns_per_access"],
    "parallel_wall_ns_per_access": parallel_perf["wall_ns_per_access"],
    "serial_runner": serial_perf,
    "parallel_runner": parallel_perf,
}
with open(out, "w") as f:
    json.dump(report, f, indent=2)
    f.write("\n")
print(json.dumps(report, indent=2))
EOF

echo "==> wrote $OUT"
