#!/usr/bin/env bash
# Robustness gate: build and run the test suite under sanitizers.
#
# Usage:
#   scripts/check.sh                 # address + undefined (the default gate)
#   scripts/check.sh address         # one specific sanitizer
#   scripts/check.sh undefined thread
#
# Each sanitizer gets its own build tree (build-asan/, build-ubsan/,
# build-tsan/) so switching never poisons the regular build/ directory.
# The script fails on the first sanitizer whose build or tests fail.

set -euo pipefail

cd "$(dirname "$0")/.."

sanitizers=("$@")
if [ ${#sanitizers[@]} -eq 0 ]; then
    sanitizers=(address undefined)
fi

for san in "${sanitizers[@]}"; do
    case "$san" in
      address)   dir=build-asan ;;
      undefined) dir=build-ubsan ;;
      thread)    dir=build-tsan ;;
      *) echo "unknown sanitizer '$san' (use address|undefined|thread)" >&2
         exit 2 ;;
    esac

    echo "==> [$san] configuring $dir"
    cmake -B "$dir" -S . -DPCCSIM_SANITIZE="$san" \
        -DCMAKE_BUILD_TYPE=RelWithDebInfo >/dev/null

    echo "==> [$san] building"
    cmake --build "$dir" -j "$(nproc)" >/dev/null

    echo "==> [$san] testing"
    # halt_on_error makes UBSan failures fail the test run instead of
    # merely printing; detect_leaks catches frames the simulator drops.
    UBSAN_OPTIONS="print_stacktrace=1:halt_on_error=1" \
    ASAN_OPTIONS="detect_leaks=1" \
        ctest --test-dir "$dir" --output-on-failure -j "$(nproc)"
    echo "==> [$san] clean"
done

echo "All sanitizer gates passed."
