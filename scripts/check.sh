#!/usr/bin/env bash
# Robustness gate: build and run the test suite under sanitizers, then
# prove the parallel runner's determinism contract end to end.
#
# Usage:
#   scripts/check.sh                    # address + undefined + determinism
#                                       #   + telemetry + attribution + bench
#   scripts/check.sh address            # one specific gate
#   scripts/check.sh tsan               # ThreadSanitizer on the runner
#   scripts/check.sh undefined thread
#   scripts/check.sh determinism        # only the --jobs CSV diff
#
# Gates:
#   address | asan        full suite under AddressSanitizer (+ leaks)
#   undefined | ubsan     full suite under UBSan
#   thread | tsan         ThreadSanitizer on the concurrent machinery
#                         (test_runner + the ThreadPool tests)
#   determinism           fig06_pcc_size --scale=ci --jobs=4 must emit
#                         byte-identical CSV to --jobs=1
#   telemetry             fig06 with --telemetry/--trace exports must
#                         emit JSON that parses with the expected
#                         top-level keys, identically at --jobs=2
#   attribution           quickstart --attribution/--audit exports and
#                         stdout must validate and be byte-identical
#                         between --jobs=1 and --jobs=4
#   bench | bench_compare fresh fig06 --format=json output must match
#                         bench/baselines/ (exact simulation equality,
#                         tolerant per-access timing)
#   registry              policy/hw plugin registries: --policy=list /
#                         --hw=list enumerate every key, the contenders
#                         scoreboard (every sweepable policy + hw
#                         backend) emits byte-identical CSV at --jobs=1
#                         and --jobs=4, parameterized selectors run end
#                         to end, and unknown keys are rejected with a
#                         did-you-mean suggestion
#   sampling              sample_check: --sample=W:F miss-rate
#                         estimates on bfs + mcf must land within
#                         max(2 x CI95, 0.5 points) of exact runs
#   fuzz                  50 seeded fuzz_diff iterations (differential
#                         oracle + serial-vs-parallel) must find zero
#                         divergences, and both planted hot-path bugs
#                         must be caught and shrunk
#   resume                a SIGKILL'd fig06 sweep restarted with
#                         --resume must complete byte-identical to an
#                         uninterrupted run, serving the journaled
#                         jobs from the memo instead of re-simulating
#   tenant                fig10_multitenant --selfcheck (1-tenant ASID
#                         run bit-identical to the legacy path,
#                         multi-tenant determinism, ASID < flush
#                         walks), then a reduced sweep must emit
#                         byte-identical CSV at --jobs=1 and --jobs=4
#   histograms            tail-latency telemetry: --histograms must be
#                         metrics-neutral (plain output is a byte
#                         prefix of the histogram run), byte-identical
#                         between --jobs=1 and --jobs=4 (stdout + tail
#                         JSON), the tail JSON must validate (quantile
#                         ordering, per-core counts summing to the
#                         total, sorted bounded exemplars), and the
#                         fig06 --perf p99 must stay within the
#                         bench/baselines/ tolerance
#
# Each sanitizer gets its own build tree (build-asan/, build-ubsan/,
# build-tsan/; determinism, telemetry, attribution and bench use
# build-det/) so switching never poisons the regular build/ directory.
# The script fails on the first gate whose build or tests fail.

set -euo pipefail

cd "$(dirname "$0")/.."

run_determinism() {
    echo "==> [determinism] configuring build-det"
    cmake -B build-det -S . -DCMAKE_BUILD_TYPE=RelWithDebInfo >/dev/null
    echo "==> [determinism] building fig06_pcc_size"
    cmake --build build-det -j "$(nproc)" --target fig06_pcc_size \
        >/dev/null
    echo "==> [determinism] fig06 --jobs=4 vs --jobs=1 CSV diff"
    local tmp
    tmp=$(mktemp -d)
    trap 'rm -rf "$tmp"' RETURN
    ./build-det/bench/fig06_pcc_size --scale=ci --csv --jobs=1 \
        > "$tmp/serial.csv"
    ./build-det/bench/fig06_pcc_size --scale=ci --csv --jobs=4 \
        > "$tmp/parallel.csv"
    if ! diff -u "$tmp/serial.csv" "$tmp/parallel.csv"; then
        echo "determinism gate FAILED: parallel output diverged" >&2
        return 1
    fi
    echo "==> [determinism] clean (byte-identical output)"
}

run_telemetry() {
    echo "==> [telemetry] configuring build-det"
    cmake -B build-det -S . -DCMAKE_BUILD_TYPE=RelWithDebInfo >/dev/null
    echo "==> [telemetry] building fig06_pcc_size"
    cmake --build build-det -j "$(nproc)" --target fig06_pcc_size \
        >/dev/null
    echo "==> [telemetry] exporting series + trace at --jobs=1 and --jobs=2"
    local tmp
    tmp=$(mktemp -d)
    trap 'rm -rf "$tmp"' RETURN
    for jobs in 1 2; do
        ./build-det/bench/fig06_pcc_size --scale=ci --csv \
            --jobs="$jobs" \
            --telemetry="$tmp/series$jobs.json" \
            --trace="$tmp/trace$jobs.json" > /dev/null
    done
    echo "==> [telemetry] validating JSON shape"
    python3 - "$tmp" <<'PYEOF'
import json, sys

tmp = sys.argv[1]
series = json.load(open(tmp + "/series1.json"))
for key in ("intervals", "series", "counters", "events",
            "events_dropped"):
    assert key in series, f"series.json missing {key!r}"
assert series["intervals"] > 0, "no intervals sampled"
for name, values in series["series"].items():
    assert len(values) == series["intervals"], \
        f"series {name!r}: {len(values)} != {series['intervals']}"

trace = json.load(open(tmp + "/trace1.json"))
for key in ("traceEvents", "displayTimeUnit", "otherData"):
    assert key in trace, f"trace.json missing {key!r}"
assert trace["traceEvents"], "empty trace"
for event in trace["traceEvents"]:
    for key in ("name", "cat", "ph", "ts", "pid", "args"):
        assert key in event, f"trace event missing {key!r}"

for name in ("series", "trace"):
    a = open(f"{tmp}/{name}1.json").read()
    b = open(f"{tmp}/{name}2.json").read()
    assert a == b, f"{name} export diverged between --jobs=1 and 2"
print("telemetry exports validate")
PYEOF
    echo "==> [telemetry] clean"
}

run_attribution() {
    echo "==> [attribution] configuring build-det"
    cmake -B build-det -S . -DCMAKE_BUILD_TYPE=RelWithDebInfo >/dev/null
    echo "==> [attribution] building quickstart"
    cmake --build build-det -j "$(nproc)" --target quickstart >/dev/null
    echo "==> [attribution] quickstart --attribution/--audit at --jobs=1 and --jobs=4"
    local tmp
    tmp=$(mktemp -d)
    trap 'rm -rf "$tmp"' RETURN
    for jobs in 1 4; do
        ./build-det/examples/quickstart --format=csv --jobs="$jobs" \
            --attribution="$tmp/attr$jobs.json" \
            --audit="$tmp/audit$jobs.json" \
            > "$tmp/stdout$jobs.csv" 2>/dev/null
    done
    echo "==> [attribution] byte-comparing serial vs parallel"
    for name in stdout1.csv attr1.json audit1.json; do
        par="${name/1/4}"
        if ! diff -u "$tmp/$name" "$tmp/$par"; then
            echo "attribution gate FAILED: $name diverged at --jobs=4" >&2
            return 1
        fi
    done
    echo "==> [attribution] validating export shape"
    python3 - "$tmp" <<'PYEOF'
import json, sys

tmp = sys.argv[1]
attr = json.load(open(tmp + "/attr1.json"))
for key in ("budget", "tracked_regions", "total_walks",
            "total_walk_cycles", "untracked", "regions", "cdf", "hub",
            "by_1g"):
    assert key in attr, f"attribution missing {key!r}"
assert attr["regions"], "no regions attributed"
assert attr["total_walks"] > 0, "no walks attributed"
tracked = sum(r["walk_cycles"] for r in attr["regions"])
total = tracked + attr["untracked"]["walk_cycles"]
assert total == attr["total_walk_cycles"], \
    f"walk-cycle conservation broke: {total} != {attr['total_walk_cycles']}"
cycles = [r["walk_cycles"] for r in attr["regions"]]
assert cycles == sorted(cycles, reverse=True), "rows not sorted"

audit = json.load(open(tmp + "/audit1.json"))
for key in ("records", "records_dropped", "reasons", "decisions",
            "regret"):
    assert key in audit, f"audit missing {key!r}"
assert audit["decisions"], "no decisions recorded"
for dec in audit["decisions"]:
    for key in ("ts", "pid", "base", "action", "reason", "rank",
                "counter", "cycles"):
        assert key in dec, f"decision missing {key!r}"
assert "total_cycles" in audit["regret"], "regret missing total_cycles"
print("attribution + audit exports validate")
PYEOF
    echo "==> [attribution] clean"
}

run_bench_compare() {
    echo "==> [bench] configuring build-det"
    cmake -B build-det -S . -DCMAKE_BUILD_TYPE=RelWithDebInfo >/dev/null
    echo "==> [bench] building fig06_pcc_size + fig10_multitenant + contenders"
    cmake --build build-det -j "$(nproc)" --target fig06_pcc_size \
        --target fig10_multitenant --target contenders >/dev/null
    echo "==> [bench] comparing against bench/baselines/"
    python3 scripts/bench_compare.py --build=build-det
    echo "==> [bench] clean"
}

run_registry() {
    echo "==> [registry] configuring build-det"
    cmake -B build-det -S . -DCMAKE_BUILD_TYPE=RelWithDebInfo >/dev/null
    echo "==> [registry] building contenders + policy_explorer"
    cmake --build build-det -j "$(nproc)" --target contenders \
        --target policy_explorer >/dev/null
    local tmp
    tmp=$(mktemp -d)
    trap 'rm -rf "$tmp"' RETURN
    echo "==> [registry] --policy=list / --hw=list enumerate and exit 0"
    ./build-det/bench/contenders --policy=list > "$tmp/policies.txt"
    ./build-det/bench/contenders --hw=list > "$tmp/hw.txt"
    for key in base-4k all-huge linux-thp hawkeye pcc trace-replay \
               trident ubpf; do
        if ! grep -Eq "^[[:space:]]*$key " "$tmp/policies.txt"; then
            echo "registry gate FAILED: '$key' missing from" \
                 "--policy=list" >&2
            return 1
        fi
    done
    if ! grep -Eq "^[[:space:]]*victima-reach " "$tmp/hw.txt"; then
        echo "registry gate FAILED: 'victima-reach' missing from" \
             "--hw=list" >&2
        return 1
    fi
    echo "==> [registry] every contender, serial vs --jobs=4 CSV diff"
    ./build-det/bench/contenders --scale=ci --csv --jobs=1 \
        > "$tmp/serial.csv"
    ./build-det/bench/contenders --scale=ci --csv --jobs=4 \
        > "$tmp/parallel.csv"
    if ! diff -u "$tmp/serial.csv" "$tmp/parallel.csv"; then
        echo "registry gate FAILED: parallel output diverged" >&2
        return 1
    fi
    echo "==> [registry] parameterized selectors run end to end"
    for sel in trident "pcc:promote=8,order=rr" "ubpf:prog=topk" \
               "victima-reach:mult=4"; do
        case "$sel" in
          victima*) flag="--hw=$sel" ;;
          *)        flag="--policy=$sel" ;;
        esac
        if ! ./build-det/examples/policy_explorer --scale=ci \
            "$flag" > /dev/null; then
            echo "registry gate FAILED: policy_explorer $flag" \
                 "exited nonzero" >&2
            return 1
        fi
    done
    echo "==> [registry] unknown key rejection (did-you-mean)"
    if ./build-det/bench/contenders --policy=tridnet \
        > /dev/null 2> "$tmp/err.txt"; then
        echo "registry gate FAILED: unknown policy accepted" >&2
        return 1
    fi
    if ! grep -qi "trident" "$tmp/err.txt"; then
        echo "registry gate FAILED: no did-you-mean suggestion" >&2
        cat "$tmp/err.txt" >&2
        return 1
    fi
    echo "==> [registry] clean"
}

run_sampling() {
    echo "==> [sampling] configuring build-det"
    cmake -B build-det -S . -DCMAKE_BUILD_TYPE=RelWithDebInfo >/dev/null
    echo "==> [sampling] building sample_check"
    cmake --build build-det -j "$(nproc)" --target sample_check \
        >/dev/null
    # Two workloads (one graph kernel, one suite model), exact vs
    # sampled: the estimate must land within max(2 x its own 95% CI,
    # 0.5 miss-%-points) of the exact run. sample_check exits nonzero
    # on the first workload outside tolerance.
    echo "==> [sampling] bfs + mcf, sampled estimate vs exact miss rate"
    ./build-det/bench/sample_check --scale=ci --apps=bfs,mcf \
        --sample=20000:80000 --tol-ci=2.0 --tol-abs=0.5
    echo "==> [sampling] clean"
}

run_fuzz() {
    echo "==> [fuzz] configuring build-det"
    cmake -B build-det -S . -DCMAKE_BUILD_TYPE=RelWithDebInfo >/dev/null
    echo "==> [fuzz] building fuzz_diff"
    cmake --build build-det -j "$(nproc)" --target fuzz_diff >/dev/null
    echo "==> [fuzz] 50 seeded iterations (oracle + parallel diff)"
    ./build-det/bench/fuzz_diff --iters=50 --seed=1
    echo "==> [fuzz] planted-bug self-tests"
    ./build-det/bench/fuzz_diff --mutation=skip-l2-fill
    ./build-det/bench/fuzz_diff --mutation=stale-ltc
    echo "==> [fuzz] clean"
}

run_resume() {
    echo "==> [resume] configuring build-det"
    cmake -B build-det -S . -DCMAKE_BUILD_TYPE=RelWithDebInfo >/dev/null
    echo "==> [resume] building fig06_pcc_size"
    cmake --build build-det -j "$(nproc)" --target fig06_pcc_size \
        >/dev/null
    local tmp
    tmp=$(mktemp -d)
    trap 'rm -rf "$tmp"' RETURN
    echo "==> [resume] reference run (no journal)"
    ./build-det/bench/fig06_pcc_size --scale=ci --csv --jobs=2 \
        > "$tmp/reference.csv"
    echo "==> [resume] journaled run, SIGKILL'd mid-sweep"
    ./build-det/bench/fig06_pcc_size --scale=ci --csv --jobs=2 \
        --resume="$tmp/journal.txt" > "$tmp/killed.csv" 2>/dev/null &
    local pid=$!
    sleep 2
    if kill -9 "$pid" 2>/dev/null; then
        echo "==> [resume] killed pid $pid"
    else
        echo "==> [resume] run finished before the kill (still valid:" \
             "the journal then holds every job)"
    fi
    wait "$pid" 2>/dev/null || true
    if [ ! -f "$tmp/journal.txt" ]; then
        echo "resume gate FAILED: journal file never created" >&2
        return 1
    fi
    echo "==> [resume] restarting with --resume"
    ./build-det/bench/fig06_pcc_size --scale=ci --csv --jobs=2 \
        --resume="$tmp/journal.txt" --perf="$tmp/perf.json" \
        > "$tmp/resumed.csv"
    if ! diff -u "$tmp/reference.csv" "$tmp/resumed.csv"; then
        echo "resume gate FAILED: resumed output diverged" >&2
        return 1
    fi
    echo "==> [resume] validating journal accounting"
    python3 - "$tmp" <<'PYEOF'
import json, sys

tmp = sys.argv[1]
perf = json.load(open(tmp + "/perf.json"))
runner = perf["runner"]
loaded = runner["journal_loaded"]
assert loaded > 0, "no jobs were recovered from the journal"
assert runner["journal_malformed"] <= 1, \
    f"too many malformed records: {runner['journal_malformed']}" \
    " (at most the one torn by the kill)"
assert perf["memo_hits"] >= loaded, \
    f"memo hits {perf['memo_hits']} < journaled jobs {loaded}"
print(f"resume recovered {loaded} jobs"
      f" ({runner['journal_malformed']} torn),"
      f" {perf['memo_hits']} memo hits")
PYEOF
    echo "==> [resume] clean"
}

run_tenant() {
    echo "==> [tenant] configuring build-det"
    cmake -B build-det -S . -DCMAKE_BUILD_TYPE=RelWithDebInfo >/dev/null
    echo "==> [tenant] building fig10_multitenant"
    cmake --build build-det -j "$(nproc)" --target fig10_multitenant \
        >/dev/null
    echo "==> [tenant] selfcheck (1-tenant identity, determinism, ASID < flush)"
    ./build-det/bench/fig10_multitenant --scale=ci --selfcheck
    echo "==> [tenant] reduced sweep --jobs=4 vs --jobs=1 CSV diff"
    local tmp
    tmp=$(mktemp -d)
    trap 'rm -rf "$tmp"' RETURN
    local sweep_args=(--scale=ci --csv --tenants=2 --frag=0,0.9
                      --arbiter=static,propshare)
    ./build-det/bench/fig10_multitenant "${sweep_args[@]}" --jobs=1 \
        > "$tmp/serial.csv"
    ./build-det/bench/fig10_multitenant "${sweep_args[@]}" --jobs=4 \
        > "$tmp/parallel.csv"
    if ! diff -u "$tmp/serial.csv" "$tmp/parallel.csv"; then
        echo "tenant gate FAILED: parallel output diverged" >&2
        return 1
    fi
    echo "==> [tenant] clean (selfcheck passed, byte-identical output)"
}

run_histograms() {
    echo "==> [histograms] configuring build-det"
    cmake -B build-det -S . -DCMAKE_BUILD_TYPE=RelWithDebInfo >/dev/null
    echo "==> [histograms] building fig06_pcc_size"
    cmake --build build-det -j "$(nproc)" --target fig06_pcc_size \
        >/dev/null
    local tmp
    tmp=$(mktemp -d)
    trap 'rm -rf "$tmp"' RETURN

    echo "==> [histograms] neutrality: --histograms must not disturb the tables"
    ./build-det/bench/fig06_pcc_size --scale=ci --csv --jobs=1 \
        > "$tmp/plain.csv"
    ./build-det/bench/fig06_pcc_size --scale=ci --csv --jobs=1 \
        --histograms="$tmp/tail1.json" > "$tmp/hist1.csv"
    # The histogram run may only *append* sections: the plain output
    # must be a byte-for-byte prefix of it.
    if ! head -n "$(wc -l < "$tmp/plain.csv")" "$tmp/hist1.csv" \
            | diff -u - "$tmp/plain.csv"; then
        echo "histograms gate FAILED: --histograms changed the figure" \
             "tables" >&2
        return 1
    fi
    if cmp -s "$tmp/plain.csv" "$tmp/hist1.csv"; then
        echo "histograms gate FAILED: --histograms emitted no tail" \
             "sections" >&2
        return 1
    fi

    echo "==> [histograms] determinism: --jobs=4 vs --jobs=1 (stdout + JSON)"
    ./build-det/bench/fig06_pcc_size --scale=ci --csv --jobs=4 \
        --histograms="$tmp/tail4.json" > "$tmp/hist4.csv"
    if ! diff -u "$tmp/hist1.csv" "$tmp/hist4.csv"; then
        echo "histograms gate FAILED: parallel stdout diverged" >&2
        return 1
    fi
    if ! diff -u "$tmp/tail1.json" "$tmp/tail4.json"; then
        echo "histograms gate FAILED: parallel tail JSON diverged" >&2
        return 1
    fi

    echo "==> [histograms] validating tail JSON shape"
    python3 - "$tmp" <<'PYEOF'
import json, sys

tail = json.load(open(sys.argv[1] + "/tail1.json"))
for key in ("enabled", "exemplar_k", "total", "per_core", "per_job",
            "exemplars"):
    assert key in tail, f"tail.json missing {key!r}"
assert tail["enabled"] is True

total = tail["total"]["translation"]
assert total["count"] > 0, "no accesses recorded"
for hist in (total, tail["total"]["walk"]):
    if hist["count"] == 0:
        continue
    # Quantiles are bucket lower bounds, so p50 may sit just below the
    # exact min, but the series must be monotone and capped by max.
    assert hist["p50"] <= hist["p90"] <= hist["p99"] <= hist["p999"] \
        <= hist["max"], f"quantiles out of order: {hist}"
    assert hist["min"] <= hist["max"]
    assert sum(n for _, n in hist["buckets"]) == hist["count"]

per_core = sum(c["translation"]["count"] for c in tail["per_core"])
assert per_core == total["count"], \
    f"per-core counts {per_core} != total {total['count']}"
per_job = sum(j["translation"]["count"] for j in tail["per_job"])
assert per_job == total["count"], \
    f"per-job counts {per_job} != total {total['count']}"

k = tail["exemplar_k"]
for name, worst in tail["exemplars"].items():
    assert len(worst) <= k, f"{name}: {len(worst)} exemplars > K={k}"
    cycles = [e["cycles"] for e in worst]
    for e in worst:
        for key in ("ts", "core", "pid", "region", "cycles",
                    "walk_cycles", "stall_cycles", "outcome",
                    "shootdowns", "audit"):
            assert key in e, f"{name} exemplar missing {key!r}"
worst = tail["exemplars"]["translation"]
metrics = [e["cycles"] for e in worst]
assert metrics == sorted(metrics, reverse=True), \
    "translation exemplars not sorted worst-first"
print(f"tail JSON validates: {total['count']} accesses,"
      f" p99={total['p99']} cycles,"
      f" {len(worst)} worst exemplars")
PYEOF

    echo "==> [histograms] p99 regression gate vs bench/baselines/"
    python3 - <<'PYEOF'
import json
base = json.load(open("bench/baselines/fig06_ci.json"))
perf = base.get("perf", {})
assert "p99_busy_ns_per_access" in perf, \
    "fig06_ci.json baseline is missing p99_busy_ns_per_access"
print(f"baseline p99 = {perf['p99_busy_ns_per_access']} ns/access")
PYEOF
    python3 scripts/bench_compare.py --build=build-det \
        bench/baselines/fig06_ci.json
    echo "==> [histograms] clean"
}

gates=("$@")
if [ ${#gates[@]} -eq 0 ]; then
    gates=(address undefined determinism telemetry attribution bench \
           registry sampling fuzz resume tenant histograms)
fi

for gate in "${gates[@]}"; do
    case "$gate" in
      address|asan)    san=address;   dir=build-asan ;;
      undefined|ubsan) san=undefined; dir=build-ubsan ;;
      thread|tsan)     san=thread;    dir=build-tsan ;;
      determinism)
         run_determinism
         continue ;;
      telemetry)
         run_telemetry
         continue ;;
      attribution)
         run_attribution
         continue ;;
      bench|bench_compare)
         run_bench_compare
         continue ;;
      registry)
         run_registry
         continue ;;
      sampling)
         run_sampling
         continue ;;
      fuzz)
         run_fuzz
         continue ;;
      resume)
         run_resume
         continue ;;
      tenant)
         run_tenant
         continue ;;
      histograms)
         run_histograms
         continue ;;
      *) echo "unknown gate '$gate'" \
              "(use address|undefined|thread|determinism|telemetry|" \
              "attribution|bench|registry|sampling|fuzz|resume|tenant|" \
              "histograms)" >&2
         exit 2 ;;
    esac

    echo "==> [$san] configuring $dir"
    cmake -B "$dir" -S . -DPCCSIM_SANITIZE="$san" \
        -DCMAKE_BUILD_TYPE=RelWithDebInfo >/dev/null

    echo "==> [$san] building"
    cmake --build "$dir" -j "$(nproc)" >/dev/null

    echo "==> [$san] testing"
    if [ "$san" = thread ]; then
        # TSan's value is in the concurrent machinery: the runner, its
        # thread pool, and the shared state they guard. Restricting the
        # run keeps the gate fast while covering every code path the
        # workers touch (each runner test executes whole simulations).
        TSAN_OPTIONS="halt_on_error=1" \
            ctest --test-dir "$dir" --output-on-failure \
                -R '^(Runner\.|SpecKey\.|ThreadPool\.)' \
                -j "$(nproc)"
    else
        # halt_on_error makes UBSan failures fail the test run instead
        # of merely printing; detect_leaks catches dropped frames.
        UBSAN_OPTIONS="print_stacktrace=1:halt_on_error=1" \
        ASAN_OPTIONS="detect_leaks=1" \
            ctest --test-dir "$dir" --output-on-failure -j "$(nproc)"
    fi
    echo "==> [$san] clean"
done

echo "All gates passed."
