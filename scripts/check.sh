#!/usr/bin/env bash
# Robustness gate: build and run the test suite under sanitizers, then
# prove the parallel runner's determinism contract end to end.
#
# Usage:
#   scripts/check.sh                    # address + undefined + determinism
#   scripts/check.sh address            # one specific gate
#   scripts/check.sh tsan               # ThreadSanitizer on the runner
#   scripts/check.sh undefined thread
#   scripts/check.sh determinism        # only the --jobs CSV diff
#
# Gates:
#   address | asan        full suite under AddressSanitizer (+ leaks)
#   undefined | ubsan     full suite under UBSan
#   thread | tsan         ThreadSanitizer on the concurrent machinery
#                         (test_runner + the ThreadPool tests)
#   determinism           fig06_pcc_size --scale=ci --jobs=4 must emit
#                         byte-identical CSV to --jobs=1
#
# Each sanitizer gets its own build tree (build-asan/, build-ubsan/,
# build-tsan/; determinism uses build-det/) so switching never poisons
# the regular build/ directory. The script fails on the first gate
# whose build or tests fail.

set -euo pipefail

cd "$(dirname "$0")/.."

run_determinism() {
    echo "==> [determinism] configuring build-det"
    cmake -B build-det -S . -DCMAKE_BUILD_TYPE=RelWithDebInfo >/dev/null
    echo "==> [determinism] building fig06_pcc_size"
    cmake --build build-det -j "$(nproc)" --target fig06_pcc_size \
        >/dev/null
    echo "==> [determinism] fig06 --jobs=4 vs --jobs=1 CSV diff"
    local tmp
    tmp=$(mktemp -d)
    trap 'rm -rf "$tmp"' RETURN
    ./build-det/bench/fig06_pcc_size --scale=ci --csv --jobs=1 \
        > "$tmp/serial.csv"
    ./build-det/bench/fig06_pcc_size --scale=ci --csv --jobs=4 \
        > "$tmp/parallel.csv"
    if ! diff -u "$tmp/serial.csv" "$tmp/parallel.csv"; then
        echo "determinism gate FAILED: parallel output diverged" >&2
        return 1
    fi
    echo "==> [determinism] clean (byte-identical output)"
}

gates=("$@")
if [ ${#gates[@]} -eq 0 ]; then
    gates=(address undefined determinism)
fi

for gate in "${gates[@]}"; do
    case "$gate" in
      address|asan)    san=address;   dir=build-asan ;;
      undefined|ubsan) san=undefined; dir=build-ubsan ;;
      thread|tsan)     san=thread;    dir=build-tsan ;;
      determinism)
         run_determinism
         continue ;;
      *) echo "unknown gate '$gate'" \
              "(use address|undefined|thread|determinism)" >&2
         exit 2 ;;
    esac

    echo "==> [$san] configuring $dir"
    cmake -B "$dir" -S . -DPCCSIM_SANITIZE="$san" \
        -DCMAKE_BUILD_TYPE=RelWithDebInfo >/dev/null

    echo "==> [$san] building"
    cmake --build "$dir" -j "$(nproc)" >/dev/null

    echo "==> [$san] testing"
    if [ "$san" = thread ]; then
        # TSan's value is in the concurrent machinery: the runner, its
        # thread pool, and the shared state they guard. Restricting the
        # run keeps the gate fast while covering every code path the
        # workers touch (each runner test executes whole simulations).
        TSAN_OPTIONS="halt_on_error=1" \
            ctest --test-dir "$dir" --output-on-failure \
                -R '^(Runner\.|SpecKey\.|ThreadPool\.)' \
                -j "$(nproc)"
    else
        # halt_on_error makes UBSan failures fail the test run instead
        # of merely printing; detect_leaks catches dropped frames.
        UBSAN_OPTIONS="print_stacktrace=1:halt_on_error=1" \
        ASAN_OPTIONS="detect_leaks=1" \
            ctest --test-dir "$dir" --output-on-failure -j "$(nproc)"
    fi
    echo "==> [$san] clean"
done

echo "All gates passed."
