/**
 * @file
 * Accuracy gate for SMARTS-style sampled simulation (--sample=W:F):
 * runs each requested workload twice — exact and sampled — and
 * asserts the sampled miss-rate estimate lands within tolerance of
 * the exact run's miss rate. scripts/check.sh runs this as the
 * `sampling` gate.
 *
 * Tolerance: |sampled - exact| <= max(tol_ci * ci95, tol_abs), i.e.
 * the estimate must sit inside a multiple of its own reported 95%
 * confidence half-width, with an absolute floor for workloads whose
 * windows agree so tightly that the interval collapses to ~0. The
 * floor also absorbs the cold-start bias of the first window, which
 * the estimator deliberately keeps (dropping it would hide a real
 * simulator transient from the other gates).
 *
 * Extra flags on top of the common bench set:
 *   --sample=W:F    window geometry (default 20000:80000)
 *   --tol-ci=K      CI multiple (default 2.0)
 *   --tol-abs=PCT   absolute floor in miss-%-points (default 0.5)
 */

#include <cmath>

#include "common.hpp"

using namespace pccsim;
using namespace pccsim::bench;

int
main(int argc, char **argv)
{
    BenchEnv env = BenchEnv::parse(argc, argv, {"bfs", "mcf"});
    Options opts(argc, argv);
    const double tol_ci = opts.getDouble("tol-ci", 2.0);
    const double tol_abs = opts.getDouble("tol-abs", 0.5);
    if (!env.sampling.enabled()) {
        env.sampling.window = 20'000;
        env.sampling.fastforward = 80'000;
    }

    // One batch: exact + sampled per app. The runner memo keeps the
    // exact runs shared with any other harness on the same journal.
    std::vector<sim::ExperimentSpec> specs;
    for (const auto &app : env.apps) {
        sim::ExperimentSpec exact = env.spec(app, sim::PolicyKind::Pcc);
        exact.sampling = {};
        specs.push_back(std::move(exact));
        specs.push_back(env.spec(app, sim::PolicyKind::Pcc));
    }
    const auto results = runAll(specs);

    bool ok = true;
    Table table({"app", "exact_miss", "sampled_miss", "ci95",
                 "tolerance", "windows", "ff_share", "verdict"});
    for (size_t a = 0; a < env.apps.size(); ++a) {
        const sim::RunResult &exact = *results[2 * a];
        const sim::RunResult &sampled = *results[2 * a + 1];
        const sim::SamplingStats &stats = sampled.sampling;

        const double exact_miss = exact.job().tlbMissPercent();
        const double tolerance =
            std::max(tol_ci * stats.miss_rate_ci95, tol_abs);
        const double err =
            std::abs(stats.miss_rate_mean - exact_miss);
        const bool pass = stats.enabled && stats.windows > 0 &&
                          err <= tolerance;
        ok = ok && pass;

        const double ff_share =
            stats.ff_accesses == 0
                ? 0.0
                : 100.0 * static_cast<double>(stats.ff_accesses) /
                      static_cast<double>(sampled.job().accesses);
        table.row({env.apps[a], Table::fmt(exact_miss, 3),
                   Table::fmt(stats.miss_rate_mean, 3),
                   Table::fmt(stats.miss_rate_ci95, 3),
                   Table::fmt(tolerance, 3),
                   std::to_string(stats.windows),
                   Table::fmt(ff_share, 1), pass ? "PASS" : "FAIL"});
    }
    env.emit(table, "Sampled vs exact TLB miss rate (--sample=" +
                        std::to_string(env.sampling.window) + ":" +
                        std::to_string(env.sampling.fastforward) +
                        ")");
    return ok ? 0 : 1;
}
