/**
 * @file
 * Reproduces Fig. 7 (plus the 50%-fragmentation variant discussed in
 * Sec. 5.1.1): speedups of the graph applications when system memory
 * is heavily fragmented, comparing 4KB baseline, HawkEye, Linux's
 * greedy THP, the PCC policy, and PCC with pressure-driven demotion.
 *
 * Shape targets: PCC > HawkEye > / ~= Linux THP; demotion changes
 * little (the PCC finds its high-utility candidates early).
 */

#include "common.hpp"

using namespace pccsim;
using namespace pccsim::bench;

int
main(int argc, char **argv)
{
    BenchEnv env = BenchEnv::parse(
        argc, argv, workloads::graphWorkloadNames());
    BaselineCache baselines(env);
    baselines.prefetch(env.apps);
    Options opts(argc, argv);

    for (double frag : {0.5, 0.9}) {
        // Batch the whole fragmentation level (4 policies x apps).
        std::vector<sim::ExperimentSpec> specs;
        for (const auto &app : env.apps) {
            auto hawk_spec = env.spec(app, sim::PolicyKind::HawkEye);
            hawk_spec.frag_fraction = frag;
            specs.push_back(std::move(hawk_spec));

            auto thp_spec = env.spec(app, sim::PolicyKind::LinuxThp);
            thp_spec.frag_fraction = frag;
            specs.push_back(std::move(thp_spec));

            auto pcc_spec = env.spec(app, sim::PolicyKind::Pcc);
            pcc_spec.frag_fraction = frag;
            specs.push_back(pcc_spec);

            auto demote_spec = pcc_spec;
            demote_spec.pcc_policy.demote_on_pressure = true;
            specs.push_back(std::move(demote_spec));
        }
        const auto results = runAll(specs);

        Table table({"app", "baseline", "hawkeye", "linux-thp", "pcc",
                     "pcc+demote"});
        std::vector<double> pcc_vs_linux;
        std::vector<double> pcc_vs_hawk;
        for (size_t a = 0; a < env.apps.size(); ++a) {
            const auto &app = env.apps[a];
            const auto &base = baselines.get(app);
            const double hawk = sim::speedup(base, *results[4 * a]);
            const double linux_thp =
                sim::speedup(base, *results[4 * a + 1]);
            const double pcc = sim::speedup(base, *results[4 * a + 2]);
            const double pcc_demote =
                sim::speedup(base, *results[4 * a + 3]);

            table.row({app, "1.000", Table::fmt(hawk, 3),
                       Table::fmt(linux_thp, 3), Table::fmt(pcc, 3),
                       Table::fmt(pcc_demote, 3)});
            pcc_vs_linux.push_back(pcc / linux_thp);
            pcc_vs_hawk.push_back(pcc / hawk);
        }
        env.emit(table,
                 "Fig. 7: speedup at " +
                     Table::fmt(frag * 100, 0) +
                     "% memory fragmentation");
        std::printf("  PCC vs linux-thp geomean: %.3fx"
                    "  (paper: 1.14x @50%% / 1.16x @90%%)\n"
                    "  PCC vs hawkeye geomean:  %.3fx"
                    "  (paper: 1.15x @90%%)\n\n",
                    geomean(pcc_vs_linux), geomean(pcc_vs_hawk));
    }
    emitTailSummary();
    emitTelemetryFooter();
    return 0;
}
