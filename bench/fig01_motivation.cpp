/**
 * @file
 * Reproduces Fig. 1: TLB miss rate and speedup for every Table 1
 * application under (a) 100% 4KB pages, (b) 100% 2MB pages (ideal,
 * unfragmented), and (c) Linux's greedy THP policy with 50% of memory
 * fragmented. Shape targets: 2MB pages give large gains on the graph
 * and canneal/omnetpp/xalancbmk workloads (geomean ~1.3x in the
 * paper), dedup and mcf are near-insensitive, and greedy THP under
 * fragmentation rarely beats base pages.
 */

#include "common.hpp"
#include "util/stats.hpp"

using namespace pccsim;
using namespace pccsim::bench;

int
main(int argc, char **argv)
{
    BenchEnv env = BenchEnv::parse(argc, argv);
    BaselineCache baselines(env);

    Table miss({"app", "4KB miss %", "2MB miss %", "THP(50%) miss %"});
    Table speed({"app", "4KB", "2MB", "Linux THP (50% frag)"});
    std::vector<double> huge_speedups;

    for (const auto &app : env.apps) {
        const auto &base = baselines.get(app);

        auto ideal_spec = env.spec(app, sim::PolicyKind::AllHuge);
        const auto ideal = sim::runOne(ideal_spec);

        auto thp_spec = env.spec(app, sim::PolicyKind::LinuxThp);
        thp_spec.frag_fraction = 0.5;
        const auto thp = sim::runOne(thp_spec);

        miss.row({app, Table::fmt(base.job().tlbMissPercent(), 2),
                  Table::fmt(ideal.job().tlbMissPercent(), 2),
                  Table::fmt(thp.job().tlbMissPercent(), 2)});
        speed.row({app, "1.000",
                   Table::fmt(sim::speedup(base, ideal), 3),
                   Table::fmt(sim::speedup(base, thp), 3)});
        huge_speedups.push_back(sim::speedup(base, ideal));
    }

    env.emit(miss, "Fig. 1 (top): TLB miss rate");
    env.emit(speed, "Fig. 1 (bottom): speedup over 4KB pages");
    std::printf("geomean 2MB speedup: %.3f (paper: ~1.3x)\n",
                geomean(huge_speedups));
    return 0;
}
