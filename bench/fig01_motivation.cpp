/**
 * @file
 * Reproduces Fig. 1: TLB miss rate and speedup for every Table 1
 * application under (a) 100% 4KB pages, (b) 100% 2MB pages (ideal,
 * unfragmented), and (c) Linux's greedy THP policy with 50% of memory
 * fragmented. Shape targets: 2MB pages give large gains on the graph
 * and canneal/omnetpp/xalancbmk workloads (geomean ~1.3x in the
 * paper), dedup and mcf are near-insensitive, and greedy THP under
 * fragmentation rarely beats base pages.
 */

#include "common.hpp"
#include "util/stats.hpp"

using namespace pccsim;
using namespace pccsim::bench;

int
main(int argc, char **argv)
{
    BenchEnv env = BenchEnv::parse(argc, argv);
    BaselineCache baselines(env);
    baselines.prefetch(env.apps);

    // Batch every app's (ideal, THP) pair through the runner so the
    // whole figure fans out across --jobs workers.
    std::vector<sim::ExperimentSpec> specs;
    for (const auto &app : env.apps) {
        specs.push_back(env.spec(app, sim::PolicyKind::AllHuge));
        auto thp_spec = env.spec(app, sim::PolicyKind::LinuxThp);
        thp_spec.frag_fraction = 0.5;
        specs.push_back(std::move(thp_spec));
    }
    const auto results = runAll(specs);

    Table miss({"app", "4KB miss %", "2MB miss %", "THP(50%) miss %"});
    Table speed({"app", "4KB", "2MB", "Linux THP (50% frag)"});
    std::vector<double> huge_speedups;

    for (size_t a = 0; a < env.apps.size(); ++a) {
        const auto &app = env.apps[a];
        const auto &base = baselines.get(app);
        const auto &ideal = *results[2 * a];
        const auto &thp = *results[2 * a + 1];

        miss.row({app, Table::fmt(base.job().tlbMissPercent(), 2),
                  Table::fmt(ideal.job().tlbMissPercent(), 2),
                  Table::fmt(thp.job().tlbMissPercent(), 2)});
        speed.row({app, "1.000",
                   Table::fmt(sim::speedup(base, ideal), 3),
                   Table::fmt(sim::speedup(base, thp), 3)});
        huge_speedups.push_back(sim::speedup(base, ideal));
    }

    env.emit(miss, "Fig. 1 (top): TLB miss rate");
    env.emit(speed, "Fig. 1 (bottom): speedup over 4KB pages");
    std::printf("geomean 2MB speedup: %.3f (paper: ~1.3x)\n",
                geomean(huge_speedups));
    return 0;
}
