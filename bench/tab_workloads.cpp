/**
 * @file
 * Reproduces Table 1: the evaluated applications with this
 * repository's input equivalents at the selected scale — graph node /
 * edge counts and simulated memory footprints, plus the paper's
 * original inputs for comparison.
 */

#include "common.hpp"
#include "graph/generators.hpp"
#include "workloads/registry.hpp"

using namespace pccsim;
using namespace pccsim::bench;

namespace {

std::string
mb(u64 bytes)
{
    return Table::fmt(static_cast<double>(bytes) / (1 << 20), 1) + "MB";
}

} // namespace

int
main(int argc, char **argv)
{
    BenchEnv env = BenchEnv::parse(argc, argv);
    const auto params = workloads::scaleParams(env.scale);

    Table table({"app", "input", "nodes", "edges(sym)", "footprint"});
    for (const auto &app : env.apps) {
        workloads::WorkloadSpec spec;
        spec.name = app;
        spec.scale = env.scale;
        spec.seed = env.seed;
        auto workload = workloads::makeWorkload(spec);
        os::Process proc(0, 16ull << 30);
        workload->setup(proc);

        if (workloads::isGraphWorkload(app)) {
            const u64 nodes = u64(1) << params.graph_scale;
            const u64 edges = nodes * params.avg_degree;
            table.row({app,
                       "Kronecker " +
                           std::to_string(params.graph_scale),
                       std::to_string(nodes), std::to_string(edges),
                       mb(proc.footprintBytes())});
        } else {
            table.row({app, "synthetic model", "-", "-",
                       mb(proc.footprintBytes())});
        }
    }
    env.emit(table, "Table 1 equivalent: applications and inputs");

    std::printf(
        "paper inputs for reference: Kronecker 25 / Twitter / Sd1 Web\n"
        "(34-95M nodes, 1-2B edges, 10-38GB); PARSEC native\n"
        "(canneal 860MB, dedup 838MB); SPEC2017 (mcf 5GB,\n"
        "omnetpp 252MB, xalancbmk 427MB). See DESIGN.md for the\n"
        "scale-profile mapping.\n");
    return 0;
}
