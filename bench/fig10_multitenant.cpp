/**
 * @file
 * Multi-tenant node sweep (the tenant-subsystem companion to Fig. 9):
 * N single-threaded tenants time-share one core under the contention
 * scheduler, and the sweep crosses tenant count x fragmentation x
 * huge-page budget arbiter, with flush-on-switch vs ASID-tagged TLBs
 * side by side. Per point it reports wall cycles, total walks, TLB
 * miss rate, context switches, promotions, compaction runs (how the
 * node pays for fragmentation), arbiter budget rejections, and the
 * counterfactual regret those rejections cost.
 *
 * Shape targets: ASID tagging strictly reduces walks and wall time at
 * every point (the refill storm after each quantum disappears);
 * "static" keeps promotions near-equal across tenants while "greedy"
 * follows raw demand; budget rejections and regret appear only when an
 * arbiter other than greedy constrains a tenant below its demand.
 *
 * Extra flags beyond the common set (bench/common.hpp):
 *   --tenants=2,4        tenant counts to sweep
 *   --frag=0,0.9         fragmentation fractions to sweep (the
 *                        paper's stress level; mild fragmentation is
 *                        invisible while unpinned huge frames remain)
 *   --arbiter=greedy,static,propshare   arbiters to sweep
 *   --switch=flush,asid  context-switch modes to sweep
 *   --quantum=1024       scheduler quantum in ops
 *   --budget=1           promotions allowed per interval
 *                        (regions_to_promote; deliberately tight so
 *                        the arbiters have something to arbitrate —
 *                        0 restores the footprint-scaled auto budget)
 *   --selfcheck          run the subsystem's acceptance checks
 *                        (1-tenant bit-identity vs the legacy path,
 *                        multi-tenant determinism, ASID < flush) and
 *                        exit nonzero on the first violation
 */

#include <memory>

#include "common.hpp"
#include "util/thread_pool.hpp"
#include "workloads/registry.hpp"

using namespace pccsim;
using namespace pccsim::bench;

namespace {

struct Point
{
    u32 tenants;
    double frag;
    std::string arbiter;
    tenant::SwitchMode mode;
};

struct SweepOptions
{
    std::vector<u32> tenants{2, 4};
    std::vector<double> frags{0.0, 0.9};
    std::vector<std::string> arbiters{"greedy", "static", "propshare"};
    std::vector<tenant::SwitchMode> modes{tenant::SwitchMode::Flush,
                                          tenant::SwitchMode::Asid};
    u32 quantum = 1024;
    u32 budget = 1;
};

std::vector<std::string>
splitList(const std::string &csv)
{
    std::vector<std::string> out;
    std::stringstream ss(csv);
    std::string item;
    while (std::getline(ss, item, ','))
        out.push_back(item);
    return out;
}

sim::SystemConfig
tenantConfig(const BenchEnv &env, const SweepOptions &sweep,
             const std::string &arbiter, tenant::SwitchMode mode,
             double frag)
{
    sim::SystemConfig cfg = sim::SystemConfig::forScale(env.scale);
    cfg.num_cores = 1;
    cfg.tenant.cores = 1;
    cfg.tenant.switch_mode = mode;
    cfg.tenant.quantum_ops = sweep.quantum;
    cfg.policy = sim::PolicyKind::Pcc;
    // Registry selectors (trident, ubpf:prog=topk, pcc:promote=8, ...)
    // flow straight into the tenant sweep: the regret scoreboard ranks
    // whatever contender --policy selects.
    if (const std::string sel = env.policySelector(); !sel.empty()) {
        if (const auto st = sim::applyPolicySelector(cfg, sel); !st.ok())
            fatal(st.toString());
    }
    cfg.hw = env.hw;
    cfg.pcc_policy.arbiter = arbiter;
    cfg.pcc_policy.regions_to_promote = sweep.budget;
    cfg.frag_fraction = frag;
    cfg.telemetry.enabled = true;
    cfg.telemetry.audit = true;
    // --histograms rides along: the sweep's first run then feeds the
    // tail summary and gives --trace exports per-tenant pid lanes.
    cfg.telemetry.histograms = env.telemetry.histograms;
    cfg.telemetry.exemplar_k = env.telemetry.exemplar_k;
    cfg.seed = env.seed;
    return cfg;
}

/** Build the tenants' workloads: apps round-robin, per-tenant seeds. */
std::vector<std::unique_ptr<workloads::Workload>>
tenantWorkloads(const BenchEnv &env, u32 tenants)
{
    std::vector<std::unique_ptr<workloads::Workload>> ws;
    ws.reserve(tenants);
    for (u32 t = 0; t < tenants; ++t) {
        workloads::WorkloadSpec spec;
        spec.name = env.apps[t % env.apps.size()];
        spec.scale = env.scale;
        spec.seed = env.seed + t;
        ws.push_back(workloads::makeWorkload(spec));
    }
    return ws;
}

sim::RunResult
runPoint(const BenchEnv &env, const SweepOptions &sweep, const Point &p)
{
    auto ws = tenantWorkloads(env, p.tenants);
    sim::System system(
        tenantConfig(env, sweep, p.arbiter, p.mode, p.frag));
    std::vector<sim::System::Job> jobs;
    jobs.reserve(ws.size());
    for (auto &w : ws)
        jobs.push_back({w.get(), 1});
    return system.run(std::move(jobs));
}

u64
totalWalks(const sim::RunResult &r)
{
    u64 walks = 0;
    for (const auto &job : r.jobs)
        walks += job.walks;
    return walks;
}

double
missPercent(const sim::RunResult &r)
{
    u64 walks = 0, tlb = 0;
    for (const auto &job : r.jobs) {
        walks += job.walks;
        tlb += job.tlb_accesses;
    }
    return percent(walks, tlb);
}

u64
totalPromotions(const sim::RunResult &r)
{
    u64 promos = 0;
    for (const auto &job : r.jobs)
        promos += job.promotions;
    return promos;
}

u64
counterOf(const sim::RunResult &r, const std::string &name)
{
    if (!r.telemetry)
        return 0;
    for (const auto &[key, value] : r.telemetry->counters) {
        if (key == name)
            return value;
    }
    return 0;
}

u64
budgetSkips(const sim::RunResult &r)
{
    if (!r.telemetry)
        return 0;
    for (const auto &[key, count] : r.telemetry->audit.reason_counts) {
        if (key == "skip:tenant-budget")
            return count;
    }
    return 0;
}

void
sweepTable(const BenchEnv &env, const SweepOptions &sweep)
{
    std::vector<Point> points;
    for (u32 tenants : sweep.tenants) {
        for (double frag : sweep.frags) {
            for (const auto &arbiter : sweep.arbiters) {
                for (tenant::SwitchMode mode : sweep.modes)
                    points.push_back({tenants, frag, arbiter, mode});
            }
        }
    }

    // Multi-job runs are not expressible as ExperimentSpecs (same
    // reason as fig09), so fan out directly on a worker pool;
    // parallelMap keeps input order, so output is --jobs-invariant.
    util::ThreadPool pool(env.jobs);
    const auto runs = pool.parallelMap(points, [&](const Point &p) {
        return runPoint(env, sweep, p);
    });

    Table table({"tenants", "frag", "arbiter", "switch", "wall Mcyc",
                 "walks", "miss %", "switches", "THPs", "compactions",
                 "budget skips", "regret Mcyc"});
    for (size_t i = 0; i < runs.size(); ++i) {
        const auto &r = runs[i];
        // Raw-System sweeps bypass runAll, so feed the exit exports
        // (--trace/--telemetry/--histograms) here; input order makes
        // "first report" --jobs-invariant.
        bench::detail::noteResult(r);
        table.row({std::to_string(points[i].tenants),
                   Table::fmt(points[i].frag, 2), points[i].arbiter,
                   tenant::to_string(points[i].mode),
                   Table::fmt(static_cast<double>(r.wall_cycles) / 1e6,
                              1),
                   std::to_string(totalWalks(r)),
                   Table::fmt(missPercent(r), 2),
                   std::to_string(counterOf(r, "tenant_switches")),
                   std::to_string(totalPromotions(r)),
                   std::to_string(counterOf(r, "compactions")),
                   std::to_string(budgetSkips(r)),
                   Table::fmt(static_cast<double>(sim::regretCycles(r)) /
                                  1e6,
                              2)});
    }
    env.emit(table,
             "Fig. 10: multi-tenant node (tenants x fragmentation x "
             "arbiter, flush vs ASID)");
}

// ---------------------------------------------------------- selfcheck

bool
checkOneTenantIdentity(const BenchEnv &env, const SweepOptions &sweep)
{
    // A 1-tenant tenant-mode run must be stat-for-stat identical
    // (telemetry content included) to the legacy single-process path.
    auto makeOne = [&] {
        workloads::WorkloadSpec spec;
        spec.name = env.apps.front();
        spec.scale = env.scale;
        spec.seed = env.seed;
        return workloads::makeWorkload(spec);
    };
    sim::SystemConfig legacy_cfg = sim::SystemConfig::forScale(env.scale);
    legacy_cfg.num_cores = 1;
    legacy_cfg.policy = sim::PolicyKind::Pcc;
    if (const std::string sel = env.policySelector(); !sel.empty()) {
        if (const auto st = sim::applyPolicySelector(legacy_cfg, sel);
            !st.ok()) {
            fatal(st.toString());
        }
    }
    legacy_cfg.hw = env.hw;
    legacy_cfg.pcc_policy.regions_to_promote = sweep.budget;
    legacy_cfg.telemetry.enabled = true;
    legacy_cfg.telemetry.audit = true;
    legacy_cfg.seed = env.seed;

    auto legacy_w = makeOne();
    sim::System legacy_sys(legacy_cfg);
    const auto legacy = legacy_sys.run(*legacy_w);

    auto tenant_w = makeOne();
    sim::System tenant_sys(tenantConfig(
        env, sweep, /*arbiter=*/"", tenant::SwitchMode::Asid, 0.0));
    const auto tenanted = tenant_sys.run(*tenant_w);

    if (!(legacy == tenanted)) {
        std::printf("selfcheck FAILED: 1-tenant ASID run diverged from "
                    "the legacy path (wall %llu vs %llu, walks %llu vs "
                    "%llu)\n",
                    static_cast<unsigned long long>(legacy.wall_cycles),
                    static_cast<unsigned long long>(tenanted.wall_cycles),
                    static_cast<unsigned long long>(totalWalks(legacy)),
                    static_cast<unsigned long long>(totalWalks(tenanted)));
        return false;
    }
    std::printf("selfcheck: 1-tenant ASID run identical to legacy path\n");
    return true;
}

bool
checkDeterminism(const BenchEnv &env, const SweepOptions &sweep)
{
    const Point p{2, 0.0, "static", tenant::SwitchMode::Asid};
    const auto r1 = runPoint(env, sweep, p);
    const auto r2 = runPoint(env, sweep, p);
    if (!(r1 == r2)) {
        std::printf("selfcheck FAILED: repeated 2-tenant run is not "
                    "deterministic\n");
        return false;
    }
    std::printf("selfcheck: multi-tenant runs deterministic\n");
    return true;
}

bool
checkAsidBeatsFlush(const BenchEnv &env, const SweepOptions &sweep)
{
    const auto flush = runPoint(
        env, sweep, {2, 0.0, "greedy", tenant::SwitchMode::Flush});
    const auto asid = runPoint(
        env, sweep, {2, 0.0, "greedy", tenant::SwitchMode::Asid});
    if (totalWalks(asid) >= totalWalks(flush)) {
        std::printf("selfcheck FAILED: ASID walks (%llu) not below "
                    "flush-on-switch walks (%llu)\n",
                    static_cast<unsigned long long>(totalWalks(asid)),
                    static_cast<unsigned long long>(totalWalks(flush)));
        return false;
    }
    std::printf("selfcheck: ASID tagging beats flush-on-switch "
                "(%llu vs %llu walks)\n",
                static_cast<unsigned long long>(totalWalks(asid)),
                static_cast<unsigned long long>(totalWalks(flush)));
    return true;
}

} // namespace

int
main(int argc, char **argv)
{
    BenchEnv env = BenchEnv::parse(argc, argv, {"pr", "mcf"});
    Options opts(argc, argv);

    SweepOptions sweep;
    sweep.quantum = static_cast<u32>(opts.getInt("quantum", 1024));
    sweep.budget = static_cast<u32>(opts.getInt("budget", 1));
    if (opts.has("tenants")) {
        sweep.tenants.clear();
        for (const auto &t : splitList(opts.get("tenants")))
            sweep.tenants.push_back(
                static_cast<u32>(std::strtoul(t.c_str(), nullptr, 10)));
    }
    if (opts.has("frag")) {
        sweep.frags.clear();
        for (const auto &f : splitList(opts.get("frag")))
            sweep.frags.push_back(std::strtod(f.c_str(), nullptr));
    }
    if (opts.has("arbiter"))
        sweep.arbiters = splitList(opts.get("arbiter"));
    if (opts.has("switch")) {
        sweep.modes.clear();
        for (const auto &m : splitList(opts.get("switch"))) {
            const auto mode = tenant::parseSwitchMode(m);
            if (!mode)
                fatal("unknown --switch=", m, " (use flush or asid)");
            sweep.modes.push_back(*mode);
        }
    }
    for (const auto &arbiter : sweep.arbiters) {
        if (!tenant::makeArbiter(arbiter)) {
            fatal("unknown --arbiter=", arbiter,
                  " (use greedy, static, or propshare)");
        }
    }

    if (opts.getBool("selfcheck")) {
        bool ok = checkOneTenantIdentity(env, sweep);
        ok = checkDeterminism(env, sweep) && ok;
        ok = checkAsidBeatsFlush(env, sweep) && ok;
        return ok ? 0 : 1;
    }

    sweepTable(env, sweep);
    emitTailSummary();
    emitTelemetryFooter();
    return 0;
}
