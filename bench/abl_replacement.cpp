/**
 * @file
 * Ablation for Sec. 3.2.1's replacement-policy claim: LFU (with LRU
 * tiebreak) vs pure LRU victim selection in the PCC should perform
 * nearly identically when the PCC is sized to hold the hot-region
 * set, and LFU should retain an edge when the PCC is undersized
 * (thrashing) because it keeps locally optimal candidates resident.
 */

#include "common.hpp"

using namespace pccsim;
using namespace pccsim::bench;

int
main(int argc, char **argv)
{
    BenchEnv env = BenchEnv::parse(
        argc, argv, workloads::graphWorkloadNames());
    BaselineCache baselines(env);

    for (u32 entries : {128u, 8u}) {
        Table table({"app", "LFU+LRU tie", "pure LRU", "delta %"});
        for (const auto &app : env.apps) {
            const auto &base = baselines.get(app);
            auto run_with = [&](pcc::Replacement replacement) {
                auto spec = env.spec(app, sim::PolicyKind::Pcc);
                spec.cap_percent = 32.0;
                spec.tweak = [entries,
                              replacement](sim::SystemConfig &cfg) {
                    cfg.pcc.pcc2m.entries = entries;
                    cfg.pcc.pcc2m.replacement = replacement;
                };
                return sim::speedup(base, sim::runOne(spec));
            };
            const double lfu = run_with(pcc::Replacement::LfuLruTie);
            const double lru = run_with(pcc::Replacement::PureLru);
            table.row({app, Table::fmt(lfu, 3), Table::fmt(lru, 3),
                       Table::fmt(100.0 * (lfu - lru) / lru, 2)});
        }
        env.emit(table, "Replacement ablation, " +
                            std::to_string(entries) + "-entry PCC");
    }
    return 0;
}
