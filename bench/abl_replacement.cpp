/**
 * @file
 * Ablation for Sec. 3.2.1's replacement-policy claim: LFU (with LRU
 * tiebreak) vs pure LRU victim selection in the PCC should perform
 * nearly identically when the PCC is sized to hold the hot-region
 * set, and LFU should retain an edge when the PCC is undersized
 * (thrashing) because it keeps locally optimal candidates resident.
 */

#include "common.hpp"

using namespace pccsim;
using namespace pccsim::bench;

int
main(int argc, char **argv)
{
    BenchEnv env = BenchEnv::parse(
        argc, argv, workloads::graphWorkloadNames());
    BaselineCache baselines(env);
    baselines.prefetch(env.apps);

    auto spec_with = [&](const std::string &app, u32 entries,
                         pcc::Replacement replacement,
                         const char *label) {
        auto spec = env.spec(app, sim::PolicyKind::Pcc);
        spec.cap_percent = 32.0;
        spec.tweak = [entries, replacement](sim::SystemConfig &cfg) {
            cfg.pcc.pcc2m.entries = entries;
            cfg.pcc.pcc2m.replacement = replacement;
        };
        spec.tweak_key =
            "pcc2m=" + std::to_string(entries) + ",repl=" + label;
        return spec;
    };

    for (u32 entries : {128u, 8u}) {
        std::vector<sim::ExperimentSpec> specs;
        for (const auto &app : env.apps) {
            specs.push_back(spec_with(app, entries,
                                      pcc::Replacement::LfuLruTie,
                                      "lfu"));
            specs.push_back(spec_with(app, entries,
                                      pcc::Replacement::PureLru,
                                      "lru"));
        }
        const auto results = runAll(specs);

        Table table({"app", "LFU+LRU tie", "pure LRU", "delta %"});
        for (size_t a = 0; a < env.apps.size(); ++a) {
            const auto &base = baselines.get(env.apps[a]);
            const double lfu = sim::speedup(base, *results[2 * a]);
            const double lru = sim::speedup(base, *results[2 * a + 1]);
            table.row({env.apps[a], Table::fmt(lfu, 3),
                       Table::fmt(lru, 3),
                       Table::fmt(100.0 * (lfu - lru) / lru, 2)});
        }
        env.emit(table, "Replacement ablation, " +
                            std::to_string(entries) + "-entry PCC");
    }
    return 0;
}
