/**
 * @file
 * Microbenchmarks for the radix page table and the hardware walker
 * with split PWCs: walk cost, PWC effectiveness, and the promote /
 * demote splicing operations.
 */

#include <benchmark/benchmark.h>

#include "pt/walker.hpp"
#include "util/rng.hpp"

using namespace pccsim;
using namespace pccsim::pt;

namespace {

constexpr Addr kHeap = 0x1000'0000'0000ull;

} // namespace

static void
BM_WalkSequential(benchmark::State &state)
{
    PageTable pt;
    Walker walker;
    for (u64 p = 0; p < 4096; ++p)
        pt.mapBase(kHeap + p * 4096, p);
    u64 p = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(walker.walk(pt, kHeap + p * 4096));
        p = (p + 1) % 4096;
    }
    state.counters["refs_per_walk"] = walker.refsPerWalk();
}
BENCHMARK(BM_WalkSequential);

static void
BM_WalkRandom(benchmark::State &state)
{
    PageTable pt;
    Walker walker;
    const u64 pages = static_cast<u64>(state.range(0));
    for (u64 p = 0; p < pages; ++p)
        pt.mapBase(kHeap + p * 4096, p);
    Rng rng(9);
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            walker.walk(pt, kHeap + rng.below(pages) * 4096));
    }
    state.counters["refs_per_walk"] = walker.refsPerWalk();
}
BENCHMARK(BM_WalkRandom)->Arg(1024)->Arg(262144);

static void
BM_PageTableLookup(benchmark::State &state)
{
    PageTable pt;
    for (u64 p = 0; p < 4096; ++p)
        pt.mapBase(kHeap + p * 4096, p);
    Rng rng(11);
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            pt.lookup(kHeap + rng.below(4096) * 4096));
    }
}
BENCHMARK(BM_PageTableLookup);

static void
BM_PromoteDemoteSplice(benchmark::State &state)
{
    PageTable pt;
    for (u64 p = 0; p < 512; ++p)
        pt.mapBase(kHeap + p * 4096, p);
    for (auto _ : state) {
        pt.mapHuge2M(kHeap, 0);
        pt.demote2M(kHeap);
    }
}
BENCHMARK(BM_PromoteDemoteSplice);

static void
BM_HawkEyeScanRegion(benchmark::State &state)
{
    PageTable pt;
    Walker walker;
    for (u64 p = 0; p < 512; ++p) {
        pt.mapBase(kHeap + p * 4096, p);
        walker.walk(pt, kHeap + p * 4096);
    }
    for (auto _ : state) {
        benchmark::DoNotOptimize(pt.countAccessed4K(kHeap));
        pt.clearAccessed(kHeap);
    }
}
BENCHMARK(BM_HawkEyeScanRegion);
