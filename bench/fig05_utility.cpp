/**
 * @file
 * Reproduces Fig. 5: single-thread performance-utility curves (top)
 * and page-table-walk rates (bottom) for all eight applications, with
 * huge pages limited to 0,1,2,4,...,64,~100% of the footprint, under
 * the PCC policy and HawkEye. Also prints the max-THP ideal and the
 * Linux THP points at 50% and 90% fragmentation.
 *
 * Shape targets: PCC >= HawkEye everywhere; the PCC reaches ~70%+ of
 * the ideal gain by the small-percentage caps; PTW% plateaus where
 * speedup plateaus.
 */

#include "common.hpp"

using namespace pccsim;
using namespace pccsim::bench;

int
main(int argc, char **argv)
{
    BenchEnv env = BenchEnv::parse(argc, argv);
    BaselineCache baselines(env);
    baselines.prefetch(env.apps);

    // Batch the per-app reference points up front; the utility curves
    // below batch their own nine points through the same runner.
    std::vector<sim::ExperimentSpec> refs;
    for (const auto &app : env.apps) {
        refs.push_back(env.spec(app, sim::PolicyKind::AllHuge));
        auto thp50 = env.spec(app, sim::PolicyKind::LinuxThp);
        thp50.frag_fraction = 0.5;
        refs.push_back(std::move(thp50));
        auto thp90 = env.spec(app, sim::PolicyKind::LinuxThp);
        thp90.frag_fraction = 0.9;
        refs.push_back(std::move(thp90));
    }
    const auto ref_runs = runAll(refs);

    for (size_t a = 0; a < env.apps.size(); ++a) {
        const auto &app = env.apps[a];
        const auto &base = baselines.get(app);
        const auto &ideal = *ref_runs[3 * a];
        const auto &linux50 = *ref_runs[3 * a + 1];
        const auto &linux90 = *ref_runs[3 * a + 2];

        const auto pcc_curve =
            sim::utilityCurve(env.spec(app, sim::PolicyKind::Pcc),
                              base);
        const auto hawk_curve =
            sim::utilityCurve(env.spec(app, sim::PolicyKind::HawkEye),
                              base);

        Table table({"cap %", "PCC speedup", "HawkEye speedup",
                     "PCC PTW %", "HawkEye PTW %"});
        for (size_t i = 0; i < pcc_curve.size(); ++i) {
            table.row({capLabel(pcc_curve[i].cap_percent),
                       Table::fmt(pcc_curve[i].speedup, 3),
                       Table::fmt(hawk_curve[i].speedup, 3),
                       Table::fmt(pcc_curve[i].ptw_percent, 2),
                       Table::fmt(hawk_curve[i].ptw_percent, 2)});
        }
        env.emit(table, "Fig. 5 utility curve: " + app);
        std::printf(
            "  reference lines: ideal=%.3f  linux-thp(50%% frag)=%.3f"
            "  linux-thp(90%% frag)=%.3f  baseline PTW=%.2f%%\n\n",
            sim::speedup(base, ideal), sim::speedup(base, linux50),
            sim::speedup(base, linux90), base.job().ptwPercent());
    }
    return 0;
}
