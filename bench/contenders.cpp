/**
 * @file
 * Contender scoreboard: run every sweepable policy in the plugin
 * registry — the six legacy policies plus registry-only contenders
 * (trident, ubpf) — and every translation-hardware backend on one
 * workload, with the promotion audit enabled, and rank them by
 * counterfactual regret.
 *
 * This is the registry's end-to-end exercise: every contender is
 * selected purely through its registry string (no PolicyKind switch
 * anywhere in this file), each gets its own per-policy metric table
 * (identical headers, which the CSV emitter dedupes into one loadable
 * block), and the final scoreboard mirrors fig10's regret ranking.
 *
 * Usage: contenders [--scale=ci] [--apps=bfs] [--frag=0.5] [--cap=8]
 *                   [--jobs=N] [--format=text|csv|json]
 */

#include "common.hpp"

#include "os/policy_registry.hpp"
#include "tlb/hw_registry.hpp"

using namespace pccsim;
using namespace pccsim::bench;

namespace {

struct Contender
{
    std::string label;    //!< scoreboard row name
    std::string selector; //!< policy-registry selector
    std::string hw;       //!< hw-registry selector ("" = baseline)
};

/**
 * Every sweepable registry policy on baseline hardware, then the PCC
 * policy once per non-default hardware backend — the hardware axis is
 * orthogonal to the policy axis, so one well-understood policy is
 * enough to expose each backend's effect.
 */
std::vector<Contender>
contenders()
{
    std::vector<Contender> out;
    for (const auto &entry : os::PolicyRegistry::instance().entries()) {
        if (!entry.sweepable)
            continue;
        out.push_back({entry.key, entry.key, ""});
    }
    for (const auto &entry : tlb::HwRegistry::instance().entries()) {
        if (entry.key == "default")
            continue;
        out.push_back({"pcc+" + entry.key, "pcc", entry.key});
    }
    return out;
}

} // namespace

int
main(int argc, char **argv)
{
    BenchEnv env = BenchEnv::parse(argc, argv, {"bfs"});
    Options opts(argc, argv);
    const double frag = opts.getDouble("frag", 0.5);
    const double cap = opts.getDouble("cap", 8.0);
    const std::string app = env.apps.front();

    const auto list = contenders();

    // One batch: baseline first, then every contender.
    std::vector<sim::ExperimentSpec> specs;
    sim::ExperimentSpec base = env.spec(app, sim::PolicyKind::Base);
    base.cap_percent = 0.0;
    specs.push_back(base);
    for (const auto &c : list) {
        sim::ExperimentSpec s = env.spec(app, sim::PolicyKind::Base);
        if (const auto status =
                sim::applyPolicySelector(s, c.selector);
            !status.ok()) {
            fatal(status.toString());
        }
        s.hw = c.hw;
        s.frag_fraction = frag;
        s.cap_percent = cap;
        s.telemetry.enabled = true;
        s.telemetry.audit = true;
        specs.push_back(std::move(s));
    }
    const auto results = runAll(specs);
    const sim::RunResult &base_run = *results.front();

    // Per-contender tables: identical headers on purpose — the CSV
    // emitter collapses them into one contiguous block.
    const std::vector<std::string> header = {
        "contender", "speedup", "tlb miss %", "ptw %", "promos",
        "1g promos", "huge %", "regret cycles"};
    struct Row
    {
        std::string label;
        double speedup;
        u64 regret;
    };
    std::vector<Row> board;
    for (size_t i = 0; i < list.size(); ++i) {
        const sim::RunResult &run = *results[i + 1];
        const auto &job = run.job();
        const u64 regret = sim::regretCycles(run);
        const double speedup = sim::speedup(base_run, run);
        Table table(header);
        table.row({list[i].label, Table::fmt(speedup, 3),
                   Table::fmt(job.tlbMissPercent(), 2),
                   Table::fmt(job.ptwPercent(), 2),
                   std::to_string(job.promotions),
                   std::to_string(job.promotions_1g),
                   Table::fmt(job.hugeCoveragePercent(), 1),
                   std::to_string(regret)});
        env.emit(table, "contender: " + list[i].label);
        board.push_back({list[i].label, speedup, regret});
    }

    // Scoreboard: regret ascending (less regret = better selection),
    // speedup descending as the tiebreak.
    std::stable_sort(board.begin(), board.end(),
                     [](const Row &a, const Row &b) {
                         if (a.regret != b.regret)
                             return a.regret < b.regret;
                         return a.speedup > b.speedup;
                     });
    Table scoreboard({"rank", "contender", "speedup", "regret cycles"});
    for (size_t i = 0; i < board.size(); ++i) {
        scoreboard.row({std::to_string(i + 1), board[i].label,
                        Table::fmt(board[i].speedup, 3),
                        std::to_string(board[i].regret)});
    }
    env.emit(scoreboard, "contender scoreboard (regret ranking)");
    return 0;
}
