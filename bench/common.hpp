/**
 * @file
 * Shared plumbing for the figure-reproduction harnesses: CLI options,
 * cached baseline runs, and uniform table output.
 *
 * Every harness accepts:
 *   --scale=ci|small|medium|paper   input/hardware profile
 *   --apps=bfs,sssp,...             workload subset
 *   --seed=N                        generator seed
 *   --csv                           emit CSV instead of aligned text
 *
 * The default scale is `ci` so the whole suite regenerates in
 * minutes; pass --scale=small or --scale=medium for records closer
 * to the paper's ratios (see DESIGN.md on scale profiles).
 */

#pragma once

#include <cstdio>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "sim/experiment.hpp"
#include "util/options.hpp"
#include "util/table.hpp"

namespace pccsim::bench {

struct BenchEnv
{
    workloads::Scale scale = workloads::Scale::Ci;
    std::vector<std::string> apps;
    u64 seed = 42;
    bool csv = false;

    static BenchEnv
    parse(int argc, char **argv,
          std::vector<std::string> default_apps =
              workloads::allWorkloadNames())
    {
        Options opts(argc, argv);
        BenchEnv env;
        env.scale = workloads::scaleFromString(
            opts.get("scale", "ci"));
        env.seed = static_cast<u64>(opts.getInt("seed", 42));
        env.csv = opts.getBool("csv");
        if (opts.has("apps")) {
            std::stringstream ss(opts.get("apps"));
            std::string app;
            while (std::getline(ss, app, ','))
                env.apps.push_back(app);
        } else {
            env.apps = std::move(default_apps);
        }
        return env;
    }

    sim::ExperimentSpec
    spec(const std::string &app, sim::PolicyKind policy) const
    {
        sim::ExperimentSpec s;
        s.workload.name = app;
        s.workload.scale = scale;
        s.workload.seed = seed;
        s.policy = policy;
        return s;
    }

    void
    emit(const Table &table, const std::string &title) const
    {
        std::printf("## %s (scale=%s)\n\n%s\n", title.c_str(),
                    workloads::to_string(scale).c_str(),
                    csv ? table.csv().c_str() : table.str().c_str());
    }
};

/** Baseline (4KB-only) runs, cached per workload. */
class BaselineCache
{
  public:
    explicit BaselineCache(const BenchEnv &env) : env_(env) {}

    const sim::RunResult &
    get(const std::string &app)
    {
        auto it = cache_.find(app);
        if (it != cache_.end())
            return it->second;
        sim::ExperimentSpec spec =
            env_.spec(app, sim::PolicyKind::Base);
        spec.cap_percent = 0.0;
        return cache_.emplace(app, sim::runOne(spec)).first->second;
    }

  private:
    const BenchEnv &env_;
    std::map<std::string, sim::RunResult> cache_;
};

/** Render the utility-cap x-axis value the way the paper labels it. */
inline std::string
capLabel(double cap)
{
    if (cap < 0)
        return "~100";
    return Table::fmt(cap, 0);
}

} // namespace pccsim::bench
