/**
 * @file
 * Shared plumbing for the figure-reproduction harnesses: CLI options,
 * cached baseline runs, and uniform table output.
 *
 * Every harness accepts:
 *   --scale=ci|small|medium|paper   input/hardware profile
 *   --apps=bfs,sssp,...             workload subset
 *   --seed=N                        generator seed
 *   --csv                           emit CSV instead of aligned text
 *   --format=text|csv|json          output format (--csv still works)
 *   --jobs=N                        parallel simulations (0 = host
 *                                   concurrency, the default)
 *   --perf=FILE                     write runner accounting as JSON
 *   --policy=SELECTOR               policy override where the harness
 *                                   honors one. Any policy-registry
 *                                   selector works: bare keys (pcc,
 *                                   trident), parameterized forms
 *                                   (pcc:promote=8,order=rr), and
 *                                   aliases. --policy=list prints the
 *                                   registry and exits.
 *   --hw=SELECTOR                   translation-hardware backend
 *                                   applied to every spec (e.g.
 *                                   victima-reach:mult=8). --hw=list
 *                                   prints the registry and exits.
 *   --telemetry=FILE                collect per-interval series and
 *                                   write them (with final counters)
 *                                   as JSON at exit
 *   --trace=FILE                    write a Chrome about://tracing
 *                                   JSON of the run's OS/mm events
 *   --attribution=FILE              write region-level walk-cost
 *                                   attribution (heatmap rows, CDF,
 *                                   HUB concentration) as JSON
 *   --audit=FILE                    write the promotion audit trail
 *                                   (decision log, reason histogram,
 *                                   counterfactual regret) as JSON
 *   --histograms[=FILE]             collect tail-latency histograms
 *                                   (per-access translation / walk /
 *                                   fault-stall cycles, per core and
 *                                   per tenant) plus worst-K
 *                                   exemplars; prints quantile and
 *                                   exemplar sections after the
 *                                   figures and, with =FILE, writes
 *                                   the full tail report as JSON
 *   --oracle[=N]                    run every spec under the
 *                                   differential oracle (sim/oracle.hpp):
 *                                   compare against the reference model
 *                                   every N accesses (default: 1 in
 *                                   debug builds, 64 in release) and
 *                                   abort with a replayable divergence
 *                                   report on mismatch
 *   --sample=W:F                    SMARTS-style sampled simulation on
 *                                   every spec: alternate detailed
 *                                   windows of W accesses with F
 *                                   fast-forwarded accesses (page
 *                                   tables/access bits/PCC counters
 *                                   only). RunResult::sampling then
 *                                   carries per-window miss-rate and
 *                                   walk-cycle estimates with 95% CIs.
 *                                   Incompatible with --oracle.
 *   --resume=FILE                   persist finished results to (and
 *                                   preload the memo from) an on-disk
 *                                   journal, so a killed sweep rerun
 *                                   with the same --resume file skips
 *                                   completed jobs
 *
 * --telemetry/--trace/--attribution/--audit enable telemetry on every
 * spec built through BenchEnv::spec(); the exported files carry the
 * report of the first telemetry-bearing run of the process
 * (deterministic: batch order is spec order). Load the trace file in
 * chrome://tracing or Perfetto. Export failures (unwritable paths) are
 * warned about and make the process exit nonzero.
 *
 * All section output flows through one telemetry::Emitter (env.emit),
 * so --format=json renders the whole harness run as a single JSON
 * document instead of "## title" text/CSV blocks.
 *
 * The default scale is `ci` so the whole suite regenerates in
 * minutes; pass --scale=small or --scale=medium for records closer
 * to the paper's ratios (see DESIGN.md on scale profiles).
 *
 * All simulations flow through sim::Runner::global(): identical specs
 * simulate once per process, and --jobs=N fans independent runs out
 * across N workers with bit-identical output to --jobs=1.
 */

#pragma once

#include <cstdio>
#include <cstdlib>
#include <map>
#include <memory>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "sim/experiment.hpp"
#include "sim/runner.hpp"
#include "telemetry/emitter.hpp"
#include "util/host_profile.hpp"
#include "util/log.hpp"
#include "util/options.hpp"
#include "util/table.hpp"
#include "util/thread_pool.hpp"

namespace pccsim::bench {

namespace detail {

/** --perf destination; static storage so the atexit hook can see it. */
inline std::string &
perfPath()
{
    static std::string path;
    return path;
}

/** --telemetry destination (interval series + counters JSON). */
inline std::string &
telemetryPath()
{
    static std::string path;
    return path;
}

/** --trace destination (Chrome about://tracing JSON). */
inline std::string &
tracePath()
{
    static std::string path;
    return path;
}

/** --attribution destination (region walk-cost attribution JSON). */
inline std::string &
attributionPath()
{
    static std::string path;
    return path;
}

/** --audit destination (promotion decision log + regret JSON). */
inline std::string &
auditPath()
{
    static std::string path;
    return path;
}

/** --histograms destination ("" = summary sections only). */
inline std::string &
histogramsPath()
{
    static std::string path;
    return path;
}

/** Sticky failure flag: export errors flip the process exit code. */
inline bool &
exportFailed()
{
    static bool failed = false;
    return failed;
}

/** Write one export file; warn and mark failure instead of losing it. */
inline void
writeExport(const std::string &path, const std::string &contents)
{
    const util::Status status =
        telemetry::Emitter::writeFileStatus(path, contents);
    if (!status.ok()) {
        warn("export failed: ", status.toString());
        exportFailed() = true;
    }
}

/** atexit hook: turn any failed export into a nonzero exit. */
inline void
exitNonzeroOnExportFailure()
{
    if (exportFailed())
        std::_Exit(1);
}

/** Section output format, set once by BenchEnv::parse. */
inline telemetry::Format &
outputFormat()
{
    static telemetry::Format format = telemetry::Format::Text;
    return format;
}

/**
 * The report backing the --telemetry/--trace exports: the first
 * telemetry-bearing result the process ran (batch order is spec order,
 * so "first" is deterministic).
 */
inline std::shared_ptr<const telemetry::TelemetryReport> &
exportReport()
{
    // Leaked on purpose. This static is first touched mid-run (by
    // noteResult), which would schedule its destructor *before* the
    // atexit export hooks registered back at parse() time — the hooks
    // would then read a freed report whenever nothing else (e.g. the
    // global runner's memo) still holds a reference, as with fig10's
    // raw-System sweeps. An immortal pointer keeps exit-time reads
    // valid; the OS reclaims it anyway.
    static auto *report =
        new std::shared_ptr<const telemetry::TelemetryReport>();
    return *report;
}

inline void
writePerfReport()
{
    const std::string &path = perfPath();
    if (path.empty())
        return;
    const sim::Runner &runner = sim::Runner::global();
    const auto stats = runner.stats();
    const auto per_access = [&stats](u64 nanos) {
        return stats.total_accesses == 0
                   ? 0.0
                   : static_cast<double>(nanos) /
                         static_cast<double>(stats.total_accesses);
    };
    telemetry::Json doc = telemetry::Json::object();
    doc.set("jobs", static_cast<u64>(runner.jobs()));
    doc.set("requested", stats.requested);
    doc.set("simulated", stats.simulated);
    doc.set("memo_hits", stats.memo_hits);
    doc.set("total_accesses", stats.total_accesses);
    // Two deliberately distinct time bases: busy ns summed over
    // workers (the throughput numerator; inflated by timeslicing when
    // oversubscribed) and the wall time the harness spent blocked in
    // batches (what --jobs actually buys). The old single
    // "sim_ns"/"ns_per_access" pair conflated them, which made
    // parallel runs look slower per access than serial ones.
    doc.set("sim_busy_ns", stats.sim_nanos);
    doc.set("busy_ns_per_access", per_access(stats.sim_nanos));
    doc.set("batch_wall_ns", stats.wall_nanos);
    doc.set("wall_ns_per_access", per_access(stats.wall_nanos));
    // Per-run tail of the same busy cost: the mean above hides the
    // one pathological simulation of a sweep. The _ns_per_access
    // suffix opts these into bench_compare's regression gate.
    const telemetry::LatencyHistogram &tail =
        stats.run_busy_ns_per_access;
    doc.set("p50_busy_ns_per_access",
            static_cast<double>(tail.quantile(0.50)));
    doc.set("p99_busy_ns_per_access",
            static_cast<double>(tail.quantile(0.99)));
    doc.set("max_busy_ns_per_access",
            static_cast<double>(tail.maxValue()));
    doc.set("tail_runs", tail.count());

    telemetry::Json resilience = telemetry::Json::object();
    resilience.set("journal_loaded", stats.journal_loaded);
    resilience.set("journal_malformed", stats.journal_malformed);
    resilience.set("journal_appends", stats.journal_appends);
    resilience.set("journal_skipped", stats.journal_skipped);
    resilience.set("quarantined", stats.quarantined);
    resilience.set("retries", stats.retries);
    resilience.set("memo_discards", sim::Runner::globalMemoDiscards());
    doc.set("runner", std::move(resilience));

    telemetry::Json host = telemetry::Json::object();
    host.set("hardware_jobs",
             static_cast<u64>(util::ThreadPool::hardwareJobs()));
    host.set("peak_rss_bytes", util::HostProfile::peakRssBytes());
    telemetry::Json phases = telemetry::Json::object();
    for (const auto &[phase, nanos] : util::HostProfile::global().phases())
        phases.set(phase, nanos);
    host.set("phases", std::move(phases));
    telemetry::Json busy = telemetry::Json::array();
    for (u64 nanos : stats.worker_busy_nanos)
        busy.push(nanos);
    host.set("worker_busy_ns", std::move(busy));
    doc.set("host", std::move(host));
    writeExport(path, doc.dump(2) + "\n");
}

inline void
writeTelemetryExports()
{
    const auto &report = exportReport();
    if (!report)
        return;
    if (!telemetryPath().empty()) {
        writeExport(telemetryPath(),
                    report->seriesJson().dump(2) + "\n");
    }
    if (!tracePath().empty())
        writeExport(tracePath(), report->traceJson().dump(2) + "\n");
    if (!attributionPath().empty()) {
        writeExport(attributionPath(),
                    report->attribution.toJson().dump(2) + "\n");
    }
    if (!auditPath().empty())
        writeExport(auditPath(), report->audit.toJson().dump(2) + "\n");
    if (!histogramsPath().empty()) {
        writeExport(histogramsPath(),
                    report->tail.toJson().dump(2) + "\n");
    }
}

/** Remember the first telemetry report seen for the exit exports. */
inline void
noteResult(const sim::RunResult &result)
{
    if (!exportReport() && result.telemetry)
        exportReport() = result.telemetry;
}

} // namespace detail

/**
 * The process-wide section emitter every harness prints through.
 * Constructed on first use with the format BenchEnv::parse resolved;
 * its destructor flushes the buffered document for --format=json.
 */
inline telemetry::Emitter &
emitter()
{
    static telemetry::Emitter emitter(detail::outputFormat());
    return emitter;
}

/**
 * Tail-latency sections of the exporting run (--histograms): the
 * quantile summary and the worst-K translation exemplars. Harness
 * mains call this after their figure tables (explicitly, not via
 * atexit: the shared emitter's JSON sink must still be open). No-op
 * unless a run collected histograms.
 */
inline void
emitTailSummary()
{
    const auto &report = detail::exportReport();
    if (!report || !report->tail.enabled)
        return;
    const telemetry::TailReport &tail = report->tail;
    emitter().table("tail latency (cycles per access)",
                    telemetry::tailQuantileTable(tail));
    emitter().table("worst-" + std::to_string(tail.exemplar_k) +
                        " translation exemplars",
                    telemetry::tailExemplarTable(tail.worst_translation));
}

/**
 * Truncation/coverage footer: every bounded telemetry buffer's drop
 * counters and the attribution table's untracked share, so a truncated
 * report is never silently mistaken for a complete one. Harness mains
 * call this last; no-op unless the run collected telemetry.
 */
inline void
emitTelemetryFooter()
{
    const auto &report = detail::exportReport();
    if (!report)
        return;
    telemetry::Json footer = telemetry::Json::object();
    footer.set("trace_events", static_cast<u64>(report->events.size()));
    footer.set("trace_events_dropped", report->events_dropped);
    footer.set("audit_records",
               static_cast<u64>(report->audit.records.size()));
    footer.set("audit_records_dropped", report->audit.records_dropped);
    footer.set("audit_regret_marks_dropped",
               report->audit.regret_marks_dropped);
    const telemetry::AttributionReport &attr = report->attribution;
    footer.set("attribution_tracked_regions",
               static_cast<u64>(attr.regions.size()));
    footer.set("attribution_untracked_walk_cycles",
               attr.untracked_walk_cycles);
    footer.set("attribution_untracked_share_pct",
               percent(attr.untracked_walk_cycles,
                       attr.total_walk_cycles));
    emitter().object("telemetry: coverage & truncation", footer);
}

struct BenchEnv
{
    workloads::Scale scale = workloads::Scale::Ci;
    std::vector<std::string> apps;
    u64 seed = 42;
    bool csv = false;
    telemetry::Format format = telemetry::Format::Text;
    u32 jobs = 1; //!< resolved worker count of the global runner
    /** --policy override for harnesses that honor one (bare legacy
     *  keys land here; parameterized/contender selectors land in
     *  policy_str — see policySelector()). */
    std::optional<sim::PolicyKind> policy;
    /** --policy registry selector when it is not a bare legacy key. */
    std::string policy_str;
    /** --hw translation-hardware backend selector ("" = baseline). */
    std::string hw;
    /** Applied to every spec(); enabled by --telemetry/--trace. */
    telemetry::TelemetryConfig telemetry;
    /** Applied to every spec(); enabled by --oracle[=N]. */
    sim::OracleConfig oracle;
    /** Applied to every spec(); enabled by --sample=W:F. */
    sim::SystemConfig::SamplingConfig sampling;

    static BenchEnv
    parse(int argc, char **argv,
          std::vector<std::string> default_apps =
              workloads::allWorkloadNames())
    {
        Options opts(argc, argv);
        BenchEnv env;
        env.scale = workloads::scaleFromString(
            opts.get("scale", "ci"));
        env.seed = static_cast<u64>(opts.getInt("seed", 42));
        env.csv = opts.getBool("csv");
        env.format = telemetry::formatFromString(
            opts.get("format", env.csv ? "csv" : "text"));
        env.csv = env.format == telemetry::Format::Csv;
        detail::outputFormat() = env.format;
        if (opts.has("apps")) {
            std::stringstream ss(opts.get("apps"));
            std::string app;
            while (std::getline(ss, app, ','))
                env.apps.push_back(app);
        } else {
            env.apps = std::move(default_apps);
        }
        // --policy=list / --hw=list enumerate the registries and exit.
        if (sim::handleListFlags(opts.get("policy"), opts.get("hw")))
            std::exit(0);
        if (opts.has("policy")) {
            const std::string name = opts.get("policy");
            sim::ExperimentSpec probe;
            const util::Status status =
                sim::applyPolicySelector(probe, name);
            if (!status.ok())
                fatal(status.toString());
            if (probe.policy_str.empty())
                env.policy = probe.policy;
            else
                env.policy_str = probe.policy_str;
        }
        if (opts.has("hw")) {
            env.hw = opts.get("hw");
            sim::SystemConfig probe = sim::SystemConfig::forScale(
                workloads::Scale::Ci);
            probe.hw = env.hw;
            const util::Status status = probe.validate();
            if (!status.ok())
                fatal(status.toString());
        }
        // 0 (the default) selects host concurrency inside the runner.
        // An explicit larger count is honored (the determinism gates
        // intentionally oversubscribe), but worth a warning: extra
        // workers on a smaller host add scheduling noise, not speed.
        const u32 jobs_requested =
            static_cast<u32>(opts.getInt("jobs", 0));
        const u32 hardware = util::ThreadPool::hardwareJobs();
        if (jobs_requested > hardware) {
            warn("--jobs=", jobs_requested, " oversubscribes this host (",
                 hardware, " hardware thread",
                 hardware == 1 ? "" : "s", ")");
        }
        sim::RunnerOptions runner_options;
        runner_options.jobs = jobs_requested;
        if (opts.has("resume"))
            runner_options.journal_path = opts.get("resume");
        sim::Runner::setGlobalOptions(runner_options);
        env.jobs = sim::Runner::global().jobs();
        if (opts.has("oracle")) {
            env.oracle.enabled = true;
            const i64 every = opts.getInt("oracle", 0);
            env.oracle.sample_every =
                every > 0 ? static_cast<u64>(every)
                          : sim::OracleConfig::defaultSampleEvery();
        }
        if (opts.has("sample")) {
            const std::string wf = opts.get("sample");
            const auto colon = wf.find(':');
            u64 window = 0, fastforward = 0;
            if (colon != std::string::npos) {
                window = std::strtoull(wf.c_str(), nullptr, 10);
                fastforward = std::strtoull(
                    wf.c_str() + colon + 1, nullptr, 10);
            }
            if (window == 0 || fastforward == 0) {
                fatal("bad --sample=", wf,
                      " (expected --sample=W:F with W,F >= 1, e.g. "
                      "--sample=100000:900000)");
            }
            if (env.oracle.enabled) {
                fatal("--sample cannot be combined with --oracle "
                      "(the reference model cannot skip fast-forward "
                      "phases)");
            }
            env.sampling.window = window;
            env.sampling.fastforward = fastforward;
        }
        // Register the failure latch first: atexit runs in reverse
        // order, so it fires after every export writer below.
        std::atexit(detail::exitNonzeroOnExportFailure);
        if (opts.has("perf")) {
            detail::perfPath() = opts.get("perf");
            std::atexit(detail::writePerfReport);
        }
        if (opts.has("telemetry") || opts.has("trace") ||
            opts.has("attribution") || opts.has("audit") ||
            opts.has("histograms")) {
            detail::telemetryPath() = opts.get("telemetry", "");
            detail::tracePath() = opts.get("trace", "");
            detail::attributionPath() = opts.get("attribution", "");
            detail::auditPath() = opts.get("audit", "");
            detail::histogramsPath() = opts.get("histograms", "");
            env.telemetry.enabled = true;
            env.telemetry.attribution = opts.has("attribution");
            env.telemetry.audit = opts.has("audit");
            env.telemetry.histograms = opts.has("histograms");
            std::atexit(detail::writeTelemetryExports);
        }
        return env;
    }

    /**
     * The --policy override as a registry selector; empty when the
     * user passed none. Harnesses that honor the override apply it
     * with sim::applyPolicySelector so contender selectors (trident,
     * ubpf:..., pcc:promote=8) work everywhere a bare kind does.
     */
    std::string
    policySelector() const
    {
        if (!policy_str.empty())
            return policy_str;
        if (policy)
            return sim::to_string(*policy);
        return {};
    }

    sim::ExperimentSpec
    spec(const std::string &app, sim::PolicyKind policy_kind) const
    {
        sim::ExperimentSpec s;
        s.workload.name = app;
        s.workload.scale = scale;
        s.workload.seed = seed;
        s.policy = policy_kind;
        s.hw = hw;
        s.telemetry = telemetry;
        s.oracle = oracle;
        s.sampling = sampling;
        return s;
    }

    void
    emit(const Table &table, const std::string &title) const
    {
        emitter().table(
            title + " (scale=" + workloads::to_string(scale) + ")",
            table);
    }
};

/** Batch a spec list through the global runner (parallel + memoized). */
inline std::vector<std::shared_ptr<const sim::RunResult>>
runAll(const std::vector<sim::ExperimentSpec> &specs)
{
    auto results = sim::Runner::global().runMany(specs);
    for (const auto &result : results)
        detail::noteResult(*result);
    return results;
}

/** Run one spec through the global runner. */
inline std::shared_ptr<const sim::RunResult>
runShared(const sim::ExperimentSpec &spec)
{
    auto result = sim::Runner::global().run(spec);
    detail::noteResult(*result);
    return result;
}

/**
 * Baseline (4KB-only) runs, one per workload. Runs go through the
 * global runner's spec-keyed memo, so a baseline requested here and a
 * PolicyKind::Base spec inside geomeanSpeedup() or a figure sweep
 * simulate exactly once per process.
 */
class BaselineCache
{
  public:
    explicit BaselineCache(const BenchEnv &env) : env_(env) {}

    /** The baseline spec for one app (shared key with all users). */
    sim::ExperimentSpec
    spec(const std::string &app) const
    {
        sim::ExperimentSpec s = env_.spec(app, sim::PolicyKind::Base);
        s.cap_percent = 0.0;
        return s;
    }

    /** Simulate every app's baseline as one parallel batch. */
    void
    prefetch(const std::vector<std::string> &apps)
    {
        std::vector<sim::ExperimentSpec> specs;
        specs.reserve(apps.size());
        for (const auto &app : apps)
            specs.push_back(spec(app));
        runAll(specs);
    }

    const sim::RunResult &
    get(const std::string &app)
    {
        auto it = cache_.find(app);
        if (it != cache_.end())
            return *it->second;
        return *cache_.emplace(app, runShared(spec(app))).first->second;
    }

  private:
    const BenchEnv &env_;
    std::map<std::string, std::shared_ptr<const sim::RunResult>> cache_;
};

/** Render the utility-cap x-axis value the way the paper labels it. */
inline std::string
capLabel(double cap)
{
    if (cap < 0)
        return "~100";
    return Table::fmt(cap, 0);
}

} // namespace pccsim::bench
