/**
 * @file
 * Shared plumbing for the figure-reproduction harnesses: CLI options,
 * cached baseline runs, and uniform table output.
 *
 * Every harness accepts:
 *   --scale=ci|small|medium|paper   input/hardware profile
 *   --apps=bfs,sssp,...             workload subset
 *   --seed=N                        generator seed
 *   --csv                           emit CSV instead of aligned text
 *   --jobs=N                        parallel simulations (0 = host
 *                                   concurrency, the default)
 *   --perf=FILE                     write runner accounting as JSON
 *
 * The default scale is `ci` so the whole suite regenerates in
 * minutes; pass --scale=small or --scale=medium for records closer
 * to the paper's ratios (see DESIGN.md on scale profiles).
 *
 * All simulations flow through sim::Runner::global(): identical specs
 * simulate once per process, and --jobs=N fans independent runs out
 * across N workers with bit-identical output to --jobs=1.
 */

#pragma once

#include <cstdio>
#include <cstdlib>
#include <map>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "sim/experiment.hpp"
#include "sim/runner.hpp"
#include "util/options.hpp"
#include "util/table.hpp"

namespace pccsim::bench {

namespace detail {

/** --perf destination; static storage so the atexit hook can see it. */
inline std::string &
perfPath()
{
    static std::string path;
    return path;
}

inline void
writePerfReport()
{
    const std::string &path = perfPath();
    if (path.empty())
        return;
    std::FILE *f = std::fopen(path.c_str(), "w");
    if (!f)
        return;
    const sim::Runner &runner = sim::Runner::global();
    const auto stats = runner.stats();
    const double ns_per_access =
        stats.total_accesses == 0
            ? 0.0
            : static_cast<double>(stats.sim_nanos) /
                  static_cast<double>(stats.total_accesses);
    std::fprintf(f,
                 "{\n"
                 "  \"jobs\": %u,\n"
                 "  \"requested\": %llu,\n"
                 "  \"simulated\": %llu,\n"
                 "  \"memo_hits\": %llu,\n"
                 "  \"total_accesses\": %llu,\n"
                 "  \"sim_ns\": %llu,\n"
                 "  \"ns_per_access\": %.3f\n"
                 "}\n",
                 runner.jobs(),
                 static_cast<unsigned long long>(stats.requested),
                 static_cast<unsigned long long>(stats.simulated),
                 static_cast<unsigned long long>(stats.memo_hits),
                 static_cast<unsigned long long>(stats.total_accesses),
                 static_cast<unsigned long long>(stats.sim_nanos),
                 ns_per_access);
    std::fclose(f);
}

} // namespace detail

struct BenchEnv
{
    workloads::Scale scale = workloads::Scale::Ci;
    std::vector<std::string> apps;
    u64 seed = 42;
    bool csv = false;
    u32 jobs = 1; //!< resolved worker count of the global runner

    static BenchEnv
    parse(int argc, char **argv,
          std::vector<std::string> default_apps =
              workloads::allWorkloadNames())
    {
        Options opts(argc, argv);
        BenchEnv env;
        env.scale = workloads::scaleFromString(
            opts.get("scale", "ci"));
        env.seed = static_cast<u64>(opts.getInt("seed", 42));
        env.csv = opts.getBool("csv");
        if (opts.has("apps")) {
            std::stringstream ss(opts.get("apps"));
            std::string app;
            while (std::getline(ss, app, ','))
                env.apps.push_back(app);
        } else {
            env.apps = std::move(default_apps);
        }
        // 0 (the default) selects host concurrency inside the runner.
        sim::Runner::setGlobalJobs(
            static_cast<u32>(opts.getInt("jobs", 0)));
        env.jobs = sim::Runner::global().jobs();
        if (opts.has("perf")) {
            detail::perfPath() = opts.get("perf");
            std::atexit(detail::writePerfReport);
        }
        return env;
    }

    sim::ExperimentSpec
    spec(const std::string &app, sim::PolicyKind policy) const
    {
        sim::ExperimentSpec s;
        s.workload.name = app;
        s.workload.scale = scale;
        s.workload.seed = seed;
        s.policy = policy;
        return s;
    }

    void
    emit(const Table &table, const std::string &title) const
    {
        std::printf("## %s (scale=%s)\n\n%s\n", title.c_str(),
                    workloads::to_string(scale).c_str(),
                    csv ? table.csv().c_str() : table.str().c_str());
    }
};

/** Batch a spec list through the global runner (parallel + memoized). */
inline std::vector<std::shared_ptr<const sim::RunResult>>
runAll(const std::vector<sim::ExperimentSpec> &specs)
{
    return sim::Runner::global().runMany(specs);
}

/** Run one spec through the global runner. */
inline std::shared_ptr<const sim::RunResult>
runShared(const sim::ExperimentSpec &spec)
{
    return sim::Runner::global().run(spec);
}

/**
 * Baseline (4KB-only) runs, one per workload. Runs go through the
 * global runner's spec-keyed memo, so a baseline requested here and a
 * PolicyKind::Base spec inside geomeanSpeedup() or a figure sweep
 * simulate exactly once per process.
 */
class BaselineCache
{
  public:
    explicit BaselineCache(const BenchEnv &env) : env_(env) {}

    /** The baseline spec for one app (shared key with all users). */
    sim::ExperimentSpec
    spec(const std::string &app) const
    {
        sim::ExperimentSpec s = env_.spec(app, sim::PolicyKind::Base);
        s.cap_percent = 0.0;
        return s;
    }

    /** Simulate every app's baseline as one parallel batch. */
    void
    prefetch(const std::vector<std::string> &apps)
    {
        std::vector<sim::ExperimentSpec> specs;
        specs.reserve(apps.size());
        for (const auto &app : apps)
            specs.push_back(spec(app));
        runAll(specs);
    }

    const sim::RunResult &
    get(const std::string &app)
    {
        auto it = cache_.find(app);
        if (it != cache_.end())
            return *it->second;
        return *cache_.emplace(app, runShared(spec(app))).first->second;
    }

  private:
    const BenchEnv &env_;
    std::map<std::string, std::shared_ptr<const sim::RunResult>> cache_;
};

/** Render the utility-cap x-axis value the way the paper labels it. */
inline std::string
capLabel(double cap)
{
    if (cap < 0)
        return "~100";
    return Table::fmt(cap, 0);
}

} // namespace pccsim::bench
