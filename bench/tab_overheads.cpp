/**
 * @file
 * Reproduces the hardware-overhead arithmetic of Sec. 3.2.1 / Table 2:
 * PCC storage cost, the TLB-entry equivalence argument, and the
 * per-core coverage math. CACTI-derived area/energy/latency numbers
 * cannot be recomputed here (no CACTI); the paper's figures are
 * quoted alongside for the record.
 */

#include "common.hpp"
#include "pcc/pcc.hpp"

using namespace pccsim;
using namespace pccsim::bench;
using pccsim::pcc::PromotionCandidateCache;

int
main(int argc, char **argv)
{
    BenchEnv env = BenchEnv::parse(argc, argv, {});

    const u64 pcc2m = PromotionCandidateCache::storageBytes(128, 40, 8);
    const u64 pcc1g = PromotionCandidateCache::storageBytes(8, 31, 8);
    const u64 total = pcc2m + pcc1g;
    const u64 tlb_entry_bytes = 16; // 8B VA + 8B PA per the paper
    const u64 equivalent_tlb_entries = total / tlb_entry_bytes;

    Table table({"structure", "entries", "tag bits", "ctr bits",
                 "bytes"});
    table.row({"2MB PCC (per core)", "128", "40", "8",
               std::to_string(pcc2m)});
    table.row({"1GB PCC (per core)", "8", "31", "8",
               std::to_string(pcc1g)});
    table.row({"total", "-", "-", "-", std::to_string(total)});
    env.emit(table, "Sec. 3.2.1: PCC storage overhead");

    std::printf(
        "equivalence: %llu B buys only ~%llu extra TLB entries (~%.0f%%\n"
        "of a 1024-entry L2 TLB), but identifies up to 128 x 512 = %u\n"
        "4KB pages as promotion candidates.\n\n",
        static_cast<unsigned long long>(total),
        static_cast<unsigned long long>(equivalent_tlb_entries),
        100.0 * static_cast<double>(equivalent_tlb_entries) / 1024.0,
        128u * 512u);

    std::printf(
        "per-core candidate coverage: 128 entries x 2MB = 256MB\n\n");

    std::printf(
        "CACTI 7.0 figures quoted from the paper (not recomputed):\n"
        "  area               0.0019 mm^2  (<1%% of L1D area)\n"
        "  dynamic energy     0.0105 nJ/access (13%% of L1D)\n"
        "  access latency     0.5 ns (~2 cycles @3.2GHz, off the\n"
        "                     critical path, after page-table walks)\n");
    return 0;
}
