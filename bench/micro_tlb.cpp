/**
 * @file
 * Microbenchmarks for the TLB hierarchy model: the simulator's hot
 * path is one hierarchy access per simulated memory reference, so its
 * throughput bounds overall simulation speed.
 */

#include <benchmark/benchmark.h>

#include "tlb/hierarchy.hpp"
#include "util/rng.hpp"

using namespace pccsim;
using namespace pccsim::tlb;
using pccsim::mem::PageSize;

static void
BM_TlbL1Hit(benchmark::State &state)
{
    TlbHierarchy tlb;
    const Addr addr = 0x1000'0000'0000ull;
    tlb.fill(addr, PageSize::Base4K);
    for (auto _ : state)
        benchmark::DoNotOptimize(tlb.access(addr, PageSize::Base4K));
}
BENCHMARK(BM_TlbL1Hit);

static void
BM_TlbStreaming(benchmark::State &state)
{
    TlbHierarchy tlb;
    Addr addr = 0x1000'0000'0000ull;
    for (auto _ : state) {
        if (tlb.access(addr, PageSize::Base4K) == HitLevel::Miss)
            tlb.fill(addr, PageSize::Base4K);
        addr += 64;
    }
}
BENCHMARK(BM_TlbStreaming);

static void
BM_TlbRandomOverWorkingSet(benchmark::State &state)
{
    TlbHierarchy tlb(TlbGeometry::scaled(128));
    Rng rng(1);
    const u64 pages = static_cast<u64>(state.range(0));
    for (auto _ : state) {
        const Addr addr =
            0x1000'0000'0000ull + rng.below(pages) * 4096;
        if (tlb.access(addr, PageSize::Base4K) == HitLevel::Miss)
            tlb.fill(addr, PageSize::Base4K);
    }
    state.counters["miss_rate"] = tlb.missRate();
}
BENCHMARK(BM_TlbRandomOverWorkingSet)
    ->Arg(64)
    ->Arg(1024)
    ->Arg(65536);

static void
BM_TlbShootdownRegion(benchmark::State &state)
{
    TlbHierarchy tlb;
    const Addr base = 0x1000'0000'0000ull;
    for (u64 p = 0; p < 512; ++p)
        tlb.fill(base + p * 4096, PageSize::Base4K);
    for (auto _ : state)
        benchmark::DoNotOptimize(tlb.shootdown(base, mem::kBytes2M));
}
BENCHMARK(BM_TlbShootdownRegion);
