# Benchmark harness targets. Included from the top-level CMakeLists
# (not add_subdirectory) so that build/bench/ contains only the
# binaries: `for b in build/bench/*; do $b; done` then runs exactly
# the benchmark suite with no CMake artifacts in the glob.

find_package(benchmark REQUIRED)

set(PCC_BENCH_DIR ${CMAKE_BINARY_DIR}/bench)

# Figure/table harnesses: plain executables that print paper-style rows.
function(pcc_fig name)
    add_executable(${name} ${CMAKE_SOURCE_DIR}/bench/${name}.cpp)
    target_link_libraries(${name} PRIVATE pccsim)
    set_target_properties(${name} PROPERTIES
        RUNTIME_OUTPUT_DIRECTORY ${PCC_BENCH_DIR})
endfunction()

pcc_fig(fig01_motivation)
pcc_fig(fig02_reuse)
pcc_fig(fig05_utility)
pcc_fig(fig06_pcc_size)
pcc_fig(fig07_fragmentation)
pcc_fig(fig08_multithread)
pcc_fig(fig09_multiprocess)
pcc_fig(fig10_multitenant)
pcc_fig(tab_workloads)
pcc_fig(tab_overheads)
pcc_fig(abl_replacement)
pcc_fig(abl_coldfilter)
pcc_fig(abl_pwc)
pcc_fig(abl_gb_pcc)
pcc_fig(abl_victim)
pcc_fig(abl_pressure)

# Registry contender scoreboard (scripts/check.sh `registry` gate).
pcc_fig(contenders)

# Differential fuzzing driver (not a figure; same plain-binary shape).
pcc_fig(fuzz_diff)

# Sampled-simulation accuracy gate (scripts/check.sh `sampling`).
pcc_fig(sample_check)

# Microbenchmarks: google-benchmark.
function(pcc_micro name)
    add_executable(${name} ${CMAKE_SOURCE_DIR}/bench/${name}.cpp)
    target_link_libraries(${name} PRIVATE pccsim benchmark::benchmark
                          benchmark::benchmark_main)
    set_target_properties(${name} PROPERTIES
        RUNTIME_OUTPUT_DIRECTORY ${PCC_BENCH_DIR})
endfunction()

pcc_micro(micro_pcc)
pcc_micro(micro_tlb)
pcc_micro(micro_buddy)
pcc_micro(micro_walker)
