/**
 * @file
 * Robustness ablation: how the promotion policies degrade when the
 * memory system turns hostile mid-run. The fault injector
 * (sim/fault_injector) denies a share of allocations, fails or aborts
 * compactions, inflates shootdowns, and lands scheduled fragmentation
 * shocks; the cross-layer invariant checker validates every run.
 *
 * Expected shape: all policies lose some speedup under the storm, but
 * the PCC policy retains the most — its candidates concentrate the
 * scarce huge frames on the highest-benefit regions, so losing a
 * fraction of promotion attempts costs little, while greedy fault-time
 * THP wastes its surviving allocations on cold data.
 */

#include "common.hpp"

using namespace pccsim;
using namespace pccsim::bench;

namespace {

/** The storm every policy is subjected to. */
void
installStorm(sim::SystemConfig &cfg)
{
    cfg.faults.alloc_fail_huge = 0.3;
    cfg.faults.alloc_fail_base = 0.01;
    cfg.faults.compaction_fail = 0.25;
    cfg.faults.compaction_partial = 0.25;
    cfg.faults.partial_move_limit = 8;
    cfg.faults.shootdown_storm = 0.1;
    cfg.faults.shock_intervals = {2, 6, 10};
    cfg.check_invariants = true;
}

} // namespace

int
main(int argc, char **argv)
{
    BenchEnv env = BenchEnv::parse(argc, argv, {"bfs", "pr", "dedup"});
    BaselineCache baselines(env);
    baselines.prefetch(env.apps);

    // Labels come from to_string(PolicyKind); --policy=NAME narrows
    // the comparison to one policy (parsePolicyKind names).
    std::vector<sim::PolicyKind> policies{sim::PolicyKind::LinuxThp,
                                          sim::PolicyKind::HawkEye,
                                          sim::PolicyKind::Pcc};
    if (env.policy)
        policies = {*env.policy};

    // One batch per app: (clean, storm) per policy, plus the PCC
    // storm rerun with the degradation machinery disabled (used by
    // the last table). The fault storms are keyed tweaks, so the
    // runner can dedup and memoize them like any other spec.
    auto pressured = [&](const std::string &app, sim::PolicyKind kind) {
        auto spec = env.spec(app, kind);
        spec.cap_percent = 25.0;
        spec.frag_fraction = 0.3;
        return spec;
    };
    std::vector<sim::ExperimentSpec> specs;
    for (const auto &app : env.apps) {
        for (const auto kind : policies) {
            specs.push_back(pressured(app, kind));
            auto storm = pressured(app, kind);
            storm.tweak = installStorm;
            storm.tweak_key = "storm";
            specs.push_back(std::move(storm));
        }
        auto failfast = pressured(app, sim::PolicyKind::Pcc);
        failfast.tweak = [](sim::SystemConfig &cfg) {
            installStorm(cfg);
            cfg.promote_retries = 0;
            cfg.reclaim_on_pressure = false;
        };
        failfast.tweak_key = "storm,failfast";
        specs.push_back(std::move(failfast));
    }
    const auto results = runAll(specs);
    const size_t per_app = 2 * policies.size() + 1;

    std::map<std::string, std::shared_ptr<const sim::RunResult>>
        pcc_storms;
    Table table({"app", "policy", "clean", "storm", "retained %"});
    for (size_t a = 0; a < env.apps.size(); ++a) {
        const auto &app = env.apps[a];
        const auto &base = baselines.get(app);
        for (size_t p = 0; p < policies.size(); ++p) {
            const auto kind = policies[p];
            const auto &stormy = results[per_app * a + 2 * p + 1];
            const double clean =
                sim::speedup(base, *results[per_app * a + 2 * p]);
            const double storm = sim::speedup(base, *stormy);
            table.row({app, sim::to_string(kind), Table::fmt(clean, 3),
                       Table::fmt(storm, 3),
                       Table::fmt(100.0 * storm / clean, 1)});
            if (kind == sim::PolicyKind::Pcc)
                pcc_storms.emplace(app, stormy);
        }
    }
    env.emit(table, "Policy speedup under an injected fault storm "
                    "(30% huge-alloc fails, 50% compaction faults, "
                    "shootdown storms, 3 fragmentation shocks)");

    // The remaining tables dissect the PCC storm runs; with --policy
    // narrowing PCC out of the sweep there is nothing to dissect.
    if (pcc_storms.empty())
        return 0;

    // What the PCC runs actually absorbed, and the proof they stayed
    // consistent: every run is swept by the invariant checker.
    Table anatomy({"app", "alloc fails", "compaction faults", "storms",
                   "shock pins", "retries", "retry wins", "reclaims",
                   "frames freed", "invariant fails"});
    for (const auto &[app, run] : pcc_storms) {
        const auto &r = run->resilience;
        anatomy.row({app, std::to_string(r.injected_alloc_fails),
                     std::to_string(r.injected_compaction_fails),
                     std::to_string(r.shootdown_storms),
                     std::to_string(r.shock_blocks_pinned),
                     std::to_string(r.promote_retries),
                     std::to_string(r.promote_retry_successes),
                     std::to_string(r.reclaim_events),
                     std::to_string(r.reclaimed_frames),
                     std::to_string(r.invariant_failures)});
    }
    env.emit(anatomy, "Fault anatomy of the PCC storm runs");

    // Ablate the degradation machinery itself: the same storm with the
    // OS reverted to fail-fast (no backoff retries, no pressure
    // reclaim). Shows how much of the retention the recovery paths buy
    // versus the policy's own interval-to-interval persistence.
    Table machinery({"app", "machinery on", "machinery off",
                     "promotions on/off"});
    for (size_t a = 0; a < env.apps.size(); ++a) {
        const auto &app = env.apps[a];
        const auto &base = baselines.get(app);
        const auto &with = *pcc_storms.at(app);
        const auto &without = *results[per_app * a + per_app - 1];
        machinery.row(
            {app, Table::fmt(sim::speedup(base, with), 3),
             Table::fmt(sim::speedup(base, without), 3),
             std::to_string(with.job().promotions) + "/" +
                 std::to_string(without.job().promotions)});
    }
    env.emit(machinery,
             "Degradation-machinery ablation (PCC under the storm)");
    return 0;
}
