/**
 * @file
 * Reproduces Fig. 6: sensitivity of graph-application speedup to the
 * PCC size (4..1024 entries in powers of two) with the promotion
 * budget fixed at 32% of the footprint.
 *
 * Shape target: speedup rises steadily while the PCC is smaller than
 * the hot-region set and plateaus once it covers it (128 entries in
 * the paper). Scaled-down graphs have proportionally smaller hot
 * sets, so the harness also sweeps a controlled synthetic workload
 * with exactly 256 hot 2MB regions, which pins the plateau at the
 * paper's 128-256 region range.
 */

#include "common.hpp"
#include "workloads/synthetic.hpp"

using namespace pccsim;
using namespace pccsim::bench;

namespace {

const std::vector<u32> kSizes = {4, 8, 16, 32, 64, 128, 256, 512, 1024};

} // namespace

int
main(int argc, char **argv)
{
    BenchEnv env = BenchEnv::parse(
        argc, argv, workloads::graphWorkloadNames());
    BaselineCache baselines(env);

    Table table({"app", "baseline", "4", "8", "16", "32", "64", "128",
                 "256", "512", "1024", "ideal"});
    for (const auto &app : env.apps) {
        const auto &base = baselines.get(app);
        std::vector<std::string> row = {app, "1.000"};
        for (u32 size : kSizes) {
            auto spec = env.spec(app, sim::PolicyKind::Pcc);
            spec.cap_percent = 32.0;
            spec.tweak = [size](sim::SystemConfig &cfg) {
                cfg.pcc.pcc2m.entries = size;
            };
            row.push_back(
                Table::fmt(sim::speedup(base, sim::runOne(spec)), 3));
        }
        const auto ideal =
            sim::runOne(env.spec(app, sim::PolicyKind::AllHuge));
        row.push_back(Table::fmt(sim::speedup(base, ideal), 3));
        table.row(row);
    }
    env.emit(table, "Fig. 6: speedup vs PCC entries (cap 32%)");

    // Controlled synthetic: 256 hot regions out of 512, so the
    // plateau must land between 128 and 256 entries as in the paper.
    {
        workloads::SyntheticSpec sspec;
        sspec.pattern = workloads::Pattern::HotRegions;
        sspec.footprint_bytes = 1ull << 30;
        sspec.hot_regions = 256;
        sspec.ops = env.scale == workloads::Scale::Ci ? 2'000'000
                                                      : 8'000'000;
        sspec.seed = env.seed;

        sim::SystemConfig cfg = sim::SystemConfig::forScale(env.scale);
        cfg.policy = sim::PolicyKind::Base;
        cfg.promotion_cap_percent = 0.0;
        workloads::SyntheticWorkload base_w(sspec);
        sim::System base_sys(cfg);
        const auto base = base_sys.run(base_w);

        Table syn({"PCC entries", "speedup", "promotions"});
        for (u32 size : kSizes) {
            sim::SystemConfig pcfg =
                sim::SystemConfig::forScale(env.scale);
            pcfg.policy = sim::PolicyKind::Pcc;
            pcfg.promotion_cap_percent = 64.0;
            pcfg.pcc.pcc2m.entries = size;
            // Match the paper's interval count (a handful of promotion
            // rounds per run) so the per-interval budget C — the PCC
            // size — is what limits small configurations.
            pcfg.interval_accesses = sspec.ops / 5;
            workloads::SyntheticWorkload w(sspec);
            sim::System sys(pcfg);
            const auto run = sys.run(w);
            syn.row({std::to_string(size),
                     Table::fmt(sim::speedup(base, run), 3),
                     std::to_string(run.job().promotions)});
        }
        env.emit(syn, "Fig. 6 (controlled): 256 hot regions");
    }
    return 0;
}
