/**
 * @file
 * Reproduces Fig. 6: sensitivity of graph-application speedup to the
 * PCC size (4..1024 entries in powers of two) with the promotion
 * budget fixed at 32% of the footprint.
 *
 * Shape target: speedup rises steadily while the PCC is smaller than
 * the hot-region set and plateaus once it covers it (128 entries in
 * the paper). Scaled-down graphs have proportionally smaller hot
 * sets, so the harness also sweeps a controlled synthetic workload
 * with exactly 256 hot 2MB regions, which pins the plateau at the
 * paper's 128-256 region range.
 */

#include "common.hpp"
#include "util/thread_pool.hpp"
#include "workloads/synthetic.hpp"

using namespace pccsim;
using namespace pccsim::bench;

namespace {

const std::vector<u32> kSizes = {4, 8, 16, 32, 64, 128, 256, 512, 1024};

} // namespace

int
main(int argc, char **argv)
{
    BenchEnv env = BenchEnv::parse(
        argc, argv, workloads::graphWorkloadNames());
    BaselineCache baselines(env);
    baselines.prefetch(env.apps);

    // One batch: every (app x PCC size) point plus each app's ideal.
    // The tweak carries a key, so the points are memoizable and the
    // whole grid fans out across --jobs workers.
    std::vector<sim::ExperimentSpec> specs;
    for (const auto &app : env.apps) {
        for (u32 size : kSizes) {
            auto spec = env.spec(app, sim::PolicyKind::Pcc);
            spec.cap_percent = 32.0;
            spec.tweak = [size](sim::SystemConfig &cfg) {
                cfg.pcc.pcc2m.entries = size;
            };
            spec.tweak_key = "pcc2m=" + std::to_string(size);
            specs.push_back(std::move(spec));
        }
        specs.push_back(env.spec(app, sim::PolicyKind::AllHuge));
    }
    const auto results = runAll(specs);

    const size_t per_app = kSizes.size() + 1;
    Table table({"app", "baseline", "4", "8", "16", "32", "64", "128",
                 "256", "512", "1024", "ideal"});
    for (size_t a = 0; a < env.apps.size(); ++a) {
        const auto &app = env.apps[a];
        const auto &base = baselines.get(app);
        std::vector<std::string> row = {app, "1.000"};
        for (size_t s = 0; s < kSizes.size(); ++s) {
            row.push_back(Table::fmt(
                sim::speedup(base, *results[a * per_app + s]), 3));
        }
        row.push_back(Table::fmt(
            sim::speedup(base, *results[a * per_app + kSizes.size()]),
            3));
        table.row(row);
    }
    env.emit(table, "Fig. 6: speedup vs PCC entries (cap 32%)");

    // Controlled synthetic: 256 hot regions out of 512, so the
    // plateau must land between 128 and 256 entries as in the paper.
    // Runs use raw Systems (the synthetic workload is not in the
    // registry), parallelized directly on a worker pool; each task
    // builds its own workload + System, so runs stay independent and
    // the output order is the input order.
    {
        workloads::SyntheticSpec sspec;
        sspec.pattern = workloads::Pattern::HotRegions;
        sspec.footprint_bytes = 1ull << 30;
        sspec.hot_regions = 256;
        sspec.ops = env.scale == workloads::Scale::Ci ? 2'000'000
                                                      : 8'000'000;
        sspec.seed = env.seed;

        // Task 0 is the 4KB baseline; tasks 1..N sweep the PCC size.
        std::vector<u32> tasks = {0};
        tasks.insert(tasks.end(), kSizes.begin(), kSizes.end());
        util::ThreadPool pool(env.jobs);
        const auto runs = pool.parallelMap(tasks, [&](const u32 &size) {
            sim::SystemConfig cfg = sim::SystemConfig::forScale(env.scale);
            if (size == 0) {
                cfg.policy = sim::PolicyKind::Base;
                cfg.promotion_cap_percent = 0.0;
            } else {
                cfg.policy = sim::PolicyKind::Pcc;
                cfg.promotion_cap_percent = 64.0;
                cfg.pcc.pcc2m.entries = size;
                // Match the paper's interval count (a handful of
                // promotion rounds per run) so the per-interval budget
                // C — the PCC size — is what limits small
                // configurations.
                cfg.interval_accesses = sspec.ops / 5;
            }
            workloads::SyntheticWorkload w(sspec);
            sim::System sys(cfg);
            return sys.run(w);
        });

        const auto &base = runs[0];
        Table syn({"PCC entries", "speedup", "promotions"});
        for (size_t s = 0; s < kSizes.size(); ++s) {
            const auto &run = runs[s + 1];
            syn.row({std::to_string(kSizes[s]),
                     Table::fmt(sim::speedup(base, run), 3),
                     std::to_string(run.job().promotions)});
        }
        env.emit(syn, "Fig. 6 (controlled): 256 hot regions");
    }
    emitTailSummary();
    emitTelemetryFooter();
    return 0;
}
