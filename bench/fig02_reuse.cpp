/**
 * @file
 * Reproduces Fig. 2: page-level reuse-distance characterization of BFS
 * on a Kronecker network. For every 4KB page we compute the mean reuse
 * distance at 4KB and at the enclosing 2MB granularity and classify
 * pages as TLB-friendly / HUB / low-reuse using the paper's threshold
 * (1024, a typical L2 TLB entry count). Emits the class census plus a
 * scatter sample (CSV columns: reuse_4k, reuse_2m, class).
 */

#include "analysis/reuse.hpp"
#include "common.hpp"
#include "workloads/registry.hpp"

using namespace pccsim;
using namespace pccsim::bench;

int
main(int argc, char **argv)
{
    BenchEnv env = BenchEnv::parse(argc, argv, {"bfs"});
    Options opts(argc, argv);
    const u64 threshold =
        static_cast<u64>(opts.getInt("threshold", 1024));
    const u64 sample_every =
        static_cast<u64>(opts.getInt("sample", 97));

    workloads::WorkloadSpec wspec;
    wspec.name = env.apps.front();
    wspec.scale = env.scale;
    wspec.seed = env.seed;
    auto workload = workloads::makeWorkload(wspec);
    os::Process proc(0, 8ull << 30);
    workload->setup(proc);

    analysis::ReuseTracker tracker(threshold);
    auto lane = workload->lane(0, 1);
    // Skip the init phase: Fig. 2 characterizes steady-state access
    // behaviour, not first-touch initialization.
    while (lane.next() &&
           lane.value().kind != workloads::OpKind::Barrier) {
    }
    while (lane.next()) {
        if (lane.value().kind != workloads::OpKind::Barrier)
            tracker.touch(lane.value().addr);
    }

    const auto summary = tracker.summarize();
    Table census({"class", "pages", "share %"});
    census.row({"TLB-friendly", std::to_string(summary.tlb_friendly),
                Table::fmt(percent(summary.tlb_friendly,
                                   summary.total()), 1)});
    census.row({"HUB", std::to_string(summary.hubs),
                Table::fmt(percent(summary.hubs, summary.total()), 1)});
    census.row({"low-reuse", std::to_string(summary.low_reuse),
                Table::fmt(percent(summary.low_reuse,
                                   summary.total()), 1)});
    env.emit(census, "Fig. 2: page classification census (" +
                         wspec.name + ")");

    // Scatter sample in the figure's axes.
    Table scatter({"reuse_4k", "reuse_2m", "class"});
    const auto pages = tracker.results();
    for (u64 i = 0; i < pages.size(); i += sample_every) {
        const auto &p = pages[i];
        const char *cls =
            p.cls == analysis::ReuseClass::TlbFriendly ? "friendly"
            : p.cls == analysis::ReuseClass::Hub       ? "hub"
                                                       : "low";
        scatter.row({Table::fmt(p.mean_4k, 0), Table::fmt(p.mean_2m, 0),
                     cls});
    }
    std::printf("## Fig. 2 scatter sample (1/%llu pages)\n\n%s\n",
                static_cast<unsigned long long>(sample_every),
                scatter.csv().c_str());

    // The top promotion candidates by HUB-page count — what an ideal
    // oracle would hand the OS.
    const auto hubs = tracker.hubRegions();
    std::printf("hub regions: %zu (top candidates for promotion)\n",
                hubs.size());
    return 0;
}
