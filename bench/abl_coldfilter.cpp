/**
 * @file
 * Ablation for the PCC's accessed-bit cold-miss filter (Sec. 3.2,
 * Fig. 3 steps 6-7): with the filter on, a region enters the PCC only
 * if its PMD accessed bit was already set (a warm region); with it
 * off, every page-table walk — including compulsory first-touch
 * misses and streaming data — pollutes the PCC.
 *
 * Expected shape: similar or better speedup with the filter on, and
 * markedly fewer PCC insertions/evictions (less candidate churn).
 */

#include "common.hpp"
#include "workloads/synthetic.hpp"

using namespace pccsim;
using namespace pccsim::bench;

int
main(int argc, char **argv)
{
    BenchEnv env = BenchEnv::parse(argc, argv);
    BaselineCache baselines(env);

    // The filter matters when cold insertions can displace hot
    // candidates, i.e. when the PCC is small relative to the touched
    // region count — so sweep the PCC size.
    for (u32 entries : {128u, 8u}) {
        Table table({"app", "filter on", "filter off", "delta %"});
        for (const auto &app : env.apps) {
            const auto &base = baselines.get(app);
            auto run_with = [&](bool filter) {
                auto spec = env.spec(app, sim::PolicyKind::Pcc);
                spec.cap_percent = 8.0;
                spec.tweak = [filter, entries](sim::SystemConfig &cfg) {
                    cfg.pcc.access_bit_filter = filter;
                    cfg.pcc.pcc2m.entries = entries;
                };
                return sim::speedup(base, sim::runOne(spec));
            };
            const double on = run_with(true);
            const double off = run_with(false);
            table.row({app, Table::fmt(on, 3), Table::fmt(off, 3),
                       Table::fmt(100.0 * (on - off) / off, 2)});
        }
        env.emit(table, "Accessed-bit cold-miss filter ablation, " +
                            std::to_string(entries) +
                            "-entry PCC (cap 8%)");
    }

    // Controlled stress: a small hot set inside a large, cold,
    // streamed footprint — the access pattern the filter exists for.
    // Cold streaming data is touched exactly once per pass, so with
    // the filter off its compulsory walks flood the PCC.
    {
        workloads::SyntheticSpec spec;
        spec.pattern = workloads::Pattern::HotRegions;
        spec.footprint_bytes = 512ull << 20;
        spec.hot_regions = 8;
        spec.hot_fraction = 0.5;
        spec.ops = env.scale == workloads::Scale::Ci ? 1'500'000
                                                     : 4'000'000;
        spec.seed = env.seed;

        auto run_with = [&](bool filter,
                            sim::PolicyKind kind) {
            workloads::SyntheticWorkload w(spec);
            sim::SystemConfig cfg =
                sim::SystemConfig::forScale(env.scale);
            cfg.policy = kind;
            cfg.promotion_cap_percent = 8.0;
            cfg.pcc.access_bit_filter = filter;
            cfg.pcc.pcc2m.entries = 16;
            sim::System system(cfg);
            return system.run(w);
        };
        const auto base = run_with(true, sim::PolicyKind::Base);
        const auto on = run_with(true, sim::PolicyKind::Pcc);
        const auto off = run_with(false, sim::PolicyKind::Pcc);
        Table table({"config", "speedup", "ptw %", "promotions"});
        table.row({"base-4k", "1.000",
                   Table::fmt(base.job().ptwPercent(), 2), "0"});
        table.row({"filter on",
                   Table::fmt(sim::speedup(base, on), 3),
                   Table::fmt(on.job().ptwPercent(), 2),
                   std::to_string(on.job().promotions)});
        table.row({"filter off",
                   Table::fmt(sim::speedup(base, off), 3),
                   Table::fmt(off.job().ptwPercent(), 2),
                   std::to_string(off.job().promotions)});
        env.emit(table, "Cold-filter stress: 8 hot regions in a "
                        "512MB cold stream (16-entry PCC)");
    }
    return 0;
}
