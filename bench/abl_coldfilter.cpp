/**
 * @file
 * Ablation for the PCC's accessed-bit cold-miss filter (Sec. 3.2,
 * Fig. 3 steps 6-7): with the filter on, a region enters the PCC only
 * if its PMD accessed bit was already set (a warm region); with it
 * off, every page-table walk — including compulsory first-touch
 * misses and streaming data — pollutes the PCC.
 *
 * Expected shape: similar or better speedup with the filter on, and
 * markedly fewer PCC insertions/evictions (less candidate churn).
 */

#include "common.hpp"
#include "util/thread_pool.hpp"
#include "workloads/synthetic.hpp"

using namespace pccsim;
using namespace pccsim::bench;

int
main(int argc, char **argv)
{
    BenchEnv env = BenchEnv::parse(argc, argv);
    BaselineCache baselines(env);
    baselines.prefetch(env.apps);

    // The filter matters when cold insertions can displace hot
    // candidates, i.e. when the PCC is small relative to the touched
    // region count — so sweep the PCC size.
    auto spec_with = [&](const std::string &app, u32 entries,
                         bool filter) {
        auto spec = env.spec(app, sim::PolicyKind::Pcc);
        spec.cap_percent = 8.0;
        spec.tweak = [filter, entries](sim::SystemConfig &cfg) {
            cfg.pcc.access_bit_filter = filter;
            cfg.pcc.pcc2m.entries = entries;
        };
        spec.tweak_key = "pcc2m=" + std::to_string(entries) +
                         ",filter=" + (filter ? "on" : "off");
        return spec;
    };
    for (u32 entries : {128u, 8u}) {
        std::vector<sim::ExperimentSpec> specs;
        for (const auto &app : env.apps) {
            specs.push_back(spec_with(app, entries, true));
            specs.push_back(spec_with(app, entries, false));
        }
        const auto results = runAll(specs);

        Table table({"app", "filter on", "filter off", "delta %"});
        for (size_t a = 0; a < env.apps.size(); ++a) {
            const auto &base = baselines.get(env.apps[a]);
            const double on = sim::speedup(base, *results[2 * a]);
            const double off = sim::speedup(base, *results[2 * a + 1]);
            table.row({env.apps[a], Table::fmt(on, 3),
                       Table::fmt(off, 3),
                       Table::fmt(100.0 * (on - off) / off, 2)});
        }
        env.emit(table, "Accessed-bit cold-miss filter ablation, " +
                            std::to_string(entries) +
                            "-entry PCC (cap 8%)");
    }

    // Controlled stress: a small hot set inside a large, cold,
    // streamed footprint — the access pattern the filter exists for.
    // Cold streaming data is touched exactly once per pass, so with
    // the filter off its compulsory walks flood the PCC.
    {
        workloads::SyntheticSpec spec;
        spec.pattern = workloads::Pattern::HotRegions;
        spec.footprint_bytes = 512ull << 20;
        spec.hot_regions = 8;
        spec.hot_fraction = 0.5;
        spec.ops = env.scale == workloads::Scale::Ci ? 1'500'000
                                                     : 4'000'000;
        spec.seed = env.seed;

        // Raw-System runs (synthetic workloads are not in the
        // registry): fan the three configurations out on a pool.
        struct StressPoint
        {
            bool filter;
            sim::PolicyKind kind;
        };
        const std::vector<StressPoint> points = {
            {true, sim::PolicyKind::Base},
            {true, sim::PolicyKind::Pcc},
            {false, sim::PolicyKind::Pcc}};
        util::ThreadPool pool(env.jobs);
        const auto runs =
            pool.parallelMap(points, [&](const StressPoint &p) {
                workloads::SyntheticWorkload w(spec);
                sim::SystemConfig cfg =
                    sim::SystemConfig::forScale(env.scale);
                cfg.policy = p.kind;
                cfg.promotion_cap_percent = 8.0;
                cfg.pcc.access_bit_filter = p.filter;
                cfg.pcc.pcc2m.entries = 16;
                sim::System system(cfg);
                return system.run(w);
            });
        const auto &base = runs[0];
        const auto &on = runs[1];
        const auto &off = runs[2];
        Table table({"config", "speedup", "ptw %", "promotions"});
        table.row({"base-4k", "1.000",
                   Table::fmt(base.job().ptwPercent(), 2), "0"});
        table.row({"filter on",
                   Table::fmt(sim::speedup(base, on), 3),
                   Table::fmt(on.job().ptwPercent(), 2),
                   std::to_string(on.job().promotions)});
        table.row({"filter off",
                   Table::fmt(sim::speedup(base, off), 3),
                   Table::fmt(off.job().ptwPercent(), 2),
                   std::to_string(off.job().promotions)});
        env.emit(table, "Cold-filter stress: 8 hot regions in a "
                        "512MB cold stream (16-entry PCC)");
    }
    return 0;
}
