/**
 * @file
 * Microbenchmarks for the PCC structure itself: hit/miss/eviction
 * paths, decay cost, snapshot (the OS dump) and invalidation — the
 * operations Sec. 3.2.1 argues are cheap enough to run off the
 * critical path after every page-table walk.
 */

#include <benchmark/benchmark.h>

#include "pcc/pcc.hpp"
#include "util/rng.hpp"

using namespace pccsim;
using pccsim::pcc::PccConfig;
using pccsim::pcc::PromotionCandidateCache;

static void
BM_PccTouchHit(benchmark::State &state)
{
    PromotionCandidateCache pcc(
        {static_cast<u32>(state.range(0)), 8});
    for (u32 v = 0; v < pcc.capacity(); ++v)
        pcc.touch(v);
    u64 v = 0;
    for (auto _ : state) {
        pcc.touch(v);
        v = (v + 1) % pcc.capacity();
    }
}
BENCHMARK(BM_PccTouchHit)->Arg(32)->Arg(128)->Arg(1024);

static void
BM_PccTouchMissEvict(benchmark::State &state)
{
    PromotionCandidateCache pcc(
        {static_cast<u32>(state.range(0)), 8});
    u64 v = 0;
    for (auto _ : state)
        pcc.touch(v++); // always a miss once full: worst-case scan
}
BENCHMARK(BM_PccTouchMissEvict)->Arg(32)->Arg(128)->Arg(1024);

static void
BM_PccMixedWorkingSet(benchmark::State &state)
{
    PromotionCandidateCache pcc({128, 8});
    Rng rng(1);
    for (auto _ : state) {
        // 90% hot-set hits, 10% cold insertions — the steady state a
        // graph workload produces.
        if (rng.chance(0.9))
            pcc.touch(rng.below(64));
        else
            pcc.touch(1000 + rng.below(100000));
    }
}
BENCHMARK(BM_PccMixedWorkingSet);

static void
BM_PccSnapshot(benchmark::State &state)
{
    PromotionCandidateCache pcc(
        {static_cast<u32>(state.range(0)), 8});
    Rng rng(2);
    for (u32 i = 0; i < pcc.capacity() * 4; ++i)
        pcc.touch(rng.below(pcc.capacity() * 2));
    for (auto _ : state)
        benchmark::DoNotOptimize(pcc.snapshot());
}
BENCHMARK(BM_PccSnapshot)->Arg(128)->Arg(1024);

static void
BM_PccInvalidate(benchmark::State &state)
{
    PromotionCandidateCache pcc({128, 8});
    u64 v = 0;
    for (auto _ : state) {
        pcc.touch(v);
        pcc.invalidate(v);
        ++v;
    }
}
BENCHMARK(BM_PccInvalidate);

static void
BM_PccDecayStorm(benchmark::State &state)
{
    // Worst case: one entry saturates repeatedly, halving all
    // counters each time.
    PromotionCandidateCache pcc({128, 4});
    for (u32 v = 0; v < 128; ++v)
        pcc.touch(v);
    for (auto _ : state)
        pcc.touch(0);
}
BENCHMARK(BM_PccDecayStorm);
