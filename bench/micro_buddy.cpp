/**
 * @file
 * Microbenchmarks for the buddy allocator and the physical-memory
 * compaction path — the OS-side costs of promotion under
 * fragmentation.
 */

#include <benchmark/benchmark.h>

#include "mem/phys_mem.hpp"
#include "util/rng.hpp"

using namespace pccsim;
using namespace pccsim::mem;

static void
BM_BuddyAllocFreeBase(benchmark::State &state)
{
    BuddyAllocator buddy(1u << 18, kOrder2M);
    for (auto _ : state) {
        auto pfn = buddy.allocate(0);
        benchmark::DoNotOptimize(pfn);
        buddy.free(*pfn, 0);
    }
}
BENCHMARK(BM_BuddyAllocFreeBase);

static void
BM_BuddyAllocFreeHuge(benchmark::State &state)
{
    BuddyAllocator buddy(1u << 18, kOrder2M);
    for (auto _ : state) {
        auto pfn = buddy.allocate(kOrder2M);
        benchmark::DoNotOptimize(pfn);
        buddy.free(*pfn, kOrder2M);
    }
}
BENCHMARK(BM_BuddyAllocFreeHuge);

static void
BM_BuddyChurn(benchmark::State &state)
{
    BuddyAllocator buddy(1u << 16, kOrder2M);
    Rng rng(7);
    std::vector<std::pair<Pfn, unsigned>> live;
    for (auto _ : state) {
        if (live.size() < 4096 && rng.chance(0.6)) {
            const unsigned order = static_cast<unsigned>(rng.below(4));
            if (auto pfn = buddy.allocate(order))
                live.push_back({*pfn, order});
        } else if (!live.empty()) {
            const u64 i = rng.below(live.size());
            buddy.free(live[i].first, live[i].second);
            live[i] = live.back();
            live.pop_back();
        }
    }
    for (auto &[pfn, order] : live)
        buddy.free(pfn, order);
}
BENCHMARK(BM_BuddyChurn);

static void
BM_CompactOneBlock(benchmark::State &state)
{
    for (auto _ : state) {
        state.PauseTiming();
        PhysicalMemory pm(64 * kBytes2M);
        Rng rng(3);
        pm.fragment(0.5, rng);
        pm.scramble(rng);
        state.ResumeTiming();
        benchmark::DoNotOptimize(pm.compactOneBlock());
    }
}
BENCHMARK(BM_CompactOneBlock)->Unit(benchmark::kMicrosecond);
