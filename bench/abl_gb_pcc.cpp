/**
 * @file
 * Exercise for the 1GB PCC extension (Sec. 3.2.3): drives the
 * per-core PCC unit with synthetic walk streams and reports the
 * 2MB-vs-1GB promotion decision the OS would make under the paper's
 * frequency-ratio rule.
 *
 * Scenarios:
 *  (a) hot data confined to a few 2MB regions -> promote 2MB;
 *  (b) walks spread uniformly across a whole 1GB region: LFU lock-in
 *      keeps a stable set of 2MB candidates hot, so the ratio rule
 *      still (correctly) promotes those locally-optimal 2MB regions
 *      first — the paper's "local optimal candidates" behaviour;
 *  (c) walks from data already mapped at 2MB -> the 2MB size is not
 *      enough and only the 1GB PCC sees them: promote 1GB.
 */

#include "common.hpp"
#include "pcc/pcc_unit.hpp"
#include "sim/system.hpp"
#include "util/rng.hpp"
#include "util/thread_pool.hpp"
#include "workloads/synthetic.hpp"

using namespace pccsim;
using namespace pccsim::bench;

namespace {

pt::WalkOutcome
walkAt(mem::PageSize size)
{
    pt::WalkOutcome out;
    out.present = true;
    out.size = size;
    out.pte_was_accessed = true;
    out.pmd_was_accessed = true;
    out.pud_was_accessed = true;
    out.memory_refs = 2;
    return out;
}

} // namespace

int
main(int argc, char **argv)
{
    BenchEnv env = BenchEnv::parse(argc, argv, {});
    Options opts(argc, argv);
    const u64 walks = static_cast<u64>(opts.getInt("walks", 200'000));
    const u64 ratio = static_cast<u64>(opts.getInt("ratio", 512));
    constexpr Addr kBase = 0x1000'0000'0000ull; // 1GB-aligned

    pcc::PccUnitConfig cfg;
    cfg.enable_1g = true;
    Table table({"scenario", "hot 2MB freq", "1GB freq", "prefer 1GB"});
    Rng rng(env.seed);

    // (a) concentrated: 4 hot 2MB regions.
    {
        pcc::PccUnit unit(cfg);
        for (u64 i = 0; i < walks; ++i) {
            const Addr addr =
                kBase + rng.below(4) * mem::kBytes2M + rng.below(64) * 64;
            unit.observeWalk(addr, walkAt(mem::PageSize::Base4K));
        }
        const auto top = unit.pcc2m().top();
        const auto f1g = unit.pcc1g().frequencyOf(
            mem::vpnOf(kBase, mem::PageSize::Huge1G));
        table.row({"4 hot 2MB regions",
                   std::to_string(top ? top->frequency : 0),
                   std::to_string(f1g.value_or(0)),
                   unit.prefer1G(mem::vpnOf(kBase,
                                            mem::PageSize::Huge1G),
                                 ratio)
                       ? "yes"
                       : "no"});
    }

    // (b) diffuse: uniform over all 512 2MB regions of one 1GB page.
    {
        pcc::PccUnit unit(cfg);
        for (u64 i = 0; i < walks; ++i) {
            const Addr addr = kBase + rng.below(mem::kBytes1G);
            unit.observeWalk(mem::pageBase(addr, mem::PageSize::Base4K),
                             walkAt(mem::PageSize::Base4K));
        }
        const auto top = unit.pcc2m().top();
        const auto f1g = unit.pcc1g().frequencyOf(
            mem::vpnOf(kBase, mem::PageSize::Huge1G));
        table.row({"uniform over 1GB",
                   std::to_string(top ? top->frequency : 0),
                   std::to_string(f1g.value_or(0)),
                   unit.prefer1G(mem::vpnOf(kBase,
                                            mem::PageSize::Huge1G),
                                 ratio)
                       ? "yes"
                       : "no"});
    }

    // (c) walks from 2MB-mapped data (the "2MB is not enough" case).
    {
        pcc::PccUnit unit(cfg);
        for (u64 i = 0; i < walks / 10; ++i) {
            const Addr addr =
                kBase + rng.below(512) * mem::kBytes2M;
            unit.observeWalk(addr, walkAt(mem::PageSize::Huge2M));
        }
        const auto f1g = unit.pcc1g().frequencyOf(
            mem::vpnOf(kBase, mem::PageSize::Huge1G));
        table.row({"2MB-mapped walks", "0",
                   std::to_string(f1g.value_or(0)),
                   unit.prefer1G(mem::vpnOf(kBase,
                                            mem::PageSize::Huge1G),
                                 ratio)
                       ? "yes"
                       : "no"});
    }

    env.emit(table, "1GB PCC promotion rule (Sec. 3.2.3, ratio " +
                        std::to_string(ratio) + ")");
    std::printf("note: the decay of saturating counters bounds the\n"
                "observable frequency ratio; the OS applies the rule\n"
                "to counters sampled within one dump interval.\n\n");

    // End-to-end: a workload whose hot set is spread thinly across two
    // full gigabytes — 2MB candidates thrash the 2MB PCC, the 1GB PCC
    // accumulates, and the OS collapses whole gigabytes.
    {
        workloads::SyntheticSpec sspec;
        sspec.pattern = workloads::Pattern::HotRegions;
        sspec.footprint_bytes = 2ull << 30;
        sspec.hot_regions = 1024; // the whole footprint, sparsely
        // Long enough that 2MB promotion completes mid-run and the
        // remaining intervals expose sustained 2MB-mapped walk
        // pressure — the Sec. 3.2.3 trigger.
        sspec.ops =
            env.scale == workloads::Scale::Ci ? 3'000'000 : 8'000'000;
        sspec.seed = env.seed;

        auto run_with = [&](const bool &enable_1g) {
            workloads::SyntheticWorkload w(sspec);
            sim::SystemConfig cfg =
                sim::SystemConfig::forScale(env.scale);
            cfg.policy = enable_1g ? sim::PolicyKind::Pcc
                                   : sim::PolicyKind::Base;
            cfg.phys_headroom = 2.5; // keep pristine gigabytes around
            cfg.pcc.enable_1g = enable_1g;
            cfg.pcc_policy.promote_1g = enable_1g;
            // Several promotion rounds regardless of scale profile:
            // the 1GB decision needs 2MB-mapped walk pressure to have
            // accumulated before the run ends.
            cfg.interval_accesses = sspec.ops / 14;
            // With 8-bit decaying counters the idealized 512x rule can
            // only fire against cold 2MB constituents; 64 is the
            // equivalent operating point at this counter width.
            cfg.pcc_policy.ratio_1g = 64;
            sim::System system(cfg);
            return system.run(w);
        };
        // The pair is independent; overlap the two raw-System runs.
        util::ThreadPool pool(env.jobs);
        const auto runs =
            pool.parallelMap(std::vector<bool>{false, true}, run_with);
        const auto &base = runs[0];
        const auto &with_1g = runs[1];
        Table sys({"config", "speedup", "2MB promos", "1GB promos",
                   "ptw %"});
        sys.row({"base-4k", "1.000", "0", "0",
                 Table::fmt(base.job().ptwPercent(), 2)});
        sys.row({"pcc+1g", Table::fmt(sim::speedup(base, with_1g), 3),
                 std::to_string(with_1g.job().promotions),
                 std::to_string(with_1g.job().promotions_1g),
                 Table::fmt(with_1g.job().ptwPercent(), 2)});
        env.emit(sys, "End-to-end 1GB promotion (2GB sparse hot set)");
    }
    return 0;
}
