/**
 * @file
 * Differential fuzzing driver (sim/fuzz.hpp): seeded random
 * configuration points, each checked against the reference oracle, for
 * oracle result-neutrality, and for serial-vs-parallel determinism.
 * Failures are shrunk to a minimal repro and printed as a spec string
 * that `--spec="..."` re-runs verbatim.
 *
 *   fuzz_diff [--iters=N] [--seed=S] [--jobs=N]   run a campaign
 *   fuzz_diff --spec="fz1 pat=seq ..."            re-run one repro
 *   fuzz_diff --mutation=skip-l2-fill             self-test: plant the
 *   fuzz_diff --mutation=stale-ltc                named hot-path bug,
 *                                                 require the oracle to
 *                                                 catch it, and shrink
 *
 * Exit status: 0 when every iteration passes (or the planted bug is
 * caught), 1 on any real divergence (or a planted bug going unnoticed).
 */

#include <cstdio>

#include "sim/fuzz.hpp"
#include "util/log.hpp"
#include "util/options.hpp"

using namespace pccsim;

namespace {

/** A spec that reliably trips either planted hot-path mutation. */
sim::FuzzSpec
mutationSpec(sim::HotPathMutation mutation)
{
    sim::FuzzSpec spec;
    spec.ops = 200'000;
    spec.seed = 7;
    switch (mutation) {
      case sim::HotPathMutation::SkipL2Fill:
        // Uniform random over many 4K pages keeps both TLB levels
        // churning, so a miss-path fill that skips the L2 desyncs the
        // reference model within a few thousand accesses.
        spec.pattern = "uniform";
        spec.footprint_mb = 8;
        spec.policy = sim::PolicyKind::Base;
        break;
      case sim::HotPathMutation::StaleLtc:
        // A streaming scan under the PCC policy with a short interval:
        // the policy promotes the very region the lane is streaming
        // through (its walks are the most recent), and the promotion
        // shootdown lands while the last-translation cache still holds
        // a page of that region. A shootdown that forgets to clear the
        // cache then serves a dead 4K translation.
        spec.pattern = "seq";
        spec.footprint_mb = 1;
        spec.policy = sim::PolicyKind::Pcc;
        spec.interval_accesses = 1'000;
        break;
      case sim::HotPathMutation::None:
        break;
    }
    spec.mutation = mutation;
    return spec;
}

int
runMutationSelfTest(const std::string &name, u32 jobs)
{
    sim::HotPathMutation mutation;
    if (name == "skip-l2-fill")
        mutation = sim::HotPathMutation::SkipL2Fill;
    else if (name == "stale-ltc")
        mutation = sim::HotPathMutation::StaleLtc;
    else
        fatal("unknown --mutation=", name,
              " (skip-l2-fill|stale-ltc)");

    const sim::FuzzSpec planted = mutationSpec(mutation);
    std::printf("planted:  %s\n", planted.toString().c_str());
    const auto failure = sim::checkSpec(planted, jobs);
    if (!failure) {
        std::printf("FAIL: oracle did not catch the planted bug\n");
        return 1;
    }
    std::printf("caught:   [%s] %s\n", failure->kind.c_str(),
                failure->detail.c_str());

    const sim::FuzzSpec small = sim::shrink(planted, jobs);
    std::printf("shrunk:   %s\n", small.toString().c_str());
    if (small.ops > planted.ops / 8) {
        std::printf("FAIL: shrink stopped at ops=%llu (wanted <= %llu)\n",
                    static_cast<unsigned long long>(small.ops),
                    static_cast<unsigned long long>(planted.ops / 8));
        return 1;
    }
    const auto still = sim::checkSpec(small, jobs);
    if (!still || still->kind != failure->kind) {
        std::printf("FAIL: shrunk spec no longer reproduces\n");
        return 1;
    }
    std::printf("repro:    fuzz_diff --spec=\"%s\"\n",
                small.toString().c_str());
    std::printf("OK: planted bug caught and shrunk\n");
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    Options opts(argc, argv);
    const u32 jobs = static_cast<u32>(opts.getInt("jobs", 4));

    if (opts.has("mutation"))
        return runMutationSelfTest(opts.get("mutation"), jobs);

    if (opts.has("spec")) {
        const auto spec = sim::FuzzSpec::parse(opts.get("spec"));
        if (!spec)
            fatal("unparseable --spec string");
        std::printf("spec:     %s\n", spec->toString().c_str());
        const auto failure = sim::checkSpec(*spec, jobs);
        if (!failure) {
            std::printf("OK: spec passes all gates\n");
            return 0;
        }
        std::printf("FAIL [%s]: %s\n", failure->kind.c_str(),
                    failure->detail.c_str());
        return 1;
    }

    const u64 iters = static_cast<u64>(opts.getInt("iters", 25));
    const u64 seed = static_cast<u64>(opts.getInt("seed", 1));
    std::printf("campaign: seed=%llu iters=%llu jobs=%u\n",
                static_cast<unsigned long long>(seed),
                static_cast<unsigned long long>(iters), jobs);
    const auto campaign = sim::runCampaign(seed, iters, jobs, true);
    if (campaign.failures.empty()) {
        std::printf("OK: %llu iterations, zero divergences\n",
                    static_cast<unsigned long long>(campaign.iterations));
        return 0;
    }
    for (const auto &failure : campaign.failures) {
        std::printf("FAIL [%s]: %s\n  repro: fuzz_diff --spec=\"%s\"\n",
                    failure.kind.c_str(), failure.detail.c_str(),
                    failure.spec.toString().c_str());
    }
    return 1;
}
