/**
 * @file
 * Reproduces Fig. 8: multithreaded (2/4/8 threads, one per core,
 * per-core PCCs) utility points for the graph applications, comparing
 * the two OS arbitration policies of Sec. 3.3.2 — globally highest
 * PCC frequency vs round robin — at a small promotion budget.
 *
 * Shape targets: highest-frequency >= round-robin slightly (load
 * imbalance makes some threads benefit more); multithread speedups
 * sit below the single-thread ones.
 */

#include "common.hpp"

using namespace pccsim;
using namespace pccsim::bench;

int
main(int argc, char **argv)
{
    BenchEnv env = BenchEnv::parse(
        argc, argv, workloads::graphWorkloadNames());
    Options opts(argc, argv);
    const double cap = opts.getDouble("cap", 8.0);

    for (u32 threads : {2u, 4u, 8u}) {
        // Batch the whole thread count (4 configurations x apps).
        std::vector<sim::ExperimentSpec> specs;
        for (const auto &app : env.apps) {
            auto base_spec = env.spec(app, sim::PolicyKind::Base);
            base_spec.lanes = threads;
            base_spec.cap_percent = 0.0;
            specs.push_back(std::move(base_spec));

            auto freq_spec = env.spec(app, sim::PolicyKind::Pcc);
            freq_spec.lanes = threads;
            freq_spec.cap_percent = cap;
            freq_spec.pcc_policy.order =
                os::PromotionOrder::HighestFrequency;
            specs.push_back(freq_spec);

            auto rr_spec = freq_spec;
            rr_spec.pcc_policy.order = os::PromotionOrder::RoundRobin;
            specs.push_back(std::move(rr_spec));

            auto ideal_spec = env.spec(app, sim::PolicyKind::AllHuge);
            ideal_spec.lanes = threads;
            specs.push_back(std::move(ideal_spec));
        }
        const auto results = runAll(specs);

        Table table({"app", "highest-freq", "round-robin", "ideal"});
        for (size_t a = 0; a < env.apps.size(); ++a) {
            const auto &base = *results[4 * a];
            const double freq = sim::speedup(base, *results[4 * a + 1]);
            const double rr = sim::speedup(base, *results[4 * a + 2]);
            const double ideal =
                sim::speedup(base, *results[4 * a + 3]);

            table.row({env.apps[a], Table::fmt(freq, 3),
                       Table::fmt(rr, 3), Table::fmt(ideal, 3)});
        }
        env.emit(table, "Fig. 8: " + std::to_string(threads) +
                            " threads, cap " + Table::fmt(cap, 0) +
                            "%");
    }
    return 0;
}
