/**
 * @file
 * Reproduces Fig. 9: two single-threaded processes sharing the
 * system's huge-page resources. Case (a): PageRank (TLB-sensitive)
 * next to mcf (insensitive). Case (b): PageRank next to SSSP (both
 * sensitive). For each promotion cap (percent of the *combined*
 * footprint) and each arbitration policy, prints per-process speedup
 * and THP usage.
 *
 * Shape targets: with one insensitive neighbour, the frequency policy
 * funnels THPs to the sensitive process and performs slightly better;
 * with two sensitive processes the policies converge, with round
 * robin avoiding starvation.
 */

#include "common.hpp"
#include "util/thread_pool.hpp"
#include "workloads/registry.hpp"

using namespace pccsim;
using namespace pccsim::bench;

namespace {

struct PairResult
{
    double speedup_a;
    double speedup_b;
    u64 thps_a;
    u64 thps_b;
};

/** One grid point of a case study: arbitration policy x cap. */
struct PairPoint
{
    sim::PolicyKind policy;
    os::PromotionOrder order;
    double cap;
};

sim::RunResult
runPairOnce(const BenchEnv &env, const std::string &a,
            const std::string &b, sim::PolicyKind policy,
            os::PromotionOrder order, double cap)
{
    auto make = [&](const std::string &name) {
        workloads::WorkloadSpec spec;
        spec.name = name;
        spec.scale = env.scale;
        spec.seed = env.seed;
        return workloads::makeWorkload(spec);
    };
    auto wa = make(a);
    auto wb = make(b);
    sim::SystemConfig cfg = sim::SystemConfig::forScale(env.scale);
    cfg.num_cores = 2;
    cfg.policy = policy;
    cfg.promotion_cap_percent = cap;
    cfg.pcc_policy.order = order;
    sim::System system(cfg);
    return system.run(
        {sim::System::Job{wa.get(), 1}, sim::System::Job{wb.get(), 1}});
}

PairResult
toPairResult(const sim::RunResult &base, const sim::RunResult &run)
{
    return {sim::speedup(base, run, 0), sim::speedup(base, run, 1),
            run.jobs[0].promotions, run.jobs[1].promotions};
}

void
caseStudy(const BenchEnv &env, const std::string &a,
          const std::string &b, const std::string &title)
{
    // Two-job runs are not expressible as ExperimentSpecs, so the
    // grid fans out directly on a worker pool: point 0 is the shared
    // 4KB baseline, the last point the unconstrained ideal, and each
    // task builds its own workloads + System (runs stay independent;
    // parallelMap keeps input order).
    std::vector<PairPoint> points;
    points.push_back({sim::PolicyKind::Base,
                      os::PromotionOrder::HighestFrequency, 0.0});
    for (double cap : {1.0, 2.0, 4.0, 8.0, 16.0, 32.0, -1.0}) {
        points.push_back({sim::PolicyKind::Pcc,
                          os::PromotionOrder::HighestFrequency, cap});
        points.push_back(
            {sim::PolicyKind::Pcc, os::PromotionOrder::RoundRobin, cap});
    }
    points.push_back({sim::PolicyKind::AllHuge,
                      os::PromotionOrder::HighestFrequency, -1.0});

    util::ThreadPool pool(env.jobs);
    const auto runs = pool.parallelMap(points, [&](const PairPoint &p) {
        return runPairOnce(env, a, b, p.policy, p.order, p.cap);
    });
    const auto &base = runs.front();

    Table table({"cap %", "policy", a + " speedup", b + " speedup",
                 a + " THPs", b + " THPs"});
    for (size_t i = 1; i + 1 < runs.size(); ++i) {
        const auto r = toPairResult(base, runs[i]);
        table.row({capLabel(points[i].cap),
                   points[i].order == os::PromotionOrder::RoundRobin
                       ? "round-robin"
                       : "highest-freq",
                   Table::fmt(r.speedup_a, 3),
                   Table::fmt(r.speedup_b, 3),
                   std::to_string(r.thps_a),
                   std::to_string(r.thps_b)});
    }
    // Reference: unconstrained ideal.
    const auto ideal = toPairResult(base, runs.back());
    env.emit(table, title);
    std::printf("  ideal: %s=%.3f %s=%.3f (THPs %llu / %llu)\n\n",
                a.c_str(), ideal.speedup_a, b.c_str(), ideal.speedup_b,
                static_cast<unsigned long long>(ideal.thps_a),
                static_cast<unsigned long long>(ideal.thps_b));
}

/**
 * Companion section: the same process pair, but *time-sharing one
 * core* in tenant mode, flush-on-switch vs ASID-tagged TLBs. The
 * two-core case studies above never context-switch; this is where the
 * switch-mode choice shows up. Expected shape: ASID rows strictly
 * below flush rows in walks and wall cycles, equal in accesses.
 */
void
switchModeStudy(const BenchEnv &env, const std::string &a,
                const std::string &b)
{
    auto runMode = [&](tenant::SwitchMode mode) {
        auto make = [&](const std::string &name, u64 seed) {
            workloads::WorkloadSpec spec;
            spec.name = name;
            spec.scale = env.scale;
            spec.seed = seed;
            return workloads::makeWorkload(spec);
        };
        auto wa = make(a, env.seed);
        auto wb = make(b, env.seed + 1);
        sim::SystemConfig cfg = sim::SystemConfig::forScale(env.scale);
        cfg.num_cores = 1;
        cfg.tenant.cores = 1;
        cfg.tenant.switch_mode = mode;
        cfg.tenant.quantum_ops = 1024;
        cfg.policy = sim::PolicyKind::Pcc;
        cfg.telemetry.enabled = true;
        cfg.seed = env.seed;
        sim::System system(cfg);
        return system.run(
            {sim::System::Job{wa.get(), 1}, sim::System::Job{wb.get(), 1}});
    };
    const auto flush = runMode(tenant::SwitchMode::Flush);
    const auto asid = runMode(tenant::SwitchMode::Asid);

    Table table({"switch", a + " walks", b + " walks", "miss %",
                 "wall Mcyc"});
    auto addRow = [&](const char *label, const sim::RunResult &r) {
        u64 walks = 0, tlb = 0;
        for (const auto &job : r.jobs) {
            walks += job.walks;
            tlb += job.tlb_accesses;
        }
        table.row({label, std::to_string(r.jobs[0].walks),
                   std::to_string(r.jobs[1].walks),
                   Table::fmt(percent(walks, tlb), 2),
                   Table::fmt(static_cast<double>(r.wall_cycles) / 1e6,
                              1)});
    };
    addRow("flush", flush);
    addRow("asid", asid);
    env.emit(table, "Fig. 9c: " + a + " + " + b +
                        " time-sharing one core (flush vs ASID)");
}

} // namespace

int
main(int argc, char **argv)
{
    BenchEnv env = BenchEnv::parse(argc, argv, {});
    caseStudy(env, "pr", "mcf",
              "Fig. 9a: TLB-sensitive (pr) + insensitive (mcf)");
    caseStudy(env, "pr", "sssp",
              "Fig. 9b: two TLB-sensitive applications (pr + sssp)");
    switchModeStudy(env, "pr", "mcf");
    return 0;
}
