/**
 * @file
 * Ablation for the Sec. 5.4.1 victim-cache design alternative: feed
 * the candidate structure from L2 TLB evictions instead of
 * accessed-bit-filtered page-table walks.
 *
 * The paper's argument: "a cache too small cannot sufficiently track
 * and rank promotion candidates and would get polluted with other
 * data that is too sparsely accessed to benefit from promotion." The
 * walk-sourced PCC filters that data with the accessed bit; the
 * victim buffer cannot. Expected shape: victim sourcing <= PCC,
 * with the gap widening for workloads with large cold/sparse
 * components.
 */

#include "common.hpp"

using namespace pccsim;
using namespace pccsim::bench;

int
main(int argc, char **argv)
{
    BenchEnv env = BenchEnv::parse(argc, argv);
    BaselineCache baselines(env);
    baselines.prefetch(env.apps);

    auto spec_with = [&](const std::string &app, u32 entries,
                         pcc::CandidateSource source,
                         const char *label) {
        auto spec = env.spec(app, sim::PolicyKind::Pcc);
        spec.cap_percent = 8.0;
        spec.tweak = [entries, source](sim::SystemConfig &cfg) {
            cfg.pcc.pcc2m.entries = entries;
            cfg.pcc.source = source;
        };
        spec.tweak_key =
            "pcc2m=" + std::to_string(entries) + ",src=" + label;
        return spec;
    };

    for (u32 entries : {128u, 16u}) {
        std::vector<sim::ExperimentSpec> specs;
        for (const auto &app : env.apps) {
            specs.push_back(spec_with(
                app, entries, pcc::CandidateSource::PtwFiltered,
                "walks"));
            specs.push_back(spec_with(
                app, entries, pcc::CandidateSource::L2Victims,
                "victims"));
        }
        const auto results = runAll(specs);

        Table table({"app", "PCC (walks)", "victim buffer",
                     "delta %"});
        for (size_t a = 0; a < env.apps.size(); ++a) {
            const auto &base = baselines.get(env.apps[a]);
            const double walks =
                sim::speedup(base, *results[2 * a]);
            const double victims =
                sim::speedup(base, *results[2 * a + 1]);
            table.row({env.apps[a], Table::fmt(walks, 3),
                       Table::fmt(victims, 3),
                       Table::fmt(100.0 * (walks - victims) /
                                      victims,
                                  2)});
        }
        env.emit(table, "Candidate-source ablation, " +
                            std::to_string(entries) +
                            "-entry structure (cap 8%)");
    }
    return 0;
}
