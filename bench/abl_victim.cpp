/**
 * @file
 * Ablation for the Sec. 5.4.1 victim-cache design alternative: feed
 * the candidate structure from L2 TLB evictions instead of
 * accessed-bit-filtered page-table walks.
 *
 * The paper's argument: "a cache too small cannot sufficiently track
 * and rank promotion candidates and would get polluted with other
 * data that is too sparsely accessed to benefit from promotion." The
 * walk-sourced PCC filters that data with the accessed bit; the
 * victim buffer cannot. Expected shape: victim sourcing <= PCC,
 * with the gap widening for workloads with large cold/sparse
 * components.
 */

#include "common.hpp"

using namespace pccsim;
using namespace pccsim::bench;

int
main(int argc, char **argv)
{
    BenchEnv env = BenchEnv::parse(argc, argv);
    BaselineCache baselines(env);

    for (u32 entries : {128u, 16u}) {
        Table table({"app", "PCC (walks)", "victim buffer",
                     "delta %"});
        for (const auto &app : env.apps) {
            const auto &base = baselines.get(app);
            auto run_with = [&](pcc::CandidateSource source) {
                auto spec = env.spec(app, sim::PolicyKind::Pcc);
                spec.cap_percent = 8.0;
                spec.tweak = [entries,
                              source](sim::SystemConfig &cfg) {
                    cfg.pcc.pcc2m.entries = entries;
                    cfg.pcc.source = source;
                };
                return sim::speedup(base, sim::runOne(spec));
            };
            const double walks =
                run_with(pcc::CandidateSource::PtwFiltered);
            const double victims =
                run_with(pcc::CandidateSource::L2Victims);
            table.row({app, Table::fmt(walks, 3),
                       Table::fmt(victims, 3),
                       Table::fmt(100.0 * (walks - victims) /
                                      victims,
                                  2)});
        }
        env.emit(table, "Candidate-source ablation, " +
                            std::to_string(entries) +
                            "-entry structure (cap 8%)");
    }
    return 0;
}
