/**
 * @file
 * Ablation for the page-walk-cache discussion of Sec. 5.4.1: measured
 * page-table references per walk with the split PWC enabled (the
 * paper quotes 1.1-1.4 refs/walk) vs disabled (every walk fetches all
 * levels), and the resulting baseline runtime difference. Also shows
 * that PWCs do NOT reduce the TLB miss rate itself — the PCC's reason
 * for existing.
 */

#include "common.hpp"

using namespace pccsim;
using namespace pccsim::bench;

int
main(int argc, char **argv)
{
    BenchEnv env = BenchEnv::parse(argc, argv);

    std::vector<sim::ExperimentSpec> specs;
    for (const auto &app : env.apps) {
        auto with_spec = env.spec(app, sim::PolicyKind::Base);
        with_spec.cap_percent = 0.0;
        specs.push_back(with_spec);

        auto without_spec = with_spec;
        without_spec.tweak = [](sim::SystemConfig &cfg) {
            cfg.pwc.enabled = false;
        };
        without_spec.tweak_key = "pwc=off";
        specs.push_back(std::move(without_spec));
    }
    const auto results = runAll(specs);

    Table table({"app", "refs/walk (PWC)", "refs/walk (no PWC)",
                 "miss% (PWC)", "miss% (no PWC)", "no-PWC slowdown"});
    for (size_t a = 0; a < env.apps.size(); ++a) {
        const auto &app = env.apps[a];
        const auto &with_pwc = *results[2 * a];
        const auto &without_pwc = *results[2 * a + 1];

        table.row(
            {app, Table::fmt(with_pwc.job().refs_per_walk, 2),
             Table::fmt(without_pwc.job().refs_per_walk, 2),
             Table::fmt(with_pwc.job().tlbMissPercent(), 2),
             Table::fmt(without_pwc.job().tlbMissPercent(), 2),
             Table::fmt(static_cast<double>(
                            without_pwc.job().wall_cycles) /
                            static_cast<double>(
                                with_pwc.job().wall_cycles),
                        3)});
    }
    env.emit(table, "Page-walk-cache ablation (Sec. 5.4.1)");
    std::printf("note: identical TLB miss rates with and without the\n"
                "PWC — walk caches shorten walks but cannot remove\n"
                "them, which is why the PCC tracks promotion\n"
                "candidates instead of repurposing the PWC.\n");
    return 0;
}
