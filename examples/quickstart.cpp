/**
 * @file
 * Quickstart: run BFS on a Kronecker graph under four huge-page
 * policies — 4KB baseline, greedy Linux THP, the PCC proposal, and the
 * all-huge ideal — and print the paper's headline metrics.
 *
 * Usage: quickstart [--scale=ci|small|medium] [--frag=0.5] [--cap=4]
 *                   [--format=text|csv|json]
 *                   [--telemetry=series.json] [--trace=trace.json]
 *
 * --telemetry/--trace collect interval time-series and a structured
 * event trace from the PCC run and write them as JSON (the trace loads
 * in chrome://tracing or Perfetto).
 */

#include <cstdio>

#include "sim/experiment.hpp"
#include "telemetry/emitter.hpp"
#include "util/options.hpp"
#include "util/table.hpp"

using namespace pccsim;

int
main(int argc, char **argv)
{
    Options opts(argc, argv);
    const auto scale =
        workloads::scaleFromString(opts.get("scale", "ci"));
    const double frag = opts.getDouble("frag", 0.5);
    const double cap = opts.getDouble("cap", 4.0);
    const std::string telemetry_path = opts.get("telemetry", "");
    const std::string trace_path = opts.get("trace", "");

    sim::ExperimentSpec spec;
    spec.workload.name = opts.get("workload", "bfs");
    spec.workload.scale = scale;

    // 4KB baseline.
    sim::ExperimentSpec base = spec;
    base.policy = sim::PolicyKind::Base;
    const auto base_run = sim::runOne(base);

    Table table({"policy", "speedup", "tlb miss %", "ptw %",
                 "promotions", "huge %"});
    auto report = [&](const char *label, const sim::RunResult &run) {
        table.row({label, Table::fmt(sim::speedup(base_run, run), 3),
                   Table::fmt(run.job().tlbMissPercent(), 2),
                   Table::fmt(run.job().ptwPercent(), 2),
                   std::to_string(run.job().promotions),
                   Table::fmt(run.job().hugeCoveragePercent(), 1)});
    };
    report("base-4k", base_run);

    sim::ExperimentSpec thp = spec;
    thp.policy = sim::PolicyKind::LinuxThp;
    thp.frag_fraction = frag;
    report("linux-thp(frag)", sim::runOne(thp));

    sim::ExperimentSpec pcc = spec;
    pcc.policy = sim::PolicyKind::Pcc;
    pcc.frag_fraction = frag;
    pcc.cap_percent = cap;
    // The PCC run is the interesting one: collect its telemetry when
    // an export destination was given.
    pcc.telemetry.enabled =
        !telemetry_path.empty() || !trace_path.empty();
    const auto pcc_run = sim::runOne(pcc);
    report("pcc(frag,cap)", pcc_run);

    sim::ExperimentSpec ideal = spec;
    ideal.policy = sim::PolicyKind::AllHuge;
    report("all-huge(ideal)", sim::runOne(ideal));

    telemetry::Emitter emitter(
        telemetry::formatFromString(opts.get("format", "text")));
    char title[256];
    std::snprintf(title, sizeof title,
                  "quickstart workload=%s scale=%s frag=%.0f%% cap=%.0f%%",
                  spec.workload.name.c_str(),
                  workloads::to_string(scale).c_str(), frag * 100, cap);
    emitter.table(title, table);

    if (pcc_run.telemetry) {
        if (!telemetry_path.empty()) {
            writeFile(telemetry_path,
                      pcc_run.telemetry->seriesJson().dump(2) + "\n");
            std::fprintf(stderr, "wrote telemetry series to %s\n",
                         telemetry_path.c_str());
        }
        if (!trace_path.empty()) {
            writeFile(trace_path,
                      pcc_run.telemetry->traceJson().dump(2) + "\n");
            std::fprintf(stderr, "wrote Chrome trace to %s\n",
                         trace_path.c_str());
        }
    }
    return 0;
}
