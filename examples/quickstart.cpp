/**
 * @file
 * Quickstart: run BFS on a Kronecker graph under four huge-page
 * policies — 4KB baseline, greedy Linux THP, the PCC proposal, and the
 * all-huge ideal — and print the paper's headline metrics.
 *
 * Usage: quickstart [--scale=ci|small|medium] [--frag=0.5] [--cap=4]
 *                   [--jobs=N] [--format=text|csv|json]
 *                   [--telemetry=series.json] [--trace=trace.json]
 *                   [--attribution[=FILE]] [--audit[=FILE]]
 *                   [--histograms[=FILE]]
 *
 * --telemetry/--trace collect interval time-series and a structured
 * event trace from the PCC run and write them as JSON (the trace loads
 * in chrome://tracing or Perfetto). --attribution adds region-level
 * walk-cost attribution (top regions, CDF, HUB concentration) and
 * --audit the promotion decision log with counterfactual regret — each
 * prints a summary section and optionally exports the full JSON when
 * given a =FILE value. --histograms adds tail-latency histograms
 * (translation / walk / fault-stall cycles per access) with worst-K
 * exemplars that name the HUB region behind each tail access — pair
 * it with --audit to see the promotion decision in the same row. The
 * four simulations run through the parallel runner; output is
 * byte-identical for any --jobs value.
 */

#include <algorithm>
#include <cstdio>
#include <string>

#include "sim/experiment.hpp"
#include "sim/runner.hpp"
#include "telemetry/emitter.hpp"
#include "util/options.hpp"
#include "util/table.hpp"

using namespace pccsim;

namespace {

std::string
hexAddr(Addr addr)
{
    char buf[32];
    std::snprintf(buf, sizeof buf, "0x%llx",
                  static_cast<unsigned long long>(addr));
    return buf;
}

/** Rows (from the sorted list) needed to cover `pct` of walk cycles. */
u64
regionsForPct(const telemetry::AttributionReport &attr, double pct)
{
    const double target =
        static_cast<double>(attr.total_walk_cycles) * pct / 100.0;
    u64 cum = 0;
    for (size_t i = 0; i < attr.regions.size(); ++i) {
        cum += attr.regions[i].walk_cycles;
        if (static_cast<double>(cum) >= target)
            return static_cast<u64>(i + 1);
    }
    return 0; // not reachable from tracked rows alone
}

/** Write one export; returns false (after a warning) on failure. */
bool
exportJson(const std::string &path, const telemetry::Json &doc,
           const char *what)
{
    if (path.empty())
        return true;
    const util::Status status =
        telemetry::Emitter::writeFileStatus(path, doc.dump(2) + "\n");
    if (!status.ok()) {
        std::fprintf(stderr, "quickstart: %s export failed: %s\n", what,
                     status.toString().c_str());
        return false;
    }
    std::fprintf(stderr, "wrote %s to %s\n", what, path.c_str());
    return true;
}

} // namespace

int
main(int argc, char **argv)
{
    Options opts(argc, argv);
    if (sim::handleListFlags(opts.get("policy"), opts.get("hw")))
        return 0;
    const auto scale =
        workloads::scaleFromString(opts.get("scale", "ci"));
    const double frag = opts.getDouble("frag", 0.5);
    const double cap = opts.getDouble("cap", 4.0);
    const std::string telemetry_path = opts.get("telemetry", "");
    const std::string trace_path = opts.get("trace", "");
    const bool want_attribution = opts.has("attribution");
    const bool want_audit = opts.has("audit");
    const bool want_histograms = opts.has("histograms");
    const std::string attribution_path = opts.get("attribution", "");
    const std::string audit_path = opts.get("audit", "");
    const std::string histograms_path = opts.get("histograms", "");

    // Default to one worker: the quickstart is the determinism demo
    // (--jobs=4 must reproduce --jobs=1 byte for byte), so parallelism
    // is opt-in rather than host-dependent.
    sim::Runner::setGlobalJobs(
        static_cast<u32>(opts.getInt("jobs", 1)));

    sim::ExperimentSpec spec;
    spec.workload.name = opts.get("workload", "bfs");
    spec.workload.scale = scale;

    sim::ExperimentSpec base = spec;
    base.policy = sim::PolicyKind::Base;

    sim::ExperimentSpec thp = spec;
    thp.policy = sim::PolicyKind::LinuxThp;
    thp.frag_fraction = frag;

    sim::ExperimentSpec pcc = spec;
    pcc.policy = sim::PolicyKind::Pcc;
    pcc.frag_fraction = frag;
    pcc.cap_percent = cap;
    // The PCC run is the interesting one: collect its telemetry when
    // an export destination or an analysis section was requested.
    pcc.telemetry.enabled = !telemetry_path.empty() ||
                            !trace_path.empty() || want_attribution ||
                            want_audit || want_histograms;
    pcc.telemetry.attribution = want_attribution;
    pcc.telemetry.audit = want_audit;
    pcc.telemetry.histograms = want_histograms;

    sim::ExperimentSpec ideal = spec;
    ideal.policy = sim::PolicyKind::AllHuge;

    const auto results =
        sim::Runner::global().runMany({base, thp, pcc, ideal});
    const sim::RunResult &base_run = *results[0];
    const sim::RunResult &pcc_run = *results[2];

    Table table({"policy", "speedup", "tlb miss %", "ptw %",
                 "promotions", "huge %", "regret"});
    auto report = [&](const char *label, const sim::RunResult &run) {
        // Counterfactual regret: walk cycles behind candidates the
        // policy ranked but left unpromoted ("-" without --audit).
        std::string regret = "-";
        if (run.telemetry && pcc.telemetry.audit) {
            const u64 cycles = sim::regretCycles(run);
            regret = std::to_string(cycles) + " (" +
                     Table::fmt(percent(cycles, run.wall_cycles), 2) +
                     "%)";
        }
        table.row({label, Table::fmt(sim::speedup(base_run, run), 3),
                   Table::fmt(run.job().tlbMissPercent(), 2),
                   Table::fmt(run.job().ptwPercent(), 2),
                   std::to_string(run.job().promotions),
                   Table::fmt(run.job().hugeCoveragePercent(), 1),
                   regret});
    };
    report("base-4k", base_run);
    report("linux-thp(frag)", *results[1]);
    report("pcc(frag,cap)", pcc_run);
    report("all-huge(ideal)", *results[3]);

    telemetry::Emitter emitter(
        telemetry::formatFromString(opts.get("format", "text")));
    char title[256];
    std::snprintf(title, sizeof title,
                  "quickstart workload=%s scale=%s frag=%.0f%% cap=%.0f%%",
                  spec.workload.name.c_str(),
                  workloads::to_string(scale).c_str(), frag * 100, cap);
    emitter.table(title, table);

    bool exports_ok = true;
    if (pcc_run.telemetry) {
        const telemetry::TelemetryReport &tel = *pcc_run.telemetry;
        if (want_attribution) {
            const auto &attr = tel.attribution;
            Table regions({"pid", "base", "walks", "walk cycles",
                           "pwc hits", "pcc hits", "share %"});
            const size_t top =
                std::min<size_t>(8, attr.regions.size());
            for (size_t i = 0; i < top; ++i) {
                const auto &row = attr.regions[i];
                regions.row(
                    {std::to_string(row.pid), hexAddr(row.base),
                     std::to_string(row.walks),
                     std::to_string(row.walk_cycles),
                     std::to_string(row.pwc_hits),
                     std::to_string(row.pcc_hits),
                     Table::fmt(percent(row.walk_cycles,
                                        attr.total_walk_cycles),
                                2)});
            }
            emitter.table("attribution: hottest regions (pcc run)",
                          regions);
            telemetry::Json hub = telemetry::Json::object();
            hub.set("tracked_regions",
                    static_cast<u64>(attr.regions.size()));
            hub.set("total_walk_cycles", attr.total_walk_cycles);
            hub.set("untracked_walk_cycles",
                    attr.untracked_walk_cycles);
            hub.set("regions_for_50pct", regionsForPct(attr, 50.0));
            hub.set("regions_for_70pct", regionsForPct(attr, 70.0));
            hub.set("regions_for_90pct", regionsForPct(attr, 90.0));
            emitter.object("attribution: HUB concentration", hub);
            exports_ok &= exportJson(attribution_path,
                                     attr.toJson(), "attribution");
        }
        if (want_audit) {
            const auto &audit = tel.audit;
            telemetry::Json summary = telemetry::Json::object();
            summary.set("decisions",
                        static_cast<u64>(audit.records.size()));
            summary.set("records_dropped", audit.records_dropped);
            telemetry::Json reasons = telemetry::Json::object();
            for (const auto &[key, count] : audit.reason_counts)
                reasons.set(key, count);
            summary.set("reasons", std::move(reasons));
            summary.set("regret_total_cycles",
                        audit.regret_total_cycles);
            summary.set("regret_regions",
                        static_cast<u64>(audit.regret.size()));
            emitter.object("audit: promotion decisions (pcc run)",
                           summary);
            exports_ok &=
                exportJson(audit_path, audit.toJson(), "audit");
        }
        if (want_histograms) {
            const auto &tail = tel.tail;
            emitter.table("tail latency: cycles per access (pcc run)",
                          telemetry::tailQuantileTable(tail));
            emitter.table(
                "worst-" + std::to_string(tail.exemplar_k) +
                    " translation exemplars (pcc run)",
                telemetry::tailExemplarTable(tail.worst_translation));
            // The walk reservoir is the HUB view: the regions whose
            // page walks cost the most, with (under --audit) the
            // promotion decision that explains each one.
            emitter.table(
                "worst-" + std::to_string(tail.exemplar_k) +
                    " page-walk exemplars (pcc run)",
                telemetry::tailExemplarTable(tail.worst_walk));
            exports_ok &= exportJson(histograms_path, tail.toJson(),
                                     "tail histograms");
        }
        if (!telemetry_path.empty()) {
            exports_ok &= exportJson(telemetry_path, tel.seriesJson(),
                                     "telemetry series");
        }
        if (!trace_path.empty()) {
            exports_ok &= exportJson(trace_path, tel.traceJson(),
                                     "Chrome trace");
        }
        // Truncation footer: drop counters of every bounded telemetry
        // buffer, so a truncated report is never silently complete.
        telemetry::Json footer = telemetry::Json::object();
        footer.set("trace_events_dropped", tel.events_dropped);
        footer.set("audit_records_dropped", tel.audit.records_dropped);
        footer.set("audit_regret_marks_dropped",
                   tel.audit.regret_marks_dropped);
        footer.set("attribution_untracked_share_pct",
                   percent(tel.attribution.untracked_walk_cycles,
                           tel.attribution.total_walk_cycles));
        emitter.object("telemetry: coverage & truncation", footer);
    }
    return exports_ok ? 0 : 1;
}
