/**
 * @file
 * Quickstart: run BFS on a Kronecker graph under four huge-page
 * policies — 4KB baseline, greedy Linux THP, the PCC proposal, and the
 * all-huge ideal — and print the paper's headline metrics.
 *
 * Usage: quickstart [--scale=ci|small|medium] [--frag=0.5] [--cap=4]
 */

#include <cstdio>

#include "sim/experiment.hpp"
#include "util/options.hpp"
#include "util/table.hpp"

using namespace pccsim;

int
main(int argc, char **argv)
{
    Options opts(argc, argv);
    const auto scale =
        workloads::scaleFromString(opts.get("scale", "ci"));
    const double frag = opts.getDouble("frag", 0.5);
    const double cap = opts.getDouble("cap", 4.0);

    sim::ExperimentSpec spec;
    spec.workload.name = opts.get("workload", "bfs");
    spec.workload.scale = scale;

    // 4KB baseline.
    sim::ExperimentSpec base = spec;
    base.policy = sim::PolicyKind::Base;
    const auto base_run = sim::runOne(base);

    Table table({"policy", "speedup", "tlb miss %", "ptw %",
                 "promotions", "huge %"});
    auto report = [&](const char *label, const sim::RunResult &run) {
        table.row({label, Table::fmt(sim::speedup(base_run, run), 3),
                   Table::fmt(run.job().tlbMissPercent(), 2),
                   Table::fmt(run.job().ptwPercent(), 2),
                   std::to_string(run.job().promotions),
                   Table::fmt(run.job().hugeCoveragePercent(), 1)});
    };
    report("base-4k", base_run);

    sim::ExperimentSpec thp = spec;
    thp.policy = sim::PolicyKind::LinuxThp;
    thp.frag_fraction = frag;
    report("linux-thp(frag)", sim::runOne(thp));

    sim::ExperimentSpec pcc = spec;
    pcc.policy = sim::PolicyKind::Pcc;
    pcc.frag_fraction = frag;
    pcc.cap_percent = cap;
    report("pcc(frag,cap)", sim::runOne(pcc));

    sim::ExperimentSpec ideal = spec;
    ideal.policy = sim::PolicyKind::AllHuge;
    report("all-huge(ideal)", sim::runOne(ideal));

    std::printf("workload=%s scale=%s frag=%.0f%% cap=%.0f%%\n\n%s",
                spec.workload.name.c_str(),
                workloads::to_string(scale).c_str(), frag * 100, cap,
                table.str().c_str());
    return 0;
}
