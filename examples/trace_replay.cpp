/**
 * @file
 * Example: the paper's two-step evaluation methodology (Sec. 4) as a
 * tool. Step one simulates the TLB hierarchy + PCC and records which
 * regions the OS promotes and when; step two replays that promotion
 * trace into a fresh run, standing in for the authors' modified Linux
 * kernel consuming an offline PCC trace.
 *
 * Usage:
 *   trace_replay --workload=bfs --scale=ci --trace=/tmp/bfs.trace
 */

#include <cstdio>

#include "sim/experiment.hpp"
#include "util/options.hpp"
#include "util/table.hpp"

using namespace pccsim;

int
main(int argc, char **argv)
{
    Options opts(argc, argv);
    if (sim::handleListFlags(opts.get("policy"), opts.get("hw")))
        return 0;
    workloads::WorkloadSpec wspec;
    wspec.name = opts.get("workload", "bfs");
    wspec.scale = workloads::scaleFromString(opts.get("scale", "ci"));
    wspec.seed = static_cast<u64>(opts.getInt("seed", 42));
    const std::string path =
        opts.get("trace", "/tmp/pccsim_promotions.trace");

    // Baseline.
    auto base_w = workloads::makeWorkload(wspec);
    sim::SystemConfig base_cfg = sim::SystemConfig::forScale(wspec.scale);
    sim::System base_sys(base_cfg);
    const auto base = base_sys.run(*base_w);

    // Step 1: offline PCC simulation, recording promotions.
    auto record_w = workloads::makeWorkload(wspec);
    sim::SystemConfig record_cfg =
        sim::SystemConfig::forScale(wspec.scale);
    record_cfg.policy = sim::PolicyKind::Pcc;
    record_cfg.record_trace = true;
    sim::System recorder(record_cfg);
    const auto recorded = recorder.run(*record_w);
    recorder.recordedTrace().save(path);
    std::printf("step 1: recorded %zu promotions to %s\n",
                recorder.recordedTrace().size(), path.c_str());

    // Step 2: replay the trace from disk into a fresh system.
    const auto trace = os::PromotionTrace::load(path);
    auto replay_w = workloads::makeWorkload(wspec);
    sim::SystemConfig replay_cfg =
        sim::SystemConfig::forScale(wspec.scale);
    replay_cfg.policy = sim::PolicyKind::TraceReplay;
    replay_cfg.replay_trace = trace;
    sim::System replayer(replay_cfg);
    const auto replayed = replayer.run(*replay_w);

    Table table({"run", "speedup", "ptw %", "promotions"});
    table.row({"baseline", "1.000",
               Table::fmt(base.job().ptwPercent(), 2), "0"});
    table.row({"pcc (record)",
               Table::fmt(sim::speedup(base, recorded), 3),
               Table::fmt(recorded.job().ptwPercent(), 2),
               std::to_string(recorded.job().promotions)});
    table.row({"trace replay",
               Table::fmt(sim::speedup(base, replayed), 3),
               Table::fmt(replayed.job().ptwPercent(), 2),
               std::to_string(replayed.job().promotions)});
    std::printf("\n%s\nThe replay matches the recording: promotions\n"
                "carry all the information, exactly as the paper's\n"
                "offline-simulation + real-system split assumes.\n",
                table.str().c_str());
    return 0;
}
