/**
 * @file
 * Example: static HUB identification (Sec. 5.4.2). The paper notes
 * that compiler or programmer analysis can identify HUBs before
 * execution and guide huge-page allocation in lieu of dynamic
 * promotion. This example plays that role:
 *
 *   1. profile one run through the reuse-distance oracle and rank the
 *      2MB regions by HUB-page count;
 *   2. madvise(MADV_HUGEPAGE) the top regions before a second run
 *      under Linux THP in enabled=madvise mode;
 *   3. compare against greedy THP and the dynamic PCC policy.
 *
 * Usage: madvise_hints [--workload=pr] [--scale=ci] [--top=8]
 */

#include <cstdio>

#include "analysis/reuse.hpp"
#include "sim/experiment.hpp"
#include "util/options.hpp"
#include "util/table.hpp"

using namespace pccsim;

int
main(int argc, char **argv)
{
    Options opts(argc, argv);
    if (sim::handleListFlags(opts.get("policy"), opts.get("hw")))
        return 0;
    workloads::WorkloadSpec wspec;
    wspec.name = opts.get("workload", "pr");
    wspec.scale = workloads::scaleFromString(opts.get("scale", "ci"));
    wspec.seed = static_cast<u64>(opts.getInt("seed", 42));
    const u64 top = static_cast<u64>(opts.getInt("top", 8));

    // Step 1: offline profiling pass (the "compiler analysis").
    std::vector<Vpn> hub_regions;
    {
        auto workload = workloads::makeWorkload(wspec);
        os::Process proc(0, 8ull << 30);
        workload->setup(proc);
        analysis::ReuseTracker oracle(1024);
        auto lane = workload->lane(0, 1);
        while (lane.next() &&
               lane.value().kind != workloads::OpKind::Barrier) {
        }
        while (lane.next()) {
            if (lane.value().kind != workloads::OpKind::Barrier)
                oracle.touch(lane.value().addr);
        }
        hub_regions = oracle.hubRegions();
        std::printf("profiled %llu accesses: %zu HUB regions found\n",
                    static_cast<unsigned long long>(oracle.accesses()),
                    hub_regions.size());
    }
    if (hub_regions.size() > top)
        hub_regions.resize(top);

    // Baseline.
    sim::ExperimentSpec base_spec;
    base_spec.workload = wspec;
    base_spec.policy = sim::PolicyKind::Base;
    const auto base = sim::runOne(base_spec);

    Table table({"configuration", "speedup", "ptw %", "THPs",
                 "bloat pages"});
    auto report = [&](const char *label, const sim::RunResult &run) {
        table.row({label, Table::fmt(sim::speedup(base, run), 3),
                   Table::fmt(run.job().ptwPercent(), 2),
                   std::to_string(run.job().promotions),
                   std::to_string(run.job().bloat_pages)});
    };

    // Greedy THP (enabled=always): promotes everything it can.
    {
        sim::ExperimentSpec spec = base_spec;
        spec.policy = sim::PolicyKind::LinuxThp;
        report("thp always", sim::runOne(spec));
    }

    // madvise mode with oracle hints: only the HUB regions get huge
    // backing — static hints standing in for dynamic PCC guidance.
    {
        sim::ExperimentSpec spec = base_spec;
        spec.policy = sim::PolicyKind::LinuxThp;
        auto hints = hub_regions;
        spec.tweak = [hints](sim::SystemConfig &cfg) {
            cfg.linux_thp.respect_madvise = true;
            cfg.process_setup = [hints](os::Process &proc, u32) {
                for (Vpn region : hints) {
                    const Addr addr = region << mem::kShift2M;
                    if (proc.contains(addr))
                        proc.madvise(addr, mem::kBytes2M,
                                     os::HugeHint::Huge);
                }
            };
        };
        report("thp madvise(oracle HUBs)", sim::runOne(spec));
    }

    // Dynamic PCC for comparison.
    {
        sim::ExperimentSpec spec = base_spec;
        spec.policy = sim::PolicyKind::Pcc;
        report("pcc (dynamic)", sim::runOne(spec));
    }

    std::printf("\n%s\nStatic hints recover most of the dynamic PCC's\n"
                "benefit when the profile matches the run — but need\n"
                "no hardware. The PCC exists for the cases where no\n"
                "profile is available (Sec. 5.4.2).\n",
                table.str().c_str());
    return 0;
}
