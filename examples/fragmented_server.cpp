/**
 * @file
 * Example: a "long-lived server" scenario. Two processes — a
 * TLB-sensitive graph analytics job and a streaming batch job — share
 * one machine whose memory is heavily fragmented. Shows how the OS
 * arbitrates the scarce huge frames across per-core PCCs, and how
 * process bias (Sec. 3.3.2's promotion_bias_process) changes the
 * outcome.
 *
 * Usage: fragmented_server [--scale=ci] [--frag=0.9] [--bias=pr]
 *                          [--format=text|csv|json]
 */

#include <cstdio>

#include "sim/experiment.hpp"
#include "sim/system.hpp"
#include "telemetry/emitter.hpp"
#include "util/options.hpp"
#include "util/table.hpp"
#include "workloads/registry.hpp"

using namespace pccsim;

namespace {

sim::RunResult
runPair(workloads::Scale scale, double frag, sim::PolicyKind policy,
        const std::vector<Pid> &bias, u64 seed)
{
    workloads::WorkloadSpec pr_spec{"pr", scale,
                                    graph::NetworkKind::Kronecker,
                                    false, seed};
    workloads::WorkloadSpec dd_spec{"dedup", scale,
                                    graph::NetworkKind::Kronecker,
                                    false, seed};
    auto pr = workloads::makeWorkload(pr_spec);
    auto dedup = workloads::makeWorkload(dd_spec);

    sim::SystemConfig cfg = sim::SystemConfig::forScale(scale);
    cfg.num_cores = 2;
    cfg.policy = policy;
    cfg.frag_fraction = policy == sim::PolicyKind::Base ? 0.0 : frag;
    cfg.pcc_policy.bias_pids = bias;
    sim::System system(cfg);
    return system.run(
        {sim::System::Job{pr.get(), 1}, sim::System::Job{dedup.get(), 1}});
}

} // namespace

int
main(int argc, char **argv)
{
    Options opts(argc, argv);
    if (sim::handleListFlags(opts.get("policy"), opts.get("hw")))
        return 0;
    const auto scale = workloads::scaleFromString(opts.get("scale", "ci"));
    const double frag = opts.getDouble("frag", 0.9);
    const u64 seed = static_cast<u64>(opts.getInt("seed", 42));

    const auto base =
        runPair(scale, frag, sim::PolicyKind::Base, {}, seed);

    Table table({"configuration", "pr speedup", "dedup speedup",
                 "pr THPs", "dedup THPs"});
    auto report = [&](const char *label, const sim::RunResult &run) {
        table.row({label, Table::fmt(sim::speedup(base, run, 0), 3),
                   Table::fmt(sim::speedup(base, run, 1), 3),
                   std::to_string(run.jobs[0].promotions),
                   std::to_string(run.jobs[1].promotions)});
    };

    report("linux-thp",
           runPair(scale, frag, sim::PolicyKind::LinuxThp, {}, seed));
    report("pcc",
           runPair(scale, frag, sim::PolicyKind::Pcc, {}, seed));
    report("pcc, bias=pr",
           runPair(scale, frag, sim::PolicyKind::Pcc, {0}, seed));
    report("pcc, bias=dedup",
           runPair(scale, frag, sim::PolicyKind::Pcc, {1}, seed));

    const auto format =
        telemetry::formatFromString(opts.get("format", "text"));
    telemetry::Emitter emitter(format);
    char title[128];
    std::snprintf(title, sizeof title,
                  "fragmented server: %.0f%% of memory fragmented, "
                  "scale=%s",
                  frag * 100, workloads::to_string(scale).c_str());
    emitter.table(title, table);
    emitter.close();
    if (format == telemetry::Format::Text) {
        std::printf(
            "Reading the table: the PCC finds the analytics job's\n"
            "HUB regions despite fragmentation; biasing dedup\n"
            "wastes huge frames on streaming data.\n");
    }
    return 0;
}
