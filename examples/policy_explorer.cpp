/**
 * @file
 * Example: interactive policy exploration. Runs one workload under
 * every promotion policy at a chosen fragmentation level and
 * promotion budget, and prints the full metric set — the quickest way
 * to see how a configuration behaves before scripting a sweep.
 *
 * Usage:
 *   policy_explorer --workload=sssp --scale=small --frag=0.5 --cap=4
 *   policy_explorer --workload=canneal --lanes=4
 *   policy_explorer --policy=pcc            # just one policy
 *   policy_explorer --policy=trident        # any registry selector,
 *   policy_explorer --policy=pcc:promote=8  # parameters included
 *   policy_explorer --policy=list           # enumerate the registry
 *   policy_explorer --hw=victima-reach      # hardware backend
 *   policy_explorer --format=json           # machine-readable output
 */

#include <cstdio>

#include "sim/experiment.hpp"
#include "telemetry/emitter.hpp"
#include "util/log.hpp"
#include "util/options.hpp"
#include "util/table.hpp"

using namespace pccsim;

int
main(int argc, char **argv)
{
    Options opts(argc, argv);
    if (sim::handleListFlags(opts.get("policy"), opts.get("hw")))
        return 0;
    sim::ExperimentSpec spec;
    spec.workload.name = opts.get("workload", "bfs");
    spec.workload.scale =
        workloads::scaleFromString(opts.get("scale", "ci"));
    spec.workload.seed = static_cast<u64>(opts.getInt("seed", 42));
    spec.workload.dbg_sorted = opts.getBool("sorted");
    spec.lanes = static_cast<u32>(opts.getInt("lanes", 1));
    spec.frag_fraction = opts.getDouble("frag", 0.0);
    spec.cap_percent = opts.getDouble("cap", -1.0);
    spec.hw = opts.get("hw", "");

    // --policy=SELECTOR narrows the sweep to one policy: any registry
    // selector works (bare keys, aliases, parameterized forms such as
    // pcc:promote=8, and contenders like trident or ubpf:prog=topk).
    std::vector<std::string> policies = {"base-4k", "linux-thp",
                                         "hawkeye", "pcc", "all-huge"};
    if (opts.has("policy"))
        policies = {opts.get("policy")};

    sim::ExperimentSpec base_spec = spec;
    base_spec.policy = sim::PolicyKind::Base;
    base_spec.cap_percent = 0.0;
    base_spec.frag_fraction = 0.0;
    const auto base = sim::runOne(base_spec);

    Table table({"policy", "speedup", "tlb miss %", "ptw %",
                 "refs/walk", "promos", "huge %", "bloat pages",
                 "compactions"});
    for (const auto &policy : policies) {
        sim::ExperimentSpec run_spec = spec;
        if (const auto status =
                sim::applyPolicySelector(run_spec, policy);
            !status.ok()) {
            fatal(status.toString());
        }
        const auto run = sim::runOne(run_spec);
        const auto &job = run.job();
        table.row({sim::policyNameOf(run_spec),
                   Table::fmt(sim::speedup(base, run), 3),
                   Table::fmt(job.tlbMissPercent(), 2),
                   Table::fmt(job.ptwPercent(), 2),
                   Table::fmt(job.refs_per_walk, 2),
                   std::to_string(job.promotions),
                   Table::fmt(job.hugeCoveragePercent(), 1),
                   std::to_string(job.bloat_pages),
                   std::to_string(run.compactions)});
    }

    telemetry::Emitter emitter(
        telemetry::formatFromString(opts.get("format", "text")));
    char title[256];
    std::snprintf(title, sizeof title,
                  "policy_explorer workload=%s scale=%s lanes=%u "
                  "frag=%.0f%% cap=%s",
                  spec.workload.name.c_str(),
                  workloads::to_string(spec.workload.scale).c_str(),
                  spec.lanes, spec.frag_fraction * 100,
                  spec.cap_percent < 0
                      ? "unlimited"
                      : (Table::fmt(spec.cap_percent, 0) + "%").c_str());
    emitter.table(title, table);
    return 0;
}
