/**
 * @file
 * Example: offline HUB analysis of any workload (the Sec. 3.1
 * methodology as a tool). Streams a workload's accesses through the
 * reuse-distance tracker, prints the TLB-friendly / HUB / low-reuse
 * census, and then checks how well a hardware PCC of a given size
 * agrees with the oracle's top HUB regions — the core claim that
 * page-table-walk frequency is a good HUB proxy.
 *
 * Usage: hub_classifier --workload=pr --scale=ci --pcc=128
 *                       [--format=text|csv|json]
 */

#include <algorithm>
#include <cstdio>
#include <set>

#include "analysis/reuse.hpp"
#include "pcc/pcc_unit.hpp"
#include "pt/walker.hpp"
#include "sim/config.hpp"
#include "sim/experiment.hpp"
#include "telemetry/emitter.hpp"
#include "tlb/hierarchy.hpp"
#include "util/options.hpp"
#include "util/table.hpp"
#include "workloads/registry.hpp"

using namespace pccsim;

int
main(int argc, char **argv)
{
    Options opts(argc, argv);
    if (sim::handleListFlags(opts.get("policy"), opts.get("hw")))
        return 0;
    workloads::WorkloadSpec wspec;
    wspec.name = opts.get("workload", "bfs");
    wspec.scale = workloads::scaleFromString(opts.get("scale", "ci"));
    wspec.seed = static_cast<u64>(opts.getInt("seed", 42));
    const u32 pcc_entries =
        static_cast<u32>(opts.getInt("pcc", 128));

    auto workload = workloads::makeWorkload(wspec);
    os::Process proc(0, 8ull << 30);
    workload->setup(proc);

    // Replay the stream through (a) the oracle reuse tracker and
    // (b) a faithful TLB + walker + PCC pipeline.
    const auto cfg = sim::SystemConfig::forScale(wspec.scale);
    analysis::ReuseTracker oracle(cfg.tlb.l2.entries +
                                  cfg.tlb.l1_4k.entries);
    tlb::TlbHierarchy tlb(cfg.tlb);
    pt::Walker walker(cfg.pwc);
    pcc::PccUnitConfig ucfg = cfg.pcc;
    ucfg.pcc2m.entries = pcc_entries;
    pcc::PccUnit unit(ucfg);

    auto lane = workload->lane(0, 1);
    bool in_init = true;
    while (lane.next()) {
        const auto &op = lane.value();
        if (op.kind == workloads::OpKind::Barrier) {
            in_init = false;
            continue;
        }
        if (!proc.faulted(op.addr)) {
            // Minimal fault model: map a fake frame; frames are not
            // used by this analysis.
            proc.pageTable().mapBase(
                mem::pageBase(op.addr, mem::PageSize::Base4K),
                mem::vpnOf(op.addr, mem::PageSize::Base4K));
            proc.markFaulted(op.addr);
            tlb.fill(op.addr, mem::PageSize::Base4K);
            continue;
        }
        if (!in_init)
            oracle.touch(op.addr);
        if (tlb.access(op.addr, mem::PageSize::Base4K) ==
            tlb::HitLevel::Miss) {
            const auto out = walker.walk(proc.pageTable(), op.addr);
            tlb.fill(op.addr, mem::PageSize::Base4K);
            unit.observeWalk(op.addr, out);
        }
    }

    const auto format =
        telemetry::formatFromString(opts.get("format", "text"));
    telemetry::Emitter emitter(format);

    const auto summary = oracle.summarize();
    Table census({"class", "4KB pages"});
    census.row({"TLB-friendly", std::to_string(summary.tlb_friendly)});
    census.row({"HUB", std::to_string(summary.hubs)});
    census.row({"low-reuse", std::to_string(summary.low_reuse)});
    emitter.table("HUB census (" + wspec.name + ")", census);

    // Agreement between the oracle's hottest HUB regions and the PCC.
    const auto oracle_regions = oracle.hubRegions();
    const auto pcc_snapshot = unit.pcc2m().snapshot();
    const size_t k =
        std::min<size_t>({16, oracle_regions.size(),
                          pcc_snapshot.size()});
    std::set<Vpn> oracle_top(oracle_regions.begin(),
                             oracle_regions.begin() + k);
    size_t agree = 0;
    for (size_t i = 0; i < k; ++i)
        agree += oracle_top.count(pcc_snapshot[i].region);

    Table agreement({"tlb miss %", "walks", "pcc entries", "top-k",
                     "agreement", "agreement %"});
    agreement.row({Table::fmt(100.0 * tlb.missRate(), 2),
                   std::to_string(tlb.walks()),
                   std::to_string(pcc_entries), std::to_string(k),
                   std::to_string(agree) + "/" + std::to_string(k),
                   Table::fmt(100.0 * static_cast<double>(agree) /
                                  static_cast<double>(std::max<size_t>(
                                      1, k)),
                              0)});
    emitter.table("oracle vs hardware PCC", agreement);
    emitter.close();
    if (format == telemetry::Format::Text) {
        std::printf(
            "\nThe PCC's walk-frequency ranking should largely\n"
            "recover the oracle's reuse-distance HUB ranking —\n"
            "that correspondence is the paper's key insight.\n");
    }
    return 0;
}
