/**
 * @file
 * Example: surviving a hostile memory system. Runs the PCC policy
 * through a deterministic fault storm — denied allocations, failing
 * and half-finished compactions, TLB-shootdown storms, and scheduled
 * fragmentation shocks — with the cross-layer invariant checker
 * sweeping the whole OS/memory/TLB state after every interval.
 *
 * Shows the graceful-degradation machinery end to end: backoff
 * retries recover transient allocation failures, and when base pages
 * run dry the OS demotes the coldest huge pages and reclaims their
 * never-touched (bloat) frames instead of giving up.
 *
 * Usage: pressure_storm [--scale=ci] [--seed=1] [--huge-fail=0.4]
 *                       [--compaction-fail=0.3] [--storm=0.2]
 */

#include <cstdio>

#include "sim/experiment.hpp"
#include "sim/system.hpp"
#include "util/options.hpp"
#include "util/table.hpp"
#include "workloads/synthetic.hpp"

using namespace pccsim;

namespace {

workloads::SyntheticSpec
workloadSpec(u64 seed)
{
    workloads::SyntheticSpec spec;
    spec.pattern = workloads::Pattern::HotRegions;
    spec.footprint_bytes = 64ull << 20;
    spec.hot_regions = 8;
    spec.ops = 1'500'000;
    spec.seed = seed;
    return spec;
}

} // namespace

int
main(int argc, char **argv)
{
    Options opts(argc, argv);
    if (sim::handleListFlags(opts.get("policy"), opts.get("hw")))
        return 0;
    const auto scale = workloads::scaleFromString(opts.get("scale", "ci"));
    const u64 seed = static_cast<u64>(opts.getInt("seed", 1));

    sim::SystemConfig clean_cfg = sim::SystemConfig::forScale(scale);
    clean_cfg.policy = sim::PolicyKind::Pcc;
    clean_cfg.promotion_cap_percent = 50.0;
    clean_cfg.seed = seed;

    sim::SystemConfig storm_cfg = clean_cfg;
    storm_cfg.faults.alloc_fail_huge = opts.getDouble("huge-fail", 0.4);
    storm_cfg.faults.alloc_fail_base = 0.02;
    storm_cfg.faults.compaction_fail =
        opts.getDouble("compaction-fail", 0.3);
    storm_cfg.faults.compaction_partial = 0.3;
    storm_cfg.faults.shootdown_storm = opts.getDouble("storm", 0.2);
    storm_cfg.faults.shock_intervals = {2, 5};
    storm_cfg.check_invariants = true;

    workloads::SyntheticWorkload clean_w(workloadSpec(seed));
    workloads::SyntheticWorkload storm_w(workloadSpec(seed));
    sim::System clean_sys(clean_cfg);
    sim::System storm_sys(storm_cfg);
    const auto clean = clean_sys.run(clean_w);
    const auto storm = storm_sys.run(storm_w);

    Table table({"metric", "clean", "under storm"});
    auto row = [&](const char *metric, u64 a, u64 b) {
        table.row({metric, std::to_string(a), std::to_string(b)});
    };
    row("wall cycles", clean.wall_cycles, storm.wall_cycles);
    row("promotions", clean.job().promotions, storm.job().promotions);
    row("demotions", clean.job().demotions, storm.job().demotions);
    row("walks", clean.job().walks, storm.job().walks);
    row("compactions", clean.compactions, storm.compactions);
    row("shootdowns", clean.shootdowns, storm.shootdowns);
    std::printf("PCC policy, clean vs injected fault storm "
                "(seed=%llu)\n\n%s\n",
                static_cast<unsigned long long>(seed),
                table.str().c_str());

    const auto &r = storm.resilience;
    Table anatomy({"fault / response", "count"});
    anatomy.row({"allocations denied", std::to_string(r.injected_alloc_fails)});
    anatomy.row({"compactions failed/aborted",
                 std::to_string(r.injected_compaction_fails)});
    anatomy.row({"shootdown storms", std::to_string(r.shootdown_storms)});
    anatomy.row({"fragmentation shocks", std::to_string(r.frag_shocks)});
    anatomy.row({"blocks pinned by shocks",
                 std::to_string(r.shock_blocks_pinned)});
    anatomy.row({"promotion retries", std::to_string(r.promote_retries)});
    anatomy.row({"retries that succeeded",
                 std::to_string(r.promote_retry_successes)});
    anatomy.row({"pressure-reclaim events",
                 std::to_string(r.reclaim_events)});
    anatomy.row({"huge pages demoted by reclaim",
                 std::to_string(r.reclaim_demotions)});
    anatomy.row({"bloat frames reclaimed",
                 std::to_string(r.reclaimed_frames)});
    anatomy.row({"invariant sweeps", std::to_string(r.invariant_checks)});
    anatomy.row({"invariant failures",
                 std::to_string(r.invariant_failures)});
    std::printf("What the storm run absorbed:\n\n%s\n",
                anatomy.str().c_str());

    if (r.invariant_failures != 0) {
        std::printf("INVARIANT VIOLATION: %s\n",
                    r.first_invariant_failure.c_str());
        return 1;
    }
    std::printf("Every injected fault was absorbed; %llu invariant "
                "sweeps found the OS/memory/TLB state consistent.\n",
                static_cast<unsigned long long>(r.invariant_checks));
    return 0;
}
