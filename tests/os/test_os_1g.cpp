#include <gtest/gtest.h>

#include "mem/phys_mem.hpp"
#include "os/os.hpp"

using namespace pccsim;
using namespace pccsim::os;
using pccsim::mem::PageSize;

namespace {

struct Fixture1G : public ::testing::Test
{
    Fixture1G()
        : phys(4 * mem::kBytes1G), os_model(Os::Params{}, phys),
          proc(os_model.createProcess(4 * mem::kBytes1G))
    {
        heap = proc.mmap(mem::kBytes1G, "heap");
        EXPECT_TRUE(mem::isAligned(heap, PageSize::Huge1G));
    }

    void
    faultOnePagePerRegion(u64 regions)
    {
        for (u64 r = 0; r < regions; ++r)
            os_model.handleFault(proc, heap + r * mem::kBytes2M, false);
    }

    mem::PhysicalMemory phys;
    Os os_model;
    Process &proc;
    Addr heap = 0;
};

} // namespace

TEST_F(Fixture1G, PromoteFromBasePages)
{
    faultOnePagePerRegion(mem::k2MPer1G);
    const auto result = os_model.promoteRegion1G(proc, heap);
    ASSERT_EQ(result.status, PromoteStatus::Ok);
    EXPECT_EQ(proc.regionStateOf(heap), RegionState::Huge1G);
    EXPECT_EQ(proc.regionStateOf(heap + 300 * mem::kBytes2M),
              RegionState::Huge1G);
    const auto m = proc.pageTable().lookup(heap + 123456789);
    EXPECT_TRUE(m.present);
    EXPECT_EQ(m.size, PageSize::Huge1G);
    EXPECT_EQ(proc.promotions1G(), 1u);
    EXPECT_EQ(proc.promotedBytes(), mem::kBytes1G);
}

TEST_F(Fixture1G, PromoteMixed4KAnd2M)
{
    faultOnePagePerRegion(mem::k2MPer1G);
    // Promote a couple of constituents to 2MB first.
    ASSERT_EQ(os_model.promoteRegion(proc, heap, false).status,
              PromoteStatus::Ok);
    ASSERT_EQ(
        os_model.promoteRegion(proc, heap + mem::kBytes2M, false).status,
        PromoteStatus::Ok);
    // Collective promotion of the whole gigabyte (Sec. 3.2.3).
    const auto result = os_model.promoteRegion1G(proc, heap);
    ASSERT_EQ(result.status, PromoteStatus::Ok);
    EXPECT_EQ(proc.pageTable().lookup(heap).size, PageSize::Huge1G);
    // 2MB-promoted bytes were re-counted into the 1GB total.
    EXPECT_EQ(proc.promotedBytes(), mem::kBytes1G);
}

TEST_F(Fixture1G, SecondPromotionReportsAlreadyHuge)
{
    faultOnePagePerRegion(4);
    ASSERT_EQ(os_model.promoteRegion1G(proc, heap).status,
              PromoteStatus::Ok);
    EXPECT_EQ(os_model.promoteRegion1G(proc, heap).status,
              PromoteStatus::AlreadyHuge);
}

TEST_F(Fixture1G, UntouchedRangeRejected)
{
    EXPECT_EQ(os_model.promoteRegion1G(proc, heap).status,
              PromoteStatus::NotEligible);
}

TEST_F(Fixture1G, FailsWithoutGigabyteFrame)
{
    faultOnePagePerRegion(4);
    // Consume the remaining 2MB chunks so no order-18 chunk remains.
    std::vector<Pfn> taken;
    while (auto pfn = phys.allocHuge(0, 0))
        taken.push_back(*pfn);
    EXPECT_EQ(os_model.promoteRegion1G(proc, heap).status,
              PromoteStatus::NoHugeFrame);
    for (Pfn pfn : taken)
        phys.freeHuge(pfn);
}

TEST_F(Fixture1G, DemoteSplitsInto2M)
{
    faultOnePagePerRegion(mem::k2MPer1G);
    ASSERT_EQ(os_model.promoteRegion1G(proc, heap).status,
              PromoteStatus::Ok);
    os_model.demoteRegion1G(proc, heap);
    EXPECT_EQ(proc.regionStateOf(heap), RegionState::Huge2M);
    const auto m = proc.pageTable().lookup(heap + 5 * mem::kBytes2M);
    EXPECT_TRUE(m.present);
    EXPECT_EQ(m.size, PageSize::Huge2M);
    // Per-2MB demotion back to base pages still works afterwards.
    os_model.demoteRegion(proc, heap + 5 * mem::kBytes2M);
    EXPECT_EQ(proc.regionStateOf(heap + 5 * mem::kBytes2M),
              RegionState::Base4K);
}

TEST_F(Fixture1G, ShootdownCoversWholeGigabyte)
{
    faultOnePagePerRegion(4);
    Addr seen_base = 0;
    u64 seen_bytes = 0;
    os_model.setShootdownHook(
        [&](Pid, Addr base, u64 bytes) -> Cycles {
            seen_base = base;
            seen_bytes = bytes;
            return 0;
        });
    ASSERT_EQ(os_model.promoteRegion1G(proc, heap).status,
              PromoteStatus::Ok);
    EXPECT_EQ(seen_base, heap);
    EXPECT_EQ(seen_bytes, mem::kBytes1G);
}

TEST(Os1GCap, GigabytePromotionRespectsBudget)
{
    mem::PhysicalMemory phys(4 * mem::kBytes1G);
    Os::Params params;
    params.promotion_cap_bytes = mem::kBytes2M * 4; // << 1GB
    Os os_model(params, phys);
    Process &proc = os_model.createProcess(4 * mem::kBytes1G);
    const Addr heap = proc.mmap(mem::kBytes1G, "heap");
    os_model.handleFault(proc, heap, false);
    EXPECT_EQ(os_model.promoteRegion1G(proc, heap).status,
              PromoteStatus::CapReached);
}

TEST_F(Fixture1G, TargetedCompactionRecoversAGigabyteFrame)
{
    faultOnePagePerRegion(4);
    // Scatter movable filler into every free block: no order-18 (or
    // order-9) chunk survives, but everything is compactable.
    Rng rng(5);
    phys.scramble(rng);
    ASSERT_EQ(phys.gigFramesAvailable(), 0u);

    // Without compaction the promotion fails on fragmentation...
    EXPECT_EQ(os_model.promoteRegion1G(proc, heap).status,
              PromoteStatus::NoHugeFrame);

    // ...with it, the OS vacates the cheapest gigabyte group
    // block-by-block and the promotion lands.
    const auto result =
        os_model.promoteRegion1G(proc, heap, {}, /*allow_compaction=*/true);
    ASSERT_EQ(result.status, PromoteStatus::Ok);
    EXPECT_TRUE(result.compacted);
    EXPECT_GT(result.compaction_runs, 0u);
    EXPECT_EQ(proc.regionStateOf(heap), RegionState::Huge1G);
    EXPECT_EQ(proc.pageTable().lookup(heap).size, PageSize::Huge1G);
}
