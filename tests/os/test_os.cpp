#include <gtest/gtest.h>

#include "mem/phys_mem.hpp"
#include "os/os.hpp"
#include "util/rng.hpp"

using namespace pccsim;
using namespace pccsim::os;
using pccsim::mem::PageSize;

namespace {

struct Fixture : public ::testing::Test
{
    Fixture()
        : phys(64 * mem::kBytes2M), os_model(Os::Params{}, phys),
          proc(os_model.createProcess(128 * mem::kBytes2M))
    {
        heap = proc.mmap(16 * mem::kBytes2M, "heap");
    }

    void
    faultRegion(Addr base, u32 pages = 512)
    {
        for (u32 p = 0; p < pages; ++p)
            os_model.handleFault(proc, base + p * mem::kBytes4K, false);
    }

    mem::PhysicalMemory phys;
    Os os_model;
    Process &proc;
    Addr heap = 0;
};

} // namespace

TEST_F(Fixture, BaseFaultMapsPage)
{
    const Cycles cost = os_model.handleFault(proc, heap + 123, false);
    EXPECT_EQ(cost, os_model.params().costs.base_fault);
    EXPECT_TRUE(proc.faulted(heap + 123));
    const auto m = proc.pageTable().lookup(heap);
    EXPECT_TRUE(m.present);
    EXPECT_EQ(m.size, PageSize::Base4K);
    EXPECT_EQ(phys.useOf(m.pfn), mem::FrameUse::AppBase);
}

TEST_F(Fixture, HugeFaultBacksWholeRegion)
{
    const Cycles cost = os_model.handleFault(proc, heap + 5000, true);
    EXPECT_GT(cost, os_model.params().costs.base_fault);
    EXPECT_EQ(proc.regionStateOf(heap), RegionState::Huge2M);
    EXPECT_EQ(proc.pageTable().lookup(heap + 9999).size,
              PageSize::Huge2M);
    // Later touches in the region no longer fault.
    EXPECT_TRUE(proc.faulted(heap + mem::kBytes2M - 1));
}

TEST_F(Fixture, HugeFaultFallsBackWhenRegionPartiallyTouched)
{
    os_model.handleFault(proc, heap, false);
    os_model.handleFault(proc, heap + 4096, true);
    EXPECT_EQ(proc.regionStateOf(heap), RegionState::Base4K);
    EXPECT_EQ(os_model.stats().get("huge_faults"), 0u);
}

TEST_F(Fixture, PromotionCollapsesFaultedRegion)
{
    faultRegion(heap);
    const u64 free_before = phys.freeFrames();
    const auto result = os_model.promoteRegion(proc, heap, false);
    EXPECT_EQ(result.status, PromoteStatus::Ok);
    EXPECT_EQ(proc.regionStateOf(heap), RegionState::Huge2M);
    EXPECT_EQ(proc.pageTable().lookup(heap + 4096).size,
              PageSize::Huge2M);
    // Old base frames were freed, one huge frame allocated: net zero.
    EXPECT_EQ(phys.freeFrames(), free_before);
}

TEST_F(Fixture, PromotionOfUntouchedRegionRejected)
{
    const auto result = os_model.promoteRegion(proc, heap, false);
    EXPECT_EQ(result.status, PromoteStatus::NotEligible);
}

TEST_F(Fixture, PromotionOutsideHeapRejected)
{
    const auto result =
        os_model.promoteRegion(proc, heap + 1ull << 40, false);
    EXPECT_EQ(result.status, PromoteStatus::NotEligible);
}

TEST_F(Fixture, DoublePromotionReportsAlreadyHuge)
{
    faultRegion(heap);
    os_model.promoteRegion(proc, heap, false);
    EXPECT_EQ(os_model.promoteRegion(proc, heap, false).status,
              PromoteStatus::AlreadyHuge);
}

TEST_F(Fixture, PartialRegionPromotionCountsBloat)
{
    faultRegion(heap, 100);
    const auto result = os_model.promoteRegion(proc, heap, false);
    EXPECT_EQ(result.status, PromoteStatus::Ok);
    EXPECT_EQ(proc.bloatPages(), 412u);
}

TEST_F(Fixture, ShootdownHookFiresOnPromotion)
{
    faultRegion(heap);
    Addr seen_base = 0;
    u64 seen_bytes = 0;
    os_model.setShootdownHook(
        [&](Pid, Addr base, u64 bytes) -> Cycles {
            seen_base = base;
            seen_bytes = bytes;
            return 0;
        });
    os_model.promoteRegion(proc, heap, false);
    EXPECT_EQ(seen_base, heap);
    EXPECT_EQ(seen_bytes, mem::kBytes2M);
}

TEST_F(Fixture, DemotionSplitsInPlace)
{
    faultRegion(heap);
    os_model.promoteRegion(proc, heap, false);
    os_model.demoteRegion(proc, heap);
    EXPECT_EQ(proc.regionStateOf(heap), RegionState::Base4K);
    const auto m = proc.pageTable().lookup(heap + 4096);
    EXPECT_EQ(m.size, PageSize::Base4K);
    EXPECT_EQ(phys.useOf(m.pfn), mem::FrameUse::AppBase);
    // And it can be promoted again afterwards.
    EXPECT_EQ(os_model.promoteRegion(proc, heap, false).status,
              PromoteStatus::Ok);
}

TEST(OsCap, PromotionBudgetEnforced)
{
    mem::PhysicalMemory phys(64 * mem::kBytes2M);
    Os::Params params;
    params.promotion_cap_bytes = mem::kBytes2M; // one region only
    Os os_model(params, phys);
    Process &proc = os_model.createProcess(64 * mem::kBytes2M);
    const Addr heap = proc.mmap(8 * mem::kBytes2M, "heap");
    for (u32 p = 0; p < 1024; ++p)
        os_model.handleFault(proc, heap + p * mem::kBytes4K, false);

    EXPECT_EQ(os_model.promotionBudgetRegions(), 1u);
    EXPECT_EQ(os_model.promoteRegion(proc, heap, false).status,
              PromoteStatus::Ok);
    EXPECT_EQ(os_model.promotionBudgetRegions(), 0u);
    EXPECT_EQ(
        os_model.promoteRegion(proc, heap + mem::kBytes2M, false).status,
        PromoteStatus::CapReached);
}

TEST(OsFrag, PromotionNeedsCompactionUnderFragmentation)
{
    mem::PhysicalMemory phys(32 * mem::kBytes2M);
    Rng rng(11);
    phys.fragment(0.5, rng);
    phys.scramble(rng);
    Os os_model(Os::Params{}, phys);
    Process &proc = os_model.createProcess(32 * mem::kBytes2M);
    const Addr heap = proc.mmap(2 * mem::kBytes2M, "heap");
    for (u32 p = 0; p < 512; ++p)
        os_model.handleFault(proc, heap + p * mem::kBytes4K, false);

    // Without compaction there is no huge frame.
    EXPECT_EQ(os_model.promoteRegion(proc, heap, false).status,
              PromoteStatus::NoHugeFrame);
    // With compaction the OS liberates a block and succeeds.
    const auto result = os_model.promoteRegion(proc, heap, true);
    EXPECT_EQ(result.status, PromoteStatus::Ok);
    EXPECT_TRUE(result.compacted);
    EXPECT_GT(os_model.backgroundCycles(), 0u);
}

TEST(OsFrag, CompactionMovesUpdatePageTables)
{
    mem::PhysicalMemory phys(8 * mem::kBytes2M);
    Os os_model(Os::Params{}, phys);
    Process &proc = os_model.createProcess(16 * mem::kBytes2M);
    const Addr heap = proc.mmap(4 * mem::kBytes2M, "heap");
    // Fault two regions' worth of pages, then promote one: the huge
    // frame may require relocating the other region's pages.
    for (u32 p = 0; p < 1024; ++p)
        os_model.handleFault(proc, heap + p * mem::kBytes4K, false);
    const auto result = os_model.promoteRegion(proc, heap, true);
    ASSERT_EQ(result.status, PromoteStatus::Ok);
    // Every still-4KB page's PTE must agree with the frame owner map.
    for (u32 p = 512; p < 1024; ++p) {
        const Addr vaddr = heap + p * mem::kBytes4K;
        const auto m = proc.pageTable().lookup(vaddr);
        ASSERT_TRUE(m.present);
        ASSERT_EQ(m.size, PageSize::Base4K);
        EXPECT_EQ(phys.ownerOf(m.pfn).vpn4k,
                  mem::vpnOf(vaddr, PageSize::Base4K));
    }
}
