#include <gtest/gtest.h>

#include "mem/phys_mem.hpp"
#include "os/os.hpp"
#include "util/rng.hpp"

using namespace pccsim;
using namespace pccsim::os;

namespace {

/** Fault every 4KB page of the 2MB region at `base`. */
void
faultRegion(Os &os_model, Process &proc, Addr base)
{
    for (u64 p = 0; p < mem::kPagesPer2M; ++p)
        os_model.handleFault(proc, base + p * mem::kBytes4K, false);
}

} // namespace

TEST(OsRetry, TransientHugeFailureRecoversViaBackoff)
{
    mem::PhysicalMemory phys(64 * mem::kBytes2M);
    int denies = 2;
    phys.setAllocGate([&denies](unsigned order) {
        if (order == mem::kOrder2M && denies > 0) {
            --denies;
            return false;
        }
        return true;
    });
    Os os_model(Os::Params{}, phys);
    Process &proc = os_model.createProcess(64 * mem::kBytes2M);
    const Addr heap = proc.mmap(4 * mem::kBytes2M, "heap");
    faultRegion(os_model, proc, heap);

    const u64 background_before = os_model.backgroundCycles();
    const auto result = os_model.promoteRegion(proc, heap, false);
    EXPECT_EQ(result.status, PromoteStatus::Ok);
    EXPECT_EQ(result.retries, 2u);
    // Exponential backoff was charged: b + 2b for the two retries.
    EXPECT_GE(os_model.backgroundCycles() - background_before,
              3 * os_model.params().retry_backoff);
    EXPECT_EQ(os_model.stats().get("promote_retries"), 2u);
    EXPECT_EQ(os_model.stats().get("promote_retry_successes"), 1u);
}

TEST(OsRetry, GenuineExhaustionDoesNotRetry)
{
    // No injection gate installed: a failed huge allocation is final,
    // so the backoff path must not trigger (clean-run accounting).
    mem::PhysicalMemory phys(2 * mem::kBytes2M);
    Os os_model(Os::Params{}, phys);
    Process &proc = os_model.createProcess(2 * mem::kBytes2M);
    const Addr heap = proc.mmap(2 * mem::kBytes2M, "heap");
    faultRegion(os_model, proc, heap);
    faultRegion(os_model, proc, heap + mem::kBytes2M);
    // All frames are consumed by base pages; no order-9 chunk exists
    // and compaction has no free headroom.
    const auto result = os_model.promoteRegion(proc, heap, true);
    EXPECT_EQ(result.status, PromoteStatus::NoHugeFrame);
    EXPECT_EQ(result.retries, 0u);
    EXPECT_EQ(os_model.stats().get("promote_retries"), 0u);
}

TEST(OsRetry, InjectedCompactionFailureReportsNoHugeFrame)
{
    mem::PhysicalMemory phys(16 * mem::kBytes2M);
    Os os_model(Os::Params{}, phys);
    Process &proc = os_model.createProcess(16 * mem::kBytes2M);
    const Addr heap = proc.mmap(2 * mem::kBytes2M, "heap");
    faultRegion(os_model, proc, heap);
    Rng rng(7);
    phys.scramble(rng); // a filler in every free block: no free chunk

    // Every compaction attempt fails outright (injected).
    phys.setCompactionGate([] { return 0u; });
    const auto result = os_model.promoteRegion(proc, heap, true);
    EXPECT_EQ(result.status, PromoteStatus::NoHugeFrame);
    EXPECT_FALSE(result.compacted);
    EXPECT_GE(result.compaction_runs, 1u);
    EXPECT_EQ(result.retries, 2u); // gate installed => retries taken
    EXPECT_GT(phys.stats().get("injected_compaction_fail"), 0u);
}

TEST(PhysMem, PartialCompactionAbortRollsBackCleanly)
{
    mem::PhysicalMemory phys(16 * mem::kBytes2M);
    // Three movable residents in block 0.
    const auto a = phys.allocBase(1, 100);
    const auto b = phys.allocBase(1, 101);
    const auto c = phys.allocBase(1, 102);
    ASSERT_TRUE(a && b && c);
    const u64 free_before = phys.freeFrames();

    phys.setCompactionGate([] { return 1u; }); // abort after one move
    EXPECT_FALSE(phys.compactOneBlock().has_value());
    EXPECT_EQ(phys.stats().get("injected_compaction_abort"), 1u);

    // The rollback restored every frame exactly.
    EXPECT_EQ(phys.freeFrames(), free_before);
    for (Pfn pfn : {*a, *b, *c}) {
        EXPECT_EQ(phys.useOf(pfn), mem::FrameUse::AppBase);
        EXPECT_EQ(phys.ownerOf(pfn).pid, 1u);
    }
    EXPECT_EQ(phys.ownerOf(*a).vpn4k, 100u);
}

TEST(OsCap, UnlimitedBudgetIsExplicit)
{
    mem::PhysicalMemory phys(16 * mem::kBytes2M);
    Os os_model(Os::Params{}, phys);
    EXPECT_FALSE(os_model.promotionBudgetRegions().has_value());
}

TEST(OsCap, CapExactlyReachedBoundary)
{
    mem::PhysicalMemory phys(64 * mem::kBytes2M);
    Os::Params params;
    params.promotion_cap_bytes = 2 * mem::kBytes2M;
    Os os_model(params, phys);
    Process &proc = os_model.createProcess(64 * mem::kBytes2M);
    const Addr heap = proc.mmap(8 * mem::kBytes2M, "heap");
    for (u32 r = 0; r < 3; ++r)
        faultRegion(os_model, proc, heap + r * mem::kBytes2M);

    ASSERT_EQ(os_model.promotionBudgetRegions().value(), 2u);
    EXPECT_EQ(os_model.promoteRegion(proc, heap, false).status,
              PromoteStatus::Ok);
    // One region of budget left: a promotion that lands exactly on the
    // cap must still be allowed (<=, not <).
    ASSERT_EQ(os_model.promotionBudgetRegions().value(), 1u);
    EXPECT_EQ(
        os_model.promoteRegion(proc, heap + mem::kBytes2M, false).status,
        PromoteStatus::Ok);
    EXPECT_EQ(os_model.promotedBytesTotal(),
              params.promotion_cap_bytes.value());
    EXPECT_EQ(os_model.promotionBudgetRegions().value(), 0u);
    EXPECT_EQ(
        os_model.promoteRegion(proc, heap + 2 * mem::kBytes2M, false)
            .status,
        PromoteStatus::CapReached);
}

TEST(OsReclaim, PressureDemotesColdHugePageAndFreesBloat)
{
    mem::PhysicalMemory phys(64 * mem::kBytes2M);
    Os os_model(Os::Params{}, phys);
    Process &proc = os_model.createProcess(64 * mem::kBytes2M);
    const Addr heap = proc.mmap(8 * mem::kBytes2M, "heap");

    // One touched page, then promote: 511 bloat frames in the region.
    os_model.handleFault(proc, heap, false);
    ASSERT_EQ(os_model.promoteRegion(proc, heap, false).status,
              PromoteStatus::Ok);
    ASSERT_EQ(proc.bloatPages(), mem::kPagesPer2M - 1);

    // From here on every ordinary base allocation fails (injected
    // pressure); only the post-reclaim bypass retry can succeed.
    phys.setAllocGate([](unsigned order) { return order != 0; });
    const Addr pressured = heap + 4 * mem::kBytes2M;
    os_model.handleFault(proc, pressured, false);

    EXPECT_TRUE(proc.faulted(pressured)); // the fault was served
    EXPECT_EQ(proc.regionStateOf(heap), RegionState::Base4K);
    EXPECT_EQ(os_model.stats().get("reclaim_events"), 1u);
    EXPECT_EQ(os_model.stats().get("reclaim_demotions"), 1u);
    EXPECT_EQ(os_model.stats().get("reclaimed_frames"),
              mem::kPagesPer2M - 1);
    EXPECT_EQ(proc.bloatPages(), 0u);
    // The touched page survived reclaim with its data mapping intact.
    EXPECT_TRUE(proc.faulted(heap));
    EXPECT_TRUE(proc.pageTable().lookup(heap).present);
    EXPECT_FALSE(proc.pageTable().lookup(heap + mem::kBytes4K).present);
}

TEST(OsReclaim, RankerSelectsColdestVictim)
{
    mem::PhysicalMemory phys(64 * mem::kBytes2M);
    Os os_model(Os::Params{}, phys);
    Process &proc = os_model.createProcess(64 * mem::kBytes2M);
    const Addr heap = proc.mmap(8 * mem::kBytes2M, "heap");
    const Addr hot = heap;
    const Addr cold = heap + mem::kBytes2M;
    for (Addr base : {hot, cold}) {
        os_model.handleFault(proc, base, false);
        ASSERT_EQ(os_model.promoteRegion(proc, base, false).status,
                  PromoteStatus::Ok);
    }
    os_model.setReclaimRanker([&](Pid, Addr base) -> u64 {
        return base == hot ? 100 : 1;
    });

    const auto result = os_model.reclaimColdHugePages(1);
    EXPECT_EQ(result.regions_demoted, 1u);
    EXPECT_EQ(result.frames_freed, mem::kPagesPer2M - 1);
    EXPECT_EQ(proc.regionStateOf(cold), RegionState::Base4K);
    EXPECT_EQ(proc.regionStateOf(hot), RegionState::Huge2M);
}

TEST(OsReclaim, FullyTouchedRegionsAreNotVictims)
{
    mem::PhysicalMemory phys(64 * mem::kBytes2M);
    Os os_model(Os::Params{}, phys);
    Process &proc = os_model.createProcess(64 * mem::kBytes2M);
    const Addr heap = proc.mmap(4 * mem::kBytes2M, "heap");
    faultRegion(os_model, proc, heap); // all 512 pages hold data
    ASSERT_EQ(os_model.promoteRegion(proc, heap, false).status,
              PromoteStatus::Ok);

    const auto result = os_model.reclaimColdHugePages(4);
    EXPECT_EQ(result.regions_demoted, 0u);
    EXPECT_EQ(proc.regionStateOf(heap), RegionState::Huge2M);
}

TEST(Os1G, InjectedTransient1GFailureRetries)
{
    mem::PhysicalMemory phys(2 * mem::kBytes1G);
    int denies = 1;
    phys.setAllocGate([&denies](unsigned order) {
        if (order == mem::kOrder1G && denies > 0) {
            --denies;
            return false;
        }
        return true;
    });
    Os os_model(Os::Params{}, phys);
    Process &proc = os_model.createProcess(2 * mem::kBytes1G);
    const Addr heap = proc.mmap(mem::kBytes1G, "heap");
    os_model.handleFault(proc, heap, false);

    const auto result = os_model.promoteRegion1G(proc, heap);
    EXPECT_EQ(result.status, PromoteStatus::Ok);
    EXPECT_EQ(result.retries, 1u);
    EXPECT_EQ(os_model.stats().get("promote_retry_successes"), 1u);
}

TEST(Os1GDeathTest, DemoteRegion1GOnNon1GMappingPanics)
{
    mem::PhysicalMemory phys(2 * mem::kBytes1G);
    Os os_model(Os::Params{}, phys);
    Process &proc = os_model.createProcess(2 * mem::kBytes1G);
    const Addr heap = proc.mmap(mem::kBytes1G, "heap");
    os_model.handleFault(proc, heap, false);
    ASSERT_EQ(os_model.promoteRegion(proc, heap, false).status,
              PromoteStatus::Ok); // 2MB, not 1GB
    EXPECT_DEATH(os_model.demoteRegion1G(proc, heap),
                 "demoteRegion1G on non-1GB mapping");
}
