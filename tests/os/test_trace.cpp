#include <gtest/gtest.h>

#include <cstdio>

#include "os/trace.hpp"
#include "sim/system.hpp"
#include "workloads/synthetic.hpp"

using namespace pccsim;
using namespace pccsim::os;

TEST(Trace, SerializeParseRoundTrip)
{
    PromotionTrace trace;
    trace.record(1000, 0, 0x1000'0000'0000ull, mem::PageSize::Huge2M);
    trace.record(2000, 1, 0x1100'0020'0000ull, mem::PageSize::Huge1G);

    const PromotionTrace parsed =
        PromotionTrace::parse(trace.serialize());
    ASSERT_EQ(parsed.size(), 2u);
    EXPECT_EQ(parsed.entries()[0].at_accesses, 1000u);
    EXPECT_EQ(parsed.entries()[0].pid, 0u);
    EXPECT_EQ(parsed.entries()[0].region_base, 0x1000'0000'0000ull);
    EXPECT_EQ(parsed.entries()[0].size, mem::PageSize::Huge2M);
    EXPECT_EQ(parsed.entries()[1].size, mem::PageSize::Huge1G);
    EXPECT_EQ(parsed.entries()[1].pid, 1u);
}

TEST(Trace, ParseSkipsCommentsAndBlankLines)
{
    const auto trace = PromotionTrace::parse(
        "# header\n\n100 0 0x200000 2M\n# trailing\n");
    ASSERT_EQ(trace.size(), 1u);
    EXPECT_EQ(trace.entries()[0].region_base, 0x200000u);
}

TEST(TraceDeathTest, MalformedLineIsFatal)
{
    EXPECT_DEATH(PromotionTrace::parse("not a trace line\n"),
                 "malformed");
    EXPECT_DEATH(PromotionTrace::parse("1 0 0x0 16K\n"),
                 "unknown page size");
}

TEST(Trace, SaveLoadFile)
{
    PromotionTrace trace;
    trace.record(7, 0, 0x400000, mem::PageSize::Huge2M);
    const std::string path = "/tmp/pccsim_trace_test.txt";
    trace.save(path);
    const PromotionTrace loaded = PromotionTrace::load(path);
    ASSERT_EQ(loaded.size(), 1u);
    EXPECT_EQ(loaded.entries()[0].at_accesses, 7u);
    std::remove(path.c_str());
}

namespace {

workloads::SyntheticSpec
hotSpec()
{
    workloads::SyntheticSpec spec;
    spec.pattern = workloads::Pattern::HotRegions;
    spec.footprint_bytes = 64ull << 20;
    spec.hot_regions = 8;
    spec.ops = 1'200'000;
    return spec;
}

} // namespace

TEST(TraceReplay, ReproducesRecordedPromotions)
{
    // Step 1 (the paper's offline TLB+PCC simulation): run under the
    // PCC policy and record the promotion trace.
    sim::SystemConfig record_cfg =
        sim::SystemConfig::forScale(workloads::Scale::Ci);
    record_cfg.policy = sim::PolicyKind::Pcc;
    record_cfg.record_trace = true;
    workloads::SyntheticWorkload w1(hotSpec());
    sim::System recorder(record_cfg);
    const auto recorded_run = recorder.run(w1);
    ASSERT_GT(recorded_run.job().promotions, 0u);
    const os::PromotionTrace trace = recorder.recordedTrace();
    ASSERT_EQ(trace.size(), recorded_run.job().promotions);

    // Step 2 (the paper's real-system replay): a fresh run whose OS
    // promotes from the trace instead of reading PCC hardware.
    sim::SystemConfig replay_cfg =
        sim::SystemConfig::forScale(workloads::Scale::Ci);
    replay_cfg.policy = sim::PolicyKind::TraceReplay;
    replay_cfg.replay_trace = trace;
    workloads::SyntheticWorkload w2(hotSpec());
    sim::System replayer(replay_cfg);
    const auto replayed_run = replayer.run(w2);

    EXPECT_EQ(replayed_run.job().promotions,
              recorded_run.job().promotions);
    EXPECT_EQ(replayed_run.job().promoted_bytes,
              recorded_run.job().promoted_bytes);
    // Same promotions at the same times: near-identical performance.
    const double ratio =
        static_cast<double>(replayed_run.job().wall_cycles) /
        static_cast<double>(recorded_run.job().wall_cycles);
    EXPECT_NEAR(ratio, 1.0, 0.05);
}

TEST(TraceReplay, EmptyTraceEqualsBaseline)
{
    sim::SystemConfig base_cfg =
        sim::SystemConfig::forScale(workloads::Scale::Ci);
    base_cfg.policy = sim::PolicyKind::Base;
    workloads::SyntheticWorkload w1(hotSpec());
    sim::System base_sys(base_cfg);
    const auto base = base_sys.run(w1);

    sim::SystemConfig replay_cfg =
        sim::SystemConfig::forScale(workloads::Scale::Ci);
    replay_cfg.policy = sim::PolicyKind::TraceReplay;
    workloads::SyntheticWorkload w2(hotSpec());
    sim::System replay_sys(replay_cfg);
    const auto replayed = replay_sys.run(w2);
    EXPECT_EQ(replayed.job().promotions, 0u);
    EXPECT_EQ(replayed.job().wall_cycles, base.job().wall_cycles);
}
