#include <gtest/gtest.h>

#include <memory>

#include "mem/phys_mem.hpp"
#include "os/policies.hpp"
#include "pt/walker.hpp"
#include "util/rng.hpp"

using namespace pccsim;
using namespace pccsim::os;
using pccsim::mem::PageSize;

namespace {

/** Minimal PolicyContext: N cores, one process per core by default. */
class TestContext : public PolicyContext
{
  public:
    TestContext(u32 cores, u64 phys_blocks, Os::Params params = {})
        : phys_(phys_blocks * mem::kBytes2M), os_(params, phys_)
    {
        for (u32 c = 0; c < cores; ++c)
            units_.push_back(std::make_unique<pcc::PccUnit>());
        charged_.assign(cores, 0);
    }

    Os &os() override { return os_; }
    u32 numCores() const override
    {
        return static_cast<u32>(units_.size());
    }
    Process &processOnCore(CoreId core) override
    {
        return os_.process(core_pid_.at(core));
    }
    pcc::PccUnit &pccUnit(CoreId core) override
    {
        return *units_.at(core);
    }
    void chargeCore(CoreId core, Cycles cycles) override
    {
        charged_.at(core) += cycles;
    }
    u64 intervalIndex() const override { return interval_; }
    u64 accessesSoFar() const override { return accesses_; }

    Process &
    addProcess(u64 heap_regions, std::vector<CoreId> cores)
    {
        Process &proc = os_.createProcess(heap_regions * mem::kBytes2M);
        for (CoreId c : cores) {
            if (core_pid_.size() <= c)
                core_pid_.resize(c + 1);
            core_pid_[c] = proc.pid();
        }
        return proc;
    }

    /** Fault in `pages` base pages of a region. */
    void
    fault(Process &proc, Addr base, u32 pages)
    {
        for (u32 p = 0; p < pages; ++p)
            os_.handleFault(proc, base + p * mem::kBytes4K, false);
    }

    /** Make `region` a warm PCC candidate on one core with N touches. */
    void
    touchPcc(CoreId core, Process &proc, Addr region, u32 touches)
    {
        pt::Walker walker;
        for (u32 i = 0; i < touches + 1; ++i) {
            const auto out = walker.walk(proc.pageTable(), region);
            units_.at(core)->observeWalk(region, out);
        }
    }

    mem::PhysicalMemory phys_;
    Os os_;
    std::vector<std::unique_ptr<pcc::PccUnit>> units_;
    std::vector<Pid> core_pid_;
    std::vector<Cycles> charged_;
    u64 interval_ = 0;
    u64 accesses_ = 0;
};

} // namespace

TEST(BasePolicy, NeverWantsHugeFaults)
{
    TestContext ctx(1, 64);
    Process &proc = ctx.addProcess(32, {0});
    const Addr heap = proc.mmap(4 * mem::kBytes2M, "heap");
    BasePagesPolicy policy;
    EXPECT_FALSE(policy.wantHugeFault(proc, heap));
    policy.onInterval(ctx); // must be a harmless no-op
    EXPECT_EQ(proc.promotions(), 0u);
}

TEST(AllHugePolicy, AlwaysWantsHugeFaults)
{
    TestContext ctx(1, 64);
    Process &proc = ctx.addProcess(32, {0});
    AllHugePolicy policy;
    EXPECT_TRUE(policy.wantHugeFault(proc, proc.mmap(4096, "x")));
}

TEST(LinuxThp, KhugepagedCollapsesInAddressOrder)
{
    TestContext ctx(1, 64);
    Process &proc = ctx.addProcess(32, {0});
    const Addr heap = proc.mmap(4 * mem::kBytes2M, "heap");
    // Touch one page in each region; khugepaged collapses greedily.
    for (u64 r = 0; r < 4; ++r)
        ctx.fault(proc, heap + r * mem::kBytes2M, 1);

    LinuxThpPolicy::Params params;
    params.scan_pages_per_interval = 2 * 512; // two regions per tick
    LinuxThpPolicy policy(params);
    policy.onInterval(ctx);
    EXPECT_EQ(proc.promotions(), 2u);
    EXPECT_EQ(proc.regionStateOf(heap), RegionState::Huge2M);
    EXPECT_EQ(proc.regionStateOf(heap + mem::kBytes2M),
              RegionState::Huge2M);
    EXPECT_EQ(proc.regionStateOf(heap + 2 * mem::kBytes2M),
              RegionState::Base4K);
    // The cursor continues where it stopped.
    policy.onInterval(ctx);
    EXPECT_EQ(proc.promotions(), 4u);
}

TEST(LinuxThp, ScanBudgetLimitsProgress)
{
    TestContext ctx(1, 64);
    Process &proc = ctx.addProcess(64, {0});
    const Addr heap = proc.mmap(32 * mem::kBytes2M, "heap");
    for (u64 r = 0; r < 32; ++r)
        ctx.fault(proc, heap + r * mem::kBytes2M, 1);

    LinuxThpPolicy::Params params;
    params.scan_pages_per_interval = 512; // one region per tick
    LinuxThpPolicy policy(params);
    policy.onInterval(ctx);
    EXPECT_EQ(proc.promotions(), 1u);
}

TEST(LinuxThp, NoHugeHintBlocksFaultTimeAllocation)
{
    TestContext ctx(1, 64);
    Process &proc = ctx.addProcess(32, {0});
    const Addr heap = proc.mmap(4 * mem::kBytes2M, "heap");
    proc.madvise(heap, mem::kBytes2M, HugeHint::NoHuge);

    LinuxThpPolicy policy;
    EXPECT_FALSE(policy.wantHugeFault(proc, heap));
    EXPECT_TRUE(policy.wantHugeFault(proc, heap + mem::kBytes2M));
}

TEST(LinuxThp, MadviseModeOnlyTouchesHintedRegions)
{
    TestContext ctx(1, 64);
    Process &proc = ctx.addProcess(32, {0});
    const Addr heap = proc.mmap(4 * mem::kBytes2M, "heap");
    for (u64 r = 0; r < 4; ++r)
        ctx.fault(proc, heap + r * mem::kBytes2M, 1);
    proc.madvise(heap + 2 * mem::kBytes2M, mem::kBytes2M,
                 HugeHint::Huge);

    LinuxThpPolicy::Params params;
    params.respect_madvise = true;
    params.scan_pages_per_interval = 8 * 512;
    LinuxThpPolicy policy(params);
    EXPECT_FALSE(policy.wantHugeFault(proc, heap));
    EXPECT_TRUE(policy.wantHugeFault(proc, heap + 2 * mem::kBytes2M));

    policy.onInterval(ctx);
    EXPECT_EQ(proc.promotions(), 1u);
    EXPECT_EQ(proc.regionStateOf(heap + 2 * mem::kBytes2M),
              RegionState::Huge2M);
    EXPECT_EQ(proc.regionStateOf(heap), RegionState::Base4K);
}

TEST(LinuxThp, KhugepagedSkipsNoHugeRegions)
{
    TestContext ctx(1, 64);
    Process &proc = ctx.addProcess(32, {0});
    const Addr heap = proc.mmap(2 * mem::kBytes2M, "heap");
    ctx.fault(proc, heap, 1);
    ctx.fault(proc, heap + mem::kBytes2M, 1);
    proc.madvise(heap, mem::kBytes2M, HugeHint::NoHuge);

    LinuxThpPolicy::Params params;
    params.scan_pages_per_interval = 8 * 512;
    LinuxThpPolicy policy(params);
    policy.onInterval(ctx);
    EXPECT_EQ(proc.regionStateOf(heap), RegionState::Base4K);
    EXPECT_EQ(proc.regionStateOf(heap + mem::kBytes2M),
              RegionState::Huge2M);
}

TEST(Madvise, HintsCoverWholeByteRange)
{
    TestContext ctx(1, 64);
    Process &proc = ctx.addProcess(32, {0});
    const Addr heap = proc.mmap(4 * mem::kBytes2M, "heap");
    // A range straddling two regions hints both.
    proc.madvise(heap + mem::kBytes2M - 4096, 8192, HugeHint::Huge);
    EXPECT_EQ(proc.hintOf(heap), HugeHint::Huge);
    EXPECT_EQ(proc.hintOf(heap + mem::kBytes2M), HugeHint::Huge);
    EXPECT_EQ(proc.hintOf(heap + 2 * mem::kBytes2M),
              HugeHint::Default);
}

TEST(MadviseDeathTest, OutsideHeapPanics)
{
    TestContext ctx(1, 64);
    Process &proc = ctx.addProcess(32, {0});
    proc.mmap(mem::kBytes2M, "heap");
    EXPECT_DEATH(proc.madvise(0x1000, 4096, HugeHint::Huge),
                 "outside the mapped heap");
}

TEST(HawkEye, PromotesHighCoverageRegionsFirst)
{
    TestContext ctx(1, 64);
    Process &proc = ctx.addProcess(32, {0});
    const Addr heap = proc.mmap(4 * mem::kBytes2M, "heap");
    ctx.fault(proc, heap, 512);                     // full coverage
    ctx.fault(proc, heap + mem::kBytes2M, 30);      // sparse
    ctx.fault(proc, heap + 2 * mem::kBytes2M, 480); // high coverage

    // Make the accessed bits visible: walk every faulted page once.
    pt::Walker walker;
    for (u64 r = 0; r < 3; ++r) {
        for (u32 p = 0; p < 512; ++p) {
            const Addr a = heap + r * mem::kBytes2M + p * mem::kBytes4K;
            if (proc.faulted(a))
                walker.walk(proc.pageTable(), a);
        }
    }

    HawkEyePolicy::Params params;
    params.scan_pages_per_interval = 4 * 512;
    params.regions_per_interval = 2;
    HawkEyePolicy policy(params);
    policy.onInterval(ctx);

    EXPECT_EQ(proc.regionStateOf(heap), RegionState::Huge2M);
    EXPECT_EQ(proc.regionStateOf(heap + 2 * mem::kBytes2M),
              RegionState::Huge2M);
    // The 30-page region sits in bucket 0 and is never promoted.
    EXPECT_EQ(proc.regionStateOf(heap + mem::kBytes2M),
              RegionState::Base4K);
}

TEST(HawkEye, ScanClearsAccessedBits)
{
    TestContext ctx(1, 64);
    Process &proc = ctx.addProcess(32, {0});
    const Addr heap = proc.mmap(mem::kBytes2M, "heap");
    ctx.fault(proc, heap, 64);
    pt::Walker walker;
    for (u32 p = 0; p < 64; ++p)
        walker.walk(proc.pageTable(), heap + p * mem::kBytes4K);
    ASSERT_EQ(proc.pageTable().countAccessed4K(heap), 64u);

    HawkEyePolicy::Params params;
    params.scan_pages_per_interval = 512;
    HawkEyePolicy policy(params);
    policy.onInterval(ctx);
    EXPECT_EQ(proc.pageTable().countAccessed4K(heap), 0u);
}

TEST(PccPolicy, PromotesHottestCandidateFirst)
{
    TestContext ctx(1, 64);
    Process &proc = ctx.addProcess(32, {0});
    const Addr heap = proc.mmap(4 * mem::kBytes2M, "heap");
    for (u64 r = 0; r < 4; ++r)
        ctx.fault(proc, heap + r * mem::kBytes2M, 512);
    ctx.touchPcc(0, proc, heap, 2);
    ctx.touchPcc(0, proc, heap + mem::kBytes2M, 50); // hottest
    ctx.touchPcc(0, proc, heap + 2 * mem::kBytes2M, 10);

    PccPolicy::Params params;
    params.regions_to_promote = 1;
    PccPolicy policy(params);
    policy.onInterval(ctx);
    EXPECT_EQ(proc.promotions(), 1u);
    EXPECT_EQ(proc.regionStateOf(heap + mem::kBytes2M),
              RegionState::Huge2M);
}

TEST(PccPolicy, RoundRobinAlternatesAcrossCores)
{
    TestContext ctx(2, 64);
    Process &p0 = ctx.addProcess(32, {0});
    Process &p1 = ctx.addProcess(32, {1});
    const Addr h0 = p0.mmap(4 * mem::kBytes2M, "h0");
    const Addr h1 = p1.mmap(4 * mem::kBytes2M, "h1");
    for (u64 r = 0; r < 4; ++r) {
        ctx.fault(p0, h0 + r * mem::kBytes2M, 512);
        ctx.fault(p1, h1 + r * mem::kBytes2M, 512);
    }
    // Core 0's candidates are far hotter, but round robin must still
    // take one from each PCC.
    ctx.touchPcc(0, p0, h0, 100);
    ctx.touchPcc(0, p0, h0 + mem::kBytes2M, 90);
    ctx.touchPcc(1, p1, h1, 5);
    ctx.touchPcc(1, p1, h1 + mem::kBytes2M, 4);

    PccPolicy::Params params;
    params.regions_to_promote = 2;
    params.order = PromotionOrder::RoundRobin;
    PccPolicy policy(params);
    policy.onInterval(ctx);
    EXPECT_EQ(p0.promotions(), 1u);
    EXPECT_EQ(p1.promotions(), 1u);
}

TEST(PccPolicy, HighestFrequencyIgnoresFairness)
{
    TestContext ctx(2, 64);
    Process &p0 = ctx.addProcess(32, {0});
    Process &p1 = ctx.addProcess(32, {1});
    const Addr h0 = p0.mmap(4 * mem::kBytes2M, "h0");
    const Addr h1 = p1.mmap(4 * mem::kBytes2M, "h1");
    for (u64 r = 0; r < 4; ++r) {
        ctx.fault(p0, h0 + r * mem::kBytes2M, 512);
        ctx.fault(p1, h1 + r * mem::kBytes2M, 512);
    }
    ctx.touchPcc(0, p0, h0, 100);
    ctx.touchPcc(0, p0, h0 + mem::kBytes2M, 90);
    ctx.touchPcc(1, p1, h1, 5);

    PccPolicy::Params params;
    params.regions_to_promote = 2;
    params.order = PromotionOrder::HighestFrequency;
    PccPolicy policy(params);
    policy.onInterval(ctx);
    EXPECT_EQ(p0.promotions(), 2u);
    EXPECT_EQ(p1.promotions(), 0u);
}

TEST(PccPolicy, BiasPidJumpsTheQueue)
{
    TestContext ctx(2, 64);
    Process &p0 = ctx.addProcess(32, {0});
    Process &p1 = ctx.addProcess(32, {1});
    const Addr h0 = p0.mmap(4 * mem::kBytes2M, "h0");
    const Addr h1 = p1.mmap(4 * mem::kBytes2M, "h1");
    ctx.fault(p0, h0, 512);
    ctx.fault(p1, h1, 512);
    ctx.touchPcc(0, p0, h0, 100); // globally hottest
    ctx.touchPcc(1, p1, h1, 1);

    PccPolicy::Params params;
    params.regions_to_promote = 1;
    params.bias_pids = {p1.pid()}; // promotion_bias_process
    PccPolicy policy(params);
    policy.onInterval(ctx);
    EXPECT_EQ(p1.promotions(), 1u);
    EXPECT_EQ(p0.promotions(), 0u);
}

TEST(PccPolicy, DemotionFreesFramesUnderPressure)
{
    // Physical memory fits the footprint with almost no slack and is
    // fully fragmented: after the first promotions consume the only
    // compactable blocks, further promotions require demotion.
    TestContext ctx(1, 12);
    Rng rng(5);
    ctx.phys_.fragment(0.6, rng);
    ctx.phys_.scramble(rng);
    Process &proc = ctx.addProcess(8, {0});
    const Addr heap = proc.mmap(4 * mem::kBytes2M, "heap");
    for (u64 r = 0; r < 4; ++r)
        ctx.fault(proc, heap + r * mem::kBytes2M, 512);

    PccPolicy::Params params;
    params.regions_to_promote = 8;
    params.demote_on_pressure = true;
    PccPolicy policy(params);

    for (u64 round = 0; round < 4; ++round) {
        for (u64 r = 0; r < 4; ++r) {
            if (proc.regionStateOf(heap + r * mem::kBytes2M) ==
                RegionState::Base4K) {
                ctx.touchPcc(0, proc, heap + r * mem::kBytes2M,
                             10 + static_cast<u32>(r));
            }
        }
        policy.onInterval(ctx);
    }
    // With demotion enabled some region must have been demoted to make
    // room (or everything fit, in which case demotions may be zero but
    // promotions saturate).
    EXPECT_GT(proc.promotions(), 0u);
    if (proc.promotions() < 4)
        EXPECT_GT(proc.demotions(), 0u);
}

TEST(PccPolicy, PromotionShootdownInvalidatesCandidate)
{
    TestContext ctx(1, 64);
    Process &proc = ctx.addProcess(32, {0});
    const Addr heap = proc.mmap(2 * mem::kBytes2M, "heap");
    ctx.fault(proc, heap, 512);
    ctx.touchPcc(0, proc, heap, 20);
    ASSERT_EQ(ctx.units_[0]->pcc2m().size(), 1u);

    // Wire the shootdown hook the way the System does.
    ctx.os_.setShootdownHook(
        [&](Pid, Addr base, u64 bytes) -> Cycles {
            ctx.units_[0]->shootdown(base, bytes);
            return 0;
        });
    PccPolicy::Params params;
    params.regions_to_promote = 4;
    PccPolicy policy(params);
    policy.onInterval(ctx);
    EXPECT_EQ(proc.promotions(), 1u);
    EXPECT_EQ(ctx.units_[0]->pcc2m().size(), 0u)
        << "promoted candidates must leave the PCC (Fig. 4 step C)";
}
