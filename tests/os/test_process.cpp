#include <gtest/gtest.h>

#include "os/process.hpp"

using namespace pccsim;
using namespace pccsim::os;
using pccsim::mem::PageSize;

namespace {

constexpr u64 kHeapCap = 256ull << 20;

} // namespace

TEST(Process, MmapReturnsAlignedDisjointRegions)
{
    Process proc(0, kHeapCap);
    const Addr a = proc.mmap(1000, "a");
    const Addr b = proc.mmap(mem::kBytes2M + 1, "b");
    EXPECT_TRUE(mem::isAligned(a, PageSize::Huge2M));
    EXPECT_TRUE(mem::isAligned(b, PageSize::Huge2M));
    EXPECT_EQ(b - a, mem::kBytes2M); // "a" rounded to one region
    EXPECT_EQ(proc.footprintBytes(), 3 * mem::kBytes2M);
    ASSERT_EQ(proc.vmas().size(), 2u);
    EXPECT_EQ(proc.vmas()[1].name, "b");
}

TEST(Process, DistinctPidsGetDistinctHeaps)
{
    Process p0(0, kHeapCap);
    Process p1(1, kHeapCap);
    EXPECT_NE(p0.heapBase(), p1.heapBase());
}

TEST(Process, ContainsOnlyMappedRange)
{
    Process proc(0, kHeapCap);
    const Addr a = proc.mmap(4096, "a");
    EXPECT_TRUE(proc.contains(a));
    EXPECT_FALSE(proc.contains(a + mem::kBytes2M));
    EXPECT_FALSE(proc.contains(a - 1));
}

TEST(Process, FaultTrackingPerPageAndRegion)
{
    Process proc(0, kHeapCap);
    const Addr a = proc.mmap(4 * mem::kBytes2M, "a");
    EXPECT_FALSE(proc.faulted(a));
    EXPECT_EQ(proc.regionStateOf(a), RegionState::Unbacked);

    proc.markFaulted(a);
    proc.markFaulted(a + 4096);
    proc.markFaulted(a + 4096); // duplicate: no double count
    EXPECT_TRUE(proc.faulted(a));
    EXPECT_FALSE(proc.faulted(a + 8192));
    EXPECT_EQ(proc.faultedInRegion(a), 2u);
    EXPECT_EQ(proc.regionStateOf(a), RegionState::Base4K);
    EXPECT_EQ(proc.regionStateOf(a + mem::kBytes2M),
              RegionState::Unbacked);
}

TEST(Process, HugePromotionMarksAllPagesAndBloat)
{
    Process proc(0, kHeapCap);
    const Addr a = proc.mmap(2 * mem::kBytes2M, "a");
    for (int p = 0; p < 10; ++p)
        proc.markFaulted(a + p * 4096);
    proc.markRegionHuge(a);
    EXPECT_EQ(proc.regionStateOf(a), RegionState::Huge2M);
    EXPECT_EQ(proc.mappingSizeOf(a), PageSize::Huge2M);
    EXPECT_TRUE(proc.faulted(a + 100 * 4096));
    EXPECT_EQ(proc.faultedInRegion(a), 512u);
    EXPECT_EQ(proc.bloatPages(), 512u - 10);
    EXPECT_EQ(proc.promotedBytes(), mem::kBytes2M);
    EXPECT_EQ(proc.promotions(), 1u);
}

TEST(Process, DemotionRestoresBaseState)
{
    Process proc(0, kHeapCap);
    const Addr a = proc.mmap(mem::kBytes2M, "a");
    proc.markFaulted(a);
    proc.markRegionHuge(a);
    proc.markRegionDemoted(a);
    EXPECT_EQ(proc.regionStateOf(a), RegionState::Base4K);
    EXPECT_EQ(proc.promotedBytes(), 0u);
    EXPECT_EQ(proc.demotions(), 1u);
}

TEST(Process, RegionIndexingRoundTrips)
{
    Process proc(0, kHeapCap);
    proc.mmap(8 * mem::kBytes2M, "a");
    EXPECT_EQ(proc.numRegions(), 8u);
    for (u64 i = 0; i < proc.numRegions(); ++i)
        EXPECT_EQ(proc.regionIndex(proc.regionBase(i)), i);
}

TEST(ProcessDeathTest, MmapBeyondCapacityPanics)
{
    Process proc(0, 4 * mem::kBytes2M);
    proc.mmap(3 * mem::kBytes2M, "a");
    EXPECT_DEATH(proc.mmap(2 * mem::kBytes2M, "b"), "heap capacity");
}
