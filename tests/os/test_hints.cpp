/**
 * @file
 * MADV_NOHUGEPAGE as a *mechanism* guarantee. The policy layer already
 * honors hints (LinuxThp's wantHugeFault / khugepaged eligibility);
 * these tests pin the stronger contract that the OS itself refuses to
 * huge-back an opted-out region no matter which policy asks, which
 * promotion path runs (fault-time, 2MB collapse, 1GB collapse), or how
 * much memory pressure the system is under — the kernel's
 * VM_NOHUGEPAGE semantics.
 */

#include <gtest/gtest.h>

#include "mem/phys_mem.hpp"
#include "os/os.hpp"

using namespace pccsim;
using namespace pccsim::os;
using pccsim::mem::PageSize;

namespace {

struct HintFixture : public ::testing::Test
{
    HintFixture()
        : phys(64 * mem::kBytes2M), os_model(Os::Params{}, phys),
          proc(os_model.createProcess(2 * mem::kBytes1G))
    {
        heap = proc.mmap(16 * mem::kBytes2M, "heap");
    }

    void
    faultRegion(Addr base, u32 pages = 512)
    {
        for (u32 p = 0; p < pages; ++p)
            os_model.handleFault(proc, base + p * mem::kBytes4K, false);
    }

    mem::PhysicalMemory phys;
    Os os_model;
    Process &proc;
    Addr heap = 0;
};

} // namespace

TEST_F(HintFixture, NoHugeBlocksFaultTimeAllocationMechanismSide)
{
    // want_huge = true models the all-huge policy: the *mechanism*
    // must still fall back to a base page in a NoHuge region.
    proc.madvise(heap, mem::kBytes2M, HugeHint::NoHuge);
    os_model.handleFault(proc, heap + 123, /*want_huge=*/true);
    EXPECT_EQ(proc.regionStateOf(heap), RegionState::Base4K);
    EXPECT_EQ(os_model.stats().get("huge_faults"), 0u);
    // A neighbouring unhinted region is unaffected.
    os_model.handleFault(proc, heap + mem::kBytes2M, /*want_huge=*/true);
    EXPECT_EQ(proc.regionStateOf(heap + mem::kBytes2M),
              RegionState::Huge2M);
}

TEST_F(HintFixture, NoHugeRegionIsNeverPromoted)
{
    proc.madvise(heap, mem::kBytes2M, HugeHint::NoHuge);
    faultRegion(heap); // fully faulted: otherwise promotable
    const auto result =
        os_model.promoteRegion(proc, heap, /*allow_compaction=*/true);
    EXPECT_EQ(result.status, PromoteStatus::NotEligible);
    EXPECT_EQ(proc.regionStateOf(heap), RegionState::Base4K);
    EXPECT_EQ(proc.promotions(), 0u);
}

TEST_F(HintFixture, NoHugeConstituentVetoesTheWhole1GCollapse)
{
    // 1GB promotion must not smuggle an opted-out 2MB region into a
    // gigabyte mapping.
    Process &big = os_model.createProcess(2 * mem::kBytes1G);
    const Addr base = big.mmap(mem::kBytes1G, "big");
    ASSERT_TRUE(mem::isAligned(base, PageSize::Huge1G));
    for (u64 r = 0; r < mem::k2MPer1G; ++r)
        os_model.handleFault(big, base + r * mem::kBytes2M, false);
    big.madvise(base + mem::kBytes2M, mem::kBytes2M, HugeHint::NoHuge);
    const auto result = os_model.promoteRegion1G(big, base);
    EXPECT_EQ(result.status, PromoteStatus::NotEligible);
    EXPECT_EQ(big.promotions1G(), 0u);
}

TEST_F(HintFixture, PressureReclaimNeverPromotesNoHugeRegions)
{
    // Fill most of physical memory with huge-backed regions, opt one
    // region out, then drive base-page faults until the allocator hits
    // pressure and reclaim runs. Whatever reclaim demotes or frees,
    // the NoHuge region must still be base-backed at the end.
    proc.madvise(heap, mem::kBytes2M, HugeHint::NoHuge);
    faultRegion(heap);

    // Consume huge frames elsewhere to build pressure.
    for (u64 r = 1; r < 12; ++r) {
        os_model.handleFault(proc, heap + r * mem::kBytes2M,
                             /*want_huge=*/true);
    }
    // Keep faulting fresh base pages; with the arena nearly exhausted
    // this exercises the pressure/reclaim path.
    Process &filler = os_model.createProcess(mem::kBytes1G);
    const Addr fheap = filler.mmap(64 * mem::kBytes2M, "filler");
    for (u64 p = 0; p < 55 * 512; ++p) {
        os_model.handleFault(filler, fheap + p * mem::kBytes4K,
                             /*want_huge=*/false);
    }
    EXPECT_GT(os_model.stats().get("base_alloc_pressure"), 0u)
        << "test should actually reach the pressure/reclaim path";
    EXPECT_EQ(proc.regionStateOf(heap), RegionState::Base4K)
        << "reclaim/pressure must not huge-back an opted-out region";
}
