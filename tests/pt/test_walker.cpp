#include <gtest/gtest.h>

#include "pt/walker.hpp"

using namespace pccsim;
using namespace pccsim::pt;
using pccsim::mem::PageSize;

namespace {

constexpr Addr kHeap = 0x1000'0000'0000ull;

} // namespace

TEST(Walker, ColdWalkFetchesAllLevels)
{
    PageTable pt;
    Walker walker;
    pt.mapBase(kHeap, 1);
    const auto out = walker.walk(pt, kHeap);
    EXPECT_TRUE(out.present);
    EXPECT_EQ(out.size, PageSize::Base4K);
    EXPECT_EQ(out.memory_refs, 4u);
}

TEST(Walker, PwcShortensRepeatWalks)
{
    PageTable pt;
    Walker walker;
    for (u64 p = 0; p < 16; ++p)
        pt.mapBase(kHeap + p * 4096, p);
    walker.walk(pt, kHeap);
    // Second walk in the same 2MB region: the PDE cache supplies the
    // PMD entry, so only the leaf PTE is fetched.
    const auto out = walker.walk(pt, kHeap + 4096);
    EXPECT_EQ(out.memory_refs, 1u);
    EXPECT_LT(walker.refsPerWalk(), 4.0);
}

TEST(Walker, RefsPerWalkApproachesOneWithLocality)
{
    PageTable pt;
    Walker walker;
    for (u64 p = 0; p < 512; ++p)
        pt.mapBase(kHeap + p * 4096, p);
    for (u64 p = 0; p < 512; ++p)
        walker.walk(pt, kHeap + p * 4096);
    // The paper quotes 1.1-1.4 references/walk with PWCs.
    EXPECT_LT(walker.refsPerWalk(), 1.4);
    EXPECT_GE(walker.refsPerWalk(), 1.0);
}

TEST(Walker, DisabledPwcAlwaysFullWalk)
{
    PageTable pt;
    PwcParams params;
    params.enabled = false;
    Walker walker(params);
    for (u64 p = 0; p < 8; ++p)
        pt.mapBase(kHeap + p * 4096, p);
    for (u64 p = 0; p < 8; ++p)
        EXPECT_EQ(walker.walk(pt, kHeap + p * 4096).memory_refs, 4u);
    EXPECT_DOUBLE_EQ(walker.refsPerWalk(), 4.0);
}

TEST(Walker, HugeWalkStopsAtPmd)
{
    PageTable pt;
    Walker walker;
    pt.mapHuge2M(kHeap, 512);
    const auto out = walker.walk(pt, kHeap + 0x5000);
    EXPECT_EQ(out.size, PageSize::Huge2M);
    EXPECT_EQ(out.memory_refs, 3u);
}

TEST(Walker, ReportsAccessBitFilterInputs)
{
    PageTable pt;
    Walker walker;
    pt.mapBase(kHeap, 1);
    pt.mapBase(kHeap + 4096, 2);
    EXPECT_FALSE(walker.walk(pt, kHeap).pmd_was_accessed);
    EXPECT_TRUE(walker.walk(pt, kHeap + 4096).pmd_was_accessed);
}

TEST(Walker, ShootdownDropsPdeEntries)
{
    PageTable pt;
    Walker walker;
    for (u64 p = 0; p < 4; ++p)
        pt.mapBase(kHeap + p * 4096, p);
    walker.walk(pt, kHeap);
    walker.shootdown(kHeap, mem::kBytes2M);
    // Without the PDE entry the next walk re-fetches PMD + PTE; the
    // PDPTE entry (1GB level) survives region-sized shootdowns.
    const auto out = walker.walk(pt, kHeap + 4096);
    EXPECT_EQ(out.memory_refs, 2u);
}

TEST(Walker, FlushAllResetsEverything)
{
    PageTable pt;
    Walker walker;
    pt.mapBase(kHeap, 1);
    walker.walk(pt, kHeap);
    walker.flushAll();
    EXPECT_EQ(walker.walk(pt, kHeap).memory_refs, 4u);
}

TEST(Walker, StatsAccumulateAndReset)
{
    PageTable pt;
    Walker walker;
    pt.mapBase(kHeap, 1);
    walker.walk(pt, kHeap);
    walker.walk(pt, kHeap);
    EXPECT_EQ(walker.walks(), 2u);
    EXPECT_GT(walker.totalRefs(), 0u);
    walker.resetStats();
    EXPECT_EQ(walker.walks(), 0u);
}
