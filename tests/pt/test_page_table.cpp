#include <gtest/gtest.h>

#include "pt/page_table.hpp"

using namespace pccsim;
using namespace pccsim::pt;
using pccsim::mem::PageSize;

namespace {

constexpr Addr kHeap = 0x1000'0000'0000ull;

} // namespace

TEST(PageTable, EmptyLookupIsAbsent)
{
    PageTable pt;
    EXPECT_FALSE(pt.lookup(kHeap).present);
}

TEST(PageTable, MapBaseThenLookup)
{
    PageTable pt;
    pt.mapBase(kHeap + 0x3000, 77);
    const auto m = pt.lookup(kHeap + 0x3abc);
    EXPECT_TRUE(m.present);
    EXPECT_EQ(m.size, PageSize::Base4K);
    EXPECT_EQ(m.pfn, 77u);
    // Neighboring page remains unmapped.
    EXPECT_FALSE(pt.lookup(kHeap + 0x4000).present);
}

TEST(PageTable, MapHuge2MCoversRegion)
{
    PageTable pt;
    pt.mapHuge2M(kHeap, 512);
    for (u64 off : {u64(0), u64(0x1000), mem::kBytes2M - 1}) {
        const auto m = pt.lookup(kHeap + off);
        EXPECT_TRUE(m.present);
        EXPECT_EQ(m.size, PageSize::Huge2M);
        EXPECT_EQ(m.pfn, 512u);
    }
}

TEST(PageTable, PromotionReplacesBaseSubtree)
{
    PageTable pt;
    for (u64 p = 0; p < 8; ++p)
        pt.mapBase(kHeap + p * 4096, 100 + p);
    const u64 nodes_before = pt.nodeCount();
    pt.mapHuge2M(kHeap, 2048);
    EXPECT_LT(pt.nodeCount(), nodes_before); // PTE page freed
    EXPECT_EQ(pt.lookup(kHeap).size, PageSize::Huge2M);
}

TEST(PageTable, DemoteSplitsInPlace)
{
    PageTable pt;
    pt.mapHuge2M(kHeap, 1024);
    pt.demote2M(kHeap);
    for (u64 p = 0; p < 512; p += 37) {
        const auto m = pt.lookup(kHeap + p * 4096);
        ASSERT_TRUE(m.present);
        EXPECT_EQ(m.size, PageSize::Base4K);
        EXPECT_EQ(m.pfn, 1024 + p);
    }
    // Split PTEs start with accessed bits set.
    EXPECT_EQ(pt.countAccessed4K(kHeap), 512u);
}

TEST(PageTable, MapHuge1G)
{
    PageTable pt;
    const Addr base = kHeap & ~(mem::kBytes1G - 1);
    pt.mapHuge1G(base, 1u << 18);
    const auto m = pt.lookup(base + 12345678);
    EXPECT_TRUE(m.present);
    EXPECT_EQ(m.size, PageSize::Huge1G);
}

TEST(PageTable, UnmapEachSize)
{
    PageTable pt;
    pt.mapBase(kHeap, 1);
    pt.unmap(kHeap);
    EXPECT_FALSE(pt.lookup(kHeap).present);

    pt.mapHuge2M(kHeap, 512);
    pt.unmap(kHeap + 4096);
    EXPECT_FALSE(pt.lookup(kHeap).present);
}

TEST(PageTable, WalkSetsAccessedBitsBottomUp)
{
    PageTable pt;
    pt.mapBase(kHeap, 5);
    const auto first = pt.walk(kHeap);
    EXPECT_TRUE(first.present);
    EXPECT_FALSE(first.pmd_was_accessed) << "cold walk";
    EXPECT_FALSE(first.pte_was_accessed);
    const auto second = pt.walk(kHeap);
    EXPECT_TRUE(second.pmd_was_accessed) << "warm walk";
    EXPECT_TRUE(second.pud_was_accessed);
    EXPECT_TRUE(second.pte_was_accessed);
}

TEST(PageTable, WalkLevelsByLeafDepth)
{
    PageTable pt;
    pt.mapBase(kHeap, 5);
    EXPECT_EQ(pt.walk(kHeap).levels, 4u);
    pt.mapHuge2M(kHeap + mem::kBytes2M, 512);
    EXPECT_EQ(pt.walk(kHeap + mem::kBytes2M).levels, 3u);
}

TEST(PageTable, WalkUnmappedReportsAbsent)
{
    PageTable pt;
    const auto info = pt.walk(kHeap);
    EXPECT_FALSE(info.present);
}

TEST(PageTable, AccessedScanAndClear)
{
    PageTable pt;
    for (u64 p = 0; p < 512; ++p)
        pt.mapBase(kHeap + p * 4096, p);
    EXPECT_EQ(pt.countAccessed4K(kHeap), 0u);
    pt.walk(kHeap);
    pt.walk(kHeap + 7 * 4096);
    EXPECT_EQ(pt.countAccessed4K(kHeap), 2u);
    pt.clearAccessed(kHeap);
    EXPECT_EQ(pt.countAccessed4K(kHeap), 0u);
    // Clearing also rearms the PMD-level cold filter.
    EXPECT_FALSE(pt.walk(kHeap).pmd_was_accessed);
}

TEST(PageTable, RemapBaseChangesFrame)
{
    PageTable pt;
    pt.mapBase(kHeap, 10);
    EXPECT_TRUE(pt.remapBase(kHeap, 20));
    EXPECT_EQ(pt.lookup(kHeap).pfn, 20u);
    EXPECT_FALSE(pt.remapBase(kHeap + 4096, 30));
}

TEST(PageTable, DistantAddressesShareNothing)
{
    PageTable pt;
    pt.mapBase(kHeap, 1);
    pt.mapBase(kHeap + (1ull << 39), 2); // different PGD entry
    EXPECT_EQ(pt.lookup(kHeap).pfn, 1u);
    EXPECT_EQ(pt.lookup(kHeap + (1ull << 39)).pfn, 2u);
}

TEST(PageTableDeathTest, MapBaseUnderHugeLeafPanics)
{
    PageTable pt;
    pt.mapHuge2M(kHeap, 512);
    EXPECT_DEATH(pt.mapBase(kHeap + 4096, 9), "under a 2MB leaf");
}

TEST(PageTableDeathTest, DemoteNonHugePanics)
{
    PageTable pt;
    pt.mapBase(kHeap, 1);
    EXPECT_DEATH(pt.demote2M(kHeap), "non-huge");
}
