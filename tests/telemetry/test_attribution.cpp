#include <gtest/gtest.h>

#include "mem/phys_mem.hpp"
#include "os/os.hpp"
#include "sim/results.hpp"
#include "sim/runner.hpp"
#include "telemetry/attribution.hpp"
#include "telemetry/audit.hpp"

using namespace pccsim;
using namespace pccsim::telemetry;

// ---------------------------------------------------------- RegionProfiler

TEST(RegionProfiler, AttributesWalksToRegions)
{
    RegionProfiler profiler(64);
    const Vpn hot = 0x200000 >> mem::kShift2M;
    const Vpn cold = 0x400000 >> mem::kShift2M;
    profiler.recordWalk(1, hot, 100, 2, true);
    profiler.recordWalk(1, hot, 150, 3, false);
    profiler.recordWalk(1, cold, 40, 0, false);
    profiler.recordPccEviction(1, hot);

    const AttributionReport report = profiler.report();
    ASSERT_EQ(report.regions.size(), 2u);
    // Sorted by walk_cycles desc: hot first.
    const RegionRow &row = report.regions[0];
    EXPECT_EQ(row.pid, 1u);
    EXPECT_EQ(row.base, static_cast<Addr>(hot) << mem::kShift2M);
    EXPECT_EQ(row.walks, 2u);
    EXPECT_EQ(row.walk_cycles, 250u);
    EXPECT_EQ(row.pwc_hits, 5u);
    EXPECT_EQ(row.pcc_hits, 1u);
    EXPECT_EQ(row.pcc_evictions, 1u);
    EXPECT_EQ(report.regions[1].walk_cycles, 40u);
    EXPECT_EQ(report.total_walks, 3u);
    EXPECT_EQ(report.total_walk_cycles, 290u);
    EXPECT_EQ(report.untracked_walks, 0u);
}

TEST(RegionProfiler, OverflowFoldsIntoExactAggregates)
{
    // A budget far below the footprint: per-region rows cap out but
    // totals (and therefore CDF denominators) must remain exact.
    constexpr u32 kBudget = 16;
    RegionProfiler profiler(kBudget);
    u64 want_walks = 0, want_cycles = 0;
    for (Vpn region = 0; region < 400; ++region) {
        profiler.recordWalk(1, region, region + 1, 1, false);
        ++want_walks;
        want_cycles += region + 1;
    }

    const AttributionReport report = profiler.report();
    EXPECT_EQ(report.budget, kBudget);
    EXPECT_LE(report.regions.size(), static_cast<size_t>(kBudget));
    EXPECT_LE(profiler.trackedRegions(), static_cast<u64>(kBudget));

    u64 tracked_walks = 0, tracked_cycles = 0;
    for (const RegionRow &row : report.regions) {
        tracked_walks += row.walks;
        tracked_cycles += row.walk_cycles;
    }
    EXPECT_EQ(tracked_walks + report.untracked_walks, want_walks);
    EXPECT_EQ(tracked_cycles + report.untracked_walk_cycles, want_cycles);
    EXPECT_EQ(report.total_walks, want_walks);
    EXPECT_EQ(report.total_walk_cycles, want_cycles);
    EXPECT_GT(report.untracked_walks, 0u);

    // Rows obey the total order: walk_cycles desc, pid asc, base asc.
    for (size_t i = 1; i < report.regions.size(); ++i) {
        EXPECT_GE(report.regions[i - 1].walk_cycles,
                  report.regions[i].walk_cycles);
    }
}

TEST(RegionProfiler, OverflowSamplingIsDeterministic)
{
    // The reserve slots admit a fixed 1-in-8 key sample; identical
    // streams must produce byte-identical reports — including which
    // late regions won a row.
    auto feed = [](RegionProfiler &profiler) {
        for (Vpn region = 100; region < 600; ++region)
            profiler.recordWalk(2, region, 10, 1, false);
    };
    RegionProfiler a(32), b(32);
    feed(a);
    feed(b);
    EXPECT_TRUE(a.report() == b.report());
    EXPECT_EQ(a.report().toJson().dump(), b.report().toJson().dump());
    // With 500 distinct regions against a 32-row budget, some reserve
    // admissions happened via the hash sample.
    EXPECT_GT(a.report().sampled_admissions, 0u);
}

// ------------------------------------------------------- PromotionAuditLog

TEST(PromotionAuditLog, RegretWindowOpensOnSkipAndClosesOnPromote)
{
    PromotionAuditLog log(64);
    u64 now = 0;
    log.setClock([&now] { return now; });
    const Addr base = 0x600000;
    const Vpn region = mem::vpnOf(base, mem::PageSize::Huge2M);

    // Walks before any skip accrue no regret (window closed).
    log.chargeWalk(1, region, 500);
    now = 10;
    log.record(AuditAction::Skip, AuditReason::CapReached, 1, base, 0,
               42);
    log.chargeWalk(1, region, 300);
    log.chargeWalk(1, region, 200);

    // Successful promotion closes the window; the incurred cycles are
    // kept (they really happened) but nothing accrues afterwards.
    now = 20;
    log.record(AuditAction::Promote2M, AuditReason::Ok, 1, base, 0, 42);
    log.chargeWalk(1, region, 999);

    const AuditReport report = log.report();
    ASSERT_EQ(report.regret.size(), 1u);
    EXPECT_EQ(report.regret[0].base, base);
    EXPECT_EQ(report.regret[0].cycles, 500u);
    EXPECT_FALSE(report.regret[0].open);
    EXPECT_EQ(report.regret_total_cycles, 500u);

    ASSERT_EQ(report.records.size(), 2u);
    EXPECT_EQ(report.records[0].ts, 10u);
    EXPECT_EQ(report.records[1].ts, 20u);
}

TEST(PromotionAuditLog, FailedPromotionAlsoOpensTheWindow)
{
    PromotionAuditLog log(64);
    const Addr base = 0x800000;
    const Vpn region = mem::vpnOf(base, mem::PageSize::Huge2M);
    log.record(AuditAction::Promote2M, AuditReason::NoHugeFrame, 1,
               base);
    log.chargeWalk(1, region, 77);
    const AuditReport report = log.report();
    ASSERT_EQ(report.regret.size(), 1u);
    EXPECT_EQ(report.regret[0].cycles, 77u);
    EXPECT_TRUE(report.regret[0].open);
}

TEST(PromotionAuditLog, BoundedLogCountsDroppedRecords)
{
    PromotionAuditLog log(2);
    for (int i = 0; i < 5; ++i)
        log.record(AuditAction::Skip, AuditReason::CapReached, 1,
                   static_cast<Addr>(i) * mem::kBytes2M);
    EXPECT_EQ(log.recordCount(), 2u);
    const AuditReport report = log.report();
    EXPECT_EQ(report.records.size(), 2u);
    EXPECT_EQ(report.records_dropped, 3u);
    // Regret bookkeeping is independent of the record bound: all five
    // skipped regions carry an open window.
    ASSERT_EQ(report.regret.size(), 5u);
    for (const RegretRow &row : report.regret)
        EXPECT_TRUE(row.open);
}

// ------------------------------------------------------------ Os decisions

namespace {

/** Fault every 4KB page of the 2MB region at `base`. */
void
faultRegion(os::Os &os_model, os::Process &proc, Addr base)
{
    for (u64 p = 0; p < mem::kPagesPer2M; ++p)
        os_model.handleFault(proc, base + p * mem::kBytes4K, false);
}

bool
hasRecord(const AuditReport &report, AuditAction action,
          AuditReason reason)
{
    for (const AuditRecord &rec : report.records)
        if (rec.action == action && rec.reason == reason)
            return true;
    return false;
}

} // namespace

TEST(OsAudit, InjectedAllocationFailureRecordsTransientReason)
{
    mem::PhysicalMemory phys(64 * mem::kBytes2M);
    phys.setAllocGate(
        [](unsigned order) { return order != mem::kOrder2M; });
    os::Os os_model(os::Os::Params{}, phys);
    PromotionAuditLog log(1024);
    os_model.setAuditLog(&log);

    os::Process &proc = os_model.createProcess(64 * mem::kBytes2M);
    const Addr heap = proc.mmap(4 * mem::kBytes2M, "heap");
    faultRegion(os_model, proc, heap);

    const auto result =
        os_model.promoteRegion(proc, heap, /*allow_compaction=*/false,
                               {.rank = 3, .counter = 99});
    EXPECT_EQ(result.status, os::PromoteStatus::NoHugeFrame);

    const AuditReport report = log.report();
    // The gate makes the failure transient by definition: retrying
    // could have succeeded, and the record says so.
    EXPECT_TRUE(hasRecord(report, AuditAction::Promote2M,
                          AuditReason::NoHugeFrameTransient));
    ASSERT_FALSE(report.records.empty());
    const AuditRecord &rec = report.records.back();
    EXPECT_EQ(rec.pid, proc.pid());
    EXPECT_EQ(rec.base, heap);
    EXPECT_EQ(rec.rank, 3u);
    EXPECT_EQ(rec.counter, 99u);
}

TEST(OsAudit, GenuineExhaustionRecordsNonTransientReason)
{
    // No injection gate: the same failure is final, and the audit
    // trail distinguishes it from the transient class above.
    mem::PhysicalMemory phys(2 * mem::kBytes2M);
    os::Os os_model(os::Os::Params{}, phys);
    PromotionAuditLog log(1024);
    os_model.setAuditLog(&log);

    os::Process &proc = os_model.createProcess(2 * mem::kBytes2M);
    const Addr heap = proc.mmap(2 * mem::kBytes2M, "heap");
    faultRegion(os_model, proc, heap);
    faultRegion(os_model, proc, heap + mem::kBytes2M);

    const auto result = os_model.promoteRegion(proc, heap, true);
    EXPECT_EQ(result.status, os::PromoteStatus::NoHugeFrame);
    EXPECT_TRUE(hasRecord(log.report(), AuditAction::Promote2M,
                          AuditReason::NoHugeFrame));
    EXPECT_FALSE(hasRecord(log.report(), AuditAction::Promote2M,
                           AuditReason::NoHugeFrameTransient));
}

TEST(OsAudit, PressureReclaimRecordsVictimDemotions)
{
    mem::PhysicalMemory phys(8 * mem::kBytes2M);
    os::Os os_model(os::Os::Params{}, phys);
    PromotionAuditLog log(1024);
    os_model.setAuditLog(&log);

    os::Process &proc = os_model.createProcess(8 * mem::kBytes2M);
    const Addr heap = proc.mmap(2 * mem::kBytes2M, "heap");
    // Touch only part of the region: after promotion the untouched
    // tail is bloat a reclaim pass can actually free.
    for (u64 p = 0; p < mem::kPagesPer2M / 4; ++p)
        os_model.handleFault(proc, heap + p * mem::kBytes4K, false);
    ASSERT_EQ(os_model.promoteRegion(proc, heap, true).status,
              os::PromoteStatus::Ok);

    const auto reclaim = os_model.reclaimColdHugePages(1);
    EXPECT_EQ(reclaim.regions_demoted, 1u);

    const AuditReport report = log.report();
    EXPECT_TRUE(hasRecord(report, AuditAction::Reclaim,
                          AuditReason::PressureReclaim));
    EXPECT_TRUE(
        hasRecord(report, AuditAction::Demote2M, AuditReason::Ok));
}

// ------------------------------------------------------ System integration

namespace {

sim::ExperimentSpec
attributionSpec(const std::string &workload,
                sim::PolicyKind policy = sim::PolicyKind::Pcc)
{
    sim::ExperimentSpec spec;
    spec.workload.name = workload;
    spec.workload.scale = workloads::Scale::Ci;
    spec.policy = policy;
    spec.cap_percent = 25.0;
    spec.frag_fraction = 0.3;
    spec.telemetry.enabled = true;
    spec.telemetry.attribution = true;
    spec.telemetry.audit = true;
    return spec;
}

} // namespace

TEST(SystemAttribution, ReportConservesWalkCycles)
{
    const auto result = sim::runOne(attributionSpec("bfs"));
    ASSERT_NE(result.telemetry, nullptr);
    const AttributionReport &attr = result.telemetry->attribution;
    EXPECT_GT(attr.total_walks, 0u);
    EXPECT_FALSE(attr.regions.empty());
    u64 tracked_walks = 0, tracked_cycles = 0;
    for (const RegionRow &row : attr.regions) {
        tracked_walks += row.walks;
        tracked_cycles += row.walk_cycles;
    }
    EXPECT_EQ(tracked_walks + attr.untracked_walks, attr.total_walks);
    EXPECT_EQ(tracked_cycles + attr.untracked_walk_cycles,
              attr.total_walk_cycles);
    // Audit rode along: the PCC policy made decisions this run.
    EXPECT_FALSE(result.telemetry->audit.records.empty());
}

TEST(SystemAttribution, SerialAndParallelRunnersAgree)
{
    std::vector<sim::ExperimentSpec> specs;
    specs.push_back(attributionSpec("bfs"));
    specs.push_back(attributionSpec("pr", sim::PolicyKind::LinuxThp));
    auto faulty = attributionSpec("bfs");
    faulty.tweak = [](sim::SystemConfig &cfg) {
        cfg.faults.alloc_fail_huge = 0.3;
        cfg.faults.compaction_fail = 0.25;
        cfg.faults.shock_intervals = {2, 5};
    };
    faulty.tweak_key = "storm";
    specs.push_back(std::move(faulty));

    sim::Runner serial(1);
    sim::Runner parallel(4);
    const auto a = serial.runMany(specs);
    const auto b = parallel.runMany(specs);
    ASSERT_EQ(a.size(), b.size());
    for (size_t i = 0; i < a.size(); ++i) {
        ASSERT_NE(a[i]->telemetry, nullptr) << i;
        ASSERT_NE(b[i]->telemetry, nullptr) << i;
        EXPECT_TRUE(a[i]->telemetry->attribution ==
                    b[i]->telemetry->attribution)
            << "attribution diverged across job counts for spec " << i;
        EXPECT_TRUE(a[i]->telemetry->audit == b[i]->telemetry->audit)
            << "audit diverged across job counts for spec " << i;
        // The exported documents are what check.sh byte-compares.
        EXPECT_EQ(a[i]->telemetry->attribution.toJson().dump(),
                  b[i]->telemetry->attribution.toJson().dump());
        EXPECT_EQ(a[i]->telemetry->audit.toJson().dump(),
                  b[i]->telemetry->audit.toJson().dump());
    }
}

TEST(SystemAttribution, OraclePolicyHasZeroRegret)
{
    // The all-huge oracle never skips a candidate; its counterfactual
    // regret is zero by construction.
    auto spec = attributionSpec("bfs", sim::PolicyKind::AllHuge);
    spec.frag_fraction = 0.0;
    const auto result = sim::runOne(spec);
    ASSERT_NE(result.telemetry, nullptr);
    EXPECT_EQ(sim::regretCycles(result), 0u);
}

TEST(SystemAttribution, StarvedPolicyAccumulatesRegret)
{
    // A threshold no counter can reach: every ranked candidate is
    // skipped below-min-frequency, so their walk cycles all count as
    // regret vs the oracle.
    auto spec = attributionSpec("bfs");
    spec.pcc_policy.min_frequency = ~0ull;
    const auto result = sim::runOne(spec);
    ASSERT_NE(result.telemetry, nullptr);
    EXPECT_GT(sim::regretCycles(result), 0u);
    EXPECT_EQ(result.job().promotions, 0u);
}

TEST(SystemAttribution, MemoKeyDistinguishesAttributionSettings)
{
    const auto base = attributionSpec("bfs");
    auto no_attr = base;
    no_attr.telemetry.attribution = false;
    auto no_audit = base;
    no_audit.telemetry.audit = false;
    auto small_table = base;
    small_table.telemetry.attribution_regions = 64;
    auto small_log = base;
    small_log.telemetry.max_audit_records = 1024;

    EXPECT_NE(sim::specKey(base), sim::specKey(no_attr));
    EXPECT_NE(sim::specKey(base), sim::specKey(no_audit));
    EXPECT_NE(sim::specKey(base), sim::specKey(small_table));
    EXPECT_NE(sim::specKey(base), sim::specKey(small_log));
}
