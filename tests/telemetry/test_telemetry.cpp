#include <gtest/gtest.h>

#include "sim/runner.hpp"
#include "telemetry/registry.hpp"
#include "telemetry/report.hpp"
#include "telemetry/series.hpp"
#include "telemetry/trace.hpp"

using namespace pccsim;
using namespace pccsim::telemetry;

// ---------------------------------------------------------------- Registry

TEST(Registry, CounterHandlesShareSlotsAndStayValid)
{
    Registry reg;
    Registry::Handle a = reg.counter("promotions");
    ++a;
    // Registering many more counters must not move the first slot
    // (the storage is a deque, not a vector).
    std::vector<Registry::Handle> extra;
    for (int i = 0; i < 200; ++i)
        extra.push_back(reg.counter("x" + std::to_string(i)));
    a += 4;
    EXPECT_EQ(reg.read("promotions"), 5u);

    // A second fetch of the same name aliases the same slot.
    Registry::Handle b = reg.counter("promotions");
    ++b;
    EXPECT_EQ(a.value(), 6u);
}

TEST(Registry, ProbesReadOnDemand)
{
    Registry reg;
    u64 external = 7;
    reg.probe("walks", [&external] { return external; });
    EXPECT_EQ(reg.read("walks"), 7u);
    external = 42; // no re-registration needed: probes read live state
    EXPECT_EQ(reg.read("walks"), 42u);
}

TEST(Registry, UnknownNamesReadZero)
{
    Registry reg;
    EXPECT_EQ(reg.read("never-registered"), 0u);
    EXPECT_FALSE(reg.has("never-registered"));
}

TEST(Registry, ReadAllMergesCountersAndProbesSorted)
{
    Registry reg;
    reg.counter("b_counter") += 2;
    reg.probe("a_probe", [] { return u64{1}; });
    reg.probe("c_probe", [] { return u64{3}; });
    const auto all = reg.readAll();
    ASSERT_EQ(all.size(), 3u);
    EXPECT_EQ(all[0], (std::pair<std::string, u64>{"a_probe", 1}));
    EXPECT_EQ(all[1], (std::pair<std::string, u64>{"b_counter", 2}));
    EXPECT_EQ(all[2], (std::pair<std::string, u64>{"c_probe", 3}));
}

// ----------------------------------------------------------------- Sampler

TEST(IntervalSampler, CumulativeDeltasAndGaugeValues)
{
    Registry reg;
    u64 total = 0, level = 0;
    reg.probe("total", [&total] { return total; });
    reg.probe("level", [&level] { return level; });

    IntervalSampler sampler(reg);
    sampler.track("total", SampleKind::Cumulative);
    sampler.track("level", SampleKind::Gauge);

    total = 10; level = 3;
    sampler.sample();
    total = 25; level = 1;
    sampler.sample();
    total = 25; level = 8;
    sampler.sample();

    EXPECT_EQ(sampler.samplesTaken(), 3u);
    const SeriesSet &set = sampler.series();
    ASSERT_EQ(set.intervals(), 3u);
    const Series *t = set.find("total");
    const Series *l = set.find("level");
    ASSERT_TRUE(t && l);
    EXPECT_EQ(t->values, (std::vector<u64>{10, 15, 0}));
    EXPECT_EQ(l->values, (std::vector<u64>{3, 1, 8}));
}

TEST(IntervalSampler, EverySeriesHasOneValuePerSample)
{
    Registry reg;
    reg.probe("a", [] { return u64{1}; });
    reg.probe("b", [] { return u64{2}; });
    IntervalSampler sampler(reg);
    sampler.track("a", SampleKind::Cumulative);
    sampler.track("b", SampleKind::Gauge);
    for (int i = 0; i < 5; ++i)
        sampler.sample();
    for (const auto &series : sampler.series().all())
        EXPECT_EQ(series.values.size(), 5u) << series.name;
}

TEST(TopKChurnTracker, CountsNewEntrantsOnly)
{
    TopKChurnTracker tracker;
    EXPECT_EQ(tracker.update({3, 1, 2}), 3u);    // first set: all new
    EXPECT_EQ(tracker.update({1, 2, 3}), 0u);    // same set, any order
    EXPECT_EQ(tracker.update({2, 3, 4}), 1u);    // one new region
    EXPECT_EQ(tracker.update({9, 9, 9}), 1u);    // duplicates collapse
    EXPECT_EQ(tracker.update({}), 0u);           // empty head: no churn
    EXPECT_EQ(tracker.update({9}), 1u);          // 9 left with {} above
}

// ------------------------------------------------------------------ Tracer

TEST(EventTracer, UsesInstalledClockAndBoundsMemory)
{
    EventTracer tracer(/*max_events=*/2);
    u64 now = 100;
    tracer.setClock([&now] { return now; });
    tracer.record(EventKind::Promotion, 1, 0x200000, 2u << 20, 0);
    now = 250;
    tracer.record(EventKind::Demotion, 1, 0x200000, 2u << 20, 0);
    tracer.record(EventKind::Shootdown, 1); // over the cap: dropped
    tracer.record(EventKind::Reclaim);

    ASSERT_EQ(tracer.events().size(), 2u);
    EXPECT_EQ(tracer.events()[0].ts, 100u);
    EXPECT_EQ(tracer.events()[0].kind, EventKind::Promotion);
    EXPECT_EQ(tracer.events()[1].ts, 250u);
    EXPECT_EQ(tracer.dropped(), 2u);
}

TEST(EventTracer, GoldenChromeTraceShape)
{
    // The exact wire shape chrome://tracing consumes; any change here
    // is a compatibility break, so compare the full document.
    std::vector<Event> events;
    events.push_back(
        {120, EventKind::Promotion, 1, 0x200000, 2u << 20, 3});
    events.push_back({340, EventKind::Interval, 0, 0, 0, 7});

    const std::string got =
        EventTracer::chromeTrace(events, /*dropped=*/5).dump();
    const std::string want =
        "{\"traceEvents\":["
        "{\"name\":\"promotion\",\"cat\":\"os\",\"ph\":\"i\","
        "\"s\":\"p\",\"ts\":120,\"pid\":1,\"tid\":0,"
        "\"args\":{\"addr\":\"0x200000\",\"bytes\":2097152,\"arg\":3}},"
        "{\"name\":\"interval\",\"cat\":\"sim\",\"ph\":\"i\","
        "\"s\":\"p\",\"ts\":340,\"pid\":0,\"tid\":0,"
        "\"args\":{\"arg\":7}}],"
        "\"displayTimeUnit\":\"ms\","
        "\"otherData\":{\"clock\":\"simulated-accesses\","
        "\"events_dropped\":5}}";
    EXPECT_EQ(got, want);
}

TEST(SeriesSet, JsonShapeMatchesCheckScript)
{
    SeriesSet set;
    set.append("walks", 10);
    set.append("walks", 20);
    set.append("occupancy", 4);
    set.append("occupancy", 4);
    EXPECT_EQ(set.toJson().dump(),
              "{\"intervals\":2,\"series\":"
              "{\"walks\":[10,20],\"occupancy\":[4,4]}}");
}

// ------------------------------------------------------- System integration

namespace {

sim::ExperimentSpec
telemetrySpec(const std::string &workload, bool enabled,
              sim::PolicyKind policy = sim::PolicyKind::Pcc)
{
    sim::ExperimentSpec spec;
    spec.workload.name = workload;
    spec.workload.scale = workloads::Scale::Ci;
    spec.policy = policy;
    spec.cap_percent = 25.0;
    spec.frag_fraction = 0.3;
    spec.telemetry.enabled = enabled;
    return spec;
}

} // namespace

TEST(SystemTelemetry, DisabledRunsAttachNoReport)
{
    const auto result = sim::runOne(telemetrySpec("bfs", false));
    EXPECT_EQ(result.telemetry, nullptr);
}

TEST(SystemTelemetry, SeriesLengthsMatchIntervalCount)
{
    const auto result = sim::runOne(telemetrySpec("bfs", true));
    ASSERT_NE(result.telemetry, nullptr);
    const auto &report = *result.telemetry;
    EXPECT_GT(result.intervals, 0u);
    EXPECT_EQ(report.intervals, result.intervals);
    EXPECT_FALSE(report.series.all().empty());
    for (const auto &series : report.series.all()) {
        EXPECT_EQ(series.values.size(), result.intervals)
            << series.name;
    }
    // The core sampled sources all exist.
    for (const char *name :
         {"walks", "l1_hits", "l2_hits", "promotions", "compactions",
          "shootdowns", "pcc_topk_churn", "pcc_occupancy",
          "job0_cycles"}) {
        EXPECT_NE(report.series.find(name), nullptr) << name;
    }
    // Final counters cover every registered source and carry the
    // run's end-of-run totals.
    EXPECT_FALSE(report.counters.empty());
    u64 walks_total = 0;
    for (const auto &[name, value] : report.counters)
        if (name == "walks")
            walks_total = value;
    EXPECT_EQ(walks_total, result.job().walks);
}

TEST(SystemTelemetry, CollectionDoesNotPerturbTheSimulation)
{
    const auto off = sim::runOne(telemetrySpec("bfs", false));
    const auto on = sim::runOne(telemetrySpec("bfs", true));
    // Every simulation metric is bit-identical; only the attached
    // report differs.
    EXPECT_EQ(off.total_accesses, on.total_accesses);
    EXPECT_EQ(off.wall_cycles, on.wall_cycles);
    EXPECT_EQ(off.intervals, on.intervals);
    EXPECT_EQ(off.compactions, on.compactions);
    ASSERT_EQ(off.jobs.size(), on.jobs.size());
    for (size_t i = 0; i < off.jobs.size(); ++i) {
        EXPECT_EQ(off.jobs[i].wall_cycles, on.jobs[i].wall_cycles);
        EXPECT_EQ(off.jobs[i].walks, on.jobs[i].walks);
        EXPECT_EQ(off.jobs[i].promotions, on.jobs[i].promotions);
    }
}

TEST(SystemTelemetry, TraceEventsUseTheSimulatedClock)
{
    auto spec = telemetrySpec("bfs", true);
    const auto result = sim::runOne(spec);
    ASSERT_NE(result.telemetry, nullptr);
    const auto &events = result.telemetry->events;
    ASSERT_FALSE(events.empty());
    // Timestamps are monotonically non-decreasing simulated accesses,
    // bounded by the run length.
    u64 prev = 0;
    u64 interval_markers = 0;
    for (const auto &event : events) {
        EXPECT_GE(event.ts, prev);
        EXPECT_LE(event.ts, result.total_accesses);
        prev = event.ts;
        if (event.kind == EventKind::Interval)
            ++interval_markers;
    }
    EXPECT_EQ(interval_markers, result.intervals);
    EXPECT_EQ(result.telemetry->events_dropped, 0u);

    // trace_events=false still samples series but keeps no event log.
    spec.telemetry.trace_events = false;
    const auto quiet = sim::runOne(spec);
    ASSERT_NE(quiet.telemetry, nullptr);
    EXPECT_TRUE(quiet.telemetry->events.empty());
    EXPECT_FALSE(quiet.telemetry->series.all().empty());
}

TEST(SystemTelemetry, SerialAndParallelRunnersAgreeOnTelemetry)
{
    std::vector<sim::ExperimentSpec> specs;
    specs.push_back(telemetrySpec("bfs", true));
    specs.push_back(telemetrySpec("pr", true, sim::PolicyKind::LinuxThp));
    auto faulty = telemetrySpec("bfs", true);
    faulty.tweak = [](sim::SystemConfig &cfg) {
        cfg.faults.alloc_fail_huge = 0.3;
        cfg.faults.compaction_fail = 0.25;
        cfg.faults.shootdown_storm = 0.1;
        cfg.faults.shock_intervals = {2, 5};
    };
    faulty.tweak_key = "storm";
    specs.push_back(std::move(faulty));

    sim::Runner serial(1);
    sim::Runner parallel(4);
    const auto a = serial.runMany(specs);
    const auto b = parallel.runMany(specs);
    ASSERT_EQ(a.size(), b.size());
    for (size_t i = 0; i < a.size(); ++i) {
        ASSERT_NE(a[i]->telemetry, nullptr) << i;
        ASSERT_NE(b[i]->telemetry, nullptr) << i;
        // RunResult equality includes the report contents...
        EXPECT_TRUE(*a[i] == *b[i]) << "spec " << i;
        // ...but check the report explicitly too, so a failure points
        // at telemetry rather than at the simulation.
        EXPECT_TRUE(*a[i]->telemetry == *b[i]->telemetry)
            << "telemetry diverged across job counts for spec " << i;
    }
}

TEST(SystemTelemetry, MemoKeyDistinguishesTelemetrySettings)
{
    const auto off = telemetrySpec("bfs", false);
    const auto on = telemetrySpec("bfs", true);
    EXPECT_NE(sim::specKey(off), sim::specKey(on));
    auto quiet = on;
    quiet.telemetry.trace_events = false;
    EXPECT_NE(sim::specKey(on), sim::specKey(quiet));
}

TEST(TelemetryReport, SeriesJsonCarriesTopLevelKeys)
{
    const auto result = sim::runOne(telemetrySpec("bfs", true));
    ASSERT_NE(result.telemetry, nullptr);
    const std::string doc = result.telemetry->seriesJson().dump();
    for (const char *key :
         {"\"intervals\":", "\"series\":", "\"counters\":",
          "\"events\":", "\"events_dropped\":"}) {
        EXPECT_NE(doc.find(key), std::string::npos) << key;
    }
    const std::string trace = result.telemetry->traceJson().dump();
    for (const char *key :
         {"\"traceEvents\":", "\"displayTimeUnit\":", "\"otherData\":"}) {
        EXPECT_NE(trace.find(key), std::string::npos) << key;
    }
}
