#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <random>
#include <vector>

#include "sim/runner.hpp"
#include "telemetry/report.hpp"
#include "telemetry/tail.hpp"

using namespace pccsim;
using namespace pccsim::telemetry;

// ------------------------------------------------------ LatencyHistogram

TEST(LatencyHistogram, BucketIndexAndLowerBoundRoundTrip)
{
    // Every bucket's lower bound maps back to its own index, and a
    // value is never below the lower bound of its bucket.
    for (u32 i = 0; i < LatencyHistogram::kBuckets; ++i)
        EXPECT_EQ(LatencyHistogram::indexOf(LatencyHistogram::bucketLow(i)),
                  i);
    for (u64 v : {0ull, 1ull, 15ull, 16ull, 17ull, 31ull, 32ull, 1000ull,
                  123456789ull, ~0ull}) {
        const u32 idx = LatencyHistogram::indexOf(v);
        EXPECT_LE(LatencyHistogram::bucketLow(idx), v) << v;
        if (idx + 1 < LatencyHistogram::kBuckets)
            EXPECT_LT(v, LatencyHistogram::bucketLow(idx + 1)) << v;
    }
}

TEST(LatencyHistogram, QuantilesMatchExactSortedReferenceWithinOneBucket)
{
    // Mixed-magnitude stream: exact small values, mid-range, and
    // multi-million-cycle outliers, so every octave regime is hit.
    std::mt19937_64 rng(42);
    LatencyHistogram hist;
    std::vector<u64> values;
    for (int i = 0; i < 10000; ++i) {
        const u64 band = rng() % 3;
        const u64 v = band == 0   ? rng() % 16
                      : band == 1 ? 1000 + rng() % 5000
                                  : 1'000'000 + rng() % 9'000'000;
        values.push_back(v);
        hist.record(v);
    }
    std::sort(values.begin(), values.end());

    u64 exact_sum = 0;
    for (u64 v : values)
        exact_sum += v;
    EXPECT_EQ(hist.count(), values.size());
    EXPECT_EQ(hist.sum(), exact_sum);
    EXPECT_EQ(hist.minValue(), values.front());
    EXPECT_EQ(hist.maxValue(), values.back());

    for (double q : {0.5, 0.9, 0.99, 0.999}) {
        const auto rank = static_cast<size_t>(
            std::ceil(q * static_cast<double>(values.size())));
        const u64 exact = values[rank - 1];
        const u64 approx = hist.quantile(q);
        // Same rank convention on both sides: the answer is the lower
        // bound of (at worst a neighbor of) the exact value's bucket,
        // i.e. within one log-linear bucket (<= 6.25% relative error).
        EXPECT_LE(approx, exact) << "q=" << q;
        const int exact_idx =
            static_cast<int>(LatencyHistogram::indexOf(exact));
        const int approx_idx =
            static_cast<int>(LatencyHistogram::indexOf(approx));
        EXPECT_LE(std::abs(exact_idx - approx_idx), 1) << "q=" << q;
    }
}

TEST(LatencyHistogram, MergeIsAssociativeCommutativeAndLossless)
{
    std::mt19937_64 rng(7);
    LatencyHistogram a, b, c, concat;
    for (int i = 0; i < 1000; ++i) {
        const u64 v = rng() % 100000;
        (i % 3 == 0 ? a : i % 3 == 1 ? b : c).record(v);
        concat.record(v);
    }

    LatencyHistogram left = a; // (a + b) + c
    left.merge(b);
    left.merge(c);
    LatencyHistogram bc = b; // a + (b + c)
    bc.merge(c);
    LatencyHistogram right = a;
    right.merge(bc);
    LatencyHistogram reversed = c; // c + b + a
    reversed.merge(b);
    reversed.merge(a);

    EXPECT_TRUE(left == right);
    EXPECT_TRUE(left == reversed);
    EXPECT_TRUE(left == concat);
    EXPECT_EQ(left.toJson().dump(), concat.toJson().dump());

    // Merging an empty histogram is the identity.
    LatencyHistogram copy = concat;
    copy.merge(LatencyHistogram{});
    EXPECT_TRUE(copy == concat);
}

// ------------------------------------------------------ ExemplarReservoir

namespace {

Exemplar
exemplarAt(u64 ts, Cycles cycles)
{
    Exemplar e;
    e.ts = ts;
    e.cycles = cycles;
    return e;
}

} // namespace

TEST(ExemplarReservoir, KeepsWorstKOrderedWithEarliestArrivalOnTies)
{
    ExemplarReservoir res(3);
    const u64 metrics[] = {5, 1, 9, 5, 7, 9, 2};
    for (u64 ts = 0; ts < std::size(metrics); ++ts)
        res.offer(exemplarAt(ts, metrics[ts]), metrics[ts]);

    ASSERT_EQ(res.worst().size(), 3u);
    // Worst-first; the two 9s keep arrival order (ts=2 before ts=5).
    EXPECT_EQ(res.worst()[0].cycles, 9u);
    EXPECT_EQ(res.worst()[0].ts, 2u);
    EXPECT_EQ(res.worst()[1].cycles, 9u);
    EXPECT_EQ(res.worst()[1].ts, 5u);
    EXPECT_EQ(res.worst()[2].cycles, 7u);
    EXPECT_EQ(res.worst()[2].ts, 4u);
}

TEST(ExemplarReservoir, FullReservoirRejectsTiesWithTheIncumbent)
{
    ExemplarReservoir res(1);
    res.offer(exemplarAt(0, 5), 5);
    res.offer(exemplarAt(1, 5), 5); // tie: the incumbent stays
    ASSERT_EQ(res.worst().size(), 1u);
    EXPECT_EQ(res.worst()[0].ts, 0u);
    res.offer(exemplarAt(2, 6), 6); // strictly worse access evicts
    ASSERT_EQ(res.worst().size(), 1u);
    EXPECT_EQ(res.worst()[0].ts, 2u);
}

// ------------------------------------------------------- System integration

namespace {

sim::ExperimentSpec
tailSpec(const std::string &workload, bool histograms,
         sim::PolicyKind policy = sim::PolicyKind::Pcc)
{
    sim::ExperimentSpec spec;
    spec.workload.name = workload;
    spec.workload.scale = workloads::Scale::Ci;
    spec.policy = policy;
    spec.cap_percent = 25.0;
    spec.frag_fraction = 0.3;
    spec.telemetry.enabled = true;
    spec.telemetry.histograms = histograms;
    return spec;
}

sim::ExperimentSpec
faultStormSpec()
{
    auto spec = tailSpec("bfs", true);
    spec.tweak = [](sim::SystemConfig &cfg) {
        cfg.faults.alloc_fail_huge = 0.3;
        cfg.faults.compaction_fail = 0.25;
        cfg.faults.shootdown_storm = 0.1;
        cfg.faults.shock_intervals = {2, 5};
    };
    spec.tweak_key = "storm";
    return spec;
}

} // namespace

TEST(TailTelemetry, ReportCoversEveryAccessAndSlicesAddUp)
{
    const auto result = sim::runOne(tailSpec("bfs", true));
    ASSERT_NE(result.telemetry, nullptr);
    const TailReport &tail = result.telemetry->tail;
    ASSERT_TRUE(tail.enabled);
    EXPECT_EQ(tail.total.translation.count(), result.total_accesses);
    EXPECT_GT(tail.total.walk.count(), 0u);
    EXPECT_GT(tail.total.stall.count(), 0u); // first touches fault

    // The total slice is exactly the merge of the per-core slices and
    // of the per-job slices.
    LatencyHistogram cores, jobs;
    for (const auto &slice : tail.per_core)
        cores.merge(slice.translation);
    for (const auto &slice : tail.per_job)
        jobs.merge(slice.translation);
    EXPECT_TRUE(cores == tail.total.translation);
    EXPECT_TRUE(jobs == tail.total.translation);

    // Exemplars: bounded by K, worst-first, and self-consistent.
    ASSERT_GT(tail.exemplar_k, 0u);
    ASSERT_FALSE(tail.worst_translation.empty());
    EXPECT_LE(tail.worst_translation.size(), tail.exemplar_k);
    for (size_t i = 1; i < tail.worst_translation.size(); ++i)
        EXPECT_GE(tail.worst_translation[i - 1].cycles,
                  tail.worst_translation[i].cycles);
    EXPECT_EQ(tail.worst_translation[0].cycles,
              tail.total.translation.maxValue());

    // The windowed p99 series exists and covers every interval.
    const Series *p99 = result.telemetry->series.find("tail_p99_cycles");
    ASSERT_NE(p99, nullptr);
    EXPECT_EQ(p99->values.size(), result.intervals);
}

TEST(TailTelemetry, SerialAndParallelRunnersAgreeByteForByte)
{
    std::vector<sim::ExperimentSpec> specs;
    specs.push_back(tailSpec("bfs", true));
    specs.push_back(tailSpec("pr", true, sim::PolicyKind::LinuxThp));
    specs.push_back(faultStormSpec());

    sim::Runner serial(1);
    sim::Runner parallel(4);
    const auto a = serial.runMany(specs);
    const auto b = parallel.runMany(specs);
    ASSERT_EQ(a.size(), b.size());
    for (size_t i = 0; i < a.size(); ++i) {
        ASSERT_NE(a[i]->telemetry, nullptr) << i;
        ASSERT_NE(b[i]->telemetry, nullptr) << i;
        EXPECT_TRUE(*a[i] == *b[i]) << "spec " << i;
        EXPECT_TRUE(a[i]->telemetry->tail == b[i]->telemetry->tail)
            << "tail report diverged across job counts for spec " << i;
        // The serialized form — what the exports and gates diff — is
        // byte-identical too.
        EXPECT_EQ(a[i]->telemetry->tail.toJson().dump(),
                  b[i]->telemetry->tail.toJson().dump())
            << "spec " << i;
    }
}

TEST(TailTelemetry, FaultStormExemplarsAreReproducible)
{
    // Two fresh runners (separate memo caches) under a fault storm:
    // the worst-K exemplar sets — the part most sensitive to ordering
    // — must come out identical.
    sim::Runner first(1);
    sim::Runner second(2);
    const auto a = first.runMany({faultStormSpec()});
    const auto b = second.runMany({faultStormSpec()});
    ASSERT_NE(a[0]->telemetry, nullptr);
    ASSERT_NE(b[0]->telemetry, nullptr);
    const TailReport &ta = a[0]->telemetry->tail;
    const TailReport &tb = b[0]->telemetry->tail;
    ASSERT_FALSE(ta.worst_stall.empty());
    EXPECT_EQ(ta.worst_translation, tb.worst_translation);
    EXPECT_EQ(ta.worst_walk, tb.worst_walk);
    EXPECT_EQ(ta.worst_stall, tb.worst_stall);
    EXPECT_TRUE(ta == tb);
}

TEST(TailTelemetry, DisabledHistogramsLeaveMetricsAndSeriesUnchanged)
{
    const auto off = sim::runOne(tailSpec("bfs", false));
    const auto on = sim::runOne(tailSpec("bfs", true));

    // Simulation metrics are bit-identical with histograms on.
    EXPECT_EQ(off.total_accesses, on.total_accesses);
    EXPECT_EQ(off.wall_cycles, on.wall_cycles);
    EXPECT_EQ(off.intervals, on.intervals);
    ASSERT_EQ(off.jobs.size(), on.jobs.size());
    for (size_t i = 0; i < off.jobs.size(); ++i) {
        EXPECT_EQ(off.jobs[i].wall_cycles, on.jobs[i].wall_cycles);
        EXPECT_EQ(off.jobs[i].walks, on.jobs[i].walks);
        EXPECT_EQ(off.jobs[i].promotions, on.jobs[i].promotions);
    }

    // Off means off: no tail report, no tail series, and the legacy
    // series are untouched by the new instrumentation.
    ASSERT_NE(off.telemetry, nullptr);
    EXPECT_FALSE(off.telemetry->tail.enabled);
    EXPECT_EQ(off.telemetry->tail.total.translation.count(), 0u);
    EXPECT_EQ(off.telemetry->series.find("tail_p99_cycles"), nullptr);
    ASSERT_NE(on.telemetry, nullptr);
    const auto &off_series = off.telemetry->series.all();
    for (const auto &series : off_series) {
        const Series *match = on.telemetry->series.find(series.name);
        ASSERT_NE(match, nullptr) << series.name;
        EXPECT_EQ(match->values, series.values) << series.name;
    }
}

TEST(TailTelemetry, SpecKeyGatesOnHistogramsOnly)
{
    const auto off = tailSpec("bfs", false);
    const auto on = tailSpec("bfs", true);
    EXPECT_NE(sim::specKey(off), sim::specKey(on));

    // exemplar_k is part of the key only while histograms are on, so
    // legacy (histogram-free) memo keys are unchanged by this field.
    auto on_k16 = on;
    on_k16.telemetry.exemplar_k = 16;
    EXPECT_NE(sim::specKey(on), sim::specKey(on_k16));
    auto off_k16 = off;
    off_k16.telemetry.exemplar_k = 16;
    EXPECT_EQ(sim::specKey(off), sim::specKey(off_k16));
}
