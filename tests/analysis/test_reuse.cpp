#include <gtest/gtest.h>

#include "analysis/reuse.hpp"
#include "util/rng.hpp"

using namespace pccsim;
using namespace pccsim::analysis;

namespace {

constexpr Addr kBase = 0x1000'0000'0000ull;

} // namespace

TEST(Reuse, SequentialAccessesAreTlbFriendly)
{
    ReuseTracker tracker(1024);
    // 64B-stride streaming: 64 consecutive touches per page.
    for (Addr a = 0; a < 256 * mem::kBytes4K; a += 64)
        tracker.touch(kBase + a);
    const auto summary = tracker.summarize();
    EXPECT_EQ(summary.hubs, 0u);
    EXPECT_EQ(summary.low_reuse, 0u);
    EXPECT_EQ(summary.tlb_friendly, 256u);
}

TEST(Reuse, HubPatternDetected)
{
    // Random access confined to ONE 2MB region across many pages:
    // per-4KB reuse distance is high (512 pages in flight) relative
    // to a small threshold, but the 2MB region is touched every
    // access (distance 0).
    ReuseTracker tracker(64);
    Rng rng(3);
    for (int i = 0; i < 200'000; ++i) {
        const u64 page = rng.below(512);
        tracker.touch(kBase + page * mem::kBytes4K);
    }
    const auto summary = tracker.summarize();
    EXPECT_GT(summary.hubs, 500u);
    EXPECT_EQ(summary.low_reuse, 0u);
}

TEST(Reuse, LowReusePatternDetected)
{
    // Random access over a huge span: high distance at both sizes.
    ReuseTracker tracker(64);
    Rng rng(5);
    for (int i = 0; i < 200'000; ++i) {
        const u64 region = rng.below(4096);
        const u64 page = rng.below(512);
        tracker.touch(kBase + region * mem::kBytes2M +
                      page * mem::kBytes4K);
    }
    const auto summary = tracker.summarize();
    EXPECT_GT(summary.low_reuse, summary.hubs);
    EXPECT_GT(summary.low_reuse, summary.tlb_friendly);
}

TEST(Reuse, MixedStreamSeparatesClasses)
{
    ReuseTracker tracker(256);
    Rng rng(7);
    Addr seq = 0;
    for (int i = 0; i < 300'000; ++i) {
        switch (i % 3) {
          case 0: // streaming region
            tracker.touch(kBase + (seq % (64 * mem::kBytes4K)));
            seq += 64;
            break;
          case 1: // hot 2MB region, random page
            tracker.touch(kBase + (1ull << 32) +
                          rng.below(512) * mem::kBytes4K);
            break;
          case 2: // cold sprawl
            tracker.touch(kBase + (1ull << 33) +
                          rng.below(1ull << 31));
            break;
        }
    }
    const auto summary = tracker.summarize();
    EXPECT_GT(summary.tlb_friendly, 0u);
    EXPECT_GT(summary.hubs, 0u);
    EXPECT_GT(summary.low_reuse, 0u);
}

TEST(Reuse, ResultsCarryBothGranularities)
{
    ReuseTracker tracker(16);
    tracker.touch(kBase);
    tracker.touch(kBase + mem::kBytes4K);
    tracker.touch(kBase);
    const auto results = tracker.results();
    ASSERT_EQ(results.size(), 2u);
    const auto &page0 = results[0];
    // Page 0 was re-touched after 1 intervening access; its 2MB
    // region was touched every access.
    EXPECT_DOUBLE_EQ(page0.mean_4k, 1.0);
    EXPECT_DOUBLE_EQ(page0.mean_2m, 0.0);
}

TEST(Reuse, HubRegionsRankedByHubPageCount)
{
    ReuseTracker tracker(32);
    Rng rng(9);
    // Region A: 256 hub pages; region B: 64 hub pages; interleaved so
    // both stay hot at 2MB granularity.
    for (int i = 0; i < 400'000; ++i) {
        if (i % 2 == 0)
            tracker.touch(kBase + rng.below(256) * mem::kBytes4K);
        else
            tracker.touch(kBase + mem::kBytes2M +
                          rng.below(64) * mem::kBytes4K);
    }
    const auto regions = tracker.hubRegions();
    ASSERT_GE(regions.size(), 2u);
    EXPECT_EQ(regions[0], mem::vpnOf(kBase, mem::PageSize::Huge2M));
}

TEST(Reuse, AccessCountTracked)
{
    ReuseTracker tracker;
    for (int i = 0; i < 10; ++i)
        tracker.touch(kBase);
    EXPECT_EQ(tracker.accesses(), 10u);
    EXPECT_EQ(tracker.threshold(), 1024u);
}
