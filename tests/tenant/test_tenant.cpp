/**
 * @file
 * Unit tests for the tenant subsystem: budget arbiters (allocation
 * invariants, determinism, rotation fairness) and the contention
 * scheduler's switch/occupancy accounting.
 */

#include <numeric>

#include <gtest/gtest.h>

#include "tenant/arbiter.hpp"
#include "tenant/scheduler.hpp"
#include "tenant/tenant.hpp"

using namespace pccsim;
using namespace pccsim::tenant;

namespace {

std::vector<TenantDemand>
demandOf(std::initializer_list<u64> weights)
{
    std::vector<TenantDemand> out;
    Pid pid = 0;
    for (u64 w : weights) {
        TenantDemand d;
        d.pid = pid++;
        d.candidates = w > 0 ? 1 : 0;
        d.weight = w;
        out.push_back(d);
    }
    return out;
}

u64
sum(const std::vector<u32> &v)
{
    return std::accumulate(v.begin(), v.end(), u64{0});
}

} // namespace

// ------------------------------------------------------------ arbiters

TEST(Arbiter, RegistryKnowsThreeContenders)
{
    EXPECT_GE(arbiterNames().size(), 3u);
    for (const auto &name : arbiterNames()) {
        const auto arbiter = makeArbiter(name);
        ASSERT_NE(arbiter, nullptr) << name;
        EXPECT_EQ(arbiter->name(), name);
    }
    EXPECT_EQ(makeArbiter("no-such-arbiter"), nullptr);
    // Aliases resolve to the canonical implementations.
    EXPECT_EQ(makeArbiter("greedy-global")->name(), "greedy");
    EXPECT_EQ(makeArbiter("static-split")->name(), "static");
    EXPECT_EQ(makeArbiter("proportional")->name(), "propshare");
}

TEST(Arbiter, GreedyGrantsEveryoneTheFullBudget)
{
    const auto arbiter = makeArbiter("greedy");
    const auto allow = arbiter->allocate(7, demandOf({10, 0, 3}), 5);
    EXPECT_EQ(allow, (std::vector<u32>{7, 7, 7}));
}

TEST(Arbiter, StaticSplitsEquallyAndRotatesTheRemainder)
{
    const auto arbiter = makeArbiter("static");
    // 8 slots over 3 tenants: 2 each + 2 rotating extras.
    const auto a0 = arbiter->allocate(8, demandOf({1, 1, 1}), 0);
    EXPECT_EQ(sum(a0), 8u);
    EXPECT_EQ(a0, (std::vector<u32>{3, 3, 2}));
    const auto a1 = arbiter->allocate(8, demandOf({1, 1, 1}), 1);
    EXPECT_EQ(a1, (std::vector<u32>{2, 3, 3}));
    const auto a2 = arbiter->allocate(8, demandOf({1, 1, 1}), 2);
    EXPECT_EQ(a2, (std::vector<u32>{3, 2, 3}));
    // Over a full rotation every tenant receives the same total.
    u64 t0 = a0[0] + a1[0] + a2[0];
    u64 t1 = a0[1] + a1[1] + a2[1];
    u64 t2 = a0[2] + a1[2] + a2[2];
    EXPECT_EQ(t0, t1);
    EXPECT_EQ(t1, t2);
}

TEST(Arbiter, PropShareFollowsWalkDemand)
{
    const auto arbiter = makeArbiter("propshare");
    // Weights 60/30/10 over 10 slots: exact 6/3/1 split.
    const auto allow =
        arbiter->allocate(10, demandOf({60, 30, 10}), 0);
    EXPECT_EQ(allow, (std::vector<u32>{6, 3, 1}));
}

TEST(Arbiter, PropShareLargestRemainderNeverOverOrUnderAllocates)
{
    const auto arbiter = makeArbiter("propshare");
    for (u64 interval = 0; interval < 5; ++interval) {
        const auto allow =
            arbiter->allocate(7, demandOf({5, 3, 1, 1}), interval);
        EXPECT_EQ(sum(allow), 7u) << "interval " << interval;
    }
}

TEST(Arbiter, PropShareZeroWeightFallsBackToStaticSplit)
{
    const auto prop = makeArbiter("propshare");
    const auto stat = makeArbiter("static");
    const auto demand = demandOf({0, 0, 0});
    for (u64 interval = 0; interval < 3; ++interval) {
        EXPECT_EQ(prop->allocate(9, demand, interval),
                  stat->allocate(9, demand, interval));
    }
}

TEST(Arbiter, AllocationIsDeterministic)
{
    for (const auto &name : arbiterNames()) {
        const auto arbiter = makeArbiter(name);
        const auto demand = demandOf({17, 0, 4, 9});
        EXPECT_EQ(arbiter->allocate(11, demand, 3),
                  arbiter->allocate(11, demand, 3))
            << name;
    }
}

// ----------------------------------------------------------- scheduler

TEST(TenantScheduler, SeedDoesNotCountASwitch)
{
    TenantConfig config;
    config.cores = 1;
    Scheduler sched(config, 2);
    sched.seed(0, 0);
    EXPECT_EQ(sched.switches(), 0u);
    EXPECT_EQ(sched.currentOn(0), 0u);
    // Re-claiming the seeded tenant is free too.
    EXPECT_FALSE(sched.claim(0, 0));
    EXPECT_EQ(sched.switches(), 0u);
}

TEST(TenantScheduler, ClaimCountsSwitchesAgainstTheIncomingTenant)
{
    TenantConfig config;
    config.cores = 1;
    Scheduler sched(config, 2);
    sched.seed(0, 0);
    EXPECT_TRUE(sched.claim(0, 1));  // 0 -> 1: switch, charged to 1
    EXPECT_FALSE(sched.claim(0, 1)); // still 1
    EXPECT_TRUE(sched.claim(0, 0));  // 1 -> 0: switch, charged to 0
    EXPECT_EQ(sched.switches(), 2u);
    EXPECT_EQ(sched.switchesOf(0), 1u);
    EXPECT_EQ(sched.switchesOf(1), 1u);
    EXPECT_EQ(sched.currentOn(0), 0u);
}

TEST(TenantScheduler, OccupancySharesSumToOne)
{
    TenantConfig config;
    config.cores = 2;
    Scheduler sched(config, 3);
    sched.noteOps(0, 600);
    sched.noteOps(1, 300);
    sched.noteOps(2, 100);
    EXPECT_DOUBLE_EQ(sched.occupancyShareOf(0), 0.6);
    EXPECT_DOUBLE_EQ(sched.occupancyShareOf(1), 0.3);
    EXPECT_DOUBLE_EQ(sched.occupancyShareOf(2), 0.1);
    EXPECT_EQ(sched.opsOf(0), 600u);
}

// --------------------------------------------------------- switch mode

TEST(SwitchMode, ParseAndPrintRoundTrip)
{
    EXPECT_EQ(parseSwitchMode("flush"), SwitchMode::Flush);
    EXPECT_EQ(parseSwitchMode("asid"), SwitchMode::Asid);
    EXPECT_EQ(parseSwitchMode("pcid"), SwitchMode::Asid);
    EXPECT_EQ(parseSwitchMode("bogus"), std::nullopt);
    EXPECT_EQ(to_string(SwitchMode::Flush), "flush");
    EXPECT_EQ(to_string(SwitchMode::Asid), "asid");
}
