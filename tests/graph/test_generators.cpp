#include <gtest/gtest.h>

#include <algorithm>

#include "graph/generators.hpp"

using namespace pccsim;
using namespace pccsim::graph;

namespace {

GraphSpec
smallSpec(NetworkKind kind)
{
    GraphSpec spec;
    spec.scale = 10;
    spec.avg_degree = 8;
    spec.kind = kind;
    spec.seed = 99;
    return spec;
}

u32
maxDegree(const CsrGraph &g)
{
    u32 best = 0;
    for (NodeId v = 0; v < g.numNodes(); ++v)
        best = std::max(best, g.degree(v));
    return best;
}

} // namespace

TEST(Generators, SpecArithmetic)
{
    GraphSpec spec;
    spec.scale = 10;
    spec.avg_degree = 8;
    EXPECT_EQ(spec.numNodes(), 1024u);
    EXPECT_EQ(spec.numDirectedEdges(), 1024u * 8 / 2);
}

TEST(Generators, DeterministicForSameSeed)
{
    const CsrGraph a = generate(smallSpec(NetworkKind::Kronecker));
    const CsrGraph b = generate(smallSpec(NetworkKind::Kronecker));
    ASSERT_EQ(a.numEdges(), b.numEdges());
    EXPECT_EQ(a.targets(), b.targets());
}

TEST(Generators, SeedChangesGraph)
{
    GraphSpec spec = smallSpec(NetworkKind::Kronecker);
    const CsrGraph a = generate(spec);
    spec.seed = 100;
    const CsrGraph b = generate(spec);
    EXPECT_NE(a.targets(), b.targets());
}

class AllKinds : public ::testing::TestWithParam<NetworkKind>
{
};

TEST_P(AllKinds, SymmetrizedSizeAndValidity)
{
    const GraphSpec spec = smallSpec(GetParam());
    const CsrGraph g = generate(spec);
    EXPECT_EQ(g.numNodes(), spec.numNodes());
    EXPECT_EQ(g.numEdges(), 2 * spec.numDirectedEdges());
    for (NodeId v = 0; v < g.numNodes(); ++v)
        for (NodeId u : g.neighbors(v))
            ASSERT_LT(u, g.numNodes());
}

TEST_P(AllKinds, PowerLawSkewPresent)
{
    const CsrGraph g = generate(smallSpec(GetParam()));
    const u32 avg = static_cast<u32>(g.numEdges() / g.numNodes());
    // Hubs far above the mean degree are the signature of all three
    // network classes the paper evaluates.
    EXPECT_GT(maxDegree(g), avg * 4);
}

INSTANTIATE_TEST_SUITE_P(Kinds, AllKinds,
                         ::testing::Values(NetworkKind::Kronecker,
                                           NetworkKind::Social,
                                           NetworkKind::Web));

TEST(Generators, RmatEdgeInRange)
{
    Rng rng(5);
    for (int i = 0; i < 1000; ++i) {
        const Edge e = rmatEdge(12, rng);
        EXPECT_LT(e.src, 1u << 12);
        EXPECT_LT(e.dst, 1u << 12);
    }
}

TEST(Generators, WeightsInDeclaredRange)
{
    GraphSpec spec = smallSpec(NetworkKind::Kronecker);
    spec.weighted = true;
    const CsrGraph g = generate(spec);
    ASSERT_TRUE(g.hasWeights());
    for (u32 w : g.weights()) {
        EXPECT_GE(w, 1u);
        EXPECT_LE(w, 255u);
    }
}

TEST(Dbg, ReorderPreservesStructure)
{
    const CsrGraph g = generate(smallSpec(NetworkKind::Kronecker));
    const CsrGraph sorted = dbgReorder(g);
    EXPECT_EQ(sorted.numNodes(), g.numNodes());
    EXPECT_EQ(sorted.numEdges(), g.numEdges());

    // Degree multiset is preserved.
    std::vector<u32> before, after;
    for (NodeId v = 0; v < g.numNodes(); ++v) {
        before.push_back(g.degree(v));
        after.push_back(sorted.degree(v));
    }
    std::sort(before.begin(), before.end());
    std::sort(after.begin(), after.end());
    EXPECT_EQ(before, after);
}

TEST(Dbg, HotVerticesMoveToFront)
{
    const CsrGraph g = generate(smallSpec(NetworkKind::Kronecker));
    const CsrGraph sorted = dbgReorder(g);
    // Average degree of the first 10% of vertices must exceed the
    // last 10% after degree-based grouping.
    const NodeId n = sorted.numNodes();
    u64 head = 0, tail = 0;
    for (NodeId v = 0; v < n / 10; ++v)
        head += sorted.degree(v);
    for (NodeId v = n - n / 10; v < n; ++v)
        tail += sorted.degree(v);
    EXPECT_GT(head, tail);
}

TEST(Dbg, ReorderKeepsWeightsAttached)
{
    GraphSpec spec = smallSpec(NetworkKind::Kronecker);
    spec.weighted = true;
    const CsrGraph g = generate(spec);
    const CsrGraph sorted = dbgReorder(g);
    ASSERT_TRUE(sorted.hasWeights());
    // Total weight is invariant under reordering.
    u64 sum_before = 0, sum_after = 0;
    for (u32 w : g.weights())
        sum_before += w;
    for (u32 w : sorted.weights())
        sum_after += w;
    EXPECT_EQ(sum_before, sum_after);
}
