#include <gtest/gtest.h>

#include "graph/csr.hpp"

using namespace pccsim;
using namespace pccsim::graph;

TEST(Csr, BuildSymmetricFromEdgeList)
{
    std::vector<Edge> edges = {{0, 1}, {1, 2}, {0, 2}};
    const CsrGraph g = buildCsr(3, edges, true);
    EXPECT_EQ(g.numNodes(), 3u);
    EXPECT_EQ(g.numEdges(), 6u);
    EXPECT_EQ(g.degree(0), 2u);
    EXPECT_EQ(g.degree(1), 2u);
    EXPECT_EQ(g.degree(2), 2u);
    EXPECT_TRUE(edges.empty()) << "edge list should be consumed";
}

TEST(Csr, BuildDirected)
{
    std::vector<Edge> edges = {{0, 1}, {0, 2}, {2, 1}};
    const CsrGraph g = buildCsr(3, edges, false);
    EXPECT_EQ(g.numEdges(), 3u);
    EXPECT_EQ(g.degree(0), 2u);
    EXPECT_EQ(g.degree(1), 0u);
    EXPECT_EQ(g.degree(2), 1u);
}

TEST(Csr, NeighborsSpanIsCorrect)
{
    std::vector<Edge> edges = {{0, 1}, {0, 2}};
    const CsrGraph g = buildCsr(3, edges, false);
    const auto nbrs = g.neighbors(0);
    ASSERT_EQ(nbrs.size(), 2u);
    EXPECT_EQ(nbrs[0], 1u);
    EXPECT_EQ(nbrs[1], 2u);
    EXPECT_TRUE(g.neighbors(1).empty());
}

TEST(Csr, SelfLoopAndIsolatedNode)
{
    std::vector<Edge> edges = {{1, 1}};
    const CsrGraph g = buildCsr(3, edges, true);
    EXPECT_EQ(g.degree(1), 2u); // self loop symmetrized twice
    EXPECT_EQ(g.degree(0), 0u);
    EXPECT_EQ(g.degree(2), 0u);
}

TEST(Csr, WeightsParallelToTargets)
{
    std::vector<u64> offsets = {0, 2, 2};
    std::vector<NodeId> targets = {1, 0};
    std::vector<u32> weights = {5, 9};
    const CsrGraph g(std::move(offsets), std::move(targets),
                     std::move(weights));
    ASSERT_TRUE(g.hasWeights());
    const auto w = g.edgeWeights(0);
    EXPECT_EQ(w[0], 5u);
    EXPECT_EQ(w[1], 9u);
}

TEST(Csr, BytesAccountsAllArrays)
{
    std::vector<Edge> edges = {{0, 1}};
    const CsrGraph g = buildCsr(2, edges, true);
    EXPECT_EQ(g.bytes(), 3 * sizeof(u64) + 2 * sizeof(NodeId));
}

TEST(Csr, EmptyGraph)
{
    std::vector<Edge> edges;
    const CsrGraph g = buildCsr(1, edges, true);
    EXPECT_EQ(g.numNodes(), 1u);
    EXPECT_EQ(g.numEdges(), 0u);
}
