#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <string>

#include "util/thread_pool.hpp"

using namespace pccsim;
using namespace pccsim::util;

TEST(ThreadPool, HardwareJobsIsAtLeastOne)
{
    EXPECT_GE(ThreadPool::hardwareJobs(), 1u);
}

TEST(ThreadPool, DefaultSizeMatchesHardware)
{
    ThreadPool pool;
    EXPECT_EQ(pool.size(), ThreadPool::hardwareJobs());
}

TEST(ThreadPool, ParallelMapPreservesInputOrder)
{
    ThreadPool pool(4);
    std::vector<int> items(100);
    std::iota(items.begin(), items.end(), 0);
    const auto out =
        pool.parallelMap(items, [](const int &x) { return x * x; });
    ASSERT_EQ(out.size(), items.size());
    for (size_t i = 0; i < items.size(); ++i)
        EXPECT_EQ(out[i], items[i] * items[i]) << i;
}

TEST(ThreadPool, SingleWorkerRunsInline)
{
    ThreadPool pool(1);
    const std::thread::id caller = std::this_thread::get_id();
    std::vector<int> items{1, 2, 3};
    const auto out = pool.parallelMap(items, [&](const int &x) {
        EXPECT_EQ(std::this_thread::get_id(), caller);
        return x + 1;
    });
    EXPECT_EQ(out, (std::vector<int>{2, 3, 4}));
}

TEST(ThreadPool, MatchesSerialLoopExactly)
{
    ThreadPool pool(8);
    std::vector<u64> items(257);
    std::iota(items.begin(), items.end(), 1);
    auto fn = [](const u64 &x) {
        return static_cast<u64>(x * 2654435761ull % 1000003);
    };
    std::vector<u64> serial;
    serial.reserve(items.size());
    for (const u64 &x : items)
        serial.push_back(fn(x));
    EXPECT_EQ(pool.parallelMap(items, fn), serial);
}

TEST(ThreadPool, AllTasksRunExactlyOnce)
{
    ThreadPool pool(4);
    std::atomic<int> calls{0};
    std::vector<int> items(64, 0);
    pool.parallelMap(items, [&](const int &) {
        calls.fetch_add(1, std::memory_order_relaxed);
        return 0;
    });
    EXPECT_EQ(calls.load(), 64);
}

TEST(ThreadPool, FirstExceptionPropagates)
{
    ThreadPool pool(4);
    std::vector<int> items(32);
    std::iota(items.begin(), items.end(), 0);
    EXPECT_THROW(pool.parallelMap(items,
                                  [](const int &x) {
                                      if (x == 13)
                                          throw std::runtime_error("13");
                                      return x;
                                  }),
                 std::runtime_error);
}

TEST(ThreadPool, EmptyInputYieldsEmptyOutput)
{
    ThreadPool pool(4);
    const std::vector<int> none;
    EXPECT_TRUE(
        pool.parallelMap(none, [](const int &x) { return x; }).empty());
}

TEST(ThreadPool, PostedTasksAllComplete)
{
    std::atomic<int> done{0};
    {
        ThreadPool pool(3);
        for (int i = 0; i < 50; ++i)
            pool.post([&] { done.fetch_add(1); });
        // Destructor drains the queue before joining.
    }
    EXPECT_EQ(done.load(), 50);
}
