#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <string>

#include "util/thread_pool.hpp"

using namespace pccsim;
using namespace pccsim::util;

TEST(ThreadPool, HardwareJobsIsAtLeastOne)
{
    EXPECT_GE(ThreadPool::hardwareJobs(), 1u);
}

TEST(ThreadPool, DefaultSizeMatchesHardware)
{
    ThreadPool pool;
    EXPECT_EQ(pool.size(), ThreadPool::hardwareJobs());
}

TEST(ThreadPool, ParallelMapPreservesInputOrder)
{
    ThreadPool pool(4);
    std::vector<int> items(100);
    std::iota(items.begin(), items.end(), 0);
    const auto out =
        pool.parallelMap(items, [](const int &x) { return x * x; });
    ASSERT_EQ(out.size(), items.size());
    for (size_t i = 0; i < items.size(); ++i)
        EXPECT_EQ(out[i], items[i] * items[i]) << i;
}

TEST(ThreadPool, SingleWorkerRunsInline)
{
    ThreadPool pool(1);
    const std::thread::id caller = std::this_thread::get_id();
    std::vector<int> items{1, 2, 3};
    const auto out = pool.parallelMap(items, [&](const int &x) {
        EXPECT_EQ(std::this_thread::get_id(), caller);
        return x + 1;
    });
    EXPECT_EQ(out, (std::vector<int>{2, 3, 4}));
}

TEST(ThreadPool, MatchesSerialLoopExactly)
{
    ThreadPool pool(8);
    std::vector<u64> items(257);
    std::iota(items.begin(), items.end(), 1);
    auto fn = [](const u64 &x) {
        return static_cast<u64>(x * 2654435761ull % 1000003);
    };
    std::vector<u64> serial;
    serial.reserve(items.size());
    for (const u64 &x : items)
        serial.push_back(fn(x));
    EXPECT_EQ(pool.parallelMap(items, fn), serial);
}

TEST(ThreadPool, AllTasksRunExactlyOnce)
{
    ThreadPool pool(4);
    std::atomic<int> calls{0};
    std::vector<int> items(64, 0);
    pool.parallelMap(items, [&](const int &) {
        calls.fetch_add(1, std::memory_order_relaxed);
        return 0;
    });
    EXPECT_EQ(calls.load(), 64);
}

TEST(ThreadPool, FirstExceptionPropagates)
{
    ThreadPool pool(4);
    std::vector<int> items(32);
    std::iota(items.begin(), items.end(), 0);
    EXPECT_THROW(pool.parallelMap(items,
                                  [](const int &x) {
                                      if (x == 13)
                                          throw std::runtime_error("13");
                                      return x;
                                  }),
                 std::runtime_error);
}

namespace {

/** Domain error a caller wants to keep catching by type. */
struct DomainError : std::runtime_error
{
    using std::runtime_error::runtime_error;
};

} // namespace

TEST(ThreadPool, SingleFailureRethrowsOriginalType)
{
    // One failing task must surface as its own exception type, so
    // domain handlers (oracle divergences, cancellations) keep
    // working through parallelMap unchanged.
    ThreadPool pool(4);
    std::vector<int> items(32);
    std::iota(items.begin(), items.end(), 0);
    EXPECT_THROW(pool.parallelMap(items,
                                  [](const int &x) {
                                      if (x == 13)
                                          throw DomainError("13");
                                      return x;
                                  }),
                 DomainError);
}

TEST(ThreadPool, AggregatesEveryFailureWithIndices)
{
    ThreadPool pool(4);
    std::vector<int> items(16);
    std::iota(items.begin(), items.end(), 0);
    std::atomic<int> calls{0};
    try {
        pool.parallelMap(items, [&](const int &x) {
            calls.fetch_add(1, std::memory_order_relaxed);
            if (x % 4 == 1)
                throw DomainError("item " + std::to_string(x));
            return x;
        });
        FAIL() << "expected ParallelError";
    } catch (const ParallelError &e) {
        // All tasks ran despite the failures (no early abort).
        EXPECT_EQ(calls.load(), 16);
        ASSERT_EQ(e.failures().size(), 4u);
        // Ordered by item index, each carrying its own exception.
        const size_t expected[] = {1, 5, 9, 13};
        for (size_t i = 0; i < 4; ++i) {
            EXPECT_EQ(e.failures()[i].index, expected[i]);
            try {
                std::rethrow_exception(e.failures()[i].error);
            } catch (const DomainError &inner) {
                EXPECT_EQ(std::string(inner.what()),
                          "item " + std::to_string(expected[i]));
            }
        }
        const std::string what = e.what();
        EXPECT_NE(what.find("4 of 16"), std::string::npos) << what;
        EXPECT_NE(what.find("item 1"), std::string::npos) << what;
    }
}

TEST(ThreadPool, InlineFailureSemanticsMatchPooled)
{
    // One worker runs the map inline on the caller; the aggregation
    // contract must be identical to the pooled path.
    ThreadPool pool(1);
    std::vector<int> items{0, 1, 2, 3};
    std::atomic<int> calls{0};
    try {
        pool.parallelMap(items, [&](const int &x) {
            calls.fetch_add(1, std::memory_order_relaxed);
            if (x >= 2)
                throw DomainError(std::to_string(x));
            return x;
        });
        FAIL() << "expected ParallelError";
    } catch (const ParallelError &e) {
        EXPECT_EQ(calls.load(), 4);
        ASSERT_EQ(e.failures().size(), 2u);
        EXPECT_EQ(e.failures()[0].index, 2u);
        EXPECT_EQ(e.failures()[1].index, 3u);
    }
}

TEST(ThreadPool, EmptyInputYieldsEmptyOutput)
{
    ThreadPool pool(4);
    const std::vector<int> none;
    EXPECT_TRUE(
        pool.parallelMap(none, [](const int &x) { return x; }).empty());
}

TEST(ThreadPool, PostedTasksAllComplete)
{
    std::atomic<int> done{0};
    {
        ThreadPool pool(3);
        for (int i = 0; i < 50; ++i)
            pool.post([&] { done.fetch_add(1); });
        // Destructor drains the queue before joining.
    }
    EXPECT_EQ(done.load(), 50);
}
