#include <gtest/gtest.h>

#include <vector>

#include "util/generator.hpp"

using namespace pccsim;

namespace {

Generator<int>
countTo(int n)
{
    for (int i = 0; i < n; ++i)
        co_yield i;
}

Generator<int>
empty()
{
    co_return;
}

} // namespace

TEST(Generator, YieldsAllValuesInOrder)
{
    auto gen = countTo(5);
    std::vector<int> seen;
    while (gen.next())
        seen.push_back(gen.value());
    EXPECT_EQ(seen, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(Generator, EmptyGeneratorNeverYields)
{
    auto gen = empty();
    EXPECT_FALSE(gen.next());
    EXPECT_FALSE(gen.next());
}

TEST(Generator, NextAfterExhaustionIsFalse)
{
    auto gen = countTo(1);
    EXPECT_TRUE(gen.next());
    EXPECT_FALSE(gen.next());
    EXPECT_FALSE(gen.next());
}

TEST(Generator, MoveTransfersOwnership)
{
    auto gen = countTo(3);
    EXPECT_TRUE(gen.next());
    Generator<int> other = std::move(gen);
    EXPECT_FALSE(gen.valid());
    EXPECT_TRUE(other.next());
    EXPECT_EQ(other.value(), 1);
}

TEST(Generator, DefaultConstructedIsInvalid)
{
    Generator<int> gen;
    EXPECT_FALSE(gen.valid());
    EXPECT_FALSE(gen.next());
}

TEST(Generator, InterleavedGeneratorsAreIndependent)
{
    auto a = countTo(3);
    auto b = countTo(3);
    EXPECT_TRUE(a.next());
    EXPECT_TRUE(b.next());
    EXPECT_TRUE(a.next());
    EXPECT_EQ(a.value(), 1);
    EXPECT_EQ(b.value(), 0);
}

TEST(Generator, LazyBodyRunsOnFirstNext)
{
    bool started = false;
    auto make = [&]() -> Generator<int> {
        started = true;
        co_yield 1;
    };
    auto gen = make();
    EXPECT_FALSE(started);
    gen.next();
    EXPECT_TRUE(started);
}
