#include <gtest/gtest.h>

#include "sim/results.hpp"
#include "util/stats.hpp"

using namespace pccsim;

TEST(Counter, StartsAtZeroAndIncrements)
{
    Counter c;
    EXPECT_EQ(c.value(), 0u);
    ++c;
    c += 4;
    EXPECT_EQ(c.value(), 5u);
    c.reset();
    EXPECT_EQ(c.value(), 0u);
}

TEST(StatGroup, CounterPointersAreStable)
{
    StatGroup group("g");
    Counter &a = group.counter("a");
    ++a;
    // Force more insertions, then check the original reference.
    for (int i = 0; i < 100; ++i)
        group.counter("x" + std::to_string(i));
    ++a;
    EXPECT_EQ(group.get("a"), 2u);
}

TEST(StatGroup, GetUnknownIsZero)
{
    StatGroup group;
    EXPECT_EQ(group.get("missing"), 0u);
}

TEST(StatGroup, AllSortedByName)
{
    StatGroup group;
    group.counter("b") += 2;
    group.counter("a") += 1;
    const auto all = group.all();
    ASSERT_EQ(all.size(), 2u);
    EXPECT_EQ(all[0].first, "a");
    EXPECT_EQ(all[1].first, "b");
}

TEST(StatGroup, ResetAllZeroes)
{
    StatGroup group;
    group.counter("a") += 7;
    group.resetAll();
    EXPECT_EQ(group.get("a"), 0u);
}

TEST(Ratio, HandlesZeroDenominator)
{
    EXPECT_DOUBLE_EQ(ratio(5, 0), 0.0);
    EXPECT_DOUBLE_EQ(ratio(1, 2), 0.5);
    EXPECT_DOUBLE_EQ(percent(1, 4), 25.0);
}

TEST(Percent, HandlesZeroDenominator)
{
    EXPECT_DOUBLE_EQ(percent(5, 0), 0.0);
    EXPECT_DOUBLE_EQ(percent(0, 0), 0.0);
}

TEST(Speedup, DegenerateResultsReturnZeroInsteadOfThrowing)
{
    const sim::RunResult empty;
    sim::RunResult one_job;
    one_job.jobs.emplace_back();
    one_job.jobs[0].wall_cycles = 100;

    // Empty baseline or run: no job to compare, not an exception.
    EXPECT_DOUBLE_EQ(sim::speedup(empty, one_job), 0.0);
    EXPECT_DOUBLE_EQ(sim::speedup(one_job, empty), 0.0);
    // Job index out of range on either side.
    EXPECT_DOUBLE_EQ(sim::speedup(one_job, one_job, 5), 0.0);

    // Zero-cycle run (division by zero inside ratio) is also 0.
    sim::RunResult zero_cycles;
    zero_cycles.jobs.emplace_back();
    EXPECT_DOUBLE_EQ(sim::speedup(one_job, zero_cycles), 0.0);

    // The healthy path still computes a ratio.
    sim::RunResult faster;
    faster.jobs.emplace_back();
    faster.jobs[0].wall_cycles = 50;
    EXPECT_DOUBLE_EQ(sim::speedup(one_job, faster), 2.0);
}

TEST(Geomean, MatchesHandComputation)
{
    EXPECT_DOUBLE_EQ(geomean({}), 1.0);
    EXPECT_DOUBLE_EQ(geomean({2.0}), 2.0);
    EXPECT_NEAR(geomean({1.0, 4.0}), 2.0, 1e-12);
    EXPECT_NEAR(geomean({2.0, 2.0, 2.0}), 2.0, 1e-12);
}
