#include <gtest/gtest.h>

#include "util/stats.hpp"

using namespace pccsim;

TEST(Counter, StartsAtZeroAndIncrements)
{
    Counter c;
    EXPECT_EQ(c.value(), 0u);
    ++c;
    c += 4;
    EXPECT_EQ(c.value(), 5u);
    c.reset();
    EXPECT_EQ(c.value(), 0u);
}

TEST(StatGroup, CounterPointersAreStable)
{
    StatGroup group("g");
    Counter &a = group.counter("a");
    ++a;
    // Force more insertions, then check the original reference.
    for (int i = 0; i < 100; ++i)
        group.counter("x" + std::to_string(i));
    ++a;
    EXPECT_EQ(group.get("a"), 2u);
}

TEST(StatGroup, GetUnknownIsZero)
{
    StatGroup group;
    EXPECT_EQ(group.get("missing"), 0u);
}

TEST(StatGroup, AllSortedByName)
{
    StatGroup group;
    group.counter("b") += 2;
    group.counter("a") += 1;
    const auto all = group.all();
    ASSERT_EQ(all.size(), 2u);
    EXPECT_EQ(all[0].first, "a");
    EXPECT_EQ(all[1].first, "b");
}

TEST(StatGroup, ResetAllZeroes)
{
    StatGroup group;
    group.counter("a") += 7;
    group.resetAll();
    EXPECT_EQ(group.get("a"), 0u);
}

TEST(Ratio, HandlesZeroDenominator)
{
    EXPECT_DOUBLE_EQ(ratio(5, 0), 0.0);
    EXPECT_DOUBLE_EQ(ratio(1, 2), 0.5);
    EXPECT_DOUBLE_EQ(percent(1, 4), 25.0);
}

TEST(Geomean, MatchesHandComputation)
{
    EXPECT_DOUBLE_EQ(geomean({}), 1.0);
    EXPECT_DOUBLE_EQ(geomean({2.0}), 2.0);
    EXPECT_NEAR(geomean({1.0, 4.0}), 2.0, 1e-12);
    EXPECT_NEAR(geomean({2.0, 2.0, 2.0}), 2.0, 1e-12);
}
