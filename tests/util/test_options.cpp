#include <gtest/gtest.h>

#include <vector>

#include "util/options.hpp"

using namespace pccsim;

namespace {

Options
parse(std::vector<const char *> args)
{
    args.insert(args.begin(), "prog");
    return Options(static_cast<int>(args.size()),
                   const_cast<char **>(args.data()));
}

} // namespace

TEST(Options, KeyEqualsValue)
{
    auto opts = parse({"--scale=small", "--cap=4.5"});
    EXPECT_EQ(opts.get("scale"), "small");
    EXPECT_DOUBLE_EQ(opts.getDouble("cap", 0), 4.5);
}

TEST(Options, KeySpaceValue)
{
    auto opts = parse({"--scale", "medium"});
    EXPECT_EQ(opts.get("scale"), "medium");
}

TEST(Options, BareFlag)
{
    auto opts = parse({"--verbose"});
    EXPECT_TRUE(opts.has("verbose"));
    EXPECT_TRUE(opts.getBool("verbose"));
    EXPECT_FALSE(opts.getBool("quiet"));
}

TEST(Options, BoolValues)
{
    EXPECT_TRUE(parse({"--x=true"}).getBool("x"));
    EXPECT_TRUE(parse({"--x=1"}).getBool("x"));
    EXPECT_TRUE(parse({"--x=on"}).getBool("x"));
    EXPECT_FALSE(parse({"--x=0"}).getBool("x"));
}

TEST(Options, IntFallbackAndParsing)
{
    auto opts = parse({"--n=42"});
    EXPECT_EQ(opts.getInt("n", 0), 42);
    EXPECT_EQ(opts.getInt("m", 7), 7);
}

TEST(Options, HexIntegers)
{
    auto opts = parse({"--addr=0x10"});
    EXPECT_EQ(opts.getInt("addr", 0), 16);
}

TEST(Options, PositionalCollected)
{
    auto opts = parse({"one", "--k=v", "two"});
    ASSERT_EQ(opts.positional().size(), 2u);
    EXPECT_EQ(opts.positional()[0], "one");
    EXPECT_EQ(opts.positional()[1], "two");
}

TEST(Options, FallbackWhenMissing)
{
    auto opts = parse({});
    EXPECT_EQ(opts.get("nothing", "dflt"), "dflt");
    EXPECT_DOUBLE_EQ(opts.getDouble("nothing", 1.5), 1.5);
}
