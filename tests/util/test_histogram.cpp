#include <gtest/gtest.h>

#include "util/histogram.hpp"

using namespace pccsim;

TEST(Log2Histogram, BucketBoundaries)
{
    EXPECT_EQ(Log2Histogram::bucketOf(0), 0u);
    EXPECT_EQ(Log2Histogram::bucketOf(1), 1u);
    EXPECT_EQ(Log2Histogram::bucketOf(2), 2u);
    EXPECT_EQ(Log2Histogram::bucketOf(3), 2u);
    EXPECT_EQ(Log2Histogram::bucketOf(4), 3u);
    EXPECT_EQ(Log2Histogram::bucketOf(1024), 11u);
}

TEST(Log2Histogram, BucketLowInvertsBucketOf)
{
    for (unsigned i = 0; i < 64; ++i) {
        const u64 low = Log2Histogram::bucketLow(i);
        EXPECT_EQ(Log2Histogram::bucketOf(low), i);
    }
}

TEST(Log2Histogram, CountsAndMean)
{
    Log2Histogram h;
    h.add(0);
    h.add(4);
    h.add(4);
    EXPECT_EQ(h.total(), 3u);
    EXPECT_EQ(h.count(0), 1u);
    EXPECT_EQ(h.count(3), 2u);
    EXPECT_NEAR(h.mean(), 8.0 / 3.0, 1e-12);
}

TEST(Log2Histogram, WeightedAdd)
{
    Log2Histogram h;
    h.add(8, 5);
    EXPECT_EQ(h.total(), 5u);
    EXPECT_EQ(h.count(4), 5u);
}

TEST(Log2Histogram, QuantileRoughlyCorrect)
{
    Log2Histogram h;
    for (u64 v = 0; v < 100; ++v)
        h.add(v);
    // The median of 0..99 lives in the bucket containing ~50.
    const u64 median_low = h.quantile(0.5);
    EXPECT_GE(median_low, 16u);
    EXPECT_LE(median_low, 64u);
}

TEST(Log2Histogram, ResetClears)
{
    Log2Histogram h;
    h.add(5);
    h.reset();
    EXPECT_EQ(h.total(), 0u);
    EXPECT_DOUBLE_EQ(h.mean(), 0.0);
}

TEST(Log2Histogram, NonEmptyListsBuckets)
{
    Log2Histogram h;
    h.add(1);
    h.add(1000);
    const auto buckets = h.nonEmpty();
    ASSERT_EQ(buckets.size(), 2u);
    EXPECT_EQ(buckets[0].first, 1u);
    EXPECT_EQ(buckets[1].first, 512u);
}
