#include <gtest/gtest.h>

#include "util/table.hpp"

using namespace pccsim;

TEST(Table, RendersAlignedColumns)
{
    Table t({"name", "value"});
    t.row({"a", "1"});
    t.row({"longer", "2"});
    const std::string out = t.str();
    EXPECT_NE(out.find("name"), std::string::npos);
    EXPECT_NE(out.find("longer"), std::string::npos);
    EXPECT_NE(out.find("------"), std::string::npos);
}

TEST(Table, CsvHasNoPadding)
{
    Table t({"a", "b"});
    t.row({"1", "2"});
    EXPECT_EQ(t.csv(), "a,b\n1,2\n");
}

TEST(Table, FmtPrecision)
{
    EXPECT_EQ(Table::fmt(1.23456, 2), "1.23");
    EXPECT_EQ(Table::fmt(2.0, 0), "2");
    EXPECT_EQ(Table::pct(12.345, 1), "12.3%");
}

TEST(Table, RowCountTracked)
{
    Table t({"x"});
    EXPECT_EQ(t.rows(), 0u);
    t.row({"1"});
    EXPECT_EQ(t.rows(), 1u);
}

TEST(TableDeathTest, MismatchedRowWidthPanics)
{
    Table t({"a", "b"});
    EXPECT_DEATH(t.row({"only-one"}), "table row width");
}
