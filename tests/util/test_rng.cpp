#include <gtest/gtest.h>

#include <cmath>
#include <map>

#include "util/rng.hpp"

using namespace pccsim;

TEST(Rng, DeterministicAcrossInstances)
{
    Rng a(123);
    Rng b(123);
    for (int i = 0; i < 1000; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiverge)
{
    Rng a(1);
    Rng b(2);
    int same = 0;
    for (int i = 0; i < 100; ++i)
        same += a.next() == b.next();
    EXPECT_LT(same, 3);
}

TEST(Rng, BelowStaysInRange)
{
    Rng rng(7);
    for (u64 bound : {1ull, 2ull, 3ull, 10ull, 1000ull, 1ull << 40}) {
        for (int i = 0; i < 200; ++i)
            EXPECT_LT(rng.below(bound), bound);
    }
}

TEST(Rng, RangeInclusive)
{
    Rng rng(7);
    bool saw_lo = false;
    bool saw_hi = false;
    for (int i = 0; i < 2000; ++i) {
        const u64 v = rng.range(5, 8);
        EXPECT_GE(v, 5u);
        EXPECT_LE(v, 8u);
        saw_lo |= v == 5;
        saw_hi |= v == 8;
    }
    EXPECT_TRUE(saw_lo);
    EXPECT_TRUE(saw_hi);
}

TEST(Rng, UniformInUnitInterval)
{
    Rng rng(9);
    double sum = 0;
    const int n = 100000;
    for (int i = 0; i < n; ++i) {
        const double u = rng.uniform();
        ASSERT_GE(u, 0.0);
        ASSERT_LT(u, 1.0);
        sum += u;
    }
    EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(Rng, BelowIsRoughlyUniform)
{
    Rng rng(11);
    constexpr u64 buckets = 16;
    u64 counts[buckets] = {};
    const int n = 160000;
    for (int i = 0; i < n; ++i)
        ++counts[rng.below(buckets)];
    for (u64 c : counts) {
        EXPECT_GT(c, n / buckets * 0.9);
        EXPECT_LT(c, n / buckets * 1.1);
    }
}

TEST(Rng, ChanceExtremes)
{
    Rng rng(13);
    for (int i = 0; i < 100; ++i) {
        EXPECT_FALSE(rng.chance(0.0));
        EXPECT_TRUE(rng.chance(1.0));
    }
}

TEST(SplitMix, KnownSequenceIsStable)
{
    u64 state = 0;
    const u64 first = splitmix64(state);
    u64 state2 = 0;
    EXPECT_EQ(first, splitmix64(state2));
    EXPECT_NE(splitmix64(state), first);
}

TEST(Zipf, SamplesInRange)
{
    Rng rng(17);
    ZipfSampler zipf(1000, 0.8);
    for (int i = 0; i < 10000; ++i)
        EXPECT_LT(zipf.sample(rng), 1000u);
}

TEST(Zipf, SkewFavorsSmallValues)
{
    Rng rng(19);
    ZipfSampler zipf(100000, 0.9);
    u64 low = 0;
    const int n = 50000;
    for (int i = 0; i < n; ++i)
        low += zipf.sample(rng) < 1000 ? 1 : 0;
    // Under a 0.9-skew Zipf over 100k items, the first 1% of items
    // should draw far more than 1% of samples.
    EXPECT_GT(low, n / 10);
}

TEST(Zipf, ExponentOneSupported)
{
    Rng rng(21);
    ZipfSampler zipf(1000, 1.0);
    for (int i = 0; i < 1000; ++i)
        EXPECT_LT(zipf.sample(rng), 1000u);
}

class ZipfSweep : public ::testing::TestWithParam<double>
{
};

TEST_P(ZipfSweep, MonotoneRankPopularity)
{
    Rng rng(23);
    ZipfSampler zipf(10000, GetParam());
    std::map<u64, u64> counts;
    for (int i = 0; i < 100000; ++i)
        ++counts[zipf.sample(rng) / 2500];
    // Quartile popularity decreases with rank.
    EXPECT_GT(counts[0], counts[1]);
    EXPECT_GT(counts[1], counts[3]);
}

INSTANTIATE_TEST_SUITE_P(Exponents, ZipfSweep,
                         ::testing::Values(0.6, 0.8, 0.99, 1.2));
