/**
 * The crossed-stressor determinism matrix: cross-layer invariant
 * checking x fault storms x telemetry collection, run serially and
 * with --jobs=4, must agree byte-for-byte while shootdown storms,
 * fragmentation shocks, and pressure reclaim all fire mid-run. Each
 * stressor is deterministic alone; this locks in that their
 * *composition* stays deterministic too (telemetry compares by
 * content, so distinct report objects must carry identical series).
 */

#include <gtest/gtest.h>

#include "sim/runner.hpp"

using namespace pccsim;
using namespace pccsim::sim;

namespace {

ExperimentSpec
stormSpec(const std::string &workload, PolicyKind policy)
{
    ExperimentSpec spec;
    spec.workload.name = workload;
    spec.workload.scale = workloads::Scale::Ci;
    spec.policy = policy;
    spec.cap_percent = 25.0;
    spec.frag_fraction = 0.3;
    // Every stressor at once: denied allocations (which drive the
    // pressure reclaimer), failing/aborting compactions, shootdown
    // storms, and scheduled fragmentation shocks...
    spec.faults.alloc_fail_base = 0.02;
    spec.faults.alloc_fail_huge = 0.3;
    spec.faults.compaction_fail = 0.25;
    spec.faults.compaction_partial = 0.25;
    spec.faults.shootdown_storm = 0.1;
    spec.faults.shock_intervals = {2, 5, 9};
    // ...while the invariant checker sweeps every interval and the
    // telemetry subsystem records series, traces, and the audit log.
    spec.check_invariants = true;
    spec.telemetry.enabled = true;
    spec.telemetry.trace_events = true;
    spec.telemetry.audit = true;
    spec.pcc_policy.demote_on_pressure = true;
    return spec;
}

} // namespace

TEST(ResilienceMatrix, SerialAndParallelAgreeUnderFullStorm)
{
    std::vector<ExperimentSpec> matrix;
    for (PolicyKind policy : {PolicyKind::LinuxThp, PolicyKind::HawkEye,
                              PolicyKind::Pcc}) {
        matrix.push_back(stormSpec("bfs", policy));
        matrix.push_back(stormSpec("dedup", policy));
    }

    Runner serial(1);
    Runner parallel(4);
    const auto a = serial.runMany(matrix);
    const auto b = parallel.runMany(matrix);
    ASSERT_EQ(a.size(), matrix.size());
    for (size_t i = 0; i < matrix.size(); ++i) {
        ASSERT_TRUE(a[i] && b[i]) << i;
        EXPECT_TRUE(*a[i] == *b[i])
            << "storm spec " << i << " diverged across job counts";
    }
}

TEST(ResilienceMatrix, EveryStressorActuallyFired)
{
    // The matrix above proves nothing if the stressors silently never
    // trigger; pin each one's footprint in the resilience counters.
    Runner runner(1);
    auto spec = stormSpec("bfs", PolicyKind::Pcc);
    // Storm every shootdown: at ci scale there are few of them, and a
    // 10% coin can legitimately come up tails for all.
    spec.faults.shootdown_storm = 1.0;
    const auto result = runner.run(spec);
    const auto &res = result->resilience;
    EXPECT_GT(result->shootdowns, 0u);
    EXPECT_GT(res.injected_alloc_fails, 0u);
    EXPECT_GT(res.shootdown_storms, 0u);
    EXPECT_GT(res.frag_shocks, 0u);
    EXPECT_GT(res.reclaim_events, 0u);
    EXPECT_GT(res.invariant_checks, 0u);
    EXPECT_EQ(res.invariant_failures, 0u)
        << res.first_invariant_failure;
    ASSERT_TRUE(result->telemetry != nullptr);
}

TEST(ResilienceMatrix, StormSurvivesTheOracle)
{
    // The reference model must track the real system even while every
    // degradation path fires: a fault storm is exactly where a stale
    // translation would hide.
    auto spec = stormSpec("bfs", PolicyKind::Pcc);
    spec.telemetry = telemetry::TelemetryConfig{};
    spec.oracle.enabled = true;
    spec.oracle.sample_every = 1;
    EXPECT_NO_THROW(runOne(spec));
}
