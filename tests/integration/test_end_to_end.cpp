#include <gtest/gtest.h>

#include "sim/experiment.hpp"

using namespace pccsim;
using namespace pccsim::sim;

namespace {

ExperimentSpec
ciSpec(const std::string &workload, PolicyKind policy)
{
    ExperimentSpec spec;
    spec.workload.name = workload;
    spec.workload.scale = workloads::Scale::Ci;
    spec.policy = policy;
    return spec;
}

} // namespace

class EndToEnd : public ::testing::TestWithParam<std::string>
{
};

TEST_P(EndToEnd, AllPoliciesCompleteOnEveryWorkload)
{
    for (PolicyKind policy :
         {PolicyKind::Base, PolicyKind::AllHuge, PolicyKind::LinuxThp,
          PolicyKind::HawkEye, PolicyKind::Pcc}) {
        ExperimentSpec spec = ciSpec(GetParam(), policy);
        spec.frag_fraction = policy == PolicyKind::AllHuge ? 0.0 : 0.5;
        const RunResult result = runOne(spec);
        ASSERT_GT(result.job().accesses, 0u)
            << GetParam() << " under " << to_string(policy);
        ASSERT_GT(result.job().wall_cycles, 0u);
        // The TLB never sees more walks than accesses.
        ASSERT_LE(result.job().walks, result.job().tlb_accesses);
    }
}

INSTANTIATE_TEST_SUITE_P(
    Table1, EndToEnd,
    ::testing::ValuesIn(workloads::allWorkloadNames()));

TEST(EndToEndInvariants, PromotionNeverExceedsCap)
{
    for (double cap : {1.0, 4.0, 16.0}) {
        ExperimentSpec spec = ciSpec("bfs", PolicyKind::Pcc);
        spec.cap_percent = cap;
        const RunResult result = runOne(spec);
        const u64 cap_bytes = mem::alignUp(
            static_cast<u64>(cap / 100.0 *
                             result.job().footprint_bytes),
            mem::PageSize::Huge2M);
        EXPECT_LE(result.job().promoted_bytes, cap_bytes);
    }
}

TEST(EndToEndInvariants, HugeCoverageReducesWalks)
{
    ExperimentSpec base = ciSpec("canneal", PolicyKind::Base);
    base.cap_percent = 0.0;
    ExperimentSpec pcc = ciSpec("canneal", PolicyKind::Pcc);
    pcc.cap_percent = 50.0;
    const RunResult b = runOne(base);
    const RunResult p = runOne(pcc);
    EXPECT_LT(p.job().walks, b.job().walks);
}

TEST(EndToEndInvariants, BackgroundWorkIsAccounted)
{
    ExperimentSpec spec = ciSpec("bfs", PolicyKind::Pcc);
    spec.frag_fraction = 0.9;
    const RunResult result = runOne(spec);
    if (result.job().promotions > 0 && result.compactions > 0)
        EXPECT_GT(result.os_background_cycles, 0u);
}

TEST(EndToEndInvariants, SortedInputsStillComplete)
{
    ExperimentSpec spec = ciSpec("pr", PolicyKind::Pcc);
    spec.workload.dbg_sorted = true;
    const RunResult result = runOne(spec);
    EXPECT_GT(result.job().accesses, 0u);
}

TEST(EndToEndInvariants, NetworksVariantsComplete)
{
    for (auto kind : {graph::NetworkKind::Social,
                      graph::NetworkKind::Web}) {
        ExperimentSpec spec = ciSpec("bfs", PolicyKind::Base);
        spec.workload.network = kind;
        const RunResult result = runOne(spec);
        EXPECT_GT(result.job().accesses, 0u);
    }
}
