/**
 * @file
 * Qualitative acceptance tests for the paper's headline results
 * (DESIGN.md "Result-shape acceptance criteria"). These run at CI
 * scale, so thresholds are deliberately loose: they assert orderings
 * and directions, not absolute numbers.
 */

#include <gtest/gtest.h>

#include "sim/experiment.hpp"

using namespace pccsim;
using namespace pccsim::sim;

namespace {

ExperimentSpec
ciSpec(const std::string &workload, PolicyKind policy)
{
    ExperimentSpec spec;
    spec.workload.name = workload;
    spec.workload.scale = workloads::Scale::Ci;
    spec.policy = policy;
    return spec;
}

RunResult
baselineFor(const std::string &workload)
{
    ExperimentSpec spec = ciSpec(workload, PolicyKind::Base);
    spec.cap_percent = 0.0;
    return runOne(spec);
}

} // namespace

TEST(PaperShapes, Fig1GraphAppsAreTlbBound)
{
    // Graph workloads show double-digit miss rates at 4KB.
    for (const auto &name : workloads::graphWorkloadNames()) {
        const auto base = baselineFor(name);
        EXPECT_GT(base.job().tlbMissPercent(), 8.0) << name;
    }
}

TEST(PaperShapes, Fig1DedupAndMcfAreInsensitive)
{
    for (const std::string name : {"dedup", "mcf"}) {
        const auto base = baselineFor(name);
        EXPECT_LT(base.job().tlbMissPercent(), 6.0) << name;
        const auto huge = runOne(ciSpec(name, PolicyKind::AllHuge));
        EXPECT_LT(speedup(base, huge), 1.15) << name;
    }
}

TEST(PaperShapes, Fig1HugePagesHelpTlbBoundApps)
{
    for (const std::string name : {"bfs", "canneal"}) {
        const auto base = baselineFor(name);
        const auto huge = runOne(ciSpec(name, PolicyKind::AllHuge));
        EXPECT_GT(speedup(base, huge), 1.15) << name;
        EXPECT_LT(huge.job().tlbMissPercent(),
                  base.job().tlbMissPercent() / 2) << name;
    }
}

TEST(PaperShapes, Fig1GreedyThpDisappointsUnderFragmentation)
{
    const auto base = baselineFor("bfs");
    ExperimentSpec thp = ciSpec("bfs", PolicyKind::LinuxThp);
    thp.frag_fraction = 0.5;
    // Pin khugepaged to the paper's scan-to-footprint ratio explicitly:
    // CI footprints are so small that the auto floor (64 pages) would
    // otherwise let it cover the whole heap within one run.
    thp.tweak = [](SystemConfig &cfg) {
        cfg.linux_thp.scan_pages_per_interval = 16;
    };
    const auto greedy = runOne(thp);
    const auto ideal = runOne(ciSpec("bfs", PolicyKind::AllHuge));
    // Greedy under fragmentation lands well below the ideal.
    EXPECT_LT(speedup(base, greedy), speedup(base, ideal) * 0.8);
}

TEST(PaperShapes, Fig5PccBeatsHawkEyeAtSmallBudgets)
{
    const auto base = baselineFor("pr");
    for (double cap : {4.0, 16.0}) {
        ExperimentSpec pcc = ciSpec("pr", PolicyKind::Pcc);
        pcc.cap_percent = cap;
        ExperimentSpec hawk = ciSpec("pr", PolicyKind::HawkEye);
        hawk.cap_percent = cap;
        const double s_pcc = speedup(base, runOne(pcc));
        const double s_hawk = speedup(base, runOne(hawk));
        EXPECT_GE(s_pcc, s_hawk * 0.98) << "cap " << cap;
    }
}

TEST(PaperShapes, Fig5SmallBudgetCapturesMostOfIdeal)
{
    const auto base = baselineFor("bfs");
    const auto ideal = runOne(ciSpec("bfs", PolicyKind::AllHuge));
    ExperimentSpec pcc = ciSpec("bfs", PolicyKind::Pcc);
    pcc.cap_percent = 16.0;
    const auto capped = runOne(pcc);
    const double ideal_gain = speedup(base, ideal) - 1.0;
    const double capped_gain = speedup(base, capped) - 1.0;
    ASSERT_GT(ideal_gain, 0.0);
    EXPECT_GT(capped_gain, 0.5 * ideal_gain)
        << "a small promotion budget should capture most of the peak";
}

TEST(PaperShapes, Fig6LargerPccHelpsUntilPlateau)
{
    const auto base = baselineFor("bfs");
    auto run_with_pcc_size = [&](u32 entries) {
        ExperimentSpec spec = ciSpec("bfs", PolicyKind::Pcc);
        spec.cap_percent = 32.0;
        spec.tweak = [entries](SystemConfig &cfg) {
            cfg.pcc.pcc2m.entries = entries;
        };
        return speedup(base, runOne(spec));
    };
    const double tiny = run_with_pcc_size(1);
    const double small = run_with_pcc_size(8);
    const double large = run_with_pcc_size(128);
    EXPECT_GE(small, tiny * 0.99);
    EXPECT_GE(large, small * 0.98);
    EXPECT_GT(large, 1.0);
}

TEST(PaperShapes, Fig7PccBeatsLinuxUnderHeavyFragmentation)
{
    const auto base = baselineFor("bfs");
    ExperimentSpec pcc = ciSpec("bfs", PolicyKind::Pcc);
    pcc.frag_fraction = 0.9;
    ExperimentSpec linux_thp = ciSpec("bfs", PolicyKind::LinuxThp);
    linux_thp.frag_fraction = 0.9;
    const double s_pcc = speedup(base, runOne(pcc));
    const double s_linux = speedup(base, runOne(linux_thp));
    EXPECT_GT(s_pcc, s_linux);
    EXPECT_GT(s_pcc, 1.02);
}

TEST(PaperShapes, Fig9FrequencyPolicyBiasesTlbSensitiveProcess)
{
    // PR (TLB-sensitive) next to dedup (insensitive): the frequency
    // policy must hand essentially all THPs to PR.
    workloads::WorkloadSpec pr_spec;
    pr_spec.name = "pr";
    pr_spec.scale = workloads::Scale::Ci;
    auto pr = workloads::makeWorkload(pr_spec);
    workloads::WorkloadSpec dd_spec;
    dd_spec.name = "dedup";
    dd_spec.scale = workloads::Scale::Ci;
    auto dedup = workloads::makeWorkload(dd_spec);

    SystemConfig cfg = SystemConfig::forScale(workloads::Scale::Ci);
    cfg.num_cores = 2;
    cfg.policy = PolicyKind::Pcc;
    cfg.promotion_cap_percent = 8.0;
    cfg.pcc_policy.order = os::PromotionOrder::HighestFrequency;
    System system(cfg);
    const auto result =
        system.run({System::Job{pr.get(), 1}, System::Job{dedup.get(), 1}});
    ASSERT_EQ(result.jobs.size(), 2u);
    EXPECT_GE(result.jobs[0].promotions, result.jobs[1].promotions);
}
