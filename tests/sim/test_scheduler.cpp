/**
 * @file
 * Scheduler-level tests: barrier semantics, promotion-interval
 * cadence, multithreaded graph kernels through the real System, and
 * trace recording during multi-process runs.
 */

#include <gtest/gtest.h>

#include "sim/system.hpp"
#include "workloads/registry.hpp"
#include "workloads/synthetic.hpp"

using namespace pccsim;
using namespace pccsim::sim;

namespace {

SystemConfig
ciConfig(PolicyKind policy, u32 cores = 1)
{
    SystemConfig cfg = SystemConfig::forScale(workloads::Scale::Ci);
    cfg.policy = policy;
    cfg.num_cores = cores;
    return cfg;
}

workloads::WorkloadPtr
ciWorkload(const std::string &name)
{
    workloads::WorkloadSpec spec;
    spec.name = name;
    spec.scale = workloads::Scale::Ci;
    return workloads::makeWorkload(spec);
}

} // namespace

class MultiLaneGraphs : public ::testing::TestWithParam<
                            std::tuple<std::string, u32>>
{
};

TEST_P(MultiLaneGraphs, KernelsCompleteOnAnyLaneCount)
{
    const auto [name, lanes] = GetParam();
    auto w = ciWorkload(name);
    System system(ciConfig(PolicyKind::Pcc, lanes));
    const auto result = system.run(*w, lanes);
    EXPECT_GT(result.job().accesses, 0u);
    EXPECT_GT(result.job().wall_cycles, 0u);
}

INSTANTIATE_TEST_SUITE_P(
    GraphKernels, MultiLaneGraphs,
    ::testing::Combine(::testing::Values("bfs", "sssp", "pr"),
                       ::testing::Values(1u, 2u, 4u, 8u)));

TEST(Scheduler, LaneCountDoesNotChangeTotalWork)
{
    // The same PR computation split over k lanes must do (almost)
    // exactly the same number of accesses.
    u64 accesses1 = 0;
    {
        auto w = ciWorkload("pr");
        System system(ciConfig(PolicyKind::Base, 1));
        accesses1 = system.run(*w, 1).job().accesses;
    }
    for (u32 lanes : {2u, 4u}) {
        auto w = ciWorkload("pr");
        System system(ciConfig(PolicyKind::Base, lanes));
        const u64 accesses = system.run(*w, lanes).job().accesses;
        EXPECT_NEAR(static_cast<double>(accesses),
                    static_cast<double>(accesses1),
                    0.01 * static_cast<double>(accesses1))
            << lanes << " lanes";
    }
}

TEST(Scheduler, ParallelismShortensWallClock)
{
    auto w1 = ciWorkload("pr");
    System s1(ciConfig(PolicyKind::Base, 1));
    const auto r1 = s1.run(*w1, 1);

    auto w4 = ciWorkload("pr");
    System s4(ciConfig(PolicyKind::Base, 4));
    const auto r4 = s4.run(*w4, 4);

    EXPECT_LT(r4.job().wall_cycles, r1.job().wall_cycles);
    // ...but not superlinearly.
    EXPECT_GT(r4.job().wall_cycles, r1.job().wall_cycles / 8);
}

TEST(Scheduler, IntervalCadenceScalesWithAccesses)
{
    workloads::SyntheticSpec spec;
    spec.pattern = workloads::Pattern::Uniform;
    spec.footprint_bytes = 16ull << 20;
    spec.ops = 1'000'000;
    workloads::SyntheticWorkload w(spec);

    SystemConfig cfg = ciConfig(PolicyKind::Pcc);
    cfg.interval_accesses = 100'000;
    System system(cfg);
    const auto result = system.run(w);
    // init (~4k ops) + 1M main ops: about 10 intervals.
    EXPECT_GE(result.intervals, 8u);
    EXPECT_LE(result.intervals, 12u);
}

TEST(Scheduler, TraceRecordingCoversMultipleProcesses)
{
    workloads::SyntheticSpec hot;
    hot.pattern = workloads::Pattern::HotRegions;
    hot.footprint_bytes = 48ull << 20;
    hot.hot_regions = 6;
    hot.ops = 800'000;
    workloads::SyntheticWorkload wa(hot);
    hot.seed = 77;
    workloads::SyntheticWorkload wb(hot);

    SystemConfig cfg = ciConfig(PolicyKind::Pcc, 2);
    cfg.record_trace = true;
    System system(cfg);
    const auto result =
        system.run({System::Job{&wa, 1}, System::Job{&wb, 1}});
    const auto &trace = system.recordedTrace();
    ASSERT_EQ(trace.size(), result.jobs[0].promotions +
                                result.jobs[1].promotions);
    bool saw_pid0 = false, saw_pid1 = false;
    u64 prev_at = 0;
    for (const auto &e : trace.entries()) {
        saw_pid0 |= e.pid == 0;
        saw_pid1 |= e.pid == 1;
        EXPECT_GE(e.at_accesses, prev_at) << "timestamps must ascend";
        prev_at = e.at_accesses;
    }
    EXPECT_TRUE(saw_pid0);
    EXPECT_TRUE(saw_pid1);
}

TEST(Scheduler, IdleCoresAreHarmless)
{
    // More cores than lanes: extra cores idle without affecting the
    // result.
    auto w1 = ciWorkload("bfs");
    System s1(ciConfig(PolicyKind::Base, 1));
    const auto r1 = s1.run(*w1, 1);

    auto w2 = ciWorkload("bfs");
    System s2(ciConfig(PolicyKind::Base, 4));
    const auto r2 = s2.run(*w2, 1);
    EXPECT_EQ(r1.job().wall_cycles, r2.job().wall_cycles);
}

TEST(Scheduler, ProcessSetupHookRuns)
{
    workloads::SyntheticSpec spec;
    spec.pattern = workloads::Pattern::Sequential;
    spec.footprint_bytes = 8ull << 20;
    spec.ops = 10'000;
    workloads::SyntheticWorkload w(spec);

    SystemConfig cfg = ciConfig(PolicyKind::Base);
    u32 calls = 0;
    cfg.process_setup = [&calls](os::Process &proc, u32 job) {
        ++calls;
        EXPECT_EQ(job, 0u);
        EXPECT_GT(proc.footprintBytes(), 0u);
    };
    System system(cfg);
    system.run(w);
    EXPECT_EQ(calls, 1u);
}
