#include <gtest/gtest.h>

#include "sim/experiment.hpp"

using namespace pccsim;
using namespace pccsim::sim;

namespace {

ExperimentSpec
ciSpec(const std::string &workload, PolicyKind policy)
{
    ExperimentSpec spec;
    spec.workload.name = workload;
    spec.workload.scale = workloads::Scale::Ci;
    spec.policy = policy;
    return spec;
}

} // namespace

TEST(Experiment, ConfigForMapsPolicyAndCap)
{
    ExperimentSpec spec = ciSpec("bfs", PolicyKind::Pcc);
    spec.cap_percent = 8.0;
    spec.frag_fraction = 0.9;
    const SystemConfig cfg = configFor(spec);
    EXPECT_EQ(cfg.policy, PolicyKind::Pcc);
    EXPECT_DOUBLE_EQ(cfg.promotion_cap_percent, 8.0);
    EXPECT_DOUBLE_EQ(cfg.frag_fraction, 0.9);
}

TEST(Experiment, AllHugeIgnoresFragmentation)
{
    ExperimentSpec spec = ciSpec("bfs", PolicyKind::AllHuge);
    spec.frag_fraction = 0.9;
    spec.cap_percent = 1.0;
    const SystemConfig cfg = configFor(spec);
    EXPECT_DOUBLE_EQ(cfg.frag_fraction, 0.0);
    EXPECT_DOUBLE_EQ(cfg.promotion_cap_percent, -1.0);
}

TEST(Experiment, TweakHookApplied)
{
    ExperimentSpec spec = ciSpec("bfs", PolicyKind::Base);
    spec.tweak = [](SystemConfig &cfg) { cfg.pcc.pcc2m.entries = 7; };
    EXPECT_EQ(configFor(spec).pcc.pcc2m.entries, 7u);
}

TEST(Experiment, UtilityCapsMatchPaperAxis)
{
    const auto &caps = utilityCaps();
    ASSERT_EQ(caps.size(), 9u);
    EXPECT_EQ(caps.front(), 0);
    EXPECT_EQ(caps[4], 8);
    EXPECT_EQ(caps.back(), -1); // the ~100% point
}

TEST(Experiment, UtilityCurveIsAnchoredAndOrdered)
{
    ExperimentSpec base = ciSpec("bfs", PolicyKind::Base);
    base.cap_percent = 0.0;
    const RunResult baseline = runOne(base);

    ExperimentSpec pcc = ciSpec("bfs", PolicyKind::Pcc);
    const auto curve = utilityCurve(pcc, baseline);
    ASSERT_EQ(curve.size(), utilityCaps().size());
    EXPECT_DOUBLE_EQ(curve.front().speedup, 1.0);
    // The unlimited point must be at least as fast as the 1% point.
    EXPECT_GE(curve.back().speedup, curve[1].speedup * 0.98);
    // PTW rate falls from left to right (allowing small noise).
    EXPECT_LE(curve.back().ptw_percent,
              curve.front().ptw_percent + 0.5);
}

TEST(Experiment, GeomeanSpeedupRunsAcrossDatasets)
{
    ExperimentSpec spec = ciSpec("bfs", PolicyKind::AllHuge);
    DatasetSweep sweep;
    sweep.networks = {graph::NetworkKind::Kronecker};
    sweep.include_sorted = false;
    const double s = geomeanSpeedup(spec, sweep);
    EXPECT_GT(s, 1.0);
    EXPECT_LT(s, 5.0);
}
