/**
 * @file
 * Equivalence and determinism gates for the batch translation engine.
 *
 * The batch engine (SystemConfig::batch_engine, default on) consumes
 * structure-of-arrays address buffers instead of resuming the workload
 * coroutine once per access. These tests pin the contract that made
 * the switch safe:
 *
 *  - bit-identical results to the scalar engine, for every batch
 *    capacity (including degenerate capacity 1 and a capacity larger
 *    than any burst a workload emits);
 *  - differential-oracle lockstep over the batched hot path;
 *  - serial vs. parallel-runner determinism, batched; and
 *  - all of the above under fault-injection storms, where barrier and
 *    fault timing are most likely to smear across a batch boundary.
 */

#include <algorithm>

#include <gtest/gtest.h>

#include "sim/experiment.hpp"
#include "sim/fuzz.hpp"
#include "sim/oracle.hpp"
#include "sim/runner.hpp"

using namespace pccsim;
using namespace pccsim::sim;

namespace {

/** Batch capacities the gates sweep: degenerate, odd, quantum, max. */
const u32 kCapacities[] = {1, 7, 64, 4096};

ExperimentSpec
ciSpec(const std::string &workload, PolicyKind policy)
{
    ExperimentSpec spec;
    spec.workload.name = workload;
    spec.workload.scale = workloads::Scale::Ci;
    spec.policy = policy;
    spec.cap_percent = 25.0;
    return spec;
}

/** The spec, pinned to one batch capacity (memoizable via the key). */
ExperimentSpec
withCapacity(ExperimentSpec spec, u32 capacity)
{
    spec.tweak = [capacity](SystemConfig &cfg) {
        cfg.batch_capacity = capacity;
    };
    spec.tweak_key = "batch_capacity=" + std::to_string(capacity);
    return spec;
}

/** The spec, forced onto the scalar (pre-batch) engine. */
ExperimentSpec
scalarEngine(ExperimentSpec spec)
{
    spec.tweak = [](SystemConfig &cfg) { cfg.batch_engine = false; };
    spec.tweak_key = "engine=scalar";
    return spec;
}

/** A fault-storm spec: huge-alloc failures plus shootdown storms. */
FuzzSpec
stormSpec()
{
    FuzzSpec spec;
    spec.pattern = "hot";
    spec.footprint_mb = 16;
    spec.ops = 150'000;
    spec.hot_regions = 4;
    spec.seed = 11;
    spec.policy = PolicyKind::Pcc;
    spec.interval_accesses = 10'000;
    spec.alloc_fail_huge = 0.3;
    spec.shootdown_storm = 0.2;
    return spec;
}

} // namespace

TEST(BatchEngine, BitIdenticalToScalarEngine)
{
    // The headline contract: for every batch capacity, the batched
    // run's RunResult equals the scalar engine's, field for field.
    for (const char *app : {"bfs", "dedup"}) {
        const RunResult scalar =
            runOne(scalarEngine(ciSpec(app, PolicyKind::Pcc)));
        for (u32 capacity : kCapacities) {
            const RunResult batched = runOne(
                withCapacity(ciSpec(app, PolicyKind::Pcc), capacity));
            EXPECT_TRUE(batched == scalar)
                << app << " capacity " << capacity;
        }
    }
}

TEST(BatchEngine, OracleLockstepAcrossBatchSizes)
{
    // Per-access differential oracle over the batched hot path: any
    // smear of TLB/walk/fault state across a batch boundary diverges
    // from the reference model and throws.
    for (u32 capacity : kCapacities) {
        ExperimentSpec spec =
            withCapacity(ciSpec("bfs", PolicyKind::Pcc), capacity);
        spec.oracle.enabled = true;
        spec.oracle.sample_every = 1;
        EXPECT_NO_THROW(runOne(spec)) << "capacity " << capacity;
    }
}

TEST(BatchEngine, OracleCatchesPlantedBugInBatchedPath)
{
    // The lockstep gate must still have teeth on the batched path: a
    // planted miss-path bug may not hide behind batching.
    ExperimentSpec spec =
        withCapacity(ciSpec("bfs", PolicyKind::Base), 64);
    spec.mutation = HotPathMutation::SkipL2Fill;
    spec.oracle.enabled = true;
    spec.oracle.sample_every = 1;
    EXPECT_THROW(runOne(spec), OracleError);
}

TEST(BatchEngine, SerialVsParallelRunnerDeterministic)
{
    // The same batch of specs through a serial and a 4-worker runner
    // must produce bit-identical results in matching order.
    std::vector<ExperimentSpec> specs;
    for (u32 capacity : kCapacities)
        specs.push_back(
            withCapacity(ciSpec("bfs", PolicyKind::Pcc), capacity));
    for (u32 capacity : kCapacities)
        specs.push_back(
            withCapacity(ciSpec("dedup", PolicyKind::LinuxThp),
                         capacity));

    Runner serial(1);
    Runner parallel(4);
    const auto a = serial.runMany(specs);
    const auto b = parallel.runMany(specs);
    ASSERT_EQ(a.size(), b.size());
    for (size_t i = 0; i < a.size(); ++i)
        EXPECT_TRUE(*a[i] == *b[i]) << "spec " << i;
}

TEST(BatchEngine, FaultStormBitIdenticalAcrossCapacities)
{
    // Fault storms concentrate the risky interleavings: fault entry
    // mid-batch, storms stretching shootdowns, promotions failing and
    // retrying. Every capacity must still match the scalar engine.
    const RunResult scalar =
        runOne(scalarEngine(stormSpec().toExperiment()));
    for (u32 capacity : kCapacities) {
        const RunResult batched =
            runOne(withCapacity(stormSpec().toExperiment(), capacity));
        EXPECT_TRUE(batched == scalar) << "capacity " << capacity;
    }
}

TEST(BatchEngine, FaultStormOracleLockstep)
{
    ExperimentSpec spec = withCapacity(stormSpec().toExperiment(), 7);
    spec.oracle.enabled = true;
    spec.oracle.sample_every = 1;
    EXPECT_NO_THROW(runOne(spec));
}

TEST(BatchEngine, MultiLaneBatchedMatchesScalar)
{
    // Multi-lane scheduling clamps batch consumption to the scalar
    // engine's rotation quantum; the interleaving over shared OS state
    // must therefore be unchanged.
    FuzzSpec storm = stormSpec();
    storm.lanes = 4;
    const RunResult scalar =
        runOne(scalarEngine(storm.toExperiment()));
    for (u32 capacity : kCapacities) {
        const RunResult batched =
            runOne(withCapacity(storm.toExperiment(), capacity));
        EXPECT_TRUE(batched == scalar) << "capacity " << capacity;
    }
}

// ---- sampled mode ----

TEST(Sampling, ReportsEstimatesWithConfidenceIntervals)
{
    ExperimentSpec spec = ciSpec("bfs", PolicyKind::Pcc);
    spec.sampling.window = 10'000;
    spec.sampling.fastforward = 40'000;
    const RunResult r = runOne(spec);

    ASSERT_TRUE(r.sampling.enabled);
    EXPECT_EQ(r.sampling.window, 10'000u);
    EXPECT_EQ(r.sampling.fastforward, 40'000u);
    EXPECT_GT(r.sampling.windows, 1u);
    EXPECT_GT(r.sampling.detailed_accesses, 0u);
    EXPECT_GT(r.sampling.ff_accesses, 0u);
    EXPECT_GT(r.sampling.miss_rate_ci95, 0.0);

    // Fast-forward skips the hardware but not the instruction stream:
    // every access the workload emits is still accounted.
    const RunResult exact = runOne(ciSpec("bfs", PolicyKind::Pcc));
    EXPECT_EQ(r.job().accesses, exact.job().accesses);
    EXPECT_EQ(r.sampling.detailed_accesses + r.sampling.ff_accesses,
              r.job().accesses);
    EXPECT_FALSE(exact.sampling.enabled);
}

TEST(Sampling, DeterministicAcrossRuns)
{
    ExperimentSpec spec = ciSpec("dedup", PolicyKind::Pcc);
    spec.sampling.window = 5'000;
    spec.sampling.fastforward = 20'000;
    const RunResult a = runOne(spec);
    const RunResult b = runOne(spec);
    EXPECT_TRUE(a == b);
    EXPECT_EQ(a.sampling.windows, b.sampling.windows);
    EXPECT_EQ(a.sampling.miss_rate_mean, b.sampling.miss_rate_mean);
}

TEST(Sampling, EstimateTracksExactMissRate)
{
    // The point estimate must land within its own 95% interval
    // (doubled for slack: ci windows are few and the first window
    // carries the cold-start transient) of the exact miss rate.
    ExperimentSpec spec = ciSpec("dedup", PolicyKind::Pcc);
    const RunResult exact = runOne(spec);
    const double exact_miss = 100.0 *
                              static_cast<double>(exact.job().walks) /
                              static_cast<double>(
                                  exact.job().tlb_accesses);

    spec.sampling.window = 20'000;
    spec.sampling.fastforward = 80'000;
    const RunResult sampled = runOne(spec);
    const double slack =
        std::max(2.0 * sampled.sampling.miss_rate_ci95, 0.5);
    EXPECT_NEAR(sampled.sampling.miss_rate_mean, exact_miss, slack);
}

TEST(Sampling, RequiresBatchEngine)
{
    ExperimentSpec spec = ciSpec("bfs", PolicyKind::Pcc);
    spec.sampling.window = 1'000;
    spec.sampling.fastforward = 9'000;
    EXPECT_DEATH(runOne(scalarEngine(spec)), "batch engine");
}

TEST(Sampling, RejectsOracleCombination)
{
    ExperimentSpec spec = ciSpec("bfs", PolicyKind::Pcc);
    spec.sampling.window = 1'000;
    spec.sampling.fastforward = 9'000;
    spec.oracle.enabled = true;
    EXPECT_DEATH(runOne(spec), "incompatible with the oracle");
}
