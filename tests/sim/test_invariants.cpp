#include <gtest/gtest.h>

#include "mem/phys_mem.hpp"
#include "os/os.hpp"
#include "pcc/pcc_unit.hpp"
#include "sim/invariants.hpp"
#include "tlb/hierarchy.hpp"
#include "util/status.hpp"

using namespace pccsim;
using namespace pccsim::sim;

TEST(Status, DefaultIsSuccess)
{
    util::Status status;
    EXPECT_TRUE(status.ok());
    EXPECT_TRUE(static_cast<bool>(status));
    EXPECT_EQ(status.toString(), "ok");
}

TEST(Status, ErrorCarriesConcatenatedMessage)
{
    const auto status = util::Status::error("pfn ", 42, " leaked");
    EXPECT_FALSE(status.ok());
    EXPECT_EQ(status.message(), "pfn 42 leaked");
}

TEST(Status, UpdateKeepsFirstFailureAndCountsTheRest)
{
    util::Status status;
    status.update(util::Status{});
    EXPECT_TRUE(status.ok());
    status.update(util::Status::error("first"));
    status.update(util::Status::error("second"));
    status.update(util::Status::error("third"));
    EXPECT_FALSE(status.ok());
    EXPECT_EQ(status.message(), "first");
    EXPECT_EQ(status.extraFailures(), 2u);
    EXPECT_EQ(status.toString(), "first (+2 more failures)");
}

namespace {

/** A small OS + memory with faulted pages and one promoted region. */
struct Fixture
{
    mem::PhysicalMemory phys{64 * mem::kBytes2M};
    os::Os os{os::Os::Params{}, phys};
    os::Process &proc = os.createProcess(64 * mem::kBytes2M);
    Addr heap = proc.mmap(8 * mem::kBytes2M, "heap");

    Fixture()
    {
        // Region 0: fully faulted and promoted. Region 1: sparse 4KB.
        for (u64 p = 0; p < mem::kPagesPer2M; ++p)
            os.handleFault(proc, heap + p * mem::kBytes4K, false);
        EXPECT_EQ(os.promoteRegion(proc, heap, false).status,
                  os::PromoteStatus::Ok);
        for (u64 p = 0; p < 16; ++p)
            os.handleFault(proc, heap + mem::kBytes2M + p * mem::kBytes4K,
                           false);
    }
};

} // namespace

TEST(Invariants, ConsistentStatePasses)
{
    Fixture f;
    const auto status = checkMemoryConsistency(f.os, f.phys);
    EXPECT_TRUE(status.ok()) << status.toString();
}

TEST(Invariants, DetectsFrameFreedBehindTheOsBack)
{
    Fixture f;
    const Addr victim = f.heap + mem::kBytes2M; // a faulted base page
    const auto mapping = f.proc.pageTable().lookup(victim);
    ASSERT_TRUE(mapping.present);
    f.phys.freeBase(mapping.pfn);

    const auto status = checkMemoryConsistency(f.os, f.phys);
    ASSERT_FALSE(status.ok());
    EXPECT_NE(status.message().find("not in AppBase use"),
              std::string::npos)
        << status.toString();
}

TEST(Invariants, CountsEveryViolationNotJustTheFirst)
{
    Fixture f;
    for (u64 p = 0; p < 3; ++p) {
        const auto mapping = f.proc.pageTable().lookup(
            f.heap + mem::kBytes2M + p * mem::kBytes4K);
        ASSERT_TRUE(mapping.present);
        f.phys.freeBase(mapping.pfn);
    }
    const auto status = checkMemoryConsistency(f.os, f.phys);
    ASSERT_FALSE(status.ok());
    EXPECT_EQ(status.extraFailures(), 2u);
}

TEST(Invariants, DetectsMappingWithoutFault)
{
    Fixture f;
    // Map a page the process never faulted (PT and the flat fast-path
    // state now disagree).
    f.proc.pageTable().mapBase(f.heap + mem::kBytes2M + 100 * mem::kBytes4K,
                               0);
    const auto status = checkMemoryConsistency(f.os, f.phys);
    ASSERT_FALSE(status.ok());
    EXPECT_NE(status.message().find("mapped but never faulted"),
              std::string::npos)
        << status.toString();
}

TEST(Invariants, DetectsTouchedButUnfaultedPage)
{
    Fixture f;
    f.proc.noteTouched(f.heap + mem::kBytes2M + 200 * mem::kBytes4K);
    const auto status = checkMemoryConsistency(f.os, f.phys);
    ASSERT_FALSE(status.ok());
    EXPECT_NE(status.message().find("touched but not faulted"),
              std::string::npos)
        << status.toString();
}

TEST(Invariants, DetectsHugeFrameSplitBehindTheOsBack)
{
    Fixture f;
    const auto mapping = f.proc.pageTable().lookup(f.heap);
    ASSERT_TRUE(mapping.present);
    ASSERT_EQ(mapping.size, mem::PageSize::Huge2M);
    f.phys.splitHuge(mapping.pfn, f.proc.pid(),
                     mem::vpnOf(f.heap, mem::PageSize::Base4K));
    const auto status = checkMemoryConsistency(f.os, f.phys);
    ASSERT_FALSE(status.ok());
    EXPECT_NE(status.message().find("huge frame not in AppHuge use"),
              std::string::npos)
        << status.toString();
}

TEST(Invariants, TlbResidencyAcceptsFreshFills)
{
    Fixture f;
    tlb::TlbHierarchy tlb;
    tlb.fill(f.heap, mem::PageSize::Huge2M);
    tlb.fill(f.heap + mem::kBytes2M, mem::PageSize::Base4K);
    const auto status = checkTlbResidency(tlb, f.proc);
    EXPECT_TRUE(status.ok()) << status.toString();
}

TEST(Invariants, TlbResidencyFlagsStaleTranslation)
{
    Fixture f;
    tlb::TlbHierarchy tlb;
    // Cache the promoted region at 4KB granularity: exactly the stale
    // state a missed shootdown would leave behind.
    tlb.fill(f.heap, mem::PageSize::Base4K);
    const auto status = checkTlbResidency(tlb, f.proc);
    ASSERT_FALSE(status.ok());
    EXPECT_NE(status.message().find("stale TLB entry"),
              std::string::npos)
        << status.toString();
}

TEST(Invariants, PccResidencyFlagsTrackedHugeRegion)
{
    Fixture f;
    pcc::PccUnit pcc;
    pcc.pcc2m().touch(mem::vpnOf(f.heap, mem::PageSize::Huge2M));
    const auto stale = checkPccResidency(pcc, f.proc);
    ASSERT_FALSE(stale.ok());
    EXPECT_NE(stale.message().find("PCC(2M) tracks already-huge"),
              std::string::npos)
        << stale.toString();

    // The promotion shootdown (Fig. 4 step C) clears the entry and with
    // it the violation.
    pcc.shootdown(f.heap, mem::kBytes2M);
    EXPECT_TRUE(checkPccResidency(pcc, f.proc).ok());
}
