/**
 * @file
 * Policy & translation-hardware plugin registries: registration
 * discipline (duplicate keys fail loudly), selector round-trips,
 * unknown-key diagnostics with nearest-key suggestions, spec-key
 * uniqueness across parameter variants, legacy bit-identity of the
 * PolicyKind shim, and the config transforms of the hw backends.
 */

#include <gtest/gtest.h>

#include <set>

#include "os/policy_registry.hpp"
#include "sim/experiment.hpp"
#include "sim/runner.hpp"
#include "tlb/hw_registry.hpp"

using namespace pccsim;
using namespace pccsim::sim;

namespace {

ExperimentSpec
ciSpec(const std::string &workload)
{
    ExperimentSpec spec;
    spec.workload.name = workload;
    spec.workload.scale = workloads::Scale::Ci;
    return spec;
}

std::unique_ptr<os::Policy>
makePolicy(const std::string &selector, util::Status &status)
{
    const SystemConfig cfg = SystemConfig::forScale(workloads::Scale::Ci);
    return os::PolicyRegistry::instance().make(selector, cfg, status);
}

std::unique_ptr<os::Policy>
dummyFactory(const util::ParamMap &, const sim::SystemConfig &,
             util::Status &)
{
    return nullptr;
}

util::Status
dummyApply(const util::ParamMap &, sim::SystemConfig &)
{
    return {};
}

} // namespace

// ---------------------------------------------------- registration

TEST(Registry, DuplicateKeyRegistrationFailsLoudly)
{
    auto &reg = os::PolicyRegistry::instance();
    os::PolicyRegistry::Entry dup;
    dup.key = "pcc"; // already registered by policies.cpp
    dup.description = "imposter";
    dup.factory = &dummyFactory;
    const util::Status status = reg.add(dup);
    EXPECT_FALSE(status.ok());
    EXPECT_NE(status.toString().find("pcc"), std::string::npos);
    // The loud failure must also leave the original entry untouched.
    const auto *entry = reg.find("pcc");
    ASSERT_NE(entry, nullptr);
    EXPECT_NE(entry->description, "imposter");
}

TEST(Registry, AliasShadowingAnExistingKeyFails)
{
    auto &reg = os::PolicyRegistry::instance();
    os::PolicyRegistry::Entry entry;
    entry.key = "registry-test-unique-key";
    entry.description = "test";
    entry.factory = &dummyFactory;
    entry.aliases = {"thp"}; // shadows linux-thp's alias
    EXPECT_FALSE(reg.add(entry).ok());
    EXPECT_EQ(reg.find("registry-test-unique-key"), nullptr);
}

TEST(Registry, DuplicateHwKeyFails)
{
    auto &reg = tlb::HwRegistry::instance();
    tlb::HwRegistry::Entry dup;
    dup.key = "victima-reach";
    dup.description = "imposter";
    dup.apply = &dummyApply;
    EXPECT_FALSE(reg.add(dup).ok());
}

// ----------------------------------------------------- round-trips

TEST(Registry, EveryLegacyKeyRoundTripsThroughParseAndToString)
{
    for (const auto &entry : os::PolicyRegistry::instance().entries()) {
        if (entry.legacy_kind < 0)
            continue;
        const auto kind = static_cast<PolicyKind>(entry.legacy_kind);
        // key -> kind
        const auto parsed = parsePolicyKind(entry.key);
        ASSERT_TRUE(parsed.has_value()) << entry.key;
        EXPECT_EQ(*parsed, kind) << entry.key;
        // kind -> canonical name -> kind
        const auto reparsed = parsePolicyKind(to_string(kind));
        ASSERT_TRUE(reparsed.has_value()) << to_string(kind);
        EXPECT_EQ(*reparsed, kind);
        // aliases land on the same kind
        for (const auto &alias : entry.aliases) {
            const auto via_alias = parsePolicyKind(alias);
            ASSERT_TRUE(via_alias.has_value()) << alias;
            EXPECT_EQ(*via_alias, kind) << alias;
        }
    }
}

TEST(Registry, SixLegacyPoliciesAreRegistered)
{
    std::set<int> kinds;
    for (const auto &entry : os::PolicyRegistry::instance().entries()) {
        if (entry.legacy_kind >= 0)
            kinds.insert(entry.legacy_kind);
    }
    EXPECT_EQ(kinds.size(), 6u);
    // ...and the contenders are registry-only.
    for (const char *key : {"trident", "ubpf"}) {
        const auto *entry = os::PolicyRegistry::instance().find(key);
        ASSERT_NE(entry, nullptr) << key;
        EXPECT_EQ(entry->legacy_kind, -1) << key;
    }
}

TEST(Registry, SelectorRoundTripsThroughApplyPolicySelector)
{
    for (const auto &key : os::PolicyRegistry::instance().keys()) {
        ExperimentSpec spec = ciSpec("bfs");
        const util::Status status = applyPolicySelector(spec, key);
        EXPECT_TRUE(status.ok()) << key << ": " << status.toString();
        // parse -> to_string -> parse is stable.
        const std::string name = policyNameOf(spec);
        ExperimentSpec again = ciSpec("bfs");
        EXPECT_TRUE(applyPolicySelector(again, name).ok()) << name;
        EXPECT_EQ(policyNameOf(again), name);
    }
}

// ------------------------------------------------- unknown selectors

TEST(Registry, UnknownPolicyKeyYieldsStatusWithSuggestion)
{
    ExperimentSpec spec = ciSpec("bfs");
    const util::Status status = applyPolicySelector(spec, "tridnet");
    ASSERT_FALSE(status.ok());
    EXPECT_NE(status.toString().find("trident"), std::string::npos)
        << status.toString();
}

TEST(Registry, ConfigValidateRejectsUnknownSelectors)
{
    SystemConfig cfg = SystemConfig::forScale(workloads::Scale::Ci);
    EXPECT_TRUE(cfg.validate().ok());

    cfg.policy_str = "hawkeey";
    const util::Status bad_policy = cfg.validate();
    ASSERT_FALSE(bad_policy.ok());
    EXPECT_NE(bad_policy.toString().find("hawkeye"), std::string::npos)
        << bad_policy.toString();

    cfg.policy_str.clear();
    cfg.hw = "victima";
    const util::Status bad_hw = cfg.validate();
    ASSERT_FALSE(bad_hw.ok());
    EXPECT_NE(bad_hw.toString().find("victima-reach"), std::string::npos)
        << bad_hw.toString();
}

TEST(Registry, UnknownParamIsRejectedAtBuildTime)
{
    util::Status status;
    auto policy = makePolicy("pcc:promot=8", status);
    EXPECT_EQ(policy, nullptr);
    ASSERT_FALSE(status.ok());
    // The error names the offending param and the grammar.
    EXPECT_NE(status.toString().find("promot"), std::string::npos)
        << status.toString();
}

TEST(Registry, MalformedSelectorParamsAreRejected)
{
    util::Status status;
    EXPECT_EQ(makePolicy("pcc:promote", status), nullptr);
    EXPECT_FALSE(status.ok());
}

TEST(Registry, UnknownUbpfProgramListsBuiltins)
{
    util::Status status;
    EXPECT_EQ(makePolicy("ubpf:prog=nonsense", status), nullptr);
    ASSERT_FALSE(status.ok());
    EXPECT_NE(status.toString().find("topk"), std::string::npos)
        << status.toString();
}

// ------------------------------------------------------- spec keys

TEST(Registry, SpecKeysNeverCollideAcrossSelectorVariants)
{
    const std::vector<std::string> selectors = {
        "pcc",
        "pcc:promote=8",
        "pcc:promote=16",
        "pcc:promote=8,order=rr",
        "trident",
        "trident:cold=8",
        "ubpf",
        "ubpf:prog=lowfirst",
    };
    std::set<std::string> keys;
    for (const auto &selector : selectors) {
        ExperimentSpec spec = ciSpec("bfs");
        ASSERT_TRUE(applyPolicySelector(spec, selector).ok()) << selector;
        const std::string key = specKey(spec);
        EXPECT_FALSE(key.empty()) << selector;
        EXPECT_TRUE(keys.insert(key).second)
            << "spec-key collision for " << selector << ": " << key;
    }
    // The hardware axis is independent: same policy, different hw.
    // (hw="" is omitted — by the shim contract it is identical to the
    // bare "pcc" selector already in the set; see the golden test.)
    for (const std::string hw :
         {"victima-reach", "victima-reach:mult=4"}) {
        ExperimentSpec spec = ciSpec("bfs");
        spec.policy = PolicyKind::Pcc;
        spec.hw = hw;
        EXPECT_TRUE(keys.insert(specKey(spec)).second) << "hw=" << hw;
    }
}

TEST(Registry, BareLegacySelectorKeepsThePreRegistrySpecKey)
{
    // Golden shim contract: selecting a legacy policy by bare name
    // canonicalizes onto the enum, so the spec key is byte-identical
    // to the enum-built spec's — pre-registry memo entries, resume
    // journals, and baselines all stay valid.
    for (const char *name : {"base-4k", "all-huge", "linux-thp",
                             "hawkeye", "pcc", "trace-replay"}) {
        ExperimentSpec via_selector = ciSpec("bfs");
        ASSERT_TRUE(applyPolicySelector(via_selector, name).ok()) << name;
        EXPECT_TRUE(via_selector.policy_str.empty()) << name;

        ExperimentSpec via_enum = ciSpec("bfs");
        via_enum.policy = via_selector.policy;
        EXPECT_EQ(specKey(via_selector), specKey(via_enum)) << name;
        EXPECT_EQ(specKey(via_enum).find("policy="), std::string::npos)
            << name;
    }
}

// ---------------------------------------------------- bit-identity

TEST(Registry, SelectorParamsMatchConfigDrivenEquivalents)
{
    // `pcc:promote=8,order=rr` must build the same machine as the
    // config-driven spelling of the same knobs: identical RunResults,
    // even though the two specs (rightly) have different memo keys.
    ExperimentSpec via_config = ciSpec("bfs");
    via_config.policy = PolicyKind::Pcc;
    via_config.pcc_policy.regions_to_promote = 8;
    via_config.pcc_policy.order = os::PromotionOrder::RoundRobin;

    ExperimentSpec via_selector = ciSpec("bfs");
    ASSERT_TRUE(
        applyPolicySelector(via_selector, "pcc:promote=8,order=rr")
            .ok());

    EXPECT_NE(specKey(via_config), specKey(via_selector));
    EXPECT_TRUE(runOne(via_config) == runOne(via_selector));
}

TEST(Registry, ContendersRunEndToEnd)
{
    for (const std::string selector : {"trident", "ubpf"}) {
        ExperimentSpec spec = ciSpec("bfs");
        ASSERT_TRUE(applyPolicySelector(spec, selector).ok()) << selector;
        spec.cap_percent = 8.0;
        const RunResult result = runOne(spec);
        EXPECT_GT(result.wall_cycles, 0u) << selector;
        EXPECT_GT(result.job().walks, 0u) << selector;
    }
}

TEST(Registry, VictimaReachBackendRunsAndDiffersFromBaseline)
{
    ExperimentSpec plain = ciSpec("bfs");
    plain.policy = PolicyKind::Pcc;
    ExperimentSpec reach = plain;
    reach.hw = "victima-reach:mult=4";
    const RunResult plain_run = runOne(plain);
    const RunResult reach_run = runOne(reach);
    EXPECT_GT(reach_run.wall_cycles, 0u);
    // 4x L2 TLB reach must change translation behavior.
    EXPECT_NE(plain_run.job().walks, reach_run.job().walks);
}

// ------------------------------------------------------ hw backends

TEST(Registry, VictimaReachTransformsTheConfig)
{
    SystemConfig cfg = SystemConfig::forScale(workloads::Scale::Ci);
    const u32 base_entries = cfg.tlb.l2.entries;
    const u32 base_ways = cfg.cache.l2.ways;
    const Cycles base_hit = cfg.timing.l2_tlb_hit;

    ASSERT_TRUE(tlb::HwRegistry::instance()
                    .apply("victima-reach:mult=4,latency=3", cfg)
                    .ok());
    EXPECT_EQ(cfg.tlb.l2.entries, base_entries * 4);
    EXPECT_LT(cfg.cache.l2.ways, base_ways);
    EXPECT_EQ(cfg.timing.l2_tlb_hit, base_hit + 3);
    EXPECT_TRUE(cfg.tlb.l2_holds_1g);
}

TEST(Registry, HwBackendRejectsBadMultAndLeavesConfigUntouched)
{
    SystemConfig cfg = SystemConfig::forScale(workloads::Scale::Ci);
    const u32 base_entries = cfg.tlb.l2.entries;
    EXPECT_FALSE(
        tlb::HwRegistry::instance().apply("victima-reach:mult=3", cfg)
            .ok());
    EXPECT_EQ(cfg.tlb.l2.entries, base_entries);
}

TEST(Registry, EmptyAndDefaultHwSelectorsAreIdentity)
{
    const SystemConfig pristine =
        SystemConfig::forScale(workloads::Scale::Ci);
    for (const std::string selector : {"", "default"}) {
        SystemConfig cfg = SystemConfig::forScale(workloads::Scale::Ci);
        ASSERT_TRUE(
            tlb::HwRegistry::instance().apply(selector, cfg).ok());
        EXPECT_EQ(cfg.tlb.l2.entries, pristine.tlb.l2.entries);
        EXPECT_EQ(cfg.cache.l2.ways, pristine.cache.l2.ways);
        EXPECT_EQ(cfg.timing.l2_tlb_hit, pristine.timing.l2_tlb_hit);
    }
}

// -------------------------------------------------------- listings

TEST(Registry, ListTextsEnumerateEveryKey)
{
    const std::string policies = policyListText();
    for (const auto &key : os::PolicyRegistry::instance().keys())
        EXPECT_NE(policies.find(key), std::string::npos) << key;
    const std::string hw = hwListText();
    for (const auto &key : tlb::HwRegistry::instance().keys())
        EXPECT_NE(hw.find(key), std::string::npos) << key;
}
