#include <cstdio>
#include <fstream>
#include <unistd.h>

#include <gtest/gtest.h>

#include "sim/runner.hpp"

using namespace pccsim;
using namespace pccsim::sim;

namespace {

ExperimentSpec
ciSpec(const std::string &workload, PolicyKind policy,
       double cap = 8.0, double frag = 0.0)
{
    ExperimentSpec spec;
    spec.workload.name = workload;
    spec.workload.scale = workloads::Scale::Ci;
    spec.policy = policy;
    spec.cap_percent = cap;
    spec.frag_fraction = frag;
    return spec;
}

/** A ci-scale suite covering every policy family plus fault injection. */
std::vector<ExperimentSpec>
ciSuite()
{
    std::vector<ExperimentSpec> specs;
    specs.push_back(ciSpec("bfs", PolicyKind::Base, 0.0));
    specs.push_back(ciSpec("bfs", PolicyKind::Pcc));
    specs.push_back(ciSpec("bfs", PolicyKind::LinuxThp, 25.0, 0.5));
    specs.push_back(ciSpec("pr", PolicyKind::Base, 0.0));
    specs.push_back(ciSpec("pr", PolicyKind::HawkEye, 25.0));
    specs.push_back(ciSpec("pr", PolicyKind::AllHuge, -1.0));

    // A faulty run: the injector is seeded from the spec inside each
    // simulation, so it must replay identically at any job count.
    auto faulty = ciSpec("bfs", PolicyKind::Pcc, 25.0, 0.3);
    faulty.tweak = [](SystemConfig &cfg) {
        cfg.faults.alloc_fail_huge = 0.3;
        cfg.faults.compaction_fail = 0.25;
        cfg.faults.shootdown_storm = 0.1;
        cfg.faults.shock_intervals = {2, 5};
        cfg.check_invariants = true;
    };
    faulty.tweak_key = "storm";
    specs.push_back(std::move(faulty));
    return specs;
}

} // namespace

TEST(SpecKey, IdenticalSpecsShareAKey)
{
    EXPECT_EQ(specKey(ciSpec("bfs", PolicyKind::Pcc)),
              specKey(ciSpec("bfs", PolicyKind::Pcc)));
}

TEST(SpecKey, DistinguishesEveryRunShapingField)
{
    const auto base = ciSpec("bfs", PolicyKind::Pcc);
    const std::string key = specKey(base);

    EXPECT_NE(key, specKey(ciSpec("pr", PolicyKind::Pcc)));
    EXPECT_NE(key, specKey(ciSpec("bfs", PolicyKind::LinuxThp)));
    EXPECT_NE(key, specKey(ciSpec("bfs", PolicyKind::Pcc, 16.0)));
    EXPECT_NE(key, specKey(ciSpec("bfs", PolicyKind::Pcc, 8.0, 0.5)));

    auto lanes = base;
    lanes.lanes = 4;
    EXPECT_NE(key, specKey(lanes));

    auto seeded = base;
    seeded.workload.seed = base.workload.seed + 1;
    EXPECT_NE(key, specKey(seeded));

    auto policy = base;
    policy.pcc_policy.regions_to_promote += 1;
    EXPECT_NE(key, specKey(policy));

    auto keyed = base;
    keyed.tweak = [](SystemConfig &) {};
    keyed.tweak_key = "variant-a";
    EXPECT_NE(key, specKey(keyed));
}

TEST(SpecKey, SampledAndExactRunsNeverShareAMemoEntry)
{
    // A sampled run reports estimates, not exact results, so serving
    // it from (or into) an exact run's memo entry would be silent
    // corruption. The sampling geometry is part of the key.
    const auto exact = ciSpec("bfs", PolicyKind::Pcc);
    auto sampled = exact;
    sampled.sampling.window = 10'000;
    sampled.sampling.fastforward = 40'000;
    EXPECT_NE(specKey(exact), specKey(sampled));

    // Different geometries are different estimators too.
    auto wider = sampled;
    wider.sampling.fastforward = 90'000;
    EXPECT_NE(specKey(sampled), specKey(wider));

    // End to end: one runner, both specs in one batch — the sampled
    // run must not be a memo hit off the exact one (or vice versa),
    // and the results must differ in kind.
    Runner runner(1);
    const auto results = runner.runMany({exact, sampled});
    EXPECT_EQ(runner.stats().memo_hits, 0u);
    EXPECT_FALSE(results[0]->sampling.enabled);
    EXPECT_TRUE(results[1]->sampling.enabled);
    EXPECT_GT(results[1]->sampling.ff_accesses, 0u);
}

TEST(SpecKey, UnkeyedTweakIsNotMemoizable)
{
    auto spec = ciSpec("bfs", PolicyKind::Pcc);
    spec.tweak = [](SystemConfig &cfg) { cfg.pcc.pcc2m.entries = 7; };
    EXPECT_TRUE(specKey(spec).empty());
    spec.tweak_key = "pcc2m=7";
    EXPECT_FALSE(specKey(spec).empty());
}

TEST(Runner, ParallelIsBitIdenticalToSerial)
{
    const auto specs = ciSuite();
    Runner serial(1);
    Runner parallel(8);
    const auto a = serial.runMany(specs);
    const auto b = parallel.runMany(specs);
    ASSERT_EQ(a.size(), b.size());
    for (size_t i = 0; i < a.size(); ++i) {
        ASSERT_TRUE(a[i] && b[i]) << i;
        EXPECT_TRUE(*a[i] == *b[i]) << "spec " << i
                                    << " diverged across job counts";
    }
}

TEST(Runner, RepeatedBatchesStayDeterministic)
{
    // The memo must hand back the exact result a fresh simulation
    // would produce, and a second runner must reproduce it.
    const auto specs = ciSuite();
    Runner first(4);
    Runner second(2);
    const auto a = first.runMany(specs);
    const auto again = first.runMany(specs);
    const auto b = second.runMany(specs);
    for (size_t i = 0; i < specs.size(); ++i) {
        EXPECT_TRUE(*a[i] == *b[i]) << i;
        EXPECT_TRUE(*a[i] == *again[i]) << i;
    }
}

TEST(Runner, MemoizesAcrossCalls)
{
    Runner runner(2);
    const auto spec = ciSpec("bfs", PolicyKind::Base, 0.0);
    const auto first = runner.run(spec);
    const auto second = runner.run(spec);
    EXPECT_EQ(first.get(), second.get()); // same cached object
    const auto stats = runner.stats();
    EXPECT_EQ(stats.requested, 2u);
    EXPECT_EQ(stats.simulated, 1u);
    EXPECT_EQ(stats.memo_hits, 1u);
    EXPECT_GT(stats.total_accesses, 0u);
}

TEST(Runner, DeduplicatesWithinABatch)
{
    // The duplicated-baseline bug: harnesses used to re-run the Base
    // config once per variant. The runner collapses them.
    Runner runner(4);
    const auto base = ciSpec("bfs", PolicyKind::Base, 0.0);
    const auto results = runner.runMany({base, base, base});
    EXPECT_EQ(results[0].get(), results[1].get());
    EXPECT_EQ(results[0].get(), results[2].get());
    EXPECT_EQ(runner.stats().simulated, 1u);
    EXPECT_EQ(runner.stats().memo_hits, 2u);
}

TEST(Runner, UnkeyedTweakSimulatesEveryTime)
{
    Runner runner(2);
    auto spec = ciSpec("bfs", PolicyKind::Base, 0.0);
    spec.tweak = [](SystemConfig &cfg) { cfg.pwc.enabled = false; };
    const auto a = runner.run(spec);
    const auto b = runner.run(spec);
    EXPECT_NE(a.get(), b.get());
    EXPECT_EQ(runner.stats().simulated, 2u);
    EXPECT_EQ(runner.stats().memo_hits, 0u);
    EXPECT_TRUE(*a == *b); // still deterministic, just not cached
}

TEST(Runner, LastTranslationCacheNeverChangesResults)
{
    // The per-core (vpn, size) fast path is a pure CPU-time
    // optimization: every stat — TLB hits, walks, promotions,
    // shootdowns, wall cycles — must be identical with it disabled.
    // PolicyKind::Pcc promotes and demotes mid-run, so the shootdown
    // invalidation path is exercised too.
    Runner runner(2);
    for (PolicyKind kind : {PolicyKind::Pcc, PolicyKind::LinuxThp}) {
        const auto with = ciSpec("bfs", kind, 25.0, 0.3);
        auto without = with;
        without.tweak = [](SystemConfig &cfg) {
            cfg.last_translation_cache = false;
        };
        without.tweak_key = "ltc=off";
        const auto results = runner.runMany({with, without});
        EXPECT_TRUE(*results[0] == *results[1])
            << "last-translation cache changed results for policy "
            << static_cast<int>(kind);
    }
}

TEST(Runner, GlobalRunnerIsConfigurable)
{
    Runner::setGlobalJobs(3);
    EXPECT_EQ(Runner::global().jobs(), 3u);
    Runner::setGlobalJobs(1);
    EXPECT_EQ(Runner::global().jobs(), 1u);
}

namespace {

/** A fresh journal path under the test temp dir. */
std::string
journalPath(const std::string &tag)
{
    const std::string path = ::testing::TempDir() + "pccsim-journal-" +
                             tag + "-" +
                             std::to_string(::getpid()) + ".txt";
    std::remove(path.c_str());
    return path;
}

/** An endless workload: only the watchdog can end it. */
ExperimentSpec
spinSpec()
{
    ExperimentSpec spec;
    spec.workload.name = "syn:spin:1:1000:1";
    spec.policy = PolicyKind::Base;
    spec.cap_percent = 0.0;
    return spec;
}

} // namespace

TEST(SpecKey, DistinguishesResilienceFields)
{
    const auto base = ciSpec("bfs", PolicyKind::Pcc);
    const std::string key = specKey(base);

    auto faults = base;
    faults.faults.alloc_fail_huge = 0.3;
    EXPECT_NE(key, specKey(faults));

    auto shocks = base;
    shocks.faults.shock_intervals = {2, 5};
    EXPECT_NE(key, specKey(shocks));

    auto invariants = base;
    invariants.check_invariants = true;
    EXPECT_NE(key, specKey(invariants));

    auto interval = base;
    interval.interval_accesses = 12'345;
    EXPECT_NE(key, specKey(interval));

    auto mutated = base;
    mutated.mutation = HotPathMutation::SkipL2Fill;
    EXPECT_NE(key, specKey(mutated));

    // The oracle is result-neutral, so it must NOT split the key: an
    // oracle-checked run may serve and be served by plain memo hits.
    auto checked = base;
    checked.oracle.enabled = true;
    EXPECT_EQ(key, specKey(checked));
}

TEST(Runner, JournalPersistsAndResumes)
{
    const std::string path = journalPath("resume");
    const auto specs = ciSuite();

    RunnerOptions options;
    options.jobs = 2;
    options.journal_path = path;
    std::vector<std::shared_ptr<const RunResult>> first;
    u64 appended = 0;
    {
        Runner writer(options);
        EXPECT_EQ(writer.stats().journal_loaded, 0u);
        first = writer.runMany(specs);
        appended = writer.stats().journal_appends;
        // Every keyed spec persists (none of these carry telemetry).
        EXPECT_EQ(appended, writer.stats().simulated);
        EXPECT_GT(appended, 0u);
    }

    // A new runner — a restarted process, as far as the journal is
    // concerned — must preload every persisted result and answer the
    // same batch without simulating anything keyed again.
    Runner resumed(options);
    const auto stats_before = resumed.stats();
    EXPECT_EQ(stats_before.journal_loaded, appended);
    EXPECT_EQ(stats_before.journal_malformed, 0u);
    EXPECT_EQ(resumed.memoSize(), static_cast<size_t>(appended));

    const auto second = resumed.runMany(specs);
    const auto stats_after = resumed.stats();
    EXPECT_GE(stats_after.memo_hits, appended);
    EXPECT_EQ(stats_after.simulated, 0u);
    ASSERT_EQ(first.size(), second.size());
    for (size_t i = 0; i < first.size(); ++i) {
        EXPECT_TRUE(*first[i] == *second[i])
            << "journal round-trip changed result " << i;
    }
    std::remove(path.c_str());
}

TEST(Runner, JournalToleratesTruncatedTail)
{
    // A crash mid-append leaves a partial last line; the loader must
    // keep every complete record and count the tail as malformed.
    const std::string path = journalPath("truncated");
    RunnerOptions options;
    options.jobs = 1;
    options.journal_path = path;
    u64 appended = 0;
    {
        Runner writer(options);
        writer.run(ciSpec("bfs", PolicyKind::Base, 0.0));
        writer.run(ciSpec("bfs", PolicyKind::Pcc));
        appended = writer.stats().journal_appends;
        EXPECT_EQ(appended, 2u);
    }
    {
        std::ofstream out(path, std::ios::app);
        out << "R deadbeef"; // no newline: torn mid-record
    }

    Runner resumed(options);
    EXPECT_EQ(resumed.stats().journal_loaded, appended);
    EXPECT_EQ(resumed.stats().journal_malformed, 1u);
    std::remove(path.c_str());
}

TEST(Runner, JournalRejectsCorruptedRecords)
{
    const std::string path = journalPath("corrupt");
    RunnerOptions options;
    options.jobs = 1;
    options.journal_path = path;
    {
        Runner writer(options);
        writer.run(ciSpec("bfs", PolicyKind::Base, 0.0));
    }
    // Flip payload bytes without updating the hash.
    std::string contents;
    {
        std::ifstream in(path);
        std::getline(in, contents, '\0');
    }
    const auto digit = contents.find_last_of("123456789");
    ASSERT_NE(digit, std::string::npos);
    contents[digit] = contents[digit] == '1' ? '2' : '1';
    {
        std::ofstream out(path, std::ios::trunc);
        out << contents;
    }

    Runner resumed(options);
    EXPECT_EQ(resumed.stats().journal_loaded, 0u);
    EXPECT_EQ(resumed.stats().journal_malformed, 1u);
    std::remove(path.c_str());
}

TEST(Runner, GuardedBatchMatchesUnguarded)
{
    const auto specs = ciSuite();
    Runner plain(2);
    Runner guarded(2);
    const auto expect = plain.runMany(specs);
    const auto outcomes = guarded.runManyGuarded(specs);
    ASSERT_EQ(outcomes.size(), expect.size());
    for (size_t i = 0; i < outcomes.size(); ++i) {
        ASSERT_TRUE(outcomes[i].ok())
            << i << ": " << outcomes[i].message;
        EXPECT_EQ(outcomes[i].fail, JobFail::None);
        EXPECT_TRUE(*outcomes[i].result == *expect[i]) << i;
    }
    EXPECT_EQ(guarded.stats().quarantined, 0u);
}

TEST(Runner, WatchdogQuarantinesHungJobWhileBatchCompletes)
{
    // One endless job must not wedge the batch: the watchdog cancels
    // it at the deadline and the healthy jobs still finish.
    // The deadline needs headroom for the *healthy* job: it bounds
    // every attempt in the batch, not just the hung one.
    RunnerOptions options;
    options.jobs = 2;
    options.deadline_ms = 5'000;
    options.watchdog_poll_ms = 10;
    Runner runner(options);

    const std::vector<ExperimentSpec> batch = {
        spinSpec(), ciSpec("bfs", PolicyKind::Base, 0.0)};
    const auto outcomes = runner.runManyGuarded(batch);
    ASSERT_EQ(outcomes.size(), 2u);
    EXPECT_EQ(outcomes[0].fail, JobFail::Timeout)
        << to_string(outcomes[0].fail);
    EXPECT_FALSE(outcomes[0].result);
    EXPECT_FALSE(outcomes[0].message.empty());
    EXPECT_TRUE(outcomes[1].ok()) << outcomes[1].message;
    EXPECT_EQ(runner.stats().quarantined, 1u);
    EXPECT_EQ(to_string(JobFail::Timeout), "timeout");
}

TEST(Runner, OracleDivergenceIsQuarantinedNotThrown)
{
    auto diverging = ciSpec("bfs", PolicyKind::Pcc);
    diverging.workload.name = "syn:uniform:8:200000:1";
    diverging.policy = PolicyKind::Base;
    diverging.mutation = HotPathMutation::SkipL2Fill;
    diverging.oracle.enabled = true;
    diverging.oracle.sample_every = 1;

    Runner runner(2);
    const auto outcomes = runner.runManyGuarded(
        {diverging, ciSpec("bfs", PolicyKind::Base, 0.0)});
    ASSERT_EQ(outcomes.size(), 2u);
    EXPECT_EQ(outcomes[0].fail, JobFail::Diverged);
    EXPECT_NE(outcomes[0].message.find("divergence"),
              std::string::npos);
    EXPECT_TRUE(outcomes[1].ok());
    EXPECT_EQ(runner.stats().quarantined, 1u);
}

TEST(Runner, MemoServedOutcomesTakeZeroAttempts)
{
    Runner runner(1);
    const auto spec = ciSpec("bfs", PolicyKind::Base, 0.0);
    const auto first = runner.runManyGuarded({spec});
    ASSERT_TRUE(first[0].ok());
    EXPECT_EQ(first[0].attempts, 1u);
    const auto again = runner.runManyGuarded({spec});
    ASSERT_TRUE(again[0].ok());
    EXPECT_EQ(again[0].attempts, 0u); // served from the memo
    EXPECT_EQ(runner.stats().simulated, 1u);
}

TEST(Runner, GlobalReconfigurationCountsMemoDiscards)
{
    Runner::setGlobalJobs(1);
    const u64 before = Runner::globalMemoDiscards();

    // Empty memo: replacing the runner discards nothing.
    Runner::setGlobalJobs(1);
    EXPECT_EQ(Runner::globalMemoDiscards(), before);

    Runner::global().run(ciSpec("bfs", PolicyKind::Base, 0.0));
    Runner::setGlobalJobs(1); // discards one memoized result
    EXPECT_EQ(Runner::globalMemoDiscards(), before + 1);
}
