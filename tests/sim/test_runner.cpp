#include <gtest/gtest.h>

#include "sim/runner.hpp"

using namespace pccsim;
using namespace pccsim::sim;

namespace {

ExperimentSpec
ciSpec(const std::string &workload, PolicyKind policy,
       double cap = 8.0, double frag = 0.0)
{
    ExperimentSpec spec;
    spec.workload.name = workload;
    spec.workload.scale = workloads::Scale::Ci;
    spec.policy = policy;
    spec.cap_percent = cap;
    spec.frag_fraction = frag;
    return spec;
}

/** A ci-scale suite covering every policy family plus fault injection. */
std::vector<ExperimentSpec>
ciSuite()
{
    std::vector<ExperimentSpec> specs;
    specs.push_back(ciSpec("bfs", PolicyKind::Base, 0.0));
    specs.push_back(ciSpec("bfs", PolicyKind::Pcc));
    specs.push_back(ciSpec("bfs", PolicyKind::LinuxThp, 25.0, 0.5));
    specs.push_back(ciSpec("pr", PolicyKind::Base, 0.0));
    specs.push_back(ciSpec("pr", PolicyKind::HawkEye, 25.0));
    specs.push_back(ciSpec("pr", PolicyKind::AllHuge, -1.0));

    // A faulty run: the injector is seeded from the spec inside each
    // simulation, so it must replay identically at any job count.
    auto faulty = ciSpec("bfs", PolicyKind::Pcc, 25.0, 0.3);
    faulty.tweak = [](SystemConfig &cfg) {
        cfg.faults.alloc_fail_huge = 0.3;
        cfg.faults.compaction_fail = 0.25;
        cfg.faults.shootdown_storm = 0.1;
        cfg.faults.shock_intervals = {2, 5};
        cfg.check_invariants = true;
    };
    faulty.tweak_key = "storm";
    specs.push_back(std::move(faulty));
    return specs;
}

} // namespace

TEST(SpecKey, IdenticalSpecsShareAKey)
{
    EXPECT_EQ(specKey(ciSpec("bfs", PolicyKind::Pcc)),
              specKey(ciSpec("bfs", PolicyKind::Pcc)));
}

TEST(SpecKey, DistinguishesEveryRunShapingField)
{
    const auto base = ciSpec("bfs", PolicyKind::Pcc);
    const std::string key = specKey(base);

    EXPECT_NE(key, specKey(ciSpec("pr", PolicyKind::Pcc)));
    EXPECT_NE(key, specKey(ciSpec("bfs", PolicyKind::LinuxThp)));
    EXPECT_NE(key, specKey(ciSpec("bfs", PolicyKind::Pcc, 16.0)));
    EXPECT_NE(key, specKey(ciSpec("bfs", PolicyKind::Pcc, 8.0, 0.5)));

    auto lanes = base;
    lanes.lanes = 4;
    EXPECT_NE(key, specKey(lanes));

    auto seeded = base;
    seeded.workload.seed = base.workload.seed + 1;
    EXPECT_NE(key, specKey(seeded));

    auto policy = base;
    policy.pcc_policy.regions_to_promote += 1;
    EXPECT_NE(key, specKey(policy));

    auto keyed = base;
    keyed.tweak = [](SystemConfig &) {};
    keyed.tweak_key = "variant-a";
    EXPECT_NE(key, specKey(keyed));
}

TEST(SpecKey, UnkeyedTweakIsNotMemoizable)
{
    auto spec = ciSpec("bfs", PolicyKind::Pcc);
    spec.tweak = [](SystemConfig &cfg) { cfg.pcc.pcc2m.entries = 7; };
    EXPECT_TRUE(specKey(spec).empty());
    spec.tweak_key = "pcc2m=7";
    EXPECT_FALSE(specKey(spec).empty());
}

TEST(Runner, ParallelIsBitIdenticalToSerial)
{
    const auto specs = ciSuite();
    Runner serial(1);
    Runner parallel(8);
    const auto a = serial.runMany(specs);
    const auto b = parallel.runMany(specs);
    ASSERT_EQ(a.size(), b.size());
    for (size_t i = 0; i < a.size(); ++i) {
        ASSERT_TRUE(a[i] && b[i]) << i;
        EXPECT_TRUE(*a[i] == *b[i]) << "spec " << i
                                    << " diverged across job counts";
    }
}

TEST(Runner, RepeatedBatchesStayDeterministic)
{
    // The memo must hand back the exact result a fresh simulation
    // would produce, and a second runner must reproduce it.
    const auto specs = ciSuite();
    Runner first(4);
    Runner second(2);
    const auto a = first.runMany(specs);
    const auto again = first.runMany(specs);
    const auto b = second.runMany(specs);
    for (size_t i = 0; i < specs.size(); ++i) {
        EXPECT_TRUE(*a[i] == *b[i]) << i;
        EXPECT_TRUE(*a[i] == *again[i]) << i;
    }
}

TEST(Runner, MemoizesAcrossCalls)
{
    Runner runner(2);
    const auto spec = ciSpec("bfs", PolicyKind::Base, 0.0);
    const auto first = runner.run(spec);
    const auto second = runner.run(spec);
    EXPECT_EQ(first.get(), second.get()); // same cached object
    const auto stats = runner.stats();
    EXPECT_EQ(stats.requested, 2u);
    EXPECT_EQ(stats.simulated, 1u);
    EXPECT_EQ(stats.memo_hits, 1u);
    EXPECT_GT(stats.total_accesses, 0u);
}

TEST(Runner, DeduplicatesWithinABatch)
{
    // The duplicated-baseline bug: harnesses used to re-run the Base
    // config once per variant. The runner collapses them.
    Runner runner(4);
    const auto base = ciSpec("bfs", PolicyKind::Base, 0.0);
    const auto results = runner.runMany({base, base, base});
    EXPECT_EQ(results[0].get(), results[1].get());
    EXPECT_EQ(results[0].get(), results[2].get());
    EXPECT_EQ(runner.stats().simulated, 1u);
    EXPECT_EQ(runner.stats().memo_hits, 2u);
}

TEST(Runner, UnkeyedTweakSimulatesEveryTime)
{
    Runner runner(2);
    auto spec = ciSpec("bfs", PolicyKind::Base, 0.0);
    spec.tweak = [](SystemConfig &cfg) { cfg.pwc.enabled = false; };
    const auto a = runner.run(spec);
    const auto b = runner.run(spec);
    EXPECT_NE(a.get(), b.get());
    EXPECT_EQ(runner.stats().simulated, 2u);
    EXPECT_EQ(runner.stats().memo_hits, 0u);
    EXPECT_TRUE(*a == *b); // still deterministic, just not cached
}

TEST(Runner, LastTranslationCacheNeverChangesResults)
{
    // The per-core (vpn, size) fast path is a pure CPU-time
    // optimization: every stat — TLB hits, walks, promotions,
    // shootdowns, wall cycles — must be identical with it disabled.
    // PolicyKind::Pcc promotes and demotes mid-run, so the shootdown
    // invalidation path is exercised too.
    Runner runner(2);
    for (PolicyKind kind : {PolicyKind::Pcc, PolicyKind::LinuxThp}) {
        const auto with = ciSpec("bfs", kind, 25.0, 0.3);
        auto without = with;
        without.tweak = [](SystemConfig &cfg) {
            cfg.last_translation_cache = false;
        };
        without.tweak_key = "ltc=off";
        const auto results = runner.runMany({with, without});
        EXPECT_TRUE(*results[0] == *results[1])
            << "last-translation cache changed results for policy "
            << static_cast<int>(kind);
    }
}

TEST(Runner, GlobalRunnerIsConfigurable)
{
    Runner::setGlobalJobs(3);
    EXPECT_EQ(Runner::global().jobs(), 3u);
    Runner::setGlobalJobs(1);
    EXPECT_EQ(Runner::global().jobs(), 1u);
}
