/**
 * @file
 * System-level tests of the multi-tenant node mode: the 1-tenant
 * bit-identity contract (tenant mode with a single job must reproduce
 * the legacy single-process run stat for stat, telemetry included),
 * the headline ASID-vs-flush comparison, determinism, the per-tenant
 * budget arbiter's audit trail, and config validation.
 */

#include <gtest/gtest.h>

#include "sim/system.hpp"
#include "workloads/synthetic.hpp"

using namespace pccsim;
using namespace pccsim::sim;

namespace {

workloads::SyntheticSpec
tenantSpec(u64 seed = 1)
{
    workloads::SyntheticSpec spec;
    spec.pattern = workloads::Pattern::HotRegions;
    spec.footprint_bytes = 32ull << 20;
    spec.hot_regions = 8;
    spec.ops = 400'000;
    spec.seed = seed;
    return spec;
}

SystemConfig
ciConfig(PolicyKind policy)
{
    SystemConfig cfg = SystemConfig::forScale(workloads::Scale::Ci);
    cfg.policy = policy;
    cfg.telemetry.enabled = true;
    cfg.telemetry.audit = true;
    return cfg;
}

SystemConfig
tenantConfig(PolicyKind policy, tenant::SwitchMode mode)
{
    SystemConfig cfg = ciConfig(policy);
    cfg.num_cores = 1;
    cfg.tenant.cores = 1;
    cfg.tenant.switch_mode = mode;
    return cfg;
}

u64
totalWalks(const RunResult &result)
{
    u64 walks = 0;
    for (const auto &job : result.jobs)
        walks += job.walks;
    return walks;
}

u64
counterOf(const RunResult &result, const std::string &name)
{
    for (const auto &[key, value] : result.telemetry->counters) {
        if (key == name)
            return value;
    }
    ADD_FAILURE() << "counter not found: " << name;
    return 0;
}

} // namespace

TEST(TenantMode, OneTenantAsidRunMatchesTheLegacyPathBitForBit)
{
    // The acceptance bar for the whole subsystem: with one tenant the
    // scheduler claims the core once, ASID 0 produces untagged TLB
    // keys, and the per-job tallies equal the per-core totals — so the
    // full RunResult (metrics AND telemetry content) must be equal.
    workloads::SyntheticWorkload legacy_w(tenantSpec());
    workloads::SyntheticWorkload tenant_w(tenantSpec());
    SystemConfig legacy_cfg = ciConfig(PolicyKind::Pcc);
    legacy_cfg.num_cores = 1;
    System legacy_sys(legacy_cfg);
    System tenant_sys(
        tenantConfig(PolicyKind::Pcc, tenant::SwitchMode::Asid));
    const auto legacy = legacy_sys.run(legacy_w);
    const auto tenanted = tenant_sys.run(tenant_w);
    EXPECT_TRUE(legacy == tenanted)
        << "1-tenant tenant-mode run diverged from the legacy path: "
        << "walks " << totalWalks(legacy) << " vs "
        << totalWalks(tenanted) << ", wall " << legacy.wall_cycles
        << " vs " << tenanted.wall_cycles;
}

TEST(TenantMode, AsidTaggingBeatsFlushOnSwitch)
{
    // Two tenants time-sharing one core. Flush-on-switch refills the
    // TLB hierarchy from scratch every quantum; ASID tagging lets both
    // tenants' entries coexist, so walks must drop measurably. The
    // working sets are sized to be TLB-*resident* once huge-backed (4
    // hot 2MB regions per tenant vs an 8-entry L1-2M + 16-entry L2 at
    // ci scale): with a set too big for the TLB every access misses in
    // both modes and the switch mode cannot matter.
    auto runMode = [](tenant::SwitchMode mode) {
        workloads::SyntheticSpec spec = tenantSpec(1);
        spec.hot_regions = 4;
        workloads::SyntheticWorkload wa(spec);
        spec.seed = 2;
        workloads::SyntheticWorkload wb(spec);
        SystemConfig cfg = tenantConfig(PolicyKind::AllHuge, mode);
        cfg.telemetry.enabled = false; // speed; metrics only
        System system(cfg);
        return system.run(
            {System::Job{&wa, 1}, System::Job{&wb, 1}});
    };
    const auto flush = runMode(tenant::SwitchMode::Flush);
    const auto asid = runMode(tenant::SwitchMode::Asid);
    ASSERT_EQ(flush.jobs.size(), 2u);
    ASSERT_EQ(asid.jobs.size(), 2u);
    // Same work happened in both modes...
    EXPECT_EQ(flush.total_accesses, asid.total_accesses);
    // ...but ASID coexistence avoids the post-switch refill storm.
    EXPECT_LT(totalWalks(asid), totalWalks(flush))
        << "ASID run should miss less than flush-on-switch";
    EXPECT_LT(asid.wall_cycles, flush.wall_cycles);
}

TEST(TenantMode, MultiTenantRunsAreDeterministic)
{
    auto runOnce = [] {
        workloads::SyntheticWorkload wa(tenantSpec(1));
        workloads::SyntheticWorkload wb(tenantSpec(2));
        System system(
            tenantConfig(PolicyKind::Pcc, tenant::SwitchMode::Asid));
        return system.run(
            {System::Job{&wa, 1}, System::Job{&wb, 1}});
    };
    const auto r1 = runOnce();
    const auto r2 = runOnce();
    EXPECT_TRUE(r1 == r2) << "same config + seeds must reproduce "
                             "identical results, telemetry included";
}

TEST(TenantMode, SchedulerTelemetryTracksSwitchesAndPerTenantOps)
{
    workloads::SyntheticWorkload wa(tenantSpec(1));
    workloads::SyntheticWorkload wb(tenantSpec(2));
    System system(
        tenantConfig(PolicyKind::Base, tenant::SwitchMode::Asid));
    const auto result = system.run(
        {System::Job{&wa, 1}, System::Job{&wb, 1}});
    ASSERT_NE(result.telemetry, nullptr);
    EXPECT_GT(counterOf(result, "tenant_switches"), 0u);
    // Equal workloads on one core: both tenants must have run, and
    // neither may be starved.
    const u64 ops0 = counterOf(result, "tenant0_ops");
    const u64 ops1 = counterOf(result, "tenant1_ops");
    EXPECT_GT(ops0, 0u);
    EXPECT_GT(ops1, 0u);
    EXPECT_EQ(ops0 + ops1, result.total_accesses);
}

TEST(TenantMode, ArbiterRecordsPerTenantBudgetRegret)
{
    // A deliberately starved budget (2 promotions per interval, split
    // between 2 tenants with ~8 hot regions each) forces the arbiter
    // to turn candidates away, and every such skip must land in the
    // audit trail as a tenant-budget decision with per-pid regret.
    workloads::SyntheticWorkload wa(tenantSpec(1));
    workloads::SyntheticWorkload wb(tenantSpec(2));
    SystemConfig cfg =
        tenantConfig(PolicyKind::Pcc, tenant::SwitchMode::Asid);
    cfg.pcc_policy.regions_to_promote = 2;
    cfg.pcc_policy.arbiter = "static";
    System system(cfg);
    const auto result = system.run(
        {System::Job{&wa, 1}, System::Job{&wb, 1}});
    ASSERT_NE(result.telemetry, nullptr);
    const auto &audit = result.telemetry->audit;
    u64 tenant_budget_skips = 0;
    for (const auto &[key, count] : audit.reason_counts) {
        if (key == "skip:tenant-budget")
            tenant_budget_skips = count;
    }
    EXPECT_GT(tenant_budget_skips, 0u)
        << "starved budget must produce tenant-budget skips";
    EXPECT_FALSE(audit.regret_by_pid.empty())
        << "regret must be attributed per tenant";
    EXPECT_GT(audit.regret_total_cycles, 0u);
}

TEST(TenantMode, ValidateRejectsIncompatibleConfigurations)
{
    SystemConfig good =
        tenantConfig(PolicyKind::Base, tenant::SwitchMode::Asid);
    ASSERT_TRUE(good.validate().ok()) << good.validate().toString();

    SystemConfig scalar = good;
    scalar.batch_engine = false;
    EXPECT_FALSE(scalar.validate().ok());

    SystemConfig sampled = good;
    sampled.sampling.window = 1000;
    sampled.sampling.fastforward = 1000;
    EXPECT_FALSE(sampled.validate().ok());

    SystemConfig oracled = good;
    oracled.oracle.enabled = true;
    EXPECT_FALSE(oracled.validate().ok());

    SystemConfig too_many_cores = good;
    too_many_cores.tenant.cores = 2; // > num_cores == 1
    EXPECT_FALSE(too_many_cores.validate().ok());

    SystemConfig zero_quantum = good;
    zero_quantum.tenant.quantum_ops = 0;
    EXPECT_FALSE(zero_quantum.validate().ok());
}
