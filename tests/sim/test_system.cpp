#include <gtest/gtest.h>

#include "sim/system.hpp"
#include "workloads/registry.hpp"
#include "workloads/synthetic.hpp"

using namespace pccsim;
using namespace pccsim::sim;

namespace {

SystemConfig
ciConfig(PolicyKind policy)
{
    SystemConfig cfg = SystemConfig::forScale(workloads::Scale::Ci);
    cfg.policy = policy;
    return cfg;
}

workloads::SyntheticSpec
hotSpec()
{
    workloads::SyntheticSpec spec;
    spec.pattern = workloads::Pattern::HotRegions;
    spec.footprint_bytes = 64ull << 20;
    spec.hot_regions = 8;
    spec.ops = 1'500'000;
    return spec;
}

} // namespace

TEST(System, BaselineRunProducesSaneMetrics)
{
    workloads::SyntheticWorkload w(hotSpec());
    System system(ciConfig(PolicyKind::Base));
    const auto result = system.run(w);
    ASSERT_EQ(result.jobs.size(), 1u);
    const auto &job = result.job();
    EXPECT_GT(job.wall_cycles, 0u);
    EXPECT_GT(job.accesses, hotSpec().ops);
    EXPECT_GT(job.walks, 0u);
    EXPECT_EQ(job.promotions, 0u);
    EXPECT_GT(job.faults, (64ull << 20) / mem::kBytes4K / 2);
    EXPECT_GT(job.tlbMissPercent(), 10.0) << "hot set >> TLB coverage";
    EXPECT_GE(job.refs_per_walk, 1.0);
    EXPECT_LE(job.refs_per_walk, 4.0);
}

TEST(System, RunsAreDeterministic)
{
    workloads::SyntheticWorkload w1(hotSpec());
    workloads::SyntheticWorkload w2(hotSpec());
    System s1(ciConfig(PolicyKind::Pcc));
    System s2(ciConfig(PolicyKind::Pcc));
    const auto r1 = s1.run(w1);
    const auto r2 = s2.run(w2);
    EXPECT_EQ(r1.job().wall_cycles, r2.job().wall_cycles);
    EXPECT_EQ(r1.job().walks, r2.job().walks);
    EXPECT_EQ(r1.job().promotions, r2.job().promotions);
}

TEST(System, AllHugeEliminatesWalksAndSpeedsUp)
{
    workloads::SyntheticWorkload base_w(hotSpec());
    workloads::SyntheticWorkload huge_w(hotSpec());
    System base_sys(ciConfig(PolicyKind::Base));
    System huge_sys(ciConfig(PolicyKind::AllHuge));
    const auto base = base_sys.run(base_w);
    const auto huge = huge_sys.run(huge_w);
    EXPECT_LT(huge.job().tlbMissPercent(), 1.0);
    EXPECT_GT(speedup(base, huge), 1.1);
    EXPECT_GT(huge.job().promotions, 0u); // fault-time THPs counted
}

TEST(System, PccPolicyPromotesHotRegions)
{
    workloads::SyntheticWorkload base_w(hotSpec());
    workloads::SyntheticWorkload pcc_w(hotSpec());
    System base_sys(ciConfig(PolicyKind::Base));
    SystemConfig cfg = ciConfig(PolicyKind::Pcc);
    cfg.promotion_cap_percent = 50.0;
    System pcc_sys(cfg);
    const auto base = base_sys.run(base_w);
    const auto pcc = pcc_sys.run(pcc_w);
    EXPECT_GT(pcc.job().promotions, 0u);
    EXPECT_LT(pcc.job().ptwPercent(), base.job().ptwPercent());
    EXPECT_GT(speedup(base, pcc), 1.05);
    EXPECT_GT(pcc.intervals, 0u);
    EXPECT_GT(pcc.shootdowns, 0u);
}

TEST(System, PromotionCapZeroForbidsPromotion)
{
    workloads::SyntheticWorkload w(hotSpec());
    SystemConfig cfg = ciConfig(PolicyKind::Pcc);
    cfg.promotion_cap_percent = 0.0;
    System system(cfg);
    const auto result = system.run(w);
    EXPECT_EQ(result.job().promotions, 0u);
}

TEST(System, FragmentationForcesCompaction)
{
    workloads::SyntheticWorkload w(hotSpec());
    SystemConfig cfg = ciConfig(PolicyKind::Pcc);
    cfg.frag_fraction = 0.5;
    cfg.promotion_cap_percent = 25.0;
    System system(cfg);
    const auto result = system.run(w);
    EXPECT_GT(result.job().promotions, 0u);
    EXPECT_GT(result.compactions, 0u);
}

TEST(System, MultiLaneRunCompletes)
{
    workloads::WorkloadSpec spec;
    spec.name = "pr";
    spec.scale = workloads::Scale::Ci;
    auto w = workloads::makeWorkload(spec);
    SystemConfig cfg = ciConfig(PolicyKind::Pcc);
    cfg.num_cores = 4;
    System system(cfg);
    const auto result = system.run(*w, 4);
    EXPECT_GT(result.job().accesses, 0u);
    EXPECT_GT(result.job().wall_cycles, 0u);
    // Wall time of the job is the max over its lanes' cores, so it is
    // bounded by total work but must reflect parallel division.
    EXPECT_LT(result.job().wall_cycles,
              result.job().accesses * 400ull);
}

TEST(System, MultiProcessRunsIsolateAddressSpaces)
{
    workloads::SyntheticWorkload wa(hotSpec());
    workloads::SyntheticSpec sb = hotSpec();
    sb.pattern = workloads::Pattern::Sequential;
    workloads::SyntheticWorkload wb(sb);

    // Base policy: promotions would otherwise erase the contrast this
    // test uses to check that the jobs' address spaces are isolated.
    SystemConfig cfg = ciConfig(PolicyKind::Base);
    cfg.num_cores = 2;
    System system(cfg);
    const auto result =
        system.run({System::Job{&wa, 1}, System::Job{&wb, 1}});
    ASSERT_EQ(result.jobs.size(), 2u);
    EXPECT_NE(result.jobs[0].pid, result.jobs[1].pid);
    // The random job misses; the streaming job barely does.
    EXPECT_GT(result.jobs[0].tlbMissPercent(),
              result.jobs[1].tlbMissPercent() * 5);
}

TEST(SystemDeathTest, MoreLanesThanCoresPanics)
{
    workloads::SyntheticWorkload w(hotSpec());
    System system(ciConfig(PolicyKind::Base));
    EXPECT_DEATH(system.run(w, 2), "more lanes than cores");
}

TEST(SystemConfigValidate, ShippedProfilesAreValid)
{
    for (auto scale :
         {workloads::Scale::Ci, workloads::Scale::Small,
          workloads::Scale::Medium, workloads::Scale::Paper}) {
        const SystemConfig cfg = SystemConfig::forScale(scale);
        EXPECT_TRUE(cfg.validate().ok()) << cfg.validate().toString();
    }
    const SystemConfig defaults;
    EXPECT_TRUE(defaults.validate().ok())
        << defaults.validate().toString();
}

TEST(SystemConfigValidate, RejectsImpossibleGeometry)
{
    SystemConfig cfg = SystemConfig::forScale(workloads::Scale::Ci);
    cfg.tlb.l2.ways = 3; // entries no longer divisible by ways
    const auto status = cfg.validate();
    ASSERT_FALSE(status.ok());
    EXPECT_NE(status.toString().find("tlb.l2"), std::string::npos)
        << status.toString();

    SystemConfig zero_way = SystemConfig::forScale(workloads::Scale::Ci);
    zero_way.tlb.l1_4k.ways = 0;
    EXPECT_FALSE(zero_way.validate().ok());

    SystemConfig bad_pcc = SystemConfig::forScale(workloads::Scale::Ci);
    bad_pcc.pcc.pcc2m.counter_bits = 0;
    EXPECT_FALSE(bad_pcc.validate().ok());

    // Cache sizes must divide into whole ways of whole lines, but a
    // non-power-of-two set count is a supported geometry (modulo
    // indexing), e.g. the paper profile's 20MB 16-way LLC.
    SystemConfig bad_cache = SystemConfig::forScale(workloads::Scale::Ci);
    bad_cache.cache.llc.size_bytes += 1;
    EXPECT_FALSE(bad_cache.validate().ok());
    SystemConfig odd_sets = SystemConfig::forScale(workloads::Scale::Ci);
    odd_sets.cache.llc = {20 * 1024 * 1024, 16, 64};
    EXPECT_TRUE(odd_sets.validate().ok())
        << odd_sets.validate().toString();
}

TEST(SystemConfigValidate, RejectsNonsenseRunParameters)
{
    SystemConfig cfg = SystemConfig::forScale(workloads::Scale::Ci);
    cfg.num_cores = 0;
    cfg.interval_accesses = 0;
    cfg.promotion_cap_percent = 150.0;
    cfg.frag_fraction = 2.0;
    const auto status = cfg.validate();
    ASSERT_FALSE(status.ok());
    // The sweep reports the first failure and counts the rest instead
    // of stopping at one.
    EXPECT_GE(status.extraFailures(), 3u) << status.toString();
}

TEST(SystemConfigValidate, RejectsEnabledTelemetryWithoutTopK)
{
    SystemConfig cfg = SystemConfig::forScale(workloads::Scale::Ci);
    cfg.telemetry.enabled = true;
    cfg.telemetry.top_k = 0;
    EXPECT_FALSE(cfg.validate().ok());
    cfg.telemetry.top_k = 8;
    EXPECT_TRUE(cfg.validate().ok());
}

TEST(SystemConfigValidateDeathTest, RunRefusesAnInvalidConfig)
{
    workloads::SyntheticWorkload w(hotSpec());
    SystemConfig cfg = ciConfig(PolicyKind::Base);
    cfg.interval_accesses = 0;
    System system(cfg);
    EXPECT_DEATH(system.run(w), "invalid SystemConfig");
}

TEST(PolicyKindNames, ParseRoundTripsWithToString)
{
    for (auto kind :
         {PolicyKind::Base, PolicyKind::AllHuge, PolicyKind::LinuxThp,
          PolicyKind::HawkEye, PolicyKind::Pcc,
          PolicyKind::TraceReplay}) {
        const auto parsed = parsePolicyKind(to_string(kind));
        ASSERT_TRUE(parsed.has_value()) << to_string(kind);
        EXPECT_EQ(*parsed, kind);
    }
    // Short aliases accepted by the CLI surfaces.
    EXPECT_EQ(parsePolicyKind("base"), PolicyKind::Base);
    EXPECT_EQ(parsePolicyKind("4k"), PolicyKind::Base);
    EXPECT_EQ(parsePolicyKind("thp"), PolicyKind::LinuxThp);
    EXPECT_EQ(parsePolicyKind("huge"), PolicyKind::AllHuge);
    // Typos surface as nullopt so callers can report them.
    EXPECT_FALSE(parsePolicyKind("pccx").has_value());
    EXPECT_FALSE(parsePolicyKind("").has_value());
}
