#include <gtest/gtest.h>

#include "sim/system.hpp"
#include "workloads/synthetic.hpp"

using namespace pccsim;
using namespace pccsim::sim;

namespace {

SystemConfig
checkedConfig(PolicyKind policy)
{
    SystemConfig cfg = SystemConfig::forScale(workloads::Scale::Ci);
    cfg.policy = policy;
    cfg.check_invariants = true;
    return cfg;
}

workloads::SyntheticSpec
hotSpec()
{
    workloads::SyntheticSpec spec;
    spec.pattern = workloads::Pattern::HotRegions;
    spec.footprint_bytes = 64ull << 20;
    spec.hot_regions = 8;
    spec.ops = 1'500'000;
    return spec;
}

/** Everything on at once: the full hostile environment. */
SystemConfig
stormConfig()
{
    SystemConfig cfg = checkedConfig(PolicyKind::Pcc);
    cfg.frag_fraction = 0.3;
    cfg.promotion_cap_percent = 50.0;
    cfg.faults.alloc_fail_base = 0.02;
    cfg.faults.alloc_fail_huge = 0.3;
    cfg.faults.compaction_fail = 0.3;
    cfg.faults.compaction_partial = 0.3;
    cfg.faults.partial_move_limit = 4;
    cfg.faults.shootdown_storm = 0.2;
    cfg.faults.shock_intervals = {2, 5};
    return cfg;
}

RunResult
runWith(const SystemConfig &cfg)
{
    workloads::SyntheticWorkload w(hotSpec());
    System system(cfg);
    return system.run(w);
}

/** Every scenario must leave the cross-layer invariants intact. */
void
expectInvariantsClean(const RunResult &result)
{
    EXPECT_GT(result.resilience.invariant_checks, 0u);
    EXPECT_EQ(result.resilience.invariant_failures, 0u)
        << result.resilience.first_invariant_failure;
}

} // namespace

TEST(Faults, HugeAllocFailuresAreSurvived)
{
    SystemConfig cfg = checkedConfig(PolicyKind::Pcc);
    cfg.faults.alloc_fail_huge = 0.5;
    // Compaction always fails too, so a denied allocation cannot be
    // healed within the same attempt — the backoff retry must kick in.
    cfg.faults.compaction_fail = 1.0;
    const auto result = runWith(cfg);
    EXPECT_GT(result.job().accesses, 0u);
    EXPECT_GT(result.resilience.injected_alloc_fails, 0u);
    EXPECT_GT(result.resilience.promote_retries, 0u);
    EXPECT_GT(result.job().promotions, 0u); // degraded, not dead
    expectInvariantsClean(result);
}

TEST(Faults, BaseAllocFailuresTriggerPressureReclaim)
{
    SystemConfig cfg = checkedConfig(PolicyKind::AllHuge);
    cfg.faults.alloc_fail_huge = 0.6; // force base-page fallbacks...
    cfg.faults.alloc_fail_base = 0.05; // ...and then deny some of those
    // Several lanes init their slices concurrently, so when pressure
    // strikes one lane, other lanes' freshly promoted regions still
    // have never-touched (bloat) frames for reclaim to harvest.
    cfg.num_cores = 4;
    workloads::SyntheticWorkload w(hotSpec());
    System system(cfg);
    const auto result = system.run(w, 4);
    EXPECT_GT(result.resilience.reclaim_events, 0u);
    EXPECT_GT(result.resilience.reclaim_demotions, 0u);
    EXPECT_GT(result.resilience.reclaimed_frames, 0u);
    expectInvariantsClean(result);
}

TEST(Faults, CompactionFailuresUnderFragmentation)
{
    SystemConfig cfg = checkedConfig(PolicyKind::Pcc);
    cfg.frag_fraction = 0.5;
    cfg.promotion_cap_percent = 25.0;
    cfg.faults.compaction_fail = 0.5;
    const auto result = runWith(cfg);
    EXPECT_GT(result.resilience.injected_compaction_fails, 0u);
    EXPECT_GT(result.job().promotions, 0u);
    expectInvariantsClean(result);
}

TEST(Faults, PartialCompactionAbortsRollBackSafely)
{
    SystemConfig cfg = checkedConfig(PolicyKind::Pcc);
    cfg.frag_fraction = 0.5;
    cfg.promotion_cap_percent = 25.0;
    cfg.faults.compaction_partial = 0.8;
    cfg.faults.partial_move_limit = 4;
    const auto result = runWith(cfg);
    EXPECT_GT(result.resilience.injected_compaction_fails, 0u);
    // Rolled-back partial migrations must leave no trace the invariant
    // sweep can see: no lost frames, no dangling reverse mappings.
    expectInvariantsClean(result);
}

TEST(Faults, ShootdownStormsInflateRuntime)
{
    SystemConfig storm = checkedConfig(PolicyKind::Pcc);
    storm.faults.shootdown_storm = 1.0;
    const auto stormy = runWith(storm);
    const auto clean = runWith(checkedConfig(PolicyKind::Pcc));
    EXPECT_GT(stormy.resilience.shootdown_storms, 0u);
    EXPECT_GT(stormy.job().wall_cycles, clean.job().wall_cycles);
    expectInvariantsClean(stormy);
}

TEST(Faults, FragmentationShocksLandOnSchedule)
{
    SystemConfig cfg = checkedConfig(PolicyKind::Pcc);
    cfg.faults.shock_intervals = {2, 5};
    const auto result = runWith(cfg);
    EXPECT_EQ(result.resilience.frag_shocks, 2u);
    EXPECT_GT(result.resilience.shock_blocks_pinned, 0u);
    expectInvariantsClean(result);
}

TEST(Faults, FullStormCompletesWithInvariantsIntact)
{
    const auto result = runWith(stormConfig());
    EXPECT_GT(result.job().accesses, 0u);
    EXPECT_GT(result.job().wall_cycles, 0u);
    EXPECT_GT(result.resilience.injected_alloc_fails, 0u);
    EXPECT_GT(result.resilience.injected_compaction_fails, 0u);
    EXPECT_EQ(result.resilience.frag_shocks, 2u);
    expectInvariantsClean(result);
}

TEST(Faults, InjectedRunsAreDeterministic)
{
    const auto r1 = runWith(stormConfig());
    const auto r2 = runWith(stormConfig());
    EXPECT_EQ(r1.job().wall_cycles, r2.job().wall_cycles);
    EXPECT_EQ(r1.job().walks, r2.job().walks);
    EXPECT_EQ(r1.job().faults, r2.job().faults);
    EXPECT_EQ(r1.job().promotions, r2.job().promotions);
    EXPECT_EQ(r1.job().demotions, r2.job().demotions);
    EXPECT_EQ(r1.os_background_cycles, r2.os_background_cycles);
    EXPECT_EQ(r1.compactions, r2.compactions);
    EXPECT_EQ(r1.shootdowns, r2.shootdowns);
    EXPECT_EQ(r1.resilience.injected_alloc_fails,
              r2.resilience.injected_alloc_fails);
    EXPECT_EQ(r1.resilience.injected_compaction_fails,
              r2.resilience.injected_compaction_fails);
    EXPECT_EQ(r1.resilience.shootdown_storms,
              r2.resilience.shootdown_storms);
    EXPECT_EQ(r1.resilience.shock_blocks_pinned,
              r2.resilience.shock_blocks_pinned);
    EXPECT_EQ(r1.resilience.promote_retries,
              r2.resilience.promote_retries);
    EXPECT_EQ(r1.resilience.reclaim_events, r2.resilience.reclaim_events);
    EXPECT_EQ(r1.resilience.reclaimed_frames,
              r2.resilience.reclaimed_frames);
}

TEST(Faults, DifferentSeedsChangeTheFaultSchedule)
{
    SystemConfig a = stormConfig();
    SystemConfig b = stormConfig();
    b.seed = 2;
    const auto ra = runWith(a);
    const auto rb = runWith(b);
    // The schedule is a function of the seed; with hundreds of gated
    // events the tallies almost surely differ — and must stay valid.
    EXPECT_NE(ra.resilience.injected_alloc_fails,
              rb.resilience.injected_alloc_fails);
    expectInvariantsClean(rb);
}
