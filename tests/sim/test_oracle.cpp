#include <gtest/gtest.h>

#include "sim/experiment.hpp"
#include "sim/fuzz.hpp"
#include "sim/oracle.hpp"

using namespace pccsim;
using namespace pccsim::sim;

namespace {

ExperimentSpec
oracleSpec(const std::string &workload, PolicyKind policy,
           u64 sample_every)
{
    ExperimentSpec spec;
    spec.workload.name = workload;
    spec.workload.scale = workloads::Scale::Ci;
    spec.policy = policy;
    spec.cap_percent = 25.0;
    spec.oracle.enabled = true;
    spec.oracle.sample_every = sample_every;
    return spec;
}

} // namespace

TEST(Oracle, CleanRunPassesFullLockstep)
{
    // Per-access compare against the reference model over a real
    // workload and the full PCC policy: promotions, shootdowns, LTC.
    EXPECT_NO_THROW(runOne(oracleSpec("bfs", PolicyKind::Pcc, 1)));
}

TEST(Oracle, CleanRunPassesEveryPolicy)
{
    for (PolicyKind kind :
         {PolicyKind::Base, PolicyKind::AllHuge, PolicyKind::LinuxThp,
          PolicyKind::HawkEye, PolicyKind::Pcc}) {
        EXPECT_NO_THROW(runOne(oracleSpec("dedup", kind, 1)))
            << "policy " << static_cast<int>(kind);
    }
}

TEST(Oracle, SampledCompareStillAuditsCounters)
{
    // sample_every > 1 skips per-access compares but the end-of-run
    // counter audit still runs; a clean run must pass both.
    EXPECT_NO_THROW(runOne(oracleSpec("bfs", PolicyKind::Pcc, 64)));
}

TEST(Oracle, IsResultNeutral)
{
    auto checked = oracleSpec("pr", PolicyKind::Pcc, 1);
    auto plain = checked;
    plain.oracle = OracleConfig{};
    EXPECT_TRUE(runOne(plain) == runOne(checked));
}

TEST(Oracle, CatchesSkipL2FillMutation)
{
    FuzzSpec spec;
    spec.pattern = "uniform";
    spec.footprint_mb = 8;
    spec.ops = 200'000;
    spec.seed = 7;
    spec.policy = PolicyKind::Base;
    spec.mutation = HotPathMutation::SkipL2Fill;

    auto ex = spec.toExperiment();
    ex.oracle.enabled = true;
    ex.oracle.sample_every = 1;
    try {
        runOne(ex);
        FAIL() << "planted miss-path bug went unnoticed";
    } catch (const OracleError &e) {
        EXPECT_GT(e.divergence().access_index, 0u);
        EXPECT_NE(std::string(e.what()).find("mismatch"),
                  std::string::npos);
    }
}

TEST(Oracle, CatchesStaleLtcMutation)
{
    // A shootdown that forgets to clear the last-translation cache:
    // streaming under the PCC policy promotes the region mid-stream,
    // and the stale fast path then serves a dead 4K translation.
    FuzzSpec spec;
    spec.pattern = "seq";
    spec.footprint_mb = 1;
    spec.ops = 40'000;
    spec.seed = 7;
    spec.policy = PolicyKind::Pcc;
    spec.interval_accesses = 1'000;
    spec.mutation = HotPathMutation::StaleLtc;

    auto ex = spec.toExperiment();
    ex.oracle.enabled = true;
    ex.oracle.sample_every = 1;
    EXPECT_THROW(runOne(ex), OracleError);
}

TEST(Oracle, ShrinksPlantedBugToSmallRepro)
{
    // The acceptance bar: a planted hot-path bug must shrink to a
    // repro with at most 1/8 of the original access count.
    FuzzSpec planted;
    planted.pattern = "uniform";
    planted.footprint_mb = 8;
    planted.ops = 200'000;
    planted.seed = 7;
    planted.policy = PolicyKind::Base;
    planted.mutation = HotPathMutation::SkipL2Fill;

    const auto failure = checkSpec(planted, 2);
    ASSERT_TRUE(failure.has_value());
    EXPECT_EQ(failure->kind, "oracle");

    const FuzzSpec small = shrink(planted, 2);
    EXPECT_LE(small.ops, planted.ops / 8)
        << "shrunk repro: " << small.toString();
    const auto still = checkSpec(small, 2);
    ASSERT_TRUE(still.has_value());
    EXPECT_EQ(still->kind, "oracle");
}

TEST(Fuzz, SpecStringRoundTrips)
{
    FuzzSpec spec;
    spec.pattern = "hot";
    spec.footprint_mb = 16;
    spec.ops = 123'456;
    spec.hot_regions = 3;
    spec.seed = 0xdeadbeefull;
    spec.lanes = 4;
    spec.policy = PolicyKind::HawkEye;
    spec.cap_percent = 25.0;
    spec.frag_fraction = 0.3;
    spec.telemetry = true;
    spec.check_invariants = true;
    spec.interval_accesses = 20'000;
    spec.alloc_fail_huge = 0.2;
    spec.shootdown_storm = 0.05;
    spec.shock_period = 4;
    spec.mutation = HotPathMutation::StaleLtc;

    const auto parsed = FuzzSpec::parse(spec.toString());
    ASSERT_TRUE(parsed.has_value());
    EXPECT_TRUE(*parsed == spec);
    EXPECT_EQ(parsed->toString(), spec.toString());
}

TEST(Fuzz, RejectsMalformedSpecStrings)
{
    EXPECT_FALSE(FuzzSpec::parse("").has_value());
    EXPECT_FALSE(FuzzSpec::parse("fz9 pat=seq").has_value());
    EXPECT_FALSE(FuzzSpec::parse("fz1 pat=bogus").has_value());
    EXPECT_FALSE(FuzzSpec::parse("fz1 pat=seq ops=abc").has_value());
    EXPECT_FALSE(FuzzSpec::parse("fz1 pat=seq unknown=1").has_value());
    EXPECT_FALSE(FuzzSpec::parse("fz1 pat=seq fp=0").has_value());
}

TEST(Fuzz, RandomSpecsAreDeterministic)
{
    for (u64 i = 0; i < 8; ++i)
        EXPECT_TRUE(randomSpec(42, i) == randomSpec(42, i)) << i;
    EXPECT_FALSE(randomSpec(42, 0) == randomSpec(42, 1));
}

TEST(Fuzz, ShortCleanCampaignFindsNothing)
{
    const auto campaign = runCampaign(2026, 3, 2, false);
    EXPECT_EQ(campaign.iterations, 3u);
    EXPECT_TRUE(campaign.failures.empty());
}
