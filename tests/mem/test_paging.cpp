#include <gtest/gtest.h>

#include "mem/paging.hpp"

using namespace pccsim;
using namespace pccsim::mem;

TEST(Paging, Constants)
{
    EXPECT_EQ(kBytes4K, 4096u);
    EXPECT_EQ(kBytes2M, 2u * 1024 * 1024);
    EXPECT_EQ(kBytes1G, 1024ull * 1024 * 1024);
    EXPECT_EQ(kPagesPer2M, 512u);
    EXPECT_EQ(k2MPer1G, 512u);
}

TEST(Paging, ShiftAndBytes)
{
    EXPECT_EQ(shiftOf(PageSize::Base4K), 12u);
    EXPECT_EQ(shiftOf(PageSize::Huge2M), 21u);
    EXPECT_EQ(shiftOf(PageSize::Huge1G), 30u);
    EXPECT_EQ(bytesOf(PageSize::Base4K), kBytes4K);
    EXPECT_EQ(bytesOf(PageSize::Huge2M), kBytes2M);
}

TEST(Paging, VpnOfAndPageBase)
{
    const Addr a = 0x10000'0000ull + 5 * kBytes2M + 1234;
    EXPECT_EQ(vpnOf(a, PageSize::Base4K), a >> 12);
    EXPECT_EQ(vpnOf(a, PageSize::Huge2M), a >> 21);
    EXPECT_EQ(pageBase(a, PageSize::Huge2M),
              0x10000'0000ull + 5 * kBytes2M);
    EXPECT_EQ(pageBase(a, PageSize::Base4K), a & ~0xfffull);
}

TEST(Paging, AlignmentHelpers)
{
    EXPECT_TRUE(isAligned(0, PageSize::Huge2M));
    EXPECT_TRUE(isAligned(kBytes2M, PageSize::Huge2M));
    EXPECT_FALSE(isAligned(kBytes2M + 1, PageSize::Huge2M));
    EXPECT_EQ(alignUp(1, PageSize::Base4K), kBytes4K);
    EXPECT_EQ(alignUp(kBytes2M, PageSize::Huge2M), kBytes2M);
    EXPECT_EQ(alignUp(kBytes2M + 1, PageSize::Huge2M), 2 * kBytes2M);
}

TEST(Paging, RoundUpPages)
{
    EXPECT_EQ(roundUpPages(0, PageSize::Base4K), 0u);
    EXPECT_EQ(roundUpPages(1, PageSize::Base4K), 1u);
    EXPECT_EQ(roundUpPages(kBytes4K + 1, PageSize::Base4K), 2u);
    EXPECT_EQ(roundUpPages(kBytes2M, PageSize::Huge2M), 1u);
}

TEST(Paging, CrossGranularityVpnConversion)
{
    const Vpn vpn4k = (7ull << 18) + 123; // inside 1GB region 7
    EXPECT_EQ(vpn4KTo1G(vpn4k), 7u);
    EXPECT_EQ(vpn4KTo2M(vpn4k), vpn4k >> 9);
}

TEST(Paging, Names)
{
    EXPECT_EQ(nameOf(PageSize::Base4K), "4KB");
    EXPECT_EQ(nameOf(PageSize::Huge2M), "2MB");
    EXPECT_EQ(nameOf(PageSize::Huge1G), "1GB");
}
