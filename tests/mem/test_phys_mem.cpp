#include <gtest/gtest.h>

#include "mem/phys_mem.hpp"

using namespace pccsim;
using namespace pccsim::mem;

namespace {

constexpr u64 kMem = 64 * kBytes2M; // 64 blocks

} // namespace

TEST(PhysMem, BaseAllocationRecordsOwner)
{
    PhysicalMemory pm(kMem);
    auto pfn = pm.allocBase(3, 0x1234);
    ASSERT_TRUE(pfn);
    EXPECT_EQ(pm.useOf(*pfn), FrameUse::AppBase);
    EXPECT_EQ(pm.ownerOf(*pfn).pid, 3u);
    EXPECT_EQ(pm.ownerOf(*pfn).vpn4k, 0x1234u);
    pm.freeBase(*pfn);
    EXPECT_EQ(pm.useOf(*pfn), FrameUse::Free);
}

TEST(PhysMem, HugeAllocationMarksWholeBlock)
{
    PhysicalMemory pm(kMem);
    auto pfn = pm.allocHuge(1, 0);
    ASSERT_TRUE(pfn);
    EXPECT_EQ(*pfn % kPagesPer2M, 0u);
    for (u64 i = 0; i < kPagesPer2M; ++i)
        EXPECT_EQ(pm.useOf(*pfn + i), FrameUse::AppHuge);
    pm.freeHuge(*pfn);
    EXPECT_EQ(pm.useOf(*pfn), FrameUse::Free);
}

TEST(PhysMem, FragmentPinsRequestedShare)
{
    PhysicalMemory pm(kMem);
    Rng rng(7);
    const u64 pinned = pm.fragment(0.5, rng);
    EXPECT_EQ(pinned, 32u);
    EXPECT_EQ(pm.pinnedBlocks(), 32u);
    // Pinned blocks cannot form huge frames.
    EXPECT_EQ(pm.hugeFramesAvailable(), 32u);
}

TEST(PhysMem, ScrambleRemovesReadyHugeFrames)
{
    PhysicalMemory pm(kMem);
    Rng rng(7);
    pm.fragment(0.5, rng);
    pm.scramble(rng);
    EXPECT_EQ(pm.hugeFramesAvailable(), 0u);
    // But unpinned blocks remain compactable.
    EXPECT_EQ(pm.compactableBlocks(), 32u);
}

TEST(PhysMem, CompactionLiberatesScrambledBlock)
{
    PhysicalMemory pm(kMem);
    Rng rng(9);
    pm.fragment(0.5, rng);
    pm.scramble(rng);
    ASSERT_EQ(pm.hugeFramesAvailable(), 0u);

    auto result = pm.compactOneBlock();
    ASSERT_TRUE(result);
    EXPECT_EQ(pm.hugeFramesAvailable(), 1u);
    // Filler moves carry the filler pid so the OS can skip them.
    for (const auto &move : result->moves)
        EXPECT_EQ(move.owner.pid, kFillerPid);
    EXPECT_TRUE(pm.allocHuge(0, 0).has_value());
}

TEST(PhysMem, CompactionMovesAppPagesWithOwners)
{
    PhysicalMemory pm(8 * kBytes2M);
    // Fill one whole block with app pages, then compact it away.
    std::vector<Pfn> frames;
    for (u64 i = 0; i < kPagesPer2M; ++i) {
        auto pfn = pm.allocBase(1, 1000 + i);
        ASSERT_TRUE(pfn);
        frames.push_back(*pfn);
    }
    const u64 before = pm.freeFrames();
    auto result = pm.compactOneBlock();
    ASSERT_TRUE(result);
    EXPECT_EQ(result->moves.size(), kPagesPer2M);
    EXPECT_EQ(pm.freeFrames(), before); // moves conserve usage
    for (const auto &move : result->moves) {
        EXPECT_EQ(pm.useOf(move.from), FrameUse::Free);
        EXPECT_EQ(pm.useOf(move.to), FrameUse::AppBase);
        EXPECT_EQ(pm.ownerOf(move.to).pid, 1u);
        EXPECT_EQ(move.owner.vpn4k, pm.ownerOf(move.to).vpn4k);
    }
}

TEST(PhysMem, CompactionSkipsPinnedAndHugeBlocks)
{
    PhysicalMemory pm(2 * kBytes2M); // 2 blocks only
    Rng rng(3);
    // Pin a page in every block: nothing is compactable.
    pm.fragment(1.0, rng);
    EXPECT_EQ(pm.compactableBlocks(), 0u);
    EXPECT_FALSE(pm.compactOneBlock().has_value());
}

TEST(PhysMem, SplitHugeReassignsOwnership)
{
    PhysicalMemory pm(kMem);
    auto pfn = pm.allocHuge(2, 4096);
    ASSERT_TRUE(pfn);
    pm.splitHuge(*pfn, 2, 4096);
    for (u64 i = 0; i < kPagesPer2M; ++i) {
        EXPECT_EQ(pm.useOf(*pfn + i), FrameUse::AppBase);
        EXPECT_EQ(pm.ownerOf(*pfn + i).vpn4k, 4096 + i);
    }
    // Split frames can be individually freed and re-coalesce.
    for (u64 i = 0; i < kPagesPer2M; ++i)
        pm.freeBase(*pfn + i);
    EXPECT_TRUE(pm.allocHuge(0, 0).has_value());
}

TEST(PhysMem, HugeAllocationFailsWhenFragmented)
{
    PhysicalMemory pm(4 * kBytes2M);
    Rng rng(5);
    pm.fragment(1.0, rng);
    EXPECT_FALSE(pm.allocHuge(0, 0).has_value());
    EXPECT_GT(pm.stats().get("alloc_huge_fail"), 0u);
}

TEST(PhysMem, FragmentZeroIsNoop)
{
    PhysicalMemory pm(kMem);
    Rng rng(1);
    EXPECT_EQ(pm.fragment(0.0, rng), 0u);
    EXPECT_EQ(pm.hugeFramesAvailable(), 64u);
}

TEST(PhysMem, AccountingCounters)
{
    PhysicalMemory pm(kMem);
    EXPECT_EQ(pm.totalBlocks(), 64u);
    EXPECT_EQ(pm.totalFrames(), 64u * 512);
    auto a = pm.allocBase(0, 1);
    auto b = pm.allocHuge(0, 512);
    ASSERT_TRUE(a && b);
    EXPECT_EQ(pm.freeFrames(), 64u * 512 - 1 - 512);
    EXPECT_EQ(pm.stats().get("alloc_base"), 1u);
    EXPECT_EQ(pm.stats().get("alloc_huge"), 1u);
}
