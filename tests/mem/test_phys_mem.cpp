#include <gtest/gtest.h>

#include "mem/phys_mem.hpp"

using namespace pccsim;
using namespace pccsim::mem;

namespace {

constexpr u64 kMem = 64 * kBytes2M; // 64 blocks

} // namespace

TEST(PhysMem, BaseAllocationRecordsOwner)
{
    PhysicalMemory pm(kMem);
    auto pfn = pm.allocBase(3, 0x1234);
    ASSERT_TRUE(pfn);
    EXPECT_EQ(pm.useOf(*pfn), FrameUse::AppBase);
    EXPECT_EQ(pm.ownerOf(*pfn).pid, 3u);
    EXPECT_EQ(pm.ownerOf(*pfn).vpn4k, 0x1234u);
    pm.freeBase(*pfn);
    EXPECT_EQ(pm.useOf(*pfn), FrameUse::Free);
}

TEST(PhysMem, HugeAllocationMarksWholeBlock)
{
    PhysicalMemory pm(kMem);
    auto pfn = pm.allocHuge(1, 0);
    ASSERT_TRUE(pfn);
    EXPECT_EQ(*pfn % kPagesPer2M, 0u);
    for (u64 i = 0; i < kPagesPer2M; ++i)
        EXPECT_EQ(pm.useOf(*pfn + i), FrameUse::AppHuge);
    pm.freeHuge(*pfn);
    EXPECT_EQ(pm.useOf(*pfn), FrameUse::Free);
}

TEST(PhysMem, FragmentPinsRequestedShare)
{
    PhysicalMemory pm(kMem);
    Rng rng(7);
    const u64 pinned = pm.fragment(0.5, rng);
    EXPECT_EQ(pinned, 32u);
    EXPECT_EQ(pm.pinnedBlocks(), 32u);
    // Pinned blocks cannot form huge frames.
    EXPECT_EQ(pm.hugeFramesAvailable(), 32u);
}

TEST(PhysMem, ScrambleRemovesReadyHugeFrames)
{
    PhysicalMemory pm(kMem);
    Rng rng(7);
    pm.fragment(0.5, rng);
    pm.scramble(rng);
    EXPECT_EQ(pm.hugeFramesAvailable(), 0u);
    // But unpinned blocks remain compactable.
    EXPECT_EQ(pm.compactableBlocks(), 32u);
}

TEST(PhysMem, CompactionLiberatesScrambledBlock)
{
    PhysicalMemory pm(kMem);
    Rng rng(9);
    pm.fragment(0.5, rng);
    pm.scramble(rng);
    ASSERT_EQ(pm.hugeFramesAvailable(), 0u);

    auto result = pm.compactOneBlock();
    ASSERT_TRUE(result);
    EXPECT_EQ(pm.hugeFramesAvailable(), 1u);
    // Filler moves carry the filler pid so the OS can skip them.
    for (const auto &move : result->moves)
        EXPECT_EQ(move.owner.pid, kFillerPid);
    EXPECT_TRUE(pm.allocHuge(0, 0).has_value());
}

TEST(PhysMem, CompactionMovesAppPagesWithOwners)
{
    PhysicalMemory pm(8 * kBytes2M);
    // Fill one whole block with app pages, then compact it away.
    std::vector<Pfn> frames;
    for (u64 i = 0; i < kPagesPer2M; ++i) {
        auto pfn = pm.allocBase(1, 1000 + i);
        ASSERT_TRUE(pfn);
        frames.push_back(*pfn);
    }
    const u64 before = pm.freeFrames();
    auto result = pm.compactOneBlock();
    ASSERT_TRUE(result);
    EXPECT_EQ(result->moves.size(), kPagesPer2M);
    EXPECT_EQ(pm.freeFrames(), before); // moves conserve usage
    for (const auto &move : result->moves) {
        EXPECT_EQ(pm.useOf(move.from), FrameUse::Free);
        EXPECT_EQ(pm.useOf(move.to), FrameUse::AppBase);
        EXPECT_EQ(pm.ownerOf(move.to).pid, 1u);
        EXPECT_EQ(move.owner.vpn4k, pm.ownerOf(move.to).vpn4k);
    }
}

TEST(PhysMem, CompactionSkipsPinnedAndHugeBlocks)
{
    PhysicalMemory pm(2 * kBytes2M); // 2 blocks only
    Rng rng(3);
    // Pin a page in every block: nothing is compactable.
    pm.fragment(1.0, rng);
    EXPECT_EQ(pm.compactableBlocks(), 0u);
    EXPECT_FALSE(pm.compactOneBlock().has_value());
}

TEST(PhysMem, SplitHugeReassignsOwnership)
{
    PhysicalMemory pm(kMem);
    auto pfn = pm.allocHuge(2, 4096);
    ASSERT_TRUE(pfn);
    pm.splitHuge(*pfn, 2, 4096);
    for (u64 i = 0; i < kPagesPer2M; ++i) {
        EXPECT_EQ(pm.useOf(*pfn + i), FrameUse::AppBase);
        EXPECT_EQ(pm.ownerOf(*pfn + i).vpn4k, 4096 + i);
    }
    // Split frames can be individually freed and re-coalesce.
    for (u64 i = 0; i < kPagesPer2M; ++i)
        pm.freeBase(*pfn + i);
    EXPECT_TRUE(pm.allocHuge(0, 0).has_value());
}

TEST(PhysMem, HugeAllocationFailsWhenFragmented)
{
    PhysicalMemory pm(4 * kBytes2M);
    Rng rng(5);
    pm.fragment(1.0, rng);
    EXPECT_FALSE(pm.allocHuge(0, 0).has_value());
    EXPECT_GT(pm.stats().get("alloc_huge_fail"), 0u);
}

TEST(PhysMem, FragmentZeroIsNoop)
{
    PhysicalMemory pm(kMem);
    Rng rng(1);
    EXPECT_EQ(pm.fragment(0.0, rng), 0u);
    EXPECT_EQ(pm.hugeFramesAvailable(), 64u);
}

TEST(PhysMem, AccountingCounters)
{
    PhysicalMemory pm(kMem);
    EXPECT_EQ(pm.totalBlocks(), 64u);
    EXPECT_EQ(pm.totalFrames(), 64u * 512);
    auto a = pm.allocBase(0, 1);
    auto b = pm.allocHuge(0, 512);
    ASSERT_TRUE(a && b);
    EXPECT_EQ(pm.freeFrames(), 64u * 512 - 1 - 512);
    EXPECT_EQ(pm.stats().get("alloc_base"), 1u);
    EXPECT_EQ(pm.stats().get("alloc_huge"), 1u);
}

// ------------------------------------------- gigabyte-group compaction

TEST(PhysMem, GigTargetedCompactionLiberatesAGigabyte)
{
    PhysicalMemory pm(2 * kBytes1G);
    // Occupy one whole gig so the next 4KB page lands in the other —
    // gig indices come from the returned pfns (the buddy's placement
    // order is an implementation detail).
    auto big = pm.allocHuge1G(1, 0);
    ASSERT_TRUE(big);
    auto page = pm.allocBase(1, 42);
    ASSERT_TRUE(page);
    const u64 target = *page >> kOrder1G;
    ASSERT_NE(target, *big >> kOrder1G);
    pm.freeHuge1G(*big);
    // One gig is free again; the other is blocked by the lone resident.
    EXPECT_EQ(pm.gigFramesAvailable(), 1u);

    const auto cand = pm.bestGigCandidate();
    ASSERT_TRUE(cand.has_value());
    EXPECT_EQ(*cand, target);

    const auto result = pm.compactOneBlockIn(*cand);
    ASSERT_TRUE(result.has_value());
    ASSERT_EQ(result->moves.size(), 1u);
    EXPECT_EQ(result->moves[0].from, *page);
    // The destination must not land back inside the target gig: the
    // resident moved to the other gig, so the available count stays 1
    // (the pollution relocated) — but the *target* gig is now
    // allocatable, which is the point of targeting.
    EXPECT_NE(result->moves[0].to >> kOrder1G, target);
    EXPECT_EQ(pm.gigFramesAvailable(), 1u);
    const auto regained = pm.allocHuge1G(1, 0);
    ASSERT_TRUE(regained.has_value());
    EXPECT_EQ(*regained >> kOrder1G, target);
}

TEST(PhysMem, BestGigCandidatePrefersCheapestGroup)
{
    PhysicalMemory pm(2 * kBytes1G);
    // Shape residency exactly: fill all of memory with 4KB pages,
    // then free everything except three residents in one gig and a
    // lone resident in the other.
    std::vector<Pfn> all;
    while (auto pfn = pm.allocBase(2, all.size()))
        all.push_back(*pfn);
    const u64 frames_per_gig = u64(1) << kOrder1G;
    const auto keep = [&](Pfn pfn) {
        const u64 off = pfn % frames_per_gig;
        const u64 gig = pfn >> kOrder1G;
        if (gig == 0)
            return off == 5 || off == 600 || off == 7000;
        return off == 3;
    };
    for (Pfn pfn : all) {
        if (!keep(pfn))
            pm.freeBase(pfn);
    }
    const auto cand = pm.bestGigCandidate();
    ASSERT_TRUE(cand.has_value());
    EXPECT_EQ(*cand, 1u); // one move beats three
}

TEST(PhysMem, BestGigCandidateSkipsHugeAndEmptyGroups)
{
    PhysicalMemory pm(2 * kBytes1G);
    // One gig holds an (immovable) application huge page, the other
    // is entirely free: neither is a compaction candidate.
    auto huge = pm.allocHuge(3, 0);
    ASSERT_TRUE(huge);
    EXPECT_FALSE(pm.bestGigCandidate().has_value());
}
