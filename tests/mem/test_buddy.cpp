#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "mem/buddy.hpp"
#include "util/rng.hpp"

using namespace pccsim;
using namespace pccsim::mem;

TEST(Buddy, FreshAllocatorIsFullyFree)
{
    BuddyAllocator buddy(1024, kOrder2M);
    EXPECT_EQ(buddy.freeFrames(), 1024u);
    EXPECT_EQ(buddy.allocatableChunks(kOrder2M), 2u);
    EXPECT_EQ(buddy.freeChunksAt(kOrder2M), 2u);
}

TEST(Buddy, AllocateReturnsAlignedChunks)
{
    BuddyAllocator buddy(4096, kOrder2M);
    for (unsigned order = 0; order <= kOrder2M; ++order) {
        auto pfn = buddy.allocate(order);
        ASSERT_TRUE(pfn.has_value());
        EXPECT_EQ(*pfn & ((1ull << order) - 1), 0u)
            << "order " << order;
        buddy.free(*pfn, order);
    }
    EXPECT_EQ(buddy.freeFrames(), 4096u);
}

TEST(Buddy, ExhaustionReturnsNullopt)
{
    BuddyAllocator buddy(8, 3);
    auto a = buddy.allocate(3);
    ASSERT_TRUE(a);
    EXPECT_FALSE(buddy.allocate(0).has_value());
    buddy.free(*a, 3);
    EXPECT_TRUE(buddy.allocate(0).has_value());
}

TEST(Buddy, SplitAndCoalesce)
{
    BuddyAllocator buddy(512, kOrder2M);
    auto a = buddy.allocate(0);
    ASSERT_TRUE(a);
    EXPECT_EQ(buddy.allocatableChunks(kOrder2M), 0u);
    buddy.free(*a, 0);
    // Freeing the lone allocation must coalesce back to order 9.
    EXPECT_EQ(buddy.freeChunksAt(kOrder2M), 1u);
}

TEST(Buddy, DistinctAllocationsDoNotOverlap)
{
    BuddyAllocator buddy(1024, kOrder2M);
    std::set<Pfn> seen;
    for (int i = 0; i < 1024; ++i) {
        auto pfn = buddy.allocate(0);
        ASSERT_TRUE(pfn);
        EXPECT_TRUE(seen.insert(*pfn).second) << "duplicate frame";
    }
    EXPECT_FALSE(buddy.allocate(0));
}

TEST(Buddy, AllocateSpecificSplitsContainingChunk)
{
    BuddyAllocator buddy(1024, kOrder2M);
    EXPECT_TRUE(buddy.allocateSpecific(700));
    EXPECT_TRUE(buddy.isAllocated(700));
    EXPECT_FALSE(buddy.isAllocated(699));
    EXPECT_EQ(buddy.freeFrames(), 1023u);
    // The 2MB block containing frame 700 can no longer form order 9.
    EXPECT_EQ(buddy.allocatableChunks(kOrder2M), 1u);
}

TEST(Buddy, AllocateSpecificFailsOnAllocatedFrame)
{
    BuddyAllocator buddy(512, kOrder2M);
    ASSERT_TRUE(buddy.allocateSpecific(10));
    EXPECT_FALSE(buddy.allocateSpecific(10));
}

TEST(Buddy, AllocateSpecificOutOfRangeFails)
{
    BuddyAllocator buddy(512, kOrder2M);
    EXPECT_FALSE(buddy.allocateSpecific(512));
}

TEST(Buddy, FreeSpecificCoalesces)
{
    BuddyAllocator buddy(512, kOrder2M);
    ASSERT_TRUE(buddy.allocateSpecific(100));
    buddy.free(100, 0);
    EXPECT_EQ(buddy.freeChunksAt(kOrder2M), 1u);
    EXPECT_EQ(buddy.freeFrames(), 512u);
}

TEST(Buddy, NonPowerOfTwoFrameCount)
{
    BuddyAllocator buddy(1000, kOrder2M);
    EXPECT_EQ(buddy.freeFrames(), 1000u);
    // 1000 frames: one order-9 chunk + change, no full second chunk.
    EXPECT_EQ(buddy.allocatableChunks(kOrder2M), 1u);
    u64 total = 0;
    while (buddy.allocate(0))
        ++total;
    EXPECT_EQ(total, 1000u);
}

TEST(Buddy, PieceWiseFreeOfLargeChunk)
{
    // An order-9 chunk may be released frame-by-frame (huge page
    // split followed by individual reclaim).
    BuddyAllocator buddy(1024, kOrder2M);
    auto head = buddy.allocate(kOrder2M);
    ASSERT_TRUE(head);
    for (u64 i = 0; i < 512; ++i)
        buddy.free(*head + i, 0);
    EXPECT_EQ(buddy.freeFrames(), 1024u);
    EXPECT_EQ(buddy.freeChunksAt(kOrder2M), 2u);
}

TEST(Buddy, RandomStressPreservesInvariants)
{
    BuddyAllocator buddy(4096, kOrder2M);
    Rng rng(42);
    std::vector<std::pair<Pfn, unsigned>> live;
    u64 live_frames = 0;
    for (int step = 0; step < 5000; ++step) {
        if (live.empty() || rng.chance(0.55)) {
            const unsigned order = static_cast<unsigned>(rng.below(6));
            auto pfn = buddy.allocate(order);
            if (pfn) {
                live.push_back({*pfn, order});
                live_frames += 1ull << order;
            }
        } else {
            const u64 i = rng.below(live.size());
            buddy.free(live[i].first, live[i].second);
            live_frames -= 1ull << live[i].second;
            live[i] = live.back();
            live.pop_back();
        }
        ASSERT_EQ(buddy.freeFrames(), 4096u - live_frames);
    }
    for (auto &[pfn, order] : live)
        buddy.free(pfn, order);
    EXPECT_EQ(buddy.freeFrames(), 4096u);
    EXPECT_EQ(buddy.allocatableChunks(kOrder2M), 8u);
}

TEST(BuddyDeathTest, DoubleFreePanics)
{
    BuddyAllocator buddy(512, kOrder2M);
    auto pfn = buddy.allocate(0);
    ASSERT_TRUE(pfn);
    buddy.free(*pfn, 0);
    EXPECT_DEATH(buddy.free(*pfn, 0), "double free");
}

TEST(Buddy, MaxOrder1GSupported)
{
    BuddyAllocator buddy(1ull << 18, kOrder1G);
    auto pfn = buddy.allocate(kOrder1G);
    ASSERT_TRUE(pfn);
    EXPECT_EQ(*pfn, 0u);
    EXPECT_FALSE(buddy.allocate(0));
    buddy.free(*pfn, kOrder1G);
    EXPECT_EQ(buddy.freeChunksAt(kOrder1G), 1u);
}
