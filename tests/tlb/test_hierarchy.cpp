#include <gtest/gtest.h>

#include "tlb/hierarchy.hpp"

using namespace pccsim;
using namespace pccsim::tlb;
using pccsim::mem::PageSize;

namespace {

constexpr Addr kBase = 0x1000'0000'0000ull;

} // namespace

TEST(Hierarchy, FirstAccessMissesThenHitsAfterFill)
{
    TlbHierarchy tlb;
    EXPECT_EQ(tlb.access(kBase, PageSize::Base4K), HitLevel::Miss);
    tlb.fill(kBase, PageSize::Base4K);
    EXPECT_EQ(tlb.access(kBase, PageSize::Base4K), HitLevel::L1);
    EXPECT_EQ(tlb.accesses(), 2u);
    EXPECT_EQ(tlb.walks(), 1u);
    EXPECT_EQ(tlb.l1Hits(), 1u);
}

TEST(Hierarchy, L2HitRefillsL1)
{
    TlbGeometry tiny;
    tiny.l1_4k = {4, 4};
    tiny.l2 = {64, 8};
    TlbHierarchy tlb(tiny);
    // Fill 8 pages: L1 keeps only 4, L2 keeps all.
    for (Addr a = 0; a < 8; ++a)
        tlb.fill(kBase + a * 4096, PageSize::Base4K);
    // Page 0 was evicted from the 4-entry L1 but lives in L2.
    EXPECT_EQ(tlb.access(kBase, PageSize::Base4K), HitLevel::L2);
    // And the L2 hit promoted it back into L1.
    EXPECT_EQ(tlb.access(kBase, PageSize::Base4K), HitLevel::L1);
}

TEST(Hierarchy, SeparateStructuresPerPageSize)
{
    TlbHierarchy tlb;
    tlb.fill(kBase, PageSize::Base4K);
    // The same address mapped as 2MB is a different structure.
    EXPECT_EQ(tlb.access(kBase, PageSize::Huge2M), HitLevel::Miss);
    tlb.fill(kBase, PageSize::Huge2M);
    EXPECT_EQ(tlb.access(kBase, PageSize::Huge2M), HitLevel::L1);
}

TEST(Hierarchy, OneHugeEntryCoversWholeRegion)
{
    TlbHierarchy tlb;
    tlb.fill(kBase, PageSize::Huge2M);
    for (u64 off = 0; off < mem::kBytes2M; off += 4096 * 64) {
        EXPECT_NE(tlb.access(kBase + off, PageSize::Huge2M),
                  HitLevel::Miss);
    }
    // 4KB pages of the same range would each need their own entry.
    EXPECT_EQ(tlb.access(kBase + 8192, PageSize::Base4K),
              HitLevel::Miss);
}

TEST(Hierarchy, OneGigPagesSkipL2ByDefault)
{
    TlbGeometry geo; // haswell: l2_holds_1g = false
    TlbHierarchy tlb(geo);
    // Fill 5 1GB pages into a 4-entry L1 1GB TLB: one must be evicted
    // and, with no L2 backing, miss entirely.
    for (Addr a = 0; a < 5; ++a)
        tlb.fill(a << 30, PageSize::Huge1G);
    u32 misses = 0;
    for (Addr a = 0; a < 5; ++a)
        misses += tlb.access(a << 30, PageSize::Huge1G) ==
                  HitLevel::Miss;
    EXPECT_EQ(misses, 1u);
}

TEST(Hierarchy, ShootdownDropsAllSizes)
{
    TlbHierarchy tlb;
    tlb.fill(kBase, PageSize::Base4K);
    tlb.fill(kBase + 4096, PageSize::Base4K);
    tlb.fill(kBase, PageSize::Huge2M);
    const u64 dropped = tlb.shootdown(kBase, mem::kBytes2M);
    EXPECT_GE(dropped, 3u);
    EXPECT_EQ(tlb.access(kBase, PageSize::Base4K), HitLevel::Miss);
    EXPECT_EQ(tlb.access(kBase, PageSize::Huge2M), HitLevel::Miss);
    EXPECT_EQ(tlb.shootdowns(), 1u);
}

TEST(Hierarchy, ShootdownLeavesOtherRangesAlone)
{
    TlbHierarchy tlb;
    const Addr other = kBase + 64 * mem::kBytes2M;
    tlb.fill(kBase, PageSize::Base4K);
    tlb.fill(other, PageSize::Base4K);
    tlb.shootdown(kBase, mem::kBytes2M);
    EXPECT_EQ(tlb.access(other, PageSize::Base4K), HitLevel::L1);
}

TEST(Hierarchy, MissRateAccounting)
{
    TlbHierarchy tlb;
    for (int i = 0; i < 4; ++i)
        tlb.access(kBase, PageSize::Base4K); // 1 miss + 3 hits... no:
    // every access without fill misses; fill now and re-access.
    tlb.fill(kBase, PageSize::Base4K);
    for (int i = 0; i < 4; ++i)
        tlb.access(kBase, PageSize::Base4K);
    EXPECT_EQ(tlb.accesses(), 8u);
    EXPECT_EQ(tlb.walks(), 4u);
    EXPECT_DOUBLE_EQ(tlb.missRate(), 0.5);
    tlb.resetStats();
    EXPECT_EQ(tlb.accesses(), 0u);
}

TEST(Hierarchy, FlushAllForcesMisses)
{
    TlbHierarchy tlb;
    tlb.fill(kBase, PageSize::Base4K);
    tlb.flushAll();
    EXPECT_EQ(tlb.access(kBase, PageSize::Base4K), HitLevel::Miss);
}

TEST(Hierarchy, L2VictimHookReportsEvictions)
{
    TlbGeometry tiny;
    tiny.l1_4k = {4, 4};
    tiny.l2 = {8, 8}; // fully associative, 8 entries
    TlbHierarchy tlb(tiny);
    std::vector<Vpn> victims;
    tlb.setL2VictimHook([&](Vpn vpn, mem::PageSize size) {
        EXPECT_EQ(size, PageSize::Base4K);
        victims.push_back(vpn);
    });
    // Fill 9 distinct 4KB pages: the 9th evicts the 1st from L2.
    for (Addr p = 0; p < 9; ++p)
        tlb.fill(kBase + p * 4096, PageSize::Base4K);
    ASSERT_EQ(victims.size(), 1u);
    EXPECT_EQ(victims[0], mem::vpnOf(kBase, PageSize::Base4K));
}

TEST(Hierarchy, NoVictimHookCallsWithoutEvictions)
{
    TlbHierarchy tlb;
    u32 calls = 0;
    tlb.setL2VictimHook([&](Vpn, mem::PageSize) { ++calls; });
    for (Addr p = 0; p < 16; ++p)
        tlb.fill(kBase + p * 4096, PageSize::Base4K);
    EXPECT_EQ(calls, 0u) << "no eviction in a 1024-entry L2";
}

TEST(Hierarchy, CapacityMissesEmergeAtScale)
{
    // Working set of 3x the whole hierarchy: steady-state accesses
    // must keep missing (the HUB regime of Sec. 3.1).
    TlbGeometry geo = TlbGeometry::scaled(64);
    TlbHierarchy tlb(geo);
    const u64 pages = (geo.l2.entries + geo.l1_4k.entries) * 3;
    for (int round = 0; round < 3; ++round) {
        for (u64 p = 0; p < pages; ++p) {
            if (tlb.access(kBase + p * 4096, PageSize::Base4K) ==
                HitLevel::Miss) {
                tlb.fill(kBase + p * 4096, PageSize::Base4K);
            }
        }
    }
    EXPECT_GT(tlb.missRate(), 0.5);
}

// ------------------------------------------------------------- ASIDs

TEST(HierarchyAsid, DefaultAsidZeroKeysMatchLegacyBehavior)
{
    // ASID 0 is the boot/default address space: a hierarchy that never
    // calls setCurrentAsid() behaves exactly as before tagging existed.
    TlbHierarchy tlb;
    EXPECT_EQ(tlb.currentAsid(), 0u);
    EXPECT_EQ(tlb.access(kBase, PageSize::Base4K), HitLevel::Miss);
    tlb.fill(kBase, PageSize::Base4K);
    EXPECT_EQ(tlb.access(kBase, PageSize::Base4K), HitLevel::L1);
    // Explicitly selecting ASID 0 changes nothing.
    tlb.setCurrentAsid(0);
    EXPECT_EQ(tlb.access(kBase, PageSize::Base4K), HitLevel::L1);
}

TEST(HierarchyAsid, EntriesOfDifferentAsidsCoexist)
{
    TlbHierarchy tlb;
    tlb.fill(kBase, PageSize::Base4K); // ASID 0
    tlb.setCurrentAsid(7);
    // Same VPN, different address space: must miss, then coexist.
    EXPECT_EQ(tlb.access(kBase, PageSize::Base4K), HitLevel::Miss);
    tlb.fill(kBase, PageSize::Base4K);
    EXPECT_EQ(tlb.access(kBase, PageSize::Base4K), HitLevel::L1);
    // Switching back is not a flush: ASID 0's entry is still resident.
    tlb.setCurrentAsid(0);
    EXPECT_EQ(tlb.access(kBase, PageSize::Base4K), HitLevel::L1);
    tlb.setCurrentAsid(7);
    EXPECT_EQ(tlb.access(kBase, PageSize::Base4K), HitLevel::L1);
}

TEST(HierarchyAsid, ShootdownTargetsOneAddressSpace)
{
    TlbHierarchy tlb;
    tlb.fill(kBase, PageSize::Base4K); // ASID 0
    tlb.setCurrentAsid(3);
    tlb.fill(kBase, PageSize::Base4K); // ASID 3, same VPN
    // Shoot down the page in ASID 3 only.
    EXPECT_GT(tlb.shootdown(kBase, 4096, 3), 0u);
    EXPECT_EQ(tlb.access(kBase, PageSize::Base4K), HitLevel::Miss);
    // ASID 0's identical VPN survived.
    tlb.setCurrentAsid(0);
    EXPECT_EQ(tlb.access(kBase, PageSize::Base4K), HitLevel::L1);
}

TEST(HierarchyAsid, FlushAsidDropsExactlyThatSpace)
{
    TlbHierarchy tlb;
    tlb.fill(kBase, PageSize::Base4K);               // ASID 0
    tlb.fill(kBase + (2ull << 20), PageSize::Huge2M); // ASID 0
    tlb.setCurrentAsid(5);
    tlb.fill(kBase, PageSize::Base4K);               // ASID 5
    EXPECT_GT(tlb.flushAsid(5), 0u);
    EXPECT_EQ(tlb.access(kBase, PageSize::Base4K), HitLevel::Miss);
    tlb.setCurrentAsid(0);
    EXPECT_EQ(tlb.access(kBase, PageSize::Base4K), HitLevel::L1);
    EXPECT_EQ(tlb.access(kBase + (2ull << 20), PageSize::Huge2M),
              HitLevel::L1);
}

TEST(HierarchyAsid, ForEachResidentSeesOnlyTheCurrentSpace)
{
    TlbHierarchy tlb;
    tlb.fill(kBase, PageSize::Base4K); // ASID 0
    tlb.setCurrentAsid(9);
    tlb.fill(kBase + 4096, PageSize::Base4K); // ASID 9
    // Current space: only the ASID-9 entry, tag stripped.
    u64 count = 0;
    tlb.forEachResident([&](Vpn vpn, PageSize size) {
        ++count;
        EXPECT_EQ(vpn, mem::vpnOf(kBase + 4096, PageSize::Base4K));
        EXPECT_EQ(size, PageSize::Base4K);
        EXPECT_LT(vpn, Vpn(1) << TlbHierarchy::kAsidShift);
    });
    EXPECT_GE(count, 1u); // L1 (and possibly L2) copies
}
