#include <gtest/gtest.h>

#include "tlb/set_assoc_tlb.hpp"

using namespace pccsim;
using namespace pccsim::tlb;

TEST(SetAssocTlb, MissThenHitAfterInsert)
{
    SetAssocTlb tlb({16, 4});
    EXPECT_FALSE(tlb.lookup(0x100));
    tlb.insert(0x100);
    EXPECT_TRUE(tlb.lookup(0x100));
}

TEST(SetAssocTlb, LruEvictionWithinSet)
{
    SetAssocTlb tlb({8, 2}); // 4 sets, 2 ways
    // VPNs 0, 4, 8 all map to set 0 (vpn % 4).
    tlb.insert(0);
    tlb.insert(4);
    EXPECT_TRUE(tlb.lookup(0)); // 0 becomes MRU
    tlb.insert(8);              // evicts 4 (the LRU)
    EXPECT_TRUE(tlb.contains(0));
    EXPECT_TRUE(tlb.contains(8));
    EXPECT_FALSE(tlb.contains(4));
}

TEST(SetAssocTlb, ContainsDoesNotPromote)
{
    SetAssocTlb tlb({8, 2});
    tlb.insert(0);
    tlb.insert(4);
    // Probe 0 without promoting, then insert: 0 should be evicted.
    EXPECT_TRUE(tlb.contains(0));
    tlb.insert(8);
    EXPECT_FALSE(tlb.contains(0));
    EXPECT_TRUE(tlb.contains(4));
}

TEST(SetAssocTlb, ReinsertExistingRefreshes)
{
    SetAssocTlb tlb({8, 2});
    tlb.insert(0);
    tlb.insert(4);
    tlb.insert(0); // refresh, no duplicate
    tlb.insert(8); // evicts 4
    EXPECT_TRUE(tlb.contains(0));
    EXPECT_FALSE(tlb.contains(4));
    EXPECT_EQ(tlb.validCount(), 2u);
}

TEST(SetAssocTlb, InvalidateSingleEntry)
{
    SetAssocTlb tlb({16, 4});
    tlb.insert(7);
    EXPECT_TRUE(tlb.invalidate(7));
    EXPECT_FALSE(tlb.invalidate(7));
    EXPECT_FALSE(tlb.contains(7));
}

TEST(SetAssocTlb, InvalidateRange)
{
    SetAssocTlb tlb({64, 4});
    for (Vpn v = 0; v < 32; ++v)
        tlb.insert(v);
    const u64 dropped = tlb.invalidateVpnRange(10, 20);
    EXPECT_EQ(dropped, 10u);
    for (Vpn v = 0; v < 32; ++v)
        EXPECT_EQ(tlb.contains(v), v < 10 || v >= 20) << v;
}

TEST(SetAssocTlb, FlushAllEmpties)
{
    SetAssocTlb tlb({16, 4});
    for (Vpn v = 0; v < 16; ++v)
        tlb.insert(v);
    tlb.flushAll();
    EXPECT_EQ(tlb.validCount(), 0u);
}

TEST(SetAssocTlb, FullAssociativityActsAsOneSet)
{
    SetAssocTlb tlb({4, 4}); // fully associative
    for (Vpn v = 100; v < 104; ++v)
        tlb.insert(v);
    EXPECT_EQ(tlb.validCount(), 4u);
    tlb.insert(200); // evicts LRU = 100
    EXPECT_FALSE(tlb.contains(100));
    EXPECT_TRUE(tlb.contains(103));
}

class TlbGeometrySweep
    : public ::testing::TestWithParam<std::pair<u32, u32>>
{
};

TEST_P(TlbGeometrySweep, CapacityIsRespected)
{
    const auto [entries, ways] = GetParam();
    SetAssocTlb tlb({entries, ways});
    // Insert 4x capacity; valid count never exceeds capacity and a
    // freshly inserted entry is always resident.
    for (Vpn v = 0; v < entries * 4; ++v) {
        tlb.insert(v);
        ASSERT_LE(tlb.validCount(), entries);
        ASSERT_TRUE(tlb.contains(v));
    }
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, TlbGeometrySweep,
    ::testing::Values(std::pair<u32, u32>{64, 4},
                      std::pair<u32, u32>{32, 4},
                      std::pair<u32, u32>{1024, 8},
                      std::pair<u32, u32>{4, 4},
                      std::pair<u32, u32>{8, 8}));
