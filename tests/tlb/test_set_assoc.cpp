#include <gtest/gtest.h>

#include "tlb/set_assoc_tlb.hpp"

using namespace pccsim;
using namespace pccsim::tlb;

TEST(SetAssocTlb, MissThenHitAfterInsert)
{
    SetAssocTlb tlb({16, 4});
    EXPECT_FALSE(tlb.lookup(0x100));
    tlb.insert(0x100);
    EXPECT_TRUE(tlb.lookup(0x100));
}

TEST(SetAssocTlb, LruEvictionWithinSet)
{
    SetAssocTlb tlb({8, 2}); // 4 sets, 2 ways
    // VPNs 0, 4, 8 all map to set 0 (vpn % 4).
    tlb.insert(0);
    tlb.insert(4);
    EXPECT_TRUE(tlb.lookup(0)); // 0 becomes MRU
    tlb.insert(8);              // evicts 4 (the LRU)
    EXPECT_TRUE(tlb.contains(0));
    EXPECT_TRUE(tlb.contains(8));
    EXPECT_FALSE(tlb.contains(4));
}

TEST(SetAssocTlb, ContainsDoesNotPromote)
{
    SetAssocTlb tlb({8, 2});
    tlb.insert(0);
    tlb.insert(4);
    // Probe 0 without promoting, then insert: 0 should be evicted.
    EXPECT_TRUE(tlb.contains(0));
    tlb.insert(8);
    EXPECT_FALSE(tlb.contains(0));
    EXPECT_TRUE(tlb.contains(4));
}

TEST(SetAssocTlb, ReinsertExistingRefreshes)
{
    SetAssocTlb tlb({8, 2});
    tlb.insert(0);
    tlb.insert(4);
    tlb.insert(0); // refresh, no duplicate
    tlb.insert(8); // evicts 4
    EXPECT_TRUE(tlb.contains(0));
    EXPECT_FALSE(tlb.contains(4));
    EXPECT_EQ(tlb.validCount(), 2u);
}

TEST(SetAssocTlb, InvalidateSingleEntry)
{
    SetAssocTlb tlb({16, 4});
    tlb.insert(7);
    EXPECT_TRUE(tlb.invalidate(7));
    EXPECT_FALSE(tlb.invalidate(7));
    EXPECT_FALSE(tlb.contains(7));
}

TEST(SetAssocTlb, InvalidateRange)
{
    SetAssocTlb tlb({64, 4});
    for (Vpn v = 0; v < 32; ++v)
        tlb.insert(v);
    const u64 dropped = tlb.invalidateVpnRange(10, 20);
    EXPECT_EQ(dropped, 10u);
    for (Vpn v = 0; v < 32; ++v)
        EXPECT_EQ(tlb.contains(v), v < 10 || v >= 20) << v;
}

TEST(SetAssocTlb, FlushAllEmpties)
{
    SetAssocTlb tlb({16, 4});
    for (Vpn v = 0; v < 16; ++v)
        tlb.insert(v);
    tlb.flushAll();
    EXPECT_EQ(tlb.validCount(), 0u);
}

TEST(SetAssocTlb, FullAssociativityActsAsOneSet)
{
    SetAssocTlb tlb({4, 4}); // fully associative
    for (Vpn v = 100; v < 104; ++v)
        tlb.insert(v);
    EXPECT_EQ(tlb.validCount(), 4u);
    tlb.insert(200); // evicts LRU = 100
    EXPECT_FALSE(tlb.contains(100));
    EXPECT_TRUE(tlb.contains(103));
}

TEST(SetAssocTlbAccess, CombinedAccessMatchesLookupThenInsert)
{
    // access() fuses the lookup + insert pair the hierarchy used to
    // issue; the hit results and resulting contents must match the
    // two-call sequence exactly on an arbitrary stream, including one
    // with invalidation holes.
    SetAssocTlb combined({16, 4});
    SetAssocTlb reference({16, 4});
    u64 probe = 0x9e3779b97f4a7c15ull;
    for (int i = 0; i < 4000; ++i) {
        probe = probe * 6364136223846793005ull + 1442695040888963407ull;
        const Vpn vpn = (probe >> 33) % 48; // heavy set contention
        if (i % 97 == 13) {
            EXPECT_EQ(combined.invalidate(vpn), reference.invalidate(vpn));
            continue;
        }
        const bool ref_hit = reference.lookup(vpn);
        if (!ref_hit)
            reference.insert(vpn);
        const auto result = combined.access(vpn);
        ASSERT_EQ(result.hit, ref_hit) << "op " << i << " vpn " << vpn;
        ASSERT_EQ(combined.validCount(), reference.validCount()) << i;
    }
    for (Vpn vpn = 0; vpn < 48; ++vpn)
        EXPECT_EQ(combined.contains(vpn), reference.contains(vpn)) << vpn;
}

TEST(SetAssocTlbAccess, ReportsDisplacedVictim)
{
    SetAssocTlb tlb({8, 2}); // 4 sets, 2 ways; set 0 holds {0,4,8,...}
    EXPECT_EQ(tlb.access(0).displaced, std::nullopt);
    EXPECT_EQ(tlb.access(4).displaced, std::nullopt);
    const auto evicting = tlb.access(8); // set full: evicts LRU = 0
    EXPECT_FALSE(evicting.hit);
    ASSERT_TRUE(evicting.displaced.has_value());
    EXPECT_EQ(*evicting.displaced, 0u);
}

TEST(SetAssocTlbAccess, NoVictimWhenAHoleExists)
{
    SetAssocTlb tlb({8, 2});
    tlb.insert(0);
    tlb.insert(4);
    tlb.invalidate(0); // hole in way 0
    const auto result = tlb.access(8);
    EXPECT_FALSE(result.hit);
    EXPECT_EQ(result.displaced, std::nullopt);
    EXPECT_TRUE(tlb.contains(4));
    EXPECT_TRUE(tlb.contains(8));
}

TEST(SetAssocTlbAccess, HitRefreshesRecency)
{
    SetAssocTlb tlb({8, 2});
    tlb.insert(0);
    tlb.insert(4);
    EXPECT_TRUE(tlb.access(0).hit); // 0 becomes MRU
    tlb.insert(8);                  // evicts 4
    EXPECT_TRUE(tlb.contains(0));
    EXPECT_FALSE(tlb.contains(4));
}

TEST(SetAssocTlbMru, RepeatedLookupsStayCorrect)
{
    // The MRU-way fast check must be behaviorally invisible: repeated
    // hits on one entry, then eviction traffic, then probes again.
    SetAssocTlb tlb({8, 2});
    tlb.insert(0);
    tlb.insert(4);
    for (int i = 0; i < 10; ++i)
        EXPECT_TRUE(tlb.lookup(0));
    tlb.insert(8); // evicts 4; MRU hint for set 0 now points at 8's way
    EXPECT_FALSE(tlb.lookup(4));
    EXPECT_TRUE(tlb.lookup(0));
    EXPECT_TRUE(tlb.lookup(8));
}

TEST(SetAssocTlbMru, StaleHintAfterInvalidateIsSafe)
{
    SetAssocTlb tlb({8, 2});
    tlb.insert(0);
    EXPECT_TRUE(tlb.lookup(0)); // hint -> way holding 0
    tlb.invalidate(0);
    EXPECT_FALSE(tlb.lookup(0)); // hint points at an invalid way
    tlb.insert(4);
    EXPECT_TRUE(tlb.lookup(4));
    EXPECT_FALSE(tlb.lookup(0));
}

class TlbGeometrySweep
    : public ::testing::TestWithParam<std::pair<u32, u32>>
{
};

TEST_P(TlbGeometrySweep, CapacityIsRespected)
{
    const auto [entries, ways] = GetParam();
    SetAssocTlb tlb({entries, ways});
    // Insert 4x capacity; valid count never exceeds capacity and a
    // freshly inserted entry is always resident.
    for (Vpn v = 0; v < entries * 4; ++v) {
        tlb.insert(v);
        ASSERT_LE(tlb.validCount(), entries);
        ASSERT_TRUE(tlb.contains(v));
    }
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, TlbGeometrySweep,
    ::testing::Values(std::pair<u32, u32>{64, 4},
                      std::pair<u32, u32>{32, 4},
                      std::pair<u32, u32>{1024, 8},
                      std::pair<u32, u32>{4, 4},
                      std::pair<u32, u32>{8, 8}));

TEST(SetAssocTlb, FlushAllResetsReplacementState)
{
    // Regression: flushAll() must zero the recency stamps and the MRU
    // hints along with the valid bits. A flush that leaves stale
    // stamps breaks the zeroed-stamp hole contract — post-flush
    // inserts would report phantom displaced victims from ways the
    // victim scan should see as free.
    SetAssocTlb tlb({8, 2}); // 4 sets, 2 ways; set 0 holds {0,4,8,...}
    for (Vpn v : {0u, 4u, 8u, 12u})
        (void)tlb.access(v); // heat up stamps and MRU hints
    tlb.flushAll();
    EXPECT_EQ(tlb.validCount(), 0u);
    // Refilling the flushed set must land in holes: no victims.
    const auto first = tlb.access(0);
    EXPECT_FALSE(first.hit);
    EXPECT_EQ(first.displaced, std::nullopt);
    const auto second = tlb.access(4);
    EXPECT_FALSE(second.hit);
    EXPECT_EQ(second.displaced, std::nullopt);
    EXPECT_EQ(tlb.validCount(), 2u);
    // Only now is the set full again and a third insert evicts.
    const auto third = tlb.access(8);
    ASSERT_TRUE(third.displaced.has_value());
    EXPECT_EQ(*third.displaced, 0u);
}

TEST(SetAssocTlb, FlushMatchingDropsOnlyTheTaggedClass)
{
    // flushMatching(tag, mask) underlies per-ASID invalidation: keys
    // whose masked bits equal the tag go, everything else stays.
    SetAssocTlb tlb({16, 4});
    const Vpn kTag = Vpn(1) << 48;
    tlb.insert(5);
    tlb.insert(kTag | 5);
    tlb.insert(kTag | 9);
    EXPECT_EQ(tlb.flushMatching(kTag, ~(kTag - 1)), 2u);
    EXPECT_TRUE(tlb.contains(5));
    EXPECT_FALSE(tlb.contains(kTag | 5));
    EXPECT_FALSE(tlb.contains(kTag | 9));
}
