#include <gtest/gtest.h>

#include "cache/cache.hpp"

using namespace pccsim;
using namespace pccsim::cache;

TEST(Cache, MissThenHitWithinLine)
{
    Cache cache({1024, 2, 64});
    EXPECT_FALSE(cache.lookup(0x100));
    cache.insert(0x100);
    EXPECT_TRUE(cache.lookup(0x100));
    EXPECT_TRUE(cache.lookup(0x13f)); // same 64B line
    EXPECT_FALSE(cache.lookup(0x140)); // next line
}

TEST(Cache, LruEviction)
{
    Cache cache({128, 2, 64}); // 1 set of 2 ways? 128/(2*64)=1 set
    cache.insert(0);
    cache.insert(64);
    EXPECT_TRUE(cache.lookup(0)); // 0 MRU
    cache.insert(128);            // evicts 64
    EXPECT_TRUE(cache.lookup(0));
    EXPECT_FALSE(cache.lookup(64));
}

TEST(Cache, FlushAll)
{
    Cache cache({1024, 4, 64});
    cache.insert(0);
    cache.flushAll();
    EXPECT_FALSE(cache.lookup(0));
}

TEST(Hierarchy, LatencyOrderingAcrossLevels)
{
    CacheHierarchy::Config cfg;
    CacheHierarchy caches(cfg);
    const Cycles first = caches.access(0x1000);
    EXPECT_EQ(first, cfg.latencies.dram);
    const Cycles second = caches.access(0x1000);
    EXPECT_EQ(second, cfg.latencies.l1);
}

TEST(Hierarchy, L2AndLlcHitPaths)
{
    CacheHierarchy::Config cfg;
    cfg.l1 = {128, 2, 64};  // tiny L1: 1 set
    cfg.l2 = {256, 2, 64};
    cfg.llc = {64 * 1024, 16, 64};
    CacheHierarchy caches(cfg);
    caches.access(0);     // dram fill everywhere
    caches.access(64);
    caches.access(128);   // L1 (1 set x 2 ways) has evicted line 0
    const Cycles c = caches.access(0);
    EXPECT_TRUE(c == cfg.latencies.l2 || c == cfg.latencies.llc) << c;
    EXPECT_GT(caches.l2Hits() + caches.llcHits(), 0u);
}

TEST(Hierarchy, DisabledChargesDram)
{
    CacheHierarchy::Config cfg;
    cfg.enabled = false;
    CacheHierarchy caches(cfg);
    EXPECT_EQ(caches.access(0), cfg.latencies.dram);
    EXPECT_EQ(caches.access(0), cfg.latencies.dram);
}

TEST(Hierarchy, StreamingHitsL1)
{
    CacheHierarchy caches;
    u64 hits = 0;
    const u64 n = 4096;
    for (u64 i = 0; i < n; ++i) {
        const Cycles c = caches.access(i * 8); // 8B stride
        hits += c == CacheLatencies{}.l1;
    }
    // 8 accesses per 64B line: 7/8 should hit L1.
    EXPECT_GT(hits, n * 7 / 10);
}

TEST(Hierarchy, ThrashingGoesToDram)
{
    CacheHierarchy::Config cfg;
    cfg.l1 = {4 * 1024, 8, 64};
    cfg.l2 = {8 * 1024, 8, 64};
    cfg.llc = {16 * 1024, 16, 64};
    CacheHierarchy caches(cfg);
    // Cycle over 64x the LLC with no reuse inside the window.
    const u64 lines = 16 * 1024 / 64 * 64;
    for (int round = 0; round < 3; ++round)
        for (u64 l = 0; l < lines; ++l)
            caches.access(l * 64);
    EXPECT_GT(caches.dramAccesses(), caches.accesses() / 2);
}

TEST(Hierarchy, StatsResetWorks)
{
    CacheHierarchy caches;
    caches.access(0);
    caches.resetStats();
    EXPECT_EQ(caches.accesses(), 0u);
    EXPECT_EQ(caches.dramAccesses(), 0u);
}
