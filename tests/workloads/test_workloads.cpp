#include <gtest/gtest.h>

#include <map>
#include <set>

#include "workloads/graph_workloads.hpp"
#include "workloads/registry.hpp"
#include "workloads/synthetic.hpp"

using namespace pccsim;
using namespace pccsim::workloads;

namespace {

/** Drain a single-lane workload and collect simple statistics. */
struct Drained
{
    u64 ops = 0;
    u64 barriers = 0;
    u64 stores = 0;
    std::set<Vpn> regions;
    Addr min_addr = ~0ull;
    Addr max_addr = 0;
};

Drained
drain(Workload &w, os::Process &proc, u64 limit = ~0ull)
{
    (void)proc;
    Drained d;
    auto lane = w.lane(0, 1);
    while (lane.next() && d.ops < limit) {
        const AccessOp &op = lane.value();
        if (op.kind == OpKind::Barrier) {
            ++d.barriers;
            continue;
        }
        ++d.ops;
        d.stores += op.kind == OpKind::Store;
        d.regions.insert(mem::vpnOf(op.addr, mem::PageSize::Huge2M));
        d.min_addr = std::min(d.min_addr, op.addr);
        d.max_addr = std::max(d.max_addr, op.addr);
    }
    return d;
}

WorkloadSpec
ciSpec(const std::string &name)
{
    WorkloadSpec spec;
    spec.name = name;
    spec.scale = Scale::Ci;
    return spec;
}

} // namespace

TEST(Registry, KnowsAllPaperWorkloads)
{
    EXPECT_EQ(allWorkloadNames().size(), 8u);
    for (const auto &name : allWorkloadNames()) {
        auto w = makeWorkload(ciSpec(name));
        ASSERT_NE(w, nullptr);
        EXPECT_EQ(w->name(), name);
    }
}

TEST(Registry, UnknownWorkloadIsFatal)
{
    EXPECT_DEATH(
        { auto w = makeWorkload(ciSpec("nope")); }, "unknown workload");
}

TEST(Registry, GraphCacheReusesGraphs)
{
    auto a = makeWorkload(ciSpec("bfs"));
    auto b = makeWorkload(ciSpec("bfs"));
    os::Process p0(0, 1ull << 30), p1(1, 1ull << 30);
    a->setup(p0);
    b->setup(p1);
    EXPECT_EQ(a->footprintBytes(), b->footprintBytes());
}

TEST(Registry, ScaleHelpers)
{
    EXPECT_EQ(scaleFromString("small"), Scale::Small);
    EXPECT_EQ(to_string(Scale::Medium), "medium");
    EXPECT_TRUE(isGraphWorkload("pr"));
    EXPECT_FALSE(isGraphWorkload("mcf"));
    EXPECT_DEATH(scaleFromString("bogus"), "unknown scale");
}

class EveryWorkload : public ::testing::TestWithParam<std::string>
{
};

TEST_P(EveryWorkload, StaysInsideItsAllocations)
{
    auto w = makeWorkload(ciSpec(GetParam()));
    os::Process proc(0, 2ull << 30);
    w->setup(proc);
    ASSERT_GT(w->footprintBytes(), 0u);
    const auto d = drain(*w, proc, 400'000);
    EXPECT_GT(d.ops, 1000u);
    EXPECT_GE(d.min_addr, proc.heapBase());
    EXPECT_LT(d.max_addr, proc.heapEnd());
}

TEST_P(EveryWorkload, DeterministicStream)
{
    auto w1 = makeWorkload(ciSpec(GetParam()));
    auto w2 = makeWorkload(ciSpec(GetParam()));
    os::Process p1(0, 2ull << 30), p2(0, 2ull << 30);
    w1->setup(p1);
    w2->setup(p2);
    auto l1 = w1->lane(0, 1);
    auto l2 = w2->lane(0, 1);
    for (int i = 0; i < 50'000; ++i) {
        const bool a = l1.next();
        const bool b = l2.next();
        ASSERT_EQ(a, b);
        if (!a)
            break;
        ASSERT_EQ(l1.value().addr, l2.value().addr) << "op " << i;
        ASSERT_EQ(static_cast<int>(l1.value().kind),
                  static_cast<int>(l2.value().kind));
    }
}

INSTANTIATE_TEST_SUITE_P(Table1, EveryWorkload,
                         ::testing::ValuesIn(allWorkloadNames()));

TEST(GraphWorkloads, BfsVisitsEntireComponentOncePerVertex)
{
    auto w = makeWorkload(ciSpec("bfs"));
    os::Process proc(0, 2ull << 30);
    w->setup(proc);
    const auto d = drain(*w, proc);
    // Init stores touch every array; kernel issues loads and parent
    // stores. Ops must exceed the init phase alone.
    EXPECT_GT(d.ops, w->footprintBytes() / 64);
    EXPECT_GT(d.barriers, 2u);
}

TEST(GraphWorkloads, MultiLaneBfsMatchesSingleLaneResult)
{
    // Run single-lane and 4-lane BFS on the same graph; both must
    // terminate and issue comparable total work.
    auto w1 = makeWorkload(ciSpec("bfs"));
    auto w4 = makeWorkload(ciSpec("bfs"));
    os::Process p1(0, 2ull << 30), p4(1, 2ull << 30);
    w1->setup(p1);
    w4->setup(p4);

    u64 ops1 = 0;
    {
        auto lane = w1->lane(0, 1);
        while (lane.next())
            ops1 += lane.value().kind != OpKind::Barrier;
    }

    // Drive 4 lanes with a miniature barrier-aware scheduler.
    std::vector<Generator<AccessOp>> lanes;
    for (u32 l = 0; l < 4; ++l)
        lanes.push_back(w4->lane(l, 4));
    std::vector<u8> parked(4, 0), done(4, 0);
    u64 ops4 = 0;
    u32 live = 4;
    while (live > 0) {
        for (u32 l = 0; l < 4; ++l) {
            if (done[l] || parked[l])
                continue;
            for (int b = 0; b < 16; ++b) {
                if (!lanes[l].next()) {
                    done[l] = 1;
                    --live;
                    break;
                }
                if (lanes[l].value().kind == OpKind::Barrier) {
                    parked[l] = 1;
                    break;
                }
                ++ops4;
            }
        }
        bool all = true;
        for (u32 l = 0; l < 4; ++l)
            all &= parked[l] || done[l];
        if (all)
            for (u32 l = 0; l < 4; ++l)
                parked[l] = 0;
    }
    // Same graph, same traversal: within 1% of the same work.
    EXPECT_NEAR(static_cast<double>(ops4), static_cast<double>(ops1),
                0.01 * static_cast<double>(ops1));
}

TEST(GraphWorkloads, SsspDistancesDecreaseMonotonically)
{
    // Indirectly verified: the SSSP lane terminates (delta-stepping
    // converges) and touches the dist array with stores.
    auto w = makeWorkload(ciSpec("sssp"));
    os::Process proc(0, 4ull << 30);
    w->setup(proc);
    const auto d = drain(*w, proc);
    EXPECT_GT(d.stores, 0u);
    EXPECT_GT(d.barriers, 2u);
}

TEST(SuiteWorkloads, DedupIsStreamingDominated)
{
    auto w = makeWorkload(ciSpec("dedup"));
    os::Process proc(0, 2ull << 30);
    w->setup(proc);
    // Count distinct 2MB regions per 10k main-phase ops: streaming
    // touches few regions per window.
    auto lane = w->lane(0, 1);
    // Skip init (until first barrier).
    while (lane.next() && lane.value().kind != OpKind::Barrier) {
    }
    std::set<Vpn> regions;
    for (int i = 0; i < 10'000 && lane.next(); ++i)
        regions.insert(
            mem::vpnOf(lane.value().addr, mem::PageSize::Huge2M));
    EXPECT_LE(regions.size(), 8u);
}

TEST(SuiteWorkloads, CannealScattersAcrossFootprint)
{
    auto w = makeWorkload(ciSpec("canneal"));
    os::Process proc(0, 2ull << 30);
    w->setup(proc);
    auto lane = w->lane(0, 1);
    while (lane.next() && lane.value().kind != OpKind::Barrier) {
    }
    std::set<Vpn> pages;
    for (int i = 0; i < 10'000 && lane.next(); ++i)
        pages.insert(
            mem::vpnOf(lane.value().addr, mem::PageSize::Base4K));
    // Uniform random swaps touch a new page almost every access.
    EXPECT_GT(pages.size(), 1000u);
}

TEST(Synthetic, HotRegionsConcentratesAccesses)
{
    SyntheticSpec spec;
    spec.pattern = Pattern::HotRegions;
    spec.footprint_bytes = 32ull << 20;
    spec.hot_regions = 4;
    spec.hot_fraction = 1.0;
    spec.ops = 20'000;
    SyntheticWorkload w(spec);
    os::Process proc(0, 1ull << 30);
    w.setup(proc);
    auto lane = w.lane(0, 1);
    while (lane.next() && lane.value().kind != OpKind::Barrier) {
    }
    std::set<Vpn> regions;
    while (lane.next())
        regions.insert(
            mem::vpnOf(lane.value().addr, mem::PageSize::Huge2M));
    EXPECT_EQ(regions.size(), 4u);
}

TEST(Synthetic, SequentialCoversFootprintInOrder)
{
    SyntheticSpec spec;
    spec.pattern = Pattern::Sequential;
    spec.footprint_bytes = 4ull << 20;
    spec.ops = 1000;
    SyntheticWorkload w(spec);
    os::Process proc(0, 1ull << 30);
    w.setup(proc);
    auto lane = w.lane(0, 1);
    while (lane.next() && lane.value().kind != OpKind::Barrier) {
    }
    Addr prev = 0;
    bool first = true;
    while (lane.next()) {
        if (!first)
            EXPECT_EQ(lane.value().addr, prev + 64);
        prev = lane.value().addr;
        first = false;
    }
}

TEST(Synthetic, NamesFollowPattern)
{
    SyntheticSpec spec;
    spec.pattern = Pattern::Zipf;
    EXPECT_EQ(SyntheticWorkload(spec).name(), "syn-zipf");
    spec.pattern = Pattern::Uniform;
    EXPECT_EQ(SyntheticWorkload(spec).name(), "syn-uniform");
}
