#include <gtest/gtest.h>

#include "pcc/pcc.hpp"
#include "util/rng.hpp"

using namespace pccsim;
using namespace pccsim::pcc;

TEST(Pcc, InsertOnMissWithFrequencyZero)
{
    PromotionCandidateCache pcc({4, 8});
    pcc.touch(100);
    EXPECT_EQ(pcc.size(), 1u);
    EXPECT_EQ(pcc.frequencyOf(100), 0u);
    EXPECT_EQ(pcc.misses(), 1u);
}

TEST(Pcc, HitIncrementsFrequency)
{
    PromotionCandidateCache pcc({4, 8});
    for (int i = 0; i < 5; ++i)
        pcc.touch(100);
    EXPECT_EQ(pcc.frequencyOf(100), 4u);
    EXPECT_EQ(pcc.hits(), 4u);
}

TEST(Pcc, LfuEvictionKeepsHotEntries)
{
    PromotionCandidateCache pcc({2, 8});
    pcc.touch(1);
    pcc.touch(1); // freq 1
    pcc.touch(2); // freq 0
    pcc.touch(3); // evicts 2 (LFU), not 1
    EXPECT_TRUE(pcc.frequencyOf(1).has_value());
    EXPECT_FALSE(pcc.frequencyOf(2).has_value());
    EXPECT_TRUE(pcc.frequencyOf(3).has_value());
    EXPECT_EQ(pcc.evictions(), 1u);
}

TEST(Pcc, LruBreaksFrequencyTies)
{
    PromotionCandidateCache pcc({2, 8});
    pcc.touch(1); // freq 0, older
    pcc.touch(2); // freq 0, newer
    pcc.touch(3); // tie on freq: evict 1 (least recent)
    EXPECT_FALSE(pcc.frequencyOf(1).has_value());
    EXPECT_TRUE(pcc.frequencyOf(2).has_value());
}

TEST(Pcc, PureLruPolicyIgnoresFrequency)
{
    PromotionCandidateCache pcc({2, 8, Replacement::PureLru});
    pcc.touch(1);
    pcc.touch(1);
    pcc.touch(1); // hot but old
    pcc.touch(2);
    pcc.touch(1); // refresh 1; now 2 is LRU
    pcc.touch(3); // evicts 2
    EXPECT_TRUE(pcc.frequencyOf(1).has_value());
    EXPECT_FALSE(pcc.frequencyOf(2).has_value());
}

TEST(Pcc, SaturationHalvesAllCounters)
{
    PromotionCandidateCache pcc({4, 4}); // counters saturate at 15
    pcc.touch(7);
    for (int i = 0; i < 6; ++i)
        pcc.touch(8); // freq 6
    for (int i = 0; i < 16; ++i)
        pcc.touch(9); // will saturate
    EXPECT_EQ(pcc.decays(), 1u);
    // Relative order preserved, absolute values halved.
    EXPECT_GT(*pcc.frequencyOf(9), *pcc.frequencyOf(8));
    EXPECT_GT(*pcc.frequencyOf(8), *pcc.frequencyOf(7));
    EXPECT_LT(*pcc.frequencyOf(9), 15u);
}

TEST(Pcc, CounterNeverExceedsMax)
{
    PromotionCandidateCache pcc({2, 4});
    for (int i = 0; i < 1000; ++i)
        pcc.touch(1);
    EXPECT_LT(*pcc.frequencyOf(1), 16u);
    EXPECT_GT(pcc.decays(), 0u);
}

TEST(Pcc, SnapshotRankedByFrequencyThenRecency)
{
    PromotionCandidateCache pcc({8, 8});
    for (int i = 0; i < 4; ++i)
        pcc.touch(10);
    for (int i = 0; i < 2; ++i)
        pcc.touch(20);
    pcc.touch(30);
    pcc.touch(40); // same freq (0) as 30 but more recent
    const auto snap = pcc.snapshot();
    ASSERT_EQ(snap.size(), 4u);
    EXPECT_EQ(snap[0].region, 10u);
    EXPECT_EQ(snap[1].region, 20u);
    EXPECT_EQ(snap[2].region, 40u); // recency breaks the tie
    EXPECT_EQ(snap[3].region, 30u);
}

TEST(Pcc, SnapshotIsNonDestructive)
{
    PromotionCandidateCache pcc({4, 8});
    pcc.touch(5);
    pcc.snapshot();
    EXPECT_EQ(pcc.size(), 1u);
}

TEST(Pcc, TopMatchesSnapshotHead)
{
    PromotionCandidateCache pcc({8, 8});
    EXPECT_FALSE(pcc.top().has_value());
    for (int i = 0; i < 3; ++i)
        pcc.touch(11);
    pcc.touch(22);
    ASSERT_TRUE(pcc.top().has_value());
    EXPECT_EQ(pcc.top()->region, pcc.snapshot()[0].region);
}

TEST(Pcc, InvalidateRemovesEntry)
{
    PromotionCandidateCache pcc({4, 8});
    pcc.touch(1);
    pcc.touch(2);
    EXPECT_TRUE(pcc.invalidate(1));
    EXPECT_FALSE(pcc.invalidate(1));
    EXPECT_EQ(pcc.size(), 1u);
    EXPECT_EQ(pcc.invalidations(), 1u);
    // Index stays consistent after the swap-remove.
    EXPECT_EQ(pcc.frequencyOf(2), 0u);
    pcc.touch(2);
    EXPECT_EQ(pcc.frequencyOf(2), 1u);
}

TEST(Pcc, ClearEmptiesCache)
{
    PromotionCandidateCache pcc({4, 8});
    pcc.touch(1);
    pcc.touch(2);
    pcc.clear();
    EXPECT_EQ(pcc.size(), 0u);
    EXPECT_FALSE(pcc.frequencyOf(1).has_value());
}

TEST(Pcc, StorageArithmeticMatchesPaper)
{
    // Sec. 3.2.1: 128-entry 2MB PCC with 40-bit tags + 8-bit counters
    // = 6B/entry = 768B; 8-entry 1GB PCC with 31-bit tags = 40B.
    EXPECT_EQ(PromotionCandidateCache::storageBytes(128, 40, 8), 768u);
    EXPECT_EQ(PromotionCandidateCache::storageBytes(8, 31, 8), 40u);
}

TEST(Pcc, HotSetSurvivesScanPollution)
{
    // A small hot set plus a stream of cold single-touch regions: the
    // hot regions must remain resident (the LFU property the OS relies
    // on for ranking quality).
    PromotionCandidateCache pcc({16, 8});
    Rng rng(3);
    for (int round = 0; round < 2000; ++round) {
        pcc.touch(rng.below(8));          // hot: regions 0..7
        pcc.touch(1000 + (round % 512));  // cold scan
    }
    for (Vpn hot = 0; hot < 8; ++hot)
        EXPECT_TRUE(pcc.frequencyOf(hot).has_value()) << hot;
}

class PccSizeSweep : public ::testing::TestWithParam<u32>
{
};

TEST_P(PccSizeSweep, CapacityBounded)
{
    PromotionCandidateCache pcc({GetParam(), 8});
    for (Vpn v = 0; v < GetParam() * 4ull; ++v)
        pcc.touch(v);
    EXPECT_EQ(pcc.size(), GetParam());
    EXPECT_TRUE(pcc.full());
}

INSTANTIATE_TEST_SUITE_P(Sizes, PccSizeSweep,
                         ::testing::Values(1, 4, 8, 32, 128, 1024));

class PccCounterSweep : public ::testing::TestWithParam<u32>
{
};

TEST_P(PccCounterSweep, DecayTriggersAtCounterMax)
{
    const u32 bits = GetParam();
    PromotionCandidateCache pcc({4, bits});
    const u64 max = (1ull << bits) - 1;
    for (u64 i = 0; i <= max; ++i)
        pcc.touch(1);
    EXPECT_EQ(pcc.decays(), 1u);
}

INSTANTIATE_TEST_SUITE_P(Widths, PccCounterSweep,
                         ::testing::Values(2, 4, 8, 12, 16));
