#include <gtest/gtest.h>

#include "pcc/pcc_unit.hpp"

using namespace pccsim;
using namespace pccsim::pcc;
using pccsim::mem::PageSize;

namespace {

constexpr Addr kHeap = 0x1000'0000'0000ull;

pt::WalkOutcome
walk4k(bool warm, bool pud_accessed = true)
{
    pt::WalkOutcome out;
    out.present = true;
    out.size = PageSize::Base4K;
    out.memory_refs = 2;
    out.pmd_was_accessed = warm;
    out.pte_was_accessed = warm;
    out.pud_was_accessed = pud_accessed;
    return out;
}

pt::WalkOutcome
walk2m(bool pud_accessed)
{
    pt::WalkOutcome out;
    out.present = true;
    out.size = PageSize::Huge2M;
    out.pud_was_accessed = pud_accessed;
    return out;
}

} // namespace

TEST(PccUnit, ColdWalkFilteredOut)
{
    PccUnit unit;
    unit.observeWalk(kHeap, walk4k(/*pmd_accessed=*/false));
    EXPECT_EQ(unit.pcc2m().size(), 0u);
}

TEST(PccUnit, WarmWalkInserted)
{
    PccUnit unit;
    unit.observeWalk(kHeap, walk4k(true));
    EXPECT_EQ(unit.pcc2m().size(), 1u);
    EXPECT_TRUE(unit.pcc2m()
                    .frequencyOf(mem::vpnOf(kHeap, PageSize::Huge2M))
                    .has_value());
}

TEST(PccUnit, FilterDisabledTracksColdWalks)
{
    PccUnitConfig cfg;
    cfg.access_bit_filter = false;
    PccUnit unit(cfg);
    unit.observeWalk(kHeap, walk4k(false));
    EXPECT_EQ(unit.pcc2m().size(), 1u);
}

TEST(PccUnit, NonPresentWalkIgnored)
{
    PccUnit unit;
    pt::WalkOutcome out;
    out.present = false;
    unit.observeWalk(kHeap, out);
    EXPECT_EQ(unit.pcc2m().size(), 0u);
}

TEST(PccUnit, HugeWalksFeed1GPccOnly)
{
    PccUnitConfig cfg;
    cfg.enable_1g = true;
    PccUnit unit(cfg);
    unit.observeWalk(kHeap, walk2m(/*pud_accessed=*/true));
    EXPECT_EQ(unit.pcc2m().size(), 0u) << "2MB walks must not enter "
                                          "the 2MB PCC";
    EXPECT_EQ(unit.pcc1g().size(), 1u);
}

TEST(PccUnit, OneGigDisabledByDefault)
{
    PccUnit unit;
    unit.observeWalk(kHeap, walk2m(true));
    EXPECT_EQ(unit.pcc1g().size(), 0u);
}

TEST(PccUnit, ShootdownInvalidatesCoveredRegions)
{
    PccUnit unit;
    unit.observeWalk(kHeap, walk4k(true));
    unit.observeWalk(kHeap + mem::kBytes2M, walk4k(true));
    unit.shootdown(kHeap, mem::kBytes2M);
    EXPECT_EQ(unit.pcc2m().size(), 1u);
    EXPECT_FALSE(
        unit.pcc2m()
            .frequencyOf(mem::vpnOf(kHeap, PageSize::Huge2M))
            .has_value());
}

TEST(PccUnit, Prefer1GWhenRatioExceeded)
{
    PccUnitConfig cfg;
    cfg.enable_1g = true;
    cfg.pcc1g = {8, 16};
    cfg.pcc2m = {128, 16};
    PccUnit unit(cfg);
    const Vpn region1g = mem::vpnOf(kHeap, PageSize::Huge1G);

    // 4KB walks scattered across the 1GB region: each 2MB candidate
    // stays cool while the 1GB counter accumulates everything.
    for (u64 r = 0; r < 64; ++r) {
        const Addr addr = kHeap + r * mem::kBytes2M;
        for (int i = 0; i < 32; ++i)
            unit.observeWalk(addr, walk4k(true));
    }
    // best 2MB frequency ~31, 1GB frequency ~2047: ratio ~66 < 512.
    EXPECT_FALSE(unit.prefer1G(region1g, 512));
    EXPECT_TRUE(unit.prefer1G(region1g, 32));
}

TEST(PccUnit, Prefer1GWhenOnly2MWalksObserved)
{
    PccUnitConfig cfg;
    cfg.enable_1g = true;
    PccUnit unit(cfg);
    // Walks from data already mapped at 2MB: no 2MB candidates, only
    // 1GB pressure -> 1GB promotion is the only upgrade available.
    for (int i = 0; i < 4; ++i)
        unit.observeWalk(kHeap, walk2m(true));
    EXPECT_TRUE(unit.prefer1G(mem::vpnOf(kHeap, PageSize::Huge1G)));
}

TEST(PccUnit, VictimSourceIgnoresWalks)
{
    PccUnitConfig cfg;
    cfg.source = CandidateSource::L2Victims;
    PccUnit unit(cfg);
    unit.observeWalk(kHeap, walk4k(true));
    EXPECT_EQ(unit.pcc2m().size(), 0u);
    unit.observeL2Victim(mem::vpnOf(kHeap, PageSize::Base4K),
                         PageSize::Base4K);
    EXPECT_EQ(unit.pcc2m().size(), 1u);
}

TEST(PccUnit, WalkSourceIgnoresVictims)
{
    PccUnit unit; // default: PtwFiltered
    unit.observeL2Victim(mem::vpnOf(kHeap, PageSize::Base4K),
                         PageSize::Base4K);
    EXPECT_EQ(unit.pcc2m().size(), 0u);
}

TEST(PccUnit, VictimSourceStillFeeds1GFromWalks)
{
    PccUnitConfig cfg;
    cfg.source = CandidateSource::L2Victims;
    cfg.enable_1g = true;
    PccUnit unit(cfg);
    unit.observeWalk(kHeap, walk4k(true));
    EXPECT_EQ(unit.pcc1g().size(), 1u);
    EXPECT_EQ(unit.pcc2m().size(), 0u);
}

TEST(PccUnit, Prefer1GFalseWhenUntracked)
{
    PccUnitConfig cfg;
    cfg.enable_1g = true;
    PccUnit unit(cfg);
    EXPECT_FALSE(unit.prefer1G(123));
}
