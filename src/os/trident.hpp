/**
 * @file
 * Trident-style three-page-size promotion policy (`--policy=trident`).
 *
 * Trident (MICRO'21) manages 4KB, 2MB, and 1GB pages together: greedy
 * fault-time 2MB allocation (like Linux THP), aggressive periodic
 * collapse into 2MB, opportunistic promotion of the hottest ranges
 * into 1GB pages backed by targeted defragmentation, and demotion of
 * 1GB pages that have gone cold. This port drives all three sizes from
 * the PCC evidence instead of page-table scans — the 2MB pass is
 * PCC-ranked like PccPolicy, and the 1GB pass consumes the 1GB PCC
 * rollup with a much lower preference ratio than the paper's
 * conservative 512x, since Trident's thesis is that 1GB pages are
 * usually worth it once contiguity can be manufactured.
 */

#pragma once

#include <map>
#include <utility>

#include "os/policy.hpp"

namespace pccsim::os {

class TridentPolicy : public Policy
{
  public:
    struct Params
    {
        /** 2MB promotions per interval; 0 = PCC-capacity auto. */
        u32 regions_to_promote = 0;
        /** 1GB preference ratio (prefer1G); far below PCC's 512. */
        u64 ratio_1g = 64;
        /** 1GB promotions allowed per interval (defrag is costly). */
        u32 max_1g_per_interval = 1;
        /** Demote 1GB pages absent from the 1GB PCC for this many
         *  consecutive intervals (0 disables cold demotion). */
        u32 cold_1g_intervals = 4;
        bool fault_time_huge = true;
        bool allow_compaction = true;
    };

    TridentPolicy() = default;
    explicit TridentPolicy(Params params) : params_(params) {}

    std::string name() const override { return "trident"; }

    bool
    wantHugeFault(const Process &proc, Addr vaddr) override
    {
        return params_.fault_time_huge &&
               proc.hintOf(vaddr) != HugeHint::NoHuge;
    }

    void onInterval(PolicyContext &ctx) override;

  private:
    void promote1G(PolicyContext &ctx);
    void demoteCold1G(PolicyContext &ctx);
    void promote2M(PolicyContext &ctx);

    Params params_;
    /** Last interval each (pid, 1GB base) appeared in any 1GB PCC. */
    std::map<std::pair<Pid, Addr>, u64> last_seen_1g_;
};

} // namespace pccsim::os
