/**
 * @file
 * Simulated process: virtual address space (VMAs + heap), page table,
 * and the flat fast-path structures the simulator consults per access.
 *
 * The radix page table (pt::PageTable) stays authoritative for walks
 * and scans; the flat per-region/per-page arrays mirror it so the hot
 * path costs O(1) per access instead of a radix descent.
 */

#pragma once

#include <string>
#include <vector>

#include "mem/paging.hpp"
#include "pt/page_table.hpp"
#include "util/log.hpp"
#include "util/types.hpp"

namespace pccsim::os {

/** How a 2MB-aligned heap region is currently backed. */
enum class RegionState : u8
{
    Unbacked = 0, //!< no pages faulted yet
    Base4K = 1,   //!< backed (partially) by base pages
    Huge2M = 2,   //!< backed by one 2MB huge page
    Huge1G = 3,   //!< part of a 1GB huge page
};

/** One mmap'd allocation, for reporting and eligibility checks. */
struct Vma
{
    Addr base = 0;
    u64 bytes = 0;
    std::string name;
};

/** Per-region madvise-style huge-page hint (Sec. 2.1 / Sec. 5.4.2). */
enum class HugeHint : u8
{
    Default = 0, //!< follow the system-wide policy
    Huge = 1,    //!< MADV_HUGEPAGE: prefer huge backing
    NoHuge = 2,  //!< MADV_NOHUGEPAGE: never back with huge pages
};

class Process
{
  public:
    /**
     * @param pid Process id; determines the heap base so distinct
     *        processes occupy distinct address ranges.
     * @param heap_capacity Maximum simulated heap (sizes the flat
     *        bookkeeping arrays).
     */
    Process(Pid pid, u64 heap_capacity);

    Process(const Process &) = delete;
    Process &operator=(const Process &) = delete;

    /** Reserve a 2MB-aligned heap allocation; returns its base. */
    Addr mmap(u64 bytes, std::string name);

    /**
     * Apply a huge-page hint to every 2MB region overlapping
     * [base, base + bytes) — the madvise(MADV_HUGEPAGE /
     * MADV_NOHUGEPAGE) interface.
     */
    void madvise(Addr base, u64 bytes, HugeHint hint);

    /** Hint of the region containing vaddr. */
    HugeHint
    hintOf(Addr vaddr) const
    {
        return region_hint_[regionIndex(vaddr)];
    }

    Pid pid() const { return pid_; }
    Addr heapBase() const { return heap_base_; }
    Addr heapEnd() const { return brk_; }
    u64 heapCapacity() const { return heap_capacity_; }

    /** Total bytes allocated via mmap (the application footprint). */
    u64 footprintBytes() const { return brk_ - heap_base_; }

    const std::vector<Vma> &vmas() const { return vmas_; }

    bool
    contains(Addr vaddr) const
    {
        return vaddr >= heap_base_ && vaddr < brk_;
    }

    // ---- fast-path state (mirrors the page table) ----

    /** Backing state of the 2MB region containing vaddr. */
    RegionState
    regionStateOf(Addr vaddr) const
    {
        return region_state_[regionIndex(vaddr)];
    }

    /** Page size currently mapping vaddr (valid only if faulted). */
    mem::PageSize
    mappingSizeOf(Addr vaddr) const
    {
        switch (regionStateOf(vaddr)) {
          case RegionState::Huge2M: return mem::PageSize::Huge2M;
          case RegionState::Huge1G: return mem::PageSize::Huge1G;
          default: return mem::PageSize::Base4K;
        }
    }

    /** Has the 4KB page containing vaddr been faulted in? */
    bool
    faulted(Addr vaddr) const
    {
        const u64 page = pageIndex(vaddr);
        return (faulted_[page >> 6] >> (page & 63)) & 1;
    }

    /** Faulted base pages inside the region containing vaddr. */
    u32
    faultedInRegion(Addr vaddr) const
    {
        return faulted_per_region_[regionIndex(vaddr)];
    }

    /**
     * Has the 4KB page containing vaddr ever been accessed?
     *
     * Distinct from faulted(): promotion marks the whole region
     * faulted (the huge frame backs every page), while the touched
     * bitmap only ever grows through real accesses. The pressure
     * reclaimer relies on it — a never-touched page backed by a huge
     * frame holds no data and can be dropped safely.
     */
    bool
    touched(Addr vaddr) const
    {
        const u64 page = pageIndex(vaddr);
        return (touched_[page >> 6] >> (page & 63)) & 1;
    }

    /** Touched pages inside the region containing vaddr. */
    u32
    touchedInRegion(Addr vaddr) const
    {
        return touched_per_region_[regionIndex(vaddr)];
    }

    /**
     * Record a real access to vaddr (called by the simulator on every
     * access and by the fault handler). Keeps the touched bitmap
     * accurate for huge-backed regions, whose accesses never fault.
     */
    void
    noteTouched(Addr vaddr)
    {
        const u64 page = pageIndex(vaddr);
        u64 &word = touched_[page >> 6];
        const u64 bit = 1ull << (page & 63);
        if (!(word & bit)) {
            word |= bit;
            ++touched_per_region_[regionIndex(vaddr)];
        }
    }

    /** Index of the region containing vaddr within the heap. */
    u64
    regionIndex(Addr vaddr) const
    {
        // Debug-only: this sits on the per-access hot path and an
        // out-of-heap vaddr is caught by mmap()/fault handling anyway.
        PCCSIM_DCHECK(vaddr >= heap_base_ &&
                      vaddr < heap_base_ + heap_capacity_);
        return (vaddr - heap_base_) >> mem::kShift2M;
    }

    /** 2MB regions spanned by the current heap. */
    u64
    numRegions() const
    {
        return (mem::alignUp(brk_, mem::PageSize::Huge2M) - heap_base_) >>
               mem::kShift2M;
    }

    /** Base address of region i. */
    Addr
    regionBase(u64 index) const
    {
        return heap_base_ + (index << mem::kShift2M);
    }

    // ---- state transitions (called by the OS only) ----

    void markFaulted(Addr vaddr);
    void markRegionHuge(Addr region_base);
    void markRegionDemoted(Addr region_base);

    /** Mark an entire 1GB-aligned range as backed by one 1GB page. */
    void markRegion1G(Addr region_base);

    /** Split a 1GB-backed range back into 2MB-backed regions. */
    void markRegion1GDemoted(Addr region_base);

    pt::PageTable &pageTable() { return page_table_; }
    const pt::PageTable &pageTable() const { return page_table_; }

    // ---- promotion bookkeeping ----

    u64 promotedBytes() const { return promoted_bytes_; }
    u64 promotions() const { return promotions_; }
    u64 promotions1G() const { return promotions_1g_; }
    u64 demotions() const { return demotions_; }

    /** Never-touched base pages now backed by huge frames (bloat). */
    u64 bloatPages() const { return bloat_pages_; }

  private:
    u64
    pageIndex(Addr vaddr) const
    {
        PCCSIM_DCHECK(vaddr >= heap_base_ &&
                      vaddr < heap_base_ + heap_capacity_);
        return (vaddr - heap_base_) >> mem::kShift4K;
    }

    Pid pid_;
    u64 heap_capacity_;
    Addr heap_base_;
    Addr brk_;
    std::vector<Vma> vmas_;

    pt::PageTable page_table_;
    std::vector<RegionState> region_state_;
    std::vector<HugeHint> region_hint_;
    std::vector<u64> faulted_;           //!< bitmap, 1 bit per 4KB page
    std::vector<u16> faulted_per_region_;
    std::vector<u64> touched_;           //!< really-accessed pages
    std::vector<u16> touched_per_region_;

    u64 promoted_bytes_ = 0;
    u64 promotions_ = 0;
    u64 promotions_1g_ = 0;
    u64 demotions_ = 0;
    u64 bloat_pages_ = 0;

    friend class Os;
};

} // namespace pccsim::os
