#include "os/policy_registry.hpp"

#include <algorithm>

#include "util/log.hpp"

// Static-archive linkage anchors: each policy translation unit defines
// one; referencing them here forces the linker to keep those archive
// members (and thus run their static registrars) in every binary that
// resolves policies. One line per builtin policy file.
PCCSIM_REFERENCE_LINK_ANCHOR(builtin_policies) // policies.cpp
PCCSIM_REFERENCE_LINK_ANCHOR(trident_policy)   // trident.cpp
PCCSIM_REFERENCE_LINK_ANCHOR(ubpf_policy)      // ubpf_policy.cpp

namespace pccsim::os {

PolicyRegistry &
PolicyRegistry::instance()
{
    static PolicyRegistry registry;
    return registry;
}

util::Status
PolicyRegistry::add(Entry entry)
{
    if (entry.key.empty() || !entry.factory)
        return util::Status::error("policy entry needs a key and factory");
    const auto clashes = [this](const std::string &name) {
        return find(name) != nullptr;
    };
    if (clashes(entry.key)) {
        return util::Status::error("duplicate policy key '", entry.key,
                                   "'");
    }
    for (const std::string &alias : entry.aliases) {
        if (clashes(alias)) {
            return util::Status::error("policy alias '", alias,
                                       "' shadows an existing key");
        }
    }
    entries_.push_back(std::move(entry));
    return {};
}

const PolicyRegistry::Entry *
PolicyRegistry::find(std::string_view key_or_alias) const
{
    for (const Entry &entry : entries_) {
        if (entry.key == key_or_alias)
            return &entry;
        for (const std::string &alias : entry.aliases)
            if (alias == key_or_alias)
                return &entry;
    }
    return nullptr;
}

std::vector<PolicyRegistry::Entry>
PolicyRegistry::entries() const
{
    std::vector<Entry> sorted = entries_;
    std::sort(sorted.begin(), sorted.end(),
              [](const Entry &a, const Entry &b) { return a.key < b.key; });
    return sorted;
}

std::vector<std::string>
PolicyRegistry::keys() const
{
    std::vector<std::string> keys;
    keys.reserve(entries_.size());
    for (const Entry &entry : entries_)
        keys.push_back(entry.key);
    std::sort(keys.begin(), keys.end());
    return keys;
}

util::Status
PolicyRegistry::unknownKeyError(std::string_view key) const
{
    const std::string hint = util::nearestKey(key, keys());
    if (hint.empty()) {
        return util::Status::error("unknown policy '", std::string(key),
                                   "' (--policy=list shows all keys)");
    }
    return util::Status::error("unknown policy '", std::string(key),
                               "' (did you mean '", hint, "'?)");
}

util::Status
PolicyRegistry::validateSelector(std::string_view selector) const
{
    const util::Selector sel = util::Selector::parse(selector);
    if (!find(sel.key))
        return unknownKeyError(sel.key);
    util::Status status;
    (void)util::ParamMap::parse(sel.params, status);
    return status;
}

std::unique_ptr<Policy>
PolicyRegistry::make(std::string_view selector,
                     const sim::SystemConfig &cfg,
                     util::Status &status) const
{
    const util::Selector sel = util::Selector::parse(selector);
    const Entry *entry = find(sel.key);
    if (!entry) {
        status.update(unknownKeyError(sel.key));
        return nullptr;
    }
    const util::ParamMap params =
        util::ParamMap::parse(sel.params, status);
    if (!status.ok())
        return nullptr;
    std::unique_ptr<Policy> policy =
        entry->factory(params, cfg, status);
    status.update(params.checkConsumed());
    if (!status.ok()) {
        status.update(util::Status::error(
            "while building policy '", entry->key, "' (grammar: ",
            entry->grammar.empty() ? "no params" : entry->grammar,
            ")"));
        return nullptr;
    }
    return policy;
}

util::Status
PolicyRegistry::prepare(std::string_view selector,
                        sim::SystemConfig &cfg) const
{
    const util::Selector sel = util::Selector::parse(selector);
    const Entry *entry = find(sel.key);
    if (!entry)
        return unknownKeyError(sel.key);
    if (!entry->prepare)
        return {};
    util::Status status;
    const util::ParamMap params =
        util::ParamMap::parse(sel.params, status);
    if (!status.ok())
        return status;
    entry->prepare(params, cfg);
    return {};
}

PolicyRegistrar::PolicyRegistrar(PolicyRegistry::Entry entry)
{
    const std::string key = entry.key;
    if (util::Status status =
            PolicyRegistry::instance().add(std::move(entry));
        !status.ok()) {
        fatal("policy registration '", key, "': ", status.toString());
    }
}

} // namespace pccsim::os
