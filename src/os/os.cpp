#include "os/os.hpp"

#include <algorithm>

#include "util/log.hpp"

namespace pccsim::os {

Os::Os(Params params, mem::PhysicalMemory &phys)
    : params_(params), phys_(phys)
{
}

Process &
Os::createProcess(u64 heap_capacity)
{
    const Pid pid = static_cast<Pid>(processes_.size());
    processes_.push_back(std::make_unique<Process>(pid, heap_capacity));
    return *processes_.back();
}

telemetry::AuditReason
Os::auditReasonFor(PromoteStatus status) const
{
    using telemetry::AuditReason;
    switch (status) {
      case PromoteStatus::Ok: return AuditReason::Ok;
      case PromoteStatus::AlreadyHuge: return AuditReason::AlreadyHuge;
      case PromoteStatus::CapReached: return AuditReason::CapReached;
      case PromoteStatus::NoHugeFrame:
        // With a fault-injection gate installed the failure may be
        // injected (transient); without one it is genuine exhaustion
        // or fragmentation. The audit distinguishes the two classes.
        return phys_.transientFailuresPossible()
                   ? AuditReason::NoHugeFrameTransient
                   : AuditReason::NoHugeFrame;
      case PromoteStatus::NotEligible: return AuditReason::NotEligible;
    }
    return AuditReason::NotEligible;
}

Cycles
Os::handleFault(Process &proc, Addr vaddr, bool want_huge)
{
    PCCSIM_ASSERT(proc.contains(vaddr), "fault outside any VMA");
    Cycles cost = params_.costs.base_fault;

    const Addr region_base = mem::pageBase(vaddr, mem::PageSize::Huge2M);
    const bool region_untouched = proc.faultedInRegion(vaddr) == 0 &&
        proc.regionStateOf(vaddr) == RegionState::Unbacked;

    // MADV_NOHUGEPAGE is enforced here in the mechanism, not just in
    // the policies: even a policy whose wantHugeFault() ignores hints
    // (all-huge) must fall back to base pages for an opted-out region,
    // exactly as the kernel's fault path does.
    if (want_huge && region_untouched &&
        proc.hintOf(region_base) != HugeHint::NoHuge &&
        region_base + mem::kBytes2M <= proc.heapEnd() &&
        capAllows(mem::kBytes2M)) {
        if (auto pfn = phys_.allocHuge(
                proc.pid(), mem::vpnOf(region_base,
                                       mem::PageSize::Base4K))) {
            proc.pageTable().mapHuge2M(region_base, *pfn);
            proc.markRegionHuge(region_base);
            ++stats_.counter("huge_faults");
            if (audit_) {
                audit_->record(telemetry::AuditAction::FaultHuge,
                               telemetry::AuditReason::Ok, proc.pid(),
                               region_base, 0, 0,
                               params_.costs.huge_fault_extra);
            }
            return cost + params_.costs.huge_fault_extra;
        }
        ++stats_.counter("huge_fault_fallbacks");
        if (audit_) {
            audit_->record(telemetry::AuditAction::FaultHuge,
                           auditReasonFor(PromoteStatus::NoHugeFrame),
                           proc.pid(), region_base);
        }
    }

    // Base-page fault.
    const Vpn vpn = mem::vpnOf(vaddr, mem::PageSize::Base4K);
    auto pfn = phys_.allocBase(proc.pid(), vpn);
    if (!pfn) {
        // Memory pressure, real or injected. Degrade gracefully the
        // way direct reclaim does: demote the coldest huge pages, drop
        // their never-touched (bloat) frames, and retry with the
        // injection gate bypassed so only genuine exhaustion is fatal.
        ++stats_.counter("base_alloc_pressure");
        if (params_.reclaim_on_pressure) {
            const auto reclaimed =
                reclaimColdHugePages(params_.reclaim_batch_regions);
            cost += reclaimed.app_cycles + params_.costs.reclaim_event;
        }
        pfn = phys_.allocBase(proc.pid(), vpn, /*bypass_gate=*/true);
        if (!pfn)
            fatal("simulated physical memory exhausted: enlarge phys size");
    }
    proc.pageTable().mapBase(vaddr, *pfn);
    proc.markFaulted(vaddr);
    ++stats_.counter("base_faults");
    return cost;
}

std::optional<Pfn>
Os::acquireHugeFrame(Process &proc, Addr region_base,
                     bool allow_compaction, PromoteResult &result)
{
    const Vpn first_vpn = mem::vpnOf(region_base, mem::PageSize::Base4K);

    // One acquisition pass: direct allocation, then compaction rounds.
    const auto attempt_once = [&]() -> std::optional<Pfn> {
        if (auto pfn = phys_.allocHuge(proc.pid(), first_vpn))
            return pfn;
        if (!allow_compaction)
            return std::nullopt;
        for (u32 attempt = 0; attempt < params_.compaction_attempts;
             ++attempt) {
            auto compaction = phys_.compactOneBlock();
            chargeBackground(params_.costs.compaction_attempt);
            ++result.compaction_runs;
            if (!compaction) {
                if (tracer_) {
                    tracer_->record(telemetry::EventKind::Compaction,
                                    proc.pid(), region_base, 0, 0);
                }
                return std::nullopt;
            }
            result.compacted = true;
            if (tracer_) {
                // arg = pages migrated by this compaction run.
                tracer_->record(telemetry::EventKind::Compaction,
                                proc.pid(), region_base, mem::kBytes2M,
                                compaction->moves.size());
            }
            chargeBackground(compaction->moves.size() *
                             params_.costs.copy_page);
            applyMoves(compaction->moves);
            if (auto pfn = phys_.allocHuge(proc.pid(), first_vpn))
                return pfn;
        }
        return std::nullopt;
    };

    if (auto pfn = attempt_once())
        return pfn;

    // Retry with exponential backoff — but only when failures can be
    // transient (a fault-injection gate is installed). A genuine
    // out-of-frames condition cannot resolve between back-to-back
    // attempts, and retrying then would skew clean-run accounting.
    if (!phys_.transientFailuresPossible())
        return std::nullopt;
    for (u32 retry = 1; retry <= params_.promote_retries; ++retry) {
        chargeBackground(params_.retry_backoff << (retry - 1));
        ++result.retries;
        ++stats_.counter("promote_retries");
        if (auto pfn = attempt_once()) {
            ++stats_.counter("promote_retry_successes");
            return pfn;
        }
    }
    return std::nullopt;
}

void
Os::applyMoves(const std::vector<mem::PhysicalMemory::Move> &moves)
{
    for (const auto &move : moves) {
        if (move.owner.pid == mem::kFillerPid)
            continue; // filler pages have no page table to update
        Process &owner = process(move.owner.pid);
        const Addr vaddr = move.owner.vpn4k << mem::kShift4K;
        const bool ok = owner.pageTable().remapBase(vaddr, move.to);
        PCCSIM_ASSERT(ok, "compaction move for unmapped page");
        // Migrated translations must leave the TLBs; the cost lands on
        // whichever cores run the owner.
        if (shootdown_)
            shootdown_(owner.pid(), vaddr, mem::kBytes4K);
        ++stats_.counter("migrated_pages");
    }
}

PromoteResult
Os::promoteRegion(Process &proc, Addr region_base, bool allow_compaction,
                  PromoteAttempt attempt)
{
    PromoteResult result;
    region_base = mem::pageBase(region_base, mem::PageSize::Huge2M);
    const auto audited = [&](PromoteResult r) {
        if (audit_) {
            audit_->record(telemetry::AuditAction::Promote2M,
                           auditReasonFor(r.status), proc.pid(),
                           region_base, attempt.rank, attempt.counter,
                           r.app_cycles);
        }
        return r;
    };
    if (!proc.contains(region_base) ||
        region_base + mem::kBytes2M > proc.heapEnd()) {
        result.status = PromoteStatus::NotEligible;
        return audited(result);
    }
    // MADV_NOHUGEPAGE regions must never be promoted, whichever policy
    // asks and whatever the memory pressure — a mechanism guarantee,
    // like the kernel's VM_NOHUGEPAGE check in khugepaged.
    if (proc.hintOf(region_base) == HugeHint::NoHuge) {
        result.status = PromoteStatus::NotEligible;
        return audited(result);
    }
    const RegionState state = proc.regionStateOf(region_base);
    if (state == RegionState::Huge2M || state == RegionState::Huge1G) {
        result.status = PromoteStatus::AlreadyHuge;
        return audited(result);
    }
    if (state == RegionState::Unbacked || proc.faultedInRegion(region_base) == 0) {
        result.status = PromoteStatus::NotEligible;
        return audited(result);
    }
    if (!capAllows(mem::kBytes2M)) {
        result.status = PromoteStatus::CapReached;
        return audited(result);
    }

    auto huge_pfn = acquireHugeFrame(proc, region_base, allow_compaction,
                                     result);
    if (!huge_pfn) {
        result.status = PromoteStatus::NoHugeFrame;
        ++stats_.counter("promotion_no_frame");
        return audited(result);
    }

    // Copy faulted pages into the huge frame (background thread work)
    // and release their old frames.
    const u32 copied = proc.faultedInRegion(region_base);
    chargeBackground(static_cast<Cycles>(copied) * params_.costs.copy_page);
    for (u64 p = 0; p < mem::kPagesPer2M; ++p) {
        const Addr vaddr = region_base + p * mem::kBytes4K;
        if (!proc.faulted(vaddr))
            continue;
        const auto mapping = proc.pageTable().lookup(vaddr);
        if (mapping.present && mapping.size == mem::PageSize::Base4K)
            phys_.freeBase(mapping.pfn);
    }

    proc.pageTable().mapHuge2M(region_base, *huge_pfn);
    proc.markRegionHuge(region_base);

    // The page-table rewrite requires a TLB shootdown, which also
    // invalidates the region from the PCCs (Fig. 4 step C).
    if (shootdown_)
        result.app_cycles += shootdown_(proc.pid(), region_base,
                                        mem::kBytes2M);
    result.app_cycles += params_.costs.promotion_conflict;
    result.status = PromoteStatus::Ok;
    ++stats_.counter("promotions");
    if (result.compacted)
        ++stats_.counter("promotions_after_compaction");
    if (promoted_)
        promoted_(proc.pid(), region_base, mem::PageSize::Huge2M);
    if (tracer_) {
        // arg = compaction runs this promotion needed (0 = free frame).
        tracer_->record(telemetry::EventKind::Promotion, proc.pid(),
                        region_base, mem::kBytes2M,
                        result.compaction_runs);
    }
    return audited(result);
}

PromoteResult
Os::promoteRegion1G(Process &proc, Addr region_base,
                    PromoteAttempt attempt, bool allow_compaction)
{
    PromoteResult result;
    region_base = mem::pageBase(region_base, mem::PageSize::Huge1G);
    const auto audited = [&](PromoteResult r) {
        if (audit_) {
            // A gigabyte allocation failure gets its own reason code:
            // it is a fragmentation statement about order-18 chunks,
            // not the 2MB-frame exhaustion NoHugeFrame describes.
            telemetry::AuditReason reason = auditReasonFor(r.status);
            if (reason == telemetry::AuditReason::NoHugeFrame)
                reason = telemetry::AuditReason::No1GFrame;
            audit_->record(telemetry::AuditAction::Promote1G, reason,
                           proc.pid(), region_base, attempt.rank,
                           attempt.counter, r.app_cycles);
        }
        return r;
    };
    if (!proc.contains(region_base) ||
        region_base + mem::kBytes1G > proc.heapEnd()) {
        result.status = PromoteStatus::NotEligible;
        return audited(result);
    }
    // The range must be touched somewhere, not already 1GB, and free
    // of MADV_NOHUGEPAGE constituents — collapsing an opted-out 2MB
    // region into a gigabyte page would promote it by the back door.
    bool touched = false;
    for (u64 r = 0; r < mem::k2MPer1G; ++r) {
        const Addr base = region_base + r * mem::kBytes2M;
        if (proc.regionStateOf(base) == RegionState::Huge1G) {
            result.status = PromoteStatus::AlreadyHuge;
            return audited(result);
        }
        if (proc.hintOf(base) == HugeHint::NoHuge) {
            result.status = PromoteStatus::NotEligible;
            return audited(result);
        }
        touched |= proc.faultedInRegion(base) > 0;
    }
    if (!touched) {
        result.status = PromoteStatus::NotEligible;
        return audited(result);
    }
    if (!capAllows(mem::kBytes1G)) {
        result.status = PromoteStatus::CapReached;
        return audited(result);
    }

    const Vpn first_vpn = mem::vpnOf(region_base, mem::PageSize::Base4K);
    auto huge_pfn = phys_.allocHuge1G(proc.pid(), first_vpn);
    if (!huge_pfn && allow_compaction) {
        // Gigabyte-targeted compaction: pick the group cheapest to
        // vacate and migrate its movable pages out block by block.
        // Each round liberates one 2MB block inside the group; the
        // group is won when compactOneBlockIn finds nothing left to
        // move and the order-18 allocation succeeds. Bounded by the
        // group size so a pathological gate cannot spin forever.
        if (const auto gig = phys_.bestGigCandidate()) {
            for (u64 round = 0; round <= mem::k2MPer1G; ++round) {
                const auto compaction = phys_.compactOneBlockIn(*gig);
                chargeBackground(params_.costs.compaction_attempt);
                ++result.compaction_runs;
                if (!compaction)
                    break;
                result.compacted = true;
                chargeBackground(compaction->moves.size() *
                                 params_.costs.copy_page);
                applyMoves(compaction->moves);
                if (tracer_) {
                    tracer_->record(telemetry::EventKind::Compaction,
                                    proc.pid(), region_base,
                                    mem::kBytes1G,
                                    compaction->moves.size());
                }
            }
            huge_pfn = phys_.allocHuge1G(proc.pid(), first_vpn);
            if (huge_pfn)
                ++stats_.counter("promotion1g_compacted");
        }
    }
    if (!huge_pfn && phys_.transientFailuresPossible()) {
        // Injected transient failures deserve the same bounded
        // backoff-and-retry as 2MB promotion.
        for (u32 retry = 1; retry <= params_.promote_retries && !huge_pfn;
             ++retry) {
            chargeBackground(params_.retry_backoff << (retry - 1));
            ++result.retries;
            ++stats_.counter("promote_retries");
            huge_pfn = phys_.allocHuge1G(proc.pid(), first_vpn);
            if (huge_pfn)
                ++stats_.counter("promote_retry_successes");
        }
    }
    if (!huge_pfn) {
        result.status = PromoteStatus::NoHugeFrame;
        ++stats_.counter("promotion1g_no_frame");
        return audited(result);
    }

    // Collapse every constituent mapping into the 1GB frame.
    u64 copied = 0;
    for (u64 r = 0; r < mem::k2MPer1G; ++r) {
        const Addr base = region_base + r * mem::kBytes2M;
        const auto mapping = proc.pageTable().lookup(base);
        if (mapping.present && mapping.size == mem::PageSize::Huge2M) {
            phys_.freeHuge(mapping.pfn);
            copied += mem::kPagesPer2M;
            continue;
        }
        for (u64 p = 0; p < mem::kPagesPer2M; ++p) {
            const Addr vaddr = base + p * mem::kBytes4K;
            if (!proc.faulted(vaddr))
                continue;
            const auto pte = proc.pageTable().lookup(vaddr);
            if (pte.present && pte.size == mem::PageSize::Base4K) {
                phys_.freeBase(pte.pfn);
                ++copied;
            }
        }
    }
    chargeBackground(copied * params_.costs.copy_page);

    proc.pageTable().mapHuge1G(region_base, *huge_pfn);
    proc.markRegion1G(region_base);

    if (shootdown_)
        result.app_cycles += shootdown_(proc.pid(), region_base,
                                        mem::kBytes1G);
    result.app_cycles += params_.costs.promotion_conflict;
    result.status = PromoteStatus::Ok;
    ++stats_.counter("promotions_1g");
    if (promoted_)
        promoted_(proc.pid(), region_base, mem::PageSize::Huge1G);
    if (tracer_) {
        tracer_->record(telemetry::EventKind::Promotion1G, proc.pid(),
                        region_base, mem::kBytes1G, result.retries);
    }
    return audited(result);
}

Cycles
Os::demoteRegion1G(Process &proc, Addr region_base)
{
    region_base = mem::pageBase(region_base, mem::PageSize::Huge1G);
    const auto mapping = proc.pageTable().lookup(region_base);
    PCCSIM_ASSERT(mapping.present &&
                  mapping.size == mem::PageSize::Huge1G,
                  "demoteRegion1G on non-1GB mapping");

    // In-place split into 512 huge frames: physical ownership moves to
    // per-2MB granularity.
    for (u64 r = 0; r < mem::k2MPer1G; ++r) {
        const Pfn pfn = mapping.pfn + r * mem::kPagesPer2M;
        (void)pfn; // frames stay allocated; block marking is below
    }
    // Rebuild block-level ownership: reuse freeHuge1G+allocHuge would
    // churn the buddy; instead adjust bookkeeping directly via split.
    phys_.split1GTo2M(mapping.pfn, proc.pid(),
                      mem::vpnOf(region_base, mem::PageSize::Base4K));
    proc.pageTable().demote1G(region_base);
    proc.markRegion1GDemoted(region_base);

    Cycles app_cycles = 0;
    if (shootdown_)
        app_cycles += shootdown_(proc.pid(), region_base,
                                 mem::kBytes1G);
    ++stats_.counter("demotions_1g");
    if (tracer_) {
        tracer_->record(telemetry::EventKind::Demotion1G, proc.pid(),
                        region_base, mem::kBytes1G, 0);
    }
    if (audit_) {
        audit_->record(telemetry::AuditAction::Demote1G,
                       telemetry::AuditReason::Ok, proc.pid(),
                       region_base, 0, 0, app_cycles);
    }
    return app_cycles;
}

Cycles
Os::demoteRegion(Process &proc, Addr region_base)
{
    region_base = mem::pageBase(region_base, mem::PageSize::Huge2M);
    PCCSIM_ASSERT(proc.regionStateOf(region_base) == RegionState::Huge2M,
                  "demoting a non-huge region");
    const auto mapping = proc.pageTable().lookup(region_base);
    PCCSIM_ASSERT(mapping.present &&
                  mapping.size == mem::PageSize::Huge2M);

    // In-place split, as Linux does: the 512 constituent frames become
    // individually-owned base frames.
    phys_.splitHuge(mapping.pfn, proc.pid(),
                    mem::vpnOf(region_base, mem::PageSize::Base4K));
    proc.pageTable().demote2M(region_base);
    proc.markRegionDemoted(region_base);

    Cycles app_cycles = 0;
    if (shootdown_)
        app_cycles += shootdown_(proc.pid(), region_base, mem::kBytes2M);
    ++stats_.counter("demotions");
    if (tracer_) {
        tracer_->record(telemetry::EventKind::Demotion, proc.pid(),
                        region_base, mem::kBytes2M, 0);
    }
    if (audit_) {
        audit_->record(telemetry::AuditAction::Demote2M,
                       telemetry::AuditReason::Ok, proc.pid(),
                       region_base, 0, 0, app_cycles);
    }
    return app_cycles;
}

Os::ReclaimResult
Os::reclaimColdHugePages(u32 max_regions)
{
    struct Victim
    {
        Pid pid;
        Addr base;
        u64 score;     //!< hotness per the ranker; lower = colder
        u32 untouched; //!< frames a demotion would actually free
    };
    std::vector<Victim> candidates;
    for (const auto &proc : processes_) {
        for (u64 r = 0; r < proc->numRegions(); ++r) {
            const Addr base = proc->regionBase(r);
            if (proc->regionStateOf(base) != RegionState::Huge2M)
                continue;
            const u32 untouched = static_cast<u32>(mem::kPagesPer2M) -
                                  proc->touchedInRegion(base);
            if (untouched == 0)
                continue; // every frame holds data; demoting frees nothing
            const u64 score = ranker_ ? ranker_(proc->pid(), base) : 0;
            candidates.push_back({proc->pid(), base, score, untouched});
        }
    }

    // Coldest first; ties break toward the most bloat, then by address
    // so victim selection is deterministic.
    const u64 take = std::min<u64>(max_regions, candidates.size());
    std::partial_sort(candidates.begin(), candidates.begin() + take,
                      candidates.end(),
                      [](const Victim &a, const Victim &b) {
                          if (a.score != b.score)
                              return a.score < b.score;
                          if (a.untouched != b.untouched)
                              return a.untouched > b.untouched;
                          if (a.pid != b.pid)
                              return a.pid < b.pid;
                          return a.base < b.base;
                      });

    ReclaimResult result;
    ++stats_.counter("reclaim_events");
    for (u64 v = 0; v < take; ++v) {
        const Victim &victim = candidates[v];
        Process &proc = process(victim.pid);
        if (audit_) {
            // rank = position in the coldness order, counter = the
            // ranker's hotness score the selection used.
            audit_->record(telemetry::AuditAction::Reclaim,
                           telemetry::AuditReason::PressureReclaim,
                           victim.pid, victim.base,
                           static_cast<u32>(v), victim.score);
        }
        result.app_cycles += demoteRegion(proc, victim.base);
        ++result.regions_demoted;
        ++stats_.counter("reclaim_demotions");

        // The split left 512 individually-mapped base frames; the
        // never-touched ones hold no data, so unmap and free them.
        u64 freed = 0;
        for (u64 p = 0; p < mem::kPagesPer2M; ++p) {
            const Addr vaddr = victim.base + p * mem::kBytes4K;
            if (proc.touched(vaddr))
                continue;
            const auto pte = proc.pageTable().lookup(vaddr);
            if (!pte.present || pte.size != mem::PageSize::Base4K)
                continue;
            proc.pageTable().unmap(vaddr);
            phys_.freeBase(pte.pfn);
            const u64 page = proc.pageIndex(vaddr);
            proc.faulted_[page >> 6] &= ~(1ull << (page & 63));
            --proc.faulted_per_region_[proc.regionIndex(vaddr)];
            ++freed;
        }
        proc.bloat_pages_ -= freed;
        result.frames_freed += freed;
        stats_.counter("reclaimed_frames") += freed;
    }
    if (tracer_) {
        // bytes = memory actually freed; arg = regions demoted.
        tracer_->record(telemetry::EventKind::Reclaim, 0, 0,
                        result.frames_freed * mem::kBytes4K,
                        result.regions_demoted);
    }
    return result;
}

u64
Os::promotedBytesTotal() const
{
    u64 total = 0;
    for (const auto &proc : processes_)
        total += proc->promotedBytes();
    return total;
}

std::optional<u64>
Os::promotionBudgetRegions() const
{
    if (!params_.promotion_cap_bytes)
        return std::nullopt;
    const u64 used = promotedBytesTotal();
    if (used >= *params_.promotion_cap_bytes)
        return 0;
    return (*params_.promotion_cap_bytes - used) / mem::kBytes2M;
}

} // namespace pccsim::os
