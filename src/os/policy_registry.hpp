/**
 * @file
 * String-keyed, self-registering factory registry for promotion
 * policies — the open end of the `--policy=` selector.
 *
 * A selector is `key` or `key:params` (util/params.hpp grammar); the
 * factory behind `key` receives the parsed ParamMap plus the run's
 * SystemConfig and builds the policy. Selecting a key with no params
 * constructs exactly what the legacy PolicyKind switch in
 * sim/system.cpp used to build, so enum-selected and string-selected
 * runs are bit-identical; params override the SystemConfig defaults.
 *
 * Adding a contender is one translation unit:
 *
 *   // src/os/my_policy.cpp
 *   PCCSIM_DEFINE_LINK_ANCHOR(my_policy)
 *   namespace { const PolicyRegistrar reg{{
 *       "my-policy", "one-line description", "knob=N",
 *       [](const util::ParamMap &pm, const sim::SystemConfig &,
 *          util::Status &status) -> std::unique_ptr<Policy> { ... }}};
 *   }
 *
 * plus one PCCSIM_REFERENCE_LINK_ANCHOR(my_policy) line in
 * policy_registry.cpp. The anchor pair (util/link_anchor.hpp) is what
 * makes self-registration survive static-archive linking: without the
 * reference the linker would drop the registrar's archive member — and
 * the whole policy — silently. The registry's own translation unit is
 * always linked (the System resolves policies through it), so
 * anchoring there guarantees every registrar runs before main().
 */

#pragma once

#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "os/policy.hpp"
#include "util/link_anchor.hpp"
#include "util/params.hpp"
#include "util/status.hpp"

namespace pccsim::sim {
struct SystemConfig; // full definition only needed by factories
}

namespace pccsim::os {

class PolicyRegistry
{
  public:
    using Factory = std::unique_ptr<Policy> (*)(
        const util::ParamMap &params, const sim::SystemConfig &cfg,
        util::Status &status);

    /**
     * Optional pre-construction hook, run by the System *before* the
     * hardware is built: the one place a policy can request hardware
     * support (e.g. Trident enabling the 1GB PCC). Only runs for
     * string-selected policies, so legacy enum-driven runs are
     * untouched.
     */
    using Prepare = void (*)(const util::ParamMap &params,
                             sim::SystemConfig &cfg);

    struct Entry
    {
        std::string key;         //!< canonical selector key
        std::string description; //!< one line for `--policy=list`
        std::string grammar;     //!< param grammar, "" = no params
        Factory factory = nullptr;
        /**
         * PolicyKind value this key shims (static_cast-able), or -1
         * for registry-only contenders. Keeps the legacy enum round-
         * trip (`parsePolicyKind`/`to_string`) resolving through the
         * registry without the registry depending on sim headers.
         */
        int legacy_kind = -1;
        std::vector<std::string> aliases; //!< parse-only short names
        /**
         * False for keys a generic sweep cannot run meaningfully
         * (trace-replay needs a recorded trace in the config).
         */
        bool sweepable = true;
        Prepare prepare = nullptr;
    };

    static PolicyRegistry &instance();

    /**
     * Register an entry. Duplicate keys (or aliases shadowing an
     * existing key/alias) fail loudly — a silently replaced policy
     * would corrupt every spec key minted under the old meaning.
     */
    util::Status add(Entry entry);

    /** Key or alias lookup; nullptr when unknown. */
    const Entry *find(std::string_view key_or_alias) const;

    /** All entries, sorted by key. */
    std::vector<Entry> entries() const;

    /** Sorted canonical keys (for listings and suggestions). */
    std::vector<std::string> keys() const;

    /**
     * Build the policy a selector names. Unknown keys and bad params
     * fail `status` (with a nearest-key suggestion) and return null.
     */
    std::unique_ptr<Policy> make(std::string_view selector,
                                 const sim::SystemConfig &cfg,
                                 util::Status &status) const;

    /**
     * Run the selector's pre-construction hook (no-op when the entry
     * has none). Returns an error for unknown keys / bad params.
     */
    util::Status prepare(std::string_view selector,
                         sim::SystemConfig &cfg) const;

    /** Status for an unknown key, with a "did you mean" hint. */
    util::Status unknownKeyError(std::string_view key) const;

    /** Validate a selector without constructing (SystemConfig-free). */
    util::Status validateSelector(std::string_view selector) const;

  private:
    PolicyRegistry() = default;
    std::vector<Entry> entries_;
};

/** Static registrar: construct one per policy translation unit. */
struct PolicyRegistrar
{
    explicit PolicyRegistrar(PolicyRegistry::Entry entry);
};

} // namespace pccsim::os
