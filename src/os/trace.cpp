#include "os/trace.hpp"

#include <fstream>
#include <sstream>

#include "util/log.hpp"

namespace pccsim::os {

std::string
PromotionTrace::serialize() const
{
    std::ostringstream out;
    out << "# pccsim promotion trace v1\n";
    for (const auto &e : entries_) {
        out << e.at_accesses << ' ' << e.pid << ' ' << std::hex
            << "0x" << e.region_base << std::dec << ' '
            << (e.size == mem::PageSize::Huge1G ? "1G" : "2M") << '\n';
    }
    return out.str();
}

PromotionTrace
PromotionTrace::parse(const std::string &text)
{
    PromotionTrace trace;
    std::istringstream in(text);
    std::string line;
    while (std::getline(in, line)) {
        if (line.empty() || line[0] == '#')
            continue;
        std::istringstream fields(line);
        TraceEntry entry;
        std::string size;
        u64 pid = 0;
        if (!(fields >> entry.at_accesses >> pid >> std::hex >>
              entry.region_base >> std::dec >> size)) {
            fatal("malformed promotion-trace line: '", line, "'");
        }
        entry.pid = static_cast<Pid>(pid);
        if (size == "1G")
            entry.size = mem::PageSize::Huge1G;
        else if (size == "2M")
            entry.size = mem::PageSize::Huge2M;
        else
            fatal("unknown page size '", size, "' in trace");
        trace.entries_.push_back(entry);
    }
    return trace;
}

void
PromotionTrace::save(const std::string &path) const
{
    std::ofstream out(path);
    if (!out)
        fatal("cannot open ", path, " for writing");
    out << serialize();
}

PromotionTrace
PromotionTrace::load(const std::string &path)
{
    std::ifstream in(path);
    if (!in)
        fatal("cannot open ", path, " for reading");
    std::stringstream buffer;
    buffer << in.rdbuf();
    return parse(buffer.str());
}

} // namespace pccsim::os
