/**
 * @file
 * Promotion traces: the paper's two-step methodology (Sec. 4).
 *
 * Step one runs TLB+PCC simulation and records *which* huge-page
 * regions get promoted and *when* (in simulated accesses, the
 * deterministic stand-in for the paper's 30-second wall-clock marks).
 * Step two replays the trace into a run whose OS promotes exactly
 * those regions at those times, "as if real hardware provided the
 * data" — the paper's modified-kernel experiment. Records are
 * virtual-address based, so replay requires the same deterministic
 * address-space layout (the paper sets randomize_va_space=0 for the
 * same reason).
 */

#pragma once

#include <string>
#include <vector>

#include "mem/paging.hpp"
#include "util/types.hpp"

namespace pccsim::os {

/** One recorded promotion event. */
struct TraceEntry
{
    u64 at_accesses = 0; //!< simulated time of the promotion
    Pid pid = 0;
    Addr region_base = 0;
    mem::PageSize size = mem::PageSize::Huge2M;
};

class PromotionTrace
{
  public:
    void
    record(u64 at_accesses, Pid pid, Addr region_base,
           mem::PageSize size)
    {
        entries_.push_back({at_accesses, pid, region_base, size});
    }

    const std::vector<TraceEntry> &entries() const { return entries_; }
    size_t size() const { return entries_.size(); }
    bool empty() const { return entries_.empty(); }
    void clear() { entries_.clear(); }

    /** Serialize as one "accesses pid base size" line per entry. */
    std::string serialize() const;

    /** Parse the serialize() format; fatal on malformed input. */
    static PromotionTrace parse(const std::string &text);

    /** Write to / read from a file. */
    void save(const std::string &path) const;
    static PromotionTrace load(const std::string &path);

  private:
    std::vector<TraceEntry> entries_;
};

} // namespace pccsim::os
