#include "os/policies.hpp"

#include <algorithm>

#include "os/policy_registry.hpp"
#include "sim/config.hpp"
#include "util/log.hpp"

PCCSIM_DEFINE_LINK_ANCHOR(builtin_policies)

namespace pccsim::os {

namespace {

/**
 * Footprint-scaled budgets. The paper's evaluation machine scans 4096
 * base pages per interval against footprints of roughly 2.5M pages
 * (~0.16% per interval), and lets the PCC promote 128 regions per
 * interval against ~5000-region footprints (~2.5%). At reduced scale
 * we preserve the *fractions*, not the absolute counts.
 */

u64
totalFootprintPages(const Os &os)
{
    u64 pages = 0;
    for (Pid pid = 0; pid < os.numProcesses(); ++pid)
        pages += os.process(pid).footprintBytes() >> mem::kShift4K;
    return pages;
}

u64
autoScanPages(const Os &os, u32 configured)
{
    if (configured != 0)
        return configured;
    const u64 pages = totalFootprintPages(os);
    return std::max<u64>(64, static_cast<u64>(0.01 * pages));
}

u32
autoPromoteRegions(PolicyContext &ctx, u32 configured)
{
    if (configured != 0)
        return configured;
    // The paper's default: promote C regions per interval, where C is
    // the PCC capacity (shared across all PCCs) — Sec. 3.3.1.
    u64 total = 0;
    for (CoreId c = 0; c < ctx.numCores(); ++c)
        total += ctx.pccUnit(c).pcc2m().capacity();
    return static_cast<u32>(std::max<u64>(1, total));
}

/**
 * Which process owns `base`, by address-range containment. Tenant
 * address spaces are disjoint, so at most one process matches; the
 * fallback covers candidates that left every address space (they are
 * skipped as OutsideVma downstream, with the fallback pid on the
 * audit record — the pre-multi-tenant attribution).
 */
Pid
ownerPidOf(Os &os, Addr base, Pid fallback)
{
    for (Pid p = 0; p < os.numProcesses(); ++p)
        if (os.process(p).contains(base))
            return p;
    return fallback;
}

} // namespace

// ---------------------------------------------------------------- Linux

bool
LinuxThpPolicy::eligible(const Process &proc, Addr region_base) const
{
    const HugeHint hint = proc.hintOf(region_base);
    if (hint == HugeHint::NoHuge)
        return false;
    if (params_.respect_madvise && hint != HugeHint::Huge)
        return false;
    return true;
}

void
LinuxThpPolicy::onInterval(PolicyContext &ctx)
{
    Os &os = ctx.os();
    // khugepaged: walk regions in address order across all processes,
    // collapsing eligible ones, within the page-scan budget.
    u64 total_regions = 0;
    for (Pid pid = 0; pid < os.numProcesses(); ++pid)
        total_regions += os.process(pid).numRegions();
    if (total_regions == 0)
        return;

    // Budgets below one region carry over between intervals so tiny
    // footprints still see the paper's scan-rate-to-footprint ratio.
    scan_credit_ += autoScanPages(os, params_.scan_pages_per_interval);
    u64 steps = 0;
    while (scan_credit_ >= mem::kPagesPer2M && steps < total_regions) {
        // Map the global cursor onto (process, region).
        u64 idx = cursor_ % total_regions;
        Pid pid = 0;
        while (idx >= os.process(pid).numRegions()) {
            idx -= os.process(pid).numRegions();
            ++pid;
        }
        Process &proc = os.process(pid);
        const Addr base = proc.regionBase(idx);
        ++cursor_;
        ++steps;
        scan_credit_ -= mem::kPagesPer2M;
        os.chargeBackground(mem::kPagesPer2M *
                            os.params().costs.scan_per_page);

        if (proc.regionStateOf(base) != RegionState::Base4K)
            continue;
        if (!eligible(proc, base))
            continue;
        if (proc.faultedInRegion(base) < params_.min_faulted_pages)
            continue;
        auto result = os.promoteRegion(
            proc, base, params_.khugepaged_compaction,
            {0, proc.faultedInRegion(base)});
        if (result.status == PromoteStatus::Ok) {
            // Shootdown / conflict costs land on the cores running
            // this process.
            for (CoreId c = 0; c < ctx.numCores(); ++c)
                if (ctx.processOnCore(c).pid() == pid)
                    ctx.chargeCore(c, result.app_cycles);
        }
    }
}

// -------------------------------------------------------------- HawkEye

void
HawkEyePolicy::onInterval(PolicyContext &ctx)
{
    Os &os = ctx.os();
    if (procs_.size() < os.numProcesses())
        procs_.resize(os.numProcesses());

    // Phase 1: scan access bits under the page budget, maintaining the
    // access-coverage buckets. Sub-region budgets carry over.
    scan_credit_ += autoScanPages(os, params_.scan_pages_per_interval);
    for (Pid pid = 0; pid < os.numProcesses(); ++pid) {
        Process &proc = os.process(pid);
        ProcState &st = procs_[pid];
        const u64 regions = proc.numRegions();
        if (st.regions.size() < regions)
            st.regions.resize(regions);
        u64 scanned = 0;
        while (scan_credit_ >= mem::kPagesPer2M && scanned < regions) {
            const u64 idx = st.cursor % regions;
            ++st.cursor;
            ++scanned;
            scan_credit_ -= mem::kPagesPer2M;
            os.chargeBackground(mem::kPagesPer2M *
                                os.params().costs.scan_per_page);
            // Page-table-lock contention touches the app briefly.
            for (CoreId c = 0; c < ctx.numCores(); ++c) {
                if (ctx.processOnCore(c).pid() == pid) {
                    ctx.chargeCore(c, mem::kPagesPer2M *
                                          os.params().costs.scan_per_page);
                }
            }

            const Addr base = proc.regionBase(idx);
            if (proc.regionStateOf(base) != RegionState::Base4K)
                continue;
            const u32 coverage =
                proc.pageTable().countAccessed4K(base);
            proc.pageTable().clearAccessed(base);
            const u8 bucket =
                static_cast<u8>(std::min<u32>(9, coverage / 50));
            RegionInfo &info = st.regions[idx];
            if (!info.tracked || info.bucket != bucket) {
                info.tracked = true;
                info.bucket = bucket;
                st.buckets[bucket].push_back(idx);
            }
        }
    }

    // Phase 2: promote from bucket 9 downwards (skip bucket 0: regions
    // with essentially no observed coverage).
    u32 promoted = 0;
    for (int bucket = 9; bucket >= 1 &&
                         promoted < params_.regions_per_interval;
         --bucket) {
        for (Pid pid = 0; pid < os.numProcesses() &&
                          promoted < params_.regions_per_interval;
             ++pid) {
            Process &proc = os.process(pid);
            ProcState &st = procs_[pid];
            auto &queue = st.buckets[bucket];
            while (!queue.empty() &&
                   promoted < params_.regions_per_interval) {
                const u64 idx = queue.front();
                queue.pop_front();
                // Entries can be stale (region moved buckets/promoted).
                if (idx >= st.regions.size() ||
                    st.regions[idx].bucket != bucket) {
                    continue;
                }
                const Addr base = proc.regionBase(idx);
                if (proc.regionStateOf(base) != RegionState::Base4K)
                    continue;
                // rank = promotion order (best bucket first), counter =
                // the access-coverage bucket the scan assigned.
                auto result = os.promoteRegion(
                    proc, base, params_.compaction,
                    {static_cast<u32>(9 - bucket),
                     static_cast<u64>(bucket)});
                if (result.status == PromoteStatus::CapReached ||
                    result.status == PromoteStatus::NoHugeFrame) {
                    return; // out of budget or frames this interval
                }
                if (result.status == PromoteStatus::Ok) {
                    ++promoted;
                    st.regions[idx].tracked = false;
                    for (CoreId c = 0; c < ctx.numCores(); ++c)
                        if (ctx.processOnCore(c).pid() == pid)
                            ctx.chargeCore(c, result.app_cycles);
                }
            }
        }
    }
}

// ------------------------------------------------------------------ PCC

std::vector<PccPolicy::RankedCandidate>
PccPolicy::rank(PolicyContext &ctx) const
{
    Os &os = ctx.os();
    const u32 cores = ctx.numCores();
    std::vector<std::vector<pcc::Candidate>> snaps(cores);
    for (CoreId c = 0; c < cores; ++c)
        snaps[c] = ctx.pccUnit(c).pcc2m().snapshot();

    const auto make = [&](CoreId c,
                          const pcc::Candidate &cand) -> RankedCandidate {
        const Addr base = cand.region << mem::kShift2M;
        return {c,
                ownerPidOf(os, base, ctx.processOnCore(c).pid()),
                cand};
    };

    std::vector<RankedCandidate> out;
    if (params_.order == PromotionOrder::HighestFrequency) {
        for (CoreId c = 0; c < cores; ++c)
            for (const auto &cand : snaps[c])
                out.push_back(make(c, cand));
        std::stable_sort(out.begin(), out.end(),
                         [](const RankedCandidate &a,
                            const RankedCandidate &b) {
                             return a.candidate.frequency >
                                    b.candidate.frequency;
                         });
    } else {
        // Round robin: r-th best of each PCC, rotating the starting
        // core every interval for fairness.
        size_t max_len = 0;
        for (const auto &s : snaps)
            max_len = std::max(max_len, s.size());
        for (size_t r = 0; r < max_len; ++r) {
            for (u32 i = 0; i < cores; ++i) {
                const CoreId c = static_cast<CoreId>(
                    (i + rr_offset_) % cores);
                if (r < snaps[c].size())
                    out.push_back(make(c, snaps[c][r]));
            }
        }
    }

    // Process bias: candidates of biased pids come first, preserving
    // the chosen order within each class (Sec. 3.3.2).
    if (!params_.bias_pids.empty()) {
        std::stable_partition(
            out.begin(), out.end(), [&](const RankedCandidate &rc) {
                return std::find(params_.bias_pids.begin(),
                                 params_.bias_pids.end(),
                                 rc.pid) != params_.bias_pids.end();
            });
    }
    return out;
}

bool
PccPolicy::demoteOne(PolicyContext &ctx, Pid pid)
{
    if (promoted_fifo_.size() <= pid)
        return false;
    auto &fifo = promoted_fifo_[pid];
    Os &os = ctx.os();
    while (!fifo.empty()) {
        const Addr base = fifo.front();
        fifo.pop_front();
        Process &proc = os.process(pid);
        if (proc.regionStateOf(base) != RegionState::Huge2M)
            continue;
        const Cycles cost = os.demoteRegion(proc, base);
        for (CoreId c = 0; c < ctx.numCores(); ++c)
            if (ctx.processOnCore(c).pid() == pid)
                ctx.chargeCore(c, cost);
        return true;
    }
    return false;
}

void
PccPolicy::onInterval(PolicyContext &ctx)
{
    Os &os = ctx.os();
    if (promoted_fifo_.size() < os.numProcesses())
        promoted_fifo_.resize(os.numProcesses());

    telemetry::PromotionAuditLog *audit = ctx.audit();

    // 1GB pass first: a successful gigabyte promotion supersedes any
    // 2MB promotions inside its range (Sec. 3.2.3).
    if (params_.promote_1g) {
        for (CoreId c = 0; c < ctx.numCores(); ++c) {
            pcc::PccUnit &unit = ctx.pccUnit(c);
            const auto snap = unit.pcc1g().snapshot();
            for (size_t r = 0; r < snap.size(); ++r) {
                const auto &cand = snap[r];
                const Addr base = cand.region << mem::kShift1G;
                // Owner by address, not by core: on a shared core the
                // PCC holds candidates from every tenant that ran there.
                Process &proc = os.process(
                    ownerPidOf(os, base, ctx.processOnCore(c).pid()));
                if (!unit.prefer1G(cand.region, params_.ratio_1g)) {
                    // The PUD-level walk signal does not dominate the
                    // constituent 2MB counters: 2MB promotion suffices.
                    if (audit) {
                        audit->record(
                            telemetry::AuditAction::Skip,
                            telemetry::AuditReason::Not1GPreferred,
                            proc.pid(), base, static_cast<u32>(r),
                            cand.frequency);
                    }
                    continue;
                }
                if (!proc.contains(base)) {
                    if (audit) {
                        audit->record(
                            telemetry::AuditAction::Skip,
                            telemetry::AuditReason::OutsideVma,
                            proc.pid(), base, static_cast<u32>(r),
                            cand.frequency);
                    }
                    continue;
                }
                const auto result = os.promoteRegion1G(
                    proc, base,
                    {static_cast<u32>(r), cand.frequency});
                if (result.status == PromoteStatus::Ok)
                    ctx.chargeCore(c, result.app_cycles);
            }
        }
    }

    const auto ranked = rank(ctx);
    ++rr_offset_;

    const u32 budget = autoPromoteRegions(ctx, params_.regions_to_promote);

    // Multi-tenant arbitration: split the interval budget into per-pid
    // allowances. Empty arbiter = legacy single-tenant behavior (and
    // "greedy" grants everyone the full budget, so it is identical).
    std::vector<u32> allow;
    std::vector<u32> used;
    if (!params_.arbiter.empty()) {
        if (!arbiter_) {
            arbiter_ = tenant::makeArbiter(params_.arbiter);
            PCCSIM_ASSERT(arbiter_ != nullptr,
                          "unknown tenant arbiter name");
        }
        std::vector<tenant::TenantDemand> demand(os.numProcesses());
        for (Pid p = 0; p < os.numProcesses(); ++p)
            demand[p].pid = p;
        for (const auto &rc : ranked) {
            demand[rc.pid].candidates += 1;
            demand[rc.pid].weight += rc.candidate.frequency;
        }
        allow = arbiter_->allocate(budget, demand, rr_offset_);
        PCCSIM_ASSERT(allow.size() == demand.size(),
                      "arbiter allowance size mismatch");
        used.assign(allow.size(), 0);
    }

    u32 promoted = 0;
    for (size_t r = 0; r < ranked.size(); ++r) {
        const auto &rc = ranked[r];
        Process &proc = os.process(rc.pid);
        const Addr base = rc.candidate.region << mem::kShift2M;
        const auto skip = [&](telemetry::AuditReason reason) {
            if (audit) {
                audit->record(telemetry::AuditAction::Skip, reason,
                              proc.pid(), base, static_cast<u32>(r),
                              rc.candidate.frequency);
            }
        };
        if (promoted >= budget) {
            // Out of per-interval budget: without an audit log there is
            // nothing left to do; with one, record what was left on the
            // table (these skips are what regret is measured against).
            if (!audit)
                break;
            skip(telemetry::AuditReason::IntervalBudget);
            continue;
        }
        if (!allow.empty() && used[rc.pid] >= allow[rc.pid]) {
            // The tenant spent its arbiter allowance; others may still
            // promote, so keep scanning instead of breaking.
            skip(telemetry::AuditReason::TenantBudget);
            continue;
        }
        if (rc.candidate.frequency < params_.min_frequency) {
            skip(telemetry::AuditReason::BelowMinFrequency);
            continue;
        }
        if (!proc.contains(base)) {
            skip(telemetry::AuditReason::OutsideVma);
            continue;
        }
        if (proc.regionStateOf(base) != RegionState::Base4K) {
            skip(telemetry::AuditReason::RegionNotBase);
            continue;
        }

        const PromoteAttempt attempt{static_cast<u32>(r),
                                     rc.candidate.frequency};
        auto result = os.promoteRegion(proc, base,
                                       params_.allow_compaction,
                                       attempt);
        if (result.status == PromoteStatus::NoHugeFrame &&
            params_.demote_on_pressure) {
            // Free a frame by demoting the oldest huge page, then retry.
            if (demoteOne(ctx, proc.pid())) {
                result = os.promoteRegion(proc, base,
                                          params_.allow_compaction,
                                          attempt);
            }
        }
        if (result.status == PromoteStatus::Ok) {
            ++promoted;
            if (!used.empty())
                ++used[rc.pid];
            promoted_fifo_[proc.pid()].push_back(base);
            ctx.chargeCore(rc.core, result.app_cycles);
        } else if (result.status == PromoteStatus::CapReached ||
                   result.status == PromoteStatus::NoHugeFrame) {
            if (audit) {
                // Candidates ranked after the terminal failure were
                // skipped for the same cause.
                const auto reason =
                    result.status == PromoteStatus::CapReached
                        ? telemetry::AuditReason::CapReached
                        : (os.phys().transientFailuresPossible()
                               ? telemetry::AuditReason::
                                     NoHugeFrameTransient
                               : telemetry::AuditReason::NoHugeFrame);
                for (size_t r2 = r + 1; r2 < ranked.size(); ++r2) {
                    const auto &rc2 = ranked[r2];
                    audit->record(
                        telemetry::AuditAction::Skip, reason,
                        rc2.pid,
                        rc2.candidate.region << mem::kShift2M,
                        static_cast<u32>(r2), rc2.candidate.frequency);
                }
            }
            break; // no budget / no frames left this interval
        }
    }
}

// --------------------------------------------------------- TraceReplay

void
TraceReplayPolicy::onInterval(PolicyContext &ctx)
{
    Os &os = ctx.os();
    const u64 now = ctx.accessesSoFar();
    const auto &entries = trace_.entries();
    while (cursor_ < entries.size() &&
           entries[cursor_].at_accesses <= now) {
        const TraceEntry &entry = entries[cursor_++];
        if (entry.pid >= os.numProcesses())
            continue;
        Process &proc = os.process(entry.pid);
        PromoteResult result;
        if (entry.size == mem::PageSize::Huge1G) {
            result = os.promoteRegion1G(proc, entry.region_base);
        } else {
            result = os.promoteRegion(proc, entry.region_base,
                                      /*allow_compaction=*/true);
        }
        if (result.status == PromoteStatus::Ok) {
            for (CoreId c = 0; c < ctx.numCores(); ++c)
                if (ctx.processOnCore(c).pid() == entry.pid)
                    ctx.chargeCore(c, result.app_cycles);
        }
    }
}

// ------------------------------------------------- registry entries
//
// Each factory starts from the SystemConfig's policy params (so a bare
// key builds exactly what the legacy PolicyKind switch built — the
// bit-identity shim depends on it) and layers selector params on top.

namespace {

std::unique_ptr<Policy>
makePcc(const util::ParamMap &pm, const sim::SystemConfig &cfg,
        util::Status &status)
{
    PccPolicy::Params p = cfg.pcc_policy;
    p.regions_to_promote = static_cast<u32>(
        pm.getU64("promote", p.regions_to_promote));
    if (pm.has("order")) {
        const std::string order = pm.get("order");
        if (order == "freq") {
            p.order = PromotionOrder::HighestFrequency;
        } else if (order == "rr") {
            p.order = PromotionOrder::RoundRobin;
        } else {
            status.update(util::Status::error(
                "pcc order must be freq or rr, got '", order, "'"));
            return nullptr;
        }
    }
    p.min_frequency = pm.getU64("minfreq", p.min_frequency);
    p.allow_compaction = pm.getBool("compact", p.allow_compaction);
    p.demote_on_pressure = pm.getBool("demote", p.demote_on_pressure);
    p.promote_1g = pm.getBool("1g", p.promote_1g);
    p.ratio_1g = pm.getU64("ratio1g", p.ratio_1g);
    p.arbiter = pm.get("arbiter", p.arbiter);
    return std::make_unique<PccPolicy>(p);
}

std::unique_ptr<Policy>
makeLinuxThp(const util::ParamMap &pm, const sim::SystemConfig &cfg,
             util::Status &)
{
    LinuxThpPolicy::Params p = cfg.linux_thp;
    p.scan_pages_per_interval = static_cast<u32>(
        pm.getU64("scan", p.scan_pages_per_interval));
    p.min_faulted_pages = static_cast<u32>(
        pm.getU64("minfault", p.min_faulted_pages));
    p.fault_time_huge = pm.getBool("faulthuge", p.fault_time_huge);
    p.khugepaged_compaction =
        pm.getBool("khuge", p.khugepaged_compaction);
    p.respect_madvise = pm.getBool("madvise", p.respect_madvise);
    return std::make_unique<LinuxThpPolicy>(p);
}

std::unique_ptr<Policy>
makeHawkEye(const util::ParamMap &pm, const sim::SystemConfig &cfg,
            util::Status &)
{
    HawkEyePolicy::Params p = cfg.hawkeye;
    p.scan_pages_per_interval = static_cast<u32>(
        pm.getU64("scan", p.scan_pages_per_interval));
    p.regions_per_interval = static_cast<u32>(
        pm.getU64("promote", p.regions_per_interval));
    p.compaction = pm.getBool("compact", p.compaction);
    return std::make_unique<HawkEyePolicy>(p);
}

const PolicyRegistrar reg_base{{
    "base-4k",
    "4KB pages only (the baseline of every figure)",
    "",
    [](const util::ParamMap &, const sim::SystemConfig &,
       util::Status &) -> std::unique_ptr<Policy> {
        return std::make_unique<BasePagesPolicy>();
    },
    /*legacy_kind=*/0,
    {"base", "4k"},
}};

const PolicyRegistrar reg_all_huge{{
    "all-huge",
    "every fault allocates huge (the unfragmented THP ideal)",
    "",
    [](const util::ParamMap &, const sim::SystemConfig &,
       util::Status &) -> std::unique_ptr<Policy> {
        return std::make_unique<AllHugePolicy>();
    },
    /*legacy_kind=*/1,
    {"huge"},
}};

const PolicyRegistrar reg_linux_thp{{
    "linux-thp",
    "greedy fault-time THP plus khugepaged background collapse",
    "scan=N,minfault=N,faulthuge=B,khuge=B,madvise=B",
    makeLinuxThp,
    /*legacy_kind=*/2,
    {"thp"},
}};

const PolicyRegistrar reg_hawkeye{{
    "hawkeye",
    "access-coverage bucketing under a khugepaged-equal scan budget",
    "scan=N,promote=N,compact=B",
    makeHawkEye,
    /*legacy_kind=*/3,
    {},
}};

const PolicyRegistrar reg_pcc{{
    "pcc",
    "hardware PCC candidate ranking with per-interval promotion",
    "promote=N,order=freq|rr,minfreq=N,compact=B,demote=B,1g=B,"
    "ratio1g=N,arbiter=NAME",
    makePcc,
    /*legacy_kind=*/4,
    /*aliases=*/{},
    /*sweepable=*/true,
    // `pcc:1g=1` needs the 1GB PCC in hardware; enum-path callers set
    // cfg.pcc.enable_1g themselves, selector users should not have to.
    [](const util::ParamMap &pm, sim::SystemConfig &cfg) {
        if (pm.getBool("1g", cfg.pcc_policy.promote_1g))
            cfg.pcc.enable_1g = true;
    },
}};

const PolicyRegistrar reg_trace_replay{{
    "trace-replay",
    "replay a recorded promotion trace from the config",
    "",
    [](const util::ParamMap &, const sim::SystemConfig &cfg,
       util::Status &) -> std::unique_ptr<Policy> {
        return std::make_unique<TraceReplayPolicy>(cfg.replay_trace);
    },
    /*legacy_kind=*/5,
    {},
    /*sweepable=*/false,
}};

} // namespace

} // namespace pccsim::os
