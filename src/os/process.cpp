#include "os/process.hpp"

namespace pccsim::os {

namespace {

/** Distinct, 2MB-aligned heap bases per process, below 48 bits. */
Addr
heapBaseFor(Pid pid)
{
    return 0x1000'0000'0000ull + static_cast<Addr>(pid) *
                                     0x0100'0000'0000ull;
}

} // namespace

Process::Process(Pid pid, u64 heap_capacity)
    : pid_(pid),
      heap_capacity_(mem::alignUp(heap_capacity, mem::PageSize::Huge2M)),
      heap_base_(heapBaseFor(pid)),
      brk_(heap_base_)
{
    const u64 regions = heap_capacity_ >> mem::kShift2M;
    const u64 pages = heap_capacity_ >> mem::kShift4K;
    region_state_.assign(regions, RegionState::Unbacked);
    region_hint_.assign(regions, HugeHint::Default);
    faulted_.assign((pages + 63) / 64, 0);
    faulted_per_region_.assign(regions, 0);
    touched_.assign((pages + 63) / 64, 0);
    touched_per_region_.assign(regions, 0);
}

Addr
Process::mmap(u64 bytes, std::string name)
{
    const u64 rounded = mem::alignUp(bytes, mem::PageSize::Huge2M);
    PCCSIM_ASSERT(brk_ + rounded <= heap_base_ + heap_capacity_,
                  "process heap capacity exceeded; raise heap_capacity");
    const Addr base = brk_;
    brk_ += rounded;
    vmas_.push_back({base, bytes, std::move(name)});
    return base;
}

void
Process::madvise(Addr base, u64 bytes, HugeHint hint)
{
    PCCSIM_ASSERT(bytes > 0 && contains(base) &&
                  base + bytes <= brk_,
                  "madvise outside the mapped heap");
    const u64 first = regionIndex(base);
    const u64 last = regionIndex(base + bytes - 1);
    for (u64 r = first; r <= last; ++r)
        region_hint_[r] = hint;
}

void
Process::markFaulted(Addr vaddr)
{
    const u64 page = pageIndex(vaddr);
    u64 &word = faulted_[page >> 6];
    const u64 bit = 1ull << (page & 63);
    if (!(word & bit)) {
        word |= bit;
        ++faulted_per_region_[regionIndex(vaddr)];
        if (region_state_[regionIndex(vaddr)] == RegionState::Unbacked)
            region_state_[regionIndex(vaddr)] = RegionState::Base4K;
    }
    noteTouched(vaddr);
}

void
Process::markRegionHuge(Addr region_base)
{
    const u64 idx = regionIndex(region_base);
    region_state_[idx] = RegionState::Huge2M;
    // Every page in the region is now backed; count never-touched pages
    // as bloat and mark them faulted.
    const u32 already = faulted_per_region_[idx];
    bloat_pages_ += mem::kPagesPer2M - already;
    for (u64 p = 0; p < mem::kPagesPer2M; ++p) {
        const u64 page = pageIndex(region_base) + p;
        faulted_[page >> 6] |= 1ull << (page & 63);
    }
    faulted_per_region_[idx] = static_cast<u16>(mem::kPagesPer2M);
    promoted_bytes_ += mem::kBytes2M;
    ++promotions_;
}

void
Process::markRegion1G(Addr region_base)
{
    PCCSIM_ASSERT(mem::isAligned(region_base, mem::PageSize::Huge1G));
    for (u64 r = 0; r < mem::k2MPer1G; ++r) {
        const Addr base = region_base + r * mem::kBytes2M;
        const u64 idx = regionIndex(base);
        if (region_state_[idx] == RegionState::Huge2M)
            promoted_bytes_ -= mem::kBytes2M; // re-counted below
        else
            bloat_pages_ += mem::kPagesPer2M - faulted_per_region_[idx];
        region_state_[idx] = RegionState::Huge1G;
        for (u64 p = 0; p < mem::kPagesPer2M; ++p) {
            const u64 page = pageIndex(base) + p;
            faulted_[page >> 6] |= 1ull << (page & 63);
        }
        faulted_per_region_[idx] = static_cast<u16>(mem::kPagesPer2M);
    }
    promoted_bytes_ += mem::kBytes1G;
    ++promotions_1g_;
}

void
Process::markRegion1GDemoted(Addr region_base)
{
    PCCSIM_ASSERT(mem::isAligned(region_base, mem::PageSize::Huge1G));
    for (u64 r = 0; r < mem::k2MPer1G; ++r) {
        const u64 idx = regionIndex(region_base + r * mem::kBytes2M);
        PCCSIM_ASSERT(region_state_[idx] == RegionState::Huge1G);
        region_state_[idx] = RegionState::Huge2M;
    }
    // 1GB bytes remain promoted, just at 2MB granularity now.
    ++demotions_;
}

void
Process::markRegionDemoted(Addr region_base)
{
    const u64 idx = regionIndex(region_base);
    PCCSIM_ASSERT(region_state_[idx] == RegionState::Huge2M);
    region_state_[idx] = RegionState::Base4K;
    promoted_bytes_ -= mem::kBytes2M;
    ++demotions_;
}

} // namespace pccsim::os
