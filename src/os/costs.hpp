/**
 * @file
 * Centralized OS event costs, in cycles.
 *
 * Every policy is charged through the same table so comparisons are
 * fair. Only *synchronous* work is charged to application cores: page
 * faults (including 2MB zeroing on huge faults — the cost that makes
 * greedy THP expensive), TLB shootdowns, and brief promotion conflicts.
 * Background kernel-thread work (khugepaged/HawkEye scanning, the copy
 * performed by the promotion thread, compaction) runs off the critical
 * path, exactly as in the paper's evaluation setup (Sec. 4), and is
 * accounted separately as OS effort.
 */

#pragma once

#include "util/types.hpp"

namespace pccsim::os {

struct OsCosts
{
    /** Minor fault servicing a 4KB page. */
    Cycles base_fault = 2'500;

    /**
     * Extra latency of a fault-time 2MB allocation: 512x the zeroing
     * plus longer allocation paths (Sec. 2.1: "512x data needs to be
     * zeroed... page fault time can dramatically lengthen").
     */
    Cycles huge_fault_extra = 120'000;

    /** One TLB shootdown observed by an application core. */
    Cycles shootdown = 4'000;

    /**
     * Stall when an access conflicts with an in-flight promotion of the
     * same region (Sec. 5.2: "can cause execution to stall for a very
     * short period"). Charged once per promotion to the owning core.
     */
    Cycles promotion_conflict = 6'000;

    /** Page-table-lock contention per scanned page (HawkEye/khugepaged),
     *  charged to the application when scanning its address space. */
    Cycles scan_per_page = 4;

    /**
     * One context switch on a multi-tenant core: CR3 write, pipeline
     * drain, and scheduler bookkeeping. Charged identically in flush
     * and ASID switch modes — the modes differ in the TLB state a
     * switch destroys, and keeping the direct charge equal attributes
     * the entire measured delta to the refill misses the flush causes.
     */
    Cycles context_switch = 400;

    /**
     * Direct-reclaim entry on a failed base-page allocation: scanning
     * for cold huge pages and demoting them runs synchronously in the
     * faulting task, as Linux's direct reclaim does.
     */
    Cycles reclaim_event = 30'000;

    // ---- background (OS-effort) costs, not charged to the app ----

    /** Copying one 4KB page during promotion or compaction. */
    Cycles copy_page = 700;

    /** Fixed overhead per compaction attempt. */
    Cycles compaction_attempt = 8'000;
};

} // namespace pccsim::os
