/**
 * @file
 * Huge-page promotion policy interface.
 *
 * The System invokes a policy at two points: synchronously on every
 * page fault (fault-time THP decision) and periodically every
 * `interval_accesses` simulated accesses (the paper's 30-second
 * promotion interval, Sec. 3.3.1). Policies act through the Os
 * mechanism layer and observe hardware through the PolicyContext.
 */

#pragma once

#include <string>

#include "os/os.hpp"
#include "pcc/pcc_unit.hpp"

namespace pccsim::os {

/** What a policy can see and charge during an interval. */
class PolicyContext
{
  public:
    virtual ~PolicyContext() = default;

    virtual Os &os() = 0;
    virtual u32 numCores() const = 0;

    /** The process whose thread runs on this core. */
    virtual Process &processOnCore(CoreId core) = 0;

    /** The per-core PCC unit (hardware state; read-only use intended). */
    virtual pcc::PccUnit &pccUnit(CoreId core) = 0;

    /** Charge synchronous overhead cycles to an application core. */
    virtual void chargeCore(CoreId core, Cycles cycles) = 0;

    /** 0-based index of the current promotion interval. */
    virtual u64 intervalIndex() const = 0;

    /** Total simulated accesses so far (trace replay timing). */
    virtual u64 accessesSoFar() const = 0;

    /**
     * Promotion audit log, or null when auditing is off (the default,
     * and the default implementation — contexts that never collect
     * telemetry need not override). Policies record the candidates
     * they *skip* here; the Os mechanism records the attempts.
     */
    virtual telemetry::PromotionAuditLog *
    audit()
    {
        return nullptr;
    }
};

class Policy
{
  public:
    virtual ~Policy() = default;

    virtual std::string name() const = 0;

    /** Should this fault be served with a fault-time 2MB allocation? */
    virtual bool
    wantHugeFault(const Process &proc, Addr vaddr)
    {
        (void)proc;
        (void)vaddr;
        return false;
    }

    /** Periodic promotion work (khugepaged / HawkEye / PCC reader). */
    virtual void onInterval(PolicyContext &ctx) { (void)ctx; }
};

} // namespace pccsim::os
