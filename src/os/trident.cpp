#include "os/trident.hpp"

#include <algorithm>
#include <vector>

#include "os/policy_registry.hpp"
#include "sim/config.hpp"

PCCSIM_DEFINE_LINK_ANCHOR(trident_policy)

namespace pccsim::os {

namespace {

Pid
ownerPidOf(Os &os, Addr base, Pid fallback)
{
    for (Pid p = 0; p < os.numProcesses(); ++p)
        if (os.process(p).contains(base))
            return p;
    return fallback;
}

u32
autoPromoteRegions(PolicyContext &ctx, u32 configured)
{
    if (configured != 0)
        return configured;
    u64 total = 0;
    for (CoreId c = 0; c < ctx.numCores(); ++c)
        total += ctx.pccUnit(c).pcc2m().capacity();
    return static_cast<u32>(std::max<u64>(1, total));
}

void
chargeProcessCores(PolicyContext &ctx, Pid pid, Cycles cycles)
{
    for (CoreId c = 0; c < ctx.numCores(); ++c)
        if (ctx.processOnCore(c).pid() == pid)
            ctx.chargeCore(c, cycles);
}

} // namespace

void
TridentPolicy::onInterval(PolicyContext &ctx)
{
    // 1GB first: a gigabyte promotion supersedes 2MB work inside its
    // range, and its targeted compaction wants frames the 2MB pass
    // would otherwise consume.
    promote1G(ctx);
    if (params_.cold_1g_intervals > 0)
        demoteCold1G(ctx);
    promote2M(ctx);
}

void
TridentPolicy::promote1G(PolicyContext &ctx)
{
    Os &os = ctx.os();
    telemetry::PromotionAuditLog *audit = ctx.audit();
    u32 promoted = 0;
    for (CoreId c = 0; c < ctx.numCores(); ++c) {
        pcc::PccUnit &unit = ctx.pccUnit(c);
        const auto snap = unit.pcc1g().snapshot();
        for (size_t r = 0; r < snap.size(); ++r) {
            const auto &cand = snap[r];
            const Addr base = cand.region << mem::kShift1G;
            const Pid pid =
                ownerPidOf(os, base, ctx.processOnCore(c).pid());
            // Freshness bookkeeping feeds cold demotion: any
            // appearance in a 1GB PCC counts, promoted or not.
            last_seen_1g_[{pid, base}] = ctx.intervalIndex();

            Process &proc = os.process(pid);
            if (!unit.prefer1G(cand.region, params_.ratio_1g)) {
                if (audit) {
                    audit->record(telemetry::AuditAction::Skip,
                                  telemetry::AuditReason::Not1GPreferred,
                                  pid, base, static_cast<u32>(r),
                                  cand.frequency);
                }
                continue;
            }
            if (!proc.contains(base)) {
                if (audit) {
                    audit->record(telemetry::AuditAction::Skip,
                                  telemetry::AuditReason::OutsideVma,
                                  pid, base, static_cast<u32>(r),
                                  cand.frequency);
                }
                continue;
            }
            if (promoted >= params_.max_1g_per_interval) {
                if (audit) {
                    audit->record(telemetry::AuditAction::Skip,
                                  telemetry::AuditReason::IntervalBudget,
                                  pid, base, static_cast<u32>(r),
                                  cand.frequency);
                }
                continue;
            }
            const auto result = os.promoteRegion1G(
                proc, base, {static_cast<u32>(r), cand.frequency},
                params_.allow_compaction);
            if (result.status == PromoteStatus::Ok) {
                ++promoted;
                ctx.chargeCore(c, result.app_cycles);
            }
        }
    }
}

void
TridentPolicy::demoteCold1G(PolicyContext &ctx)
{
    Os &os = ctx.os();
    const u64 now = ctx.intervalIndex();
    for (Pid pid = 0; pid < os.numProcesses(); ++pid) {
        Process &proc = os.process(pid);
        // Collect first, demote after: demotion rewrites the region
        // table the scan is iterating.
        std::vector<Addr> cold;
        for (u64 i = 0; i < proc.numRegions(); ++i) {
            const Addr base = proc.regionBase(i);
            if ((base & (mem::kBytes1G - 1)) != 0)
                continue; // only the head region speaks for the page
            if (proc.regionStateOf(base) != RegionState::Huge1G)
                continue;
            const auto it = last_seen_1g_.find({pid, base});
            const u64 seen = it == last_seen_1g_.end() ? 0 : it->second;
            if (now - seen >= params_.cold_1g_intervals)
                cold.push_back(base);
        }
        for (const Addr base : cold) {
            const Cycles cycles = os.demoteRegion1G(proc, base);
            chargeProcessCores(ctx, pid, cycles);
            last_seen_1g_.erase({pid, base});
        }
    }
}

void
TridentPolicy::promote2M(PolicyContext &ctx)
{
    Os &os = ctx.os();
    telemetry::PromotionAuditLog *audit = ctx.audit();

    struct Ranked
    {
        CoreId core;
        Pid pid;
        pcc::Candidate candidate;
    };
    std::vector<Ranked> ranked;
    for (CoreId c = 0; c < ctx.numCores(); ++c) {
        for (const auto &cand : ctx.pccUnit(c).pcc2m().snapshot()) {
            const Addr base = cand.region << mem::kShift2M;
            ranked.push_back(
                {c, ownerPidOf(os, base, ctx.processOnCore(c).pid()),
                 cand});
        }
    }
    std::stable_sort(ranked.begin(), ranked.end(),
                     [](const Ranked &a, const Ranked &b) {
                         return a.candidate.frequency >
                                b.candidate.frequency;
                     });

    const u32 budget =
        autoPromoteRegions(ctx, params_.regions_to_promote);
    u32 promoted = 0;
    for (size_t r = 0; r < ranked.size(); ++r) {
        const auto &rc = ranked[r];
        Process &proc = os.process(rc.pid);
        const Addr base = rc.candidate.region << mem::kShift2M;
        const auto skip = [&](telemetry::AuditReason reason) {
            if (audit) {
                audit->record(telemetry::AuditAction::Skip, reason,
                              rc.pid, base, static_cast<u32>(r),
                              rc.candidate.frequency);
            }
        };
        if (promoted >= budget) {
            if (!audit)
                break;
            skip(telemetry::AuditReason::IntervalBudget);
            continue;
        }
        if (!proc.contains(base)) {
            skip(telemetry::AuditReason::OutsideVma);
            continue;
        }
        if (proc.regionStateOf(base) != RegionState::Base4K) {
            skip(telemetry::AuditReason::RegionNotBase);
            continue;
        }
        const auto result = os.promoteRegion(
            proc, base, params_.allow_compaction,
            {static_cast<u32>(r), rc.candidate.frequency});
        if (result.status == PromoteStatus::Ok) {
            ++promoted;
            ctx.chargeCore(rc.core, result.app_cycles);
        } else if (result.status == PromoteStatus::CapReached ||
                   result.status == PromoteStatus::NoHugeFrame) {
            if (audit) {
                const auto reason =
                    result.status == PromoteStatus::CapReached
                        ? telemetry::AuditReason::CapReached
                        : (os.phys().transientFailuresPossible()
                               ? telemetry::AuditReason::
                                     NoHugeFrameTransient
                               : telemetry::AuditReason::NoHugeFrame);
                for (size_t r2 = r + 1; r2 < ranked.size(); ++r2) {
                    audit->record(
                        telemetry::AuditAction::Skip, reason,
                        ranked[r2].pid,
                        ranked[r2].candidate.region << mem::kShift2M,
                        static_cast<u32>(r2),
                        ranked[r2].candidate.frequency);
                }
            }
            break;
        }
    }
}

namespace {

const PolicyRegistrar reg_trident{{
    "trident",
    "three-page-size promotion: PCC-ranked 2MB + eager compacted 1GB",
    "promote=N,ratio1g=N,max1g=N,cold=N,faulthuge=B,compact=B",
    [](const util::ParamMap &pm, const sim::SystemConfig &,
       util::Status &) -> std::unique_ptr<Policy> {
        TridentPolicy::Params p;
        p.regions_to_promote =
            static_cast<u32>(pm.getU64("promote", p.regions_to_promote));
        p.ratio_1g = pm.getU64("ratio1g", p.ratio_1g);
        p.max_1g_per_interval =
            static_cast<u32>(pm.getU64("max1g", p.max_1g_per_interval));
        p.cold_1g_intervals =
            static_cast<u32>(pm.getU64("cold", p.cold_1g_intervals));
        p.fault_time_huge = pm.getBool("faulthuge", p.fault_time_huge);
        p.allow_compaction = pm.getBool("compact", p.allow_compaction);
        return std::make_unique<TridentPolicy>(p);
    },
    /*legacy_kind=*/-1,
    /*aliases=*/{},
    /*sweepable=*/true,
    // Trident's 1GB pass reads the 1GB PCC rollup: the hardware must
    // be configured before the cores are built.
    [](const util::ParamMap &, sim::SystemConfig &cfg) {
        cfg.pcc.enable_1g = true;
    },
}};

} // namespace

} // namespace pccsim::os
