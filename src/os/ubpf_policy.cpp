#include "os/ubpf_policy.hpp"

#include <algorithm>

#include "os/policy_registry.hpp"
#include "sim/config.hpp"
#include "util/log.hpp"

PCCSIM_DEFINE_LINK_ANCHOR(ubpf_policy)

namespace pccsim::os {

namespace {

Pid
ownerPidOf(Os &os, Addr base, Pid fallback)
{
    for (Pid p = 0; p < os.numProcesses(); ++p)
        if (os.process(p).contains(base))
            return p;
    return fallback;
}

u32
autoPromoteRegions(PolicyContext &ctx, u32 configured)
{
    if (configured != 0)
        return configured;
    u64 total = 0;
    for (CoreId c = 0; c < ctx.numCores(); ++c)
        total += ctx.pccUnit(c).pcc2m().capacity();
    return static_cast<u32>(std::max<u64>(1, total));
}

} // namespace

UserProgram
findUserProgram(const std::string &name)
{
    if (name == "topk") {
        // Kernel-grade behavior expressed through the sandbox: walk
        // the ranked list in order, request until the budget is spent.
        return [](const UserPolicyView &view, UserActionSink &sink) {
            const u64 n = view.numCandidates();
            u32 asked = 0;
            for (u64 i = 0; i < n; ++i) {
                if (asked >= view.promotionBudget())
                    break;
                if (!view.candidate(i))
                    break;
                sink.promote(static_cast<u32>(i));
                ++asked;
            }
        };
    }
    if (name == "lowfirst") {
        // Adversarial tenant: spend the budget on the *coldest* ranked
        // candidates. Every hot region it leaves behind shows up as
        // regret in the fig10 scoreboard.
        return [](const UserPolicyView &view, UserActionSink &sink) {
            const u64 n = view.numCandidates();
            u32 asked = 0;
            for (u64 i = n; i > 0; --i) {
                if (asked >= view.promotionBudget())
                    break;
                if (!view.candidate(i - 1))
                    break;
                sink.promote(static_cast<u32>(i - 1));
                ++asked;
            }
        };
    }
    return nullptr;
}

UbpfPolicy::UbpfPolicy(Params params) : params_(std::move(params))
{
    program_ = findUserProgram(params_.prog);
    PCCSIM_ASSERT(program_ != nullptr,
                  "unknown ubpf program (factory validates)");
}

void
UbpfPolicy::onInterval(PolicyContext &ctx)
{
    if (disabled_)
        return;
    Os &os = ctx.os();
    telemetry::PromotionAuditLog *audit = ctx.audit();

    // Kernel side: assemble the evidence — merged ranked candidates
    // across every core's 2MB PCC, hottest first.
    struct Tagged
    {
        CoreId core;
        UserCandidate cand;
    };
    std::vector<Tagged> merged;
    for (CoreId c = 0; c < ctx.numCores(); ++c) {
        for (const auto &cand : ctx.pccUnit(c).pcc2m().snapshot()) {
            const Addr base = cand.region << mem::kShift2M;
            merged.push_back(
                {c,
                 {0, ownerPidOf(os, base, ctx.processOnCore(c).pid()),
                  base, cand.frequency}});
        }
    }
    std::stable_sort(merged.begin(), merged.end(),
                     [](const Tagged &a, const Tagged &b) {
                         return a.cand.frequency > b.cand.frequency;
                     });
    std::vector<UserCandidate> candidates;
    candidates.reserve(merged.size());
    for (size_t r = 0; r < merged.size(); ++r) {
        merged[r].cand.rank = static_cast<u32>(r);
        candidates.push_back(merged[r].cand);
    }

    const u32 budget =
        autoPromoteRegions(ctx, params_.regions_to_promote);
    const u64 free_2m = os.phys().hugeFramesAvailable();

    // Sandboxed run(s). The determinism guard replays the program on
    // an identical view; helper charges accrue per run, so both runs
    // see the same budget horizon.
    const auto runOnce = [&](std::vector<u32> &out) -> bool {
        u64 helper_calls = 0;
        const UserPolicyView view(ctx.intervalIndex(), budget,
                                  candidates, free_2m, &helper_calls,
                                  params_.helper_budget);
        UserActionSink sink(view);
        program_(view, sink);
        out = sink.requests();
        return helper_calls <= params_.helper_budget;
    };

    std::vector<u32> requests;
    if (!runOnce(requests)) {
        warn("ubpf program '", params_.prog,
             "' exhausted its helper budget (", params_.helper_budget,
             "); disabling for the rest of the run");
        disabled_ = true;
        return;
    }
    if (params_.verify) {
        std::vector<u32> replay;
        if (!runOnce(replay) || replay != requests) {
            warn("ubpf program '", params_.prog,
                 "' failed the determinism replay; disabling for the "
                 "rest of the run");
            disabled_ = true;
            return;
        }
    }

    // Kernel side again: validate and execute the requests.
    u32 promoted = 0;
    for (const u32 rank : requests) {
        if (rank >= candidates.size()) {
            if (audit) {
                audit->record(telemetry::AuditAction::Skip,
                              telemetry::AuditReason::SandboxRejected,
                              0, 0, rank, 0);
            }
            continue;
        }
        const UserCandidate &cand = candidates[rank];
        Process &proc = os.process(cand.pid);
        if (promoted >= budget) {
            if (audit) {
                audit->record(telemetry::AuditAction::Skip,
                              telemetry::AuditReason::SandboxRejected,
                              cand.pid, cand.base, rank,
                              cand.frequency);
            }
            continue;
        }
        if (!proc.contains(cand.base)) {
            if (audit) {
                audit->record(telemetry::AuditAction::Skip,
                              telemetry::AuditReason::OutsideVma,
                              cand.pid, cand.base, rank,
                              cand.frequency);
            }
            continue;
        }
        if (proc.regionStateOf(cand.base) != RegionState::Base4K) {
            if (audit) {
                audit->record(telemetry::AuditAction::Skip,
                              telemetry::AuditReason::RegionNotBase,
                              cand.pid, cand.base, rank,
                              cand.frequency);
            }
            continue;
        }
        const auto result =
            os.promoteRegion(proc, cand.base, params_.allow_compaction,
                             {rank, cand.frequency});
        if (result.status == PromoteStatus::Ok) {
            ++promoted;
            ctx.chargeCore(merged[rank].core, result.app_cycles);
        } else if (result.status == PromoteStatus::CapReached ||
                   result.status == PromoteStatus::NoHugeFrame) {
            break;
        }
    }
}

namespace {

const PolicyRegistrar reg_ubpf{{
    "ubpf",
    "sandboxed userspace policy fed PCC evidence (eBPF-mm style)",
    "prog=topk|lowfirst,helpers=N,verify=B,promote=N,compact=B",
    [](const util::ParamMap &pm, const sim::SystemConfig &,
       util::Status &status) -> std::unique_ptr<Policy> {
        UbpfPolicy::Params p;
        p.prog = pm.get("prog", p.prog);
        if (!findUserProgram(p.prog)) {
            status.update(util::Status::error(
                "unknown ubpf program '", p.prog,
                "' (built-ins: topk, lowfirst)"));
            return nullptr;
        }
        p.helper_budget = pm.getU64("helpers", p.helper_budget);
        p.verify = pm.getBool("verify", p.verify);
        p.regions_to_promote =
            static_cast<u32>(pm.getU64("promote", p.regions_to_promote));
        p.allow_compaction = pm.getBool("compact", p.allow_compaction);
        return std::make_unique<UbpfPolicy>(p);
    },
    /*legacy_kind=*/-1,
    {},
}};

} // namespace

} // namespace pccsim::os
