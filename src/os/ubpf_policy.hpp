/**
 * @file
 * eBPF-mm-style userspace promotion policy (`--policy=ubpf:prog=...`).
 *
 * Models the eBPF-for-memory-management proposal (PAPERS.md): the
 * kernel exposes its promotion evidence — the interval's merged,
 * ranked PCC candidate list plus allocator state — to a sandboxed
 * user-supplied program, which answers with promotion requests. The
 * kernel stays in charge of mechanism and safety:
 *
 *  - View-only input: the program sees a read-only UserPolicyView; it
 *    cannot touch OS or hardware state directly.
 *  - Helper budget: every view accessor and emitted action counts
 *    against a per-interval helper budget (the eBPF verifier's
 *    instruction bound, collapsed to run time). Exhausting it
 *    terminates the program for the interval.
 *  - Determinism guard: each interval the program runs twice over the
 *    same view; if the two action lists differ, the program is
 *    disabled for the rest of the run (a nondeterministic policy would
 *    break the simulator's reproducibility contract).
 *  - Action validation: requests outside the candidate list, outside
 *    any VMA, or beyond the promotion budget are rejected and audited
 *    as SandboxRejected rather than executed.
 *
 * Programs are named and built in (this is a simulator, not a JIT):
 * `prog=topk` reproduces kernel-grade behavior through the sandbox,
 * `prog=lowfirst` deliberately promotes the coldest candidates first —
 * a worst-case tenant for the regret scoreboard.
 */

#pragma once

#include <functional>
#include <vector>

#include "os/policy.hpp"

namespace pccsim::os {

/** One ranked candidate as shown to the user program. */
struct UserCandidate
{
    u32 rank = 0;
    Pid pid = 0;
    Addr base = 0;     //!< 2MB region base
    u64 frequency = 0; //!< PCC counter evidence
};

/** Read-only evidence a user program decides from. */
class UserPolicyView
{
  public:
    UserPolicyView(u64 interval, u32 budget,
                   const std::vector<UserCandidate> &candidates,
                   u64 free_frames_2m, u64 *helper_calls,
                   u64 helper_budget)
        : interval_(interval), budget_(budget), candidates_(candidates),
          free_frames_2m_(free_frames_2m), helper_calls_(helper_calls),
          helper_budget_(helper_budget)
    {
    }

    /** False once the helper budget is exhausted. */
    bool
    charge(u64 calls = 1) const
    {
        *helper_calls_ += calls;
        return *helper_calls_ <= helper_budget_;
    }

    u64 interval() const { return interval_; }
    u32 promotionBudget() const { return budget_; }

    u64
    numCandidates() const
    {
        charge();
        return candidates_.size();
    }

    /** Null when out of range (or out of helper budget). */
    const UserCandidate *
    candidate(u64 index) const
    {
        if (!charge() || index >= candidates_.size())
            return nullptr;
        return &candidates_[index];
    }

    u64
    freeHugeFrames() const
    {
        charge();
        return free_frames_2m_;
    }

  private:
    u64 interval_;
    u32 budget_;
    const std::vector<UserCandidate> &candidates_;
    u64 free_frames_2m_;
    u64 *helper_calls_;
    u64 helper_budget_;
};

/** Action sink: the only way a user program affects the system. */
class UserActionSink
{
  public:
    explicit UserActionSink(const UserPolicyView &view) : view_(view) {}

    /** Request promotion of the candidate at `rank`. */
    void
    promote(u32 rank)
    {
        if (!view_.charge())
            return;
        requests_.push_back(rank);
    }

    const std::vector<u32> &requests() const { return requests_; }

  private:
    const UserPolicyView &view_;
    std::vector<u32> requests_;
};

/** A named, built-in user program. */
using UserProgram =
    std::function<void(const UserPolicyView &, UserActionSink &)>;

/** Look up a built-in program ("topk", "lowfirst"); null if unknown. */
UserProgram findUserProgram(const std::string &name);

class UbpfPolicy : public Policy
{
  public:
    struct Params
    {
        std::string prog = "topk";
        /** Helper-call budget per interval run. */
        u64 helper_budget = 4096;
        /** Run twice per interval and compare (determinism guard). */
        bool verify = true;
        /** 2MB promotions per interval; 0 = PCC-capacity auto. */
        u32 regions_to_promote = 0;
        bool allow_compaction = true;
    };

    explicit UbpfPolicy(Params params);

    std::string name() const override { return "ubpf"; }

    void onInterval(PolicyContext &ctx) override;

    /** True once the sandbox disabled the program (tests). */
    bool disabled() const { return disabled_; }

  private:
    Params params_;
    UserProgram program_;
    bool disabled_ = false;
};

} // namespace pccsim::os
