/**
 * @file
 * The promotion policies evaluated in the paper:
 *
 *  - BasePagesPolicy: 4KB pages only (the baseline of every figure).
 *  - AllHugePolicy: back everything with huge pages at fault time (the
 *    "Max. Perf. with THPs" ideal, run on unfragmented memory).
 *  - LinuxThpPolicy: Linux's greedy fault-time THP plus the khugepaged
 *    background scanner (Sec. 2.1).
 *  - HawkEyePolicy: access-coverage bucketing with a khugepaged-equal
 *    scan budget (Sec. 2.2) — the software state of the art compared
 *    against throughout Sec. 5.
 *  - PccPolicy: the paper's proposal — periodically read the ranked
 *    per-core PCC dumps and promote the top candidates (Sec. 3.3).
 */

#pragma once

#include <deque>
#include <memory>
#include <string>
#include <vector>

#include "os/policy.hpp"
#include "os/trace.hpp"
#include "tenant/arbiter.hpp"

namespace pccsim::os {

/** Baseline: never promotes anything. */
class BasePagesPolicy : public Policy
{
  public:
    std::string name() const override { return "base-4k"; }
};

/** Ideal: every first touch allocates a 2MB page when possible. */
class AllHugePolicy : public Policy
{
  public:
    std::string name() const override { return "all-huge"; }

    bool
    wantHugeFault(const Process &, Addr) override
    {
        return true;
    }
};

/**
 * Linux THP: greedy synchronous huge allocation at fault time (no
 * direct compaction, as with the v5.15 `defrag=madvise` default) and
 * khugepaged asynchronously collapsing regions in address order at a
 * bounded scan rate.
 */
class LinuxThpPolicy : public Policy
{
  public:
    struct Params
    {
        /**
         * khugepaged scan budget per interval. The paper's machine
         * scans 4096 pages against multi-GB footprints; 0 selects the
         * same *fraction* of the current footprint (min one region) so
         * reduced-scale runs keep the paper's scan-rate-to-footprint
         * ratio.
         */
        u32 scan_pages_per_interval = 0;
        /** Collapse needs > this many faulted pages in the region
         *  (Linux max_ptes_none=511 means 1 faulted page suffices). */
        u32 min_faulted_pages = 1;
        bool fault_time_huge = true;
        bool khugepaged_compaction = true;
        /**
         * THP enabled=madvise mode: only regions hinted with
         * MADV_HUGEPAGE are eligible for fault-time huge allocation or
         * khugepaged collapse. With `false` (enabled=always, the
         * kernel default the paper evaluates), MADV_NOHUGEPAGE is
         * still honoured.
         */
        bool respect_madvise = false;
    };

    LinuxThpPolicy() = default;
    explicit LinuxThpPolicy(Params params) : params_(params) {}

    std::string name() const override { return "linux-thp"; }

    bool
    wantHugeFault(const Process &proc, Addr vaddr) override
    {
        if (!params_.fault_time_huge)
            return false;
        const HugeHint hint = proc.hintOf(vaddr);
        if (hint == HugeHint::NoHuge)
            return false;
        if (params_.respect_madvise)
            return hint == HugeHint::Huge;
        return true;
    }

    void onInterval(PolicyContext &ctx) override;

  private:
    bool eligible(const Process &proc, Addr region_base) const;

    Params params_;
    u64 cursor_ = 0;      //!< global region cursor across processes
    u64 scan_credit_ = 0; //!< carried-over sub-region scan budget
};

/**
 * HawkEye-style promotion: regions are sorted into ten access-coverage
 * buckets (0-49 touched base pages -> bucket 0, ..., 450-512 ->
 * bucket 9) from page-table accessed bits gathered under the same
 * 4096-pages-per-interval scan budget as khugepaged; promotion drains
 * bucket 9 first and works backwards.
 */
class HawkEyePolicy : public Policy
{
  public:
    struct Params
    {
        u32 scan_pages_per_interval = 0; //!< 0 = footprint-scaled auto
        u32 regions_per_interval = 128;  //!< promotion attempts allowed
        bool compaction = true;
    };

    HawkEyePolicy() = default;
    explicit HawkEyePolicy(Params params) : params_(params) {}

    std::string name() const override { return "hawkeye"; }

    void onInterval(PolicyContext &ctx) override;

  private:
    struct RegionInfo
    {
        u8 bucket = 0;
        bool tracked = false;
    };

    struct ProcState
    {
        u64 cursor = 0;
        std::vector<RegionInfo> regions;
        std::vector<std::deque<u64>> buckets =
            std::vector<std::deque<u64>>(10);
    };

    Params params_;
    std::vector<ProcState> procs_;
    u64 scan_credit_ = 0; //!< carried-over sub-region scan budget
};

/** OS arbitration across multiple PCCs (Sec. 3.3.2). */
enum class PromotionOrder : u8
{
    HighestFrequency = 0, //!< globally highest PCC frequency first
    RoundRobin = 1,       //!< fair rotation across PCCs
};

/**
 * The paper's proposal: read ranked candidates from every per-core
 * PCC each interval and promote up to regions_to_promote of them,
 * compacting memory as needed; optionally demote stale huge pages to
 * free frames under memory pressure (Sec. 3.3.3).
 */
class PccPolicy : public Policy
{
  public:
    struct Params
    {
        /**
         * Promotions allowed per interval (the paper's
         * regions_to_promote knob, default = one PCC capacity). 0
         * selects the footprint-scaled equivalent, preserving the
         * paper's 16x promotion-rate advantage over khugepaged /
         * HawkEye scanning.
         */
        u32 regions_to_promote = 0;
        PromotionOrder order = PromotionOrder::HighestFrequency;
        std::vector<Pid> bias_pids;   //!< promotion_bias_process
        bool allow_compaction = true;
        bool demote_on_pressure = false;
        /** Ignore candidates whose counter is below this (0 = take all). */
        u64 min_frequency = 0;
        /**
         * Enable 1GB promotion from the 1GB PCC (Sec. 3.2.3): a 1GB
         * candidate is promoted when its walk frequency exceeds
         * ratio_1g times its hottest 2MB constituent. Requires the
         * hardware PCC unit's 1GB cache to be enabled too.
         */
        bool promote_1g = false;
        u64 ratio_1g = 512;
        /**
         * Multi-tenant budget arbiter (tenant/arbiter.hpp): "greedy",
         * "static", or "propshare". Empty (the default) keeps the
         * single-tenant behavior — the global budget alone bounds
         * promotions. "greedy" is behaviorally identical to empty; it
         * exists so sweeps can name the legacy contender explicitly.
         */
        std::string arbiter;
    };

    PccPolicy() = default;
    explicit PccPolicy(Params params) : params_(params) {}

    std::string name() const override { return "pcc"; }

    void onInterval(PolicyContext &ctx) override;

    const Params &params() const { return params_; }

  private:
    struct RankedCandidate
    {
        CoreId core;
        /**
         * Owning process, resolved from the candidate's *address*
         * (which process's heap contains it), not from the core it was
         * observed on — on a multi-tenant shared core the PCC holds
         * candidates of every tenant that ran there. Falls back to the
         * core's current process for candidates no process contains
         * (the OutsideVma skip path).
         */
        Pid pid = 0;
        pcc::Candidate candidate;
    };

    std::vector<RankedCandidate> rank(PolicyContext &ctx) const;

    /** FIFO of promoted regions per pid, for pressure demotion. */
    bool demoteOne(PolicyContext &ctx, Pid pid);

    Params params_;
    std::vector<std::deque<Addr>> promoted_fifo_;
    u64 rr_offset_ = 0;
    /** Lazily built from params_.arbiter (null = legacy behavior). */
    std::unique_ptr<tenant::Arbiter> arbiter_;
};

/**
 * Replay a recorded promotion trace (the paper's step-two real-system
 * methodology, Sec. 4): at each interval, promote every traced region
 * whose timestamp has been reached. The address-space layout must
 * match the recording run (deterministic seeds guarantee this).
 */
class TraceReplayPolicy : public Policy
{
  public:
    explicit TraceReplayPolicy(PromotionTrace trace)
        : trace_(std::move(trace))
    {
    }

    std::string name() const override { return "trace-replay"; }

    void onInterval(PolicyContext &ctx) override;

    /** Entries applied so far. */
    u64 replayed() const { return cursor_; }

  private:
    PromotionTrace trace_;
    u64 cursor_ = 0;
};

} // namespace pccsim::os
