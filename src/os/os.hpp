/**
 * @file
 * The OS memory-management model: page-fault handling, huge-page
 * promotion/demotion execution (with compaction), and TLB-shootdown
 * plumbing. Promotion *policy* lives elsewhere (policy.hpp); this class
 * is the mechanism every policy shares.
 */

#pragma once

#include <functional>
#include <memory>
#include <optional>
#include <vector>

#include "mem/phys_mem.hpp"
#include "os/costs.hpp"
#include "os/process.hpp"
#include "telemetry/audit.hpp"
#include "telemetry/trace.hpp"
#include "util/stats.hpp"

namespace pccsim::os {

/** Outcome of a promotion attempt. */
enum class PromoteStatus : u8
{
    Ok = 0,
    AlreadyHuge,
    CapReached,       //!< promotion budget (utility-curve limit) hit
    NoHugeFrame,      //!< no frame and compaction not allowed / failed
    NotEligible,      //!< region outside a VMA or never touched
};

struct PromoteResult
{
    PromoteStatus status = PromoteStatus::NotEligible;
    Cycles app_cycles = 0; //!< synchronous cost charged to the app core
    bool compacted = false;
    u32 retries = 0;        //!< extra acquire attempts after failures
    u32 compaction_runs = 0; //!< compactOneBlock() calls made
};

/**
 * The policy's evidence behind a promotion attempt, forwarded into the
 * audit log so each decision record carries the candidate's rank and
 * counter value. Default-constructed (rank 0 / counter 0) for callers
 * with no ranking, so existing call sites need no change.
 */
struct PromoteAttempt
{
    u32 rank = 0;    //!< 0-based rank among this interval's candidates
    u64 counter = 0; //!< PCC frequency / coverage estimate
};

class Os
{
  public:
    struct Params
    {
        OsCosts costs{};
        /**
         * Promotion budget in bytes across all processes; nullopt means
         * unlimited. Drives the paper's utility curves (huge pages
         * back N% of the footprint).
         */
        std::optional<u64> promotion_cap_bytes{};
        /** Max compaction attempts per needed huge frame. */
        u32 compaction_attempts = 8;
        /**
         * Extra huge-frame acquisition attempts after a transient
         * failure. Only taken when the physical memory reports that
         * failures can be transient (a fault-injection gate is
         * installed); a genuine out-of-frames condition never changes
         * between back-to-back attempts, so retrying would only skew
         * clean-run results.
         */
        u32 promote_retries = 2;
        /** Backoff charged per retry (doubles each attempt). */
        Cycles retry_backoff = 2'000;
        /**
         * On base-page allocation failure, demote and trim cold huge
         * pages to free memory (direct-reclaim analogue) instead of
         * aborting the run.
         */
        bool reclaim_on_pressure = true;
        /** Huge regions reclaimed per pressure event. */
        u32 reclaim_batch_regions = 1;
    };

    /**
     * Shootdown hook installed by the System: invalidates TLBs, PWCs
     * and PCC entries for [base, base+bytes) of process pid on every
     * core, and returns the cycles charged to the faulting/owning core.
     */
    using ShootdownHook = std::function<Cycles(Pid, Addr, u64)>;

    /** Observer invoked after every successful promotion (tracing). */
    using PromotionHook =
        std::function<void(Pid, Addr, mem::PageSize)>;

    /**
     * Hotness estimate for a huge region, used to pick reclaim victims
     * (coldest first). The System wires this to the PCCs so reclaim is
     * guided by the same page-walk frequencies that guide promotion;
     * without a ranker every candidate scores 0 and ties break toward
     * the most bloated region.
     */
    using ReclaimRanker = std::function<u64(Pid, Addr)>;

    /** Outcome of a pressure-reclaim pass. */
    struct ReclaimResult
    {
        u64 regions_demoted = 0;
        u64 frames_freed = 0;
        Cycles app_cycles = 0; //!< shootdown cost (direct reclaim is
                               //!< charged to the faulting core)
    };

    Os(Params params, mem::PhysicalMemory &phys);

    /** Create a process with the given maximum heap size. */
    Process &createProcess(u64 heap_capacity);

    Process &process(Pid pid) { return *processes_.at(pid); }
    const Process &process(Pid pid) const { return *processes_.at(pid); }
    u32 numProcesses() const { return static_cast<u32>(processes_.size()); }

    void setShootdownHook(ShootdownHook hook) { shootdown_ = std::move(hook); }
    void setPromotionHook(PromotionHook hook) { promoted_ = std::move(hook); }
    void setReclaimRanker(ReclaimRanker rank) { ranker_ = std::move(rank); }

    /**
     * Structured event tracing (null = off, the default). Every
     * promotion, demotion, compaction run, and reclaim pass records one
     * event; with no tracer each site costs one pointer test, so
     * disabled telemetry never perturbs timing-sensitive runs.
     */
    void setTracer(telemetry::EventTracer *tracer) { tracer_ = tracer; }

    /**
     * Promotion audit trail (null = off, the default; same one-pointer
     * -test discipline as setTracer). Every promote/demote/reclaim
     * decision — including fault-time huge allocations and their
     * fallbacks — records an AuditRecord with a structured reason.
     */
    void setAuditLog(telemetry::PromotionAuditLog *audit) { audit_ = audit; }

    /**
     * Handle a page fault at vaddr.
     * @param want_huge The policy asks for a fault-time 2MB allocation
     *        (greedy THP). Falls back to a base page on failure.
     * @return Synchronous cycles charged to the faulting core.
     */
    Cycles handleFault(Process &proc, Addr vaddr, bool want_huge);

    /**
     * Promote the 2MB region at region_base (khugepaged-style collapse:
     * allocate a huge frame, copy, splice the page table, shoot down).
     * @param allow_compaction Run compaction when no huge frame is free.
     */
    PromoteResult promoteRegion(Process &proc, Addr region_base,
                                bool allow_compaction,
                                PromoteAttempt attempt = {});

    /** Split a huge mapping back into base pages (in place). */
    Cycles demoteRegion(Process &proc, Addr region_base);

    /**
     * Promote a 1GB-aligned range into one 1GB page (Sec. 3.2.3
     * extension). Constituent 4KB and 2MB mappings are collectively
     * collapsed, exactly as the paper describes for mixed regions.
     * @param allow_compaction When no order-18 frame is free, vacate
     *        the cheapest gigabyte group block-by-block (Trident-style
     *        1GB defragmentation) before giving up.
     */
    PromoteResult promoteRegion1G(Process &proc, Addr region_base,
                                  PromoteAttempt attempt = {},
                                  bool allow_compaction = false);

    /** Split a 1GB page into 512 2MB pages (in place). */
    Cycles demoteRegion1G(Process &proc, Addr region_base);

    /**
     * Demote the coldest huge regions and free their never-touched
     * frames. Called by handleFault when a base allocation fails, and
     * available to policies that want to shed bloat proactively.
     */
    ReclaimResult reclaimColdHugePages(u32 max_regions);

    /** Remaining promotion budget in regions; nullopt when unlimited. */
    std::optional<u64> promotionBudgetRegions() const;

    /** Bytes promoted across all processes. */
    u64 promotedBytesTotal() const;

    mem::PhysicalMemory &phys() { return phys_; }
    const Params &params() const { return params_; }
    StatGroup &stats() { return stats_; }

    /** Background (kernel-thread) cycles spent so far, by source. */
    u64 backgroundCycles() const { return background_cycles_; }
    void chargeBackground(Cycles c) { background_cycles_ += c; }

  private:
    /** Does the promotion cap leave room for `more` further bytes? */
    bool
    capAllows(u64 more) const
    {
        return !params_.promotion_cap_bytes ||
               promotedBytesTotal() + more <= *params_.promotion_cap_bytes;
    }

    /** Obtain a huge frame, compacting if allowed. */
    std::optional<Pfn> acquireHugeFrame(Process &proc, Addr region_base,
                                        bool allow_compaction,
                                        PromoteResult &result);

    /** Apply compaction page moves to the owning page tables. */
    void applyMoves(const std::vector<mem::PhysicalMemory::Move> &moves);

    /** Audit reason for a promotion outcome (injection-aware). */
    telemetry::AuditReason auditReasonFor(PromoteStatus status) const;

    Params params_;
    mem::PhysicalMemory &phys_;
    std::vector<std::unique_ptr<Process>> processes_;
    ShootdownHook shootdown_;
    PromotionHook promoted_;
    ReclaimRanker ranker_;
    telemetry::EventTracer *tracer_ = nullptr;
    telemetry::PromotionAuditLog *audit_ = nullptr;
    StatGroup stats_{"os"};
    u64 background_cycles_ = 0;
};

} // namespace pccsim::os
