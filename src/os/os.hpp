/**
 * @file
 * The OS memory-management model: page-fault handling, huge-page
 * promotion/demotion execution (with compaction), and TLB-shootdown
 * plumbing. Promotion *policy* lives elsewhere (policy.hpp); this class
 * is the mechanism every policy shares.
 */

#pragma once

#include <functional>
#include <memory>
#include <vector>

#include "mem/phys_mem.hpp"
#include "os/costs.hpp"
#include "os/process.hpp"
#include "util/stats.hpp"

namespace pccsim::os {

/** Outcome of a promotion attempt. */
enum class PromoteStatus : u8
{
    Ok = 0,
    AlreadyHuge,
    CapReached,       //!< promotion budget (utility-curve limit) hit
    NoHugeFrame,      //!< no frame and compaction not allowed / failed
    NotEligible,      //!< region outside a VMA or never touched
};

struct PromoteResult
{
    PromoteStatus status = PromoteStatus::NotEligible;
    Cycles app_cycles = 0; //!< synchronous cost charged to the app core
    bool compacted = false;
};

class Os
{
  public:
    struct Params
    {
        OsCosts costs{};
        /**
         * Promotion budget in bytes across all processes; ~0 means
         * unlimited. Drives the paper's utility curves (huge pages
         * back N% of the footprint).
         */
        u64 promotion_cap_bytes = ~0ull;
        /** Max compaction attempts per needed huge frame. */
        u32 compaction_attempts = 8;
    };

    /**
     * Shootdown hook installed by the System: invalidates TLBs, PWCs
     * and PCC entries for [base, base+bytes) of process pid on every
     * core, and returns the cycles charged to the faulting/owning core.
     */
    using ShootdownHook = std::function<Cycles(Pid, Addr, u64)>;

    /** Observer invoked after every successful promotion (tracing). */
    using PromotionHook =
        std::function<void(Pid, Addr, mem::PageSize)>;

    Os(Params params, mem::PhysicalMemory &phys);

    /** Create a process with the given maximum heap size. */
    Process &createProcess(u64 heap_capacity);

    Process &process(Pid pid) { return *processes_.at(pid); }
    const Process &process(Pid pid) const { return *processes_.at(pid); }
    u32 numProcesses() const { return static_cast<u32>(processes_.size()); }

    void setShootdownHook(ShootdownHook hook) { shootdown_ = std::move(hook); }
    void setPromotionHook(PromotionHook hook) { promoted_ = std::move(hook); }

    /**
     * Handle a page fault at vaddr.
     * @param want_huge The policy asks for a fault-time 2MB allocation
     *        (greedy THP). Falls back to a base page on failure.
     * @return Synchronous cycles charged to the faulting core.
     */
    Cycles handleFault(Process &proc, Addr vaddr, bool want_huge);

    /**
     * Promote the 2MB region at region_base (khugepaged-style collapse:
     * allocate a huge frame, copy, splice the page table, shoot down).
     * @param allow_compaction Run compaction when no huge frame is free.
     */
    PromoteResult promoteRegion(Process &proc, Addr region_base,
                                bool allow_compaction);

    /** Split a huge mapping back into base pages (in place). */
    Cycles demoteRegion(Process &proc, Addr region_base);

    /**
     * Promote a 1GB-aligned range into one 1GB page (Sec. 3.2.3
     * extension). Constituent 4KB and 2MB mappings are collectively
     * collapsed, exactly as the paper describes for mixed regions.
     * Requires a free order-18 frame (no gigabyte compaction).
     */
    PromoteResult promoteRegion1G(Process &proc, Addr region_base);

    /** Split a 1GB page into 512 2MB pages (in place). */
    Cycles demoteRegion1G(Process &proc, Addr region_base);

    /** Remaining promotion budget in regions; ~0 when unlimited. */
    u64 promotionBudgetRegions() const;

    /** Bytes promoted across all processes. */
    u64 promotedBytesTotal() const;

    mem::PhysicalMemory &phys() { return phys_; }
    const Params &params() const { return params_; }
    StatGroup &stats() { return stats_; }

    /** Background (kernel-thread) cycles spent so far, by source. */
    u64 backgroundCycles() const { return background_cycles_; }
    void chargeBackground(Cycles c) { background_cycles_ += c; }

  private:
    /** Obtain a huge frame, compacting if allowed. */
    std::optional<Pfn> acquireHugeFrame(Process &proc, Addr region_base,
                                        bool allow_compaction,
                                        bool &compacted);

    /** Apply compaction page moves to the owning page tables. */
    void applyMoves(const std::vector<mem::PhysicalMemory::Move> &moves);

    Params params_;
    mem::PhysicalMemory &phys_;
    std::vector<std::unique_ptr<Process>> processes_;
    ShootdownHook shootdown_;
    PromotionHook promoted_;
    StatGroup stats_{"os"};
    u64 background_cycles_ = 0;
};

} // namespace pccsim::os
