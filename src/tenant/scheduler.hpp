/**
 * @file
 * The tenant contention scheduler: decides when a lane turn on a
 * shared core constitutes a context switch, and accumulates the
 * per-tenant occupancy accounting the fairness telemetry reports.
 *
 * The scheduler does not pick the rotation order itself — the engine's
 * deterministic round-robin lane loop does (reused from the multi-lane
 * engine) — it owns the *consequences* of that order: which tenant
 * currently holds each core, how many switches each tenant suffered,
 * and how many ops each tenant has run. Keeping this state here rather
 * than inside the System gives the arbiter and the telemetry probes
 * one queryable source of truth.
 */

#pragma once

#include <vector>

#include "tenant/tenant.hpp"

namespace pccsim::tenant {

class Scheduler
{
  public:
    /**
     * @param config Tenant-mode knobs (must be enabled()).
     * @param tenants Number of tenants (jobs) being interleaved.
     */
    Scheduler(const TenantConfig &config, u32 tenants);

    /**
     * Pre-load `tenant` onto `core` without counting a switch — the
     * state a real node boots into (some process is always current).
     * Called once per core during run setup.
     */
    void seed(CoreId core, TenantId tenant);

    /**
     * A lane of `tenant` is about to run a turn on `core`. Returns
     * true when this requires a context switch (the core currently
     * holds a different tenant); the switch is recorded against the
     * incoming tenant.
     */
    bool claim(CoreId core, TenantId tenant);

    /** Account `ops` simulated ops to `tenant`'s occupancy. */
    void noteOps(TenantId tenant, u64 ops);

    /** Scheduler quantum in ops (from the config). */
    u32 quantum() const { return config_.quantum_ops; }

    const TenantConfig &config() const { return config_; }

    u32 tenants() const { return static_cast<u32>(ops_.size()); }

    /** Tenant currently loaded on `core`. */
    TenantId currentOn(CoreId core) const { return current_.at(core); }

    u64 switches() const { return switches_; }
    u64 switchesOf(TenantId tenant) const { return tenant_switches_.at(tenant); }
    u64 opsOf(TenantId tenant) const { return ops_.at(tenant); }

    /**
     * Tenant share of all scheduled ops, in [0, 1]. The fairness
     * telemetry compares this against the tenant's promotion share: a
     * tenant whose promotion share sits far below its occupancy share
     * is being starved by the arbiter.
     */
    double occupancyShareOf(TenantId tenant) const;

  private:
    TenantConfig config_;
    std::vector<TenantId> current_;      //!< per shared core
    std::vector<u64> ops_;               //!< per tenant
    std::vector<u64> tenant_switches_;   //!< per tenant
    u64 switches_ = 0;
    u64 total_ops_ = 0;
};

} // namespace pccsim::tenant
