#include "tenant/scheduler.hpp"

#include "util/log.hpp"

namespace pccsim::tenant {

std::string
to_string(SwitchMode mode)
{
    switch (mode) {
      case SwitchMode::Flush: return "flush";
      case SwitchMode::Asid: return "asid";
    }
    return "?";
}

std::optional<SwitchMode>
parseSwitchMode(std::string_view name)
{
    if (name == "flush")
        return SwitchMode::Flush;
    if (name == "asid" || name == "pcid")
        return SwitchMode::Asid;
    return std::nullopt;
}

Scheduler::Scheduler(const TenantConfig &config, u32 tenants)
    : config_(config),
      current_(config.cores, 0),
      ops_(tenants, 0),
      tenant_switches_(tenants, 0)
{
    PCCSIM_ASSERT(config.enabled(),
                  "Scheduler built with tenant mode disabled");
    PCCSIM_ASSERT(tenants >= 1);
}

void
Scheduler::seed(CoreId core, TenantId tenant)
{
    current_.at(core) = tenant;
}

bool
Scheduler::claim(CoreId core, TenantId tenant)
{
    TenantId &cur = current_.at(core);
    if (cur == tenant)
        return false;
    cur = tenant;
    ++switches_;
    ++tenant_switches_.at(tenant);
    return true;
}

void
Scheduler::noteOps(TenantId tenant, u64 ops)
{
    ops_.at(tenant) += ops;
    total_ops_ += ops;
}

double
Scheduler::occupancyShareOf(TenantId tenant) const
{
    if (total_ops_ == 0)
        return 0.0;
    return static_cast<double>(ops_.at(tenant)) /
           static_cast<double>(total_ops_);
}

} // namespace pccsim::tenant
