/**
 * @file
 * Multi-tenant node configuration: how N per-tenant workload streams
 * share the simulated cores, and what a context switch costs in TLB
 * state.
 *
 * Tenants map 1:1 onto processes (tenant i runs as pid i) and, in ASID
 * mode, onto hardware ASIDs (asid i = pid i), so every identifier
 * space lines up and per-tenant attribution can always go through the
 * pid. The tenant machinery is off by default (`cores == 0`); every
 * existing single-process and one-lane-per-core multiprocess path is
 * untouched then.
 */

#pragma once

#include <optional>
#include <string>
#include <string_view>

#include "util/types.hpp"

namespace pccsim::tenant {

/** What a context switch does to the TLB hierarchy. */
enum class SwitchMode : u8
{
    /**
     * Baseline: a CR3 write without PCID flushes every TLB level and
     * the page-walk caches — the pre-PCID x86 behavior, and the
     * reason the multi-tenant question needs ASID tagging at all.
     */
    Flush = 0,
    /**
     * ASID/PCID tagging: the CR3 write only changes the current ASID;
     * entries of descheduled tenants stay resident and are hit again
     * when their tenant is rescheduled.
     */
    Asid = 1,
};

std::string to_string(SwitchMode mode);

/** Parses "flush" / "asid"; nullopt for anything else. */
std::optional<SwitchMode> parseSwitchMode(std::string_view name);

/** Tenant-mode knobs inside SystemConfig. */
struct TenantConfig
{
    /**
     * Number of physical cores the tenant lanes share, round-robin.
     * 0 disables tenant mode entirely (the default): each lane then
     * owns its own core as before. With cores >= 1, lanes of all jobs
     * are interleaved on cores [0, cores) and a lane turn whose job
     * differs from the core's currently-loaded process pays a context
     * switch.
     */
    u32 cores = 0;

    SwitchMode switch_mode = SwitchMode::Asid;

    /**
     * Ops one tenant runs per scheduler turn before the next tenant's
     * lane is given the core. Matches the engine's multi-lane rotation
     * quantum by default; larger quanta amortize switch costs at the
     * price of latency fairness.
     */
    u32 quantum_ops = 64;

    bool enabled() const { return cores > 0; }
};

} // namespace pccsim::tenant
