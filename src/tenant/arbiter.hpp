/**
 * @file
 * Huge-page budget arbiters: how one node-wide per-interval promotion
 * budget is split across tenants contending for it.
 *
 * The PCC policy computes a global budget each interval (the paper's
 * regions_to_promote) and, in multi-tenant runs, asks the configured
 * arbiter for a per-tenant allowance before walking its ranked
 * candidate list. A candidate whose tenant has exhausted its allowance
 * is skipped with a TenantBudget audit record — the per-tenant regret
 * machinery then prices exactly what each arbitration decision cost
 * each tenant in walk cycles.
 *
 * Three contenders (selectable by name through the policy registry):
 *
 *  - "greedy":    no per-tenant limit; the globally hottest candidates
 *                 win regardless of owner. This is the single-tenant
 *                 policy's behavior extended verbatim — maximum node
 *                 throughput, no fairness guarantee.
 *  - "static":    equal fixed split, remainder rotated across tenants
 *                 by interval index so no tenant is permanently
 *                 favored by integer division.
 *  - "propshare": allowances proportional to each tenant's observed
 *                 walk demand (sum of its candidates' PCC counters),
 *                 largest-remainder rounding. Tenants that generate
 *                 the walks get the pages — proportional fairness.
 *
 * Arbiters are pure functions of their inputs (no clocks, no RNG), so
 * serial and --jobs=N sweeps stay bit-identical.
 */

#pragma once

#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "util/types.hpp"

namespace pccsim::tenant {

/** One tenant's demand, aggregated from its ranked PCC candidates. */
struct TenantDemand
{
    Pid pid = 0;
    u64 candidates = 0; //!< distinct ranked candidates this interval
    u64 weight = 0;     //!< sum of candidate PCC counters (walk demand)
};

class Arbiter
{
  public:
    virtual ~Arbiter() = default;

    virtual std::string name() const = 0;

    /**
     * Split `budget` promotion slots across `demand`. Returns one
     * allowance per demand entry, index-aligned. Allowances may sum
     * to more than `budget` (greedy returns budget for everyone); the
     * global budget is enforced separately by the policy — allowances
     * only bound each tenant's share of it.
     *
     * @param interval The policy interval index, for deterministic
     *        rotation of remainders.
     */
    virtual std::vector<u32> allocate(u32 budget,
                                      const std::vector<TenantDemand> &demand,
                                      u64 interval) const = 0;
};

/**
 * Look up an arbiter by name ("greedy", "static", "propshare").
 * Returns nullptr for unknown names so callers can report the typo.
 */
std::unique_ptr<Arbiter> makeArbiter(std::string_view name);

/** Canonical names accepted by makeArbiter, for --help text. */
std::vector<std::string> arbiterNames();

} // namespace pccsim::tenant
