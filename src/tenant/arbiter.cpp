#include "tenant/arbiter.hpp"

#include <algorithm>
#include <numeric>

namespace pccsim::tenant {

namespace {

/** Legacy behavior: every tenant may use the whole global budget. */
class GreedyGlobalArbiter final : public Arbiter
{
  public:
    std::string name() const override { return "greedy"; }

    std::vector<u32>
    allocate(u32 budget, const std::vector<TenantDemand> &demand,
             u64 /*interval*/) const override
    {
        return std::vector<u32>(demand.size(), budget);
    }
};

/** Equal split; the remainder rotates with the interval index. */
class StaticSplitArbiter final : public Arbiter
{
  public:
    std::string name() const override { return "static"; }

    std::vector<u32>
    allocate(u32 budget, const std::vector<TenantDemand> &demand,
             u64 interval) const override
    {
        const u32 n = static_cast<u32>(demand.size());
        if (n == 0)
            return {};
        std::vector<u32> out(n, budget / n);
        const u32 rem = budget % n;
        for (u32 i = 0; i < rem; ++i)
            out[(interval + i) % n] += 1;
        return out;
    }
};

/**
 * Allowances proportional to walk demand, largest-remainder rounding.
 * Ties rotate with the interval index; an interval with zero total
 * weight (idle PCCs) degenerates to the static equal split.
 */
class PropShareArbiter final : public Arbiter
{
  public:
    std::string name() const override { return "propshare"; }

    std::vector<u32>
    allocate(u32 budget, const std::vector<TenantDemand> &demand,
             u64 interval) const override
    {
        const u32 n = static_cast<u32>(demand.size());
        if (n == 0)
            return {};
        u64 total = 0;
        for (const auto &d : demand)
            total += d.weight;
        if (total == 0)
            return StaticSplitArbiter{}.allocate(budget, demand, interval);

        std::vector<u32> out(n, 0);
        // Integer quota per tenant, then hand the leftover slots to
        // the largest fractional remainders (exact integer arithmetic:
        // remainder_i = weight_i * budget mod total).
        u32 assigned = 0;
        std::vector<u64> rem(n, 0);
        for (u32 i = 0; i < n; ++i) {
            const u64 exact = demand[i].weight * budget;
            out[i] = static_cast<u32>(exact / total);
            rem[i] = exact % total;
            assigned += out[i];
        }
        std::vector<u32> order(n);
        std::iota(order.begin(), order.end(), 0u);
        std::stable_sort(order.begin(), order.end(),
                         [&](u32 a, u32 b) {
                             if (rem[a] != rem[b])
                                 return rem[a] > rem[b];
                             // Deterministic tie rotation.
                             return (a + interval) % n < (b + interval) % n;
                         });
        for (u32 i = 0; assigned < budget && i < n; ++i) {
            if (rem[order[i]] == 0)
                break; // exact quotas already; leftover stays unassigned
            out[order[i]] += 1;
            ++assigned;
        }
        return out;
    }
};

} // namespace

std::unique_ptr<Arbiter>
makeArbiter(std::string_view name)
{
    if (name == "greedy" || name == "greedy-global")
        return std::make_unique<GreedyGlobalArbiter>();
    if (name == "static" || name == "static-split")
        return std::make_unique<StaticSplitArbiter>();
    if (name == "propshare" || name == "proportional")
        return std::make_unique<PropShareArbiter>();
    return nullptr;
}

std::vector<std::string>
arbiterNames()
{
    return {"greedy", "static", "propshare"};
}

} // namespace pccsim::tenant
