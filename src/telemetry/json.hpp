/**
 * @file
 * Minimal deterministic JSON document builder.
 *
 * Every machine-readable artifact the simulator emits — interval
 * series, Chrome traces, runner perf accounting, the benches' --json
 * sections — is assembled as a Json value and rendered by dump().
 * Object keys keep insertion order and number formatting is fixed, so
 * two identical runs always produce byte-identical output (the same
 * determinism contract the runner gives RunResults).
 *
 * This is a writer, not a parser: the simulator only produces JSON;
 * validation of emitted documents lives in scripts/check.sh, which has
 * a real parser (python3) available.
 */

#pragma once

#include <string>
#include <utility>
#include <vector>

#include "util/types.hpp"

namespace pccsim::telemetry {

class Json
{
  public:
    /** Default construction is null. */
    Json() = default;

    Json(bool value) : kind_(Kind::Bool), bool_(value) {}
    Json(double value) : kind_(Kind::Double), double_(value) {}
    Json(u64 value) : kind_(Kind::Uint), uint_(value) {}
    Json(i64 value) : kind_(Kind::Int), int_(value) {}
    Json(int value) : Json(static_cast<i64>(value)) {}
    Json(unsigned value) : Json(static_cast<u64>(value)) {}
    Json(const char *value) : kind_(Kind::String), string_(value) {}
    Json(std::string value)
        : kind_(Kind::String), string_(std::move(value))
    {
    }

    static Json
    object()
    {
        Json j;
        j.kind_ = Kind::Object;
        return j;
    }

    static Json
    array()
    {
        Json j;
        j.kind_ = Kind::Array;
        return j;
    }

    bool isObject() const { return kind_ == Kind::Object; }
    bool isArray() const { return kind_ == Kind::Array; }
    bool isNull() const { return kind_ == Kind::Null; }

    /** Set a key on an object (insertion-ordered; replaces in place). */
    Json &set(const std::string &key, Json value);

    /** Append an element to an array. */
    Json &push(Json value);

    /** Member of an object by key; nullptr when absent / not an
     *  object. Mutable access lets builders augment a sub-document
     *  another layer produced (e.g. appending counter tracks to a
     *  finished Chrome trace). */
    Json *find(const std::string &key);
    const Json *find(const std::string &key) const;

    size_t
    size() const
    {
        return kind_ == Kind::Object ? members_.size() : elements_.size();
    }

    /**
     * Render the document. indent < 0 produces one compact line;
     * indent >= 0 pretty-prints with that many spaces per level.
     */
    std::string dump(int indent = -1) const;

    /** JSON string escaping of `raw` (without surrounding quotes). */
    static std::string escape(const std::string &raw);

  private:
    enum class Kind : u8
    {
        Null = 0,
        Bool,
        Uint,
        Int,
        Double,
        String,
        Array,
        Object,
    };

    void render(std::string &out, int indent, int depth) const;

    Kind kind_ = Kind::Null;
    bool bool_ = false;
    u64 uint_ = 0;
    i64 int_ = 0;
    double double_ = 0.0;
    std::string string_;
    std::vector<Json> elements_;
    std::vector<std::pair<std::string, Json>> members_;
};

} // namespace pccsim::telemetry
