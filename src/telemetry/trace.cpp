#include "telemetry/trace.hpp"

#include <cstdio>

namespace pccsim::telemetry {

std::string
to_string(EventKind kind)
{
    switch (kind) {
      case EventKind::Promotion: return "promotion";
      case EventKind::Promotion1G: return "promotion-1g";
      case EventKind::Demotion: return "demotion";
      case EventKind::Demotion1G: return "demotion-1g";
      case EventKind::Shootdown: return "shootdown";
      case EventKind::Compaction: return "compaction";
      case EventKind::Reclaim: return "reclaim";
      case EventKind::AllocFailInjected: return "alloc-fail-injected";
      case EventKind::CompactionFailInjected:
        return "compaction-fail-injected";
      case EventKind::ShootdownStorm: return "shootdown-storm";
      case EventKind::FragShock: return "frag-shock";
      case EventKind::Interval: return "interval";
    }
    return "?";
}

namespace {

/** Trace-viewer category: groups related event kinds into one track. */
const char *
categoryOf(EventKind kind)
{
    switch (kind) {
      case EventKind::Promotion:
      case EventKind::Promotion1G:
      case EventKind::Demotion:
      case EventKind::Demotion1G:
      case EventKind::Reclaim: return "os";
      case EventKind::Shootdown:
      case EventKind::Compaction: return "mm";
      case EventKind::AllocFailInjected:
      case EventKind::CompactionFailInjected:
      case EventKind::ShootdownStorm:
      case EventKind::FragShock: return "fault";
      case EventKind::Interval: return "sim";
    }
    return "?";
}

std::string
hexAddr(Addr addr)
{
    char buf[24];
    std::snprintf(buf, sizeof(buf), "0x%llx",
                  static_cast<unsigned long long>(addr));
    return buf;
}

} // namespace

Json
EventTracer::chromeTrace(const std::vector<Event> &events, u64 dropped)
{
    Json trace_events = Json::array();
    for (const auto &event : events) {
        Json args = Json::object();
        if (event.addr != 0 || event.bytes != 0)
            args.set("addr", hexAddr(event.addr));
        if (event.bytes != 0)
            args.set("bytes", event.bytes);
        args.set("arg", event.arg);

        Json e = Json::object();
        e.set("name", to_string(event.kind));
        e.set("cat", categoryOf(event.kind));
        e.set("ph", "i"); // instant event
        e.set("s", "p");  // process-scoped
        e.set("ts", event.ts);
        e.set("pid", static_cast<u64>(event.pid));
        e.set("tid", static_cast<u64>(0));
        e.set("args", std::move(args));
        trace_events.push(std::move(e));
    }

    Json other = Json::object();
    other.set("clock", "simulated-accesses");
    other.set("events_dropped", dropped);

    Json doc = Json::object();
    doc.set("traceEvents", std::move(trace_events));
    doc.set("displayTimeUnit", "ms");
    doc.set("otherData", std::move(other));
    return doc;
}

} // namespace pccsim::telemetry
