#include "telemetry/registry.hpp"

#include "util/log.hpp"

namespace pccsim::telemetry {

Registry::Handle
Registry::counter(const std::string &name)
{
    PCCSIM_ASSERT(probes_.find(name) == probes_.end(),
                  "counter name already registered as a probe");
    auto it = slots_by_name_.find(name);
    if (it != slots_by_name_.end())
        return Handle(it->second);
    slots_.push_back(0);
    u64 *slot = &slots_.back();
    slots_by_name_.emplace(name, slot);
    return Handle(slot);
}

void
Registry::probe(const std::string &name, std::function<u64()> read)
{
    PCCSIM_ASSERT(slots_by_name_.find(name) == slots_by_name_.end(),
                  "probe name already registered as a counter");
    probes_[name] = std::move(read);
}

u64
Registry::read(const std::string &name) const
{
    if (auto it = slots_by_name_.find(name); it != slots_by_name_.end())
        return *it->second;
    if (auto it = probes_.find(name); it != probes_.end())
        return it->second();
    return 0;
}

bool
Registry::has(const std::string &name) const
{
    return slots_by_name_.count(name) != 0 || probes_.count(name) != 0;
}

std::vector<std::pair<std::string, u64>>
Registry::readAll() const
{
    // Both maps iterate sorted; merge keeps the global name order.
    std::vector<std::pair<std::string, u64>> out;
    out.reserve(size());
    auto s = slots_by_name_.begin();
    auto p = probes_.begin();
    while (s != slots_by_name_.end() || p != probes_.end()) {
        if (p == probes_.end() ||
            (s != slots_by_name_.end() && s->first < p->first)) {
            out.emplace_back(s->first, *s->second);
            ++s;
        } else {
            out.emplace_back(p->first, p->second());
            ++p;
        }
    }
    return out;
}

std::vector<std::string>
Registry::names() const
{
    std::vector<std::string> out;
    out.reserve(size());
    for (const auto &[name, value] : readAll())
        out.push_back(name);
    return out;
}

} // namespace pccsim::telemetry
