/**
 * @file
 * Structured event tracing: every memory-management decision the OS or
 * the fault injector makes becomes a timestamped record — the
 * introspection eBPF-mm argues the OS layer needs, here for the
 * simulated OS. Timestamps are simulated time (total accesses executed
 * when the event fired), the same deterministic clock the promotion
 * trace of Sec. 4 uses, so serial and parallel runs of one spec emit
 * identical traces.
 *
 * Traces export as Chrome about://tracing JSON (toChromeTrace): load
 * the file in chrome://tracing or Perfetto to scrub through a run and
 * see exactly when each HUB was promoted, what compaction cost, and
 * where injected faults landed.
 */

#pragma once

#include <functional>
#include <string>
#include <vector>

#include "telemetry/json.hpp"
#include "util/types.hpp"

namespace pccsim::telemetry {

/** What happened. */
enum class EventKind : u8
{
    Promotion = 0,         //!< 2MB collapse succeeded
    Promotion1G,           //!< 1GB collapse succeeded (Sec. 3.2.3)
    Demotion,              //!< 2MB split back to base pages
    Demotion1G,            //!< 1GB split back to 2MB pages
    Shootdown,             //!< full-region TLB shootdown broadcast
    Compaction,            //!< one compaction attempt ran
    Reclaim,               //!< pressure-reclaim pass
    AllocFailInjected,     //!< injector vetoed an allocation
    CompactionFailInjected, //!< injector failed/aborted a compaction
    ShootdownStorm,        //!< injected storm inflated a shootdown
    FragShock,             //!< scheduled fragmentation shock applied
    Interval,              //!< policy-interval boundary marker
};

std::string to_string(EventKind kind);

/** One traced event. `arg` is kind-specific (see record call sites). */
struct Event
{
    u64 ts = 0;   //!< simulated accesses at record time
    EventKind kind = EventKind::Interval;
    Pid pid = 0;
    Addr addr = 0;
    u64 bytes = 0;
    u64 arg = 0;

    bool operator==(const Event &) const = default;
};

class EventTracer
{
  public:
    /** @param max_events Memory bound; later events are counted, not kept. */
    explicit EventTracer(u64 max_events = 1'000'000)
        : max_events_(max_events)
    {
    }

    /**
     * Install the simulated clock (the System points this at its
     * total-accesses counter). Events recorded before a clock is
     * installed get ts = 0.
     */
    void setClock(std::function<u64()> clock) { clock_ = std::move(clock); }

    void
    record(EventKind kind, Pid pid = 0, Addr addr = 0, u64 bytes = 0,
           u64 arg = 0)
    {
        if (events_.size() >= max_events_) {
            ++dropped_;
            return;
        }
        events_.push_back(
            {clock_ ? clock_() : 0, kind, pid, addr, bytes, arg});
    }

    const std::vector<Event> &events() const { return events_; }
    u64 dropped() const { return dropped_; }
    std::vector<Event> takeEvents() { return std::move(events_); }

    /**
     * Chrome about://tracing JSON of an event list. Top-level shape:
     * {"traceEvents": [...], "displayTimeUnit": "ms", "otherData":
     * {...}}; every trace event carries name/cat/ph/ts/pid/tid and the
     * kind-specific payload under "args". ts is simulated accesses
     * presented as microseconds (the viewer only needs monotonic
     * numbers).
     */
    static Json chromeTrace(const std::vector<Event> &events,
                            u64 dropped = 0);

  private:
    u64 max_events_;
    std::function<u64()> clock_;
    std::vector<Event> events_;
    u64 dropped_ = 0;
};

} // namespace pccsim::telemetry
