/**
 * @file
 * Telemetry configuration and the per-run report attached to
 * sim::RunResult.
 *
 * Telemetry is off by default and configured through
 * SystemConfig::telemetry. Collection never perturbs simulation: all
 * sources are read-only probes over state the simulator maintains
 * anyway, so a run's metrics (cycles, walks, promotions, ...) are
 * bit-identical with telemetry on or off — only the attached report
 * differs. Because every sampled value derives from the deterministic
 * simulation clock, serial and --jobs=N executions of one spec produce
 * identical reports.
 */

#pragma once

#include <string>
#include <vector>

#include "telemetry/attribution.hpp"
#include "telemetry/audit.hpp"
#include "telemetry/series.hpp"
#include "telemetry/tail.hpp"
#include "telemetry/trace.hpp"

namespace pccsim::telemetry {

/** SystemConfig::telemetry — what to collect during a run. */
struct TelemetryConfig
{
    /** Master switch: collect interval series + final counters. */
    bool enabled = false;
    /** Also record structured events (promotions, faults, ...). */
    bool trace_events = true;
    /** Ranked-head size for the PCC top-K churn series. */
    u32 top_k = 8;
    /** Event-tracer memory bound (events beyond it are counted). */
    u64 max_events = 1'000'000;
    /** Attribute walk cost to 2MB regions (RegionProfiler). */
    bool attribution = false;
    /** Row budget of the attribution table (sampled overflow beyond). */
    u32 attribution_regions = 512;
    /** Record promote/skip/demote/reclaim decisions + regret. */
    bool audit = false;
    /** Audit-log memory bound (decisions beyond it are counted). */
    u64 max_audit_records = 262'144;
    /** Tail-latency histograms + worst-K exemplars (tail.hpp). */
    bool histograms = false;
    /** Exemplars kept per tail reservoir when histograms are on. */
    u32 exemplar_k = 8;

    bool operator==(const TelemetryConfig &) const = default;
};

/** Everything a run collected; attached to RunResult::telemetry. */
struct TelemetryReport
{
    /** Per-policy-interval series (length == RunResult::intervals). */
    SeriesSet series;
    /** Structured event log, in simulated-time order. */
    std::vector<Event> events;
    u64 events_dropped = 0;
    /** Final (end-of-run) value of every registered source, sorted. */
    std::vector<std::pair<std::string, u64>> counters;
    u64 intervals = 0;
    /** Region-level walk-cost attribution (empty unless enabled). */
    AttributionReport attribution;
    /** Promotion decision log + regret (empty unless enabled). */
    AuditReport audit;
    /** Tail histograms + exemplars (disabled unless histograms). */
    TailReport tail;

    bool operator==(const TelemetryReport &) const = default;

    /** Series + counters as one JSON document (check.sh shape). */
    Json seriesJson() const;

    /** Chrome about://tracing document of the event log. */
    Json traceJson() const;
};

} // namespace pccsim::telemetry
