#include "telemetry/series.hpp"

#include <algorithm>

#include "util/log.hpp"

namespace pccsim::telemetry {

void
SeriesSet::append(const std::string &name, u64 value)
{
    for (auto &s : series_) {
        if (s.name == name) {
            s.values.push_back(value);
            return;
        }
    }
    series_.push_back({name, {value}});
}

const Series *
SeriesSet::find(const std::string &name) const
{
    for (const auto &s : series_)
        if (s.name == name)
            return &s;
    return nullptr;
}

size_t
SeriesSet::intervals() const
{
    size_t n = 0;
    for (const auto &s : series_)
        n = std::max(n, s.values.size());
    return n;
}

Json
SeriesSet::toJson() const
{
    Json values = Json::object();
    for (const auto &s : series_) {
        Json arr = Json::array();
        for (u64 v : s.values)
            arr.push(v);
        values.set(s.name, std::move(arr));
    }
    Json doc = Json::object();
    doc.set("intervals", static_cast<u64>(intervals()));
    doc.set("series", std::move(values));
    return doc;
}

void
IntervalSampler::track(const std::string &name, SampleKind kind)
{
    PCCSIM_ASSERT(samples_ == 0,
                  "track() after sampling would leave ragged series");
    sources_.push_back({name, kind, 0});
}

void
IntervalSampler::sample()
{
    for (auto &src : sources_) {
        const u64 now = registry_->read(src.name);
        if (src.kind == SampleKind::Cumulative) {
            // Running totals never decrease; guard anyway so a
            // misbehaving probe yields 0 instead of wrapping.
            const u64 delta = now >= src.previous ? now - src.previous : 0;
            series_.append(src.name, delta);
            src.previous = now;
        } else {
            series_.append(src.name, now);
        }
    }
    ++samples_;
}

u64
TopKChurnTracker::update(std::vector<Vpn> current)
{
    std::sort(current.begin(), current.end());
    current.erase(std::unique(current.begin(), current.end()),
                  current.end());
    u64 churn = 0;
    for (Vpn region : current) {
        if (!std::binary_search(previous_.begin(), previous_.end(),
                                region))
            ++churn;
    }
    previous_ = std::move(current);
    return churn;
}

} // namespace pccsim::telemetry
