/**
 * @file
 * Telemetry registry: named counters with near-zero-cost handles, and
 * computed probes for values that live elsewhere.
 *
 * Two kinds of sources coexist:
 *
 *  - owned counters: registered once, incremented through a Handle
 *    that is a bare pointer dereference on the hot path (the slot
 *    storage is a deque, so handles stay valid forever);
 *  - probes: read-on-demand callbacks for state another module already
 *    maintains (TLB hit counts, OS stat counters, per-core cycles).
 *    Probes keep instrumentation free when telemetry is disabled: the
 *    owning module pays nothing until someone reads.
 *
 * The interval sampler (series.hpp) reads the registry once per policy
 * interval and turns cumulative sources into per-interval deltas.
 */

#pragma once

#include <deque>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "util/types.hpp"

namespace pccsim::telemetry {

class Registry
{
  public:
    /** Hot-path handle to an owned counter: one pointer indirection. */
    class Handle
    {
      public:
        Handle() = default;

        void operator++() { ++*slot_; }
        void operator++(int) { ++*slot_; }
        void operator+=(u64 delta) { *slot_ += delta; }
        void set(u64 value) { *slot_ = value; }
        u64 value() const { return *slot_; }
        bool valid() const { return slot_ != nullptr; }

      private:
        friend class Registry;
        explicit Handle(u64 *slot) : slot_(slot) {}
        u64 *slot_ = nullptr;
    };

    Registry() = default;
    Registry(const Registry &) = delete;
    Registry &operator=(const Registry &) = delete;

    /**
     * Register (or fetch) an owned counter. Handles remain valid for
     * the registry's lifetime regardless of later registrations.
     */
    Handle counter(const std::string &name);

    /**
     * Register a computed probe. Re-registering a name replaces its
     * callback; a probe may not shadow an owned counter.
     */
    void probe(const std::string &name, std::function<u64()> read);

    /** Read one source; 0 for names never registered. */
    u64 read(const std::string &name) const;

    bool has(const std::string &name) const;

    /** Every source as (name, current value), sorted by name. */
    std::vector<std::pair<std::string, u64>> readAll() const;

    /** Names of all sources, sorted. */
    std::vector<std::string> names() const;

    size_t size() const { return slots_by_name_.size() + probes_.size(); }

  private:
    std::deque<u64> slots_; //!< deque: stable addresses across growth
    std::map<std::string, u64 *> slots_by_name_;
    std::map<std::string, std::function<u64()>> probes_;
};

} // namespace pccsim::telemetry
