/**
 * @file
 * The one results/serialization API: every harness and example routes
 * its output through an Emitter instead of hand-rolled printf/ostream
 * reporting.
 *
 * An Emitter receives titled sections — tables (the figure harnesses'
 * paper-style rows) and JSON objects (perf accounting, telemetry
 * summaries) — and renders them in one of three formats:
 *
 *   Text  aligned ASCII tables under "## title" headings (default)
 *   Csv   the same sections as CSV blocks (machine-diffable; the
 *         determinism gate byte-compares this format across --jobs)
 *   Json  one document: {"sections": [{"title", "table"| "data"}]},
 *         buffered until close() so the output is valid JSON
 *
 * Text/CSV sections stream immediately; the JSON sink buffers.
 * close() is idempotent and flushes the buffered document — callers
 * that can exit early should register it with atexit (BenchEnv does).
 */

#pragma once

#include <cstdio>
#include <string>

#include "telemetry/json.hpp"
#include "util/status.hpp"
#include "util/table.hpp"

namespace pccsim::telemetry {

enum class Format : u8
{
    Text = 0,
    Csv,
    Json,
};

/** Parse "text" / "csv" / "json" (anything else falls back to Text). */
Format formatFromString(const std::string &name);

class Emitter
{
  public:
    explicit Emitter(Format format, std::FILE *out = stdout)
        : format_(format), out_(out)
    {
    }

    ~Emitter() { close(); }

    Emitter(const Emitter &) = delete;
    Emitter &operator=(const Emitter &) = delete;

    Format format() const { return format_; }

    /** Emit a titled table section. */
    void table(const std::string &title, const Table &table);

    /** Emit a titled key/value (or arbitrary JSON) section. */
    void object(const std::string &title, Json data);

    /** Flush buffered output (Json sink); further sections are lost. */
    void close();

    /**
     * Write an export file, reporting failure as a Status instead of
     * aborting or failing silently. Harnesses surface the message
     * (warn / nonzero exit) so an unwritable --telemetry=/--trace=
     * path never loses a run's data without a trace.
     */
    static util::Status writeFileStatus(const std::string &path,
                                        const std::string &contents);

  private:
    Format format_;
    std::FILE *out_;
    Json sections_ = Json::array();
    std::string last_csv_header_; //!< dedupe across consecutive tables
    bool closed_ = false;
};

} // namespace pccsim::telemetry
