#include "telemetry/json.hpp"

#include <cmath>
#include <cstdio>

#include "util/log.hpp"

namespace pccsim::telemetry {

Json &
Json::set(const std::string &key, Json value)
{
    PCCSIM_ASSERT(kind_ == Kind::Object, "set() on a non-object Json");
    for (auto &[k, v] : members_) {
        if (k == key) {
            v = std::move(value);
            return *this;
        }
    }
    members_.emplace_back(key, std::move(value));
    return *this;
}

Json &
Json::push(Json value)
{
    PCCSIM_ASSERT(kind_ == Kind::Array, "push() on a non-array Json");
    elements_.push_back(std::move(value));
    return *this;
}

Json *
Json::find(const std::string &key)
{
    if (kind_ != Kind::Object)
        return nullptr;
    for (auto &[k, v] : members_) {
        if (k == key)
            return &v;
    }
    return nullptr;
}

const Json *
Json::find(const std::string &key) const
{
    return const_cast<Json *>(this)->find(key);
}

std::string
Json::escape(const std::string &raw)
{
    std::string out;
    out.reserve(raw.size());
    for (char c : raw) {
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\r': out += "\\r"; break;
          case '\t': out += "\\t"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x",
                              static_cast<unsigned>(c) & 0xff);
                out += buf;
            } else {
                out += c;
            }
        }
    }
    return out;
}

namespace {

void
newline(std::string &out, int indent, int depth)
{
    if (indent < 0)
        return;
    out += '\n';
    out.append(static_cast<size_t>(indent) * depth, ' ');
}

std::string
formatDouble(double value)
{
    // Fixed %.12g: enough precision to round-trip every value the
    // simulator derives from 64-bit counters, few enough digits that
    // the textual form is stable (no trailing-noise digits).
    if (!std::isfinite(value))
        return "null"; // JSON has no inf/nan
    char buf[40];
    std::snprintf(buf, sizeof(buf), "%.12g", value);
    return buf;
}

} // namespace

void
Json::render(std::string &out, int indent, int depth) const
{
    switch (kind_) {
      case Kind::Null: out += "null"; return;
      case Kind::Bool: out += bool_ ? "true" : "false"; return;
      case Kind::Uint: out += std::to_string(uint_); return;
      case Kind::Int: out += std::to_string(int_); return;
      case Kind::Double: out += formatDouble(double_); return;
      case Kind::String:
        out += '"';
        out += escape(string_);
        out += '"';
        return;
      case Kind::Array: {
        if (elements_.empty()) {
            out += "[]";
            return;
        }
        out += '[';
        for (size_t i = 0; i < elements_.size(); ++i) {
            if (i)
                out += indent < 0 ? "," : ",";
            newline(out, indent, depth + 1);
            elements_[i].render(out, indent, depth + 1);
        }
        newline(out, indent, depth);
        out += ']';
        return;
      }
      case Kind::Object: {
        if (members_.empty()) {
            out += "{}";
            return;
        }
        out += '{';
        for (size_t i = 0; i < members_.size(); ++i) {
            if (i)
                out += ",";
            newline(out, indent, depth + 1);
            out += '"';
            out += escape(members_[i].first);
            out += indent < 0 ? "\":" : "\": ";
            members_[i].second.render(out, indent, depth + 1);
        }
        newline(out, indent, depth);
        out += '}';
        return;
      }
    }
}

std::string
Json::dump(int indent) const
{
    std::string out;
    render(out, indent, 0);
    return out;
}

} // namespace pccsim::telemetry
