/**
 * @file
 * Interval time-series: one sampled value per policy interval for each
 * tracked metric, the temporal view the paper's Figs. 5-7 argue from
 * (PCC rankings, decay, and promotion utility all evolve interval by
 * interval).
 *
 * The IntervalSampler reads a Registry once per interval. Sources
 * registered as Cumulative are differenced against the previous sample
 * (so a monotonically-growing walk counter becomes walks-per-interval);
 * Gauge sources record their instantaneous value (PCC occupancy,
 * per-job cycles).
 */

#pragma once

#include <string>
#include <vector>

#include "telemetry/json.hpp"
#include "telemetry/registry.hpp"
#include "util/types.hpp"

namespace pccsim::telemetry {

/** One named series; values[i] belongs to policy interval i. */
struct Series
{
    std::string name;
    std::vector<u64> values;

    bool operator==(const Series &) const = default;
};

/** An ordered bundle of equally-long series. */
class SeriesSet
{
  public:
    /** Append one value to `name`, creating the series on first use. */
    void append(const std::string &name, u64 value);

    const Series *find(const std::string &name) const;

    const std::vector<Series> &all() const { return series_; }
    bool empty() const { return series_.empty(); }

    /** Length of the longest series (== intervals when regular). */
    size_t intervals() const;

    /**
     * {"intervals": N, "series": {name: [v, ...], ...}} — the
     * interchange shape scripts/check.sh validates.
     */
    Json toJson() const;

    bool operator==(const SeriesSet &) const = default;

  private:
    std::vector<Series> series_; //!< registration order
};

/** How the sampler interprets one registry source. */
enum class SampleKind : u8
{
    Cumulative = 0, //!< record per-interval delta of a running total
    Gauge = 1,      //!< record the instantaneous value
};

class IntervalSampler
{
  public:
    explicit IntervalSampler(const Registry &registry)
        : registry_(&registry)
    {
    }

    /** Track a registry source; order of calls is the series order. */
    void track(const std::string &name, SampleKind kind);

    /** Take one sample (call exactly once per policy interval). */
    void sample();

    u64 samplesTaken() const { return samples_; }
    const SeriesSet &series() const { return series_; }
    SeriesSet takeSeries() { return std::move(series_); }

  private:
    struct Source
    {
        std::string name;
        SampleKind kind;
        u64 previous = 0;
    };

    const Registry *registry_;
    std::vector<Source> sources_;
    SeriesSet series_;
    u64 samples_ = 0;
};

/**
 * Top-K churn tracker: how much of the PCC's ranked head turned over
 * since the previous interval — the "top-K churn" view of candidate
 * stability (a HUB set that stops churning has been identified).
 */
class TopKChurnTracker
{
  public:
    /**
     * @param current Sorted-unique region set of this interval's top-K.
     * @return Number of regions in `current` absent from the previous
     *         interval's set (the first call reports |current|).
     */
    u64 update(std::vector<Vpn> current);

  private:
    std::vector<Vpn> previous_;
};

} // namespace pccsim::telemetry
