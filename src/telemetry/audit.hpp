/**
 * @file
 * Promotion audit trail and counterfactual regret.
 *
 * The PromotionAuditLog records every OS promote/skip/demote/reclaim
 * decision with a structured reason code plus the evidence behind it
 * (candidate rank, PCC counter value, allocation-failure class,
 * pressure reclaim), timestamped on the simulated clock. On top of the
 * decision log it computes per-region *counterfactual regret*: walk
 * cycles a region keeps incurring after it was a ranked candidate that
 * the OS skipped or failed to promote. A perfect oracle (the all-huge
 * policy) never skips a candidate, so its regret is zero; the gap a
 * real policy leaves is reported as "regret vs oracle" cycles.
 *
 * Determinism: records derive only from simulation state and the
 * simulated clock, the log is bounded (drops counted), and report()
 * orders regret rows totally — serial and --jobs=N runs of one spec
 * produce byte-identical audit output.
 */

#pragma once

#include <functional>
#include <string>
#include <vector>

#include "mem/paging.hpp"
#include "telemetry/json.hpp"
#include "util/types.hpp"

namespace pccsim::telemetry {

/** What kind of decision a record documents. */
enum class AuditAction : u8
{
    FaultHuge = 0, //!< fault-time 2MB allocation attempt (greedy THP)
    Promote2M,
    Promote1G,
    Demote2M,
    Demote1G,
    Reclaim, //!< pressure-reclaim victim demotion
    Skip,    //!< a ranked candidate the policy did not attempt
};

/** Why the decision went the way it did. */
enum class AuditReason : u8
{
    Ok = 0,
    AlreadyHuge,
    CapReached,           //!< promotion budget exhausted
    NoHugeFrame,          //!< genuine allocation/compaction failure
    NoHugeFrameTransient, //!< failure with fault injection active
    NotEligible,          //!< outside VMA bounds or never touched
    BelowMinFrequency,    //!< PCC counter under the policy threshold
    OutsideVma,           //!< candidate region left the address space
    RegionNotBase,        //!< already huge or unbacked at decision time
    IntervalBudget,       //!< per-interval promotion budget exhausted
    Not1GPreferred,       //!< PUD-level signal failed the 1GB ratio test
    PressureReclaim,      //!< demoted to relieve memory pressure
    TenantBudget,         //!< the tenant's arbiter allowance exhausted
    No1GFrame,            //!< no gigabyte frame, even after compaction
    SandboxRejected,      //!< userspace policy action vetoed/limited
};

std::string to_string(AuditAction action);
std::string to_string(AuditReason reason);

struct AuditRecord
{
    u64 ts = 0; //!< simulated clock (total accesses) at decision time
    Pid pid = 0;
    Addr base = 0; //!< region the decision concerned
    AuditAction action = AuditAction::Skip;
    AuditReason reason = AuditReason::Ok;
    u32 rank = 0;    //!< candidate rank when the policy supplied one
    u64 counter = 0; //!< PCC counter / coverage evidence, if any
    Cycles cycles = 0; //!< synchronous cycles the action charged

    bool operator==(const AuditRecord &) const = default;
};

/** Per-region accumulated regret. */
struct RegretRow
{
    Pid pid = 0;
    Addr base = 0;  //!< 2MB-aligned region address
    u64 cycles = 0; //!< walk cycles incurred while skipped-but-ranked
    bool open = false; //!< still unpromoted at end of run

    bool operator==(const RegretRow &) const = default;
};

/** End-of-run audit summary (attached to TelemetryReport). */
struct AuditReport
{
    std::vector<AuditRecord> records;
    u64 records_dropped = 0;
    /** "action:reason" -> count, sorted by key. */
    std::vector<std::pair<std::string, u64>> reason_counts;
    /** Sorted: cycles desc, then pid asc, then base asc. */
    std::vector<RegretRow> regret;
    u64 regret_total_cycles = 0;
    u64 regret_marks_dropped = 0; //!< regions beyond the regret table
    /**
     * Regret cycles aggregated per pid (= per tenant), sorted by pid.
     * In a multi-tenant run this is the price each tenant paid for the
     * arbiter's decisions; the fairness report compares it against the
     * tenant's promotion share.
     */
    std::vector<std::pair<Pid, u64>> regret_by_pid;

    bool operator==(const AuditReport &) const = default;

    Json toJson() const;
};

class PromotionAuditLog
{
  public:
    explicit PromotionAuditLog(u64 max_records);

    /** Timestamp source (the System wires the simulated clock). */
    void setClock(std::function<u64()> clock) { clock_ = std::move(clock); }

    /**
     * Record one decision. Regret bookkeeping is driven from here:
     * skips and failed promotions mark the region as regretted;
     * a successful promotion closes the region's regret window
     * (accumulated cycles are kept — they were really incurred).
     */
    void record(AuditAction action, AuditReason reason, Pid pid,
                Addr base, u32 rank = 0, u64 counter = 0,
                Cycles cycles = 0);

    /**
     * Attribute one page-table walk; accumulates into the region's
     * regret when its window is open. Called from the access hot path
     * (one call per last-level TLB miss, telemetry-gated).
     */
    void chargeWalk(Pid pid, Vpn region2m, Cycles cycles);

    u64 recordCount() const { return static_cast<u64>(records_.size()); }

    AuditReport report() const;

  private:
    struct RegretSlot
    {
        u32 pid_plus_1 = 0; //!< 0 = empty
        Vpn region = 0;
        u64 cycles = 0;
        bool open = false;
    };

    RegretSlot *findRegret(Pid pid, Vpn region, bool admit);
    void markRegret(Pid pid, Addr base);
    void closeRegret(Pid pid, Addr base, u64 bytes);

    u64 now() const { return clock_ ? clock_() : 0; }

    u64 max_records_;
    std::function<u64()> clock_;
    std::vector<AuditRecord> records_;
    u64 records_dropped_ = 0;

    std::vector<RegretSlot> regret_; //!< open-addressed, fixed size
    u64 regret_tracked_ = 0;
    u64 regret_marks_dropped_ = 0;
};

} // namespace pccsim::telemetry
