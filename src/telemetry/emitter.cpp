#include "telemetry/emitter.hpp"

namespace pccsim::telemetry {

Format
formatFromString(const std::string &name)
{
    if (name == "csv")
        return Format::Csv;
    if (name == "json")
        return Format::Json;
    return Format::Text;
}

namespace {

Json
tableJson(const Table &table)
{
    Json header = Json::array();
    for (const auto &cell : table.header())
        header.push(cell);
    Json rows = Json::array();
    for (const auto &row : table.cells()) {
        Json cells = Json::array();
        for (const auto &cell : row)
            cells.push(cell);
        rows.push(std::move(cells));
    }
    Json out = Json::object();
    out.set("header", std::move(header));
    out.set("rows", std::move(rows));
    return out;
}

} // namespace

void
Emitter::table(const std::string &title, const Table &table)
{
    switch (format_) {
      case Format::Text:
        std::fprintf(out_, "## %s\n\n%s\n", title.c_str(),
                     table.str().c_str());
        return;
      case Format::Csv: {
        // Multi-policy sweeps emit one structurally-identical table per
        // contender; repeating the header row in every block makes the
        // concatenated CSV awkward to load. Suppress a header identical
        // to the immediately preceding table's (a different header
        // resets the memo, so heterogeneous sections stay self-typed).
        std::string csv = table.csv();
        const size_t eol = csv.find('\n');
        const std::string header =
            eol == std::string::npos ? csv : csv.substr(0, eol);
        if (header == last_csv_header_ && eol != std::string::npos)
            csv.erase(0, eol + 1);
        last_csv_header_ = header;
        std::fprintf(out_, "## %s\n\n%s\n", title.c_str(), csv.c_str());
        return;
      }
      case Format::Json: {
        Json section = Json::object();
        section.set("title", title);
        section.set("table", tableJson(table));
        sections_.push(std::move(section));
        return;
      }
    }
}

void
Emitter::object(const std::string &title, Json data)
{
    switch (format_) {
      case Format::Text:
      case Format::Csv:
        std::fprintf(out_, "## %s\n\n%s\n", title.c_str(),
                     data.dump(2).c_str());
        return;
      case Format::Json: {
        Json section = Json::object();
        section.set("title", title);
        section.set("data", std::move(data));
        sections_.push(std::move(section));
        return;
      }
    }
}

util::Status
Emitter::writeFileStatus(const std::string &path,
                         const std::string &contents)
{
    std::FILE *f = std::fopen(path.c_str(), "w");
    if (!f) {
        return util::Status::error("cannot open '", path,
                                   "' for writing");
    }
    const size_t written =
        std::fwrite(contents.data(), 1, contents.size(), f);
    const bool close_ok = std::fclose(f) == 0;
    if (written != contents.size() || !close_ok) {
        return util::Status::error("short write to '", path, "' (",
                                   written, " of ", contents.size(),
                                   " bytes)");
    }
    return {};
}

void
Emitter::close()
{
    if (closed_)
        return;
    closed_ = true;
    if (format_ == Format::Json) {
        Json doc = Json::object();
        doc.set("sections", std::move(sections_));
        std::fprintf(out_, "%s\n", doc.dump(2).c_str());
    }
    std::fflush(out_);
}

} // namespace pccsim::telemetry
