/**
 * @file
 * Region-level attribution of address-translation cost.
 *
 * The paper's core claim is attributional: a small set of HUB regions
 * (~1-4% of the footprint) causes most TLB-walk cycles (Fig. 2). The
 * RegionProfiler produces that evidence for any run: it attributes
 * last-level TLB misses, walk cycles, PWC hits, and PCC hits/evictions
 * to the 2MB-aligned virtual region they touched, in a fixed-budget
 * open-addressed table.
 *
 * Determinism contract (same as the rest of telemetry): every recorded
 * value derives from simulation state, the table is rebuilt identically
 * for identical access streams, and report() orders rows by a total
 * order (walk_cycles desc, then pid, then base) — so serial and
 * --jobs=N runs of one spec emit byte-identical attribution.
 *
 * Overflow policy: the first (budget - reserve) distinct regions are
 * admitted first-come; the final `reserve` slots only admit regions
 * whose key hash falls in a fixed 1-in-8 sample, so late-arriving hot
 * regions still have a chance of a row without unbounded memory. Once
 * the budget is exhausted, events fold into exact `untracked_*`
 * aggregates — totals (and therefore CDF denominators) stay exact even
 * when per-region rows do not cover the whole footprint.
 */

#pragma once

#include <vector>

#include "mem/paging.hpp"
#include "telemetry/json.hpp"
#include "util/types.hpp"

namespace pccsim::telemetry {

/** One tracked 2MB region's attributed translation costs. */
struct RegionRow
{
    Pid pid = 0;
    Addr base = 0; //!< 2MB-aligned virtual address of the region
    u64 walks = 0; //!< last-level TLB misses resolved in this region
    u64 walk_cycles = 0;
    u64 pwc_hits = 0;       //!< walk levels skipped thanks to the PWC
    u64 pcc_hits = 0;       //!< walks that found the region PCC-tracked
    u64 pcc_evictions = 0;  //!< times a PCC evicted this region

    bool operator==(const RegionRow &) const = default;
};

/** The profiler's end-of-run summary (attached to TelemetryReport). */
struct AttributionReport
{
    u32 budget = 0;            //!< configured row budget
    u64 sampled_admissions = 0; //!< rows admitted via the hash sample
    /** Aggregates of events from regions beyond the row budget. */
    u64 untracked_walks = 0;
    u64 untracked_walk_cycles = 0;
    u64 untracked_pwc_hits = 0;
    u64 untracked_pcc_hits = 0;
    u64 untracked_pcc_evictions = 0;
    /** Exact totals: tracked rows + untracked aggregates. */
    u64 total_walks = 0;
    u64 total_walk_cycles = 0;
    /** Sorted: walk_cycles desc, then pid asc, then base asc. */
    std::vector<RegionRow> regions;

    bool operator==(const AttributionReport &) const = default;

    /**
     * Full JSON document: totals, per-region rows, the top-k CDF
     * ("top-k regions cover X% of walk cycles"), HUB-concentration
     * summary, and a 1GB-region rollup.
     */
    Json toJson() const;
};

class RegionProfiler
{
  public:
    explicit RegionProfiler(u32 region_budget);

    /**
     * Attribute one completed page-table walk.
     * @param region 2MB-aligned VPN the faulting address belongs to.
     * @param cycles what the walk cost the core.
     * @param pwc_hits walk levels served by the PWC (depth - mem refs).
     * @param pcc_hit the region was PCC-tracked when the walk retired.
     */
    void recordWalk(Pid pid, Vpn region, Cycles cycles, u32 pwc_hits,
                    bool pcc_hit);

    /** Attribute one PCC eviction to its victim region. */
    void recordPccEviction(Pid pid, Vpn region);

    u64 trackedRegions() const { return tracked_; }

    AttributionReport report() const;

  private:
    struct Slot
    {
        u32 pid_plus_1 = 0; //!< 0 = empty
        Vpn region = 0;
        u64 walks = 0;
        u64 walk_cycles = 0;
        u64 pwc_hits = 0;
        u64 pcc_hits = 0;
        u64 pcc_evictions = 0;
    };

    /** Find the slot of (pid, region); admit it if policy allows. */
    Slot *findSlot(Pid pid, Vpn region, bool admit);

    u32 budget_;
    u32 admit_free_;  //!< first-come admissions below this tracked count
    u64 tracked_ = 0;
    u64 sampled_admissions_ = 0;
    std::vector<Slot> slots_; //!< power-of-two open-addressed table

    u64 untracked_walks_ = 0;
    u64 untracked_walk_cycles_ = 0;
    u64 untracked_pwc_hits_ = 0;
    u64 untracked_pcc_hits_ = 0;
    u64 untracked_pcc_evictions_ = 0;
};

} // namespace pccsim::telemetry
