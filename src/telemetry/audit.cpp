#include "telemetry/audit.hpp"

#include <algorithm>
#include <cstdio>
#include <map>

#include "util/log.hpp"

namespace pccsim::telemetry {

namespace {

/** Regret table geometry: fixed so memory stays bounded per run. */
constexpr u64 kRegretSlots = 4096; //!< power of two (open addressing)
constexpr u64 kRegretBudget = 2048; //!< load factor <= 0.5

u64
mix(u64 x)
{
    x += 0x9E3779B97F4A7C15ull;
    x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
    x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
    return x ^ (x >> 31);
}

u64
keyHash(Pid pid, Vpn region)
{
    return mix(region * 0x100000001B3ull ^ pid);
}

std::string
hexAddr(Addr addr)
{
    char buf[24];
    std::snprintf(buf, sizeof buf, "0x%llx",
                  static_cast<unsigned long long>(addr));
    return buf;
}

/** Reasons that open a region's regret window when it is skipped or a
 *  promotion attempt on it fails. */
bool
regrettable(AuditReason reason)
{
    switch (reason) {
      case AuditReason::CapReached:
      case AuditReason::NoHugeFrame:
      case AuditReason::NoHugeFrameTransient:
      case AuditReason::BelowMinFrequency:
      case AuditReason::IntervalBudget:
      case AuditReason::TenantBudget:
      case AuditReason::No1GFrame:
        return true;
      default:
        return false;
    }
}

} // namespace

std::string
to_string(AuditAction action)
{
    switch (action) {
      case AuditAction::FaultHuge: return "fault-huge";
      case AuditAction::Promote2M: return "promote-2m";
      case AuditAction::Promote1G: return "promote-1g";
      case AuditAction::Demote2M: return "demote-2m";
      case AuditAction::Demote1G: return "demote-1g";
      case AuditAction::Reclaim: return "reclaim";
      case AuditAction::Skip: return "skip";
    }
    return "?";
}

std::string
to_string(AuditReason reason)
{
    switch (reason) {
      case AuditReason::Ok: return "ok";
      case AuditReason::AlreadyHuge: return "already-huge";
      case AuditReason::CapReached: return "cap-reached";
      case AuditReason::NoHugeFrame: return "no-huge-frame";
      case AuditReason::NoHugeFrameTransient:
        return "no-huge-frame-transient";
      case AuditReason::NotEligible: return "not-eligible";
      case AuditReason::BelowMinFrequency: return "below-min-frequency";
      case AuditReason::OutsideVma: return "outside-vma";
      case AuditReason::RegionNotBase: return "region-not-base";
      case AuditReason::IntervalBudget: return "interval-budget";
      case AuditReason::Not1GPreferred: return "not-1g-preferred";
      case AuditReason::PressureReclaim: return "pressure-reclaim";
      case AuditReason::TenantBudget: return "tenant-budget";
      case AuditReason::No1GFrame: return "no-1g-frame";
      case AuditReason::SandboxRejected: return "sandbox-rejected";
    }
    return "?";
}

PromotionAuditLog::PromotionAuditLog(u64 max_records)
    : max_records_(max_records), regret_(kRegretSlots)
{
    PCCSIM_ASSERT(max_records_ >= 1, "audit log bound must be >= 1");
}

PromotionAuditLog::RegretSlot *
PromotionAuditLog::findRegret(Pid pid, Vpn region, bool admit)
{
    const u64 mask = regret_.size() - 1;
    u64 i = keyHash(pid, region) & mask;
    const u32 tag = static_cast<u32>(pid) + 1;
    for (;;) {
        RegretSlot &slot = regret_[i];
        if (slot.pid_plus_1 == tag && slot.region == region)
            return &slot;
        if (slot.pid_plus_1 == 0) {
            if (!admit || regret_tracked_ >= kRegretBudget)
                return nullptr;
            slot.pid_plus_1 = tag;
            slot.region = region;
            ++regret_tracked_;
            return &slot;
        }
        i = (i + 1) & mask;
    }
}

void
PromotionAuditLog::markRegret(Pid pid, Addr base)
{
    const Vpn region = mem::vpnOf(base, mem::PageSize::Huge2M);
    if (RegretSlot *slot = findRegret(pid, region, /*admit=*/true)) {
        slot->open = true;
        return;
    }
    ++regret_marks_dropped_;
}

void
PromotionAuditLog::closeRegret(Pid pid, Addr base, u64 bytes)
{
    const Vpn lo = mem::vpnOf(base, mem::PageSize::Huge2M);
    const Vpn hi = mem::vpnOf(base + bytes - 1, mem::PageSize::Huge2M);
    const u32 tag = static_cast<u32>(pid) + 1;
    for (RegretSlot &slot : regret_) {
        if (slot.pid_plus_1 == tag && slot.region >= lo &&
            slot.region <= hi) {
            slot.open = false;
        }
    }
}

void
PromotionAuditLog::record(AuditAction action, AuditReason reason,
                          Pid pid, Addr base, u32 rank, u64 counter,
                          Cycles cycles)
{
    if (records_.size() < max_records_) {
        AuditRecord rec;
        rec.ts = now();
        rec.pid = pid;
        rec.base = base;
        rec.action = action;
        rec.reason = reason;
        rec.rank = rank;
        rec.counter = counter;
        rec.cycles = cycles;
        records_.push_back(rec);
    } else {
        ++records_dropped_;
    }

    switch (action) {
      case AuditAction::Skip:
        if (regrettable(reason))
            markRegret(pid, base);
        break;
      case AuditAction::Promote2M:
        if (reason == AuditReason::Ok)
            closeRegret(pid, base, mem::kBytes2M);
        else if (regrettable(reason))
            markRegret(pid, base);
        break;
      case AuditAction::Promote1G:
        if (reason == AuditReason::Ok)
            closeRegret(pid, base, mem::kBytes1G);
        else if (regrettable(reason))
            markRegret(pid, base);
        break;
      default:
        break;
    }
}

void
PromotionAuditLog::chargeWalk(Pid pid, Vpn region2m, Cycles cycles)
{
    if (RegretSlot *slot = findRegret(pid, region2m, /*admit=*/false)) {
        if (slot->open)
            slot->cycles += cycles;
    }
}

AuditReport
PromotionAuditLog::report() const
{
    AuditReport out;
    out.records = records_;
    out.records_dropped = records_dropped_;
    out.regret_marks_dropped = regret_marks_dropped_;

    std::map<std::string, u64> counts;
    for (const AuditRecord &rec : records_)
        ++counts[to_string(rec.action) + ":" + to_string(rec.reason)];
    out.reason_counts.assign(counts.begin(), counts.end());

    for (const RegretSlot &slot : regret_) {
        if (slot.pid_plus_1 == 0)
            continue;
        if (slot.cycles == 0 && !slot.open)
            continue;
        RegretRow row;
        row.pid = static_cast<Pid>(slot.pid_plus_1 - 1);
        row.base = slot.region << mem::kShift2M;
        row.cycles = slot.cycles;
        row.open = slot.open;
        out.regret.push_back(row);
        out.regret_total_cycles += slot.cycles;
    }
    std::sort(out.regret.begin(), out.regret.end(),
              [](const RegretRow &a, const RegretRow &b) {
                  if (a.cycles != b.cycles)
                      return a.cycles > b.cycles;
                  if (a.pid != b.pid)
                      return a.pid < b.pid;
                  return a.base < b.base;
              });

    // Per-tenant rollup (tenant i = pid i); std::map keys sort it.
    std::map<Pid, u64> by_pid;
    for (const RegretRow &row : out.regret)
        by_pid[row.pid] += row.cycles;
    out.regret_by_pid.assign(by_pid.begin(), by_pid.end());
    return out;
}

Json
AuditReport::toJson() const
{
    Json doc = Json::object();
    doc.set("records", static_cast<u64>(records.size()));
    doc.set("records_dropped", records_dropped);

    Json reasons = Json::object();
    for (const auto &[key, count] : reason_counts)
        reasons.set(key, count);
    doc.set("reasons", std::move(reasons));

    Json decisions = Json::array();
    for (const AuditRecord &rec : records) {
        Json r = Json::object();
        r.set("ts", rec.ts);
        r.set("pid", static_cast<u64>(rec.pid));
        r.set("base", hexAddr(rec.base));
        r.set("action", to_string(rec.action));
        r.set("reason", to_string(rec.reason));
        r.set("rank", static_cast<u64>(rec.rank));
        r.set("counter", rec.counter);
        r.set("cycles", rec.cycles);
        decisions.push(std::move(r));
    }
    doc.set("decisions", std::move(decisions));

    Json regret_doc = Json::object();
    regret_doc.set("total_cycles", regret_total_cycles);
    regret_doc.set("tracked_regions", static_cast<u64>(regret.size()));
    regret_doc.set("marks_dropped", regret_marks_dropped);
    Json rows = Json::array();
    for (const RegretRow &row : regret) {
        Json r = Json::object();
        r.set("pid", static_cast<u64>(row.pid));
        r.set("base", hexAddr(row.base));
        r.set("cycles", row.cycles);
        r.set("open", row.open);
        rows.push(std::move(r));
    }
    Json by_pid = Json::object();
    for (const auto &[pid, cycles] : regret_by_pid)
        by_pid.set(std::to_string(pid), cycles);
    regret_doc.set("by_pid", std::move(by_pid));
    regret_doc.set("regions", std::move(rows));
    doc.set("regret", std::move(regret_doc));
    return doc;
}

} // namespace pccsim::telemetry
