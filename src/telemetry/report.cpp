#include "telemetry/report.hpp"

#include <algorithm>

namespace pccsim::telemetry {

Json
TelemetryReport::seriesJson() const
{
    Json doc = series.toJson(); // {"intervals": N, "series": {...}}
    Json finals = Json::object();
    for (const auto &[name, value] : counters)
        finals.set(name, value);
    doc.set("counters", std::move(finals));
    doc.set("events", static_cast<u64>(events.size()));
    doc.set("events_dropped", events_dropped);
    return doc;
}

Json
TelemetryReport::traceJson() const
{
    Json doc = EventTracer::chromeTrace(events, events_dropped);
    Json *list = doc.find("traceEvents");
    if (!list)
        return doc;

    // Name every pid lane: the trace viewer then shows "tenant-pid-7"
    // instead of a bare process number. Metadata events carry the same
    // key set the shape gate requires of ordinary events.
    std::vector<Pid> pids;
    for (const Event &event : events)
        pids.push_back(event.pid);
    std::sort(pids.begin(), pids.end());
    pids.erase(std::unique(pids.begin(), pids.end()), pids.end());
    for (Pid pid : pids) {
        Json args = Json::object();
        args.set("name", pid == 0 ? std::string("sim")
                                  : "tenant-pid-" + std::to_string(pid));
        Json meta = Json::object();
        meta.set("name", "process_name");
        meta.set("cat", "__metadata");
        meta.set("ph", "M");
        meta.set("ts", u64{0});
        meta.set("pid", static_cast<u64>(pid));
        meta.set("tid", u64{0});
        meta.set("args", std::move(args));
        list->push(std::move(meta));
    }

    // Counter tracks, clocked at the interval markers: the windowed
    // p99 translation latency (histograms runs) and the shootdowns
    // that landed in each interval. The viewer renders these as
    // stacked-area lanes, so "promotion lands -> tail collapses" is
    // scrubbably visible next to the promotion events themselves.
    std::vector<u64> marks;
    for (const Event &event : events)
        if (event.kind == EventKind::Interval)
            marks.push_back(event.ts);
    const auto track = [&](const char *name, const char *field,
                           const Series *values) {
        if (!values)
            return;
        const size_t n = std::min(values->values.size(), marks.size());
        for (size_t i = 0; i < n; ++i) {
            Json args = Json::object();
            args.set(field, values->values[i]);
            Json counter = Json::object();
            counter.set("name", name);
            counter.set("cat", "counter");
            counter.set("ph", "C");
            counter.set("ts", marks[i]);
            counter.set("pid", u64{0});
            counter.set("tid", u64{0});
            counter.set("args", std::move(args));
            list->push(std::move(counter));
        }
    };
    track("p99_translation_cycles", "cycles",
          series.find("tail_p99_cycles"));
    track("pending_shootdowns", "count", series.find("shootdowns"));
    return doc;
}

} // namespace pccsim::telemetry
