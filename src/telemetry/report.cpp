#include "telemetry/report.hpp"

namespace pccsim::telemetry {

Json
TelemetryReport::seriesJson() const
{
    Json doc = series.toJson(); // {"intervals": N, "series": {...}}
    Json finals = Json::object();
    for (const auto &[name, value] : counters)
        finals.set(name, value);
    doc.set("counters", std::move(finals));
    doc.set("events", static_cast<u64>(events.size()));
    doc.set("events_dropped", events_dropped);
    return doc;
}

Json
TelemetryReport::traceJson() const
{
    return EventTracer::chromeTrace(events, events_dropped);
}

} // namespace pccsim::telemetry
