#include "telemetry/tail.hpp"

#include <cstdio>

#include "telemetry/audit.hpp"

namespace pccsim::telemetry {

namespace {

std::string
hexAddr(Addr addr)
{
    char buf[32];
    std::snprintf(buf, sizeof buf, "0x%llx",
                  static_cast<unsigned long long>(addr));
    return buf;
}

Json
sliceJson(const TailSlice &slice)
{
    Json doc = Json::object();
    doc.set("translation", slice.translation.toJson());
    doc.set("walk", slice.walk.toJson());
    doc.set("stall", slice.stall.toJson());
    return doc;
}

Json
exemplarsJson(const std::vector<Exemplar> &exemplars)
{
    Json list = Json::array();
    for (const auto &exemplar : exemplars)
        list.push(exemplar.toJson());
    return list;
}

} // namespace

std::string
to_string(TailOutcome outcome)
{
    switch (outcome) {
      case TailOutcome::Fault: return "fault";
      case TailOutcome::L1: return "l1";
      case TailOutcome::L2: return "l2";
      case TailOutcome::Walk: return "walk";
    }
    return "?";
}

Json
LatencyHistogram::toJson() const
{
    Json doc = Json::object();
    doc.set("count", count_);
    doc.set("sum", sum_);
    doc.set("min", minValue());
    doc.set("max", maxValue());
    doc.set("mean", mean());
    doc.set("p50", quantile(0.50));
    doc.set("p90", quantile(0.90));
    doc.set("p99", quantile(0.99));
    doc.set("p999", quantile(0.999));
    Json buckets = Json::array();
    for (u32 i = 0; i < kBuckets; ++i) {
        if (counts_[i] == 0)
            continue;
        Json bucket = Json::array();
        bucket.push(bucketLow(i));
        bucket.push(counts_[i]);
        buckets.push(std::move(bucket));
    }
    doc.set("buckets", std::move(buckets));
    return doc;
}

Json
Exemplar::toJson() const
{
    Json doc = Json::object();
    doc.set("ts", ts);
    doc.set("core", static_cast<u64>(core));
    doc.set("job", static_cast<u64>(job));
    doc.set("pid", static_cast<u64>(pid));
    doc.set("region", hexAddr(region));
    doc.set("cycles", cycles);
    doc.set("walk_cycles", walk_cycles);
    doc.set("stall_cycles", stall_cycles);
    doc.set("outcome", to_string(outcome));
    doc.set("shootdowns", shootdowns);
    doc.set("core_faults", core_faults);
    doc.set("audit", audit);
    return doc;
}

void
ExemplarReservoir::offer(const Exemplar &exemplar, u64 metric)
{
    if (k_ == 0)
        return;
    if (worst_.size() >= k_) {
        // Ties keep the incumbent: the earliest arrival wins, which is
        // deterministic because within one run arrival order is the
        // lane schedule, itself deterministic.
        if (metric <= metrics_.back())
            return;
        metrics_.pop_back();
        worst_.pop_back();
    }
    // Insert after any equal metrics so equals stay in arrival order.
    size_t pos = 0;
    while (pos < metrics_.size() && metrics_[pos] >= metric)
        ++pos;
    metrics_.insert(metrics_.begin() + static_cast<i64>(pos), metric);
    worst_.insert(worst_.begin() + static_cast<i64>(pos), exemplar);
}

TailRecorder::TailRecorder(u32 cores, u32 jobs, u32 exemplar_k)
    : exemplar_k_(exemplar_k), per_core_(cores), per_job_(jobs),
      job_pids_(jobs, 0), worst_translation_(exemplar_k),
      worst_walk_(exemplar_k), worst_stall_(exemplar_k)
{
}

void
TailRecorder::record(u32 core, u32 job, Pid pid, u64 ts, Addr region,
                     TailOutcome outcome, Cycles cycles,
                     Cycles walk_cycles, Cycles stall_cycles,
                     u64 shootdowns, u64 core_faults)
{
    total_.translation.record(cycles);
    per_core_[core].translation.record(cycles);
    per_job_[job].translation.record(cycles);
    window_.record(cycles);
    job_pids_[job] = pid;
    if (walk_cycles > 0) {
        total_.walk.record(walk_cycles);
        per_core_[core].walk.record(walk_cycles);
        per_job_[job].walk.record(walk_cycles);
    }
    if (stall_cycles > 0) {
        total_.stall.record(stall_cycles);
        per_core_[core].stall.record(stall_cycles);
        per_job_[job].stall.record(stall_cycles);
    }

    const Exemplar exemplar{ts,     core,         job,
                            pid,    region,       cycles,
                            walk_cycles, stall_cycles, outcome,
                            shootdowns,  core_faults,  {}};
    worst_translation_.offer(exemplar, cycles);
    if (walk_cycles > 0)
        worst_walk_.offer(exemplar, walk_cycles);
    if (stall_cycles > 0)
        worst_stall_.offer(exemplar, stall_cycles);
}

TailReport
TailRecorder::report() const
{
    TailReport report;
    report.enabled = true;
    report.exemplar_k = exemplar_k_;
    report.total = total_;
    report.per_core = per_core_;
    report.per_job = per_job_;
    report.job_pids = job_pids_;
    report.worst_translation = worst_translation_.worst();
    report.worst_walk = worst_walk_.worst();
    report.worst_stall = worst_stall_.worst();
    return report;
}

Json
TailReport::toJson() const
{
    Json doc = Json::object();
    doc.set("enabled", enabled);
    doc.set("exemplar_k", static_cast<u64>(exemplar_k));
    doc.set("total", sliceJson(total));
    Json cores = Json::array();
    for (const auto &slice : per_core)
        cores.push(sliceJson(slice));
    doc.set("per_core", std::move(cores));
    Json jobs = Json::array();
    for (size_t j = 0; j < per_job.size(); ++j) {
        Json slice = sliceJson(per_job[j]);
        slice.set("pid",
                  static_cast<u64>(j < job_pids.size() ? job_pids[j]
                                                       : 0));
        jobs.push(std::move(slice));
    }
    doc.set("per_job", std::move(jobs));
    Json exemplars = Json::object();
    exemplars.set("translation", exemplarsJson(worst_translation));
    exemplars.set("walk", exemplarsJson(worst_walk));
    exemplars.set("stall", exemplarsJson(worst_stall));
    doc.set("exemplars", std::move(exemplars));
    return doc;
}

void
annotateExemplars(TailReport &tail, const AuditReport &audit)
{
    if (audit.records.empty())
        return;
    const auto annotate = [&audit](Exemplar &exemplar) {
        // Records are in simulated-time order; scan backwards for the
        // latest decision about this region at or before the access.
        for (size_t i = audit.records.size(); i-- > 0;) {
            const AuditRecord &rec = audit.records[i];
            if (rec.pid != exemplar.pid || rec.base != exemplar.region)
                continue;
            if (rec.ts > exemplar.ts)
                continue;
            exemplar.audit = to_string(rec.action) + ":" +
                             to_string(rec.reason) + "@" +
                             std::to_string(rec.ts);
            return;
        }
    };
    for (auto *list :
         {&tail.worst_translation, &tail.worst_walk, &tail.worst_stall})
        for (Exemplar &exemplar : *list)
            annotate(exemplar);
}

Table
tailQuantileTable(const TailReport &tail)
{
    Table table({"metric", "count", "mean", "p50", "p90", "p99",
                 "p99.9", "max"});
    const auto row = [&table](const std::string &label,
                              const LatencyHistogram &h) {
        table.row({label, std::to_string(h.count()),
                   Table::fmt(h.mean(), 1),
                   std::to_string(h.quantile(0.50)),
                   std::to_string(h.quantile(0.90)),
                   std::to_string(h.quantile(0.99)),
                   std::to_string(h.quantile(0.999)),
                   std::to_string(h.maxValue())});
    };
    row("translation", tail.total.translation);
    row("walk", tail.total.walk);
    row("fault_stall", tail.total.stall);
    if (tail.per_job.size() > 1) {
        for (size_t j = 0; j < tail.per_job.size(); ++j) {
            row("translation[pid " +
                    std::to_string(j < tail.job_pids.size()
                                       ? tail.job_pids[j]
                                       : 0) +
                    "]",
                tail.per_job[j].translation);
        }
    }
    return table;
}

Table
tailExemplarTable(const std::vector<Exemplar> &exemplars)
{
    Table table({"ts", "core", "pid", "region", "cycles", "walk",
                 "stall", "outcome", "shootdowns", "audit"});
    for (const Exemplar &e : exemplars) {
        table.row({std::to_string(e.ts), std::to_string(e.core),
                   std::to_string(e.pid), hexAddr(e.region),
                   std::to_string(e.cycles),
                   std::to_string(e.walk_cycles),
                   std::to_string(e.stall_cycles), to_string(e.outcome),
                   std::to_string(e.shootdowns),
                   e.audit.empty() ? "-" : e.audit});
    }
    return table;
}

} // namespace pccsim::telemetry
