#include "telemetry/attribution.hpp"

#include <algorithm>
#include <cstdio>

#include "util/log.hpp"

namespace pccsim::telemetry {

namespace {

/** splitmix64 finalizer: deterministic, platform-independent mixing. */
u64
mix(u64 x)
{
    x += 0x9E3779B97F4A7C15ull;
    x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
    x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
    return x ^ (x >> 31);
}

u64
keyHash(Pid pid, Vpn region)
{
    return mix(region * 0x100000001B3ull ^ pid);
}

/** Fixed 1-in-8 key sample for reserve-slot admissions. */
bool
sampledKey(Pid pid, Vpn region)
{
    return (keyHash(pid, region) >> 32) % 8 == 0;
}

u64
nextPow2(u64 x)
{
    u64 p = 1;
    while (p < x)
        p <<= 1;
    return p;
}

std::string
hexAddr(Addr addr)
{
    char buf[24];
    std::snprintf(buf, sizeof buf, "0x%llx",
                  static_cast<unsigned long long>(addr));
    return buf;
}

} // namespace

RegionProfiler::RegionProfiler(u32 region_budget)
    : budget_(region_budget)
{
    PCCSIM_ASSERT(budget_ >= 1, "attribution budget must be >= 1");
    // Reserve ~1/8 of the budget (at least one slot when the budget
    // allows) for hash-sampled late admissions.
    const u32 reserve = budget_ >= 8 ? budget_ / 8 : (budget_ > 1 ? 1 : 0);
    admit_free_ = budget_ - reserve;
    // Load factor <= 0.5 keeps linear probing short and deterministic.
    slots_.resize(nextPow2(std::max<u64>(16, 2ull * budget_)));
}

RegionProfiler::Slot *
RegionProfiler::findSlot(Pid pid, Vpn region, bool admit)
{
    const u64 mask = slots_.size() - 1;
    u64 i = keyHash(pid, region) & mask;
    const u32 tag = static_cast<u32>(pid) + 1;
    for (;;) {
        Slot &slot = slots_[i];
        if (slot.pid_plus_1 == tag && slot.region == region)
            return &slot;
        if (slot.pid_plus_1 == 0) {
            if (!admit || tracked_ >= budget_)
                return nullptr;
            if (tracked_ >= admit_free_) {
                // Reserve slots: only the fixed key sample gets in.
                if (!sampledKey(pid, region))
                    return nullptr;
                ++sampled_admissions_;
            }
            slot.pid_plus_1 = tag;
            slot.region = region;
            ++tracked_;
            return &slot;
        }
        i = (i + 1) & mask;
    }
}

void
RegionProfiler::recordWalk(Pid pid, Vpn region, Cycles cycles,
                           u32 pwc_hits, bool pcc_hit)
{
    if (Slot *slot = findSlot(pid, region, /*admit=*/true)) {
        ++slot->walks;
        slot->walk_cycles += cycles;
        slot->pwc_hits += pwc_hits;
        slot->pcc_hits += pcc_hit ? 1 : 0;
        return;
    }
    ++untracked_walks_;
    untracked_walk_cycles_ += cycles;
    untracked_pwc_hits_ += pwc_hits;
    untracked_pcc_hits_ += pcc_hit ? 1 : 0;
}

void
RegionProfiler::recordPccEviction(Pid pid, Vpn region)
{
    // Evictions never admit a row: a region only matters here if its
    // walks earned it one (or will); otherwise the eviction is noise.
    if (Slot *slot = findSlot(pid, region, /*admit=*/false)) {
        ++slot->pcc_evictions;
        return;
    }
    ++untracked_pcc_evictions_;
}

AttributionReport
RegionProfiler::report() const
{
    AttributionReport out;
    out.budget = budget_;
    out.sampled_admissions = sampled_admissions_;
    out.untracked_walks = untracked_walks_;
    out.untracked_walk_cycles = untracked_walk_cycles_;
    out.untracked_pwc_hits = untracked_pwc_hits_;
    out.untracked_pcc_hits = untracked_pcc_hits_;
    out.untracked_pcc_evictions = untracked_pcc_evictions_;

    out.regions.reserve(tracked_);
    for (const Slot &slot : slots_) {
        if (slot.pid_plus_1 == 0)
            continue;
        RegionRow row;
        row.pid = static_cast<Pid>(slot.pid_plus_1 - 1);
        row.base = slot.region << mem::kShift2M;
        row.walks = slot.walks;
        row.walk_cycles = slot.walk_cycles;
        row.pwc_hits = slot.pwc_hits;
        row.pcc_hits = slot.pcc_hits;
        row.pcc_evictions = slot.pcc_evictions;
        out.regions.push_back(row);
    }
    std::sort(out.regions.begin(), out.regions.end(),
              [](const RegionRow &a, const RegionRow &b) {
                  if (a.walk_cycles != b.walk_cycles)
                      return a.walk_cycles > b.walk_cycles;
                  if (a.pid != b.pid)
                      return a.pid < b.pid;
                  return a.base < b.base;
              });

    out.total_walks = untracked_walks_;
    out.total_walk_cycles = untracked_walk_cycles_;
    for (const RegionRow &row : out.regions) {
        out.total_walks += row.walks;
        out.total_walk_cycles += row.walk_cycles;
    }
    return out;
}

Json
AttributionReport::toJson() const
{
    Json doc = Json::object();
    doc.set("budget", static_cast<u64>(budget));
    doc.set("tracked_regions", static_cast<u64>(regions.size()));
    doc.set("sampled_admissions", sampled_admissions);
    doc.set("total_walks", total_walks);
    doc.set("total_walk_cycles", total_walk_cycles);

    Json untracked = Json::object();
    untracked.set("walks", untracked_walks);
    untracked.set("walk_cycles", untracked_walk_cycles);
    untracked.set("pwc_hits", untracked_pwc_hits);
    untracked.set("pcc_hits", untracked_pcc_hits);
    untracked.set("pcc_evictions", untracked_pcc_evictions);
    doc.set("untracked", std::move(untracked));

    const double denom =
        total_walk_cycles == 0 ? 1.0
                               : static_cast<double>(total_walk_cycles);
    Json rows = Json::array();
    u64 cum = 0;
    for (const RegionRow &row : regions) {
        cum += row.walk_cycles;
        Json r = Json::object();
        r.set("pid", static_cast<u64>(row.pid));
        r.set("base", hexAddr(row.base));
        r.set("walks", row.walks);
        r.set("walk_cycles", row.walk_cycles);
        r.set("pwc_hits", row.pwc_hits);
        r.set("pcc_hits", row.pcc_hits);
        r.set("pcc_evictions", row.pcc_evictions);
        r.set("share_pct",
              100.0 * static_cast<double>(row.walk_cycles) / denom);
        r.set("cum_pct", 100.0 * static_cast<double>(cum) / denom);
        rows.push(std::move(r));
    }
    doc.set("regions", std::move(rows));

    // CDF at power-of-two k: "top-k regions cover X% of walk cycles",
    // over the exact run-wide total (untracked cycles included).
    Json cdf = Json::array();
    cum = 0;
    size_t next_k = 1;
    for (size_t i = 0; i < regions.size(); ++i) {
        cum += regions[i].walk_cycles;
        if (i + 1 == next_k || i + 1 == regions.size()) {
            Json point = Json::object();
            point.set("k", static_cast<u64>(i + 1));
            point.set("walk_cycles_pct",
                      100.0 * static_cast<double>(cum) / denom);
            cdf.push(std::move(point));
            while (next_k <= i + 1)
                next_k *= 2;
        }
    }
    doc.set("cdf", std::move(cdf));

    // HUB concentration: smallest k whose cumulative share reaches the
    // threshold (0 = not reachable within the tracked rows).
    Json hub = Json::object();
    for (const double pct : {50.0, 70.0, 90.0}) {
        u64 k = 0;
        cum = 0;
        for (size_t i = 0; i < regions.size(); ++i) {
            cum += regions[i].walk_cycles;
            if (100.0 * static_cast<double>(cum) / denom >= pct) {
                k = static_cast<u64>(i + 1);
                break;
            }
        }
        hub.set("regions_for_" + std::to_string(static_cast<int>(pct)) +
                    "pct",
                k);
    }
    doc.set("hub", std::move(hub));

    // 1GB rollup: walk cycles grouped by containing gigabyte region.
    struct Roll
    {
        Pid pid;
        Addr base;
        u64 walk_cycles;
    };
    std::vector<Roll> rolls;
    for (const RegionRow &row : regions) {
        const Addr base1g = row.base & ~(mem::kBytes1G - 1);
        auto it = std::find_if(rolls.begin(), rolls.end(),
                               [&](const Roll &r) {
                                   return r.pid == row.pid &&
                                          r.base == base1g;
                               });
        if (it == rolls.end())
            rolls.push_back({row.pid, base1g, row.walk_cycles});
        else
            it->walk_cycles += row.walk_cycles;
    }
    std::sort(rolls.begin(), rolls.end(),
              [](const Roll &a, const Roll &b) {
                  if (a.walk_cycles != b.walk_cycles)
                      return a.walk_cycles > b.walk_cycles;
                  if (a.pid != b.pid)
                      return a.pid < b.pid;
                  return a.base < b.base;
              });
    Json by_1g = Json::array();
    for (const Roll &roll : rolls) {
        Json r = Json::object();
        r.set("pid", static_cast<u64>(roll.pid));
        r.set("base", hexAddr(roll.base));
        r.set("walk_cycles", roll.walk_cycles);
        by_1g.push(std::move(r));
    }
    doc.set("by_1g", std::move(by_1g));
    return doc;
}

} // namespace pccsim::telemetry
