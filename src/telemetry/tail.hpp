/**
 * @file
 * Tail-latency telemetry: deterministic log-linear (HDR-style)
 * histograms, worst-K exemplar reservoirs, and the per-run tail report
 * attached to TelemetryReport.
 *
 * The paper's headline numbers are means, but its core claim — a few
 * HUB regions dominate walk overhead — is a statement about the
 * *distribution* of translation latency: promoting the right regions
 * should collapse the tail, not merely shift the average. This module
 * makes that visible:
 *
 *  - LatencyHistogram: fixed-memory log-linear buckets (16 linear
 *    sub-buckets per power-of-two octave, <= 6.25% relative bucket
 *    width). Recording is two array increments; merging is element-
 *    wise addition, so merges commute and associate and a histogram's
 *    content depends only on the multiset of recorded values — never
 *    on arrival order or worker count. That is what keeps --jobs=N
 *    reports byte-identical to serial ones.
 *  - ExemplarReservoir: the worst-K accesses per metric with full
 *    context (2MB region, tenant, TLB outcome, walk cycles, in-flight
 *    shootdown/fault counts, and — filled in at report time — the
 *    region's latest promotion-audit decision), OpenMetrics-exemplar
 *    style: every tail bucket links back to a concrete HUB region and
 *    the decision that did or didn't fix it.
 *  - TailRecorder: the per-run collector the System drives from its
 *    access hot path (gated by TelemetryConfig::histograms; off means
 *    the recorder is never constructed and metrics are bit-identical).
 *
 * Three metrics are recorded per access: total translation+access
 * cycles (every access), page-walk cycles (TLB-hierarchy misses), and
 * fault/promotion stall cycles (minor faults, whose handler charges
 * any synchronous promotion work). Each is sliced per core and per
 * job (= tenant), with the global histogram being the merge of the
 * per-core slices.
 */

#pragma once

#include <algorithm>
#include <array>
#include <bit>
#include <string>
#include <vector>

#include "telemetry/json.hpp"
#include "util/table.hpp"
#include "util/types.hpp"

namespace pccsim::telemetry {

struct AuditReport;

/**
 * Fixed-memory log-linear histogram of u64 values (cycles, ns).
 *
 * Bucket layout: values below 16 are exact; above, each power-of-two
 * octave [2^e, 2^(e+1)) splits into 16 linear sub-buckets, so a
 * bucket's width is at most 1/16 of its lower bound. quantile()
 * returns the lower bound of the bucket containing the requested rank
 * — within one bucket (<= 6.25% relative error) of the exact
 * order statistic, and bit-exact across merge orders.
 */
class LatencyHistogram
{
  public:
    static constexpr u32 kSubBucketBits = 4;
    static constexpr u32 kSubBuckets = 1u << kSubBucketBits;
    /** 16 exact buckets + 16 per octave for exponents 4..63. */
    static constexpr u32 kBuckets =
        kSubBuckets + (64 - kSubBucketBits) * kSubBuckets;

    /** Bucket index of `value` (log-linear; exact below 16). */
    static constexpr u32
    indexOf(u64 value)
    {
        if (value < kSubBuckets)
            return static_cast<u32>(value);
        const u32 exp = 63 - static_cast<u32>(std::countl_zero(value));
        const u32 sub = static_cast<u32>(
            (value >> (exp - kSubBucketBits)) & (kSubBuckets - 1));
        return (exp - kSubBucketBits + 1) * kSubBuckets + sub;
    }

    /** Smallest value landing in bucket `index`. */
    static constexpr u64
    bucketLow(u32 index)
    {
        if (index < kSubBuckets)
            return index;
        const u32 octave = index / kSubBuckets - 1;
        const u64 sub = index % kSubBuckets;
        return (static_cast<u64>(kSubBuckets) + sub) << octave;
    }

    void
    record(u64 value, u64 weight = 1)
    {
        counts_[indexOf(value)] += weight;
        count_ += weight;
        sum_ += value * weight;
        min_ = count_ == weight ? value : std::min(min_, value);
        max_ = std::max(max_, value);
    }

    /** Element-wise addition: commutative, associative, lossless. */
    void
    merge(const LatencyHistogram &other)
    {
        if (other.count_ == 0)
            return;
        for (u32 i = 0; i < kBuckets; ++i)
            counts_[i] += other.counts_[i];
        min_ = count_ == 0 ? other.min_ : std::min(min_, other.min_);
        max_ = std::max(max_, other.max_);
        count_ += other.count_;
        sum_ += other.sum_;
    }

    void
    reset()
    {
        counts_.fill(0);
        count_ = sum_ = max_ = 0;
        min_ = 0;
    }

    u64 count() const { return count_; }
    u64 sum() const { return sum_; }
    u64 minValue() const { return count_ == 0 ? 0 : min_; }
    u64 maxValue() const { return max_; }

    double
    mean() const
    {
        return count_ == 0 ? 0.0
                           : static_cast<double>(sum_) /
                                 static_cast<double>(count_);
    }

    /**
     * Lower bound of the bucket holding the rank-ceil(q*count)
     * smallest value (the same rank convention as an exact sorted
     * reference, so both land in the same bucket).
     */
    u64
    quantile(double q) const
    {
        if (count_ == 0)
            return 0;
        const double scaled = q * static_cast<double>(count_);
        u64 rank = static_cast<u64>(scaled);
        if (static_cast<double>(rank) < scaled)
            ++rank; // ceil
        rank = std::clamp<u64>(rank, 1, count_);
        u64 cum = 0;
        for (u32 i = 0; i < kBuckets; ++i) {
            cum += counts_[i];
            if (cum >= rank)
                return bucketLow(i);
        }
        return bucketLow(kBuckets - 1); // unreachable
    }

    bool operator==(const LatencyHistogram &) const = default;

    /** {count,sum,min,max,mean,p50,...,buckets:[[low,n],...]}. */
    Json toJson() const;

  private:
    std::array<u64, kBuckets> counts_{};
    u64 count_ = 0;
    u64 sum_ = 0;
    u64 min_ = 0;
    u64 max_ = 0;
};

/** How the access resolved its translation. */
enum class TailOutcome : u8
{
    Fault = 0, //!< minor fault (first touch); stall cycles charged
    L1,        //!< L1 TLB hit (includes the last-translation cache)
    L2,        //!< L2 TLB hit
    Walk,      //!< full page-table walk
};

std::string to_string(TailOutcome outcome);

/**
 * One worst-K access with enough context to act on: which 2MB region
 * of which tenant, how the TLB hierarchy resolved it, what was in
 * flight, and (annotated at report time) what the promotion audit
 * last decided about that region.
 */
struct Exemplar
{
    u64 ts = 0;   //!< simulated clock (total accesses) at record time
    u32 core = 0;
    u32 job = 0;  //!< job index (= tenant in multi-tenant runs)
    Pid pid = 0;
    Addr region = 0; //!< 2MB-aligned vaddr of the access
    Cycles cycles = 0;       //!< full translation+access cost
    Cycles walk_cycles = 0;  //!< page-walk portion (0 on TLB hits)
    Cycles stall_cycles = 0; //!< fault/promotion stall portion
    TailOutcome outcome = TailOutcome::L1;
    u64 shootdowns = 0;  //!< TLB shootdowns issued so far (in flight)
    u64 core_faults = 0; //!< faults this core had taken so far
    /** "action:reason@ts" of the region's latest audit decision
     *  (annotateExemplars; empty without --audit or when the region
     *  never reached a decision). */
    std::string audit;

    bool operator==(const Exemplar &) const = default;

    Json toJson() const;
};

/**
 * Deterministic worst-K reservoir ordered by a caller-chosen metric
 * value: keeps the K largest, breaking ties in favor of the earliest
 * arrival (so identical simulated streams keep identical exemplars
 * regardless of worker count — arrival order within one run is the
 * deterministic lane schedule).
 */
class ExemplarReservoir
{
  public:
    explicit ExemplarReservoir(u32 k = 0) : k_(k) {}

    void offer(const Exemplar &exemplar, u64 metric);

    /** Sorted worst-first (metric desc, earlier arrival on ties). */
    const std::vector<Exemplar> &worst() const { return worst_; }

  private:
    u32 k_;
    std::vector<u64> metrics_; //!< parallel to worst_
    std::vector<Exemplar> worst_;
};

/** The three per-slice histograms (one slice = core, job, or total). */
struct TailSlice
{
    LatencyHistogram translation; //!< full access cost, every access
    LatencyHistogram walk;        //!< walk cycles of TLB misses
    LatencyHistogram stall;       //!< fault/promotion stall cycles

    bool operator==(const TailSlice &) const = default;
};

/** End-of-run tail report (attached to TelemetryReport::tail). */
struct TailReport
{
    bool enabled = false;
    u32 exemplar_k = 0;
    TailSlice total;
    std::vector<TailSlice> per_core; //!< index = core id
    std::vector<TailSlice> per_job;  //!< index = job (tenant)
    std::vector<Pid> job_pids;       //!< pid of each job slice
    std::vector<Exemplar> worst_translation;
    std::vector<Exemplar> worst_walk;
    std::vector<Exemplar> worst_stall;

    bool operator==(const TailReport &) const = default;

    Json toJson() const;
};

/**
 * Per-run collector. The System calls record() from its access paths
 * (only when TelemetryConfig::histograms is set) and drains window()
 * at each interval boundary for the windowed quantile series.
 */
class TailRecorder
{
  public:
    TailRecorder(u32 cores, u32 jobs, u32 exemplar_k);

    void record(u32 core, u32 job, Pid pid, u64 ts, Addr region,
                TailOutcome outcome, Cycles cycles, Cycles walk_cycles,
                Cycles stall_cycles, u64 shootdowns, u64 core_faults);

    /** Translation histogram of the current interval window. */
    const LatencyHistogram &window() const { return window_; }
    void resetWindow() { window_.reset(); }

    TailReport report() const;

  private:
    u32 exemplar_k_;
    TailSlice total_;
    std::vector<TailSlice> per_core_;
    std::vector<TailSlice> per_job_;
    std::vector<Pid> job_pids_;
    LatencyHistogram window_;
    ExemplarReservoir worst_translation_;
    ExemplarReservoir worst_walk_;
    ExemplarReservoir worst_stall_;
};

/**
 * Fill each exemplar's `audit` field with the region's latest audit
 * decision at or before the exemplar's timestamp ("action:reason@ts"),
 * so a tail access links to the promotion decision that explains it.
 * No-op on an empty audit report.
 */
void annotateExemplars(TailReport &tail, const AuditReport &audit);

/** Quantile summary table (metric x count/mean/p50/.../max) rows:
 *  the three total metrics plus per-tenant translation rows when the
 *  run had more than one job. */
Table tailQuantileTable(const TailReport &tail);

/** Worst-K exemplar rows of one reservoir, worst first. */
Table tailExemplarTable(const std::vector<Exemplar> &exemplars);

} // namespace pccsim::telemetry
