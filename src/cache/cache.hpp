/**
 * @file
 * Set-associative data cache and a three-level hierarchy.
 *
 * The timing model uses this to charge realistic per-access costs so
 * that cache-optimized workloads (dedup, mcf in Fig. 1) show the low
 * memory-boundedness — and hence low TLB sensitivity — the paper
 * reports, while irregular graph workloads pay frequent DRAM trips.
 *
 * Caches are virtually indexed in this model: the simulator tracks
 * pages, not frames, on the hot path, and physical layout does not
 * change any conclusion the paper draws.
 *
 * Storage is structure-of-arrays: tags and LRU stamps live in separate
 * contiguous arrays, so the dominant cost — the per-set tag scan — only
 * touches tag cache lines (one 64B line covers an 8-way set) and can
 * optionally run through the SIMD kernel in util/tagscan.hpp. The
 * hierarchy's miss path uses the fused probe-or-insert access(): one
 * set scan resolves hit way, first empty way, and LRU victim together,
 * where the old lookup()-then-insert() pair scanned every set twice.
 */

#pragma once

#include <vector>

#include "util/log.hpp"
#include "util/tagscan.hpp"
#include "util/types.hpp"

namespace pccsim::cache {

/** Geometry of one cache level. */
struct CacheParams
{
    u64 size_bytes = 32 * 1024;
    u32 ways = 8;
    u32 line_bytes = 64;

    u64
    sets() const
    {
        return size_bytes / (static_cast<u64>(ways) * line_bytes);
    }
};

/** One set-associative cache level with true-LRU replacement. */
class Cache
{
  public:
    /**
     * @param mru_hint Probe the per-set MRU way before the full scan.
     *        Pays off where consecutive probes re-touch one line (L1
     *        sees every access, so streaming code hits its hint
     *        constantly); inner levels only see L1 *misses*, where the
     *        hint rarely matches and its data-dependent branch costs a
     *        mispredict per probe. Results are identical either way —
     *        the hint path performs the same stamp update the scan
     *        would.
     */
    explicit Cache(CacheParams params, bool mru_hint = true)
        : params_(params), mru_hint_(mru_hint),
          sets_(params.sets() == 0 ? 1 : params.sets()),
          tags_(sets_ * params.ways, kInvalidTag),
          stamps_(sets_ * params.ways, 0),
          mru_(sets_, 0)
    {
        PCCSIM_ASSERT(params.line_bytes > 0 && params.ways > 0);
        line_shift_ = 0;
        while ((1u << line_shift_) < params.line_bytes)
            ++line_shift_;
        // Real geometries have power-of-two set counts; indexing with a
        // mask instead of a 64-bit division is a large win on the
        // per-access hot path. Odd set counts fall back to modulo.
        set_mask_ = (sets_ & (sets_ - 1)) == 0 ? sets_ - 1 : 0;
    }

    /** Probe and update LRU; true on hit. */
    bool
    lookup(Addr addr)
    {
        const u64 tag = addr >> line_shift_;
        PCCSIM_DCHECK(tag != kInvalidTag);
        const u64 set_index = setIndexOf(tag);
        u64 *tags = &tags_[set_index * params_.ways];
        u64 *stamps = &stamps_[set_index * params_.ways];
        // MRU-way fast check: the timing model's dominant cost is this
        // scan, and most hits land on the last way touched. A stale
        // hint (after eviction) just fails the compare and falls
        // through; the stamp update is the same one the scan performs,
        // so the fast path is bit-identical to the slow one.
        u32 &mru = mru_[set_index];
        if (mru_hint_ && tags[mru] == tag) {
            stamps[mru] = ++clock_;
            return true;
        }
        const int w = util::findTag(tags, params_.ways, tag);
        if (w < 0)
            return false;
        stamps[w] = ++clock_;
        mru = static_cast<u32>(w);
        return true;
    }

    /**
     * Fused probe-or-insert: equivalent to `lookup(addr)` followed on
     * miss by `insert(addr)` — same hit outcome, same victim choice,
     * same stamp/clock sequence, same MRU hint — in one set scan.
     * Returns true on hit.
     */
    bool
    access(Addr addr)
    {
        const u64 tag = addr >> line_shift_;
        PCCSIM_DCHECK(tag != kInvalidTag);
        const u64 set_index = setIndexOf(tag);
        u64 *tags = &tags_[set_index * params_.ways];
        u64 *stamps = &stamps_[set_index * params_.ways];
        u32 &mru = mru_[set_index];
        if (mru_hint_ && tags[mru] == tag) {
            stamps[mru] = ++clock_;
            return true;
        }
        const auto scan =
            util::scanSet(tags, stamps, params_.ways, tag);
        if (scan.hit_way >= 0) {
            stamps[scan.hit_way] = ++clock_;
            mru = static_cast<u32>(scan.hit_way);
            return true;
        }
        // Victim: first empty way, else true LRU — both cases are the
        // earliest-minimum stamp (empties hold stamp 0, filled ways
        // unique stamps >= 1), so one branch-free scan covers them.
        tags[scan.victim] = tag;
        stamps[scan.victim] = ++clock_;
        mru = scan.victim;
        return false;
    }

    /** Fill the line containing addr, evicting LRU. */
    void
    insert(Addr addr)
    {
        const u64 tag = addr >> line_shift_;
        const u64 set_index = setIndexOf(tag);
        u64 *tags = &tags_[set_index * params_.ways];
        u64 *stamps = &stamps_[set_index * params_.ways];
        u32 victim = 0;
        u64 oldest = ~0ull;
        for (u32 w = 0; w < params_.ways; ++w) {
            if (tags[w] == kInvalidTag) {
                victim = w;
                break;
            }
            if (tags[w] == tag) {
                stamps[w] = ++clock_;
                return;
            }
            if (stamps[w] < oldest) {
                oldest = stamps[w];
                victim = w;
            }
        }
        tags[victim] = tag;
        stamps[victim] = ++clock_;
        mru_[set_index] = victim;
    }

    void
    flushAll()
    {
        for (auto &tag : tags_)
            tag = kInvalidTag;
        for (auto &stamp : stamps_)
            stamp = 0;
    }

    const CacheParams &params() const { return params_; }

  private:
    /**
     * Validity is the sentinel tag rather than a bool, which keeps the
     * hot-path scans pure tag compares. The sentinel is unreachable as
     * a real tag: tags are addr >> line_shift_, so ~0 would require an
     * address in the top cache line of the address space.
     */
    static constexpr u64 kInvalidTag = ~0ull;

    u64
    setIndexOf(u64 tag) const
    {
        return set_mask_ ? (tag & set_mask_) : (tag % sets_);
    }

    CacheParams params_;
    bool mru_hint_;
    u64 sets_;
    std::vector<u64> tags_;   //!< SoA: tag per way, sentinel = empty
    std::vector<u64> stamps_; //!< SoA: LRU stamp per way
    std::vector<u32> mru_;    //!< per-set hint; advisory, may be stale
    u64 clock_ = 0;
    u64 set_mask_ = 0;
    u32 line_shift_ = 0;
};

/** Latency (cycles) charged per hit level. */
struct CacheLatencies
{
    Cycles l1 = 4;
    Cycles l2 = 12;
    Cycles llc = 42;
    Cycles dram = 220;
};

/** Three-level inclusive-enough hierarchy for timing purposes. */
class CacheHierarchy
{
  public:
    struct Config
    {
        CacheParams l1{32 * 1024, 8, 64};
        CacheParams l2{256 * 1024, 8, 64};
        CacheParams llc{8 * 1024 * 1024, 16, 64};
        CacheLatencies latencies{};
        bool enabled = true;
    };

    CacheHierarchy() : CacheHierarchy(Config{}) {}

    explicit CacheHierarchy(Config config)
        : config_(config), l1_(config.l1),
          l2_(config.l2, /*mru_hint=*/false),
          llc_(config.llc, /*mru_hint=*/false)
    {
    }

    /**
     * Look up addr, fill on miss, and return the access latency.
     *
     * Every level a miss passes through refills on the way down, so
     * each level's probe is the fused probe-or-insert: the old
     * lookup-all-levels-then-insert-all-levels shape rescanned every
     * missing set a second time for its victim. Per-level replacement
     * state evolves identically (each level still sees exactly one
     * probe-or-insert per access that reaches it, in the same order);
     * only the redundant scans are gone.
     */
    Cycles
    access(Addr addr)
    {
        ++accesses_;
        if (!config_.enabled)
            return config_.latencies.dram;
        if (l1_.access(addr)) {
            ++l1_hits_;
            return config_.latencies.l1;
        }
        if (l2_.access(addr)) {
            ++l2_hits_;
            return config_.latencies.l2;
        }
        if (llc_.access(addr)) {
            ++llc_hits_;
            return config_.latencies.llc;
        }
        ++dram_;
        return config_.latencies.dram;
    }

    void
    flushAll()
    {
        l1_.flushAll();
        l2_.flushAll();
        llc_.flushAll();
    }

    u64 accesses() const { return accesses_; }
    u64 l1Hits() const { return l1_hits_; }
    u64 l2Hits() const { return l2_hits_; }
    u64 llcHits() const { return llc_hits_; }
    u64 dramAccesses() const { return dram_; }

    void
    resetStats()
    {
        accesses_ = l1_hits_ = l2_hits_ = llc_hits_ = dram_ = 0;
    }

  private:
    Config config_;
    Cache l1_;
    Cache l2_;
    Cache llc_;
    u64 accesses_ = 0;
    u64 l1_hits_ = 0;
    u64 l2_hits_ = 0;
    u64 llc_hits_ = 0;
    u64 dram_ = 0;
};

} // namespace pccsim::cache
