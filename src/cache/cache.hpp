/**
 * @file
 * Set-associative data cache and a three-level hierarchy.
 *
 * The timing model uses this to charge realistic per-access costs so
 * that cache-optimized workloads (dedup, mcf in Fig. 1) show the low
 * memory-boundedness — and hence low TLB sensitivity — the paper
 * reports, while irregular graph workloads pay frequent DRAM trips.
 *
 * Caches are virtually indexed in this model: the simulator tracks
 * pages, not frames, on the hot path, and physical layout does not
 * change any conclusion the paper draws.
 */

#pragma once

#include <vector>

#include "util/log.hpp"
#include "util/types.hpp"

namespace pccsim::cache {

/** Geometry of one cache level. */
struct CacheParams
{
    u64 size_bytes = 32 * 1024;
    u32 ways = 8;
    u32 line_bytes = 64;

    u64
    sets() const
    {
        return size_bytes / (static_cast<u64>(ways) * line_bytes);
    }
};

/** One set-associative cache level with true-LRU replacement. */
class Cache
{
  public:
    explicit Cache(CacheParams params)
        : params_(params),
          sets_(params.sets() == 0 ? 1 : params.sets()),
          lines_(sets_ * params.ways),
          mru_(sets_, 0)
    {
        PCCSIM_ASSERT(params.line_bytes > 0 && params.ways > 0);
        line_shift_ = 0;
        while ((1u << line_shift_) < params.line_bytes)
            ++line_shift_;
        // Real geometries have power-of-two set counts; indexing with a
        // mask instead of a 64-bit division is a large win on the
        // per-access hot path. Odd set counts fall back to modulo.
        set_mask_ = (sets_ & (sets_ - 1)) == 0 ? sets_ - 1 : 0;
    }

    /** Probe and update LRU; true on hit. */
    bool
    lookup(Addr addr)
    {
        const u64 tag = addr >> line_shift_;
        PCCSIM_DCHECK(tag != kInvalidTag);
        const u64 set_index = setIndexOf(tag);
        Line *set = &lines_[set_index * params_.ways];
        // MRU-way fast check: the timing model's dominant cost is this
        // scan, and most hits land on the last way touched. A stale
        // hint (after eviction) just fails the compare and falls
        // through; the stamp update is the same one the scan performs,
        // so the fast path is bit-identical to the slow one.
        u32 &mru = mru_[set_index];
        if (set[mru].tag == tag) {
            set[mru].stamp = ++clock_;
            return true;
        }
        for (u32 w = 0; w < params_.ways; ++w) {
            if (set[w].tag == tag) {
                set[w].stamp = ++clock_;
                mru = w;
                return true;
            }
        }
        return false;
    }

    /** Fill the line containing addr, evicting LRU. */
    void
    insert(Addr addr)
    {
        const u64 tag = addr >> line_shift_;
        const u64 set_index = setIndexOf(tag);
        Line *set = &lines_[set_index * params_.ways];
        u32 victim = 0;
        u64 oldest = ~0ull;
        for (u32 w = 0; w < params_.ways; ++w) {
            if (set[w].tag == kInvalidTag) {
                victim = w;
                break;
            }
            if (set[w].tag == tag)
                return;
            if (set[w].stamp < oldest) {
                oldest = set[w].stamp;
                victim = w;
            }
        }
        set[victim] = {tag, ++clock_};
        mru_[set_index] = victim;
    }

    void
    flushAll()
    {
        for (auto &line : lines_)
            line = Line{};
    }

    const CacheParams &params() const { return params_; }

  private:
    /**
     * 16-byte line: validity is the sentinel tag rather than a bool,
     * which shrinks the line array by a third (the LLC's array is the
     * timing model's dominant host-cache footprint). The sentinel is
     * unreachable as a real tag: tags are addr >> line_shift_, so
     * ~0 would require an address in the top cache line of the
     * address space.
     */
    static constexpr u64 kInvalidTag = ~0ull;
    struct Line
    {
        u64 tag = kInvalidTag;
        u64 stamp = 0;
    };

    u64
    setIndexOf(u64 tag) const
    {
        return set_mask_ ? (tag & set_mask_) : (tag % sets_);
    }

    CacheParams params_;
    u64 sets_;
    std::vector<Line> lines_;
    std::vector<u32> mru_; //!< per-set hint; advisory, may be stale
    u64 clock_ = 0;
    u64 set_mask_ = 0;
    u32 line_shift_ = 0;
};

/** Latency (cycles) charged per hit level. */
struct CacheLatencies
{
    Cycles l1 = 4;
    Cycles l2 = 12;
    Cycles llc = 42;
    Cycles dram = 220;
};

/** Three-level inclusive-enough hierarchy for timing purposes. */
class CacheHierarchy
{
  public:
    struct Config
    {
        CacheParams l1{32 * 1024, 8, 64};
        CacheParams l2{256 * 1024, 8, 64};
        CacheParams llc{8 * 1024 * 1024, 16, 64};
        CacheLatencies latencies{};
        bool enabled = true;
    };

    CacheHierarchy() : CacheHierarchy(Config{}) {}

    explicit CacheHierarchy(Config config)
        : config_(config), l1_(config.l1), l2_(config.l2), llc_(config.llc)
    {
    }

    /** Look up addr, fill on miss, and return the access latency. */
    Cycles
    access(Addr addr)
    {
        ++accesses_;
        if (!config_.enabled)
            return config_.latencies.dram;
        if (l1_.lookup(addr)) {
            ++l1_hits_;
            return config_.latencies.l1;
        }
        if (l2_.lookup(addr)) {
            ++l2_hits_;
            l1_.insert(addr);
            return config_.latencies.l2;
        }
        if (llc_.lookup(addr)) {
            ++llc_hits_;
            l2_.insert(addr);
            l1_.insert(addr);
            return config_.latencies.llc;
        }
        llc_.insert(addr);
        l2_.insert(addr);
        l1_.insert(addr);
        ++dram_;
        return config_.latencies.dram;
    }

    void
    flushAll()
    {
        l1_.flushAll();
        l2_.flushAll();
        llc_.flushAll();
    }

    u64 accesses() const { return accesses_; }
    u64 l1Hits() const { return l1_hits_; }
    u64 l2Hits() const { return l2_hits_; }
    u64 llcHits() const { return llc_hits_; }
    u64 dramAccesses() const { return dram_; }

    void
    resetStats()
    {
        accesses_ = l1_hits_ = l2_hits_ = llc_hits_ = dram_ = 0;
    }

  private:
    Config config_;
    Cache l1_;
    Cache l2_;
    Cache llc_;
    u64 accesses_ = 0;
    u64 l1_hits_ = 0;
    u64 l2_hits_ = 0;
    u64 llc_hits_ = 0;
    u64 dram_ = 0;
};

} // namespace pccsim::cache
