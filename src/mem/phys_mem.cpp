#include "mem/phys_mem.hpp"

#include <algorithm>

#include "util/log.hpp"

namespace pccsim::mem {

PhysicalMemory::PhysicalMemory(u64 bytes)
    : buddy_(bytes / kBytes4K, kOrder1G),
      use_(bytes / kBytes4K, FrameUse::Free),
      owner_(bytes / kBytes4K),
      blocks_((bytes / kBytes4K) >> kOrder2M),
      num_blocks_((bytes / kBytes4K) >> kOrder2M),
      c_alloc_base_(&stats_.counter("alloc_base")),
      c_alloc_base_fail_(&stats_.counter("alloc_base_fail")),
      c_alloc_huge_(&stats_.counter("alloc_huge")),
      c_alloc_huge_fail_(&stats_.counter("alloc_huge_fail")),
      c_free_base_(&stats_.counter("free_base")),
      c_free_huge_(&stats_.counter("free_huge")),
      c_injected_alloc_fail_(&stats_.counter("injected_alloc_fail"))
{
    PCCSIM_ASSERT(num_blocks_ > 0, "physical memory smaller than 2MB");
}

bool
PhysicalMemory::gateDenies(unsigned order)
{
    if (!alloc_gate_ || alloc_gate_(order))
        return false;
    ++*c_injected_alloc_fail_;
    return true;
}

std::optional<Pfn>
PhysicalMemory::allocBase(Pid pid, Vpn vpn4k, bool bypass_gate)
{
    if (!bypass_gate && gateDenies(0)) {
        ++*c_alloc_base_fail_;
        return std::nullopt;
    }
    auto pfn = buddy_.allocate(0);
    if (!pfn) {
        ++*c_alloc_base_fail_;
        return std::nullopt;
    }
    use_[*pfn] = FrameUse::AppBase;
    owner_[*pfn] = {pid, vpn4k};
    ++blocks_[blockOf(*pfn)].resident;
    ++*c_alloc_base_;
    return pfn;
}

std::optional<Pfn>
PhysicalMemory::allocHuge(Pid pid, Vpn first_vpn4k)
{
    if (gateDenies(kOrder2M)) {
        ++*c_alloc_huge_fail_;
        return std::nullopt;
    }
    auto pfn = buddy_.allocate(kOrder2M);
    if (!pfn) {
        ++*c_alloc_huge_fail_;
        return std::nullopt;
    }
    for (u64 i = 0; i < kPagesPer2M; ++i)
        use_[*pfn + i] = FrameUse::AppHuge;
    owner_[*pfn] = {pid, first_vpn4k};
    blocks_[blockOf(*pfn)].huge = true;
    ++*c_alloc_huge_;
    return pfn;
}

std::optional<Pfn>
PhysicalMemory::allocHuge1G(Pid pid, Vpn first_vpn4k)
{
    if (gateDenies(kOrder1G)) {
        ++stats_.counter("alloc_huge1g_fail");
        return std::nullopt;
    }
    auto pfn = buddy_.allocate(kOrder1G);
    if (!pfn) {
        ++stats_.counter("alloc_huge1g_fail");
        return std::nullopt;
    }
    const u64 frames = 1ull << kOrder1G;
    for (u64 i = 0; i < frames; ++i)
        use_[*pfn + i] = FrameUse::AppHuge;
    owner_[*pfn] = {pid, first_vpn4k};
    for (u64 b = 0; b < k2MPer1G; ++b)
        blocks_[blockOf(*pfn) + b].huge = true;
    ++stats_.counter("alloc_huge1g");
    return pfn;
}

void
PhysicalMemory::freeHuge1G(Pfn pfn)
{
    PCCSIM_ASSERT(use_[pfn] == FrameUse::AppHuge);
    PCCSIM_ASSERT((pfn & ((1ull << kOrder1G) - 1)) == 0,
                  "freeHuge1G on unaligned pfn");
    const u64 frames = 1ull << kOrder1G;
    for (u64 i = 0; i < frames; ++i)
        use_[pfn + i] = FrameUse::Free;
    owner_[pfn] = {};
    for (u64 b = 0; b < k2MPer1G; ++b)
        blocks_[blockOf(pfn) + b].huge = false;
    buddy_.free(pfn, kOrder1G);
    ++stats_.counter("free_huge1g");
}

void
PhysicalMemory::freeBase(Pfn pfn)
{
    PCCSIM_ASSERT(use_[pfn] == FrameUse::AppBase);
    use_[pfn] = FrameUse::Free;
    owner_[pfn] = {};
    --blocks_[blockOf(pfn)].resident;
    buddy_.free(pfn, 0);
    ++*c_free_base_;
}

void
PhysicalMemory::freeHuge(Pfn pfn)
{
    PCCSIM_ASSERT(use_[pfn] == FrameUse::AppHuge);
    PCCSIM_ASSERT((pfn & (kPagesPer2M - 1)) == 0,
                  "freeHuge on unaligned pfn");
    for (u64 i = 0; i < kPagesPer2M; ++i)
        use_[pfn + i] = FrameUse::Free;
    owner_[pfn] = {};
    blocks_[blockOf(pfn)].huge = false;
    buddy_.free(pfn, kOrder2M);
    ++*c_free_huge_;
}

void
PhysicalMemory::splitHuge(Pfn pfn, Pid pid, Vpn first_vpn4k)
{
    PCCSIM_ASSERT(use_[pfn] == FrameUse::AppHuge);
    PCCSIM_ASSERT((pfn & (kPagesPer2M - 1)) == 0,
                  "splitHuge on unaligned pfn");
    for (u64 i = 0; i < kPagesPer2M; ++i) {
        use_[pfn + i] = FrameUse::AppBase;
        owner_[pfn + i] = {pid, first_vpn4k + i};
    }
    auto &block = blocks_[blockOf(pfn)];
    block.huge = false;
    block.resident += static_cast<u32>(kPagesPer2M);
    ++stats_.counter("split_huge");
}

void
PhysicalMemory::split1GTo2M(Pfn pfn, Pid pid, Vpn first_vpn4k)
{
    PCCSIM_ASSERT(use_[pfn] == FrameUse::AppHuge);
    PCCSIM_ASSERT((pfn & ((1ull << kOrder1G) - 1)) == 0,
                  "split1GTo2M on unaligned pfn");
    for (u64 r = 0; r < k2MPer1G; ++r) {
        const Pfn head = pfn + r * kPagesPer2M;
        owner_[head] = {pid, first_vpn4k + r * kPagesPer2M};
        blocks_[blockOf(head)].huge = true; // stays huge, 2MB-grained
    }
    ++stats_.counter("split_1g");
}

u64
PhysicalMemory::fragment(double fraction, Rng &rng)
{
    const u64 target = static_cast<u64>(fraction *
                                        static_cast<double>(num_blocks_));
    // Choose `target` distinct blocks via a partial Fisher-Yates shuffle.
    std::vector<u64> ids(num_blocks_);
    for (u64 i = 0; i < num_blocks_; ++i)
        ids[i] = i;
    u64 pinned = 0;
    for (u64 i = 0; i < target && i < num_blocks_; ++i) {
        const u64 j = i + rng.below(num_blocks_ - i);
        std::swap(ids[i], ids[j]);
        const u64 block = ids[i];
        const Pfn pfn = (block << kOrder2M) + rng.below(kPagesPer2M);
        if (!buddy_.allocateSpecific(pfn))
            continue; // already occupied; block is busy anyway
        use_[pfn] = FrameUse::Unmovable;
        ++blocks_[block].unmovable;
        ++pinned_blocks_;
        ++pinned;
    }
    stats_.counter("pinned_blocks") += pinned;
    return pinned;
}

u64
PhysicalMemory::scramble(Rng &rng)
{
    u64 placed = 0;
    for (u64 block = 0; block < num_blocks_; ++block) {
        const auto &info = blocks_[block];
        if (info.unmovable != 0 || info.huge || info.resident != 0)
            continue;
        const Pfn pfn = (block << kOrder2M) + rng.below(kPagesPer2M);
        if (!buddy_.allocateSpecific(pfn))
            continue;
        use_[pfn] = FrameUse::Filler;
        owner_[pfn] = {kFillerPid, 0};
        ++blocks_[block].resident;
        ++placed;
    }
    stats_.counter("filler_pages") += placed;
    return placed;
}

u64
PhysicalMemory::hugeFramesAvailable() const
{
    return buddy_.allocatableChunks(kOrder2M);
}

u64
PhysicalMemory::compactableBlocks() const
{
    u64 count = 0;
    for (u64 b = 0; b < num_blocks_; ++b) {
        const auto &info = blocks_[b];
        if (info.unmovable == 0 && !info.huge && info.resident > 0)
            ++count;
    }
    return count;
}

std::optional<PhysicalMemory::CompactionResult>
PhysicalMemory::compactOneBlock()
{
    u32 moves_allowed = kUnlimitedMoves;
    if (compaction_gate_) {
        moves_allowed = compaction_gate_();
        if (moves_allowed == 0) {
            // Injected hard failure: the attempt aborts before
            // touching anything (lock contention / isolation failure).
            ++stats_.counter("injected_compaction_fail");
            return std::nullopt;
        }
    }

    // Round-robin scan from the cursor for a movable, occupied block.
    // Preferring low-resident blocks keeps each compaction cheap; a full
    // argmin scan would be O(blocks) per call anyway, so scan once and
    // keep the best of the first window.
    constexpr u64 kWindow = 64;
    u64 best = num_blocks_;
    u32 best_resident = ~0u;
    u64 examined = 0;
    for (u64 step = 0; step < num_blocks_ && examined < kWindow; ++step) {
        const u64 b = (compact_cursor_ + step) % num_blocks_;
        const auto &info = blocks_[b];
        if (info.unmovable != 0 || info.huge || info.resident == 0)
            continue;
        ++examined;
        if (info.resident < best_resident) {
            best = b;
            best_resident = info.resident;
        }
    }
    if (best == num_blocks_)
        return std::nullopt;
    compact_cursor_ = (best + 1) % num_blocks_;
    return compactBlock(best, kNoGig, moves_allowed);
}

std::optional<PhysicalMemory::CompactionResult>
PhysicalMemory::compactOneBlockIn(u64 gig)
{
    u32 moves_allowed = kUnlimitedMoves;
    if (compaction_gate_) {
        moves_allowed = compaction_gate_();
        if (moves_allowed == 0) {
            ++stats_.counter("injected_compaction_fail");
            return std::nullopt;
        }
    }

    // Cheapest movable occupied block within the gigabyte group.
    const u64 first = gig * k2MPer1G;
    const u64 last = std::min(first + k2MPer1G, num_blocks_);
    u64 best = num_blocks_;
    u32 best_resident = ~0u;
    for (u64 b = first; b < last; ++b) {
        const auto &info = blocks_[b];
        if (info.unmovable != 0 || info.huge || info.resident == 0)
            continue;
        if (info.resident < best_resident) {
            best = b;
            best_resident = info.resident;
        }
    }
    if (best == num_blocks_)
        return std::nullopt;
    return compactBlock(best, gig, moves_allowed);
}

std::optional<u64>
PhysicalMemory::bestGigCandidate() const
{
    const u64 num_gigs = num_blocks_ / k2MPer1G;
    std::optional<u64> best;
    u64 best_resident = ~u64(0);
    for (u64 g = 0; g < num_gigs; ++g) {
        u64 resident = 0;
        bool blocked = false;
        for (u64 b = g * k2MPer1G; b < (g + 1) * k2MPer1G; ++b) {
            const auto &info = blocks_[b];
            if (info.unmovable != 0 || info.huge) {
                blocked = true;
                break;
            }
            resident += info.resident;
        }
        if (blocked || resident == 0)
            continue;
        if (resident < best_resident) {
            best = g;
            best_resident = resident;
        }
    }
    return best;
}

u64
PhysicalMemory::gigFramesAvailable() const
{
    return buddy_.allocatableChunks(kOrder1G);
}

std::optional<PhysicalMemory::CompactionResult>
PhysicalMemory::compactBlock(u64 block, u64 avoid_gig, u32 moves_allowed)
{
    // Collect the resident movable frames of the chosen block.
    const Pfn head = block << kOrder2M;
    std::vector<Pfn> residents;
    for (u64 i = 0; i < kPagesPer2M; ++i) {
        if (use_[head + i] == FrameUse::AppBase ||
            use_[head + i] == FrameUse::Filler) {
            residents.push_back(head + i);
        }
    }
    PCCSIM_ASSERT(residents.size() == blocks_[block].resident);

    if (buddy_.freeFrames() < residents.size() + kPagesPer2M)
        return std::nullopt; // not enough headroom elsewhere

    // Relocate each resident. Replacement frames that land inside the
    // block being compacted are parked and released afterwards.
    CompactionResult result;
    result.block_head = head;
    std::vector<Pfn> parked;

    // Roll back: undo the moves made so far. `from` frames are never
    // released until the attempt commits, so only the destination side
    // needs restoring.
    const auto rollback = [&] {
        for (const auto &m : result.moves) {
            use_[m.from] = use_[m.to];
            owner_[m.from] = m.owner;
            ++blocks_[blockOf(m.from)].resident;
            use_[m.to] = FrameUse::Free;
            owner_[m.to] = {};
            --blocks_[blockOf(m.to)].resident;
            buddy_.free(m.to, 0);
        }
        for (Pfn p : parked)
            buddy_.free(p, 0);
    };

    for (Pfn from : residents) {
        if (result.moves.size() >= moves_allowed) {
            // Injected partial failure: the attempt loses its isolation
            // mid-migration and must undo everything it moved.
            ++stats_.counter("injected_compaction_abort");
            rollback();
            return std::nullopt;
        }
        std::optional<Pfn> to;
        while (true) {
            to = buddy_.allocate(0);
            if (!to) break;
            if (blockOf(*to) != block &&
                (avoid_gig == kNoGig || gigOf(*to) != avoid_gig)) {
                break;
            }
            parked.push_back(*to);
        }
        if (!to) {
            rollback();
            return std::nullopt;
        }
        const FrameOwner owner = owner_[from];
        use_[*to] = use_[from];
        owner_[*to] = owner;
        ++blocks_[blockOf(*to)].resident;
        use_[from] = FrameUse::Free;
        owner_[from] = {};
        --blocks_[blockOf(from)].resident;
        result.moves.push_back({from, *to, owner});
    }
    for (Pfn p : parked)
        buddy_.free(p, 0);
    // Release the source frames; they coalesce back toward order 9.
    for (const auto &m : result.moves)
        buddy_.free(m.from, 0);

    ++stats_.counter("compactions");
    stats_.counter("compaction_moves") += result.moves.size();
    return result;
}

} // namespace pccsim::mem
