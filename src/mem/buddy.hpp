/**
 * @file
 * Binary buddy allocator over physical frames.
 *
 * Orders follow the Linux convention: order-0 chunks are single 4KB
 * frames, order-9 chunks are 2MB-aligned blocks of 512 frames, order-18
 * chunks are 1GB blocks. The allocator supports normal power-of-two
 * allocation, targeted allocation of one specific frame (used by the
 * fragmentation injector to pin an unmovable page in a chosen block),
 * and buddy coalescing on free.
 */

#pragma once

#include <cstddef>
#include <optional>
#include <vector>

#include "util/types.hpp"

namespace pccsim::mem {

/** Buddy order of a 2MB block (512 base frames). */
inline constexpr unsigned kOrder2M = 9;

/** Buddy order of a 1GB block. */
inline constexpr unsigned kOrder1G = 18;

class BuddyAllocator
{
  public:
    /**
     * @param num_frames Total 4KB frames managed. Rounded handling is the
     *        caller's job: frames beyond the last full max-order block are
     *        still usable, just never part of a max-order chunk.
     * @param max_order Largest chunk order the allocator will form.
     */
    explicit BuddyAllocator(u64 num_frames, unsigned max_order = kOrder1G);

    /** Allocate a 2^order-frame aligned chunk; nullopt when exhausted. */
    std::optional<Pfn> allocate(unsigned order);

    /**
     * Allocate exactly the frame pfn (order 0), splitting whatever free
     * chunk contains it. Fails if the frame is already allocated.
     */
    bool allocateSpecific(Pfn pfn);

    /** Free a chunk previously returned by allocate()/allocateSpecific(). */
    void free(Pfn pfn, unsigned order);

    /** Frames currently free. */
    u64 freeFrames() const { return free_frames_; }

    /** Total managed frames. */
    u64 totalFrames() const { return num_frames_; }

    /** Number of free chunks at exactly the given order. */
    u64 freeChunksAt(unsigned order) const;

    /**
     * Number of chunks of >= the given order that could be allocated right
     * now (i.e. huge-page availability under current fragmentation).
     */
    u64 allocatableChunks(unsigned order) const;

    /** True if the frame is currently part of any allocated chunk. */
    bool isAllocated(Pfn pfn) const;

    unsigned maxOrder() const { return max_order_; }

  private:
    struct FreeArea
    {
        // Free chunk heads at this order; index into frame metadata.
        std::vector<Pfn> chunks;
    };

    /** Index of pfn inside free list of its order, or npos. */
    static constexpr u32 kNoFreeIndex = ~0u;

    Pfn buddyOf(Pfn pfn, unsigned order) const;
    void pushFree(Pfn pfn, unsigned order);
    void removeFree(Pfn pfn, unsigned order);
    void splitTo(Pfn head, unsigned from_order, unsigned to_order,
                 Pfn keep_pfn);

    u64 num_frames_;
    unsigned max_order_;
    std::vector<FreeArea> free_area_;

    // Per-frame metadata. For a free chunk head: its order and position
    // in the free list. For other frames: state only.
    enum class FrameState : u8 { FreeHead, FreeBody, Allocated };
    std::vector<FrameState> state_;
    std::vector<u8> order_;      // valid for FreeHead / allocated heads
    std::vector<u32> free_index_; // valid for FreeHead

    u64 free_frames_ = 0;
};

} // namespace pccsim::mem
