/**
 * @file
 * Simulated physical memory: frame ownership, fragmentation injection,
 * and memory compaction, layered over the buddy allocator.
 *
 * Fragmentation follows the paper's methodology (Sec. 5.1.1): one
 * non-movable base page is allocated in a chosen fraction of 2MB-aligned
 * blocks, which prevents those blocks from ever forming a huge frame.
 * Compaction relocates movable application base pages out of a block so
 * the block can coalesce back into an order-9 (2MB) chunk; the OS applies
 * the returned relocations to its page tables and charges the cost.
 */

#pragma once

#include <functional>
#include <optional>
#include <vector>

#include "mem/buddy.hpp"
#include "mem/paging.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"
#include "util/types.hpp"

namespace pccsim::mem {

/** What a physical frame is currently used for. */
enum class FrameUse : u8
{
    Free = 0,
    AppBase,   //!< 4KB application page (movable)
    AppHuge,   //!< part of a 2MB application huge page (head holds owner)
    Unmovable, //!< fragmentation pin; can never move
    Filler,    //!< movable non-application page (fragmented free memory)
};

/** Owner pid marking a Filler frame (no page table to update). */
inline constexpr Pid kFillerPid = ~Pid(0);

/** Reverse-map entry: which virtual page a frame backs. */
struct FrameOwner
{
    Pid pid = 0;
    Vpn vpn4k = 0; //!< 4KB VPN for AppBase; 2MB-aligned first VPN for huge
};

class PhysicalMemory
{
  public:
    /** One relocation performed by compaction: old frame -> new frame. */
    struct Move
    {
        Pfn from;
        Pfn to;
        FrameOwner owner;
    };

    /** Outcome of a successful block compaction. */
    struct CompactionResult
    {
        Pfn block_head;          //!< first frame of the now-free 2MB block
        std::vector<Move> moves; //!< relocations the OS must apply
    };

    explicit PhysicalMemory(u64 bytes);

    // ---- fault-injection gates (sim/fault_injector) ----

    /**
     * Allocation gate: consulted before every ordinary allocation with
     * the requested buddy order; returning false makes the allocation
     * fail artificially (a deterministic injected fault). Targeted
     * allocations (fragmentation pins) are never gated.
     */
    using AllocGate = std::function<bool(unsigned order)>;

    /**
     * Compaction gate: consulted at the start of every compaction
     * attempt; returns the number of page moves the attempt may
     * perform. kUnlimitedMoves = no injection, 0 = the attempt fails
     * outright, a small k = the attempt aborts (and rolls back) after
     * k moves — the injected partial-compaction fault.
     */
    static constexpr u32 kUnlimitedMoves = ~0u;
    using CompactionGate = std::function<u32()>;

    void setAllocGate(AllocGate gate) { alloc_gate_ = std::move(gate); }
    void
    setCompactionGate(CompactionGate gate)
    {
        compaction_gate_ = std::move(gate);
    }

    /** True when a fault-injection gate is installed: allocation
     *  failures may be transient, so retrying can be worthwhile. */
    bool
    transientFailuresPossible() const
    {
        return static_cast<bool>(alloc_gate_) ||
               static_cast<bool>(compaction_gate_);
    }

    /**
     * Allocate one 4KB frame for (pid, vpn4k); nullopt when OOM.
     * @param bypass_gate Skip the injection gate — the OS's last-resort
     *        retry after reclaim, which must see real availability.
     */
    std::optional<Pfn> allocBase(Pid pid, Vpn vpn4k,
                                 bool bypass_gate = false);

    /** Allocate one 2MB-aligned huge frame; nullopt when unavailable. */
    std::optional<Pfn> allocHuge(Pid pid, Vpn first_vpn4k);

    /**
     * Allocate one 1GB-aligned frame (order 18). Requires a pristine
     * gigabyte of physical memory; callers that may compact first
     * (Trident-style promotion) use bestGigCandidate() plus
     * compactOneBlockIn() to vacate a gigabyte group, then retry.
     */
    std::optional<Pfn> allocHuge1G(Pid pid, Vpn first_vpn4k);

    void freeBase(Pfn pfn);
    void freeHuge(Pfn pfn);
    void freeHuge1G(Pfn pfn);

    /**
     * Split an application huge page in place (Linux-style demotion):
     * the 512 frames stay allocated but become individually-owned base
     * frames backing vpn first_vpn4k .. first_vpn4k+511.
     */
    void splitHuge(Pfn pfn, Pid pid, Vpn first_vpn4k);

    /**
     * Split an application 1GB page in place into 512 2MB huge-page
     * frames, reassigning per-2MB ownership.
     */
    void split1GTo2M(Pfn pfn, Pid pid, Vpn first_vpn4k);

    /**
     * Pin one unmovable base page in `fraction` of all 2MB blocks,
     * selected pseudo-randomly. Returns the number of blocks pinned.
     */
    u64 fragment(double fraction, Rng &rng);

    /**
     * Scatter one *movable* filler page into every remaining free 2MB
     * block. Combined with fragment(), this reproduces the paper's
     * fragmented-memory state: no order-9 block is readily free, so
     * every huge-frame allocation needs compaction first, and only
     * unpinned blocks can ever be compacted.
     */
    u64 scramble(Rng &rng);

    /**
     * Try to free up one 2MB block by relocating its movable pages.
     * Chooses the cheapest compactable block (fewest resident frames).
     * Returns nullopt when no block without pins/huge pages exists or
     * there is not enough free memory elsewhere to absorb the moves.
     */
    std::optional<CompactionResult> compactOneBlock();

    /**
     * Gigabyte-targeted compaction: free up one 2MB block *inside* the
     * given gigabyte group, relocating its movable pages to frames
     * outside that gigabyte (destinations landing anywhere in the
     * group are parked and released, so progress toward an order-18
     * chunk is monotonic). Returns nullopt when the group holds no
     * movable occupied block — either it is already vacant or the
     * remaining residents are pinned/huge.
     */
    std::optional<CompactionResult> compactOneBlockIn(u64 gig);

    /**
     * The gigabyte group cheapest to vacate: no pinned or huge frames
     * anywhere in its 512 blocks and the fewest movable residents.
     * Groups with zero residents are skipped (allocHuge1G already
     * succeeds there). nullopt when every group is disqualified.
     */
    std::optional<u64> bestGigCandidate() const;

    /** Order-18 chunks allocatable right now without compaction. */
    u64 gigFramesAvailable() const;

    /** Order-9 chunks allocatable right now without compaction. */
    u64 hugeFramesAvailable() const;

    /** Blocks that compactOneBlock() could currently liberate. */
    u64 compactableBlocks() const;

    u64 totalFrames() const { return buddy_.totalFrames(); }
    u64 freeFrames() const { return buddy_.freeFrames(); }
    u64 totalBlocks() const { return num_blocks_; }
    u64 pinnedBlocks() const { return pinned_blocks_; }

    FrameUse useOf(Pfn pfn) const { return use_[pfn]; }
    FrameOwner ownerOf(Pfn pfn) const { return owner_[pfn]; }

    StatGroup &stats() { return stats_; }

  private:
    struct BlockInfo
    {
        u32 unmovable = 0; //!< pinned frames in the block
        u32 resident = 0;  //!< movable allocated frames in the block
        bool huge = false; //!< block is an application huge page
    };

    u64 blockOf(Pfn pfn) const { return pfn >> kOrder2M; }
    u64 gigOf(Pfn pfn) const { return pfn >> kOrder1G; }

    /** Sentinel for compactBlock: no gigabyte group to avoid. */
    static constexpr u64 kNoGig = ~u64(0);

    /**
     * Shared compaction body: relocate every movable resident of
     * `block`. Destinations inside `block` are always parked; when
     * avoid_gig != kNoGig, destinations anywhere inside that gigabyte
     * group are parked too.
     */
    std::optional<CompactionResult> compactBlock(u64 block, u64 avoid_gig,
                                                 u32 moves_allowed);

    /** True when the gate vetoes an allocation of the given order. */
    bool gateDenies(unsigned order);

    BuddyAllocator buddy_;
    AllocGate alloc_gate_;
    CompactionGate compaction_gate_;
    std::vector<FrameUse> use_;
    std::vector<FrameOwner> owner_;
    std::vector<BlockInfo> blocks_;
    u64 num_blocks_;
    u64 pinned_blocks_ = 0;
    u64 compact_cursor_ = 0;
    StatGroup stats_{"phys_mem"};
    // Allocation-frequency counters resolved once: StatGroup::counter's
    // string lookup is measurable on the per-fault hot path. Pointers
    // stay valid for the StatGroup's lifetime (std::map storage).
    Counter *c_alloc_base_;
    Counter *c_alloc_base_fail_;
    Counter *c_alloc_huge_;
    Counter *c_alloc_huge_fail_;
    Counter *c_free_base_;
    Counter *c_free_huge_;
    Counter *c_injected_alloc_fail_;
};

} // namespace pccsim::mem
