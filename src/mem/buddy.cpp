#include "mem/buddy.hpp"

#include "util/log.hpp"

namespace pccsim::mem {

BuddyAllocator::BuddyAllocator(u64 num_frames, unsigned max_order)
    : num_frames_(num_frames),
      max_order_(max_order),
      free_area_(max_order + 1),
      state_(num_frames, FrameState::Allocated),
      order_(num_frames, 0),
      free_index_(num_frames, kNoFreeIndex)
{
    PCCSIM_ASSERT(num_frames > 0);
    // Carve the frame range into maximal aligned free chunks.
    Pfn pfn = 0;
    while (pfn < num_frames_) {
        unsigned order = max_order_;
        while (order > 0 &&
               ((pfn & ((1ull << order) - 1)) != 0 ||
                pfn + (1ull << order) > num_frames_)) {
            --order;
        }
        if (pfn + (1ull << order) > num_frames_)
            break; // trailing frames smaller than one order-0 chunk: none
        for (u64 i = 0; i < (1ull << order); ++i)
            state_[pfn + i] = FrameState::FreeBody;
        pushFree(pfn, order);
        free_frames_ += 1ull << order;
        pfn += 1ull << order;
    }
}

Pfn
BuddyAllocator::buddyOf(Pfn pfn, unsigned order) const
{
    return pfn ^ (1ull << order);
}

void
BuddyAllocator::pushFree(Pfn pfn, unsigned order)
{
    state_[pfn] = FrameState::FreeHead;
    order_[pfn] = static_cast<u8>(order);
    free_index_[pfn] = static_cast<u32>(free_area_[order].chunks.size());
    free_area_[order].chunks.push_back(pfn);
}

void
BuddyAllocator::removeFree(Pfn pfn, unsigned order)
{
    auto &list = free_area_[order].chunks;
    const u32 idx = free_index_[pfn];
    PCCSIM_ASSERT(idx != kNoFreeIndex && idx < list.size() &&
                  list[idx] == pfn);
    const Pfn moved = list.back();
    list[idx] = moved;
    free_index_[moved] = idx;
    list.pop_back();
    free_index_[pfn] = kNoFreeIndex;
    state_[pfn] = FrameState::FreeBody;
}

void
BuddyAllocator::splitTo(Pfn head, unsigned from_order, unsigned to_order,
                        Pfn keep_pfn)
{
    // Repeatedly halve [head, head + 2^from_order), keeping the half that
    // contains keep_pfn and freeing the other half.
    unsigned order = from_order;
    while (order > to_order) {
        --order;
        const Pfn low = head;
        const Pfn high = head + (1ull << order);
        if (keep_pfn >= high) {
            pushFree(low, order);
            head = high;
        } else {
            pushFree(high, order);
            head = low;
        }
    }
    PCCSIM_ASSERT(head == (keep_pfn & ~((1ull << to_order) - 1)));
}

std::optional<Pfn>
BuddyAllocator::allocate(unsigned order)
{
    PCCSIM_ASSERT(order <= max_order_);
    unsigned avail = order;
    while (avail <= max_order_ && free_area_[avail].chunks.empty())
        ++avail;
    if (avail > max_order_)
        return std::nullopt;

    const Pfn head = free_area_[avail].chunks.back();
    removeFree(head, avail);
    splitTo(head, avail, order, head);

    for (u64 i = 0; i < (1ull << order); ++i)
        state_[head + i] = FrameState::Allocated;
    order_[head] = static_cast<u8>(order);
    free_frames_ -= 1ull << order;
    return head;
}

bool
BuddyAllocator::allocateSpecific(Pfn pfn)
{
    if (pfn >= num_frames_)
        return false;
    // Find the free chunk containing pfn by probing candidate heads.
    for (unsigned order = 0; order <= max_order_; ++order) {
        const Pfn head = pfn & ~((1ull << order) - 1);
        if (state_[head] == FrameState::FreeHead &&
            order_[head] == order) {
            removeFree(head, order);
            splitTo(head, order, 0, pfn);
            state_[pfn] = FrameState::Allocated;
            order_[pfn] = 0;
            free_frames_ -= 1;
            return true;
        }
        if (state_[head] == FrameState::Allocated && head != pfn)
            return false; // inside an allocated chunk
    }
    return false;
}

void
BuddyAllocator::free(Pfn pfn, unsigned order)
{
    PCCSIM_ASSERT(order <= max_order_);
    PCCSIM_ASSERT(state_[pfn] == FrameState::Allocated,
                  "double free of pfn ", pfn);

    for (u64 i = 0; i < (1ull << order); ++i)
        state_[pfn + i] = FrameState::FreeBody;
    free_frames_ += 1ull << order;

    // Coalesce with the buddy as far up as possible.
    Pfn head = pfn;
    while (order < max_order_) {
        const Pfn buddy = buddyOf(head, order);
        if (buddy + (1ull << order) > num_frames_)
            break;
        if (state_[buddy] != FrameState::FreeHead ||
            order_[buddy] != order) {
            break;
        }
        removeFree(buddy, order);
        head = std::min(head, buddy);
        ++order;
    }
    pushFree(head, order);
}

u64
BuddyAllocator::freeChunksAt(unsigned order) const
{
    PCCSIM_ASSERT(order <= max_order_);
    return free_area_[order].chunks.size();
}

u64
BuddyAllocator::allocatableChunks(unsigned order) const
{
    u64 total = 0;
    for (unsigned o = order; o <= max_order_; ++o)
        total += free_area_[o].chunks.size() << (o - order);
    return total;
}

bool
BuddyAllocator::isAllocated(Pfn pfn) const
{
    PCCSIM_ASSERT(pfn < num_frames_);
    return state_[pfn] == FrameState::Allocated;
}

} // namespace pccsim::mem
