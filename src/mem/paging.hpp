/**
 * @file
 * x86-64 style page-size constants and virtual-address arithmetic.
 *
 * pccsim models the three page sizes of x86-64: 4KB base pages, 2MB huge
 * pages (PMD leaves) and 1GB huge pages (PUD leaves). A 2MB region holds
 * 512 base pages; a 1GB region holds 512 2MB regions.
 */

#pragma once

#include <cstddef>
#include <string>

#include "util/types.hpp"

namespace pccsim::mem {

/** Page sizes supported by the simulated MMU. */
enum class PageSize : u8
{
    Base4K = 0,
    Huge2M = 1,
    Huge1G = 2,
};

inline constexpr unsigned kShift4K = 12;
inline constexpr unsigned kShift2M = 21;
inline constexpr unsigned kShift1G = 30;

inline constexpr u64 kBytes4K = 1ull << kShift4K;
inline constexpr u64 kBytes2M = 1ull << kShift2M;
inline constexpr u64 kBytes1G = 1ull << kShift1G;

/** Base pages per 2MB huge page (the paper's "512x"). */
inline constexpr u64 kPagesPer2M = kBytes2M / kBytes4K;

/** 2MB regions per 1GB huge page. */
inline constexpr u64 k2MPer1G = kBytes1G / kBytes2M;

/** Address-bit shift for a page size. */
constexpr unsigned
shiftOf(PageSize size)
{
    switch (size) {
      case PageSize::Base4K: return kShift4K;
      case PageSize::Huge2M: return kShift2M;
      case PageSize::Huge1G: return kShift1G;
    }
    return kShift4K;
}

/** Bytes covered by one page of the given size. */
constexpr u64
bytesOf(PageSize size)
{
    return 1ull << shiftOf(size);
}

/** Page number of an address at the given granularity. */
constexpr Vpn
vpnOf(Addr addr, PageSize size)
{
    return addr >> shiftOf(size);
}

/** First byte address of the page containing addr. */
constexpr Addr
pageBase(Addr addr, PageSize size)
{
    return addr & ~(bytesOf(size) - 1);
}

/** Round a byte count up to a whole number of pages of the given size. */
constexpr u64
roundUpPages(u64 bytes, PageSize size)
{
    const u64 page = bytesOf(size);
    return (bytes + page - 1) / page;
}

/** Round an address up to the next page boundary. */
constexpr Addr
alignUp(Addr addr, PageSize size)
{
    const u64 page = bytesOf(size);
    return (addr + page - 1) & ~(page - 1);
}

/** True if addr is aligned to the given page size. */
constexpr bool
isAligned(Addr addr, PageSize size)
{
    return (addr & (bytesOf(size) - 1)) == 0;
}

/** 2MB-region page number of a 4KB VPN (drop the low 9 bits). */
constexpr Vpn
vpn4KTo2M(Vpn vpn4k)
{
    return vpn4k >> (kShift2M - kShift4K);
}

/** 1GB-region page number of a 4KB VPN. */
constexpr Vpn
vpn4KTo1G(Vpn vpn4k)
{
    return vpn4k >> (kShift1G - kShift4K);
}

/** Human-readable page-size name. */
inline std::string
nameOf(PageSize size)
{
    switch (size) {
      case PageSize::Base4K: return "4KB";
      case PageSize::Huge2M: return "2MB";
      case PageSize::Huge1G: return "1GB";
    }
    return "?";
}

} // namespace pccsim::mem
