/**
 * @file
 * Hardware page-table walker model with split page-walk caches (PWCs).
 *
 * On a last-level TLB miss the walker descends the radix page table,
 * setting accessed bits, and reports (a) how many page-table memory
 * references the walk needed given the PWC state — the timing input —
 * and (b) the prior accessed-bit state at the PUD and PMD levels — the
 * PCC's cold-miss filter input (paper Sec. 3.2, Fig. 3).
 *
 * The split PWC mirrors Intel's design: one small cache per non-leaf
 * level (PML4E/PDPTE/PDE). A hit at the deepest level means only the
 * leaf entry must be fetched from the memory hierarchy, giving the
 * 1.1-1.4 references/walk the paper quotes (Sec. 5.4.1).
 */

#pragma once

#include "mem/paging.hpp"
#include "pt/page_table.hpp"
#include "tlb/set_assoc_tlb.hpp"
#include "util/types.hpp"

namespace pccsim::pt {

/** Geometry of the split page-walk caches. */
struct PwcParams
{
    bool enabled = true;
    tlb::TlbParams pml4e{2, 2};   //!< caches PGD entries (1 per 512GB)
    tlb::TlbParams pdpte{4, 4};   //!< caches PUD entries (1 per 1GB)
    tlb::TlbParams pde{32, 4};    //!< caches PMD entries (1 per 2MB)
};

/** Everything a Core needs to know about one completed walk. */
struct WalkOutcome
{
    bool present = false;
    mem::PageSize size = mem::PageSize::Base4K;
    Pfn pfn = 0;
    unsigned memory_refs = 0;      //!< page-table fetches from memory
    bool pud_was_accessed = false; //!< A-bit seen set at the 1GB level
    bool pmd_was_accessed = false; //!< A-bit seen set at the 2MB level
    bool pte_was_accessed = false; //!< A-bit seen set at the 4KB leaf
};

class Walker
{
  public:
    explicit Walker(PwcParams params = PwcParams{})
        : params_(params),
          pml4e_(params.pml4e),
          pdpte_(params.pdpte),
          pde_(params.pde)
    {
    }

    /**
     * Walk the page table for vaddr. Sets accessed bits, consults and
     * refills the PWCs, and reports the outcome.
     */
    WalkOutcome
    walk(PageTable &table, Addr vaddr)
    {
        WalkOutcome out;
        const auto info = table.walk(vaddr);
        out.present = info.present;
        out.size = info.size;
        out.pfn = info.pfn;
        out.pud_was_accessed = info.pud_was_accessed;
        out.pmd_was_accessed = info.pmd_was_accessed;
        out.pte_was_accessed = info.pte_was_accessed;

        ++walks_;
        out.memory_refs = refsFor(vaddr, info);
        total_refs_ += out.memory_refs;
        return out;
    }

    /**
     * Drop PWC entries covering [base, base + bytes) — required when the
     * OS rewrites page-table entries (promotion/demotion/migration).
     */
    void
    shootdown(Addr base, u64 bytes)
    {
        const Vpn lo2m = mem::vpnOf(base, mem::PageSize::Huge2M);
        const Vpn hi2m = mem::vpnOf(base + bytes - 1,
                                    mem::PageSize::Huge2M) + 1;
        pde_.invalidateVpnRange(lo2m, hi2m);
        // A PMD rewrite (2MB promote/demote, PTE migration) leaves the
        // PUD entry itself intact, so cached PDPTEs stay valid unless
        // the invalidation spans whole 1GB mappings.
        if (bytes >= mem::kBytes1G) {
            const Vpn lo1g = mem::vpnOf(base, mem::PageSize::Huge1G);
            const Vpn hi1g = mem::vpnOf(base + bytes - 1,
                                        mem::PageSize::Huge1G) + 1;
            pdpte_.invalidateVpnRange(lo1g, hi1g);
        }
        // PML4E entries only point to lower tables; they stay valid.
    }

    void
    flushAll()
    {
        pml4e_.flushAll();
        pdpte_.flushAll();
        pde_.flushAll();
    }

    u64 walks() const { return walks_; }
    u64 totalRefs() const { return total_refs_; }

    /** Mean page-table references per walk (the paper's 1.1-1.4). */
    double
    refsPerWalk() const
    {
        return walks_ == 0
            ? 0.0
            : static_cast<double>(total_refs_) /
                  static_cast<double>(walks_);
    }

    void
    resetStats()
    {
        walks_ = 0;
        total_refs_ = 0;
    }

  private:
    unsigned
    refsFor(Addr vaddr, const PageTable::WalkInfo &info)
    {
        // Leaf depth: 1GB leaf = 2 levels, 2MB = 3, 4KB = 4. A walk that
        // failed early (non-present) still fetched `info.levels` entries.
        unsigned depth = info.levels == 0 ? 1 : info.levels;
        if (!params_.enabled)
            return depth;

        const Vpn vpn1g = mem::vpnOf(vaddr, mem::PageSize::Huge1G);
        const Vpn vpn2m = mem::vpnOf(vaddr, mem::PageSize::Huge2M);
        const Vpn vpn512g = vaddr >> 39;

        // Start below the deepest PWC hit; every traversed level is
        // (re)filled. The combined access() folds the former
        // probe-then-refill double scan into one scan per structure:
        // a level that must be probed uses access() (hit or insert in
        // one pass), while levels above a deeper hit skip the probe
        // and just refill.
        unsigned start_level = 0; // number of levels skipped
        if (depth >= 4 && pde_.access(vpn2m).hit)
            start_level = 3;
        if (depth >= 3) {
            if (start_level == 0) {
                if (pdpte_.access(vpn1g).hit)
                    start_level = 2;
            } else {
                pdpte_.insert(vpn1g);
            }
        }
        if (depth >= 2) {
            if (start_level == 0) {
                if (pml4e_.access(vpn512g).hit)
                    start_level = 1;
            } else {
                pml4e_.insert(vpn512g);
            }
        }
        return depth - start_level;
    }

    PwcParams params_;
    tlb::SetAssocTlb pml4e_;
    tlb::SetAssocTlb pdpte_;
    tlb::SetAssocTlb pde_;
    u64 walks_ = 0;
    u64 total_refs_ = 0;
};

} // namespace pccsim::pt
