/**
 * @file
 * Four-level x86-64-style radix page table with per-entry accessed bits.
 *
 * Levels follow the Linux naming the paper uses: PGD (L4), PUD (L3, 1GB
 * leaves), PMD (L2, 2MB leaves), PTE (L1, 4KB leaves). Intermediate
 * entries carry accessed bits that the hardware walker sets as it
 * descends — the bit the PCC uses to filter cold misses (Sec. 3.2).
 *
 * The page table is OS-owned state: the OS maps/unmaps/promotes/demotes;
 * the hardware Walker (walker.hpp) only reads it and sets accessed bits.
 */

#pragma once

#include <memory>
#include <vector>

#include "mem/paging.hpp"
#include "util/types.hpp"

namespace pccsim::pt {

/** Levels of the radix tree, numbered as in the paper's Fig. 3. */
enum class Level : u8
{
    PGD = 4,
    PUD = 3,
    PMD = 2,
    PTE = 1,
};

/** Result of a software lookup (no accessed-bit side effects). */
struct Mapping
{
    bool present = false;
    mem::PageSize size = mem::PageSize::Base4K;
    Pfn pfn = 0;
};

class PageTable
{
  public:
    PageTable();
    ~PageTable();

    PageTable(const PageTable &) = delete;
    PageTable &operator=(const PageTable &) = delete;

    /** Map one 4KB page. The PMD slot must not hold a huge leaf. */
    void mapBase(Addr vaddr, Pfn pfn);

    /**
     * Replace the 4KB subtree of a 2MB-aligned region with a huge leaf
     * (promotion / huge fault). Any existing PTE page is discarded.
     */
    void mapHuge2M(Addr vaddr, Pfn pfn);

    /** Map a 1GB leaf at the PUD level. */
    void mapHuge1G(Addr vaddr, Pfn pfn);

    /**
     * Split a 2MB leaf back into 512 base PTEs (demotion). The base
     * frames are pfn..pfn+511 of the old huge frame, matching Linux's
     * in-place split. Accessed bits of the new PTEs start set (the data
     * was clearly in use).
     */
    void demote2M(Addr vaddr);

    /** Split a 1GB leaf into 512 2MB leaves (in place). */
    void demote1G(Addr vaddr);

    /** Remove the mapping (any size) covering vaddr, if present. */
    void unmap(Addr vaddr);

    /** Side-effect-free lookup. */
    Mapping lookup(Addr vaddr) const;

    /**
     * Hardware walk bookkeeping: descend to the leaf, setting accessed
     * bits at every visited level, and report what the walker saw.
     */
    struct WalkInfo
    {
        bool present = false;
        mem::PageSize size = mem::PageSize::Base4K;
        Pfn pfn = 0;
        bool pud_was_accessed = false; //!< A-bit state *before* this walk
        bool pmd_was_accessed = false; //!< (undefined for 1GB leaves)
        bool pte_was_accessed = false;
        unsigned levels = 0;           //!< entries read by a full walk
    };

    WalkInfo walk(Addr vaddr);

    /**
     * HawkEye-style scan: count PTEs with the accessed bit set within a
     * 2MB region. Returns 512 for a (accessed) huge leaf.
     */
    u32 countAccessed4K(Addr region_base) const;

    /** Clear accessed bits across a 2MB region (scanner reset). */
    void clearAccessed(Addr region_base);

    /** Re-point the PTE of vaddr at a new frame (page migration). */
    bool remapBase(Addr vaddr, Pfn new_pfn);

    /** Number of radix nodes allocated (tests/introspection). */
    u64 nodeCount() const { return node_count_; }

  private:
    struct Node;

    /**
     * 16-byte entry: pfn and the three status bits share one word, so
     * four entries fit a host cache line and a random PTE probe never
     * straddles two lines. 61 bits of pfn is far beyond any simulated
     * physical memory size.
     */
    struct Entry
    {
        Node *child = nullptr; //!< non-leaf: next level table
        u64 pfn : 61 = 0;
        u64 present : 1 = 0;
        u64 leaf : 1 = 0;      //!< huge leaf at PUD/PMD, or any PTE
        u64 accessed : 1 = 0;
    };

    struct Node
    {
        Entry entries[512];
    };

    static unsigned indexAt(Addr vaddr, Level level);

    Node *childOf(Entry &entry);
    void freeSubtree(Node *node, int depth);

    Node *root_;
    u64 node_count_ = 0;
};

} // namespace pccsim::pt
