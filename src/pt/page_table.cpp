#include "pt/page_table.hpp"

#include "util/log.hpp"

namespace pccsim::pt {

PageTable::PageTable()
{
    root_ = new Node();
    node_count_ = 1;
}

PageTable::~PageTable()
{
    freeSubtree(root_, 4);
}

void
PageTable::freeSubtree(Node *node, int depth)
{
    if (depth > 1) {
        for (auto &entry : node->entries)
            if (entry.child)
                freeSubtree(entry.child, depth - 1);
    }
    delete node;
    --node_count_;
}

unsigned
PageTable::indexAt(Addr vaddr, Level level)
{
    switch (level) {
      case Level::PGD: return (vaddr >> 39) & 0x1ff;
      case Level::PUD: return (vaddr >> 30) & 0x1ff;
      case Level::PMD: return (vaddr >> 21) & 0x1ff;
      case Level::PTE: return (vaddr >> 12) & 0x1ff;
    }
    return 0;
}

PageTable::Node *
PageTable::childOf(Entry &entry)
{
    if (!entry.child) {
        entry.child = new Node();
        entry.present = true;
        ++node_count_;
    }
    return entry.child;
}

void
PageTable::mapBase(Addr vaddr, Pfn pfn)
{
    Entry &pgd = root_->entries[indexAt(vaddr, Level::PGD)];
    Entry &pud = childOf(pgd)->entries[indexAt(vaddr, Level::PUD)];
    PCCSIM_ASSERT(!pud.leaf, "mapBase under a 1GB leaf");
    Entry &pmd = childOf(pud)->entries[indexAt(vaddr, Level::PMD)];
    PCCSIM_ASSERT(!pmd.leaf, "mapBase under a 2MB leaf");
    Entry &pte = childOf(pmd)->entries[indexAt(vaddr, Level::PTE)];
    pte.present = true;
    pte.leaf = true;
    pte.pfn = pfn;
    pte.accessed = false;
}

void
PageTable::mapHuge2M(Addr vaddr, Pfn pfn)
{
    PCCSIM_ASSERT(mem::isAligned(vaddr, mem::PageSize::Huge2M),
                  "mapHuge2M on unaligned vaddr");
    Entry &pgd = root_->entries[indexAt(vaddr, Level::PGD)];
    Entry &pud = childOf(pgd)->entries[indexAt(vaddr, Level::PUD)];
    PCCSIM_ASSERT(!pud.leaf, "mapHuge2M under a 1GB leaf");
    Entry &pmd = childOf(pud)->entries[indexAt(vaddr, Level::PMD)];
    if (pmd.child) {
        freeSubtree(pmd.child, 1);
        pmd.child = nullptr;
    }
    pmd.present = true;
    pmd.leaf = true;
    pmd.pfn = pfn;
    pmd.accessed = false;
}

void
PageTable::mapHuge1G(Addr vaddr, Pfn pfn)
{
    PCCSIM_ASSERT(mem::isAligned(vaddr, mem::PageSize::Huge1G),
                  "mapHuge1G on unaligned vaddr");
    Entry &pgd = root_->entries[indexAt(vaddr, Level::PGD)];
    Entry &pud = childOf(pgd)->entries[indexAt(vaddr, Level::PUD)];
    if (pud.child) {
        freeSubtree(pud.child, 2);
        pud.child = nullptr;
    }
    pud.present = true;
    pud.leaf = true;
    pud.pfn = pfn;
    pud.accessed = false;
}

void
PageTable::demote2M(Addr vaddr)
{
    PCCSIM_ASSERT(mem::isAligned(vaddr, mem::PageSize::Huge2M));
    Entry &pgd = root_->entries[indexAt(vaddr, Level::PGD)];
    PCCSIM_ASSERT(pgd.child);
    Entry &pud = pgd.child->entries[indexAt(vaddr, Level::PUD)];
    PCCSIM_ASSERT(pud.child && !pud.leaf);
    Entry &pmd = pud.child->entries[indexAt(vaddr, Level::PMD)];
    PCCSIM_ASSERT(pmd.present && pmd.leaf, "demote2M on non-huge mapping");

    const Pfn base_pfn = pmd.pfn;
    pmd.leaf = false;
    pmd.pfn = 0;
    Node *ptes = childOf(pmd);
    for (unsigned i = 0; i < 512; ++i) {
        Entry &pte = ptes->entries[i];
        pte.present = true;
        pte.leaf = true;
        pte.pfn = base_pfn + i;
        pte.accessed = true;
    }
}

void
PageTable::demote1G(Addr vaddr)
{
    PCCSIM_ASSERT(mem::isAligned(vaddr, mem::PageSize::Huge1G));
    Entry &pgd = root_->entries[indexAt(vaddr, Level::PGD)];
    PCCSIM_ASSERT(pgd.child);
    Entry &pud = pgd.child->entries[indexAt(vaddr, Level::PUD)];
    PCCSIM_ASSERT(pud.present && pud.leaf, "demote1G on non-1GB mapping");

    const Pfn base_pfn = pud.pfn;
    pud.leaf = false;
    pud.pfn = 0;
    Node *pmds = childOf(pud);
    for (unsigned i = 0; i < 512; ++i) {
        Entry &pmd = pmds->entries[i];
        pmd.present = true;
        pmd.leaf = true;
        pmd.pfn = base_pfn + i * mem::kPagesPer2M;
        pmd.accessed = true;
    }
}

void
PageTable::unmap(Addr vaddr)
{
    Entry &pgd = root_->entries[indexAt(vaddr, Level::PGD)];
    if (!pgd.child)
        return;
    Entry &pud = pgd.child->entries[indexAt(vaddr, Level::PUD)];
    if (pud.leaf) {
        pud.present = false;
        pud.leaf = false;
        return;
    }
    if (!pud.child)
        return;
    Entry &pmd = pud.child->entries[indexAt(vaddr, Level::PMD)];
    if (pmd.leaf) {
        pmd.present = false;
        pmd.leaf = false;
        return;
    }
    if (!pmd.child)
        return;
    Entry &pte = pmd.child->entries[indexAt(vaddr, Level::PTE)];
    pte.present = false;
    pte.leaf = false;
}

Mapping
PageTable::lookup(Addr vaddr) const
{
    const Entry &pgd = root_->entries[indexAt(vaddr, Level::PGD)];
    if (!pgd.child)
        return {};
    const Entry &pud = pgd.child->entries[indexAt(vaddr, Level::PUD)];
    if (pud.leaf && pud.present)
        return {true, mem::PageSize::Huge1G, pud.pfn};
    if (!pud.child)
        return {};
    const Entry &pmd = pud.child->entries[indexAt(vaddr, Level::PMD)];
    if (pmd.leaf && pmd.present)
        return {true, mem::PageSize::Huge2M, pmd.pfn};
    if (!pmd.child)
        return {};
    const Entry &pte = pmd.child->entries[indexAt(vaddr, Level::PTE)];
    if (pte.present)
        return {true, mem::PageSize::Base4K, pte.pfn};
    return {};
}

PageTable::WalkInfo
PageTable::walk(Addr vaddr)
{
    WalkInfo info;
    Entry &pgd = root_->entries[indexAt(vaddr, Level::PGD)];
    if (!pgd.child)
        return info;
    // Accessed bits are set conditionally throughout: walks re-touch
    // the same entries constantly, and skipping the redundant store
    // keeps the host cache line clean.
    if (!pgd.accessed)
        pgd.accessed = true;
    info.levels = 1;

    Entry &pud = pgd.child->entries[indexAt(vaddr, Level::PUD)];
    info.pud_was_accessed = pud.accessed;
    ++info.levels;
    if (pud.leaf && pud.present) {
        if (!pud.accessed)
            pud.accessed = true;
        info.present = true;
        info.size = mem::PageSize::Huge1G;
        info.pfn = pud.pfn;
        return info;
    }
    if (!pud.child)
        return info;
    if (!pud.accessed)
        pud.accessed = true;

    Entry &pmd = pud.child->entries[indexAt(vaddr, Level::PMD)];
    info.pmd_was_accessed = pmd.accessed;
    ++info.levels;
    if (pmd.leaf && pmd.present) {
        if (!pmd.accessed)
            pmd.accessed = true;
        info.present = true;
        info.size = mem::PageSize::Huge2M;
        info.pfn = pmd.pfn;
        return info;
    }
    if (!pmd.child)
        return info;
    if (!pmd.accessed)
        pmd.accessed = true;

    Entry &pte = pmd.child->entries[indexAt(vaddr, Level::PTE)];
    info.pte_was_accessed = pte.accessed;
    ++info.levels;
    if (pte.present) {
        if (!pte.accessed)
            pte.accessed = true;
        info.present = true;
        info.size = mem::PageSize::Base4K;
        info.pfn = pte.pfn;
    }
    return info;
}

u32
PageTable::countAccessed4K(Addr region_base) const
{
    const Entry &pgd = root_->entries[indexAt(region_base, Level::PGD)];
    if (!pgd.child)
        return 0;
    const Entry &pud = pgd.child->entries[indexAt(region_base, Level::PUD)];
    if (pud.leaf)
        return pud.accessed ? 512 : 0;
    if (!pud.child)
        return 0;
    const Entry &pmd =
        pud.child->entries[indexAt(region_base, Level::PMD)];
    if (pmd.leaf)
        return pmd.accessed ? 512 : 0;
    if (!pmd.child)
        return 0;
    u32 count = 0;
    for (const auto &pte : pmd.child->entries)
        count += (pte.present && pte.accessed) ? 1 : 0;
    return count;
}

void
PageTable::clearAccessed(Addr region_base)
{
    Entry &pgd = root_->entries[indexAt(region_base, Level::PGD)];
    if (!pgd.child)
        return;
    Entry &pud = pgd.child->entries[indexAt(region_base, Level::PUD)];
    if (pud.leaf || !pud.child) {
        pud.accessed = false;
        return;
    }
    Entry &pmd = pud.child->entries[indexAt(region_base, Level::PMD)];
    pmd.accessed = false;
    if (pmd.leaf || !pmd.child)
        return;
    for (auto &pte : pmd.child->entries)
        pte.accessed = false;
}

bool
PageTable::remapBase(Addr vaddr, Pfn new_pfn)
{
    Entry &pgd = root_->entries[indexAt(vaddr, Level::PGD)];
    if (!pgd.child)
        return false;
    Entry &pud = pgd.child->entries[indexAt(vaddr, Level::PUD)];
    if (pud.leaf || !pud.child)
        return false;
    Entry &pmd = pud.child->entries[indexAt(vaddr, Level::PMD)];
    if (pmd.leaf || !pmd.child)
        return false;
    Entry &pte = pmd.child->entries[indexAt(vaddr, Level::PTE)];
    if (!pte.present)
        return false;
    pte.pfn = new_pfn;
    return true;
}

} // namespace pccsim::pt
