/**
 * @file
 * Behavioural models of the paper's PARSEC and SPEC2017 workloads
 * (Table 1): canneal, dedup, omnetpp, xalancbmk, mcf.
 *
 * These generators reproduce each application's documented page-level
 * access-pattern *class* — footprint, working-set skew, and the mix of
 * streaming vs. pointer-chasing — which is what drives TLB behaviour.
 * They are not the original programs; see DESIGN.md (substitutions).
 * Targets, per Fig. 1 of the paper:
 *   canneal / omnetpp / xalancbmk : double-digit 4KB TLB miss rates,
 *                                   clear huge-page gains;
 *   dedup / mcf                   : cache-friendly or streaming, little
 *                                   TLB sensitivity.
 */

#pragma once

#include "util/rng.hpp"
#include "workloads/workload.hpp"

namespace pccsim::workloads {

/** Common scaffolding for single-lane synthetic suite workloads. */
class SuiteWorkloadBase : public Workload
{
  public:
    SuiteWorkloadBase(u64 footprint_bytes, u64 ops, u64 seed)
        : target_footprint_(footprint_bytes), ops_(ops), seed_(seed)
    {
    }

    u64 footprintBytes() const override { return footprint_; }

  protected:
    /** Init-phase first-touch; yields forwarded by the caller. */
    static Generator<BatchEnd> touchRange(Addr base, u64 bytes,
                                          AccessBuffer &buf,
                                          u64 stride = 64);

    u64 target_footprint_;
    u64 ops_;
    u64 seed_;
    u64 footprint_ = 0;
};

/**
 * canneal: simulated-annealing netlist router. Dominant pattern:
 * uniformly random swaps across a large element array plus short
 * pointer chases to each element's neighbors — the classic
 * TLB-hostile workload.
 */
class CannealWorkload : public SuiteWorkloadBase
{
  public:
    using SuiteWorkloadBase::SuiteWorkloadBase;
    std::string name() const override { return "canneal"; }
    void setup(os::Process &proc) override;
    Generator<BatchEnd>
    batchLane(u32 lane, u32 num_lanes, AccessBuffer &buf) override;

  private:
    Addr a_elements_ = 0;
    u64 num_elements_ = 0;
    static constexpr u64 kElementBytes = 64;
    static constexpr unsigned kNeighbors = 4;
};

/**
 * omnetpp: discrete-event network simulator. Pattern: a hot sequential
 * event ring plus Zipf-skewed random access to per-module state.
 */
class OmnetppWorkload : public SuiteWorkloadBase
{
  public:
    using SuiteWorkloadBase::SuiteWorkloadBase;
    std::string name() const override { return "omnetpp"; }
    void setup(os::Process &proc) override;
    Generator<BatchEnd>
    batchLane(u32 lane, u32 num_lanes, AccessBuffer &buf) override;

  private:
    Addr a_modules_ = 0;
    Addr a_events_ = 0;
    u64 num_modules_ = 0;
    u64 event_ring_bytes_ = 0;
    static constexpr u64 kModuleBytes = 256;
};

/**
 * xalancbmk: XSLT processor. Pattern: repeated traversals of a large
 * DOM node pool — pointer chasing with Zipf-popular subtree roots.
 */
class XalancWorkload : public SuiteWorkloadBase
{
  public:
    using SuiteWorkloadBase::SuiteWorkloadBase;
    std::string name() const override { return "xalancbmk"; }
    void setup(os::Process &proc) override;
    Generator<BatchEnd>
    batchLane(u32 lane, u32 num_lanes, AccessBuffer &buf) override;

  private:
    Addr a_nodes_ = 0;
    u64 num_nodes_ = 0;
    static constexpr u64 kNodeBytes = 96;
    static constexpr unsigned kChaseDepth = 12;
};

/**
 * dedup: pipelined compression. Pattern: streaming over a large input
 * buffer with lookups into a small, cache-resident hash table —
 * TLB-insensitive by construction (Fig. 1).
 */
class DedupWorkload : public SuiteWorkloadBase
{
  public:
    using SuiteWorkloadBase::SuiteWorkloadBase;
    std::string name() const override { return "dedup"; }
    void setup(os::Process &proc) override;
    Generator<BatchEnd>
    batchLane(u32 lane, u32 num_lanes, AccessBuffer &buf) override;

  private:
    Addr a_input_ = 0;
    Addr a_hash_ = 0;
    u64 input_bytes_ = 0;
    u64 hash_bytes_ = 0;
};

/**
 * mcf: network-simplex flow solver. Pattern: long sequential pricing
 * sweeps over the arc array with a minority of accesses to a modest
 * node array — large footprint but low TLB miss rate (Fig. 1).
 */
class McfWorkload : public SuiteWorkloadBase
{
  public:
    using SuiteWorkloadBase::SuiteWorkloadBase;
    std::string name() const override { return "mcf"; }
    void setup(os::Process &proc) override;
    Generator<BatchEnd>
    batchLane(u32 lane, u32 num_lanes, AccessBuffer &buf) override;

  private:
    Addr a_arcs_ = 0;
    Addr a_nodes_ = 0;
    u64 arc_bytes_ = 0;
    u64 node_bytes_ = 0;
    static constexpr u64 kArcBytes = 64;
};

} // namespace pccsim::workloads
