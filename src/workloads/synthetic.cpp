#include "workloads/synthetic.hpp"

#include "mem/paging.hpp"
#include "util/log.hpp"

namespace pccsim::workloads {

std::string
SyntheticWorkload::name() const
{
    switch (spec_.pattern) {
      case Pattern::Uniform: return "syn-uniform";
      case Pattern::Zipf: return "syn-zipf";
      case Pattern::Sequential: return "syn-seq";
      case Pattern::HotRegions: return "syn-hot";
      case Pattern::Spin: return "syn-spin";
    }
    return "syn";
}

void
SyntheticWorkload::setup(os::Process &proc)
{
    base_ = proc.mmap(spec_.footprint_bytes, name());
}

Generator<AccessOp>
SyntheticWorkload::lane(u32 lane, u32 num_lanes)
{
    PCCSIM_ASSERT(base_ != 0, "setup() must run before lane()");
    const u64 slice = spec_.footprint_bytes / num_lanes;
    const Addr lo = base_ + lane * slice;

    // Init: first-touch this lane's slice.
    for (u64 off = 0; off < slice; off += mem::kBytes4K)
        co_yield store(lo + off);
    co_yield barrier();

    Rng rng(spec_.seed + lane * 0x9e3779b9ull);
    const u64 ops = spec_.ops / num_lanes;

    switch (spec_.pattern) {
      case Pattern::Uniform: {
        for (u64 i = 0; i < ops; ++i)
            co_yield load(lo + (rng.below(slice) & ~7ull));
        break;
      }
      case Pattern::Zipf: {
        const u64 lines = slice / 64;
        ZipfSampler zipf(lines, 0.8);
        for (u64 i = 0; i < ops; ++i) {
            // Popularity is scattered across the slice so hot lines do
            // not cluster into a few pages.
            const u64 line = mix64(zipf.sample(rng)) % lines;
            co_yield load(lo + line * 64);
        }
        break;
      }
      case Pattern::Sequential: {
        u64 pos = 0;
        for (u64 i = 0; i < ops; ++i) {
            co_yield load(lo + pos);
            pos = (pos + 64) % slice;
        }
        break;
      }
      case Pattern::HotRegions: {
        const u64 regions = slice >> mem::kShift2M;
        const u64 hot = std::min<u64>(spec_.hot_regions, regions);
        PCCSIM_ASSERT(hot > 0, "hot-region pattern needs >= 1 region");
        u64 cold_pos = 0;
        for (u64 i = 0; i < ops; ++i) {
            if (rng.uniform() < spec_.hot_fraction) {
                // Uniform random within a uniformly chosen hot region.
                const u64 r = rng.below(hot);
                const u64 off = rng.below(mem::kBytes2M) & ~7ull;
                co_yield load(lo + (r << mem::kShift2M) + off);
            } else {
                co_yield load(lo + cold_pos);
                cold_pos = (cold_pos + 64) % slice;
            }
        }
        break;
      }
      case Pattern::Spin: {
        // Deliberately endless: the run only stops when the runner's
        // watchdog cancels it (or the process is killed).
        for (;;)
            co_yield load(lo);
      }
    }
}

} // namespace pccsim::workloads
