#include "workloads/synthetic.hpp"

#include "mem/paging.hpp"
#include "util/log.hpp"

namespace pccsim::workloads {

std::string
SyntheticWorkload::name() const
{
    switch (spec_.pattern) {
      case Pattern::Uniform: return "syn-uniform";
      case Pattern::Zipf: return "syn-zipf";
      case Pattern::Sequential: return "syn-seq";
      case Pattern::HotRegions: return "syn-hot";
      case Pattern::Spin: return "syn-spin";
    }
    return "syn";
}

void
SyntheticWorkload::setup(os::Process &proc)
{
    base_ = proc.mmap(spec_.footprint_bytes, name());
}

Generator<BatchEnd>
SyntheticWorkload::batchLane(u32 lane, u32 num_lanes, AccessBuffer &buf)
{
    PCCSIM_ASSERT(base_ != 0, "setup() must run before lane()");
    const u64 slice = spec_.footprint_bytes / num_lanes;
    const Addr lo = base_ + lane * slice;

    // Init: first-touch this lane's slice.
    for (u64 off = 0; off < slice; off += mem::kBytes4K)
        if (buf.pushStore(lo + off))
            co_yield BatchEnd::Ops;
    co_yield BatchEnd::Barrier;

    Rng rng(spec_.seed + lane * 0x9e3779b9ull);
    const u64 ops = spec_.ops / num_lanes;

    switch (spec_.pattern) {
      case Pattern::Uniform: {
        for (u64 i = 0; i < ops; ++i)
            if (buf.pushLoad(lo + (rng.below(slice) & ~7ull)))
                co_yield BatchEnd::Ops;
        break;
      }
      case Pattern::Zipf: {
        const u64 lines = slice / 64;
        ZipfSampler zipf(lines, 0.8);
        for (u64 i = 0; i < ops; ++i) {
            // Popularity is scattered across the slice so hot lines do
            // not cluster into a few pages.
            const u64 line = mix64(zipf.sample(rng)) % lines;
            if (buf.pushLoad(lo + line * 64))
                co_yield BatchEnd::Ops;
        }
        break;
      }
      case Pattern::Sequential: {
        u64 pos = 0;
        for (u64 i = 0; i < ops; ++i) {
            if (buf.pushLoad(lo + pos))
                co_yield BatchEnd::Ops;
            pos = (pos + 64) % slice;
        }
        break;
      }
      case Pattern::HotRegions: {
        const u64 regions = slice >> mem::kShift2M;
        const u64 hot = std::min<u64>(spec_.hot_regions, regions);
        PCCSIM_ASSERT(hot > 0, "hot-region pattern needs >= 1 region");
        u64 cold_pos = 0;
        for (u64 i = 0; i < ops; ++i) {
            if (rng.uniform() < spec_.hot_fraction) {
                // Uniform random within a uniformly chosen hot region.
                const u64 r = rng.below(hot);
                const u64 off = rng.below(mem::kBytes2M) & ~7ull;
                if (buf.pushLoad(lo + (r << mem::kShift2M) + off))
                    co_yield BatchEnd::Ops;
            } else {
                if (buf.pushLoad(lo + cold_pos))
                    co_yield BatchEnd::Ops;
                cold_pos = (cold_pos + 64) % slice;
            }
        }
        break;
      }
      case Pattern::Spin: {
        // Deliberately endless: the run only stops when the runner's
        // watchdog cancels it (or the process is killed).
        for (;;)
            if (buf.pushLoad(lo))
                co_yield BatchEnd::Ops;
      }
    }
}

} // namespace pccsim::workloads
