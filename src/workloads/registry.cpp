#include "workloads/registry.hpp"

#include <map>
#include <mutex>

#include <sstream>

#include "util/log.hpp"
#include "workloads/graph_workloads.hpp"
#include "workloads/suite_workloads.hpp"
#include "workloads/synthetic.hpp"

namespace pccsim::workloads {

ScaleParams
scaleParams(Scale scale)
{
    switch (scale) {
      case Scale::Ci:
        return {16, 8, 8ull << 20, 1'000'000, 2};
      case Scale::Small:
        return {18, 16, 48ull << 20, 4'000'000, 2};
      case Scale::Medium:
        return {20, 16, 192ull << 20, 16'000'000, 2};
      case Scale::Paper:
        return {23, 24, 800ull << 20, 64'000'000, 3};
    }
    return {16, 16, 32ull << 20, 2'000'000, 2};
}

Scale
scaleFromString(const std::string &name)
{
    if (name == "ci")
        return Scale::Ci;
    if (name == "small")
        return Scale::Small;
    if (name == "medium")
        return Scale::Medium;
    if (name == "paper")
        return Scale::Paper;
    fatal("unknown scale '", name, "' (ci|small|medium|paper)");
}

std::string
to_string(Scale scale)
{
    switch (scale) {
      case Scale::Ci: return "ci";
      case Scale::Small: return "small";
      case Scale::Medium: return "medium";
      case Scale::Paper: return "paper";
    }
    return "?";
}

const std::vector<std::string> &
allWorkloadNames()
{
    static const std::vector<std::string> names = {
        "bfs", "sssp", "pr", "canneal", "omnetpp",
        "xalancbmk", "dedup", "mcf"};
    return names;
}

const std::vector<std::string> &
graphWorkloadNames()
{
    static const std::vector<std::string> names = {"bfs", "sssp", "pr"};
    return names;
}

bool
isGraphWorkload(const std::string &name)
{
    return name == "bfs" || name == "sssp" || name == "pr";
}

namespace {

struct GraphKey
{
    unsigned scale;
    unsigned degree;
    graph::NetworkKind kind;
    bool weighted;
    bool sorted;
    u64 seed;

    bool
    operator<(const GraphKey &other) const
    {
        return std::tie(scale, degree, kind, weighted, sorted, seed) <
               std::tie(other.scale, other.degree, other.kind,
                        other.weighted, other.sorted, other.seed);
    }
};

/** Approximate retained bytes of a CSR graph (for the LRU budget). */
u64
graphBytes(const graph::CsrGraph &g)
{
    return (static_cast<u64>(g.numNodes()) + 1) * 8 + g.numEdges() * 4 +
           (g.hasWeights() ? g.numEdges() * 4 : 0);
}

std::shared_ptr<const graph::CsrGraph>
cachedGraph(const WorkloadSpec &spec, bool weighted)
{
    static std::map<GraphKey, std::weak_ptr<const graph::CsrGraph>> cache;
    // Strong refs to recently used graphs: the weak map alone lets a
    // graph die between back-to-back serial runs, so a harness
    // sweeping configurations regenerates the same input dozens of
    // times. A byte budget bounds retention (paper-scale graphs run to
    // hundreds of MB); the newest graph is always kept.
    static std::vector<std::pair<GraphKey,
        std::shared_ptr<const graph::CsrGraph>>> recent;
    static constexpr u64 kRecentBudgetBytes = 512ull << 20;
    static std::mutex mutex;

    const ScaleParams params = scaleParams(spec.scale);
    const GraphKey key{params.graph_scale, params.avg_degree,
                       spec.network,      weighted,
                       spec.dbg_sorted,   spec.seed};

    std::lock_guard<std::mutex> lock(mutex);

    const auto remember =
        [&key](const std::shared_ptr<const graph::CsrGraph> &g) {
            for (auto it = recent.begin(); it != recent.end(); ++it) {
                if (!(it->first < key) && !(key < it->first)) {
                    recent.erase(it);
                    break;
                }
            }
            recent.emplace_back(key, g);
            u64 total = 0;
            for (const auto &[k, kept] : recent)
                total += graphBytes(*kept);
            while (recent.size() > 1 && total > kRecentBudgetBytes) {
                total -= graphBytes(*recent.front().second);
                recent.erase(recent.begin());
            }
        };

    if (auto hit = cache[key].lock()) {
        remember(hit);
        return hit;
    }

    graph::GraphSpec gspec;
    gspec.scale = params.graph_scale;
    gspec.avg_degree = params.avg_degree;
    gspec.kind = spec.network;
    gspec.weighted = weighted;
    gspec.seed = spec.seed;
    auto built = graph::generate(gspec);
    if (spec.dbg_sorted)
        built = graph::dbgReorder(built);
    auto shared =
        std::make_shared<const graph::CsrGraph>(std::move(built));
    cache[key] = shared;
    remember(shared);
    return shared;
}

/**
 * Parse "syn:<pattern>:<footprintMB>:<ops>:<hot_regions>" (fields after
 * the pattern optional, later fields require earlier ones). Patterns:
 * uniform | zipf | seq | hot | spin. Used by the fuzz harness to name
 * fully-parameterized synthetic workloads inside a spec string.
 */
WorkloadPtr
makeSynthetic(const WorkloadSpec &spec)
{
    std::istringstream is(spec.name.substr(4));
    std::string field;
    SyntheticSpec syn;
    syn.seed = spec.seed;

    if (!std::getline(is, field, ':'))
        fatal("synthetic workload '", spec.name, "': missing pattern");
    if (field == "uniform")
        syn.pattern = Pattern::Uniform;
    else if (field == "zipf")
        syn.pattern = Pattern::Zipf;
    else if (field == "seq")
        syn.pattern = Pattern::Sequential;
    else if (field == "hot")
        syn.pattern = Pattern::HotRegions;
    else if (field == "spin")
        syn.pattern = Pattern::Spin;
    else
        fatal("synthetic workload '", spec.name, "': unknown pattern '",
              field, "' (uniform|zipf|seq|hot|spin)");

    const auto nextU64 = [&](const char *what, u64 &out) {
        if (!std::getline(is, field, ':'))
            return false;
        char *end = nullptr;
        const u64 v = std::strtoull(field.c_str(), &end, 10);
        if (end != field.c_str() + field.size() || field.empty())
            fatal("synthetic workload '", spec.name, "': bad ", what,
                  " '", field, "'");
        out = v;
        return true;
    };
    u64 mb = 0;
    if (nextU64("footprint", mb)) {
        if (mb == 0)
            fatal("synthetic workload '", spec.name,
                  "': footprint must be >= 1 MB");
        syn.footprint_bytes = mb << 20;
    }
    nextU64("ops", syn.ops);
    nextU64("hot_regions", syn.hot_regions);
    if (std::getline(is, field, ':'))
        fatal("synthetic workload '", spec.name, "': trailing field '",
              field, "'");
    return std::make_unique<SyntheticWorkload>(syn);
}

} // namespace

WorkloadPtr
makeWorkload(const WorkloadSpec &spec)
{
    if (spec.name.rfind("syn:", 0) == 0)
        return makeSynthetic(spec);
    const ScaleParams params = scaleParams(spec.scale);
    if (spec.name == "bfs")
        return std::make_unique<BfsWorkload>(cachedGraph(spec, false));
    if (spec.name == "sssp")
        return std::make_unique<SsspWorkload>(cachedGraph(spec, true));
    if (spec.name == "pr") {
        return std::make_unique<PageRankWorkload>(
            cachedGraph(spec, false), params.pr_iterations);
    }
    if (spec.name == "canneal") {
        return std::make_unique<CannealWorkload>(
            params.suite_footprint, params.suite_ops / 4, spec.seed);
    }
    if (spec.name == "omnetpp") {
        return std::make_unique<OmnetppWorkload>(
            params.suite_footprint / 2, params.suite_ops, spec.seed);
    }
    if (spec.name == "xalancbmk") {
        return std::make_unique<XalancWorkload>(
            params.suite_footprint / 2, params.suite_ops, spec.seed);
    }
    if (spec.name == "dedup") {
        return std::make_unique<DedupWorkload>(
            params.suite_footprint, params.suite_ops * 2, spec.seed);
    }
    if (spec.name == "mcf") {
        return std::make_unique<McfWorkload>(
            params.suite_footprint, params.suite_ops * 2, spec.seed);
    }
    fatal("unknown workload '", spec.name, "'");
}

} // namespace pccsim::workloads
