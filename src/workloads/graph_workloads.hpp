/**
 * @file
 * GAP-style graph workloads: Breadth-First Search, Single-Source
 * Shortest Paths (bucketed delta-stepping), and PageRank (pull form).
 *
 * Each kernel runs for real on a host-side CSR graph while mirroring
 * every load/store of its simulated arrays into the process heap. The
 * per-vertex property arrays accessed through neighbor indices are the
 * irregular, high-reuse data the paper identifies as HUBs; the CSR
 * offset/target arrays are streamed and thus mostly TLB-friendly.
 */

#pragma once

#include <memory>
#include <vector>

#include "graph/csr.hpp"
#include "workloads/workload.hpp"

namespace pccsim::workloads {

/** Shared setup/layout logic for the graph kernels. */
class GraphWorkloadBase : public Workload
{
  public:
    explicit GraphWorkloadBase(std::shared_ptr<const graph::CsrGraph> g)
        : graph_(std::move(g))
    {
    }

    u64 footprintBytes() const override { return footprint_; }
    u32 maxLanes() const override { return 16; }

  protected:
    /**
     * Sequentially touch [base, base+bytes) with stores (init phase),
     * pushed into buf. Callers forward its yields:
     * `while (t.next()) co_yield t.value();`.
     */
    static Generator<BatchEnd> touchRange(Addr base, u64 bytes,
                                          AccessBuffer &buf,
                                          u64 stride = 64);

    /** This lane's contiguous vertex range under num_lanes lanes. */
    std::pair<graph::NodeId, graph::NodeId>
    laneRange(u32 lane, u32 num_lanes) const
    {
        const graph::NodeId n = graph_->numNodes();
        const graph::NodeId lo =
            static_cast<graph::NodeId>(u64(n) * lane / num_lanes);
        const graph::NodeId hi =
            static_cast<graph::NodeId>(u64(n) * (lane + 1) / num_lanes);
        return {lo, hi};
    }

    // Simulated addresses of CSR members, assigned in setup().
    Addr a_offsets_ = 0;   //!< u64 per node (+1)
    Addr a_targets_ = 0;   //!< u32 per edge
    Addr a_weights_ = 0;   //!< u32 per edge (weighted graphs only)

    Addr
    offsetAddr(graph::NodeId v) const
    {
        return a_offsets_ + static_cast<u64>(v) * sizeof(u64);
    }

    Addr
    targetAddr(u64 edge_index) const
    {
        return a_targets_ + edge_index * sizeof(graph::NodeId);
    }

    Addr
    weightAddr(u64 edge_index) const
    {
        return a_weights_ + edge_index * sizeof(u32);
    }

    /** mmap the CSR arrays; returns bytes allocated. */
    u64 setupCsr(os::Process &proc, bool weighted);

    std::shared_ptr<const graph::CsrGraph> graph_;
    u64 footprint_ = 0;
};

/** Top-down breadth-first search from a high-degree source. */
class BfsWorkload : public GraphWorkloadBase
{
  public:
    explicit BfsWorkload(std::shared_ptr<const graph::CsrGraph> g)
        : GraphWorkloadBase(std::move(g))
    {
    }

    std::string name() const override { return "bfs"; }
    void setup(os::Process &proc) override;
    Generator<BatchEnd>
    batchLane(u32 lane, u32 num_lanes, AccessBuffer &buf) override;

  private:
    Addr a_parent_ = 0;  //!< u32 per node — the irregular HUB array
    Addr a_queue_ = 0;   //!< u32 per node, frontier storage
    // Host-side shared state for multi-lane runs.
    std::vector<graph::NodeId> frontier_;
    std::vector<std::vector<graph::NodeId>> next_;
    std::vector<u32> parent_;
    u32 lanes_ready_ = 0;
};

/** Delta-stepping SSSP over uniformly weighted edges. */
class SsspWorkload : public GraphWorkloadBase
{
  public:
    SsspWorkload(std::shared_ptr<const graph::CsrGraph> g, u32 delta = 32)
        : GraphWorkloadBase(std::move(g)), delta_(delta)
    {
    }

    std::string name() const override { return "sssp"; }
    void setup(os::Process &proc) override;
    Generator<BatchEnd>
    batchLane(u32 lane, u32 num_lanes, AccessBuffer &buf) override;

  private:
    u32 delta_;
    Addr a_dist_ = 0; //!< u32 per node — irregular HUB array
    std::vector<u32> dist_;
    std::vector<std::vector<graph::NodeId>> buckets_;
    std::vector<std::vector<graph::NodeId>> next_;
    u64 current_bucket_ = 0;
    u32 lanes_ready_ = 0;
};

/** Pull-based PageRank for a fixed number of iterations. */
class PageRankWorkload : public GraphWorkloadBase
{
  public:
    PageRankWorkload(std::shared_ptr<const graph::CsrGraph> g,
                     u32 iterations = 3)
        : GraphWorkloadBase(std::move(g)), iterations_(iterations)
    {
    }

    std::string name() const override { return "pr"; }
    void setup(os::Process &proc) override;
    Generator<BatchEnd>
    batchLane(u32 lane, u32 num_lanes, AccessBuffer &buf) override;

  private:
    u32 iterations_;
    Addr a_contrib_ = 0; //!< f64 per node — irregular HUB array
    Addr a_rank_ = 0;    //!< f64 per node, written sequentially
    std::vector<double> contrib_;
    std::vector<double> rank_;
};

} // namespace pccsim::workloads
