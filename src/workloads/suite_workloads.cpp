#include "workloads/suite_workloads.hpp"

#include "util/log.hpp"

namespace pccsim::workloads {

Generator<BatchEnd>
SuiteWorkloadBase::touchRange(Addr base, u64 bytes, AccessBuffer &buf,
                              u64 stride)
{
    for (u64 off = 0; off < bytes; off += stride)
        if (buf.pushStore(base + off))
            co_yield BatchEnd::Ops;
}

// -------------------------------------------------------------- canneal

void
CannealWorkload::setup(os::Process &proc)
{
    num_elements_ = target_footprint_ / kElementBytes;
    a_elements_ = proc.mmap(num_elements_ * kElementBytes,
                            "canneal.elements");
    footprint_ = num_elements_ * kElementBytes;
}

Generator<BatchEnd>
CannealWorkload::batchLane(u32 lane, u32 num_lanes, AccessBuffer &buf)
{
    PCCSIM_ASSERT(lane == 0 && num_lanes == 1,
                  "canneal model is single-threaded");
    auto init = touchRange(a_elements_, num_elements_ * kElementBytes,
                           buf);
    while (init.next())
        co_yield init.value();
    co_yield BatchEnd::Barrier;

    Rng rng(seed_);
    for (u64 op = 0; op < ops_; ++op) {
        // One annealing move: pick two random elements, read both and
        // each one's neighbor elements, then swap (two stores).
        const u64 a = rng.below(num_elements_);
        const u64 b = rng.below(num_elements_);
        if (buf.pushLoad(a_elements_ + a * kElementBytes))
            co_yield BatchEnd::Ops;
        if (buf.pushLoad(a_elements_ + b * kElementBytes))
            co_yield BatchEnd::Ops;
        for (unsigned i = 0; i < kNeighbors; ++i) {
            const u64 na = mix64(a * kNeighbors + i) % num_elements_;
            const u64 nb = mix64(b * kNeighbors + i + 0x9e37ull) %
                           num_elements_;
            if (buf.pushLoad(a_elements_ + na * kElementBytes))
                co_yield BatchEnd::Ops;
            if (buf.pushLoad(a_elements_ + nb * kElementBytes))
                co_yield BatchEnd::Ops;
        }
        if (buf.pushStore(a_elements_ + a * kElementBytes))
            co_yield BatchEnd::Ops;
        if (buf.pushStore(a_elements_ + b * kElementBytes))
            co_yield BatchEnd::Ops;
    }
}

// -------------------------------------------------------------- omnetpp

void
OmnetppWorkload::setup(os::Process &proc)
{
    // ~7/8 of the footprint is module state, 1/8 the event ring.
    num_modules_ = (target_footprint_ * 7 / 8) / kModuleBytes;
    event_ring_bytes_ = target_footprint_ / 8;
    a_modules_ = proc.mmap(num_modules_ * kModuleBytes,
                           "omnetpp.modules");
    a_events_ = proc.mmap(event_ring_bytes_, "omnetpp.events");
    footprint_ = num_modules_ * kModuleBytes + event_ring_bytes_;
}

Generator<BatchEnd>
OmnetppWorkload::batchLane(u32 lane, u32 num_lanes, AccessBuffer &buf)
{
    PCCSIM_ASSERT(lane == 0 && num_lanes == 1);
    auto init1 = touchRange(a_modules_, num_modules_ * kModuleBytes,
                            buf);
    while (init1.next())
        co_yield init1.value();
    auto init2 = touchRange(a_events_, event_ring_bytes_, buf);
    while (init2.next())
        co_yield init2.value();
    co_yield BatchEnd::Barrier;

    Rng rng(seed_);
    ZipfSampler zipf(num_modules_, 0.7);
    u64 ring_pos = 0;
    for (u64 op = 0; op < ops_; ++op) {
        // Pop an event (sequential ring), dispatch to a Zipf-popular
        // module (3 accesses to its state), push a follow-up event.
        if (buf.pushLoad(a_events_ + ring_pos))
            co_yield BatchEnd::Ops;
        const u64 m = zipf.sample(rng);
        const Addr mod = a_modules_ + m * kModuleBytes;
        if (buf.pushLoad(mod))
            co_yield BatchEnd::Ops;
        if (buf.pushLoad(mod + 64))
            co_yield BatchEnd::Ops;
        if (buf.pushStore(mod + 128))
            co_yield BatchEnd::Ops;
        ring_pos = (ring_pos + 64) % event_ring_bytes_;
        if (buf.pushStore(a_events_ + ring_pos))
            co_yield BatchEnd::Ops;
    }
}

// ------------------------------------------------------------ xalancbmk

void
XalancWorkload::setup(os::Process &proc)
{
    num_nodes_ = target_footprint_ / kNodeBytes;
    a_nodes_ = proc.mmap(num_nodes_ * kNodeBytes, "xalan.nodes");
    footprint_ = num_nodes_ * kNodeBytes;
}

Generator<BatchEnd>
XalancWorkload::batchLane(u32 lane, u32 num_lanes, AccessBuffer &buf)
{
    PCCSIM_ASSERT(lane == 0 && num_lanes == 1);
    auto init = touchRange(a_nodes_, num_nodes_ * kNodeBytes, buf);
    while (init.next())
        co_yield init.value();
    co_yield BatchEnd::Barrier;

    Rng rng(seed_);
    ZipfSampler zipf(num_nodes_, 0.6);
    const u64 chases = ops_ / kChaseDepth;
    for (u64 t = 0; t < chases; ++t) {
        // Descend from a Zipf-popular subtree root; each hop's target
        // is a deterministic hash of the current node (a fixed tree).
        u64 node = zipf.sample(rng);
        for (unsigned d = 0; d < kChaseDepth; ++d) {
            if (buf.pushLoad(a_nodes_ + node * kNodeBytes))
                co_yield BatchEnd::Ops;
            node = mix64(node * kChaseDepth + d) % num_nodes_;
        }
    }
}

// ---------------------------------------------------------------- dedup

void
DedupWorkload::setup(os::Process &proc)
{
    input_bytes_ = target_footprint_ * 15 / 16;
    hash_bytes_ = target_footprint_ / 16;
    a_input_ = proc.mmap(input_bytes_, "dedup.input");
    a_hash_ = proc.mmap(hash_bytes_, "dedup.hash");
    footprint_ = input_bytes_ + hash_bytes_;
}

Generator<BatchEnd>
DedupWorkload::batchLane(u32 lane, u32 num_lanes, AccessBuffer &buf)
{
    PCCSIM_ASSERT(lane == 0 && num_lanes == 1);
    auto init1 = touchRange(a_input_, input_bytes_, buf);
    while (init1.next())
        co_yield init1.value();
    auto init2 = touchRange(a_hash_, hash_bytes_, buf);
    while (init2.next())
        co_yield init2.value();
    co_yield BatchEnd::Barrier;

    Rng rng(seed_);
    u64 pos = 0;
    const u64 buckets = hash_bytes_ / 64;
    // Duplicate-heavy inputs hit the same few buckets over and over:
    // the hot part of the table stays cache- and TLB-resident, which
    // is what makes dedup TLB-insensitive in the paper's Fig. 1.
    ZipfSampler zipf(buckets, 1.05);
    for (u64 op = 0; op < ops_; ++op) {
        // Chunking: stream the input; every 8th chunk consults the
        // hash table.
        if (buf.pushLoad(a_input_ + pos))
            co_yield BatchEnd::Ops;
        pos = (pos + 64) % input_bytes_;
        if ((op & 7) == 0) {
            const u64 bucket = zipf.sample(rng);
            if (buf.pushLoad(a_hash_ + bucket * 64))
                co_yield BatchEnd::Ops;
            if (buf.pushStore(a_hash_ + bucket * 64))
                co_yield BatchEnd::Ops;
        }
    }
}

// ------------------------------------------------------------------ mcf

void
McfWorkload::setup(os::Process &proc)
{
    arc_bytes_ = target_footprint_ * 7 / 8;
    node_bytes_ = target_footprint_ / 8;
    a_arcs_ = proc.mmap(arc_bytes_, "mcf.arcs");
    a_nodes_ = proc.mmap(node_bytes_, "mcf.nodes");
    footprint_ = arc_bytes_ + node_bytes_;
}

Generator<BatchEnd>
McfWorkload::batchLane(u32 lane, u32 num_lanes, AccessBuffer &buf)
{
    PCCSIM_ASSERT(lane == 0 && num_lanes == 1);
    auto init1 = touchRange(a_arcs_, arc_bytes_, buf);
    while (init1.next())
        co_yield init1.value();
    auto init2 = touchRange(a_nodes_, node_bytes_, buf);
    while (init2.next())
        co_yield init2.value();
    co_yield BatchEnd::Barrier;

    Rng rng(seed_);
    const u64 arcs = arc_bytes_ / kArcBytes;
    const u64 nodes = node_bytes_ / 64;
    // The simplex basis tree concentrates node-record activity near
    // the root: skewed, compact hot set (mcf is cache-optimized and
    // shows little TLB sensitivity in Fig. 1).
    ZipfSampler zipf(nodes, 1.0);
    u64 arc = 0;
    for (u64 op = 0; op < ops_; ++op) {
        // Pricing sweep: sequential arc scan; ~1 in 16 arcs touches
        // the endpoints' node records.
        if (buf.pushLoad(a_arcs_ + arc * kArcBytes))
            co_yield BatchEnd::Ops;
        if ((op & 15) == 0) {
            if (buf.pushLoad(a_nodes_ + zipf.sample(rng) * 64))
                co_yield BatchEnd::Ops;
            if (buf.pushStore(a_nodes_ + zipf.sample(rng) * 64))
                co_yield BatchEnd::Ops;
        }
        arc = (arc + 1) % arcs;
    }
}

} // namespace pccsim::workloads
