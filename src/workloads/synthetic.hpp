/**
 * @file
 * Controlled synthetic access patterns for sensitivity studies and
 * unit/ablation tests: uniform random, Zipf, sequential stride, and a
 * hot-set pattern with an exact number of hot 2MB regions (used by the
 * Fig. 6 PCC-size sweep to pin the plateau at a known region count).
 */

#pragma once

#include "util/rng.hpp"
#include "workloads/workload.hpp"

namespace pccsim::workloads {

enum class Pattern : u8
{
    Uniform = 0,   //!< uniform random over the whole footprint
    Zipf,          //!< skewed random (s = 0.8)
    Sequential,    //!< streaming at 64B stride
    HotRegions,    //!< uniform random over `hot_regions` 2MB regions,
                   //!< streaming over the rest
    Spin,          //!< infinite loop over one line; never terminates.
                   //!< Test-only: exercises the runner's watchdog
                   //!< (`ops` is ignored).
};

struct SyntheticSpec
{
    Pattern pattern = Pattern::Uniform;
    u64 footprint_bytes = 64ull << 20;
    u64 ops = 4'000'000;
    u64 hot_regions = 128;  //!< HotRegions only
    double hot_fraction = 0.9; //!< accesses hitting the hot set
    u64 seed = 1;
};

class SyntheticWorkload : public Workload
{
  public:
    explicit SyntheticWorkload(SyntheticSpec spec) : spec_(spec) {}

    std::string name() const override;
    void setup(os::Process &proc) override;
    u64 footprintBytes() const override { return spec_.footprint_bytes; }
    Generator<BatchEnd>
    batchLane(u32 lane, u32 num_lanes, AccessBuffer &buf) override;
    u32 maxLanes() const override { return 16; }

    const SyntheticSpec &spec() const { return spec_; }

  private:
    SyntheticSpec spec_;
    Addr base_ = 0;
};

} // namespace pccsim::workloads
