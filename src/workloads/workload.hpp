/**
 * @file
 * Workload interface: programs that allocate simulated memory and emit
 * a deterministic stream of memory accesses per lane (thread).
 *
 * A workload keeps its real data host-side; only the *addresses* of a
 * run are simulated, mirrored into the process heap allocated during
 * setup(). Every lane begins with an initialization phase that touches
 * its slice of the arrays sequentially — modelling program load/init
 * and establishing first-touch order (which greedy THP keys off).
 *
 * Lanes emit *batches*: a lane fills a caller-provided AccessBuffer
 * (structure-of-arrays: one address array, one kind array) and yields
 * once per full buffer or at stream events (barrier, end), instead of
 * suspending the coroutine once per access. The engine then consumes
 * the buffer in a tight loop. The op stream is identical to the old
 * one-AccessOp-per-yield protocol by construction — batching changes
 * only how many ops cross the coroutine boundary per suspend.
 */

#pragma once

#include <memory>
#include <string>
#include <vector>

#include "os/process.hpp"
#include "util/generator.hpp"
#include "util/log.hpp"
#include "util/types.hpp"

namespace pccsim::workloads {

/** One simulated operation yielded by a workload lane. */
enum class OpKind : u8
{
    Load = 0,
    Store = 1,
    /** Synchronization point: the lane must wait for all lanes. */
    Barrier = 2,
};

struct AccessOp
{
    Addr addr = 0;
    OpKind kind = OpKind::Load;
};

inline AccessOp
load(Addr addr)
{
    return {addr, OpKind::Load};
}

inline AccessOp
store(Addr addr)
{
    return {addr, OpKind::Store};
}

inline AccessOp
barrier()
{
    return {0, OpKind::Barrier};
}

/** Why a lane suspended back to the engine. */
enum class BatchEnd : u8
{
    /** Buffer filled (or flushed); consume ops and resume the lane. */
    Ops = 0,
    /** All buffered ops precede a barrier the lane must now wait at. */
    Barrier = 1,
};

/**
 * Reusable structure-of-arrays op buffer shared between one lane and
 * the engine. The lane pushes until full; the engine drains and
 * clears. Addresses and kinds live in separate contiguous arrays so
 * the consuming loop streams addresses without striding over kinds.
 */
class AccessBuffer
{
  public:
    explicit AccessBuffer(u32 capacity)
        : capacity_(capacity), addrs_(capacity), kinds_(capacity)
    {
        PCCSIM_ASSERT(capacity > 0);
    }

    /** True when the buffer is full after the push (time to yield). */
    bool
    pushLoad(Addr addr)
    {
        addrs_[size_] = addr;
        kinds_[size_] = static_cast<u8>(OpKind::Load);
        return ++size_ == capacity_;
    }

    /** True when the buffer is full after the push (time to yield). */
    bool
    pushStore(Addr addr)
    {
        addrs_[size_] = addr;
        kinds_[size_] = static_cast<u8>(OpKind::Store);
        return ++size_ == capacity_;
    }

    u32 size() const { return size_; }
    u32 capacity() const { return capacity_; }
    bool empty() const { return size_ == 0; }
    const Addr *addrs() const { return addrs_.data(); }
    const u8 *kinds() const { return kinds_.data(); }

    /** Engine side: mark the buffer consumed. */
    void clear() { size_ = 0; }

  private:
    u32 capacity_;
    u32 size_ = 0;
    std::vector<Addr> addrs_; //!< SoA: one address per op
    std::vector<u8> kinds_;   //!< SoA: OpKind per op (Load/Store only)
};

class Workload
{
  public:
    virtual ~Workload() = default;

    virtual std::string name() const = 0;

    /** Allocate simulated arrays in the process heap. Called once. */
    virtual void setup(os::Process &proc) = 0;

    /** Total simulated bytes allocated by setup(). */
    virtual u64 footprintBytes() const = 0;

    /**
     * The access stream of one lane, emitted in batches into `buf`.
     *
     * Protocol: the lane pushes ops into `buf`; when a push reports
     * the buffer full, the lane `co_yield BatchEnd::Ops`. At a
     * synchronization point it yields any buffered ops implicitly and
     * `co_yield BatchEnd::Barrier` (ops already in the buffer precede
     * the barrier). On return, any residual buffered ops are final.
     * After every yield the engine has drained and cleared `buf`.
     *
     * Lanes partition the work; lane ids are [0, num_lanes).
     * Single-threaded workloads support only num_lanes == 1.
     */
    virtual Generator<BatchEnd>
    batchLane(u32 lane, u32 num_lanes, AccessBuffer &buf) = 0;

    /**
     * Compatibility adapter: the same stream, one AccessOp per yield.
     *
     * Drives batchLane() with a private buffer and re-emits each
     * buffered op individually, with a Barrier op at each
     * BatchEnd::Barrier. Produces exactly the op sequence batchLane()
     * pushed, so engines and tests written against the scalar
     * protocol keep observing the identical stream.
     */
    Generator<AccessOp>
    lane(u32 lane, u32 num_lanes)
    {
        // The buffer must outlive every resume of the inner generator:
        // keep it on the adapter coroutine's own frame.
        AccessBuffer buf(kAdapterBatch);
        auto gen = batchLane(lane, num_lanes, buf);
        while (gen.next()) {
            const BatchEnd end = gen.value();
            for (u32 i = 0; i < buf.size(); ++i)
                co_yield AccessOp{buf.addrs()[i],
                                  static_cast<OpKind>(buf.kinds()[i])};
            buf.clear();
            if (end == BatchEnd::Barrier)
                co_yield barrier();
        }
        for (u32 i = 0; i < buf.size(); ++i)
            co_yield AccessOp{buf.addrs()[i],
                              static_cast<OpKind>(buf.kinds()[i])};
        buf.clear();
    }

    /** Largest lane count the workload can be split into. */
    virtual u32 maxLanes() const { return 1; }

  private:
    /** Buffer size for the per-op adapter; modest, it only batches
        between coroutine hops, not engine scheduling. */
    static constexpr u32 kAdapterBatch = 64;
};

using WorkloadPtr = std::unique_ptr<Workload>;

} // namespace pccsim::workloads
