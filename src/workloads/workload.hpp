/**
 * @file
 * Workload interface: programs that allocate simulated memory and emit
 * a deterministic stream of memory accesses per lane (thread).
 *
 * A workload keeps its real data host-side; only the *addresses* of a
 * run are simulated, mirrored into the process heap allocated during
 * setup(). Every lane begins with an initialization phase that touches
 * its slice of the arrays sequentially — modelling program load/init
 * and establishing first-touch order (which greedy THP keys off).
 */

#pragma once

#include <memory>
#include <string>

#include "os/process.hpp"
#include "util/generator.hpp"
#include "util/types.hpp"

namespace pccsim::workloads {

/** One simulated operation yielded by a workload lane. */
enum class OpKind : u8
{
    Load = 0,
    Store = 1,
    /** Synchronization point: the lane must wait for all lanes. */
    Barrier = 2,
};

struct AccessOp
{
    Addr addr = 0;
    OpKind kind = OpKind::Load;
};

inline AccessOp
load(Addr addr)
{
    return {addr, OpKind::Load};
}

inline AccessOp
store(Addr addr)
{
    return {addr, OpKind::Store};
}

inline AccessOp
barrier()
{
    return {0, OpKind::Barrier};
}

class Workload
{
  public:
    virtual ~Workload() = default;

    virtual std::string name() const = 0;

    /** Allocate simulated arrays in the process heap. Called once. */
    virtual void setup(os::Process &proc) = 0;

    /** Total simulated bytes allocated by setup(). */
    virtual u64 footprintBytes() const = 0;

    /**
     * The access stream of one lane. Lanes partition the work; lane
     * ids are [0, num_lanes). Single-threaded workloads support only
     * num_lanes == 1.
     */
    virtual Generator<AccessOp> lane(u32 lane, u32 num_lanes) = 0;

    /** Largest lane count the workload can be split into. */
    virtual u32 maxLanes() const { return 1; }
};

using WorkloadPtr = std::unique_ptr<Workload>;

} // namespace pccsim::workloads
