/**
 * @file
 * Workload factory and scale profiles.
 *
 * The paper evaluates eight applications (Table 1). This registry
 * builds any of them by name at one of three scales:
 *
 *  - ci:     seconds-fast inputs for unit/integration tests;
 *  - small:  benchmark defaults, preserving footprint >> TLB coverage
 *            at the `scaled` TLB geometry;
 *  - medium: closer to paper ratios; minutes per run;
 *  - paper:  Table 1-sized inputs (offline only).
 */

#pragma once

#include <memory>
#include <string>
#include <vector>

#include "graph/generators.hpp"
#include "workloads/workload.hpp"

namespace pccsim::workloads {

enum class Scale : u8
{
    Ci = 0,
    Small,
    Medium,
    Paper,
};

/** Per-scale workload sizing. */
struct ScaleParams
{
    unsigned graph_scale;   //!< log2 nodes of graph inputs
    unsigned avg_degree;    //!< average directed degree
    u64 suite_footprint;    //!< bytes for the PARSEC/SPEC models
    u64 suite_ops;          //!< main-phase operations for those models
    u32 pr_iterations;
};

ScaleParams scaleParams(Scale scale);
Scale scaleFromString(const std::string &name);
std::string to_string(Scale scale);

/** The eight application names of Table 1. */
const std::vector<std::string> &allWorkloadNames();

/** The three graph kernels only. */
const std::vector<std::string> &graphWorkloadNames();

struct WorkloadSpec
{
    std::string name = "bfs";              //!< one of allWorkloadNames()
    Scale scale = Scale::Small;
    graph::NetworkKind network = graph::NetworkKind::Kronecker;
    bool dbg_sorted = false;               //!< DBG-reordered input
    u64 seed = 42;
};

/**
 * Build a workload. Graph inputs are cached per (spec) within a
 * process so utility-curve sweeps do not regenerate the graph.
 */
WorkloadPtr makeWorkload(const WorkloadSpec &spec);

/** True if the named workload is one of the graph kernels. */
bool isGraphWorkload(const std::string &name);

} // namespace pccsim::workloads
