#include "workloads/graph_workloads.hpp"

#include <algorithm>
#include <limits>

#include "util/log.hpp"

namespace pccsim::workloads {

using graph::NodeId;

namespace {

constexpr u32 kInf = std::numeric_limits<u32>::max();

/** Deterministic high-degree source: the hub the paper's BFS hits. */
NodeId
pickSource(const graph::CsrGraph &g)
{
    NodeId best = 0;
    u32 best_deg = 0;
    // Sampling every 64th vertex is enough to find a hub and keeps the
    // scan cheap on big graphs.
    for (NodeId v = 0; v < g.numNodes(); v += 64) {
        if (g.degree(v) > best_deg) {
            best_deg = g.degree(v);
            best = v;
        }
    }
    return best;
}

} // namespace

Generator<BatchEnd>
GraphWorkloadBase::touchRange(Addr base, u64 bytes, AccessBuffer &buf,
                              u64 stride)
{
    for (u64 off = 0; off < bytes; off += stride)
        if (buf.pushStore(base + off))
            co_yield BatchEnd::Ops;
}

u64
GraphWorkloadBase::setupCsr(os::Process &proc, bool weighted)
{
    const u64 offsets_bytes =
        (static_cast<u64>(graph_->numNodes()) + 1) * sizeof(u64);
    const u64 targets_bytes = graph_->numEdges() * sizeof(NodeId);
    a_offsets_ = proc.mmap(offsets_bytes, "csr.offsets");
    a_targets_ = proc.mmap(targets_bytes, "csr.targets");
    u64 total = offsets_bytes + targets_bytes;
    if (weighted) {
        const u64 weights_bytes = graph_->numEdges() * sizeof(u32);
        a_weights_ = proc.mmap(weights_bytes, "csr.weights");
        total += weights_bytes;
    }
    return total;
}

// ------------------------------------------------------------------ BFS

void
BfsWorkload::setup(os::Process &proc)
{
    footprint_ = setupCsr(proc, false);
    const u64 n = graph_->numNodes();
    a_parent_ = proc.mmap(n * sizeof(u32), "bfs.parent");
    a_queue_ = proc.mmap(2 * n * sizeof(u32), "bfs.queues");
    footprint_ += n * sizeof(u32) + 2 * n * sizeof(u32);
}

Generator<BatchEnd>
BfsWorkload::batchLane(u32 lane, u32 num_lanes, AccessBuffer &buf)
{
    PCCSIM_ASSERT(a_parent_ != 0, "setup() must run before lane()");
    const NodeId n = graph_->numNodes();
    const auto [lo, hi] = laneRange(lane, num_lanes);

    if (lane == 0) {
        parent_.assign(n, kInf);
        next_.assign(num_lanes, {});
        frontier_.clear();
        lanes_ready_ = 0;
    }

    // Init phase: first-touch this lane's slices in address order.
    {
        auto touch_offsets = touchRange(
            offsetAddr(lo), (u64(hi) - lo + 1) * sizeof(u64), buf);
        while (touch_offsets.next())
            co_yield touch_offsets.value();
        const u64 e_lo = graph_->offsets()[lo];
        const u64 e_hi = graph_->offsets()[hi];
        auto touch_targets = touchRange(
            targetAddr(e_lo), (e_hi - e_lo) * sizeof(NodeId), buf);
        while (touch_targets.next())
            co_yield touch_targets.value();
        auto touch_parent = touchRange(
            a_parent_ + u64(lo) * sizeof(u32),
            (u64(hi) - lo) * sizeof(u32), buf);
        while (touch_parent.next())
            co_yield touch_parent.value();
        auto touch_queue = touchRange(
            a_queue_ + u64(lo) * 2 * sizeof(u32),
            (u64(hi) - lo) * 2 * sizeof(u32), buf);
        while (touch_queue.next())
            co_yield touch_queue.value();
    }
    co_yield BatchEnd::Barrier;

    if (lane == 0) {
        const NodeId src = pickSource(*graph_);
        parent_[src] = src;
        frontier_.assign(1, src);
    }
    co_yield BatchEnd::Barrier;

    const Addr q_cur = a_queue_;
    const Addr q_next = a_queue_ + u64(n) * sizeof(u32);
    const u64 lane_seg = (u64(n) / num_lanes) * sizeof(u32);

    while (!frontier_.empty()) {
        u64 appended = 0;
        for (u64 i = lane; i < frontier_.size(); i += num_lanes) {
            if (buf.pushLoad(q_cur + i * sizeof(u32)))
                co_yield BatchEnd::Ops;
            const NodeId u = frontier_[i];
            if (buf.pushLoad(offsetAddr(u)))
                co_yield BatchEnd::Ops;
            const u64 e_begin = graph_->offsets()[u];
            const u64 e_end = graph_->offsets()[u + 1];
            for (u64 j = e_begin; j < e_end; ++j) {
                if (buf.pushLoad(targetAddr(j)))
                    co_yield BatchEnd::Ops;
                const NodeId v = graph_->targets()[j];
                if (buf.pushLoad(a_parent_ + u64(v) * sizeof(u32)))
                    co_yield BatchEnd::Ops;
                if (parent_[v] == kInf) {
                    parent_[v] = u;
                    if (buf.pushStore(a_parent_ + u64(v) * sizeof(u32)))
                        co_yield BatchEnd::Ops;
                    next_[lane].push_back(v);
                    if (buf.pushStore(
                            q_next + lane * lane_seg +
                            (appended++ % (u64(n) / num_lanes)) *
                                sizeof(u32)))
                        co_yield BatchEnd::Ops;
                }
            }
        }
        co_yield BatchEnd::Barrier;
        if (lane == 0) {
            frontier_.clear();
            for (auto &chunk : next_) {
                frontier_.insert(frontier_.end(), chunk.begin(),
                                 chunk.end());
                chunk.clear();
            }
        }
        co_yield BatchEnd::Barrier;
    }
}

// ----------------------------------------------------------------- SSSP

void
SsspWorkload::setup(os::Process &proc)
{
    PCCSIM_ASSERT(graph_->hasWeights(), "SSSP needs a weighted graph");
    footprint_ = setupCsr(proc, true);
    const u64 n = graph_->numNodes();
    a_dist_ = proc.mmap(n * sizeof(u32), "sssp.dist");
    footprint_ += n * sizeof(u32);
}

Generator<BatchEnd>
SsspWorkload::batchLane(u32 lane, u32 num_lanes, AccessBuffer &buf)
{
    PCCSIM_ASSERT(a_dist_ != 0, "setup() must run before lane()");
    const NodeId n = graph_->numNodes();
    const auto [lo, hi] = laneRange(lane, num_lanes);

    if (lane == 0) {
        dist_.assign(n, kInf);
        buckets_.clear();
        next_.assign(num_lanes, {});
        current_bucket_ = 0;
    }

    // Init: touch offsets, targets, weights, dist.
    {
        auto t1 = touchRange(offsetAddr(lo),
                             (u64(hi) - lo + 1) * sizeof(u64), buf);
        while (t1.next())
            co_yield t1.value();
        const u64 e_lo = graph_->offsets()[lo];
        const u64 e_hi = graph_->offsets()[hi];
        auto t2 = touchRange(targetAddr(e_lo),
                             (e_hi - e_lo) * sizeof(NodeId), buf);
        while (t2.next())
            co_yield t2.value();
        auto t3 = touchRange(weightAddr(e_lo),
                             (e_hi - e_lo) * sizeof(u32), buf);
        while (t3.next())
            co_yield t3.value();
        auto t4 = touchRange(a_dist_ + u64(lo) * sizeof(u32),
                             (u64(hi) - lo) * sizeof(u32), buf);
        while (t4.next())
            co_yield t4.value();
    }
    co_yield BatchEnd::Barrier;

    if (lane == 0) {
        const NodeId src = pickSource(*graph_);
        dist_[src] = 0;
        buckets_.assign(1, {src});
        current_bucket_ = 0;
    }
    co_yield BatchEnd::Barrier;

    auto relax = [&](NodeId v, u32 cand) -> bool {
        if (cand < dist_[v]) {
            dist_[v] = cand;
            next_[lane].push_back(v);
            return true;
        }
        return false;
    };

    while (true) {
        // Lane 0 advanced current_bucket_ past empty buckets already.
        if (current_bucket_ >= buckets_.size())
            break;
        auto &bucket = buckets_[current_bucket_];
        for (u64 i = lane; i < bucket.size(); i += num_lanes) {
            const NodeId u = bucket[i];
            if (buf.pushLoad(a_dist_ + u64(u) * sizeof(u32)))
                co_yield BatchEnd::Ops;
            if (dist_[u] / delta_ != current_bucket_)
                continue; // stale entry, superseded by a better path
            if (buf.pushLoad(offsetAddr(u)))
                co_yield BatchEnd::Ops;
            const u64 e_begin = graph_->offsets()[u];
            const u64 e_end = graph_->offsets()[u + 1];
            for (u64 j = e_begin; j < e_end; ++j) {
                if (buf.pushLoad(targetAddr(j)))
                    co_yield BatchEnd::Ops;
                if (buf.pushLoad(weightAddr(j)))
                    co_yield BatchEnd::Ops;
                const NodeId v = graph_->targets()[j];
                const u32 w = graph_->weights()[j];
                if (buf.pushLoad(a_dist_ + u64(v) * sizeof(u32)))
                    co_yield BatchEnd::Ops;
                if (relax(v, dist_[u] + w))
                    if (buf.pushStore(a_dist_ + u64(v) * sizeof(u32)))
                        co_yield BatchEnd::Ops;
            }
        }
        co_yield BatchEnd::Barrier;
        if (lane == 0) {
            buckets_[current_bucket_].clear();
            for (auto &chunk : next_) {
                for (const NodeId v : chunk) {
                    const u64 b = dist_[v] / delta_;
                    if (b >= buckets_.size())
                        buckets_.resize(b + 1);
                    if (b >= current_bucket_)
                        buckets_[b].push_back(v);
                    else
                        buckets_[current_bucket_].push_back(v);
                }
                chunk.clear();
            }
            while (current_bucket_ < buckets_.size() &&
                   buckets_[current_bucket_].empty()) {
                ++current_bucket_;
            }
        }
        co_yield BatchEnd::Barrier;
    }
}

// ------------------------------------------------------------- PageRank

void
PageRankWorkload::setup(os::Process &proc)
{
    footprint_ = setupCsr(proc, false);
    const u64 n = graph_->numNodes();
    a_contrib_ = proc.mmap(n * sizeof(double), "pr.contrib");
    a_rank_ = proc.mmap(n * sizeof(double), "pr.rank");
    footprint_ += 2 * n * sizeof(double);
}

Generator<BatchEnd>
PageRankWorkload::batchLane(u32 lane, u32 num_lanes, AccessBuffer &buf)
{
    PCCSIM_ASSERT(a_contrib_ != 0, "setup() must run before lane()");
    const NodeId n = graph_->numNodes();
    const auto [lo, hi] = laneRange(lane, num_lanes);
    constexpr double kDamping = 0.85;

    if (lane == 0) {
        contrib_.assign(n, 1.0 / n);
        rank_.assign(n, 0.0);
    }

    {
        auto t1 = touchRange(offsetAddr(lo),
                             (u64(hi) - lo + 1) * sizeof(u64), buf);
        while (t1.next())
            co_yield t1.value();
        const u64 e_lo = graph_->offsets()[lo];
        const u64 e_hi = graph_->offsets()[hi];
        auto t2 = touchRange(targetAddr(e_lo),
                             (e_hi - e_lo) * sizeof(NodeId), buf);
        while (t2.next())
            co_yield t2.value();
        auto t3 = touchRange(a_contrib_ + u64(lo) * sizeof(double),
                             (u64(hi) - lo) * sizeof(double), buf);
        while (t3.next())
            co_yield t3.value();
        auto t4 = touchRange(a_rank_ + u64(lo) * sizeof(double),
                             (u64(hi) - lo) * sizeof(double), buf);
        while (t4.next())
            co_yield t4.value();
    }
    co_yield BatchEnd::Barrier;

    for (u32 iter = 0; iter < iterations_; ++iter) {
        // Pull phase: gather neighbor contributions (irregular reads).
        for (NodeId v = lo; v < hi; ++v) {
            if (buf.pushLoad(offsetAddr(v)))
                co_yield BatchEnd::Ops;
            double sum = 0.0;
            const u64 e_begin = graph_->offsets()[v];
            const u64 e_end = graph_->offsets()[v + 1];
            for (u64 j = e_begin; j < e_end; ++j) {
                if (buf.pushLoad(targetAddr(j)))
                    co_yield BatchEnd::Ops;
                const NodeId u = graph_->targets()[j];
                if (buf.pushLoad(a_contrib_ + u64(u) * sizeof(double)))
                    co_yield BatchEnd::Ops;
                sum += contrib_[u];
            }
            rank_[v] = (1.0 - kDamping) / n + kDamping * sum;
            if (buf.pushStore(a_rank_ + u64(v) * sizeof(double)))
                co_yield BatchEnd::Ops;
        }
        co_yield BatchEnd::Barrier;
        // Contribution refresh: streaming pass over this lane's slice.
        for (NodeId v = lo; v < hi; ++v) {
            if (buf.pushLoad(a_rank_ + u64(v) * sizeof(double)))
                co_yield BatchEnd::Ops;
            const u32 deg = std::max<u32>(1, graph_->degree(v));
            contrib_[v] = rank_[v] / deg;
            if (buf.pushStore(a_contrib_ + u64(v) * sizeof(double)))
                co_yield BatchEnd::Ops;
        }
        co_yield BatchEnd::Barrier;
    }
}

} // namespace pccsim::workloads
