#include "tlb/hw_registry.hpp"

#include <algorithm>

#include "util/link_anchor.hpp"
#include "util/log.hpp"

// Keep the backend translation units alive through static-archive
// linking (see util/link_anchor.hpp for the anchor mechanism).
PCCSIM_REFERENCE_LINK_ANCHOR(victima_reach) // victima_reach.cpp

namespace pccsim::tlb {

HwRegistry &
HwRegistry::instance()
{
    static HwRegistry registry;
    return registry;
}

util::Status
HwRegistry::add(Entry entry)
{
    if (entry.key.empty() || !entry.apply)
        return util::Status::error("hw entry needs a key and apply fn");
    if (find(entry.key)) {
        return util::Status::error("duplicate hw key '", entry.key,
                                   "'");
    }
    entries_.push_back(std::move(entry));
    return {};
}

const HwRegistry::Entry *
HwRegistry::find(std::string_view key) const
{
    for (const Entry &entry : entries_)
        if (entry.key == key)
            return &entry;
    return nullptr;
}

std::vector<HwRegistry::Entry>
HwRegistry::entries() const
{
    std::vector<Entry> sorted = entries_;
    std::sort(sorted.begin(), sorted.end(),
              [](const Entry &a, const Entry &b) { return a.key < b.key; });
    return sorted;
}

std::vector<std::string>
HwRegistry::keys() const
{
    std::vector<std::string> keys;
    keys.reserve(entries_.size());
    for (const Entry &entry : entries_)
        keys.push_back(entry.key);
    std::sort(keys.begin(), keys.end());
    return keys;
}

util::Status
HwRegistry::unknownKeyError(std::string_view key) const
{
    const std::string hint = util::nearestKey(key, keys());
    if (hint.empty()) {
        return util::Status::error("unknown hw backend '",
                                   std::string(key),
                                   "' (--hw=list shows all keys)");
    }
    return util::Status::error("unknown hw backend '", std::string(key),
                               "' (did you mean '", hint, "'?)");
}

util::Status
HwRegistry::validateSelector(std::string_view selector) const
{
    if (selector.empty())
        return {};
    const util::Selector sel = util::Selector::parse(selector);
    if (!find(sel.key))
        return unknownKeyError(sel.key);
    util::Status status;
    (void)util::ParamMap::parse(sel.params, status);
    return status;
}

util::Status
HwRegistry::apply(std::string_view selector, sim::SystemConfig &cfg) const
{
    if (selector.empty())
        return {};
    const util::Selector sel = util::Selector::parse(selector);
    const Entry *entry = find(sel.key);
    if (!entry)
        return unknownKeyError(sel.key);
    util::Status status;
    const util::ParamMap params =
        util::ParamMap::parse(sel.params, status);
    if (!status.ok())
        return status;
    status.update(entry->apply(params, cfg));
    status.update(params.checkConsumed());
    if (!status.ok()) {
        status.update(util::Status::error(
            "while applying hw backend '", entry->key, "' (grammar: ",
            entry->grammar.empty() ? "no params" : entry->grammar,
            ")"));
    }
    return status;
}

namespace {

// The identity backend: selecting `--hw=default` is exactly the same
// run as not passing --hw at all, so baselines can name it explicitly.
const HwRegistrar default_hw{{
    "default",
    "baseline translation hardware from SystemConfig (identity)",
    "",
    [](const util::ParamMap &, sim::SystemConfig &) -> util::Status {
        return {};
    },
}};

} // namespace

HwRegistrar::HwRegistrar(HwRegistry::Entry entry)
{
    const std::string key = entry.key;
    if (util::Status status = HwRegistry::instance().add(std::move(entry));
        !status.ok()) {
        fatal("hw registration '", key, "': ", status.toString());
    }
}

} // namespace pccsim::tlb
