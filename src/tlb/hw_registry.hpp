/**
 * @file
 * String-keyed registry of translation-hardware backends — the open
 * end of the `--hw=` selector.
 *
 * A backend is a named transform applied to the SystemConfig before
 * the System builds its cores: it reshapes TLB geometry, timing, and
 * cache parameters to model alternative translation hardware (e.g.
 * the Victima-style extra-reach backend that converts L2 data-cache
 * ways into L2 TLB capacity). The empty selector and the registered
 * "default" key both leave the config untouched, so every legacy run
 * is bit-identical to the pre-registry code.
 *
 * Registration mirrors os/policy_registry.hpp: a static HwRegistrar in
 * the backend's own translation unit plus a link-anchor reference in
 * hw_registry.cpp (see that header for why static archives need the
 * anchor pair).
 */

#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "util/params.hpp"
#include "util/status.hpp"

namespace pccsim::sim {
struct SystemConfig; // backends mutate it; full definition in factories
}

namespace pccsim::tlb {

class HwRegistry
{
  public:
    /** Apply the backend's transform to the run's config. */
    using Apply = util::Status (*)(const util::ParamMap &params,
                                   sim::SystemConfig &cfg);

    struct Entry
    {
        std::string key;         //!< canonical selector key
        std::string description; //!< one line for `--hw=list`
        std::string grammar;     //!< param grammar, "" = no params
        Apply apply = nullptr;
    };

    static HwRegistry &instance();

    /** Register an entry; duplicate keys fail loudly. */
    util::Status add(Entry entry);

    const Entry *find(std::string_view key) const;

    /** All entries, sorted by key. */
    std::vector<Entry> entries() const;

    /** Sorted canonical keys. */
    std::vector<std::string> keys() const;

    /**
     * Resolve a selector and apply its transform to `cfg`. The empty
     * selector is the identity. Unknown keys and bad params return an
     * error (with a nearest-key suggestion) and leave cfg untouched.
     */
    util::Status apply(std::string_view selector,
                       sim::SystemConfig &cfg) const;

    /** Status for an unknown key, with a "did you mean" hint. */
    util::Status unknownKeyError(std::string_view key) const;

    /** Validate a selector without applying (SystemConfig-free). */
    util::Status validateSelector(std::string_view selector) const;

  private:
    HwRegistry() = default;
    std::vector<Entry> entries_;
};

/** Static registrar: construct one per backend translation unit. */
struct HwRegistrar
{
    explicit HwRegistrar(HwRegistry::Entry entry);
};

} // namespace pccsim::tlb
