/**
 * @file
 * A single set-associative TLB structure with true-LRU replacement.
 *
 * One instance caches translations of exactly one page size, keyed by the
 * virtual page number at that size. Timing is modelled by the hierarchy;
 * this class only answers hit/miss and maintains replacement state.
 */

#pragma once

#include <optional>
#include <vector>

#include "tlb/geometry.hpp"
#include "util/log.hpp"
#include "util/types.hpp"

namespace pccsim::tlb {

class SetAssocTlb
{
  public:
    /** Outcome of a combined probe-or-insert access(). */
    struct AccessResult
    {
        bool hit = false;
        /** VPN evicted when the miss-path insertion had to evict. */
        std::optional<Vpn> displaced{};
    };

    explicit SetAssocTlb(TlbParams params)
        : params_(params),
          sets_(params.sets() == 0 ? 1 : params.sets()),
          ways_(params.ways == 0 ? 1 : params.ways),
          entries_(static_cast<size_t>(sets_) * ways_),
          mru_(sets_, 0)
    {
        PCCSIM_ASSERT(params.entries % params.ways == 0,
                      "TLB entries not divisible by ways");
        // Power-of-two set counts (every real geometry) index with a
        // mask; the 64-bit modulo fallback only serves odd test shapes.
        set_mask_ = (sets_ & (sets_ - 1)) == 0 ? sets_ - 1 : 0;
    }

    /** Probe for vpn; refreshes LRU state on hit. */
    bool
    lookup(Vpn vpn)
    {
        const u64 set_index = setIndexOf(vpn);
        Entry *set = &entries_[set_index * ways_];
        // MRU-way fast check: consecutive accesses overwhelmingly
        // re-touch the way that hit last. The hint is only ever a
        // shortcut — a stale hint fails the compare and falls through
        // to the full scan, so results are identical either way.
        u32 &mru = mru_[set_index];
        if (set[mru].vpn == vpn) {
            set[mru].stamp = ++clock_;
            return true;
        }
        for (u32 w = 0; w < ways_; ++w) {
            if (set[w].vpn == vpn) {
                set[w].stamp = ++clock_;
                mru = w;
                return true;
            }
        }
        return false;
    }

    /**
     * Combined lookup-or-insert in a single set scan.
     *
     * Equivalent to `lookup(vpn)` followed on miss by `insert(vpn)`,
     * with the same hit results, replacement decisions, and displaced
     * victim — a hit refreshes one LRU stamp instead of two, which
     * preserves the set's relative recency order.
     */
    AccessResult
    access(Vpn vpn)
    {
        PCCSIM_DCHECK(vpn != kInvalidVpn);
        const u64 set_index = setIndexOf(vpn);
        Entry *set = &entries_[set_index * ways_];
        u32 &mru = mru_[set_index];
        if (set[mru].vpn == vpn) {
            set[mru].stamp = ++clock_;
            return {true, std::nullopt};
        }
        u32 victim = 0;
        u64 oldest = ~0ull;
        bool found_empty = false;
        for (u32 w = 0; w < ways_; ++w) {
            if (set[w].vpn == kInvalidVpn) {
                // invalidate() can punch holes mid-set, so keep
                // scanning for a hit beyond the first empty way.
                if (!found_empty) {
                    victim = w;
                    found_empty = true;
                }
                continue;
            }
            if (set[w].vpn == vpn) {
                set[w].stamp = ++clock_;
                mru = w;
                return {true, std::nullopt};
            }
            if (!found_empty && set[w].stamp < oldest) {
                oldest = set[w].stamp;
                victim = w;
            }
        }
        const std::optional<Vpn> displaced =
            found_empty ? std::nullopt
                        : std::optional<Vpn>(set[victim].vpn);
        set[victim] = {vpn, ++clock_};
        mru = victim;
        return {false, displaced};
    }

    /** Probe without touching replacement state. */
    bool
    contains(Vpn vpn) const
    {
        const Entry *set = setOf(vpn);
        for (u32 w = 0; w < ways_; ++w)
            if (set[w].vpn == vpn)
                return true;
        return false;
    }

    /**
     * Insert vpn, evicting the set's LRU entry if needed.
     * @return The VPN displaced by this insertion, if any — the feed
     *         of the Sec. 5.4.1 victim-buffer design alternative.
     */
    std::optional<Vpn>
    insert(Vpn vpn)
    {
        PCCSIM_DCHECK(vpn != kInvalidVpn);
        Entry *set = setOf(vpn);
        u32 victim = 0;
        u64 oldest = ~0ull;
        bool evicting = true;
        for (u32 w = 0; w < ways_; ++w) {
            if (set[w].vpn == kInvalidVpn) {
                victim = w;
                evicting = false;
                break;
            }
            if (set[w].vpn == vpn) {
                set[w].stamp = ++clock_;
                return std::nullopt;
            }
            if (set[w].stamp < oldest) {
                oldest = set[w].stamp;
                victim = w;
            }
        }
        const std::optional<Vpn> displaced =
            evicting ? std::optional<Vpn>(set[victim].vpn)
                     : std::nullopt;
        set[victim] = {vpn, ++clock_};
        return displaced;
    }

    /** Drop vpn if present; true when an entry was removed. */
    bool
    invalidate(Vpn vpn)
    {
        Entry *set = setOf(vpn);
        for (u32 w = 0; w < ways_; ++w) {
            if (set[w].vpn == vpn) {
                set[w].vpn = kInvalidVpn;
                return true;
            }
        }
        return false;
    }

    /** Drop every entry whose vpn lies in [lo, hi). Returns count. */
    u64
    invalidateVpnRange(Vpn lo, Vpn hi)
    {
        u64 dropped = 0;
        for (auto &e : entries_) {
            if (e.vpn != kInvalidVpn && e.vpn >= lo && e.vpn < hi) {
                e.vpn = kInvalidVpn;
                ++dropped;
            }
        }
        return dropped;
    }

    /** Invalidate everything. */
    void
    flushAll()
    {
        for (auto &e : entries_)
            e = Entry{};
    }

    /** Currently valid entries (for tests/introspection). */
    u64
    validCount() const
    {
        u64 n = 0;
        for (const auto &e : entries_)
            n += e.vpn != kInvalidVpn ? 1 : 0;
        return n;
    }

    /** Visit the VPN of every valid entry (invariant checking). */
    template <typename Fn>
    void
    forEachValid(Fn &&fn) const
    {
        for (const auto &e : entries_)
            if (e.vpn != kInvalidVpn)
                fn(e.vpn);
    }

    u32 numEntries() const { return params_.entries; }
    u32 numWays() const { return ways_; }
    u32 numSets() const { return sets_; }

  private:
    /**
     * 16-byte entry: an empty way holds the sentinel VPN instead of a
     * separate valid flag, so the hot-path scans are pure VPN
     * compares. The sentinel is unreachable: VPNs are vaddr >> 12 (or
     * more), so ~0 would need an address in the top page of the
     * address space.
     */
    static constexpr Vpn kInvalidVpn = ~Vpn(0);
    struct Entry
    {
        Vpn vpn = kInvalidVpn;
        u64 stamp = 0;
    };

    u64
    setIndexOf(Vpn vpn) const
    {
        return set_mask_ ? (vpn & set_mask_) : (vpn % sets_);
    }
    Entry *setOf(Vpn vpn) { return &entries_[setIndexOf(vpn) * ways_]; }
    const Entry *
    setOf(Vpn vpn) const
    {
        return &entries_[setIndexOf(vpn) * ways_];
    }

    TlbParams params_;
    u32 sets_;
    u32 ways_;
    std::vector<Entry> entries_;
    /** Per-set hint: the way of the most recent hit/insert. */
    std::vector<u32> mru_;
    u64 set_mask_ = 0;
    u64 clock_ = 0;
};

} // namespace pccsim::tlb
