/**
 * @file
 * A single set-associative TLB structure with true-LRU replacement.
 *
 * One instance caches translations of exactly one page size, keyed by the
 * virtual page number at that size. Timing is modelled by the hierarchy;
 * this class only answers hit/miss and maintains replacement state.
 *
 * Storage is structure-of-arrays: the VPN tags of a set sit in one
 * contiguous array and the LRU stamps in another, so the hot-path scans
 * (lookup, the fused access) touch only tag lines until a decision
 * needs a stamp, and the tag compare can run through the optional SIMD
 * kernel (util/tagscan.hpp, PCCSIM_SIMD_TAGSCAN).
 */

#pragma once

#include <optional>
#include <vector>

#include "tlb/geometry.hpp"
#include "util/log.hpp"
#include "util/tagscan.hpp"
#include "util/types.hpp"

namespace pccsim::tlb {

class SetAssocTlb
{
  public:
    /** Outcome of a combined probe-or-insert access(). */
    struct AccessResult
    {
        bool hit = false;
        /** VPN evicted when the miss-path insertion had to evict. */
        std::optional<Vpn> displaced{};
    };

    explicit SetAssocTlb(TlbParams params)
        : params_(params),
          sets_(params.sets() == 0 ? 1 : params.sets()),
          ways_(params.ways == 0 ? 1 : params.ways),
          vpns_(static_cast<size_t>(sets_) * ways_, kInvalidVpn),
          stamps_(static_cast<size_t>(sets_) * ways_, 0),
          mru_(sets_, 0)
    {
        PCCSIM_ASSERT(params.entries % params.ways == 0,
                      "TLB entries not divisible by ways");
        // Power-of-two set counts (every real geometry) index with a
        // mask; the 64-bit modulo fallback only serves odd test shapes.
        set_mask_ = (sets_ & (sets_ - 1)) == 0 ? sets_ - 1 : 0;
    }

    /** Probe for vpn; refreshes LRU state on hit. */
    bool
    lookup(Vpn vpn)
    {
        const u64 set_index = setIndexOf(vpn);
        Vpn *tags = &vpns_[set_index * ways_];
        // MRU-way fast check: consecutive accesses overwhelmingly
        // re-touch the way that hit last. The hint is only ever a
        // shortcut — a stale hint fails the compare and falls through
        // to the full scan, so results are identical either way.
        u32 &mru = mru_[set_index];
        if (tags[mru] == vpn) {
            stamps_[set_index * ways_ + mru] = ++clock_;
            return true;
        }
        const int w = util::findTag(tags, ways_, vpn);
        if (w < 0)
            return false;
        stamps_[set_index * ways_ + w] = ++clock_;
        mru = static_cast<u32>(w);
        return true;
    }

    /**
     * Combined lookup-or-insert in a single set scan.
     *
     * Equivalent to `lookup(vpn)` followed on miss by `insert(vpn)`,
     * with the same hit results, replacement decisions, and displaced
     * victim — a hit refreshes one LRU stamp instead of two, which
     * preserves the set's relative recency order.
     */
    AccessResult
    access(Vpn vpn)
    {
        PCCSIM_DCHECK(vpn != kInvalidVpn);
        const u64 set_index = setIndexOf(vpn);
        Vpn *tags = &vpns_[set_index * ways_];
        u64 *stamps = &stamps_[set_index * ways_];
        u32 &mru = mru_[set_index];
        if (tags[mru] == vpn) {
            stamps[mru] = ++clock_;
            return {true, std::nullopt};
        }
        // The fused scan covers every way, so hits beyond a mid-set
        // hole (invalidate() punches them) are still found.
        const auto scan = util::scanSet(tags, stamps, ways_, vpn);
        if (scan.hit_way >= 0) {
            stamps[scan.hit_way] = ++clock_;
            mru = static_cast<u32>(scan.hit_way);
            return {true, std::nullopt};
        }
        // Victim: earliest empty way if any, else true LRU. Both are
        // the earliest-minimum stamp — invalidation zeroes the stamp
        // alongside the tag, so holes carry stamp 0 while every valid
        // way has a unique stamp >= 1.
        const std::optional<Vpn> displaced =
            tags[scan.victim] == kInvalidVpn
                ? std::nullopt
                : std::optional<Vpn>(tags[scan.victim]);
        tags[scan.victim] = vpn;
        stamps[scan.victim] = ++clock_;
        mru = scan.victim;
        return {false, displaced};
    }

    /** Probe without touching replacement state. */
    bool
    contains(Vpn vpn) const
    {
        const Vpn *tags = &vpns_[setIndexOf(vpn) * ways_];
        return util::findTag(tags, ways_, vpn) >= 0;
    }

    /**
     * Insert vpn, evicting the set's LRU entry if needed.
     * @return The VPN displaced by this insertion, if any — the feed
     *         of the Sec. 5.4.1 victim-buffer design alternative.
     */
    std::optional<Vpn>
    insert(Vpn vpn)
    {
        PCCSIM_DCHECK(vpn != kInvalidVpn);
        const u64 set_index = setIndexOf(vpn);
        Vpn *tags = &vpns_[set_index * ways_];
        u64 *stamps = &stamps_[set_index * ways_];
        u32 victim = 0;
        u64 oldest = ~0ull;
        bool evicting = true;
        for (u32 w = 0; w < ways_; ++w) {
            if (tags[w] == kInvalidVpn) {
                victim = w;
                evicting = false;
                break;
            }
            if (tags[w] == vpn) {
                stamps[w] = ++clock_;
                return std::nullopt;
            }
            if (stamps[w] < oldest) {
                oldest = stamps[w];
                victim = w;
            }
        }
        const std::optional<Vpn> displaced =
            evicting ? std::optional<Vpn>(tags[victim]) : std::nullopt;
        tags[victim] = vpn;
        stamps[victim] = ++clock_;
        return displaced;
    }

    /** Drop vpn if present; true when an entry was removed. */
    bool
    invalidate(Vpn vpn)
    {
        const u64 set_index = setIndexOf(vpn);
        Vpn *tags = &vpns_[set_index * ways_];
        const int w = util::findTag(tags, ways_, vpn);
        if (w < 0)
            return false;
        tags[w] = kInvalidVpn;
        // Zero the stamp with the tag: access() relies on holes
        // ranking below every valid way in its victim scan.
        stamps_[set_index * ways_ + w] = 0;
        return true;
    }

    /** Drop every entry whose vpn lies in [lo, hi). Returns count. */
    u64
    invalidateVpnRange(Vpn lo, Vpn hi)
    {
        u64 dropped = 0;
        for (size_t i = 0; i < vpns_.size(); ++i) {
            if (vpns_[i] != kInvalidVpn && vpns_[i] >= lo &&
                vpns_[i] < hi) {
                vpns_[i] = kInvalidVpn;
                stamps_[i] = 0;
                ++dropped;
            }
        }
        return dropped;
    }

    /**
     * Invalidate everything. Stamps are zeroed with the tags — the
     * branchless victim scan (util::scanSet / util::findVictim) ranks
     * holes by their zero stamp, so a flush that left stale stamps
     * behind would make later insertions evict valid entries while
     * empty ways exist. The MRU hints are reset for the same hygiene
     * (a stale hint is only ever a failed compare, but pointing it at
     * way 0 keeps post-flush behavior independent of pre-flush
     * history).
     */
    void
    flushAll()
    {
        for (auto &vpn : vpns_)
            vpn = kInvalidVpn;
        for (auto &stamp : stamps_)
            stamp = 0;
        for (auto &mru : mru_)
            mru = 0;
    }

    /**
     * Drop every entry whose key matches `tag` under `mask` — the
     * targeted flush behind TlbHierarchy::flushAsid() (x86 INVPCID
     * type 1: invalidate one PCID's entries, keep the rest). Returns
     * the number of entries dropped.
     */
    u64
    flushMatching(u64 tag, u64 mask)
    {
        u64 dropped = 0;
        for (size_t i = 0; i < vpns_.size(); ++i) {
            if (vpns_[i] != kInvalidVpn && (vpns_[i] & mask) == tag) {
                vpns_[i] = kInvalidVpn;
                stamps_[i] = 0;
                ++dropped;
            }
        }
        return dropped;
    }

    /** Currently valid entries (for tests/introspection). */
    u64
    validCount() const
    {
        u64 n = 0;
        for (const auto &vpn : vpns_)
            n += vpn != kInvalidVpn ? 1 : 0;
        return n;
    }

    /** Visit the VPN of every valid entry (invariant checking). */
    template <typename Fn>
    void
    forEachValid(Fn &&fn) const
    {
        for (const auto &vpn : vpns_)
            if (vpn != kInvalidVpn)
                fn(vpn);
    }

    u32 numEntries() const { return params_.entries; }
    u32 numWays() const { return ways_; }
    u32 numSets() const { return sets_; }

  private:
    /**
     * An empty way holds the sentinel VPN instead of a separate valid
     * flag, so the hot-path scans are pure VPN compares. The sentinel
     * is unreachable: VPNs are vaddr >> 12 (or more), so ~0 would need
     * an address in the top page of the address space.
     */
    static constexpr Vpn kInvalidVpn = ~Vpn(0);

    u64
    setIndexOf(Vpn vpn) const
    {
        return set_mask_ ? (vpn & set_mask_) : (vpn % sets_);
    }

    TlbParams params_;
    u32 sets_;
    u32 ways_;
    std::vector<Vpn> vpns_;   //!< SoA: VPN tag per way, sentinel = empty
    std::vector<u64> stamps_; //!< SoA: LRU stamp per way
    /** Per-set hint: the way of the most recent hit/insert. */
    std::vector<u32> mru_;
    u64 set_mask_ = 0;
    u64 clock_ = 0;
};

} // namespace pccsim::tlb
