/**
 * @file
 * A single set-associative TLB structure with true-LRU replacement.
 *
 * One instance caches translations of exactly one page size, keyed by the
 * virtual page number at that size. Timing is modelled by the hierarchy;
 * this class only answers hit/miss and maintains replacement state.
 */

#pragma once

#include <optional>
#include <vector>

#include "tlb/geometry.hpp"
#include "util/log.hpp"
#include "util/types.hpp"

namespace pccsim::tlb {

class SetAssocTlb
{
  public:
    explicit SetAssocTlb(TlbParams params)
        : params_(params),
          sets_(params.sets() == 0 ? 1 : params.sets()),
          ways_(params.ways == 0 ? 1 : params.ways),
          entries_(static_cast<size_t>(sets_) * ways_)
    {
        PCCSIM_ASSERT(params.entries % params.ways == 0,
                      "TLB entries not divisible by ways");
    }

    /** Probe for vpn; refreshes LRU state on hit. */
    bool
    lookup(Vpn vpn)
    {
        Entry *set = setOf(vpn);
        for (u32 w = 0; w < ways_; ++w) {
            if (set[w].valid && set[w].vpn == vpn) {
                set[w].stamp = ++clock_;
                return true;
            }
        }
        return false;
    }

    /** Probe without touching replacement state. */
    bool
    contains(Vpn vpn) const
    {
        const Entry *set = setOf(vpn);
        for (u32 w = 0; w < ways_; ++w)
            if (set[w].valid && set[w].vpn == vpn)
                return true;
        return false;
    }

    /**
     * Insert vpn, evicting the set's LRU entry if needed.
     * @return The VPN displaced by this insertion, if any — the feed
     *         of the Sec. 5.4.1 victim-buffer design alternative.
     */
    std::optional<Vpn>
    insert(Vpn vpn)
    {
        Entry *set = setOf(vpn);
        u32 victim = 0;
        u64 oldest = ~0ull;
        bool evicting = true;
        for (u32 w = 0; w < ways_; ++w) {
            if (!set[w].valid) {
                victim = w;
                evicting = false;
                break;
            }
            if (set[w].vpn == vpn) {
                set[w].stamp = ++clock_;
                return std::nullopt;
            }
            if (set[w].stamp < oldest) {
                oldest = set[w].stamp;
                victim = w;
            }
        }
        const std::optional<Vpn> displaced =
            evicting ? std::optional<Vpn>(set[victim].vpn)
                     : std::nullopt;
        set[victim] = {vpn, ++clock_, true};
        return displaced;
    }

    /** Drop vpn if present; true when an entry was removed. */
    bool
    invalidate(Vpn vpn)
    {
        Entry *set = setOf(vpn);
        for (u32 w = 0; w < ways_; ++w) {
            if (set[w].valid && set[w].vpn == vpn) {
                set[w].valid = false;
                return true;
            }
        }
        return false;
    }

    /** Drop every entry whose vpn lies in [lo, hi). Returns count. */
    u64
    invalidateVpnRange(Vpn lo, Vpn hi)
    {
        u64 dropped = 0;
        for (auto &e : entries_) {
            if (e.valid && e.vpn >= lo && e.vpn < hi) {
                e.valid = false;
                ++dropped;
            }
        }
        return dropped;
    }

    /** Invalidate everything. */
    void
    flushAll()
    {
        for (auto &e : entries_)
            e.valid = false;
    }

    /** Currently valid entries (for tests/introspection). */
    u64
    validCount() const
    {
        u64 n = 0;
        for (const auto &e : entries_)
            n += e.valid ? 1 : 0;
        return n;
    }

    /** Visit the VPN of every valid entry (invariant checking). */
    template <typename Fn>
    void
    forEachValid(Fn &&fn) const
    {
        for (const auto &e : entries_)
            if (e.valid)
                fn(e.vpn);
    }

    u32 numEntries() const { return params_.entries; }
    u32 numWays() const { return ways_; }
    u32 numSets() const { return sets_; }

  private:
    struct Entry
    {
        Vpn vpn = 0;
        u64 stamp = 0;
        bool valid = false;
    };

    Entry *setOf(Vpn vpn) { return &entries_[(vpn % sets_) * ways_]; }
    const Entry *
    setOf(Vpn vpn) const
    {
        return &entries_[(vpn % sets_) * ways_];
    }

    TlbParams params_;
    u32 sets_;
    u32 ways_;
    std::vector<Entry> entries_;
    u64 clock_ = 0;
};

} // namespace pccsim::tlb
