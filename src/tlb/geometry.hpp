/**
 * @file
 * TLB hierarchy geometries (Table 2 of the paper, plus scaled profiles).
 */

#pragma once

#include "util/types.hpp"

namespace pccsim::tlb {

/** Size/associativity of one TLB structure. */
struct TlbParams
{
    u32 entries = 0;
    u32 ways = 1;

    constexpr u32 sets() const { return ways == 0 ? 0 : entries / ways; }
};

/**
 * Full data-TLB hierarchy geometry. Matches the evaluation machine of the
 * paper (Intel Xeon E5-2667 v3, Haswell) by default: separate L1 D-TLBs
 * per page size and a unified 4KB+2MB L2 TLB. 1GB translations are cached
 * only in their small L1 structure, as on Haswell.
 */
struct TlbGeometry
{
    TlbParams l1_4k{64, 4};
    TlbParams l1_2m{32, 4};
    TlbParams l1_1g{4, 4};
    TlbParams l2{1024, 8};
    bool l2_holds_1g = false;

    /** Table 2 hardware verbatim. */
    static constexpr TlbGeometry
    haswell()
    {
        return TlbGeometry{};
    }

    /**
     * Geometry with the L2 shrunk by a power-of-two factor, used by the
     * `ci` profile so small workloads keep footprint >> TLB coverage.
     */
    static constexpr TlbGeometry
    scaled(u32 l2_entries)
    {
        TlbGeometry g;
        g.l2 = {l2_entries, 8};
        g.l1_4k = {l2_entries >= 256 ? 64u : 16u, 4};
        g.l1_2m = {l2_entries >= 256 ? 32u : 8u, 4};
        return g;
    }
};

} // namespace pccsim::tlb
