/**
 * @file
 * Victima-flavored extra-reach translation backend (`--hw=victima-reach`).
 *
 * Victima (MICRO'23) repurposes L2 data-cache capacity to hold TLB
 * entries, multiplying translation reach without new SRAM. This
 * backend models the steady-state effect as a config transform: the
 * unified L2 TLB grows by a power-of-two multiplier, an L2 TLB hit
 * gets slightly slower (the entry now lives in cache-speed storage),
 * and the L2 data cache pays for the borrowed capacity by losing ways
 * — 16 bytes of way storage per extra TLB entry. Whether PCC-style
 * careful promotion still pays off once reach is huge is exactly the
 * question this contender exists to ask.
 */

#include "sim/config.hpp"
#include "tlb/hw_registry.hpp"
#include "util/link_anchor.hpp"

PCCSIM_DEFINE_LINK_ANCHOR(victima_reach)

namespace pccsim::tlb {
namespace {

constexpr u64 kBytesPerTlbEntry = 16; // tag + PTE payload

util::Status
applyVictimaReach(const util::ParamMap &params, sim::SystemConfig &cfg)
{
    const u64 mult = params.getU64("mult", 8);
    const u64 extra_latency = params.getU64("latency", 4);
    const bool hold_1g = params.getBool("1g", true);

    if (mult < 2 || (mult & (mult - 1)) != 0) {
        return util::Status::error(
            "victima-reach mult must be a power of two >= 2, got ",
            mult);
    }

    const u32 base_entries = cfg.tlb.l2.entries;
    const u64 extra_entries =
        static_cast<u64>(base_entries) * (mult - 1);

    // The borrowed reach is paid for in L2 data-cache ways: round the
    // borrowed bytes up to whole ways and shrink the cache by that
    // many, keeping at least one way so the cache stays functional.
    cache::CacheParams &l2d = cfg.cache.l2;
    const u64 way_bytes =
        l2d.size_bytes / (l2d.ways == 0 ? 1 : l2d.ways);
    if (way_bytes == 0)
        return util::Status::error("victima-reach needs a real L2 cache");
    const u64 borrowed_bytes = extra_entries * kBytesPerTlbEntry;
    u32 steal_ways = static_cast<u32>(
        (borrowed_bytes + way_bytes - 1) / way_bytes);
    if (steal_ways >= l2d.ways) {
        return util::Status::error(
            "victima-reach mult=", mult, " would borrow ", steal_ways,
            " of ", l2d.ways, " L2 cache ways; lower mult");
    }
    l2d.ways -= steal_ways;
    l2d.size_bytes -= static_cast<u64>(steal_ways) * way_bytes;

    // Grow the unified L2 TLB in place: same associativity, mult x the
    // sets, so the set-index math stays power-of-two.
    cfg.tlb.l2.entries = static_cast<u32>(base_entries * mult);
    cfg.tlb.l2_holds_1g = hold_1g;
    cfg.timing.l2_tlb_hit += extra_latency;
    return {};
}

const HwRegistrar reg{{
    "victima-reach",
    "Victima-style L2 TLB reach multiplier paid for in L2 cache ways",
    "mult=POW2,latency=CYCLES,1g=BOOL",
    applyVictimaReach,
}};

} // namespace
} // namespace pccsim::tlb
