/**
 * @file
 * Two-level data-TLB hierarchy model.
 *
 * Per Table 2 of the paper: split L1 D-TLBs per page size and a unified
 * second-level TLB holding 4KB and 2MB translations. A memory access whose
 * translation misses everywhere triggers a hardware page-table walk — the
 * event stream the promotion candidate cache consumes.
 */

#pragma once

#include <functional>

#include "mem/paging.hpp"
#include "tlb/set_assoc_tlb.hpp"
#include "util/stats.hpp"

namespace pccsim::tlb {

/** Where an address translation was satisfied. */
enum class HitLevel : u8
{
    L1 = 0,
    L2 = 1,
    Miss = 2, //!< full miss: page-table walk required
};

class TlbHierarchy
{
  public:
    explicit TlbHierarchy(const TlbGeometry &geometry = TlbGeometry{})
        : geometry_(geometry),
          l1_4k_(geometry.l1_4k),
          l1_2m_(geometry.l1_2m),
          l1_1g_(geometry.l1_1g),
          l2_(geometry.l2)
    {
    }

    /**
     * Translate one access to a page mapped at `size`.
     *
     * @param vaddr Virtual byte address being accessed.
     * @param size Page size of the mapping currently backing vaddr
     *        (known from the page table; the hardware discovers it from
     *        whichever structure hits or from the walk).
     * @return The level that supplied the translation. On Miss the caller
     *         must walk the page table and then call fill().
     */
    HitLevel
    access(Addr vaddr, mem::PageSize size)
    {
        const Vpn vpn = mem::vpnOf(vaddr, size);
        ++accesses_;
        if (l1Of(size).lookup(vpn)) {
            ++l1_hits_;
            return HitLevel::L1;
        }
        if (l2Holds(size) && l2_.lookup(l2Key(vpn, size))) {
            ++l2_hits_;
            // A victim-style refill: the translation moves (also) into
            // L1. The combined access() probes and inserts in one set
            // scan (the L1 lookup above already missed).
            l1Of(size).access(vpn);
            return HitLevel::L2;
        }
        ++walks_;
        return HitLevel::Miss;
    }

    /** Observer of L2 TLB evictions (victim-buffer alternative). */
    using L2VictimHook = std::function<void(Vpn, mem::PageSize)>;

    void setL2VictimHook(L2VictimHook hook) { l2_victim_ = std::move(hook); }

    /** Install a translation after a page-table walk. */
    void
    fill(Addr vaddr, mem::PageSize size)
    {
        const Vpn vpn = mem::vpnOf(vaddr, size);
        l1Of(size).access(vpn);
        if (l2Holds(size)) {
            if (auto victim = l2_.access(l2Key(vpn, size)).displaced;
                victim && l2_victim_) {
                l2_victim_(*victim >> 2,
                           static_cast<mem::PageSize>(*victim & 3));
            }
        }
    }

    /**
     * Account one access served by the System's per-core
     * last-translation cache: by construction such an access would
     * have hit L1 (the cached page was L1-filled and nothing
     * invalidated it since), so it counts as an L1 hit without paying
     * the set scan. Skipping the LRU stamp refresh is safe — repeated
     * accesses to one page leave the set's relative recency order
     * unchanged.
     */
    void
    noteRepeatL1Hit()
    {
        ++accesses_;
        ++l1_hits_;
    }

    /**
     * TLB shootdown for [base, base + bytes): drop all cached
     * translations of every page size overlapping the range.
     */
    u64
    shootdown(Addr base, u64 bytes)
    {
        u64 dropped = 0;
        dropped += dropRange(l1_4k_, base, bytes, mem::PageSize::Base4K,
                             false);
        dropped += dropRange(l1_2m_, base, bytes, mem::PageSize::Huge2M,
                             false);
        dropped += dropRange(l1_1g_, base, bytes, mem::PageSize::Huge1G,
                             false);
        dropped += dropRange(l2_, base, bytes, mem::PageSize::Base4K, true);
        dropped += dropRange(l2_, base, bytes, mem::PageSize::Huge2M, true);
        ++shootdowns_;
        return dropped;
    }

    /** Flush every structure (context switch / CR3 write). */
    void
    flushAll()
    {
        l1_4k_.flushAll();
        l1_2m_.flushAll();
        l1_1g_.flushAll();
        l2_.flushAll();
    }

    u64 accesses() const { return accesses_; }
    u64 l1Hits() const { return l1_hits_; }
    u64 l2Hits() const { return l2_hits_; }
    u64 walks() const { return walks_; }
    u64 shootdowns() const { return shootdowns_; }

    /** Fraction of accesses that missed the whole hierarchy. */
    double missRate() const { return ratio(walks_, accesses_); }

    void
    resetStats()
    {
        accesses_ = l1_hits_ = l2_hits_ = walks_ = shootdowns_ = 0;
    }

    /**
     * Visit every resident translation as (vpn, size). Entries can be
     * duplicated across levels; callers that care should de-duplicate.
     * Used by the cross-layer invariant checker to prove no stale
     * translation survives a promotion/demotion shootdown.
     */
    template <typename Fn>
    void
    forEachResident(Fn &&fn) const
    {
        l1_4k_.forEachValid([&](Vpn v) { fn(v, mem::PageSize::Base4K); });
        l1_2m_.forEachValid([&](Vpn v) { fn(v, mem::PageSize::Huge2M); });
        l1_1g_.forEachValid([&](Vpn v) { fn(v, mem::PageSize::Huge1G); });
        l2_.forEachValid([&](Vpn key) {
            fn(key >> 2, static_cast<mem::PageSize>(key & 3));
        });
    }

    const TlbGeometry &geometry() const { return geometry_; }
    SetAssocTlb &l1Of(mem::PageSize size)
    {
        switch (size) {
          case mem::PageSize::Base4K: return l1_4k_;
          case mem::PageSize::Huge2M: return l1_2m_;
          case mem::PageSize::Huge1G: return l1_1g_;
        }
        return l1_4k_;
    }
    SetAssocTlb &l2() { return l2_; }

  private:
    bool
    l2Holds(mem::PageSize size) const
    {
        if (size == mem::PageSize::Huge1G)
            return geometry_.l2_holds_1g;
        return true;
    }

    /** Unified-L2 key: size code in the low bits keeps classes distinct. */
    static Vpn
    l2Key(Vpn vpn, mem::PageSize size)
    {
        return (vpn << 2) | static_cast<Vpn>(size);
    }

    u64
    dropRange(SetAssocTlb &structure, Addr base, u64 bytes,
              mem::PageSize size, bool keyed)
    {
        const Vpn lo = mem::vpnOf(base, size);
        const Vpn hi = mem::vpnOf(base + bytes - 1, size) + 1;
        if (keyed)
            return structure.invalidateVpnRange(l2Key(lo, size),
                                                l2Key(hi, size));
        return structure.invalidateVpnRange(lo, hi);
    }

    TlbGeometry geometry_;
    SetAssocTlb l1_4k_;
    SetAssocTlb l1_2m_;
    SetAssocTlb l1_1g_;
    SetAssocTlb l2_;
    L2VictimHook l2_victim_;

    u64 accesses_ = 0;
    u64 l1_hits_ = 0;
    u64 l2_hits_ = 0;
    u64 walks_ = 0;
    u64 shootdowns_ = 0;
};

} // namespace pccsim::tlb
