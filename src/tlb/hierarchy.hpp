/**
 * @file
 * Two-level data-TLB hierarchy model.
 *
 * Per Table 2 of the paper: split L1 D-TLBs per page size and a unified
 * second-level TLB holding 4KB and 2MB translations. A memory access whose
 * translation misses everywhere triggers a hardware page-table walk — the
 * event stream the promotion candidate cache consumes.
 *
 * Multi-tenant nodes tag every entry with the current ASID (x86 PCID):
 * the tag is folded into the high bits of the SetAssocTlb key, so
 * translations of different address spaces coexist and a context switch
 * is a setCurrentAsid() call (CR3 write with the PCID-preserve bit)
 * instead of a flushAll(). ASID 0 produces today's raw keys bit for
 * bit, so single-tenant runs are unchanged. Set indexing uses the
 * untagged VPN bits exactly as real ASID-tagged TLBs index by VPN and
 * tag-match on the ASID.
 */

#pragma once

#include <functional>

#include "mem/paging.hpp"
#include "tlb/set_assoc_tlb.hpp"
#include "util/stats.hpp"

namespace pccsim::tlb {

/** Where an address translation was satisfied. */
enum class HitLevel : u8
{
    L1 = 0,
    L2 = 1,
    Miss = 2, //!< full miss: page-table walk required
};

class TlbHierarchy
{
  public:
    /**
     * Bit position of the ASID tag within a SetAssocTlb key. VPNs are
     * at most vaddr >> 12 of a 48-bit canonical address (< 2^36), and
     * the unified-L2 key shifts the VPN by another 2 bits (< 2^38), so
     * the low 48 bits always hold the untagged key and the tag can
     * never collide with kInvalidVpn (~0, which needs all low bits set).
     */
    static constexpr unsigned kAsidShift = 48;

    explicit TlbHierarchy(const TlbGeometry &geometry = TlbGeometry{})
        : geometry_(geometry),
          l1_4k_(geometry.l1_4k),
          l1_2m_(geometry.l1_2m),
          l1_1g_(geometry.l1_1g),
          l2_(geometry.l2)
    {
    }

    /**
     * Translate one access to a page mapped at `size`.
     *
     * @param vaddr Virtual byte address being accessed.
     * @param size Page size of the mapping currently backing vaddr
     *        (known from the page table; the hardware discovers it from
     *        whichever structure hits or from the walk).
     * @return The level that supplied the translation. On Miss the caller
     *         must walk the page table and then call fill().
     */
    HitLevel
    access(Addr vaddr, mem::PageSize size)
    {
        const Vpn vpn = mem::vpnOf(vaddr, size) | asid_tag_;
        ++accesses_;
        if (l1Of(size).lookup(vpn)) {
            ++l1_hits_;
            return HitLevel::L1;
        }
        if (l2Holds(size) && l2_.lookup(l2Key(vpn, size))) {
            ++l2_hits_;
            // A victim-style refill: the translation moves (also) into
            // L1. The combined access() probes and inserts in one set
            // scan (the L1 lookup above already missed).
            l1Of(size).access(vpn);
            return HitLevel::L2;
        }
        ++walks_;
        return HitLevel::Miss;
    }

    /** Observer of L2 TLB evictions (victim-buffer alternative). */
    using L2VictimHook = std::function<void(Vpn, mem::PageSize)>;

    void setL2VictimHook(L2VictimHook hook) { l2_victim_ = std::move(hook); }

    /** Install a translation after a page-table walk. */
    void
    fill(Addr vaddr, mem::PageSize size)
    {
        const Vpn vpn = mem::vpnOf(vaddr, size) | asid_tag_;
        l1Of(size).access(vpn);
        if (l2Holds(size)) {
            if (auto victim = l2_.access(l2Key(vpn, size)).displaced;
                victim && l2_victim_) {
                const Vpn raw = *victim & kKeyMask;
                l2_victim_(raw >> 2,
                           static_cast<mem::PageSize>(raw & 3));
            }
        }
    }

    /**
     * Account one access served by the System's per-core
     * last-translation cache: by construction such an access would
     * have hit L1 (the cached page was L1-filled and nothing
     * invalidated it since), so it counts as an L1 hit without paying
     * the set scan. Skipping the LRU stamp refresh is safe — repeated
     * accesses to one page leave the set's relative recency order
     * unchanged.
     */
    void
    noteRepeatL1Hit()
    {
        ++accesses_;
        ++l1_hits_;
    }

    /**
     * TLB shootdown for [base, base + bytes) of the address space
     * `asid`: drop all cached translations of every page size
     * overlapping the range. The owning ASID must be supplied because
     * shootdowns target a process that need not be the one currently
     * loaded on this core (promotion IPIs broadcast to every core
     * caching the mapping).
     */
    u64
    shootdown(Addr base, u64 bytes, Asid asid = 0)
    {
        const u64 tag = static_cast<u64>(asid) << kAsidShift;
        u64 dropped = 0;
        dropped += dropRange(l1_4k_, base, bytes, mem::PageSize::Base4K,
                             false, tag);
        dropped += dropRange(l1_2m_, base, bytes, mem::PageSize::Huge2M,
                             false, tag);
        dropped += dropRange(l1_1g_, base, bytes, mem::PageSize::Huge1G,
                             false, tag);
        dropped += dropRange(l2_, base, bytes, mem::PageSize::Base4K,
                             true, tag);
        dropped += dropRange(l2_, base, bytes, mem::PageSize::Huge2M,
                             true, tag);
        ++shootdowns_;
        return dropped;
    }

    /** Flush every structure (context switch / CR3 write). */
    void
    flushAll()
    {
        l1_4k_.flushAll();
        l1_2m_.flushAll();
        l1_1g_.flushAll();
        l2_.flushAll();
    }

    /**
     * Drop every entry of one address space, keeping the rest (x86
     * INVPCID type 1). Used when an ASID is retired or recycled; a
     * plain context switch in ASID mode flushes nothing.
     */
    u64
    flushAsid(Asid asid)
    {
        const u64 tag = static_cast<u64>(asid) << kAsidShift;
        u64 dropped = 0;
        dropped += l1_4k_.flushMatching(tag, ~kKeyMask);
        dropped += l1_2m_.flushMatching(tag, ~kKeyMask);
        dropped += l1_1g_.flushMatching(tag, ~kKeyMask);
        dropped += l2_.flushMatching(tag, ~kKeyMask);
        return dropped;
    }

    /**
     * Context-switch to address space `asid`. Subsequent accesses and
     * fills tag their keys with it; entries of other ASIDs stay
     * resident and become reachable again when their ASID is loaded.
     */
    void
    setCurrentAsid(Asid asid)
    {
        asid_ = asid;
        asid_tag_ = static_cast<u64>(asid) << kAsidShift;
    }

    Asid currentAsid() const { return asid_; }

    u64 accesses() const { return accesses_; }
    u64 l1Hits() const { return l1_hits_; }
    u64 l2Hits() const { return l2_hits_; }
    u64 walks() const { return walks_; }
    u64 shootdowns() const { return shootdowns_; }

    /** Fraction of accesses that missed the whole hierarchy. */
    double missRate() const { return ratio(walks_, accesses_); }

    void
    resetStats()
    {
        accesses_ = l1_hits_ = l2_hits_ = walks_ = shootdowns_ = 0;
    }

    /**
     * Visit every resident translation of the *current* ASID as
     * (vpn, size), tags stripped. Entries can be duplicated across
     * levels; callers that care should de-duplicate. Used by the
     * cross-layer invariant checker to prove no stale translation
     * survives a promotion/demotion shootdown — other tenants' entries
     * are invisible here because the checker compares against the
     * currently-loaded process.
     */
    template <typename Fn>
    void
    forEachResident(Fn &&fn) const
    {
        const auto mine = [this](Vpn key) {
            return (key & ~kKeyMask) == asid_tag_;
        };
        l1_4k_.forEachValid([&](Vpn v) {
            if (mine(v))
                fn(v & kKeyMask, mem::PageSize::Base4K);
        });
        l1_2m_.forEachValid([&](Vpn v) {
            if (mine(v))
                fn(v & kKeyMask, mem::PageSize::Huge2M);
        });
        l1_1g_.forEachValid([&](Vpn v) {
            if (mine(v))
                fn(v & kKeyMask, mem::PageSize::Huge1G);
        });
        l2_.forEachValid([&](Vpn key) {
            if (mine(key)) {
                const Vpn raw = key & kKeyMask;
                fn(raw >> 2, static_cast<mem::PageSize>(raw & 3));
            }
        });
    }

    const TlbGeometry &geometry() const { return geometry_; }
    SetAssocTlb &l1Of(mem::PageSize size)
    {
        switch (size) {
          case mem::PageSize::Base4K: return l1_4k_;
          case mem::PageSize::Huge2M: return l1_2m_;
          case mem::PageSize::Huge1G: return l1_1g_;
        }
        return l1_4k_;
    }
    SetAssocTlb &l2() { return l2_; }

  private:
    /** Low 48 bits: the untagged key; high 16 bits: the ASID tag. */
    static constexpr u64 kKeyMask = (u64(1) << kAsidShift) - 1;

    bool
    l2Holds(mem::PageSize size) const
    {
        if (size == mem::PageSize::Huge1G)
            return geometry_.l2_holds_1g;
        return true;
    }

    /**
     * Unified-L2 key: size code in the low bits keeps classes
     * distinct. The input vpn may carry the ASID tag in its high
     * bits; the shift moves it out of the low-48 key field, so
     * re-extract and re-apply it above the shifted key.
     */
    static Vpn
    l2Key(Vpn vpn, mem::PageSize size)
    {
        const Vpn tag = vpn & ~kKeyMask;
        const Vpn raw = vpn & kKeyMask;
        return tag | (raw << 2) | static_cast<Vpn>(size);
    }

    u64
    dropRange(SetAssocTlb &structure, Addr base, u64 bytes,
              mem::PageSize size, bool keyed, u64 tag)
    {
        const Vpn lo = mem::vpnOf(base, size) | tag;
        const Vpn hi = (mem::vpnOf(base + bytes - 1, size) + 1) | tag;
        if (keyed)
            return structure.invalidateVpnRange(l2Key(lo, size),
                                                l2Key(hi, size));
        return structure.invalidateVpnRange(lo, hi);
    }

    TlbGeometry geometry_;
    SetAssocTlb l1_4k_;
    SetAssocTlb l1_2m_;
    SetAssocTlb l1_1g_;
    SetAssocTlb l2_;
    L2VictimHook l2_victim_;

    Asid asid_ = 0;
    u64 asid_tag_ = 0;

    u64 accesses_ = 0;
    u64 l1_hits_ = 0;
    u64 l2_hits_ = 0;
    u64 walks_ = 0;
    u64 shootdowns_ = 0;
};

} // namespace pccsim::tlb
