/**
 * @file
 * Status/error reporting helpers in the gem5 tradition.
 *
 * fatal() aborts the run for user-caused conditions (bad configuration),
 * panic() aborts for internal invariant violations (simulator bugs),
 * warn()/inform() print to stderr without stopping the run.
 */

#pragma once

#include <cstdlib>
#include <sstream>
#include <string>

namespace pccsim {

namespace detail {

/** Concatenate any streamable arguments into one string. */
template <typename... Args>
std::string
concat(Args &&...args)
{
    std::ostringstream os;
    (os << ... << args);
    return os.str();
}

[[noreturn]] void fatalImpl(const std::string &msg);
[[noreturn]] void panicImpl(const std::string &msg);
void warnImpl(const std::string &msg);
void informImpl(const std::string &msg);

} // namespace detail

/** Abort with exit(1): the user asked for something impossible. */
template <typename... Args>
[[noreturn]] void
fatal(Args &&...args)
{
    detail::fatalImpl(detail::concat(std::forward<Args>(args)...));
}

/** Abort with std::abort(): an internal invariant was violated. */
template <typename... Args>
[[noreturn]] void
panic(Args &&...args)
{
    detail::panicImpl(detail::concat(std::forward<Args>(args)...));
}

/** Non-fatal warning about questionable behaviour. */
template <typename... Args>
void
warn(Args &&...args)
{
    detail::warnImpl(detail::concat(std::forward<Args>(args)...));
}

/** Informational status message. */
template <typename... Args>
void
inform(Args &&...args)
{
    detail::informImpl(detail::concat(std::forward<Args>(args)...));
}

/** panic() unless the given condition holds. */
#define PCCSIM_ASSERT(cond, ...)                                            \
    do {                                                                    \
        if (!(cond))                                                        \
            ::pccsim::panic("assertion failed: " #cond " ", ##__VA_ARGS__); \
    } while (0)

/**
 * Debug-only assertion for per-access hot paths.
 *
 * Identical to PCCSIM_ASSERT in debug builds; compiled out entirely
 * (the condition is parsed but never evaluated) when NDEBUG is set —
 * which includes the default RelWithDebInfo build. Use it only for
 * invariants whose violation would also be caught downstream or by the
 * Debug-configuration test run; user-facing validation must stay
 * PCCSIM_ASSERT/fatal().
 */
#if defined(NDEBUG) && !defined(PCCSIM_FORCE_DCHECKS)
#define PCCSIM_DCHECK(cond, ...)                                            \
    do {                                                                    \
        if (false)                                                          \
            static_cast<void>(cond);                                        \
    } while (0)
#else
#define PCCSIM_DCHECK(cond, ...) PCCSIM_ASSERT(cond, ##__VA_ARGS__)
#endif

} // namespace pccsim
