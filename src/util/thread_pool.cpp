#include "util/thread_pool.hpp"

namespace pccsim::util {

ThreadPool::ThreadPool(u32 threads)
{
    u32 n = threads == 0 ? hardwareJobs() : threads;
    if (n < 1)
        n = 1;
    workers_.reserve(n);
    for (u32 w = 0; w < n; ++w)
        workers_.emplace_back([this] { workerLoop(); });
}

ThreadPool::~ThreadPool()
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        stop_ = true;
    }
    wake_.notify_all();
    for (auto &worker : workers_)
        worker.join();
}

u32
ThreadPool::hardwareJobs()
{
    const unsigned n = std::thread::hardware_concurrency();
    return n == 0 ? 1 : static_cast<u32>(n);
}

void
ThreadPool::post(std::function<void()> task)
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        tasks_.push_back(std::move(task));
    }
    wake_.notify_one();
}

void
ThreadPool::rethrowFailures(std::vector<ParallelError::Failure> failures,
                            size_t total)
{
    if (failures.empty())
        return;
    std::sort(failures.begin(), failures.end(),
              [](const ParallelError::Failure &a,
                 const ParallelError::Failure &b) {
                  return a.index < b.index;
              });
    if (failures.size() == 1)
        std::rethrow_exception(failures.front().error);

    const auto describe = [](const std::exception_ptr &error) {
        try {
            std::rethrow_exception(error);
        } catch (const std::exception &e) {
            return std::string(e.what());
        } catch (...) {
            return std::string("unknown exception");
        }
    };
    std::ostringstream msg;
    msg << "parallelMap: " << failures.size() << " of " << total
        << " tasks failed (indices";
    constexpr size_t kMaxListed = 16;
    for (size_t i = 0; i < failures.size() && i < kMaxListed; ++i)
        msg << ' ' << failures[i].index;
    if (failures.size() > kMaxListed)
        msg << " ...";
    msg << "); first: " << describe(failures.front().error);
    throw ParallelError(msg.str(), std::move(failures));
}

void
ThreadPool::workerLoop()
{
    for (;;) {
        std::function<void()> task;
        {
            std::unique_lock<std::mutex> lock(mutex_);
            wake_.wait(lock, [this] { return stop_ || !tasks_.empty(); });
            if (tasks_.empty())
                return; // stop_ set and queue drained
            task = std::move(tasks_.front());
            tasks_.pop_front();
        }
        task();
    }
}

} // namespace pccsim::util
