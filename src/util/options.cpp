#include "util/options.hpp"

#include <cstdlib>

#include "util/log.hpp"

namespace pccsim {

Options::Options(int argc, char **argv)
{
    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        if (arg.rfind("--", 0) != 0) {
            positional_.push_back(arg);
            continue;
        }
        arg = arg.substr(2);
        auto eq = arg.find('=');
        if (eq != std::string::npos) {
            values_[arg.substr(0, eq)] = arg.substr(eq + 1);
        } else if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0)
                   != 0) {
            values_[arg] = argv[++i];
        } else {
            values_[arg] = "";
        }
    }
}

bool
Options::has(const std::string &name) const
{
    return values_.count(name) != 0;
}

std::string
Options::get(const std::string &name, const std::string &fallback) const
{
    auto it = values_.find(name);
    return it == values_.end() ? fallback : it->second;
}

i64
Options::getInt(const std::string &name, i64 fallback) const
{
    auto it = values_.find(name);
    if (it == values_.end() || it->second.empty())
        return fallback;
    return std::strtoll(it->second.c_str(), nullptr, 0);
}

double
Options::getDouble(const std::string &name, double fallback) const
{
    auto it = values_.find(name);
    if (it == values_.end() || it->second.empty())
        return fallback;
    return std::strtod(it->second.c_str(), nullptr);
}

bool
Options::getBool(const std::string &name, bool fallback) const
{
    auto it = values_.find(name);
    if (it == values_.end())
        return fallback;
    const std::string &v = it->second;
    return v.empty() || v == "1" || v == "true" || v == "yes" || v == "on";
}

} // namespace pccsim
