#include "util/table.hpp"

#include <fstream>
#include <iomanip>
#include <sstream>

#include "util/log.hpp"

namespace pccsim {

Table::Table(std::vector<std::string> header) : header_(std::move(header))
{
}

void
Table::row(std::vector<std::string> cells)
{
    PCCSIM_ASSERT(cells.size() == header_.size(),
                  "table row width ", cells.size(), " != header width ",
                  header_.size());
    rows_.push_back(std::move(cells));
}

std::string
Table::str() const
{
    std::vector<size_t> widths(header_.size());
    for (size_t c = 0; c < header_.size(); ++c)
        widths[c] = header_[c].size();
    for (const auto &r : rows_)
        for (size_t c = 0; c < r.size(); ++c)
            widths[c] = std::max(widths[c], r[c].size());

    std::ostringstream os;
    auto emit = [&](const std::vector<std::string> &cells) {
        for (size_t c = 0; c < cells.size(); ++c) {
            os << std::left << std::setw(static_cast<int>(widths[c]))
               << cells[c];
            os << (c + 1 == cells.size() ? "\n" : "  ");
        }
    };
    emit(header_);
    for (size_t c = 0; c < header_.size(); ++c) {
        os << std::string(widths[c], '-')
           << (c + 1 == header_.size() ? "\n" : "  ");
    }
    for (const auto &r : rows_)
        emit(r);
    return os.str();
}

std::string
Table::csv() const
{
    std::ostringstream os;
    auto emit = [&](const std::vector<std::string> &cells) {
        for (size_t c = 0; c < cells.size(); ++c)
            os << cells[c] << (c + 1 == cells.size() ? "\n" : ",");
    };
    emit(header_);
    for (const auto &r : rows_)
        emit(r);
    return os.str();
}

std::string
Table::fmt(double value, int precision)
{
    std::ostringstream os;
    os << std::fixed << std::setprecision(precision) << value;
    return os.str();
}

std::string
Table::pct(double value, int precision)
{
    std::ostringstream os;
    os << std::fixed << std::setprecision(precision) << value << "%";
    return os.str();
}

void
writeFile(const std::string &path, const std::string &contents)
{
    std::ofstream out(path);
    if (!out)
        fatal("cannot open ", path, " for writing");
    out << contents;
}

} // namespace pccsim
