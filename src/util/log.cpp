#include "util/log.hpp"

#include <cstdio>

namespace pccsim {
namespace detail {

void
fatalImpl(const std::string &msg)
{
    std::fprintf(stderr, "fatal: %s\n", msg.c_str());
    std::exit(1);
}

void
panicImpl(const std::string &msg)
{
    std::fprintf(stderr, "panic: %s\n", msg.c_str());
    std::abort();
}

void
warnImpl(const std::string &msg)
{
    std::fprintf(stderr, "warn: %s\n", msg.c_str());
}

void
informImpl(const std::string &msg)
{
    std::fprintf(stderr, "info: %s\n", msg.c_str());
}

} // namespace detail
} // namespace pccsim
