#include "util/log.hpp"

#include <cstdio>
#include <mutex>

namespace pccsim {
namespace detail {

namespace {

// The runner simulates on worker threads; interleaved fprintf calls
// would shred diagnostics, so every sink serializes on one mutex.
std::mutex &
sinkMutex()
{
    static std::mutex mutex;
    return mutex;
}

} // namespace

void
fatalImpl(const std::string &msg)
{
    {
        std::lock_guard<std::mutex> lock(sinkMutex());
        std::fprintf(stderr, "fatal: %s\n", msg.c_str());
    }
    std::exit(1);
}

void
panicImpl(const std::string &msg)
{
    {
        std::lock_guard<std::mutex> lock(sinkMutex());
        std::fprintf(stderr, "panic: %s\n", msg.c_str());
    }
    std::abort();
}

void
warnImpl(const std::string &msg)
{
    std::lock_guard<std::mutex> lock(sinkMutex());
    std::fprintf(stderr, "warn: %s\n", msg.c_str());
}

void
informImpl(const std::string &msg)
{
    std::lock_guard<std::mutex> lock(sinkMutex());
    std::fprintf(stderr, "info: %s\n", msg.c_str());
}

} // namespace detail
} // namespace pccsim
