/**
 * @file
 * Structured, non-aborting error reporting.
 *
 * fatal()/panic() (log.hpp) terminate the run; Status carries a
 * recoverable diagnosis back to a caller that decides what to do with
 * it. The cross-layer invariant checker builds on this: every detected
 * inconsistency becomes a Status with a precise message instead of a
 * silent divergence or an immediate abort deep inside a subsystem.
 */

#pragma once

#include <string>
#include <utility>

#include "util/log.hpp"
#include "util/types.hpp"

namespace pccsim::util {

class Status
{
  public:
    /** Default construction is success. */
    Status() = default;

    /** Build a failed status from streamable message fragments. */
    template <typename... Args>
    static Status
    error(Args &&...args)
    {
        Status s;
        s.failed_ = true;
        s.message_ = detail::concat(std::forward<Args>(args)...);
        return s;
    }

    bool ok() const { return !failed_; }
    explicit operator bool() const { return ok(); }

    /** Diagnosis of the first failure; empty when ok(). */
    const std::string &message() const { return message_; }

    /**
     * Merge another status in, keeping the first failure seen (later
     * failures are counted but their messages dropped). Lets a checker
     * sweep a whole structure and report how widespread the damage is.
     */
    Status &
    update(Status other)
    {
        if (other.ok())
            return *this;
        if (ok()) {
            failed_ = true;
            message_ = std::move(other.message_);
            extra_failures_ += other.extra_failures_;
        } else {
            extra_failures_ += 1 + other.extra_failures_;
        }
        return *this;
    }

    /** Failures merged after the first (see update()). */
    u64 extraFailures() const { return extra_failures_; }

    /** Message plus a suffix summarizing merged failures. */
    std::string
    toString() const
    {
        if (ok())
            return "ok";
        if (extra_failures_ == 0)
            return message_;
        return message_ + " (+" + std::to_string(extra_failures_) +
               " more failures)";
    }

  private:
    bool failed_ = false;
    std::string message_;
    u64 extra_failures_ = 0;
};

} // namespace pccsim::util
