/**
 * @file
 * Host self-profiling: where does the harness's *wall* time go?
 *
 * The simulator reports simulated cycles; this records what the run
 * cost the host — per-phase wall time (workload setup, the access
 * loop, emission/export) and peak RSS — so BENCH_*.json and every
 * --perf report can distinguish "the simulation got slower" from "the
 * harness spends its time elsewhere".
 *
 * The profile is process-global and thread-safe (parallel runner
 * workers all add to it) but deliberately kept OUT of simulation
 * results: host timings are nondeterministic, and RunResult equality
 * (the determinism contract) must not depend on them.
 */

#pragma once

#include <map>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "util/types.hpp"

namespace pccsim::util {

class HostProfile
{
  public:
    /** The process-wide profile (immortal: safe from atexit hooks). */
    static HostProfile &global();

    /** Accumulate `nanos` of wall time into `phase`. */
    void add(const std::string &phase, u64 nanos);

    /** Snapshot, sorted by phase name. */
    std::vector<std::pair<std::string, u64>> phases() const;

    /** Monotonic host clock in nanoseconds. */
    static u64 nowNanos();

    /** Peak resident set size of this process, in bytes (0 unknown). */
    static u64 peakRssBytes();

    /** RAII phase timer. */
    class Timer
    {
      public:
        explicit Timer(const char *phase)
            : phase_(phase), t0_(nowNanos())
        {
        }

        ~Timer() { global().add(phase_, nowNanos() - t0_); }

        Timer(const Timer &) = delete;
        Timer &operator=(const Timer &) = delete;

      private:
        const char *phase_;
        u64 t0_;
    };

  private:
    mutable std::mutex mutex_;
    std::map<std::string, u64> phases_;
};

} // namespace pccsim::util
