/**
 * @file
 * Deterministic pseudo-random number generation.
 *
 * Every source of randomness in pccsim flows through these generators so
 * that a given seed reproduces a run bit-for-bit. SplitMix64 is used for
 * seeding and cheap hashing; Xoshiro256** is the workhorse stream.
 */

#pragma once

#include <cmath>
#include <cstdint>

#include "util/types.hpp"

namespace pccsim {

/** SplitMix64: tiny, fast, good-enough mixer used for seeding/hashing. */
inline u64
splitmix64(u64 &state)
{
    u64 z = (state += 0x9e3779b97f4a7c15ull);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
}

/** Stateless mix of a 64-bit value (for hashing addresses etc.). */
inline u64
mix64(u64 x)
{
    return splitmix64(x);
}

/**
 * Xoshiro256** PRNG. Small state, excellent statistical quality, and much
 * faster than std::mt19937_64 — all workload generators use this.
 */
class Rng
{
  public:
    /** Seed all 256 bits of state from one 64-bit seed via SplitMix64. */
    explicit Rng(u64 seed = 0x5eed5eed5eed5eedull)
    {
        u64 sm = seed;
        for (auto &word : state_)
            word = splitmix64(sm);
    }

    /** Next raw 64-bit value. */
    u64
    next()
    {
        const u64 result = rotl(state_[1] * 5, 7) * 9;
        const u64 t = state_[1] << 17;
        state_[2] ^= state_[0];
        state_[3] ^= state_[1];
        state_[1] ^= state_[2];
        state_[0] ^= state_[3];
        state_[2] ^= t;
        state_[3] = rotl(state_[3], 45);
        return result;
    }

    /** Uniform integer in [0, bound). bound must be > 0. */
    u64
    below(u64 bound)
    {
        // Lemire's multiply-shift rejection-free approximation is fine
        // for simulation purposes (bias < 2^-64 * bound).
        return static_cast<u64>(
            (static_cast<unsigned __int128>(next()) * bound) >> 64);
    }

    /** Uniform integer in [lo, hi]. */
    u64
    range(u64 lo, u64 hi)
    {
        return lo + below(hi - lo + 1);
    }

    /** Uniform double in [0, 1). */
    double
    uniform()
    {
        return static_cast<double>(next() >> 11) * 0x1.0p-53;
    }

    /** Bernoulli trial with probability p. */
    bool
    chance(double p)
    {
        return uniform() < p;
    }

  private:
    static u64
    rotl(u64 x, int k)
    {
        return (x << k) | (x >> (64 - k));
    }

    u64 state_[4];
};

/**
 * Zipf-distributed integer sampler over [0, n).
 *
 * Uses the rejection-inversion method of Hörmann & Derflinger, which has
 * O(1) sampling cost independent of n — essential for the synthetic
 * workload generators that model skewed page popularity.
 */
class ZipfSampler
{
  public:
    /**
     * @param n Number of distinct items.
     * @param exponent Zipf skew (typical web/graph skew is 0.6 - 1.0).
     */
    ZipfSampler(u64 n, double exponent)
        : n_(n), s_(exponent)
    {
        hxm_ = h(static_cast<double>(n_) + 0.5);
        const double h0 = h(1.5) - std::pow(2.0, -s_);
        hx0_ = h0;
        cut_ = 1.0 - hInv(h(1.5) - std::pow(2.0, -s_));
    }

    /** Draw one Zipf value in [0, n). Smaller values are more popular. */
    u64
    sample(Rng &rng)
    {
        while (true) {
            const double u = hx0_ + rng.uniform() * (hxm_ - hx0_);
            const double x = hInv(u);
            const u64 k = static_cast<u64>(x + 0.5);
            const double kd = static_cast<double>(k);
            if (kd - x <= cut_)
                return clamp(k);
            if (u >= h(kd + 0.5) - std::pow(kd, -s_))
                return clamp(k);
        }
    }

  private:
    u64
    clamp(u64 k) const
    {
        if (k < 1)
            k = 1;
        if (k > n_)
            k = n_;
        return k - 1;
    }

    double
    h(double x) const
    {
        if (s_ == 1.0)
            return std::log(x);
        return (std::pow(x, 1.0 - s_) - 1.0) / (1.0 - s_);
    }

    double
    hInv(double x) const
    {
        if (s_ == 1.0)
            return std::exp(x);
        return std::pow(1.0 + x * (1.0 - s_), 1.0 / (1.0 - s_));
    }

    u64 n_;
    double s_;
    double hxm_;
    double hx0_;
    double cut_;
};

} // namespace pccsim
