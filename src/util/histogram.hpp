/**
 * @file
 * Power-of-two bucketed histogram for reuse distances and latencies.
 */

#pragma once

#include <array>
#include <bit>
#include <string>
#include <vector>

#include "util/types.hpp"

namespace pccsim {

/**
 * Histogram whose bucket i counts samples in [2^i, 2^(i+1)), with bucket 0
 * also holding the value 0. Covers the full 64-bit range in 65 buckets,
 * which is exactly what page reuse-distance distributions need.
 */
class Log2Histogram
{
  public:
    void
    add(u64 value, u64 count = 1)
    {
        buckets_[bucketOf(value)] += count;
        total_ += count;
        sum_ += value * count;
    }

    /** Bucket index for a value: floor(log2(v)) + 1, 0 maps to bucket 0. */
    static unsigned
    bucketOf(u64 value)
    {
        return value == 0 ? 0 : 64 - std::countl_zero(value);
    }

    /** Lower bound of bucket i. */
    static u64
    bucketLow(unsigned i)
    {
        return i == 0 ? 0 : (1ull << (i - 1));
    }

    u64 count(unsigned bucket) const { return buckets_.at(bucket); }
    u64 total() const { return total_; }

    /** Arithmetic mean of all samples (0 when empty). */
    double
    mean() const
    {
        return total_ == 0
            ? 0.0
            : static_cast<double>(sum_) / static_cast<double>(total_);
    }

    /** Smallest value v such that >= frac of samples are <= bucket of v. */
    u64
    quantile(double frac) const
    {
        u64 running = 0;
        const auto threshold =
            static_cast<u64>(frac * static_cast<double>(total_));
        for (unsigned i = 0; i < buckets_.size(); ++i) {
            running += buckets_[i];
            if (running >= threshold)
                return bucketLow(i);
        }
        return bucketLow(static_cast<unsigned>(buckets_.size() - 1));
    }

    void
    reset()
    {
        buckets_.fill(0);
        total_ = 0;
        sum_ = 0;
    }

    /** Non-empty buckets as (bucket_low, count) pairs. */
    std::vector<std::pair<u64, u64>>
    nonEmpty() const
    {
        std::vector<std::pair<u64, u64>> out;
        for (unsigned i = 0; i < buckets_.size(); ++i)
            if (buckets_[i] != 0)
                out.emplace_back(bucketLow(i), buckets_[i]);
        return out;
    }

  private:
    std::array<u64, 65> buckets_{};
    u64 total_ = 0;
    u64 sum_ = 0;
};

} // namespace pccsim
