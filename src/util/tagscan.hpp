/**
 * @file
 * Tag-array scan kernels shared by the SoA cache and TLB structures.
 *
 * The hot structures (cache/Cache, tlb/SetAssocTlb) keep their tags in
 * a contiguous array per set, so "is this tag resident?" is a short
 * linear scan. findTag() is that scan; with PCCSIM_SIMD_TAGSCAN (a
 * CMake feature flag that also supplies the -m flags) the compares run
 * 4 tags per AVX2 instruction / 2 per SSE2 instruction instead.
 *
 * Both kernels are deliberately *branch-free across the ways*: an
 * early-exit compare loop looks cheaper but its exit way is data-
 * dependent on every probe of a random-access stream, so it pays a
 * branch mispredict per scan — the dominant cost of the whole timing
 * model. Accumulating a match mask and taking one well-predicted
 * hit/miss branch at the end is faster on every geometry used here
 * (4-16 ways), and is what lets the SIMD variants be bit-identical
 * drop-ins.
 *
 * Tags within one set are unique (inserts only happen after a failed
 * probe), so "any match" identifies the unique matching way.
 */

#pragma once

#include "util/types.hpp"

#if defined(PCCSIM_SIMD_TAGSCAN) && defined(__AVX2__)
#include <immintrin.h>
#elif defined(PCCSIM_SIMD_TAGSCAN) && defined(__SSE2__)
#include <emmintrin.h>
#endif

namespace pccsim::util {

/**
 * Index of `tag` within tags[0, ways), or a negative value when
 * absent. Caller guarantees at most one element matches and that
 * ways <= 32.
 */
inline int
findTag(const u64 *tags, u32 ways, u64 tag)
{
    u32 mask = 0;
    u32 w = 0;
#if defined(PCCSIM_SIMD_TAGSCAN) && defined(__AVX2__)
    const __m256i needle =
        _mm256_set1_epi64x(static_cast<long long>(tag));
    for (; w + 4 <= ways; w += 4) {
        const __m256i lane = _mm256_loadu_si256(
            reinterpret_cast<const __m256i *>(tags + w));
        const u32 m = static_cast<u32>(_mm256_movemask_pd(
            _mm256_castsi256_pd(_mm256_cmpeq_epi64(lane, needle))));
        mask |= m << w;
    }
#elif defined(PCCSIM_SIMD_TAGSCAN) && defined(__SSE2__)
    const __m128i needle = _mm_set1_epi64x(static_cast<long long>(tag));
    for (; w + 2 <= ways; w += 2) {
        const __m128i lane = _mm_loadu_si128(
            reinterpret_cast<const __m128i *>(tags + w));
        const __m128i eq = _mm_cmpeq_epi32(lane, needle);
        // cmpeq_epi32 matches 32-bit halves; a 64-bit match needs both
        // halves equal, i.e. a full 0xFF byte nibble per qword.
        const u32 m8 = static_cast<u32>(_mm_movemask_epi8(eq));
        mask |= (((m8 & 0x00FFu) == 0x00FFu) ? 1u : 0u) << w;
        mask |= (((m8 & 0xFF00u) == 0xFF00u) ? 2u : 0u) << w;
    }
#endif
    for (; w < ways; ++w)
        mask |= static_cast<u32>(tags[w] == tag) << w;
    return mask ? static_cast<int>(
                      static_cast<u32>(__builtin_ctz(mask)))
                : -1;
}

/**
 * The way with the smallest stamp, earliest index winning ties —
 * i.e. true-LRU victim selection over an SoA stamp array. Branch-free
 * (conditional moves), because the victim way of a miss stream is as
 * unpredictable as the hit way.
 *
 * Callers exploit one identity: never-filled ways carry stamp 0 while
 * every filled way has a unique stamp >= 1, so "earliest way with the
 * minimum stamp" is exactly "first empty way, else true-LRU way" —
 * the fill-before-evict rule without a separate empty-way scan.
 */
inline u32
findVictim(const u64 *stamps, u32 ways)
{
    u32 victim = 0;
    u64 oldest = stamps[0];
    for (u32 w = 1; w < ways; ++w) {
        const bool older = stamps[w] < oldest;
        victim = older ? w : victim;
        oldest = older ? stamps[w] : oldest;
    }
    return victim;
}

/** Outcome of one fused probe-or-victim set scan. */
struct ScanResult
{
    int hit_way;  //!< way holding the tag, or negative
    u32 victim;   //!< earliest-minimum-stamp way (see findVictim)
};

/**
 * findTag and findVictim in a single pass over the set: the two scans
 * read disjoint arrays but share loop structure, and the structures
 * here are miss-dominated (a miss needs both answers), so one fused
 * iteration beats two back-to-back loops. On a hit the victim half is
 * wasted work — cheap, branch-free cmovs — which the caller's MRU
 * fast path already shields where hits cluster.
 */
template <u32 Ways>
inline ScanResult
scanSetFixed(const u64 *tags, const u64 *stamps, u64 tag)
{
    u32 mask = static_cast<u32>(tags[0] == tag);
    u32 victim = 0;
    u64 oldest = stamps[0];
#if defined(__GNUC__)
#pragma GCC unroll 16
#endif
    for (u32 w = 1; w < Ways; ++w) {
        mask |= static_cast<u32>(tags[w] == tag) << w;
        const bool older = stamps[w] < oldest;
        victim = older ? w : victim;
        oldest = older ? stamps[w] : oldest;
    }
    const int hit =
        mask ? static_cast<int>(static_cast<u32>(__builtin_ctz(mask)))
             : -1;
    return {hit, victim};
}

inline ScanResult
scanSet(const u64 *tags, const u64 *stamps, u32 ways, u64 tag)
{
    // Dispatch the common geometries (4/8/16 ways) to fully-unrolled
    // straight-line kernels; the switch is on a per-structure constant
    // so its branch predicts perfectly, unlike a runtime-bound loop
    // whose trip-count bookkeeping rides every single probe.
    switch (ways) {
      case 4:
        return scanSetFixed<4>(tags, stamps, tag);
      case 8:
        return scanSetFixed<8>(tags, stamps, tag);
      case 16:
        return scanSetFixed<16>(tags, stamps, tag);
      default:
        break;
    }
    u32 mask = static_cast<u32>(tags[0] == tag);
    u32 victim = 0;
    u64 oldest = stamps[0];
    for (u32 w = 1; w < ways; ++w) {
        mask |= static_cast<u32>(tags[w] == tag) << w;
        const bool older = stamps[w] < oldest;
        victim = older ? w : victim;
        oldest = older ? stamps[w] : oldest;
    }
    const int hit =
        mask ? static_cast<int>(static_cast<u32>(__builtin_ctz(mask)))
             : -1;
    return {hit, victim};
}

} // namespace pccsim::util
