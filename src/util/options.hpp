/**
 * @file
 * Minimal command-line option parser for the benchmark harnesses and
 * example programs (--key=value and --flag forms).
 */

#pragma once

#include <map>
#include <string>
#include <vector>

#include "util/types.hpp"

namespace pccsim {

/**
 * Parses "--key=value", "--key value", and bare "--flag" arguments.
 * Unknown positional arguments are collected in order.
 */
class Options
{
  public:
    Options(int argc, char **argv);

    /** True if --name was passed at all (with or without a value). */
    bool has(const std::string &name) const;

    /** String value of --name, or fallback when absent. */
    std::string get(const std::string &name,
                    const std::string &fallback = "") const;

    /** Integer value of --name, or fallback when absent. */
    i64 getInt(const std::string &name, i64 fallback) const;

    /** Floating-point value of --name, or fallback when absent. */
    double getDouble(const std::string &name, double fallback) const;

    /** Boolean: present with no value or value in {1,true,yes,on}. */
    bool getBool(const std::string &name, bool fallback = false) const;

    const std::vector<std::string> &positional() const { return positional_; }

  private:
    std::map<std::string, std::string> values_;
    std::vector<std::string> positional_;
};

} // namespace pccsim
