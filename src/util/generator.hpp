/**
 * @file
 * Minimal C++20 coroutine generator.
 *
 * Workloads are written as ordinary algorithmic code that co_yields an
 * AccessOp per simulated memory access; the System pulls lanes through
 * this generator, which makes multi-threaded interleaving (and barrier
 * synchronization) deterministic without OS threads.
 */

#pragma once

#include <coroutine>
#include <exception>
#include <utility>

namespace pccsim {

template <typename T>
class Generator
{
  public:
    struct promise_type
    {
        T current{};

        Generator
        get_return_object()
        {
            return Generator{
                std::coroutine_handle<promise_type>::from_promise(*this)};
        }

        std::suspend_always initial_suspend() noexcept { return {}; }
        std::suspend_always final_suspend() noexcept { return {}; }

        std::suspend_always
        yield_value(T value) noexcept
        {
            current = value;
            return {};
        }

        void return_void() noexcept {}
        void unhandled_exception() { std::terminate(); }
    };

    Generator() = default;

    explicit Generator(std::coroutine_handle<promise_type> handle)
        : handle_(handle)
    {
    }

    Generator(Generator &&other) noexcept
        : handle_(std::exchange(other.handle_, nullptr))
    {
    }

    Generator &
    operator=(Generator &&other) noexcept
    {
        if (this != &other) {
            destroy();
            handle_ = std::exchange(other.handle_, nullptr);
        }
        return *this;
    }

    Generator(const Generator &) = delete;
    Generator &operator=(const Generator &) = delete;

    ~Generator() { destroy(); }

    /** Advance to the next yielded value; false when exhausted. */
    bool
    next()
    {
        if (!handle_ || handle_.done())
            return false;
        handle_.resume();
        return !handle_.done();
    }

    /** The value yielded by the last successful next(). */
    const T &value() const { return handle_.promise().current; }

    bool valid() const { return static_cast<bool>(handle_); }

  private:
    void
    destroy()
    {
        if (handle_) {
            handle_.destroy();
            handle_ = nullptr;
        }
    }

    std::coroutine_handle<promise_type> handle_;
};

} // namespace pccsim
