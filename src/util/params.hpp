/**
 * @file
 * Selector/param-string parsing shared by the policy and translation-
 * hardware registries (os/policy_registry.hpp, tlb/hw_registry.hpp).
 *
 * A selector is `key` or `key:params`, where params is a comma-
 * separated `name=value` list: `pcc:promote=64,order=rr`. ParamMap
 * parses the param half once and hands typed lookups to the factory;
 * consumed-key tracking lets the registry reject typos (`promot=64`)
 * instead of silently ignoring them.
 */

#pragma once

#include <algorithm>
#include <cstdlib>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "util/status.hpp"
#include "util/types.hpp"

namespace pccsim::util {

/** `key:params` split; params empty when there is no ':'. */
struct Selector
{
    std::string key;
    std::string params;

    /** Canonical form: `key` or `key:params`, exactly as parsed. */
    std::string
    str() const
    {
        return params.empty() ? key : key + ":" + params;
    }

    static Selector
    parse(std::string_view text)
    {
        Selector sel;
        const auto colon = text.find(':');
        if (colon == std::string_view::npos) {
            sel.key = std::string(text);
        } else {
            sel.key = std::string(text.substr(0, colon));
            sel.params = std::string(text.substr(colon + 1));
        }
        return sel;
    }
};

/** Parsed `name=value,name=value` list with consumed-key tracking. */
class ParamMap
{
  public:
    ParamMap() = default;

    /**
     * Parse a param string. Malformed entries (no '=', empty name)
     * fail the returned status; the map is still usable for the
     * well-formed prefix.
     */
    static ParamMap
    parse(std::string_view text, Status &status)
    {
        ParamMap map;
        size_t pos = 0;
        while (pos < text.size()) {
            size_t end = text.find(',', pos);
            if (end == std::string_view::npos)
                end = text.size();
            const std::string_view item = text.substr(pos, end - pos);
            pos = end + 1;
            if (item.empty())
                continue;
            const auto eq = item.find('=');
            if (eq == std::string_view::npos || eq == 0) {
                status.update(Status::error(
                    "malformed param '", std::string(item),
                    "' (expected name=value)"));
                continue;
            }
            map.entries_.push_back(
                {std::string(item.substr(0, eq)),
                 std::string(item.substr(eq + 1)), false});
        }
        return map;
    }

    bool
    has(std::string_view name) const
    {
        return find(name) != nullptr;
    }

    std::string
    get(std::string_view name, std::string fallback = "") const
    {
        const Entry *e = find(name);
        return e ? e->value : std::move(fallback);
    }

    u64
    getU64(std::string_view name, u64 fallback) const
    {
        const Entry *e = find(name);
        if (!e)
            return fallback;
        return std::strtoull(e->value.c_str(), nullptr, 10);
    }

    double
    getDouble(std::string_view name, double fallback) const
    {
        const Entry *e = find(name);
        if (!e)
            return fallback;
        return std::strtod(e->value.c_str(), nullptr);
    }

    bool
    getBool(std::string_view name, bool fallback) const
    {
        const Entry *e = find(name);
        if (!e)
            return fallback;
        return e->value == "1" || e->value == "true" ||
               e->value == "yes" || e->value == "on";
    }

    /**
     * Every factory calls this after pulling its params: any entry it
     * never looked up is a typo the user should hear about, not a
     * silently-defaulted knob.
     */
    Status
    checkConsumed() const
    {
        Status status;
        for (const Entry &e : entries_) {
            if (!e.consumed) {
                status.update(Status::error("unknown param '", e.name,
                                            "'"));
            }
        }
        return status;
    }

  private:
    struct Entry
    {
        std::string name;
        std::string value;
        mutable bool consumed = false;
    };

    const Entry *
    find(std::string_view name) const
    {
        for (const Entry &e : entries_) {
            if (e.name == name) {
                e.consumed = true;
                return &e;
            }
        }
        return nullptr;
    }

    std::vector<Entry> entries_;
};

/**
 * Nearest key for "did you mean" diagnostics. A query that is a
 * prefix of a key (or vice versa) wins outright — "victima" should
 * suggest "victima-reach" even though the edit distance is the whole
 * suffix. Otherwise falls back to edit distance, returning empty when
 * nothing is within half the query length (so arbitrary strings don't
 * get absurd suggestions).
 */
inline std::string
nearestKey(std::string_view query,
           const std::vector<std::string> &keys)
{
    if (!query.empty()) {
        std::string best_prefix;
        for (const std::string &key : keys) {
            const size_t n = std::min(query.size(), key.size());
            if (std::string_view(key).substr(0, n) !=
                query.substr(0, n)) {
                continue;
            }
            if (best_prefix.empty() || key.size() < best_prefix.size())
                best_prefix = key;
        }
        if (!best_prefix.empty())
            return best_prefix;
    }
    const auto distance = [](std::string_view a, std::string_view b) {
        std::vector<u32> prev(b.size() + 1), cur(b.size() + 1);
        for (size_t j = 0; j <= b.size(); ++j)
            prev[j] = static_cast<u32>(j);
        for (size_t i = 1; i <= a.size(); ++i) {
            cur[0] = static_cast<u32>(i);
            for (size_t j = 1; j <= b.size(); ++j) {
                const u32 sub =
                    prev[j - 1] + (a[i - 1] == b[j - 1] ? 0 : 1);
                cur[j] = std::min({prev[j] + 1, cur[j - 1] + 1, sub});
            }
            std::swap(prev, cur);
        }
        return prev[b.size()];
    };
    std::string best;
    u32 best_dist = ~0u;
    for (const std::string &key : keys) {
        const u32 d = distance(query, key);
        if (d < best_dist) {
            best_dist = d;
            best = key;
        }
    }
    if (best_dist > std::max<u32>(1, static_cast<u32>(query.size()) / 2))
        return {};
    return best;
}

} // namespace pccsim::util
