#include "util/stats.hpp"

#include <cmath>

namespace pccsim {

Counter &
StatGroup::counter(const std::string &name)
{
    return counters_[name];
}

u64
StatGroup::get(const std::string &name) const
{
    auto it = counters_.find(name);
    return it == counters_.end() ? 0 : it->second.value();
}

std::vector<std::pair<std::string, u64>>
StatGroup::all() const
{
    std::vector<std::pair<std::string, u64>> out;
    out.reserve(counters_.size());
    for (const auto &[name, ctr] : counters_)
        out.emplace_back(name, ctr.value());
    return out;
}

void
StatGroup::resetAll()
{
    for (auto &[name, ctr] : counters_)
        ctr.reset();
}

double
geomean(const std::vector<double> &values)
{
    if (values.empty())
        return 1.0;
    double log_sum = 0.0;
    for (double v : values)
        log_sum += std::log(v);
    return std::exp(log_sum / static_cast<double>(values.size()));
}

} // namespace pccsim
