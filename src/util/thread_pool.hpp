/**
 * @file
 * Fixed-size worker-thread pool for the experiment runner.
 *
 * The pool exists to run *independent* simulations concurrently: tasks
 * must not share mutable state. parallelMap() preserves input order in
 * its result vector, so callers see exactly the output a serial loop
 * would produce regardless of completion order.
 */

#pragma once

#include <condition_variable>
#include <deque>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <type_traits>
#include <vector>

#include "util/types.hpp"

namespace pccsim::util {

class ThreadPool
{
  public:
    /** @param threads Worker count; 0 selects hardwareJobs(). */
    explicit ThreadPool(u32 threads = 0);
    ~ThreadPool();

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    u32 size() const { return static_cast<u32>(workers_.size()); }

    /** Host hardware concurrency, never less than 1. */
    static u32 hardwareJobs();

    /** Enqueue one task; runs on some worker in FIFO dispatch order. */
    void post(std::function<void()> task);

    /**
     * Apply fn to every item and return the results in input order.
     *
     * Results land at the index of their item, so the output is
     * identical to a serial `for` loop over `items` (fn must be pure
     * with respect to shared state). The first exception thrown by any
     * task is rethrown here after all tasks finish; the result type
     * must be default-constructible. With one worker (or one item) the
     * map runs inline on the calling thread.
     */
    template <typename T, typename Fn>
    auto
    parallelMap(const std::vector<T> &items, Fn &&fn)
        -> std::vector<std::invoke_result_t<Fn &, const T &>>
    {
        using R = std::invoke_result_t<Fn &, const T &>;
        std::vector<R> results(items.size());
        if (items.size() <= 1 || size() <= 1) {
            for (size_t i = 0; i < items.size(); ++i)
                results[i] = fn(items[i]);
            return results;
        }

        std::mutex batch_mutex;
        std::condition_variable batch_done;
        size_t remaining = items.size();
        std::exception_ptr first_error;

        for (size_t i = 0; i < items.size(); ++i) {
            post([&, i] {
                try {
                    results[i] = fn(items[i]);
                } catch (...) {
                    std::lock_guard<std::mutex> lock(batch_mutex);
                    if (!first_error)
                        first_error = std::current_exception();
                }
                std::lock_guard<std::mutex> lock(batch_mutex);
                if (--remaining == 0)
                    batch_done.notify_all();
            });
        }

        std::unique_lock<std::mutex> lock(batch_mutex);
        batch_done.wait(lock, [&] { return remaining == 0; });
        if (first_error)
            std::rethrow_exception(first_error);
        return results;
    }

  private:
    void workerLoop();

    std::vector<std::thread> workers_;
    std::deque<std::function<void()>> tasks_;
    std::mutex mutex_;
    std::condition_variable wake_;
    bool stop_ = false;
};

} // namespace pccsim::util
