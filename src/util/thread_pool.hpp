/**
 * @file
 * Fixed-size worker-thread pool for the experiment runner.
 *
 * The pool exists to run *independent* simulations concurrently: tasks
 * must not share mutable state. parallelMap() preserves input order in
 * its result vector, so callers see exactly the output a serial loop
 * would produce regardless of completion order.
 */

#pragma once

#include <algorithm>
#include <condition_variable>
#include <deque>
#include <exception>
#include <functional>
#include <mutex>
#include <sstream>
#include <stdexcept>
#include <string>
#include <thread>
#include <type_traits>
#include <vector>

#include "util/types.hpp"

namespace pccsim::util {

/**
 * Thrown by parallelMap() when two or more tasks failed: carries the
 * exception_ptr and item index of every failure so a batch caller (a
 * fuzz campaign, a sweep) can name each failing item instead of
 * learning about one arbitrary winner of the failure race. A single
 * failure is rethrown as its original type — callers catching domain
 * errors (e.g. an oracle divergence) keep working unchanged.
 */
class ParallelError : public std::runtime_error
{
  public:
    struct Failure
    {
        size_t index;              //!< input index of the failed item
        std::exception_ptr error;  //!< the task's original exception
    };

    ParallelError(const std::string &what, std::vector<Failure> failures)
        : std::runtime_error(what), failures_(std::move(failures))
    {
    }

    const std::vector<Failure> &failures() const { return failures_; }

  private:
    std::vector<Failure> failures_;
};

class ThreadPool
{
  public:
    /** @param threads Worker count; 0 selects hardwareJobs(). */
    explicit ThreadPool(u32 threads = 0);
    ~ThreadPool();

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    u32 size() const { return static_cast<u32>(workers_.size()); }

    /** Host hardware concurrency, never less than 1. */
    static u32 hardwareJobs();

    /** Enqueue one task; runs on some worker in FIFO dispatch order. */
    void post(std::function<void()> task);

    /**
     * Apply fn to every item and return the results in input order.
     *
     * Results land at the index of their item, so the output is
     * identical to a serial `for` loop over `items` (fn must be pure
     * with respect to shared state); the result type must be
     * default-constructible. With one worker (or one item) the map
     * runs inline on the calling thread.
     *
     * Failure semantics (identical inline and pooled): every task runs
     * to completion regardless of other tasks failing. Exactly one
     * failure is rethrown as its original exception; two or more are
     * aggregated into a ParallelError naming every failed index.
     */
    template <typename T, typename Fn>
    auto
    parallelMap(const std::vector<T> &items, Fn &&fn)
        -> std::vector<std::invoke_result_t<Fn &, const T &>>
    {
        using R = std::invoke_result_t<Fn &, const T &>;
        std::vector<R> results(items.size());
        std::vector<ParallelError::Failure> failures;
        if (items.size() <= 1 || size() <= 1) {
            for (size_t i = 0; i < items.size(); ++i) {
                try {
                    results[i] = fn(items[i]);
                } catch (...) {
                    failures.push_back({i, std::current_exception()});
                }
            }
            rethrowFailures(std::move(failures), items.size());
            return results;
        }

        std::mutex batch_mutex;
        std::condition_variable batch_done;
        size_t remaining = items.size();

        for (size_t i = 0; i < items.size(); ++i) {
            post([&, i] {
                try {
                    results[i] = fn(items[i]);
                } catch (...) {
                    std::lock_guard<std::mutex> lock(batch_mutex);
                    failures.push_back({i, std::current_exception()});
                }
                std::lock_guard<std::mutex> lock(batch_mutex);
                if (--remaining == 0)
                    batch_done.notify_all();
            });
        }

        std::unique_lock<std::mutex> lock(batch_mutex);
        batch_done.wait(lock, [&] { return remaining == 0; });
        lock.unlock();
        rethrowFailures(std::move(failures), items.size());
        return results;
    }

  private:
    void workerLoop();

    /** No-op for zero failures, original rethrow for one, aggregate
     *  ParallelError for several (ordered by item index). */
    static void rethrowFailures(std::vector<ParallelError::Failure> failures,
                                size_t total);

    std::vector<std::thread> workers_;
    std::deque<std::function<void()>> tasks_;
    std::mutex mutex_;
    std::condition_variable wake_;
    bool stop_ = false;
};

} // namespace pccsim::util
